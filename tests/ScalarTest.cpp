//===- ScalarTest.cpp - Symbolic scalar expressions --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Scalar.h"

#include <gtest/gtest.h>

using namespace cypress;

TEST(Scalar, ConstantFolding) {
  ScalarExpr E = (ScalarExpr(3) + ScalarExpr(4)) * ScalarExpr(2);
  ASSERT_TRUE(E.isConstant());
  EXPECT_EQ(E.constantValue(), 14);
  EXPECT_EQ((ScalarExpr(7).floorDiv(ScalarExpr(2))).constantValue(), 3);
  EXPECT_EQ((ScalarExpr(7).mod(ScalarExpr(2))).constantValue(), 1);
  EXPECT_EQ((ScalarExpr(5) - ScalarExpr(9)).constantValue(), -4);
}

TEST(Scalar, IdentitySimplification) {
  ScalarExpr K = ScalarExpr::loopVar(1, "k");
  EXPECT_TRUE((K + ScalarExpr(0)).equals(K));
  EXPECT_TRUE((ScalarExpr(0) + K).equals(K));
  EXPECT_TRUE((K * ScalarExpr(1)).equals(K));
  EXPECT_TRUE((ScalarExpr(1) * K).equals(K));
  EXPECT_TRUE((K * ScalarExpr(0)).isConstant());
  EXPECT_EQ((K * ScalarExpr(0)).constantValue(), 0);
  EXPECT_TRUE(K.floorDiv(ScalarExpr(1)).equals(K));
}

TEST(Scalar, Evaluation) {
  ScalarExpr K = ScalarExpr::loopVar(5, "k");
  ScalarExpr Wg = ScalarExpr::procIndex(Processor::Warpgroup);
  ScalarExpr E = (K * ScalarExpr(4) + Wg).mod(ScalarExpr(3));
  ScalarEnv Env;
  Env.LoopVars[5] = 7;
  Env.ProcIndices[Processor::Warpgroup] = 1;
  EXPECT_EQ(E.evaluate(Env), (7 * 4 + 1) % 3);
}

TEST(Scalar, SubstituteLoopVar) {
  ScalarExpr K = ScalarExpr::loopVar(2, "k");
  ScalarExpr E = K + K * ScalarExpr(3);
  ScalarExpr Sub = E.substituteLoopVar(2, ScalarExpr(5));
  ASSERT_TRUE(Sub.isConstant());
  EXPECT_EQ(Sub.constantValue(), 5 + 15);

  // Substitution with a processor index (vectorization's rewrite).
  ScalarExpr Vec =
      E.substituteLoopVar(2, ScalarExpr::procIndex(Processor::Thread));
  EXPECT_FALSE(Vec.isConstant());
  EXPECT_TRUE(Vec.usesProcIndex());
  ScalarEnv Env;
  Env.ProcIndices[Processor::Thread] = 2;
  EXPECT_EQ(Vec.evaluate(Env), 8);
}

TEST(Scalar, UsesQueries) {
  ScalarExpr K = ScalarExpr::loopVar(9, "k");
  ScalarExpr J = ScalarExpr::loopVar(10, "j");
  ScalarExpr E = K * ScalarExpr(2) + ScalarExpr(1);
  EXPECT_TRUE(E.usesLoopVar(9));
  EXPECT_FALSE(E.usesLoopVar(10));
  EXPECT_FALSE(E.usesProcIndex());
  EXPECT_TRUE((E + J).usesLoopVar(10));
}

TEST(Scalar, ToStringStable) {
  ScalarExpr K = ScalarExpr::loopVar(1, "k1");
  EXPECT_EQ((K.mod(ScalarExpr(3))).toString(), "(k1 % 3)");
  EXPECT_EQ(ScalarExpr::procIndex(Processor::Warpgroup).toString(),
            "warpgroup_id()");
  EXPECT_EQ(ScalarExpr(42).toString(), "42");
}

TEST(Scalar, StructuralEquality) {
  ScalarExpr A = ScalarExpr::loopVar(1, "k") + ScalarExpr(2);
  ScalarExpr B = ScalarExpr::loopVar(1, "other_name") + ScalarExpr(2);
  ScalarExpr C = ScalarExpr::loopVar(2, "k") + ScalarExpr(2);
  EXPECT_TRUE(A.equals(B)); // Names are cosmetic; ids are identity.
  EXPECT_FALSE(A.equals(C));
}

TEST(Scalar, CdivMatchesCeilDiv) {
  // The frontend helper used throughout the kernels.
  ScalarExpr E = (ScalarExpr(100) + ScalarExpr(63)).floorDiv(ScalarExpr(64));
  EXPECT_EQ(E.constantValue(), 2);
}
