//===- ScalarTest.cpp - Symbolic scalar expressions --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Scalar.h"

#include <gtest/gtest.h>

using namespace cypress;

TEST(Scalar, ConstantFolding) {
  ScalarExpr E = (ScalarExpr(3) + ScalarExpr(4)) * ScalarExpr(2);
  ASSERT_TRUE(E.isConstant());
  EXPECT_EQ(E.constantValue(), 14);
  EXPECT_EQ((ScalarExpr(7).floorDiv(ScalarExpr(2))).constantValue(), 3);
  EXPECT_EQ((ScalarExpr(7).mod(ScalarExpr(2))).constantValue(), 1);
  EXPECT_EQ((ScalarExpr(5) - ScalarExpr(9)).constantValue(), -4);
}

TEST(Scalar, IdentitySimplification) {
  ScalarExpr K = ScalarExpr::loopVar(1, "k");
  EXPECT_TRUE((K + ScalarExpr(0)).equals(K));
  EXPECT_TRUE((ScalarExpr(0) + K).equals(K));
  EXPECT_TRUE((K * ScalarExpr(1)).equals(K));
  EXPECT_TRUE((ScalarExpr(1) * K).equals(K));
  EXPECT_TRUE((K * ScalarExpr(0)).isConstant());
  EXPECT_EQ((K * ScalarExpr(0)).constantValue(), 0);
  EXPECT_TRUE(K.floorDiv(ScalarExpr(1)).equals(K));
}

TEST(Scalar, Evaluation) {
  ScalarExpr K = ScalarExpr::loopVar(5, "k");
  ScalarExpr Wg = ScalarExpr::procIndex(Processor::Warpgroup);
  ScalarExpr E = (K * ScalarExpr(4) + Wg).mod(ScalarExpr(3));
  ScalarEnv Env;
  Env.LoopVars[5] = 7;
  Env.ProcIndices[Processor::Warpgroup] = 1;
  EXPECT_EQ(E.evaluate(Env), (7 * 4 + 1) % 3);
}

TEST(Scalar, SubstituteLoopVar) {
  ScalarExpr K = ScalarExpr::loopVar(2, "k");
  ScalarExpr E = K + K * ScalarExpr(3);
  ScalarExpr Sub = E.substituteLoopVar(2, ScalarExpr(5));
  ASSERT_TRUE(Sub.isConstant());
  EXPECT_EQ(Sub.constantValue(), 5 + 15);

  // Substitution with a processor index (vectorization's rewrite).
  ScalarExpr Vec =
      E.substituteLoopVar(2, ScalarExpr::procIndex(Processor::Thread));
  EXPECT_FALSE(Vec.isConstant());
  EXPECT_TRUE(Vec.usesProcIndex());
  ScalarEnv Env;
  Env.ProcIndices[Processor::Thread] = 2;
  EXPECT_EQ(Vec.evaluate(Env), 8);
}

TEST(Scalar, UsesQueries) {
  ScalarExpr K = ScalarExpr::loopVar(9, "k");
  ScalarExpr J = ScalarExpr::loopVar(10, "j");
  ScalarExpr E = K * ScalarExpr(2) + ScalarExpr(1);
  EXPECT_TRUE(E.usesLoopVar(9));
  EXPECT_FALSE(E.usesLoopVar(10));
  EXPECT_FALSE(E.usesProcIndex());
  EXPECT_TRUE((E + J).usesLoopVar(10));
}

TEST(Scalar, ToStringStable) {
  ScalarExpr K = ScalarExpr::loopVar(1, "k1");
  EXPECT_EQ((K.mod(ScalarExpr(3))).toString(), "(k1 % 3)");
  EXPECT_EQ(ScalarExpr::procIndex(Processor::Warpgroup).toString(),
            "warpgroup_id()");
  EXPECT_EQ(ScalarExpr(42).toString(), "42");
}

TEST(Scalar, StructuralEquality) {
  ScalarExpr A = ScalarExpr::loopVar(1, "k") + ScalarExpr(2);
  ScalarExpr B = ScalarExpr::loopVar(1, "other_name") + ScalarExpr(2);
  ScalarExpr C = ScalarExpr::loopVar(2, "k") + ScalarExpr(2);
  EXPECT_TRUE(A.equals(B)); // Names are cosmetic; ids are identity.
  EXPECT_FALSE(A.equals(C));
}

TEST(Scalar, CdivMatchesCeilDiv) {
  // The frontend helper used throughout the kernels.
  ScalarExpr E = (ScalarExpr(100) + ScalarExpr(63)).floorDiv(ScalarExpr(64));
  EXPECT_EQ(E.constantValue(), 2);
}

//===----------------------------------------------------------------------===//
// Interning and new fold coverage (hash-consed ScalarExpr)
//===----------------------------------------------------------------------===//

TEST(Scalar, InternIdentity) {
  // Identical construction on one thread yields the same interned handle,
  // and equal handles always mean equal expressions.
  ScalarExpr A = ScalarExpr::loopVar(7, "k7").mod(ScalarExpr(3)) +
                 ScalarExpr::procIndex(Processor::Warp);
  ScalarExpr B = ScalarExpr::loopVar(7, "k7").mod(ScalarExpr(3)) +
                 ScalarExpr::procIndex(Processor::Warp);
  EXPECT_EQ(A.handle(), B.handle());
  EXPECT_TRUE(A.equals(B));

  // Copies share the handle (one pointer wide).
  ScalarExpr C = A;
  EXPECT_EQ(C.handle(), A.handle());

  // Different structure, different handle and inequality.
  ScalarExpr D = ScalarExpr::loopVar(7, "k7").mod(ScalarExpr(4));
  EXPECT_NE(D.handle(), A.handle());
  EXPECT_FALSE(D.equals(A));

  // Constants intern globally: the same value is always the same node.
  EXPECT_EQ(ScalarExpr(0).handle(), ScalarExpr().handle());
  EXPECT_EQ(ScalarExpr(12).handle(), ScalarExpr::constant(12).handle());
  EXPECT_EQ(ScalarExpr::procIndex(Processor::Thread).handle(),
            ScalarExpr::procIndex(Processor::Thread).handle());
}

TEST(Scalar, InternIdentityIgnoresDisplayNameForEquality) {
  // Same variable id under two display names: distinct handles (printing
  // stays faithful) but equal expressions (ids are identity).
  ScalarExpr A = ScalarExpr::loopVar(3, "k3");
  ScalarExpr B = ScalarExpr::loopVar(3, "i3");
  EXPECT_NE(A.handle(), B.handle());
  EXPECT_TRUE(A.equals(B));
  EXPECT_EQ(A.toString(), "k3");
  EXPECT_EQ(B.toString(), "i3");
}

TEST(Scalar, SubstituteIsInterned) {
  // Substitution through the interner: results dedupe with direct
  // construction, and a substitution that touches nothing returns the
  // original handle (memoized no-op).
  ScalarExpr K = ScalarExpr::loopVar(21, "k21");
  ScalarExpr E = K * ScalarExpr(4) + ScalarExpr(2);
  ScalarExpr Direct =
      ScalarExpr::procIndex(Processor::Thread) * ScalarExpr(4) +
      ScalarExpr(2);
  ScalarExpr Substituted =
      E.substituteLoopVar(21, ScalarExpr::procIndex(Processor::Thread));
  EXPECT_EQ(Substituted.handle(), Direct.handle());
  EXPECT_EQ(E.substituteLoopVar(22, ScalarExpr(0)).handle(), E.handle());
}

TEST(Scalar, ModByOneFoldsToZero) {
  ScalarExpr K = ScalarExpr::loopVar(30, "k30");
  ScalarExpr E = K.mod(ScalarExpr(1));
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constantValue(), 0);
  // Matches the constant-fold result for concrete operands.
  EXPECT_EQ(ScalarExpr(17).mod(ScalarExpr(1)).constantValue(), 0);
}

TEST(Scalar, ZeroNumeratorFolds) {
  ScalarExpr K = ScalarExpr::loopVar(31, "k31");
  ScalarExpr Div = ScalarExpr(0).floorDiv(K);
  ScalarExpr Mod = ScalarExpr(0).mod(K);
  EXPECT_TRUE(Div.isConstant());
  EXPECT_EQ(Div.constantValue(), 0);
  EXPECT_TRUE(Mod.isConstant());
  EXPECT_EQ(Mod.constantValue(), 0);
}

TEST(Scalar, MulIdentityFolds) {
  ScalarExpr K = ScalarExpr::loopVar(32, "k32");
  EXPECT_EQ((K * ScalarExpr(1)).handle(), K.handle());
  EXPECT_EQ((ScalarExpr(1) * K).handle(), K.handle());
  EXPECT_TRUE((K * ScalarExpr(0)).isConstant());
  EXPECT_EQ((K * ScalarExpr(0)).constantValue(), 0);
  EXPECT_EQ((K + ScalarExpr(0)).handle(), K.handle());
  EXPECT_EQ(K.floorDiv(ScalarExpr(1)).handle(), K.handle());
}

TEST(Scalar, FoldedExpressionsEvaluateConsistently) {
  // Folds must agree with evaluation of the unfolded form.
  ScalarExpr K = ScalarExpr::loopVar(33, "k33");
  ScalarEnv Env;
  Env.LoopVars[33] = 13;
  EXPECT_EQ(K.mod(ScalarExpr(1)).evaluate(Env), 13 % 1);
  EXPECT_EQ((K * ScalarExpr(1)).evaluate(Env), 13);
  EXPECT_EQ(ScalarExpr(0).floorDiv(K).evaluate(Env), 0);
}
