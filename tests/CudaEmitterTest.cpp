//===- CudaEmitterTest.cpp - Golden-emit and structural emitter tests ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins `emitCudaSource` byte-for-byte for the six kernels the paper
/// evaluates (tests/goldens/*.cu), the same discipline CompilerParityTest
/// applies to the mid-end: an intentional emitter change regenerates the
/// goldens with CYPRESS_UPDATE_GOLDENS=1; an unintentional one fails with
/// the first divergence. Structural smoke checks cross-validate the text
/// against the post-pipeline IR it was printed from — every leaf call
/// appears, barrier declarations match the emission stats, and the stats
/// match what the IR implies — so the goldens cannot drift into pinning
/// wrong output.
///
/// The emitted text is compiled by nvcc only in the opt-in CI step (no
/// CUDA toolchain in the default environment); offline verification of the
/// *semantics* is BackendExecTest's differential execution.
///
//===----------------------------------------------------------------------===//

#include "TestKernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cypress;
using namespace cypress::testkernels;

#ifndef CYPRESS_GOLDEN_DIR
#error "CYPRESS_GOLDEN_DIR must point at tests/goldens"
#endif

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(CYPRESS_GOLDEN_DIR) + "/" + Name + ".cu";
}

/// Byte-compares \p Source against the named golden (or rewrites it under
/// CYPRESS_UPDATE_GOLDENS=1), reporting the first divergence compactly.
void checkGolden(const std::string &Name, const std::string &Source) {
  ASSERT_FALSE(Source.empty());

  const char *Update = std::getenv("CYPRESS_UPDATE_GOLDENS");
  if (Update && *Update && std::string(Update) != "0") {
    std::ofstream Out(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << goldenPath(Name);
    Out << Source;
    return;
  }

  std::ifstream In(goldenPath(Name), std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden " << goldenPath(Name)
                         << " (record with CYPRESS_UPDATE_GOLDENS=1)";
  std::ostringstream Golden;
  Golden << In.rdbuf();
  std::string Expected = Golden.str();

  if (Source == Expected)
    return;
  size_t Pos = 0;
  while (Pos < Source.size() && Pos < Expected.size() &&
         Source[Pos] == Expected[Pos])
    ++Pos;
  size_t LineStart = Expected.rfind('\n', Pos);
  LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
  FAIL() << Name << ": emitted CUDA diverges from golden at byte " << Pos
         << "\n  golden: " << Expected.substr(LineStart, 120)
         << "\n  actual: " << Source.substr(LineStart, 120);
}

/// Structural cross-checks of one emission against the IR that drove it.
void checkStructure(const CompiledKernel &Kernel,
                    const CompiledKernel::CudaEmission &Emission) {
  const std::string &Source = Emission.Source;
  const CudaEmitStats &Stats = Emission.Stats;

  // Every Call leaf in the post-pipeline IR appears in the emitted source
  // as a call site ("callee(").
  int64_t Calls = 0, Copies = 0, Grids = 0;
  walkOps(Kernel.module().root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::Call) {
      ++Calls;
      EXPECT_NE(Source.find(Op.Callee + "("), std::string::npos)
          << "leaf " << Op.Callee << " missing from emitted source";
    } else if (Op.Kind == OpKind::Copy) {
      ++Copies;
    } else if (Op.Kind == OpKind::PFor &&
               Op.PForProc == Processor::Block) {
      ++Grids;
    }
  });
  EXPECT_EQ(Stats.Kernels, Grids);
  EXPECT_EQ(Stats.TmaCopies + Stats.SimtCopies, Copies);
  EXPECT_EQ(Stats.WgmmaCalls + Stats.SimtCalls, Calls);

  // Stats match the text: one __shared__ cuda::barrier declaration per
  // counted mbarrier, one wgmma commit per Tensor Core call, TMA
  // intrinsics as counted.
  auto CountOf = [&](const std::string &Needle) {
    int64_t Count = 0;
    for (size_t Pos = Source.find(Needle); Pos != std::string::npos;
         Pos = Source.find(Needle, Pos + Needle.size()))
      ++Count;
    return Count;
  };
  EXPECT_EQ(CountOf("__shared__ cuda::barrier"), Stats.Mbarriers);
  EXPECT_EQ(CountOf("warpgroup_commit_batch();"), Stats.WgmmaCalls);
  EXPECT_EQ(CountOf("cp_async_bulk_tensor"), Stats.TmaCopies);
  EXPECT_EQ(CountOf(".wait("), Stats.MbarrierWaits);
  EXPECT_EQ(CountOf(".arrive();"), Stats.MbarrierArrives);
  EXPECT_EQ(CountOf("named_barrier"), Stats.NamedBarriers);
  EXPECT_EQ(CountOf("\n"), Stats.Lines);
  EXPECT_EQ(CountOf("__global__"), Stats.Kernels);

  // Every mbarrier connects the two agents: in a warp-specialized kernel
  // the producer and consumer sit in different branches of the
  // is_dma_warp split, so each declared barrier must have at least one
  // wait and one arrive in the text.
  if (Stats.Mbarriers > 0) {
    EXPECT_GT(Stats.MbarrierWaits, 0);
    EXPECT_GT(Stats.MbarrierArrives, 0);
  }
}

void checkKernel(const std::string &GoldenName, Compiled &C) {
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  CompiledKernel::CudaEmission Emission = C.Kernel->emitCuda();
  checkStructure(*C.Kernel, Emission);
  checkGolden(GoldenName, Emission.Source);
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden emissions: the six pinned kernels (same configs as the IR parity
// goldens; emission is cheap at headline scale).
//===----------------------------------------------------------------------===//

TEST(CudaEmitterGolden, Gemm4096) {
  Compiled C = compileGemm(headlineGemmConfig());
  checkKernel("gemm_4096", C);
}

TEST(CudaEmitterGolden, GemmSmall) {
  Compiled C = compileGemm(smallGemmConfig());
  checkKernel("gemm_small", C);
}

TEST(CudaEmitterGolden, AttentionFa2_4096) {
  Compiled C = compileAttention(fa2Config(4096));
  checkKernel("attention_fa2_4096", C);
}

TEST(CudaEmitterGolden, AttentionFa3_4096) {
  Compiled C = compileAttention(fa3Config(4096));
  checkKernel("attention_fa3_4096", C);
}

TEST(CudaEmitterGolden, DualGemm4096) {
  Compiled C = compileDualGemm(headlineGemmConfig());
  checkKernel("dual_gemm_4096", C);
}

TEST(CudaEmitterGolden, GemmReduction4096) {
  Compiled C = compileGemmRed(headlineGemmConfig());
  checkKernel("gemm_red_4096", C);
}

//===----------------------------------------------------------------------===//
// Emission semantics beyond the goldens
//===----------------------------------------------------------------------===//

TEST(CudaEmitterStats, WarpSpecializedGemmShape) {
  Compiled C = compileGemm(smallGemmConfig());
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  CudaEmitStats Stats = C.Kernel->emitCuda().Stats;
  EXPECT_EQ(Stats.Kernels, 1);
  // A and B main-loop tiles plus the store staging tile arrive via TMA.
  EXPECT_GT(Stats.TmaCopies, 0);
  EXPECT_GT(Stats.WgmmaCalls, 0);
  // The pipelined schedule needs barriers in both directions (copy->wgmma
  // availability and wgmma->copy buffer reuse).
  EXPECT_GT(Stats.Mbarriers, 2);
  EXPECT_GT(Stats.SharedTensors, 0);
  EXPECT_GT(Stats.RegisterTensors, 0);
}

TEST(CudaEmitterStats, StatsOverloadMatchesPlainEmission) {
  Compiled C = compileGemm(smallGemmConfig());
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  EXPECT_EQ(C.Kernel->cudaSource(), C.Kernel->emitCuda().Source);
}

TEST(CudaEmitterStats, EmissionIsDeterministic) {
  Compiled C = compileAttention(fa2Config(4096));
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  EXPECT_EQ(C.Kernel->emitCuda().Source, C.Kernel->emitCuda().Source);
}

TEST(CudaEmitterStats, NonWarpSpecializedHasNoDmaSplit) {
  GemmConfig Config = smallGemmConfig();
  Config.Pipe = 1;
  Config.WarpSpecialize = false;
  Compiled C = compileGemm(Config);
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  CompiledKernel::CudaEmission Emission = C.Kernel->emitCuda();
  EXPECT_EQ(Emission.Source.find("is_dma_warp"), std::string::npos);
  EXPECT_EQ(Emission.Stats.Mbarriers, 0);
  // All ops must still be emitted: the DMA tags are dormant without warp
  // specialization.
  int64_t Copies = 0;
  walkOps(C.Kernel->module().root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::Copy)
      ++Copies;
  });
  EXPECT_EQ(Emission.Stats.TmaCopies + Emission.Stats.SimtCopies, Copies);
}
