//===- SimulatorParityTest.cpp - Simulator hot-path parity tests --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the simulator's observable results against golden values recorded
/// from the pre-rewrite (ordered-map) implementation, so the dense-table
/// timing engine of PR 4 — and any future hot-path work — must stay
/// result-identical while getting faster. Also checks that the tuner's
/// batched (worker-pool) candidate evaluation produces exactly the
/// landscape a sequential sweep does.
///
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

#include <memory>

using namespace cypress;
using namespace cypress::testkernels;

namespace {

/// Golden values recorded from the pre-rewrite simulator (ordered-map
/// implementation, commit 627d726) at these exact configurations. The
/// tolerance is relative 1e-9 — tight enough that any semantic change to
/// scheduling or the cost model fails, loose enough for cross-compiler
/// floating-point contraction differences.
void expectGolden(const ErrorOr<SimResult> &Result, double BlockCycles,
                  double TFlops, double TotalFlops, int64_t Blocks,
                  int64_t Waves) {
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_NEAR(Result->BlockCycles, BlockCycles, 1e-9 * BlockCycles);
  EXPECT_NEAR(Result->TFlops, TFlops, 1e-9 * TFlops);
  EXPECT_NEAR(Result->TotalFlops, TotalFlops, 1e-9 * TotalFlops);
  EXPECT_EQ(Result->Blocks, Blocks);
  EXPECT_EQ(Result->Waves, Waves);
  EXPECT_TRUE(Result->Races.empty())
      << "first race: " << (Result->Races.empty() ? "" : Result->Races[0]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden timing parity
//===----------------------------------------------------------------------===//

TEST(SimulatorParity, GemmHeadlineGolden) {
  Compiled G = compileGemm(headlineGemmConfig());
  ASSERT_NE(G.Kernel, nullptr) << G.Error;
  ErrorOr<SimResult> Result = G.Kernel->runTiming();
  expectGolden(Result, 66537.710867254267, 901.41412686954015,
               137472507904.0, 512, 4);
  ASSERT_TRUE(Result);
  EXPECT_NEAR(Result->TmaBusyCycles, 61755.076923076827, 1e-6);
  EXPECT_NEAR(Result->TensorCoreBusyCycles, 62880.172405715792, 1e-6);
}

TEST(SimulatorParity, GemmSmallGolden) {
  Compiled G = compileGemm(smallGemmConfig());
  ASSERT_NE(G.Kernel, nullptr) << G.Error;
  expectGolden(G.Kernel->runTiming(), 5622.5438492170742,
               8.3324289939645197, 33816576.0, 4, 1);
}

TEST(SimulatorParity, AttentionFa2Golden) {
  Compiled C = compileAttention(fa2Config(4096));
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  expectGolden(C.Kernel->runTiming(), 116608.87399318923,
               791.94619599599901, 105916710912.0, 256, 2);
}

TEST(SimulatorParity, AttentionFa3Golden) {
  Compiled C = compileAttention(fa3Config(4096));
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  expectGolden(C.Kernel->runTiming(), 118976.87399318925,
               777.75836622158124, 106118037504.0, 256, 2);
}

TEST(SimulatorParity, AttentionShortSequenceGolden) {
  Compiled C = compileAttention(fa2Config(1024));
  ASSERT_NE(C.Kernel, nullptr) << C.Error;
  expectGolden(C.Kernel->runTiming(), 32140.68003675872,
               345.53303429831527, 6623342592.0, 64, 1);
}

//===----------------------------------------------------------------------===//
// Pooled scratch reuse and functional mode
//===----------------------------------------------------------------------===//

TEST(SimulatorParity, RepeatedRunsBitIdentical) {
  // The timing scratch is pooled across runs; reuse must not leak state
  // between simulations (same kernel, and interleaved different kernels).
  Compiled G = compileGemm(headlineGemmConfig());
  Compiled A = compileAttention(fa2Config(1024));
  ASSERT_NE(G.Kernel, nullptr) << G.Error;
  ASSERT_NE(A.Kernel, nullptr) << A.Error;
  ErrorOr<SimResult> GemmFirst = G.Kernel->runTiming();
  ErrorOr<SimResult> AttnFirst = A.Kernel->runTiming();
  ASSERT_TRUE(GemmFirst);
  ASSERT_TRUE(AttnFirst);
  for (int I = 0; I < 3; ++I) {
    ErrorOr<SimResult> GemmAgain = G.Kernel->runTiming();
    ErrorOr<SimResult> AttnAgain = A.Kernel->runTiming();
    ASSERT_TRUE(GemmAgain);
    ASSERT_TRUE(AttnAgain);
    EXPECT_EQ(GemmAgain->BlockCycles, GemmFirst->BlockCycles);
    EXPECT_EQ(GemmAgain->TFlops, GemmFirst->TFlops);
    EXPECT_EQ(AttnAgain->BlockCycles, AttnFirst->BlockCycles);
    EXPECT_EQ(AttnAgain->TFlops, AttnFirst->TFlops);
  }
}

TEST(SimulatorParity, FunctionalModeKeepsTimingAndComputesGemm) {
  // runFunctional = timing plus functional execution: the timing half must
  // report the same golden cycles, and the functional half the right
  // numbers.
  GemmConfig Config = smallGemmConfig();
  Compiled G = compileGemm(Config);
  ASSERT_NE(G.Kernel, nullptr) << G.Error;

  KernelBuffers Buffers = gemmInputs(Config);
  TensorData &C = Buffers.Data[0];
  TensorData &A = Buffers.Data[1];
  TensorData &B = Buffers.Data[2];

  ErrorOr<SimResult> Result = G.Kernel->runFunctional(Buffers.ptrs());
  expectGolden(Result, 5622.5438492170742, 8.3324289939645197, 33816576.0,
               4, 1);
  ASSERT_TRUE(Result);
  EXPECT_TRUE(Result->FunctionalRan);

  for (int64_t I : {int64_t(0), int64_t(17), int64_t(255)}) {
    for (int64_t J : {int64_t(0), int64_t(63), int64_t(511)}) {
      float Ref = 0.0f;
      for (int64_t K = 0; K < Config.K; ++K)
        Ref += A.at({I, K}) * B.at({K, J});
      EXPECT_NEAR(C.at({I, J}), Ref, 1e-2f) << "C(" << I << ", " << J << ")";
    }
  }
}

TEST(SimulatorParity, FunctionalAttentionDeterministic) {
  // The odometer enumeration of processor instances must visit the same
  // instances in the same order as the recursive enumerator it replaced:
  // repeated functional runs produce bit-identical outputs.
  AttentionConfig Config = smallAttentionConfig();
  Compiled C = compileAttention(Config);
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  KernelBuffers One = attentionInputs(Config);
  KernelBuffers Two = attentionInputs(Config);
  ASSERT_TRUE(C.Kernel->runFunctional(One.ptrs()));
  ASSERT_TRUE(C.Kernel->runFunctional(Two.ptrs()));
  const TensorData &O1 = One.Data[0], &O2 = Two.Data[0];
  for (int64_t I = 0; I < O1.type().Dims.numElements(); ++I)
    ASSERT_EQ(O1.at(I), O2.at(I)) << "element " << I;
}

//===----------------------------------------------------------------------===//
// Sharded single-kernel simulation
//===----------------------------------------------------------------------===//

TEST(SimulatorParity, ShardedTimingBitIdenticalAcrossWorkerCounts) {
  // One kernel's expansion shards across a CompilerSession's worker pool
  // (runTiming's pool argument). Shards cover contiguous ranges of the
  // sequential expansion order and merge in order, so every worker count
  // — including the sequential no-pool path — must produce bit-identical
  // timing. Run under TSan, this is also the data-race check for the
  // sharded path: repeated runs reuse the pooled per-shard buffers.
  Compiled G = compileGemm(headlineGemmConfig());
  Compiled A = compileAttention(fa2Config(4096));
  ASSERT_NE(G.Kernel, nullptr) << G.Error;
  ASSERT_NE(A.Kernel, nullptr) << A.Error;
  ErrorOr<SimResult> GemmRef = G.Kernel->runTiming();
  ErrorOr<SimResult> AttnRef = A.Kernel->runTiming();
  ASSERT_TRUE(GemmRef);
  ASSERT_TRUE(AttnRef);

  for (unsigned Workers : {1u, 2u, 8u}) {
    SessionConfig Config;
    Config.Workers = Workers;
    CompilerSession Pool(Config);
    for (int Rep = 0; Rep < 3; ++Rep) {
      ErrorOr<SimResult> Gemm = G.Kernel->runTiming(SimConfig(), &Pool);
      ErrorOr<SimResult> Attn = A.Kernel->runTiming(SimConfig(), &Pool);
      ASSERT_TRUE(Gemm) << "workers " << Workers;
      ASSERT_TRUE(Attn) << "workers " << Workers;
      EXPECT_EQ(Gemm->BlockCycles, GemmRef->BlockCycles)
          << "workers " << Workers << " rep " << Rep;
      EXPECT_EQ(Gemm->TFlops, GemmRef->TFlops);
      EXPECT_EQ(Gemm->TmaBusyCycles, GemmRef->TmaBusyCycles);
      EXPECT_EQ(Gemm->TensorCoreBusyCycles, GemmRef->TensorCoreBusyCycles);
      EXPECT_TRUE(Gemm->Races.empty());
      EXPECT_EQ(Attn->BlockCycles, AttnRef->BlockCycles)
          << "workers " << Workers << " rep " << Rep;
      EXPECT_EQ(Attn->TFlops, AttnRef->TFlops);
      EXPECT_EQ(Attn->TmaBusyCycles, AttnRef->TmaBusyCycles);
      EXPECT_EQ(Attn->TensorCoreBusyCycles, AttnRef->TensorCoreBusyCycles);
    }
  }
}

//===----------------------------------------------------------------------===//
// Batched vs sequential tuner evaluation
//===----------------------------------------------------------------------===//

TEST(SimulatorParity, BatchedTunerMatchesSequential) {
  // The tuner evaluates candidates on the session's worker pool; the
  // merged landscape must be exactly what a one-worker (sequential) sweep
  // produces — same order, same statuses, same TFLOP/s bits.
  GemmConfig Base;
  Base.M = Base.N = Base.K = 4096;

  SessionConfig Sequential;
  Sequential.Workers = 1;
  CompilerSession SeqSession(Sequential);
  Tuner SeqTuner(SeqSession);
  TuneResult SeqResult = SeqTuner.tune(gemmSearchSpec(Base, gemmSweepAxes()),
                                       MachineModel::h100());

  SessionConfig Batched;
  Batched.Workers = 4;
  CompilerSession BatchSession(Batched);
  Tuner BatchTuner(BatchSession);
  TuneResult BatchResult = BatchTuner.tune(
      gemmSearchSpec(Base, gemmSweepAxes()), MachineModel::h100());

  ASSERT_EQ(SeqResult.Landscape.size(), BatchResult.Landscape.size());
  for (size_t I = 0; I < SeqResult.Landscape.size(); ++I) {
    const CandidateResult &Seq = SeqResult.Landscape[I];
    const CandidateResult &Batch = BatchResult.Landscape[I];
    EXPECT_EQ(Seq.Point.str(), Batch.Point.str()) << "row " << I;
    EXPECT_EQ(Seq.Status, Batch.Status) << "row " << I;
    EXPECT_EQ(Seq.TFlops, Batch.TFlops) << "row " << I;
    EXPECT_EQ(Seq.SharedBytes, Batch.SharedBytes) << "row " << I;
  }
  ASSERT_NE(SeqResult.best(), nullptr);
  ASSERT_NE(BatchResult.best(), nullptr);
  EXPECT_EQ(SeqResult.best()->Point.str(), BatchResult.best()->Point.str());

  // Evaluated rows carry their simulate wall time (cache-replayed rows
  // report the original evaluation's, like CompileMicros).
  for (const CandidateResult &Row : BatchResult.Landscape) {
    if (Row.Status == CandidateStatus::Evaluated) {
      EXPECT_GT(Row.SimulateMicros, 0.0);
    }
  }
}
