//===- CompilerParityTest.cpp - Mid-end byte-for-byte parity tests ----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the printed IR after *every* compiler pass against goldens recorded
/// from the pre-rewrite mid-end (the rescan-based copy elimination and
/// shared_ptr ScalarExpr trees, commit ec840e7), so the worklist-driven
/// flat-graph rewrite — and any future compiler hot-path work — must stay
/// output-identical while getting faster. Same spirit as
/// SimulatorParityTest, but for the compiler: the golden is the full
/// CYPRESS_PRINT_IR_AFTER_ALL dump of a pipeline run, compared byte for
/// byte.
///
/// Regenerate with CYPRESS_UPDATE_GOLDENS=1 (writes into the source tree's
/// tests/goldens/) after an *intentional* output change; never to paper
/// over an unintentional one.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace cypress;

#ifndef CYPRESS_GOLDEN_DIR
#error "CYPRESS_GOLDEN_DIR must point at tests/goldens"
#endif

namespace {

/// Compiles \p Input through the default pipeline with per-pass IR dumping
/// into a string: the exact byte stream CYPRESS_PRINT_IR_AFTER_ALL would
/// print, one "// --- IR after <pass> ---" section per stage.
std::string dumpPipeline(const CompileInput &Input) {
  std::ostringstream OS;
  PassPipeline Pipeline = PassPipeline::defaultPipeline();
  Pipeline.setPrintIRAfterAll(true);
  Pipeline.setPrintStream(OS);
  ErrorOr<IRModule> Module = Pipeline.run(Input);
  EXPECT_TRUE(Module) << (Module ? "" : Module.diagnostic().str());
  return OS.str();
}

std::string goldenPath(const std::string &Name) {
  return std::string(CYPRESS_GOLDEN_DIR) + "/" + Name + ".ir";
}

void checkGolden(const std::string &Name, const CompileInput &Input) {
  std::string Dump = dumpPipeline(Input);
  ASSERT_FALSE(Dump.empty());

  const char *Update = std::getenv("CYPRESS_UPDATE_GOLDENS");
  if (Update && *Update && std::string(Update) != "0") {
    std::ofstream Out(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << goldenPath(Name);
    Out << Dump;
    return;
  }

  std::ifstream In(goldenPath(Name), std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden " << goldenPath(Name)
                         << " (record with CYPRESS_UPDATE_GOLDENS=1)";
  std::ostringstream Golden;
  Golden << In.rdbuf();
  std::string Expected = Golden.str();

  if (Dump == Expected)
    return;
  // Byte mismatch: report the first differing pass section compactly
  // instead of two multi-thousand-line strings.
  size_t Pos = 0;
  while (Pos < Dump.size() && Pos < Expected.size() &&
         Dump[Pos] == Expected[Pos])
    ++Pos;
  size_t LineStart = Expected.rfind('\n', Pos);
  LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
  size_t Section = Expected.rfind("// --- IR after", Pos);
  std::string SectionName =
      Section == std::string::npos
          ? "<preamble>"
          : Expected.substr(Section, Expected.find('\n', Section) - Section);
  FAIL() << Name << ": printed IR diverges from golden at byte " << Pos
         << " (in section '" << SectionName << "')\n  golden: "
         << Expected.substr(LineStart, 120) << "\n  actual: "
         << Dump.substr(LineStart, 120);
}

} // namespace

//===----------------------------------------------------------------------===//
// The six pinned kernels
//===----------------------------------------------------------------------===//

TEST(CompilerParity, Gemm4096) {
  GemmConfig Config;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  std::vector<TensorType> Args = gemmArgTypes(Config);
  checkGolden("gemm_4096",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}

TEST(CompilerParity, GemmSmall) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  std::vector<TensorType> Args = gemmArgTypes(Config);
  checkGolden("gemm_small",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}

TEST(CompilerParity, AttentionFa2_4096) {
  AttentionConfig Config = fa2Config(4096);
  TaskRegistry Registry;
  registerAttentionTasks(Registry);
  MappingSpec Mapping = attentionMapping(Config);
  std::vector<TensorType> Args = attentionArgTypes(Config);
  checkGolden("attention_fa2_4096",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}

TEST(CompilerParity, AttentionFa3_4096) {
  AttentionConfig Config = fa3Config(4096);
  TaskRegistry Registry;
  registerAttentionTasks(Registry);
  MappingSpec Mapping = attentionMapping(Config);
  std::vector<TensorType> Args = attentionArgTypes(Config);
  checkGolden("attention_fa3_4096",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}

TEST(CompilerParity, DualGemm4096) {
  GemmConfig Config;
  TaskRegistry Registry;
  registerDualGemmTasks(Registry);
  MappingSpec Mapping = dualGemmMapping(Config);
  std::vector<TensorType> Args = dualGemmArgTypes(Config);
  checkGolden("dual_gemm_4096",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}

TEST(CompilerParity, GemmReduction4096) {
  GemmConfig Config;
  TaskRegistry Registry;
  registerGemmRedTasks(Registry);
  MappingSpec Mapping = gemmRedMapping(Config);
  std::vector<TensorType> Args = gemmRedArgTypes(Config);
  checkGolden("gemm_red_4096",
              {&Registry, &Mapping, &MachineModel::h100(), Args});
}
