//===- AttentionTest.cpp - Flash Attention kernel tests -----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the attention programs (Section 5.3): functional
/// equivalence with a naive softmax(Q.K^T/sqrt(d)).V reference for both the
/// FA2 and FA3 loop structures, the algorithm-restructuring invariant
/// (FA2 and FA3 produce identical results), and structural/timing checks.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

using namespace cypress;

namespace {

AttentionConfig smallConfig(bool Staged) {
  AttentionConfig Config = Staged ? fa3Config(384) : fa2Config(384);
  Config.Heads = 2;
  Config.BC = 64; // More main-loop iterations at the small size.
  return Config;
}

struct Compiled {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
};

Compiled compileAttention(const AttentionConfig &Config) {
  Compiled Result;
  Result.Registry = std::make_unique<TaskRegistry>();
  registerAttentionTasks(*Result.Registry);
  Result.Mapping =
      std::make_unique<MappingSpec>(attentionMapping(Config));
  CompileInput Input{Result.Registry.get(), Result.Mapping.get(),
                     &MachineModel::h100(), attentionArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "fa");
  EXPECT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  if (Kernel)
    Result.Kernel = std::move(*Kernel);
  return Result;
}

/// Naive attention for one row of one head.
std::vector<float> referenceRow(const TensorData &Q, const TensorData &K,
                                const TensorData &V, int64_t HeadRow,
                                int64_t SeqLen, int64_t HeadDim,
                                int64_t Row) {
  std::vector<float> Scores(SeqLen);
  float Scale = 1.0f / std::sqrt(static_cast<float>(HeadDim));
  float Max = -3e38f;
  for (int64_t J = 0; J < SeqLen; ++J) {
    float Dot = 0.0f;
    for (int64_t D = 0; D < HeadDim; ++D)
      Dot += Q.at({HeadRow + Row, D}) * K.at({HeadRow + J, D});
    Scores[J] = Dot * Scale;
    Max = std::max(Max, Scores[J]);
  }
  float Denominator = 0.0f;
  for (int64_t J = 0; J < SeqLen; ++J) {
    Scores[J] = std::exp(Scores[J] - Max);
    Denominator += Scores[J];
  }
  std::vector<float> Out(HeadDim, 0.0f);
  for (int64_t J = 0; J < SeqLen; ++J)
    for (int64_t D = 0; D < HeadDim; ++D)
      Out[D] += Scores[J] / Denominator * V.at({HeadRow + J, D});
  return Out;
}

} // namespace

class AttentionVariantTest : public ::testing::TestWithParam<bool> {};

TEST_P(AttentionVariantTest, FunctionalMatchesReference) {
  AttentionConfig Config = smallConfig(GetParam());
  Compiled C = compileAttention(Config);
  ASSERT_NE(C.Kernel, nullptr);

  TensorData O(attentionArgTypes(Config)[0]);
  TensorData Q(attentionArgTypes(Config)[1]);
  TensorData K(attentionArgTypes(Config)[2]);
  TensorData V(attentionArgTypes(Config)[3]);
  fillRandomFp16(Q.raw(), 101);
  fillRandomFp16(K.raw(), 102);
  fillRandomFp16(V.raw(), 103);

  ErrorOr<SimResult> Result = C.Kernel->runFunctional({&O, &Q, &K, &V});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_TRUE(Result->Races.empty());

  for (int64_t Head = 0; Head < Config.Heads; ++Head) {
    int64_t HeadRow = Head * Config.SeqLen;
    for (int64_t Row : {int64_t(0), int64_t(63), int64_t(64), int64_t(200),
                        Config.SeqLen - 1}) {
      std::vector<float> Ref = referenceRow(Q, K, V, HeadRow, Config.SeqLen,
                                            Config.HeadDim, Row);
      for (int64_t D = 0; D < Config.HeadDim; D += 7)
        EXPECT_NEAR(O.at({HeadRow + Row, D}), Ref[D], 2e-3)
            << "head " << Head << " row " << Row << " dim " << D;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fa2AndFa3, AttentionVariantTest,
                         ::testing::Values(false, true));

TEST(Attention, Fa2AndFa3ProduceIdenticalResults) {
  // Section 5.3: the FA3 restructuring is a pure scheduling change — the
  // staged copy must not alter any value.
  AttentionConfig Fa2 = smallConfig(false);
  AttentionConfig Fa3 = smallConfig(true);
  Compiled C2 = compileAttention(Fa2);
  Compiled C3 = compileAttention(Fa3);
  ASSERT_NE(C2.Kernel, nullptr);
  ASSERT_NE(C3.Kernel, nullptr);

  TensorData Q(attentionArgTypes(Fa2)[1]);
  TensorData K(attentionArgTypes(Fa2)[2]);
  TensorData V(attentionArgTypes(Fa2)[3]);
  fillRandomFp16(Q.raw(), 7);
  fillRandomFp16(K.raw(), 8);
  fillRandomFp16(V.raw(), 9);

  TensorData O2(attentionArgTypes(Fa2)[0]);
  TensorData O3(attentionArgTypes(Fa3)[0]);
  ASSERT_TRUE(C2.Kernel->runFunctional({&O2, &Q, &K, &V}));
  ASSERT_TRUE(C3.Kernel->runFunctional({&O3, &Q, &K, &V}));
  EXPECT_EQ(O2.maxAbsDiff(O3), 0.0);
}

TEST(Attention, QStagedIntoSharedOnce) {
  // The mapping places Q in shared memory: exactly one TMA load of the
  // 192x128 Q tile per block, outside the main loop.
  AttentionConfig Config = smallConfig(false);
  Compiled C = compileAttention(Config);
  ASSERT_NE(C.Kernel, nullptr);
  int QLoads = 0;
  walkOps(C.Kernel->module().root(), [&](const Operation &Op) {
    if (Op.Kind != OpKind::Copy || Op.Unit != ExecUnit::TMA)
      return;
    const IRTensor &Dst = C.Kernel->module().tensor(Op.CopyDst.Tensor);
    if (Dst.Mem == Memory::Shared &&
        Dst.Type.Dims == Shape({Config.BR, Config.HeadDim}) &&
        Dst.PipelineDepth == 1)
      ++QLoads;
  });
  EXPECT_EQ(QLoads, 1);
}

TEST(Attention, KvTilesArePipelined) {
  AttentionConfig Config = smallConfig(false);
  Compiled C = compileAttention(Config);
  ASSERT_NE(C.Kernel, nullptr);
  int PipelinedTiles = 0;
  for (const IRTensor &T : C.Kernel->module().tensors())
    if (T.Mem == Memory::Shared && T.PipelineDepth == Config.Pipe)
      ++PipelinedTiles;
  EXPECT_GE(PipelinedTiles, 2); // K tile and V tile.
}

TEST(Attention, SoftmaxOverlapsTensorCore) {
  // The online-softmax SIMT work must overlap matrix work: Tensor Core
  // occupancy should stay above 60% of the block schedule.
  AttentionConfig Config = fa2Config(4096);
  Compiled C = compileAttention(Config);
  ASSERT_NE(C.Kernel, nullptr);
  ErrorOr<SimResult> Result = C.Kernel->runTiming();
  ASSERT_TRUE(Result);
  EXPECT_GT(Result->TensorCoreBusyCycles, 0.6 * Result->BlockCycles);
  EXPECT_TRUE(Result->Races.empty());
}

TEST(Attention, ThroughputGrowsWithSequenceLength) {
  // Fixed overheads amortize with longer sequences (Figure 14's shape).
  double Last = 0.0;
  for (int64_t SeqLen : {2048, 4096, 8192}) {
    Compiled C = compileAttention(fa2Config(SeqLen));
    ASSERT_NE(C.Kernel, nullptr);
    ErrorOr<SimResult> Result = C.Kernel->runTiming();
    ASSERT_TRUE(Result);
    EXPECT_GT(Result->TFlops, Last);
    Last = Result->TFlops;
  }
}
