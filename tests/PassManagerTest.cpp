//===- PassManagerTest.cpp - Pass pipeline infrastructure tests ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the instrumented pass pipeline: registered pass ordering, the
/// equivalence of compileToIR with an explicitly built default pipeline,
/// per-pass statistics, inter-stage verification catching an injected
/// malformed module, pass provenance on diagnostics, and IR dumping.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cypress;

namespace {

/// A small GEMM compile input with owned registry/mapping.
struct GemmInput {
  TaskRegistry Registry;
  MappingSpec Mapping;
  std::vector<TensorType> Args;

  explicit GemmInput(int64_t Size = 512) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    registerGemmTasks(Registry);
    Mapping = gemmMapping(Config);
    Args = gemmArgTypes(Config);
  }

  CompileInput input() const {
    return {&Registry, &Mapping, &MachineModel::h100(), Args};
  }
};

/// A pass that deliberately breaks the IR: it makes the first operation
/// wait on an event id that does not exist.
std::unique_ptr<Pass> makeCorruptingPass() {
  return std::make_unique<FunctionPass>(
      "corrupt-module", [](PipelineState &State) {
        if (!State.Module.root().Ops.empty())
          State.Module.root().Ops.front()->Preconds.push_back(
              EventRef::unit(1u << 20));
        return ErrorOrVoid::success();
      });
}

} // namespace

TEST(PassManager, DefaultPipelineOrder) {
  PassPipeline Pipeline = PassPipeline::defaultPipeline();
  const char *Expected[] = {
      "dependence-analysis", "vectorization",       "copy-elimination",
      "assign-exec-units",   "resource-allocation", "repair-event-scopes",
      "warp-specialization"};
  ASSERT_EQ(Pipeline.size(), std::size(Expected));
  for (size_t I = 0; I < Pipeline.size(); ++I)
    EXPECT_STREQ(Pipeline.pass(I).name(), Expected[I]) << "at position " << I;
  // Resource allocation defers verification to repair-event-scopes.
  EXPECT_FALSE(Pipeline.pass(4).verifyAfter());
  EXPECT_TRUE(Pipeline.pass(5).verifyAfter());
}

TEST(PassManager, StatsPopulated) {
  GemmInput Gemm;
  PipelineStats Stats;
  SharedAllocation Alloc;
  ErrorOr<IRModule> Module =
      PassPipeline::defaultPipeline().run(Gemm.input(), &Alloc, &Stats);
  ASSERT_TRUE(Module) << (Module ? "" : Module.diagnostic().message());

  ASSERT_EQ(Stats.Passes.size(), 7u);
  EXPECT_GT(Stats.TotalMicros, 0.0);
  for (const PassStat &Stat : Stats.Passes) {
    EXPECT_FALSE(Stat.Name.empty());
    EXPECT_GE(Stat.Micros, 0.0);
    EXPECT_GT(Stat.OpsAfter, 0u) << Stat.Name;
    EXPECT_GT(Stat.EventsAfter, 0u) << Stat.Name;
    EXPECT_GT(Stat.TensorsAfter, 0u) << Stat.Name;
  }
  // Lookup by name works and copy elimination shrinks the module.
  const PassStat *Dep = Stats.pass("dependence-analysis");
  const PassStat *Cpe = Stats.pass("copy-elimination");
  ASSERT_NE(Dep, nullptr);
  ASSERT_NE(Cpe, nullptr);
  EXPECT_LT(Cpe->OpsAfter, Dep->OpsAfter);
  EXPECT_EQ(Stats.pass("no-such-pass"), nullptr);
}

TEST(PassManager, CompileToIRIsTheDefaultPipeline) {
  GemmInput Gemm;
  SharedAllocation LegacyAlloc, PipelineAlloc;
  ErrorOr<IRModule> Legacy = compileToIR(Gemm.input(), &LegacyAlloc);
  ErrorOr<IRModule> Piped =
      PassPipeline::defaultPipeline().run(Gemm.input(), &PipelineAlloc);
  ASSERT_TRUE(Legacy);
  ASSERT_TRUE(Piped);
  EXPECT_EQ(printModule(*Legacy), printModule(*Piped));
  EXPECT_EQ(LegacyAlloc.TotalBytes, PipelineAlloc.TotalBytes);
  EXPECT_EQ(LegacyAlloc.Entries.size(), PipelineAlloc.Entries.size());
}

TEST(PassManager, VerifierCatchesInjectedMalformedModule) {
  GemmInput Gemm;
  PassPipeline Pipeline;
  Pipeline.addPass(createDependenceAnalysisPass());
  Pipeline.addPass(makeCorruptingPass());

  PipelineStats Stats;
  ErrorOr<IRModule> Module = Pipeline.run(Gemm.input(), nullptr, &Stats);
  ASSERT_FALSE(Module);
  EXPECT_NE(Module.diagnostic().message().find(
                "verification failed after pass 'corrupt-module'"),
            std::string::npos)
      << Module.diagnostic().message();
  EXPECT_NE(Module.diagnostic().message().find("unknown event"),
            std::string::npos);
  EXPECT_EQ(Module.diagnostic().passName(), "corrupt-module");
  // Both passes ran and were measured before the failure surfaced.
  EXPECT_EQ(Stats.Passes.size(), 2u);
}

TEST(PassManager, VerificationCanBeDisabled) {
  GemmInput Gemm;
  PassPipeline Pipeline;
  Pipeline.addPass(createDependenceAnalysisPass());
  Pipeline.addPass(makeCorruptingPass());
  Pipeline.setVerifyEachPass(false);
  EXPECT_TRUE(Pipeline.run(Gemm.input()));
}

TEST(PassManager, DiagnosticsCarryPassProvenance) {
  GemmInput Gemm;
  CompileInput Input = Gemm.input();
  Input.EntryArgTypes.clear(); // Wrong entrypoint arity.
  ErrorOr<IRModule> Module = compileToIR(Input);
  ASSERT_FALSE(Module);
  EXPECT_EQ(Module.diagnostic().passName(), "dependence-analysis");
  // str() prefixes the provenance; message() stays the raw text.
  EXPECT_EQ(Module.diagnostic().str(),
            "[dependence-analysis] " + Module.diagnostic().message());
}

TEST(PassManager, PrintIRAfterAllDumpsEveryPass) {
  GemmInput Gemm;
  std::ostringstream Dump;
  PassPipeline Pipeline = PassPipeline::defaultPipeline();
  Pipeline.setPrintIRAfterAll(true);
  Pipeline.setPrintStream(Dump);
  ASSERT_TRUE(Pipeline.run(Gemm.input()));
  std::string Text = Dump.str();
  EXPECT_NE(Text.find("IR after dependence-analysis"), std::string::npos);
  EXPECT_NE(Text.find("IR after warp-specialization"), std::string::npos);
  EXPECT_NE(Text.find("pfor"), std::string::npos);
}
