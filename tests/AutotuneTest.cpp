//===- AutotuneTest.cpp - Autotuning subsystem tests -------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers src/autotune/: MappingSpace enumeration order and static
/// pruning (smem overflow, WGMMA band splits, register budget — rejected
/// without ever invoking the pass pipeline), the Tuner's agreement with a
/// brute-force exhaustive sweep, its search-effort accounting, and the
/// content-keyed cost cache.
///
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace cypress;

namespace {

GemmConfig smallGemm() {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 512;
  return Config;
}

/// The explorer grid of Section 5.4 around a small problem.
std::vector<TuningAxis> smallAxes() {
  return {{"U", {64, 128}}, {"V", {128, 256}}, {"PIPE", {1, 2}},
          {"WGS", {1, 2}}};
}

} // namespace

//===----------------------------------------------------------------------===//
// MappingSpace: enumeration and static pruning
//===----------------------------------------------------------------------===//

TEST(MappingSpace, EnumeratesCartesianProductInSweepOrder) {
  KernelSearchSpec Spec = gemmSearchSpec(smallGemm(), smallAxes());
  MappingSpace Space(Spec, MachineModel::h100());

  EXPECT_EQ(Space.size(), 16u);
  EXPECT_EQ(Space.feasibleCount() + Space.prunedCount(), Space.size());

  // Last axis spins fastest: the first two points differ only in WGS.
  const TuningPoint &First = Space.candidates()[0].Point;
  const TuningPoint &Second = Space.candidates()[1].Point;
  EXPECT_EQ(First.str(), "U=64 V=128 PIPE=1 WGS=1");
  EXPECT_EQ(Second.str(), "U=64 V=128 PIPE=1 WGS=2");
  EXPECT_EQ(First.at("U"), 64);
  EXPECT_EQ(First.getOr("PIPE", -1), 1);
  EXPECT_EQ(First.getOr("ABSENT", -1), -1);
  EXPECT_FALSE(First.has("ABSENT"));
  EXPECT_NE(First, Second);
}

TEST(MappingSpace, PrunesBadBandSplitWithDiagnostic) {
  // U=64 with WGS=2 leaves 32-row splits: not a whole WGMMA band.
  KernelSearchSpec Spec =
      gemmSearchSpec(smallGemm(), {{"U", {64}}, {"WGS", {2}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_EQ(Space.size(), 1u);
  ASSERT_FALSE(Space.candidates()[0].feasible());
  EXPECT_NE(Space.candidates()[0].Rejection->message().find("WGMMA"),
            std::string::npos);
}

TEST(MappingSpace, PrunesSharedMemoryOverflow) {
  // (U*W + W*V)*2 bytes * PIPE = (16 + 32) KB * 5 = 240 KB > 227 KB, and
  // the A/B pipeline buffers are concurrently live so nothing can alias.
  KernelSearchSpec Spec =
      gemmSearchSpec(smallGemm(),
                     {{"U", {128}}, {"V", {256}}, {"PIPE", {5}},
                      {"WGS", {2}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_EQ(Space.prunedCount(), 1u);
  EXPECT_NE(Space.candidates()[0].Rejection->message().find("shared memory"),
            std::string::npos);
}

TEST(MappingSpace, PrunesRegisterOverflow) {
  // One warpgroup's 128x256 FP32 accumulator needs 1024 bytes per thread;
  // the H100 register file provides 255 * 4 = 1020.
  KernelSearchSpec Spec =
      gemmSearchSpec(smallGemm(),
                     {{"U", {128}}, {"V", {256}}, {"WGS", {1}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_EQ(Space.prunedCount(), 1u);
  EXPECT_NE(Space.candidates()[0].Rejection->message().find("register"),
            std::string::npos);
}

TEST(MappingSpace, CapacityPrunesAgreeWithTheCompiler) {
  // Soundness: every candidate pruned for a machine-capacity reason (not
  // the band rule, which is real-hardware policy the permissive simulator
  // does not model) must also be rejected by the actual pass pipeline, and
  // every feasible candidate must compile.
  GemmConfig Base = smallGemm();
  KernelSearchSpec Spec = gemmSearchSpec(
      Base, {{"U", {64, 128}}, {"V", {128, 256}}, {"PIPE", {2, 5}},
             {"WGS", {1, 2}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_GT(Space.prunedCount(), 0u);
  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    TaskRegistry Registry;
    Spec.Register(Registry);
    MappingSpec Mapping = Spec.BuildMapping(Cand.Point);
    std::vector<TensorType> Args = Spec.BuildArgs(Cand.Point);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
    ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
        compileKernel(Input, "gemm");
    if (Cand.feasible()) {
      EXPECT_TRUE(Kernel) << Cand.Point.str() << ": "
                          << Kernel.diagnostic().message();
    } else if (Cand.Rejection->message().find("WGMMA") == std::string::npos) {
      EXPECT_FALSE(Kernel) << Cand.Point.str()
                           << " pruned for a capacity reason ("
                           << Cand.Rejection->message()
                           << ") but the pipeline accepted it";
    }
  }
}

TEST(MappingSpace, AttentionCapacityPrunesAgreeWithTheCompiler) {
  // Same soundness bar as the GEMM test above, for attention: the
  // validate() lower bounds encode aliasing assumptions about the
  // allocator (K/V pipeline buffers may alias each other, staging may
  // alias the loop), so pin them to the real pipeline: every
  // capacity-pruned candidate must fail compilation, every feasible one
  // must compile.
  KernelSearchSpec Spec = attentionSearchSpec(
      fa2Config(2048),
      {{"WGS", {2, 3}}, {"BR", {128, 192}}, {"BC", {64, 128}},
       {"PIPE", {2, 6}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_GT(Space.prunedCount(), 0u);
  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    TaskRegistry Registry;
    Spec.Register(Registry);
    MappingSpec Mapping = Spec.BuildMapping(Cand.Point);
    std::vector<TensorType> Args = Spec.BuildArgs(Cand.Point);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
    ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
        compileKernel(Input, "fa");
    if (Cand.feasible()) {
      EXPECT_TRUE(Kernel) << Cand.Point.str() << ": "
                          << Kernel.diagnostic().message();
    } else if (Cand.Rejection->message().find("WGMMA") == std::string::npos) {
      EXPECT_FALSE(Kernel) << Cand.Point.str()
                           << " pruned for a capacity reason ("
                           << Cand.Rejection->message()
                           << ") but the pipeline accepted it";
    }
  }
}

TEST(MappingSpace, AttentionPrunesBadConfigs) {
  // fa2Config's BR=192 split over 2 warpgroups is 96 rows: no band fit.
  AttentionConfig Base = fa2Config(2048);
  KernelSearchSpec Spec =
      attentionSearchSpec(Base, {{"WGS", {2, 3}}, {"PIPE", {2, 6}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_EQ(Space.size(), 4u);
  // WGS=2 both pruned (band); WGS=3 PIPE=6 pruned (smem: 48 KB Q + 6 * 32
  // KB K/V = 240 KB > 227 KB); WGS=3 PIPE=2 feasible.
  EXPECT_EQ(Space.prunedCount(), 3u);
  EXPECT_TRUE(Space.candidates()[2].feasible());
  EXPECT_NE(
      Space.candidates()[3].Rejection->message().find("shared memory"),
      std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tuner: pruning short-circuits the pipeline
//===----------------------------------------------------------------------===//

TEST(Tuner, PrunedCandidatesNeverReachThePipeline) {
  CompilerSession Session;
  Tuner Tuner(Session);
  KernelSearchSpec Spec = gemmSearchSpec(smallGemm(), smallAxes());
  MappingSpace Space(Spec, MachineModel::h100());

  TuneResult Result = Tuner.tune(Spec, MachineModel::h100());

  ASSERT_EQ(Result.Stats.Candidates, 16u);
  EXPECT_EQ(Result.Stats.Pruned, Space.prunedCount());
  EXPECT_GT(Result.Stats.Pruned, 0u);
  // Every pipeline run the session saw came from a feasible candidate:
  // pruned ones were rejected before compilation.
  EXPECT_EQ(Session.stats().Misses, Space.feasibleCount());
  EXPECT_EQ(Result.Stats.PipelinesRun, Space.feasibleCount());
  EXPECT_EQ(Result.Stats.Compiled, Space.feasibleCount());
  for (const CandidateResult &Row : Result.Landscape) {
    if (Row.Status == CandidateStatus::Pruned) {
      EXPECT_EQ(Row.Kernel, nullptr);
      EXPECT_FALSE(Row.Detail.empty());
      EXPECT_EQ(Row.CompileMicros, 0.0);
    } else {
      EXPECT_EQ(Row.Status, CandidateStatus::Evaluated);
      EXPECT_NE(Row.Kernel, nullptr);
      EXPECT_GT(Row.TFlops, 0.0);
    }
  }
}

TEST(Tuner, RankedLandscapeMatchesBruteForceExhaustiveSweep) {
  // The pre-refactor sweep: nested loops, the inline band check, a cold
  // compile per candidate, first strict maximum wins.
  GemmConfig Base = smallGemm();
  SimConfig Sim;
  double BestTFlops = -1.0;
  std::string BestName;
  size_t BruteForcePipelines = 0;
  for (int64_t U : {64, 128}) {
    for (int64_t V : {128, 256}) {
      for (int64_t Pipe : {1, 2}) {
        for (int64_t Wgs : {1, 2}) {
          GemmConfig Config = Base;
          Config.U = U;
          Config.V = V;
          Config.Pipe = Pipe;
          Config.WGS = Wgs;
          if (U / Wgs % 64 != 0)
            continue;
          TaskRegistry Registry;
          registerGemmTasks(Registry);
          MappingSpec Mapping = gemmMapping(Config);
          std::vector<TensorType> Args = gemmArgTypes(Config);
          CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                             Args};
          auto Kernel = compileKernel(Input, "gemm");
          ++BruteForcePipelines;
          if (!Kernel)
            continue;
          ErrorOr<SimResult> Timing = (*Kernel)->runTiming(Sim);
          ASSERT_TRUE(Timing);
          if (Timing->TFlops > BestTFlops) {
            BestTFlops = Timing->TFlops;
            BestName = "U=" + std::to_string(U) + " V=" + std::to_string(V) +
                       " PIPE=" + std::to_string(Pipe) +
                       " WGS=" + std::to_string(Wgs);
          }
        }
      }
    }
  }

  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Result =
      Tuner.tune(gemmSearchSpec(Base, smallAxes()), MachineModel::h100(), Sim);

  const CandidateResult *Best = Result.best();
  ASSERT_NE(Best, nullptr);
  EXPECT_EQ(Best->Point.str(), BestName);
  EXPECT_DOUBLE_EQ(Best->TFlops, BestTFlops);
  // The acceptance bar: same best mapping, strictly fewer pipeline runs
  // (static pruning catches what the brute-force sweep only discovers by
  // compiling).
  EXPECT_LT(Result.Stats.PipelinesRun, BruteForcePipelines);
}

//===----------------------------------------------------------------------===//
// Tuner: caches
//===----------------------------------------------------------------------===//

TEST(Tuner, CostCacheReplaysRepeatedSweepsWithoutCompiling) {
  CompilerSession Session;
  Tuner Tuner(Session);
  KernelSearchSpec Spec = gemmSearchSpec(smallGemm(), smallAxes());

  TuneResult First = Tuner.tune(Spec, MachineModel::h100());
  uint64_t MissesAfterFirst = Session.stats().Misses;
  ASSERT_GT(Tuner.costCacheSize(), 0u);

  TuneResult Second = Tuner.tune(Spec, MachineModel::h100());
  EXPECT_EQ(Second.Stats.CostCacheHits,
            Second.Stats.Candidates - Second.Stats.Pruned);
  EXPECT_EQ(Second.Stats.PipelinesRun, 0u);
  EXPECT_EQ(Second.Stats.Compiled, 0u);
  EXPECT_EQ(Session.stats().Misses, MissesAfterFirst);

  ASSERT_NE(Second.best(), nullptr);
  EXPECT_EQ(Second.best()->Point, First.best()->Point);
  EXPECT_DOUBLE_EQ(Second.best()->TFlops, First.best()->TFlops);
  EXPECT_TRUE(Second.best()->CostCacheHit);
  // The replay shares the cached kernel object, not a recompile.
  EXPECT_EQ(Second.best()->Kernel.get(), First.best()->Kernel.get());
}

TEST(Tuner, DifferentSimConfigsDoNotShareCostEntries) {
  CompilerSession Session;
  Tuner Tuner(Session);
  KernelSearchSpec Spec =
      gemmSearchSpec(smallGemm(), {{"PIPE", {2}}});

  SimConfig Fast;
  TuneResult First = Tuner.tune(Spec, MachineModel::h100(), Fast);
  SimConfig Slow;
  Slow.TensorCoreFlopsPerCycle /= 2.0;
  TuneResult Second = Tuner.tune(Spec, MachineModel::h100(), Slow);

  // The kernel compile is shared through the session, but the evaluation
  // is not: a different machine calibration is a different cost.
  EXPECT_EQ(Second.Stats.CostCacheHits, 0u);
  EXPECT_EQ(Second.Stats.SessionHits, 1u);
  ASSERT_NE(First.best(), nullptr);
  ASSERT_NE(Second.best(), nullptr);
  EXPECT_GT(First.best()->TFlops, Second.best()->TFlops);
}

TEST(Tuner, OverlappingSweepsShareTheSessionKernelCache) {
  CompilerSession Session;
  Tuner Tuner(Session);
  GemmConfig Base = smallGemm();

  // PIPE=2 appears in both sweeps with identical full configs; the second
  // sweep's evaluation replays from the cost cache (same kernel, same sim).
  TuneResult First =
      Tuner.tune(gemmSearchSpec(Base, {{"PIPE", {1, 2}}}),
                 MachineModel::h100());
  TuneResult Second =
      Tuner.tune(gemmSearchSpec(Base, {{"PIPE", {2, 3}}}),
                 MachineModel::h100());
  EXPECT_EQ(Second.Stats.CostCacheHits, 1u);
  EXPECT_EQ(Second.Stats.PipelinesRun, 1u);

  Tuner.clearCostCache();
  EXPECT_EQ(Tuner.costCacheSize(), 0u);
  // With the cost cache cleared, the session's kernel cache still spares
  // the pipeline: all three depths are resident.
  TuneResult Third =
      Tuner.tune(gemmSearchSpec(Base, {{"PIPE", {1, 2, 3}}}),
                 MachineModel::h100());
  EXPECT_EQ(Third.Stats.PipelinesRun, 0u);
  EXPECT_EQ(Third.Stats.SessionHits, 3u);
}

TEST(Tuner, CompileErrorsAreReportedWithPassProvenance) {
  // Disable pruning so a register-infeasible candidate reaches the pass
  // pipeline: the tuner must surface the allocator's diagnostic, tagged
  // with the failing pass, instead of caching or mis-ranking it.
  GemmConfig Bad;
  Bad.M = Bad.N = Bad.K = 512;
  Bad.U = 128;
  Bad.V = 256;
  Bad.WGS = 1; // 1024 bytes/thread of accumulator: register overflow.
  KernelSearchSpec Spec = gemmSearchSpec(Bad, {{"PIPE", {2}}});
  Spec.Feasible = nullptr; // Disable pruning: the pipeline must catch it.

  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Result = Tuner.tune(Spec, MachineModel::h100());
  ASSERT_EQ(Result.Landscape.size(), 1u);
  EXPECT_EQ(Result.Landscape[0].Status, CandidateStatus::CompileError);
  EXPECT_NE(Result.Landscape[0].Detail.find("resource-allocation"),
            std::string::npos);
  EXPECT_EQ(Result.best(), nullptr);
  EXPECT_EQ(Result.Stats.CompileErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Lazy enumeration and the guided spaces
//===----------------------------------------------------------------------===//

TEST(MappingSpace, LazyEnumerationMatchesMaterializedPointForPoint) {
  // The lazy index decode must reproduce the eager odometer exactly:
  // same points, same order, same verdicts — flat indices are part of the
  // guided search's determinism contract.
  GemmConfig Base = smallGemm();
  KernelSearchSpec Spec = gemmSearchSpec(Base, gemmGuidedAxes());
  MappingSpace Space(Spec, MachineModel::h100());
  const std::vector<MappingSpace::Candidate> &All = Space.candidates();
  ASSERT_EQ(All.size(), Space.size());
  size_t Feasible = 0;
  std::unordered_set<uint64_t> Fingerprints;
  Fingerprints.reserve(Space.size());
  for (size_t I = 0; I < Space.size(); ++I) {
    MappingSpace::Candidate Lazy = Space.candidateAt(I);
    ASSERT_EQ(Lazy.Point, All[I].Point) << "index " << I;
    ASSERT_EQ(Lazy.feasible(), All[I].feasible()) << "index " << I;
    Feasible += Lazy.feasible() ? 1 : 0;
    // Distinct points must get distinct 64-bit fingerprints (the guided
    // search's visited-set would silently skip points on a collision).
    EXPECT_TRUE(Fingerprints.insert(Lazy.Point.fingerprint()).second)
        << "fingerprint collision at index " << I;
  }
  EXPECT_EQ(Space.feasibleCount(), Feasible);
  // Equal points hash equal, across separately-built instances.
  EXPECT_EQ(Space.pointAt(7).fingerprint(),
            Space.candidateAt(7).Point.fingerprint());
}

TEST(MappingSpace, GuidedSpacesClearTheScaleFloors) {
  // The tentpole's space-size bar: >= 10^4 statically feasible gemm
  // points and >= 10^3 attention points on H100.
  KernelSearchSpec Gemm = gemmSearchSpec(GemmConfig(), gemmGuidedAxes());
  MappingSpace GemmSpace(Gemm, MachineModel::h100());
  EXPECT_GE(GemmSpace.size(), 10000u);
  EXPECT_GE(GemmSpace.feasibleCount(), 10000u);

  KernelSearchSpec Attn =
      attentionSearchSpec(fa2Config(4096), attentionGuidedAxes());
  MappingSpace AttnSpace(Attn, MachineModel::h100());
  EXPECT_GE(AttnSpace.feasibleCount(), 1000u);
}

TEST(MappingSpace, GemmStreamAxisPrunesAgreeWithTheCompiler) {
  // Same soundness bar as CapacityPrunesAgreeWithTheCompiler, for every
  // new axis: per-stream pipeline depths (PIPE_A/PIPE_B), exec-unit
  // assignment (TMA_A/TMA_B), and the shared-memory cap (SMEM). A
  // capacity rejection must imply a pipeline rejection, and every
  // feasible point must compile — including SIMT-pinned copies and
  // per-stream depths the allocator sizes individually.
  GemmConfig Base = smallGemm();
  KernelSearchSpec Spec = gemmSearchSpec(
      Base, {{"U", {128}}, {"V", {256}}, {"PIPE", {2}}, {"WGS", {2}},
             {"PIPE_A", {0, 5}}, {"PIPE_B", {0, 5}}, {"TMA_A", {0, 1}},
             {"TMA_B", {0, 1}}, {"SMEM", {0, 64}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_GT(Space.prunedCount(), 0u);
  ASSERT_GT(Space.feasibleCount(), 0u);
  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    TaskRegistry Registry;
    Spec.Register(Registry);
    MappingSpec Mapping = Spec.BuildMapping(Cand.Point);
    std::vector<TensorType> Args = Spec.BuildArgs(Cand.Point);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
    ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
        compileKernel(Input, "gemm");
    if (Cand.feasible()) {
      EXPECT_TRUE(Kernel) << Cand.Point.str() << ": "
                          << Kernel.diagnostic().message();
    } else if (Cand.Rejection->message().find("WGMMA") == std::string::npos) {
      EXPECT_FALSE(Kernel) << Cand.Point.str()
                           << " pruned for a capacity reason ("
                           << Cand.Rejection->message()
                           << ") but the pipeline accepted it";
    }
  }
}

TEST(MappingSpace, AttentionStreamAxisPrunesAgreeWithTheCompiler) {
  // The attention analogue: PIPE_K/PIPE_V overrides and the SMEM cap.
  KernelSearchSpec Spec = attentionSearchSpec(
      fa2Config(2048),
      {{"BC", {64, 128}}, {"PIPE", {2}}, {"PIPE_K", {0, 6}},
       {"PIPE_V", {0, 6}}, {"SMEM", {0, 96}}});
  MappingSpace Space(Spec, MachineModel::h100());
  ASSERT_GT(Space.prunedCount(), 0u);
  ASSERT_GT(Space.feasibleCount(), 0u);
  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    TaskRegistry Registry;
    Spec.Register(Registry);
    MappingSpec Mapping = Spec.BuildMapping(Cand.Point);
    std::vector<TensorType> Args = Spec.BuildArgs(Cand.Point);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
    ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
        compileKernel(Input, "fa");
    if (Cand.feasible()) {
      EXPECT_TRUE(Kernel) << Cand.Point.str() << ": "
                          << Kernel.diagnostic().message();
    } else if (Cand.Rejection->message().find("WGMMA") == std::string::npos) {
      EXPECT_FALSE(Kernel) << Cand.Point.str()
                           << " pruned for a capacity reason ("
                           << Cand.Rejection->message()
                           << ") but the pipeline accepted it";
    }
  }
}

//===----------------------------------------------------------------------===//
// Budgeted anytime search
//===----------------------------------------------------------------------===//

namespace {

/// The full visit record of a budgeted run: every landscape row's point in
/// ranked order plus the curve's evaluation counts. Two runs with the same
/// signature visited the same points in the same batches and agreed on
/// every comparison.
std::string visitSignature(const TuneResult &Result) {
  std::string Sig;
  for (const CandidateResult &Row : Result.Landscape) {
    Sig += Row.Point.str();
    Sig += '|';
  }
  for (const TuneResult::CurvePoint &C : Result.Curve) {
    Sig += std::to_string(C.Evals);
    Sig += ';';
  }
  return Sig;
}

} // namespace

TEST(Tuner, GuidedSearchIsDeterministicAcrossWorkerCountsAndReruns) {
  // The determinism contract, pinned the way SimulatorParityTest pins
  // sharding: identical best and identical visit sequence at 1, 2, and 8
  // workers, on repeat runs, and with a warm cost cache.
  KernelSearchSpec Spec = gemmSearchSpec(GemmConfig(), gemmGuidedAxes());
  TuneBudget Budget;
  Budget.MaxEvals = 32;

  std::string Reference;
  std::string BestPoint;
  double BestTFlops = 0.0;
  for (unsigned Workers : {1u, 2u, 8u}) {
    SessionConfig Config;
    Config.Workers = Workers;
    CompilerSession Session(Config);
    Tuner Tuner(Session);
    TuneResult Cold =
        Tuner.tuneBudgeted(Spec, MachineModel::h100(), Budget);
    ASSERT_NE(Cold.best(), nullptr);
    if (Reference.empty()) {
      Reference = visitSignature(Cold);
      BestPoint = Cold.best()->Point.str();
      BestTFlops = Cold.best()->TFlops;
    }
    EXPECT_EQ(visitSignature(Cold), Reference) << Workers << " workers";
    EXPECT_EQ(Cold.best()->Point.str(), BestPoint);
    EXPECT_DOUBLE_EQ(Cold.best()->TFlops, BestTFlops);

    // Warm rerun on the same tuner: every evaluation replays from the
    // cost cache, and the visit sequence must not move an inch.
    TuneResult Warm =
        Tuner.tuneBudgeted(Spec, MachineModel::h100(), Budget);
    EXPECT_EQ(Warm.Stats.CostCacheHits, Warm.Stats.Evals);
    EXPECT_EQ(Warm.Stats.PipelinesRun, 0u);
    EXPECT_EQ(visitSignature(Warm), Reference);
  }
}

TEST(Tuner, GuidedFindsLegacyBestWithHalfThePipelines) {
  // The acceptance bar on the legacy 24-point grid: within 1% of the
  // exhaustive best while running at most half the pipelines.
  KernelSearchSpec Spec = gemmSearchSpec(GemmConfig(), gemmSweepAxes());

  CompilerSession ExhaustiveSession;
  Tuner Exhaustive(ExhaustiveSession);
  TuneResult Full = Exhaustive.tune(Spec, MachineModel::h100());
  ASSERT_NE(Full.best(), nullptr);

  CompilerSession GuidedSession;
  Tuner Guided(GuidedSession);
  TuneBudget Budget;
  Budget.MaxEvals = Full.Stats.PipelinesRun / 2;
  TuneResult Result =
      Guided.tuneBudgeted(Spec, MachineModel::h100(), Budget);
  ASSERT_NE(Result.best(), nullptr);
  EXPECT_LE(Result.Stats.PipelinesRun, Full.Stats.PipelinesRun / 2);
  EXPECT_GE(Result.best()->TFlops, 0.99 * Full.best()->TFlops);
  ASSERT_FALSE(Result.Curve.empty());
  EXPECT_EQ(Result.Curve.back().Evals, Result.Stats.Evals);
}

TEST(Tuner, BudgetedFallsBackToExhaustiveOnSmallSpaces) {
  // Spaces brute force can afford get brute force: same landscape and
  // best as tune(), one round, full coverage.
  KernelSearchSpec Spec = gemmSearchSpec(smallGemm(), smallAxes());
  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Exhaustive = Tuner.tune(Spec, MachineModel::h100());
  TuneResult Budgeted =
      Tuner.tuneBudgeted(Spec, MachineModel::h100(), TuneBudget());
  ASSERT_NE(Budgeted.best(), nullptr);
  EXPECT_EQ(Budgeted.Stats.Rounds, 1u);
  EXPECT_EQ(Budgeted.Stats.Evals,
            Exhaustive.Stats.Candidates - Exhaustive.Stats.Pruned);
  EXPECT_EQ(Budgeted.best()->Point, Exhaustive.best()->Point);
  EXPECT_DOUBLE_EQ(Budgeted.best()->TFlops, Exhaustive.best()->TFlops);
}

TEST(Tuner, WallClockBudgetStillCompletesOneRound) {
  // The anytime contract: even an already-expired wall budget yields a
  // best-effort candidate from one completed round.
  KernelSearchSpec Spec = gemmSearchSpec(GemmConfig(), gemmGuidedAxes());
  CompilerSession Session;
  Tuner Tuner(Session);
  TuneBudget Budget;
  Budget.WallClockMs = 0.0001;
  TuneResult Result = Tuner.tuneBudgeted(Spec, MachineModel::h100(), Budget);
  EXPECT_EQ(Result.Stats.Rounds, 1u);
  ASSERT_NE(Result.best(), nullptr);
  EXPECT_GT(Result.best()->TFlops, 0.0);
}

TEST(Tuner, ExhaustiveTuneRefusesOversizedSpaces) {
  // tune() on a 77k-point space must return the cap diagnostic instead of
  // materializing and sweeping it (the analogue of the simulator's
  // event-slot cap).
  KernelSearchSpec Spec = gemmSearchSpec(GemmConfig(), gemmGuidedAxes());
  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Result = Tuner.tune(Spec, MachineModel::h100());
  EXPECT_TRUE(Result.Landscape.empty());
  EXPECT_EQ(Result.best(), nullptr);
  EXPECT_NE(Result.Error.find("tuneBudgeted"), std::string::npos);
  EXPECT_EQ(Result.Stats.PipelinesRun, 0u);
}

TEST(Tuner, AttentionSweepFindsThePaperTuning) {
  // On the default attention axes the paper's FA2 tuning (three consumer
  // warpgroups over 192-row query blocks) must at least compile and land
  // in the evaluated part of the landscape.
  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Result = Tuner.tune(
      attentionSearchSpec(fa2Config(2048),
                          {{"WGS", {3}}, {"BR", {192}}, {"BC", {64, 128}}}),
      MachineModel::h100());
  ASSERT_NE(Result.best(), nullptr);
  EXPECT_EQ(Result.best()->Point.at("BR"), 192);
  EXPECT_GT(Result.best()->TFlops, 0.0);
}
