//===- SupportTest.cpp - Unit tests for the support library -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Format.h"
#include "support/Fp16.h"
#include "support/MathUtil.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace cypress;

//===----------------------------------------------------------------------===//
// FP16 emulation
//===----------------------------------------------------------------------===//

TEST(Fp16, ExactSmallIntegersRoundTrip) {
  for (int I = -2048; I <= 2048; ++I) {
    float Value = static_cast<float>(I);
    EXPECT_EQ(quantizeFp16(Value), Value) << "integer " << I;
  }
}

TEST(Fp16, PowersOfTwoRoundTrip) {
  for (int E = -14; E <= 15; ++E) {
    float Value = std::ldexp(1.0f, E);
    EXPECT_EQ(quantizeFp16(Value), Value) << "exponent " << E;
  }
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(fp32ToFp16Bits(0.0f), 0x0000u);
  EXPECT_EQ(fp32ToFp16Bits(-0.0f), 0x8000u);
  EXPECT_EQ(fp32ToFp16Bits(1.0f), 0x3c00u);
  EXPECT_EQ(fp32ToFp16Bits(-2.0f), 0xc000u);
  EXPECT_EQ(fp32ToFp16Bits(65504.0f), 0x7bffu); // Max finite half.
  EXPECT_EQ(fp32ToFp16Bits(0.5f), 0x3800u);
}

TEST(Fp16, OverflowBecomesInfinity) {
  EXPECT_EQ(fp32ToFp16Bits(1.0e6f), 0x7c00u);
  EXPECT_EQ(fp32ToFp16Bits(-1.0e6f), 0xfc00u);
  EXPECT_TRUE(std::isinf(quantizeFp16(70000.0f)));
}

TEST(Fp16, NanPropagates) {
  float Nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(quantizeFp16(Nan)));
}

TEST(Fp16, SubnormalsRepresentable) {
  // Smallest positive half subnormal = 2^-24.
  float Tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(quantizeFp16(Tiny), Tiny);
  // Below half of it rounds to zero.
  EXPECT_EQ(quantizeFp16(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10; ties to even -> 1.0.
  float Halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(quantizeFp16(Halfway), 1.0f);
  // Slightly above the tie rounds up.
  float Above = 1.0f + std::ldexp(1.5f, -11);
  EXPECT_EQ(quantizeFp16(Above), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16, QuantizationErrorBounded) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    float Value = static_cast<float>(Rng.nextIn(-100.0, 100.0));
    float Quantized = quantizeFp16(Value);
    // Relative error bounded by 2^-11 for normal halves.
    EXPECT_LE(std::fabs(Quantized - Value),
              std::fabs(Value) * 0x1p-10f + 1e-6f);
    // Idempotence: re-quantizing changes nothing.
    EXPECT_EQ(quantizeFp16(Quantized), Quantized);
  }
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, UnitRangeAndSpread) {
  SplitMix64 Rng(1);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = Rng.nextUnit();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(Random, FillIsFp16Quantized) {
  std::vector<float> Buffer(256);
  fillRandomFp16(Buffer, 3);
  for (float V : Buffer) {
    EXPECT_GE(V, -1.0f);
    EXPECT_LE(V, 1.0f);
    EXPECT_EQ(quantizeFp16(V), V);
  }
}

TEST(Random, SeedChangesSequence) {
  std::vector<float> A(64), B(64);
  fillRandomFp16(A, 1);
  fillRandomFp16(B, 2);
  EXPECT_NE(A, B);
}

//===----------------------------------------------------------------------===//
// Math utilities
//===----------------------------------------------------------------------===//

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceilDiv(0, 4), 0);
  EXPECT_EQ(ceilDiv(1, 4), 1);
  EXPECT_EQ(ceilDiv(4, 4), 1);
  EXPECT_EQ(ceilDiv(5, 4), 2);
  EXPECT_EQ(ceilDiv(4096, 128), 32);
}

TEST(MathUtil, AlignUp) {
  EXPECT_EQ(alignUp(0, 128), 0);
  EXPECT_EQ(alignUp(1, 128), 128);
  EXPECT_EQ(alignUp(128, 128), 128);
  EXPECT_EQ(alignUp(129, 128), 256);
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(-4));
}

//===----------------------------------------------------------------------===//
// Error handling / formatting
//===----------------------------------------------------------------------===//

TEST(Error, ValueAndDiagnostic) {
  ErrorOr<int> Ok(7);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 7);

  ErrorOr<int> Bad = Diagnostic("things went sideways");
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.diagnostic().message(), "things went sideways");
}

TEST(Error, VoidResult) {
  ErrorOrVoid Ok = ErrorOrVoid::success();
  EXPECT_TRUE(Ok);
  ErrorOrVoid Bad = Diagnostic("nope");
  EXPECT_FALSE(Bad);
  EXPECT_EQ(Bad.diagnostic().message(), "nope");
}

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(Format, JoinAndIndent) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(indentLines("x\ny", 2), "  x\n  y\n");
}
