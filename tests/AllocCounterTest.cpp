//===- AllocCounterTest.cpp - Heap-allocation accounting tests -------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the opt-in counting-allocator hook (support/AllocCounter.h)
/// and the measurements built on it: per-pass HeapAllocs in PipelineStats,
/// and the simulator's pooled-scratch steady state. These pin the
/// "allocation-free steady state" claim as a measured bound instead of a
/// comment. Every test skips when the hook is compiled out (sanitizer
/// builds own the allocator there).
///
//===----------------------------------------------------------------------===//

#include "TestKernels.h"
#include "compiler/PassManager.h"
#include "support/AllocCounter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace cypress;
using namespace cypress::testkernels;

namespace {

/// Allocations on this thread across \p Fn, with counting enabled just for
/// the measurement.
template <typename Fn> uint64_t allocsDuring(Fn &&F) {
  setAllocCounting(true);
  uint64_t Before = threadAllocCount();
  F();
  uint64_t After = threadAllocCount();
  setAllocCounting(false);
  return After - Before;
}

TEST(AllocCounter, CountsOnlyWhileEnabled) {
  if (!allocCounterActive())
    GTEST_SKIP() << "alloc counter compiled out (sanitizer build)";

  uint64_t Counted = allocsDuring([] {
    std::vector<std::unique_ptr<int>> Held;
    for (int I = 0; I < 8; ++I)
      Held.push_back(std::make_unique<int>(I));
  });
  EXPECT_GE(Counted, 8u);

  uint64_t Before = threadAllocCount();
  {
    std::vector<std::unique_ptr<int>> Held;
    for (int I = 0; I < 8; ++I)
      Held.push_back(std::make_unique<int>(I));
  }
  EXPECT_EQ(threadAllocCount(), Before);
}

TEST(AllocCounter, PipelineRecordsPerPassAllocs) {
  if (!allocCounterActive())
    GTEST_SKIP() << "alloc counter compiled out (sanitizer build)";

  GemmConfig Config;
  Config.M = Config.N = Config.K = 4096;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  std::vector<TensorType> Args = gemmArgTypes(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};

  // Opt-in off: the stat stays zero even though the passes allocate.
  PassPipeline Plain = PassPipeline::defaultPipeline();
  PipelineStats PlainStats;
  ASSERT_TRUE(bool(Plain.run(Input, nullptr, &PlainStats)));
  for (const PassStat &S : PlainStats.Passes)
    EXPECT_EQ(S.HeapAllocs, 0u) << S.Name;

  // Opt-in on: dependence analysis builds the module from scratch, so it
  // must report allocations.
  PassPipeline Counting = PassPipeline::defaultPipeline();
  Counting.setCountAllocs(true);
  PipelineStats Stats;
  ASSERT_TRUE(bool(Counting.run(Input, nullptr, &Stats)));
  const PassStat *DepAnalysis = Stats.pass("dependence-analysis");
  ASSERT_NE(DepAnalysis, nullptr);
  EXPECT_GT(DepAnalysis->HeapAllocs, 0u);
  EXPECT_FALSE(allocCountingEnabled()) << "run() must restore the flag";
}

/// The claim under test (Simulator.cpp): pooled thread-local scratch makes
/// repeated runTiming calls allocation-free in steady state. Measured
/// honestly: a warm run still allocates a bounded handful — the returned
/// SimResult and its vectors — so "allocation-free" is pinned as a small
/// per-run constant that does not grow with the kernel's instance count
/// (single digits against tens of thousands of instances). The scratch
/// pools are thread-local and shared across kernels, so the cold-build
/// comparison only holds for the first kernel this thread simulates.
TEST(AllocCounter, SimulatorSteadyStateAllocationBound) {
  if (!allocCounterActive())
    GTEST_SKIP() << "alloc counter compiled out (sanitizer build)";

  struct Case {
    const char *Name;
    Compiled Kernel;
  };
  Case Cases[2] = {{"gemm", compileGemm(headlineGemmConfig())},
                   {"fa2_4096", compileAttention(fa2Config(4096))}};

  bool FirstOnThread = true;
  for (Case &C : Cases) {
    ASSERT_TRUE(C.Kernel.Kernel) << C.Name << ": " << C.Kernel.Error;
    const CompiledKernel &Kernel = *C.Kernel.Kernel;

    // First run: arenas grow (from empty for the thread's first kernel).
    uint64_t Cold = allocsDuring([&] {
      ErrorOr<SimResult> R = Kernel.runTiming();
      ASSERT_TRUE(bool(R));
    });

    // Warm the pools past any lazy growth before measuring steady state.
    for (int I = 0; I < 3; ++I)
      ASSERT_TRUE(bool(Kernel.runTiming()));

    const int Runs = 5;
    uint64_t Warm = allocsDuring([&] {
      for (int I = 0; I < Runs; ++I)
        ASSERT_TRUE(bool(Kernel.runTiming()));
    });
    uint64_t WarmPerRun = Warm / Runs;

    RecordProperty(std::string(C.Name) + "_cold_allocs",
                   static_cast<int>(Cold));
    RecordProperty(std::string(C.Name) + "_warm_allocs_per_run",
                   static_cast<int>(WarmPerRun));

    // Steady state: a bounded constant, not proportional to instances.
    EXPECT_LE(WarmPerRun, 16u) << C.Name << " warm=" << Warm;
    if (FirstOnThread) {
      EXPECT_LT(WarmPerRun * 10, Cold)
          << C.Name << " cold=" << Cold << " warm/run=" << WarmPerRun;
    }
    FirstOnThread = false;
  }
}

} // namespace
