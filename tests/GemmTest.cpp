//===- GemmTest.cpp - End-to-end GEMM kernel tests ---------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the Figure 5 GEMM program: compile through all six
/// stages, execute functionally on the simulator, and compare against a
/// naive reference. The central property (Section 3): mapping decisions
/// affect performance only, never results.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cypress;

namespace {

/// Naive FP16-quantized reference: C = A x B with FP32 accumulation.
void referenceGemm(const TensorData &A, const TensorData &B, TensorData &C) {
  int64_t M = C.shape().dim(0), N = C.shape().dim(1);
  int64_t K = A.shape().dim(1);
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Acc = 0.0f;
      for (int64_t KK = 0; KK < K; ++KK)
        Acc += A.at({I, KK}) * B.at({KK, J});
      C.set({I, J}, Acc);
    }
}

GemmConfig smallConfig() {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  Config.U = 128;
  Config.V = 256;
  Config.W = 64;
  Config.WGS = 2;
  Config.Pipe = 3;
  return Config;
}

std::unique_ptr<CompiledKernel> compileGemm(const GemmConfig &Config) {
  auto Registry = std::make_shared<TaskRegistry>();
  registerGemmTasks(*Registry);
  auto Mapping = std::make_shared<MappingSpec>(gemmMapping(Config));
  CompileInput Input;
  Input.Registry = Registry.get();
  Input.Mapping = Mapping.get();
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = gemmArgTypes(Config);
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "gemm");
  EXPECT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  if (!Kernel)
    return nullptr;
  // Keep registry/mapping alive for the kernel's lifetime via static
  // storage in tests (kernels hold no references after compilation).
  static std::vector<std::shared_ptr<TaskRegistry>> Registries;
  static std::vector<std::shared_ptr<MappingSpec>> Mappings;
  Registries.push_back(Registry);
  Mappings.push_back(Mapping);
  return std::move(*Kernel);
}

} // namespace

TEST(Gemm, CompilesCleanly) {
  auto Kernel = compileGemm(smallConfig());
  ASSERT_NE(Kernel, nullptr);
  // The lowered module still verifies.
  EXPECT_TRUE(verifyModule(Kernel->module()));
}

TEST(Gemm, AccumulatorStaysInRegisters) {
  auto Kernel = compileGemm(smallConfig());
  ASSERT_NE(Kernel, nullptr);
  // The block accumulator was mapped to `none`: after copy elimination no
  // surviving operation may reference a none-memory tensor, and the k-loop
  // body must not spill the accumulator (no register<->register copies of
  // the accumulator inside the loop).
  walkOps(Kernel->module().root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::Copy) {
      EXPECT_NE(Kernel->module().tensor(Op.CopySrc.Tensor).Mem,
                Memory::None);
      EXPECT_NE(Kernel->module().tensor(Op.CopyDst.Tensor).Mem,
                Memory::None);
    }
  });
}

TEST(Gemm, MainLoopUsesTma) {
  auto Kernel = compileGemm(smallConfig());
  ASSERT_NE(Kernel, nullptr);
  int TmaLoads = 0;
  walkOps(Kernel->module().root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::Copy && Op.Unit == ExecUnit::TMA)
      ++TmaLoads;
  });
  // A and B tile loads plus the staged store-out.
  EXPECT_GE(TmaLoads, 3);
}

TEST(Gemm, FunctionalMatchesReference) {
  GemmConfig Config = smallConfig();
  auto Kernel = compileGemm(Config);
  ASSERT_NE(Kernel, nullptr);

  TensorData C(gemmArgTypes(Config)[0]);
  TensorData A(gemmArgTypes(Config)[1]);
  TensorData B(gemmArgTypes(Config)[2]);
  fillRandomFp16(A.raw(), 11);
  fillRandomFp16(B.raw(), 22);

  ErrorOr<SimResult> Result = Kernel->runFunctional({&C, &A, &B});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_TRUE(Result->FunctionalRan);
  EXPECT_TRUE(Result->Races.empty())
      << "first race: " << (Result->Races.empty() ? "" : Result->Races[0]);

  TensorData Ref(gemmArgTypes(Config)[0]);
  referenceGemm(A, B, Ref);
  EXPECT_LT(C.maxAbsDiff(Ref), 0.25) // FP16 storage tolerance over K=128.
      << "functional GEMM diverges from the reference";
}

TEST(Gemm, SingleWarpgroupExceedsRegisterFile) {
  // Section 3.4: the 128x256 FP32 accumulator on a single warpgroup needs
  // 256 registers per thread, over the 255-register CUDA limit; the
  // compiler must reject the mapping rather than mis-compile.
  GemmConfig Config = smallConfig();
  Config.WGS = 1;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input;
  Input.Registry = &Registry;
  Input.Mapping = &Mapping;
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = gemmArgTypes(Config);
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "gemm");
  ASSERT_FALSE(Kernel);
  EXPECT_NE(Kernel.diagnostic().message().find("register"),
            std::string::npos);
}

TEST(Gemm, MappingChangesPerformanceNotResults) {
  GemmConfig Fast = smallConfig();
  GemmConfig Slow = smallConfig();
  Slow.Pipe = 1;
  Slow.WarpSpecialize = false;

  auto KernelFast = compileGemm(Fast);
  auto KernelSlow = compileGemm(Slow);
  ASSERT_NE(KernelFast, nullptr);
  ASSERT_NE(KernelSlow, nullptr);

  TensorData A(gemmArgTypes(Fast)[1]);
  TensorData B(gemmArgTypes(Fast)[2]);
  fillRandomFp16(A.raw(), 5);
  fillRandomFp16(B.raw(), 6);

  TensorData CFast(gemmArgTypes(Fast)[0]);
  TensorData CSlow(gemmArgTypes(Fast)[0]);
  ASSERT_TRUE(KernelFast->runFunctional({&CFast, &A, &B}));
  ASSERT_TRUE(KernelSlow->runFunctional({&CSlow, &A, &B}));

  // Identical results (bit-for-bit: same arithmetic, same order per tile).
  EXPECT_EQ(CFast.maxAbsDiff(CSlow), 0.0);

  // And the tuned mapping is actually faster.
  ErrorOr<SimResult> TFast = KernelFast->runTiming();
  ErrorOr<SimResult> TSlow = KernelSlow->runTiming();
  ASSERT_TRUE(TFast);
  ASSERT_TRUE(TSlow);
  EXPECT_LT(TFast->BlockCycles, TSlow->BlockCycles);
}

TEST(Gemm, TimingIsComputeBoundAtLargeSizes) {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 4096;
  auto Kernel = compileGemm(Config);
  ASSERT_NE(Kernel, nullptr);
  ErrorOr<SimResult> Result = Kernel->runTiming();
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  // Tensor-core occupancy should dominate the block schedule.
  EXPECT_GT(Result->TensorCoreBusyCycles, 0.6 * Result->BlockCycles);
  // Throughput lands in a plausible Hopper range (hundreds of TFLOP/s).
  EXPECT_GT(Result->TFlops, 400.0);
  EXPECT_LT(Result->TFlops, 989.0);
}

TEST(Gemm, CudaSourceHasWarpSpecializedStructure) {
  auto Kernel = compileGemm(smallConfig());
  ASSERT_NE(Kernel, nullptr);
  std::string Cuda = Kernel->cudaSource();
  EXPECT_NE(Cuda.find("__global__"), std::string::npos);
  EXPECT_NE(Cuda.find("is_dma_warp"), std::string::npos);
  EXPECT_NE(Cuda.find("cp_async_bulk_tensor"), std::string::npos);
  EXPECT_NE(Cuda.find("wgmma"), std::string::npos);
  EXPECT_NE(Cuda.find("extern __shared__"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Batched GEMM
//===----------------------------------------------------------------------===//

TEST(BatchedGemm, FunctionalMatchesPerBatchReference) {
  GemmConfig Config = smallConfig();
  Config.L = 2;
  Config.K = 128;

  auto Registry = std::make_shared<TaskRegistry>();
  registerBatchedGemmTasks(*Registry);
  MappingSpec Mapping = batchedGemmMapping(Config);
  CompileInput Input;
  Input.Registry = Registry.get();
  Input.Mapping = &Mapping;
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = batchedGemmArgTypes(Config);
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "bgemm");
  ASSERT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());

  TensorData C(batchedGemmArgTypes(Config)[0]);
  TensorData A(batchedGemmArgTypes(Config)[1]);
  TensorData B(batchedGemmArgTypes(Config)[2]);
  fillRandomFp16(A.raw(), 31);
  fillRandomFp16(B.raw(), 32);

  ASSERT_TRUE((*Kernel)->runFunctional({&C, &A, &B}));

  // Per-batch reference on the stacked layout.
  for (int64_t Batch = 0; Batch < Config.L; ++Batch) {
    for (int64_t I = 0; I < Config.M; I += 64) { // Spot rows.
      for (int64_t J = 0; J < Config.N; J += 128) {
        float Acc = 0.0f;
        for (int64_t KK = 0; KK < Config.K; ++KK)
          Acc += A.at({Batch * Config.M + I, KK}) *
                 B.at({Batch * Config.K + KK, J});
        EXPECT_NEAR(C.at({Batch * Config.M + I, J}), Acc, 0.25)
            << "batch " << Batch << " element (" << I << "," << J << ")";
      }
    }
  }
}
