//===- FusedKernelsTest.cpp - Dual-GEMM and GEMM+Reduction tests ---------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end functional tests of the fused kernels of Figures 13c/13d,
/// plus a parameterized GEMM shape sweep: for every tile-divisible problem
/// shape, the compiled program must agree with the naive reference.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

using namespace cypress;

namespace {

struct Compiled {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
};

template <typename RegisterFn, typename MappingFn>
Compiled compile(const char *Name, RegisterFn Register, MappingFn Build,
                 std::vector<TensorType> Args) {
  Compiled Result;
  Result.Registry = std::make_unique<TaskRegistry>();
  Register(*Result.Registry);
  Result.Mapping = std::make_unique<MappingSpec>(Build());
  CompileInput Input{Result.Registry.get(), Result.Mapping.get(),
                     &MachineModel::h100(), std::move(Args)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, Name);
  EXPECT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  if (Kernel)
    Result.Kernel = std::move(*Kernel);
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dual-GEMM (Figure 13c)
//===----------------------------------------------------------------------===//

TEST(DualGemm, FunctionalMatchesReference) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  Compiled C = compile(
      "dual", registerDualGemmTasks, [&] { return dualGemmMapping(Config); },
      dualGemmArgTypes(Config));
  ASSERT_NE(C.Kernel, nullptr);

  TensorData Out(dualGemmArgTypes(Config)[0]);
  TensorData A(dualGemmArgTypes(Config)[1]);
  TensorData B1(dualGemmArgTypes(Config)[2]);
  TensorData B2(dualGemmArgTypes(Config)[3]);
  fillRandomFp16(A.raw(), 41);
  fillRandomFp16(B1.raw(), 42);
  fillRandomFp16(B2.raw(), 43);

  ErrorOr<SimResult> Result = C.Kernel->runFunctional({&Out, &A, &B1, &B2});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_TRUE(Result->Races.empty());

  for (int64_t I = 0; I < Config.M; I += 37) {
    for (int64_t J = 0; J < Config.N; J += 61) {
      float Want = 0.0f;
      for (int64_t K = 0; K < Config.K; ++K)
        Want += A.at({I, K}) * (B1.at({K, J}) + B2.at({K, J}));
      EXPECT_NEAR(Out.at({I, J}), Want, 0.25) << I << "," << J;
    }
  }
}

TEST(DualGemm, SingleACopyPerIteration) {
  // The fused kernel's win: A's tile is fetched once per K step even
  // though two products consume it.
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  Compiled C = compile(
      "dual", registerDualGemmTasks, [&] { return dualGemmMapping(Config); },
      dualGemmArgTypes(Config));
  ASSERT_NE(C.Kernel, nullptr);
  int LoopTmaLoads = 0;
  walkOps(C.Kernel->module().root(), [&](const Operation &Loop) {
    if (Loop.Kind != OpKind::For)
      return;
    for (const std::unique_ptr<Operation> &Op : Loop.Body.Ops)
      if (Op->Kind == OpKind::Copy && Op->Unit == ExecUnit::TMA)
        ++LoopTmaLoads;
  });
  EXPECT_EQ(LoopTmaLoads, 3); // A, B1, B2 — not 4.
}

//===----------------------------------------------------------------------===//
// GEMM+Reduction (Figure 13d)
//===----------------------------------------------------------------------===//

TEST(GemmRed, FunctionalMatchesReference) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  Compiled C = compile(
      "gemmred", registerGemmRedTasks,
      [&] { return gemmRedMapping(Config); }, gemmRedArgTypes(Config));
  ASSERT_NE(C.Kernel, nullptr);

  TensorData Out(gemmRedArgTypes(Config)[0]);
  TensorData A(gemmRedArgTypes(Config)[1]);
  TensorData B(gemmRedArgTypes(Config)[2]);
  TensorData Y(gemmRedArgTypes(Config)[3]);
  fillRandomFp16(A.raw(), 51);
  fillRandomFp16(B.raw(), 52);

  ErrorOr<SimResult> Result = C.Kernel->runFunctional({&Out, &A, &B, &Y});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_TRUE(Result->Races.empty());

  // C = A.B.
  for (int64_t I = 0; I < Config.M; I += 53) {
    for (int64_t J = 0; J < Config.N; J += 97) {
      float Want = 0.0f;
      for (int64_t K = 0; K < Config.K; ++K)
        Want += A.at({I, K}) * B.at({K, J});
      EXPECT_NEAR(Out.at({I, J}), Want, 0.25);
    }
  }
  // y(i) = sum_k A(i, k); every block-column row of Y holds a replica.
  int64_t Columns = Config.N / Config.V;
  for (int64_t I = 0; I < Config.M; I += 19) {
    float Want = 0.0f;
    for (int64_t K = 0; K < Config.K; ++K)
      Want += A.at({I, K});
    for (int64_t Col = 0; Col < Columns; ++Col)
      EXPECT_NEAR(Y.at({Col, I}), Want, 0.05)
          << "row " << I << " column block " << Col;
  }
}

TEST(GemmRed, ReductionRunsOnSimtWhileTensorCoreBusy) {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 4096;
  Compiled C = compile(
      "gemmred", registerGemmRedTasks,
      [&] { return gemmRedMapping(Config); }, gemmRedArgTypes(Config));
  ASSERT_NE(C.Kernel, nullptr);
  ErrorOr<SimResult> Result = C.Kernel->runTiming();
  ASSERT_TRUE(Result);
  // If the reduction serialized with the matrix work (the Triton
  // behaviour), Tensor Core occupancy would collapse; overlapped it stays
  // near the plain-GEMM level.
  EXPECT_GT(Result->TensorCoreBusyCycles, 0.85 * Result->BlockCycles);
}

//===----------------------------------------------------------------------===//
// Parameterized GEMM shape sweep
//===----------------------------------------------------------------------===//

using GemmShape = std::tuple<int64_t, int64_t, int64_t>;

class GemmShapeSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeSweep, FunctionalMatchesReferenceEverywhere) {
  auto [M, N, K] = GetParam();
  GemmConfig Config;
  Config.M = M;
  Config.N = N;
  Config.K = K;
  Compiled C = compile(
      "gemm", registerGemmTasks, [&] { return gemmMapping(Config); },
      gemmArgTypes(Config));
  ASSERT_NE(C.Kernel, nullptr);

  TensorData Out(gemmArgTypes(Config)[0]);
  TensorData A(gemmArgTypes(Config)[1]);
  TensorData B(gemmArgTypes(Config)[2]);
  fillRandomFp16(A.raw(), static_cast<uint64_t>(M * 31 + N * 7 + K));
  fillRandomFp16(B.raw(), static_cast<uint64_t>(M + N * 13 + K * 3));

  ErrorOr<SimResult> Result = C.Kernel->runFunctional({&Out, &A, &B});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  EXPECT_TRUE(Result->Races.empty());

  // Strided spot checks across every block tile.
  for (int64_t I = 0; I < M; I += 41) {
    for (int64_t J = 0; J < N; J += 89) {
      float Want = 0.0f;
      for (int64_t KK = 0; KK < K; ++KK)
        Want += A.at({I, KK}) * B.at({KK, J});
      ASSERT_NEAR(Out.at({I, J}), Want, 0.003 * K)
          << M << "x" << N << "x" << K << " at " << I << "," << J;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TileDivisibleShapes, GemmShapeSweep,
    ::testing::Values(GemmShape{128, 256, 64},   // One block, one K step.
                      GemmShape{128, 256, 256},  // One block, deep K.
                      GemmShape{256, 256, 128},  // Two row blocks.
                      GemmShape{128, 512, 128},  // Two column blocks.
                      GemmShape{384, 512, 192},  // 3x2 grid, 3 K steps.
                      GemmShape{256, 512, 320})); // Non-power-of-two K.
