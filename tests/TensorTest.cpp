//===- TensorTest.cpp - Shapes, storage, and partitioning -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the tensor substrate, including the
/// architecture-mandated WGMMA accumulator swizzle of Figure 4: the lane
/// fragments of a warpgroup must tile the 64xN accumulator exactly
/// (disjoint cover), rows must group by 16 per warp, and the per-8-column
/// lane pattern must match the PTX m64nNk16 layout.
///
//===----------------------------------------------------------------------===//

#include "tensor/Partition.h"
#include "tensor/TensorData.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace cypress;

//===----------------------------------------------------------------------===//
// Shape
//===----------------------------------------------------------------------===//

TEST(Shape, Basics) {
  Shape S({4, 8, 2});
  EXPECT_EQ(S.rank(), 3u);
  EXPECT_EQ(S.numElements(), 64);
  EXPECT_EQ(S.dim(1), 8);
  EXPECT_EQ(S.toString(), "[4, 8, 2]");
}

TEST(Shape, LinearizeRoundTrip) {
  Shape S({3, 5, 7});
  for (int64_t I = 0; I < S.numElements(); ++I) {
    std::vector<int64_t> Index = S.delinearize(I);
    EXPECT_EQ(S.linearize(Index), I);
  }
}

TEST(Shape, RowMajorOrder) {
  Shape S({2, 3});
  EXPECT_EQ(S.linearize({0, 0}), 0);
  EXPECT_EQ(S.linearize({0, 2}), 2);
  EXPECT_EQ(S.linearize({1, 0}), 3);
  EXPECT_EQ(S.linearize({1, 2}), 5);
}

TEST(TensorType, SizeBytes) {
  TensorType F16{Shape({128, 64}), ElementType::F16};
  TensorType F32{Shape({128, 64}), ElementType::F32};
  EXPECT_EQ(F16.sizeBytes(), 128 * 64 * 2);
  EXPECT_EQ(F32.sizeBytes(), 128 * 64 * 4);
}

//===----------------------------------------------------------------------===//
// TensorData
//===----------------------------------------------------------------------===//

TEST(TensorData, Fp16QuantizesOnStore) {
  TensorData T(TensorType{Shape({2, 2}), ElementType::F16});
  T.set({0, 0}, 0.1f); // Not representable in FP16.
  EXPECT_NE(T.at({0, 0}), 0.1f);
  EXPECT_NEAR(T.at({0, 0}), 0.1f, 1e-4f);

  TensorData F(TensorType{Shape({2, 2}), ElementType::F32});
  F.set({0, 0}, 0.1f);
  EXPECT_EQ(F.at({0, 0}), 0.1f);
}

TEST(TensorData, MaxAbsDiff) {
  TensorData A(TensorType{Shape({4}), ElementType::F32});
  TensorData B(TensorType{Shape({4}), ElementType::F32});
  A.set({2}, 1.5f);
  B.set({2}, 1.0f);
  EXPECT_FLOAT_EQ(A.maxAbsDiff(B), 0.5f);
  EXPECT_FLOAT_EQ(A.maxAbsDiff(A), 0.0f);
}

//===----------------------------------------------------------------------===//
// Blocks partitioning
//===----------------------------------------------------------------------===//

TEST(BlocksPartition, EvenTiling) {
  ErrorOr<Partition> P =
      Partition::byBlocks(Shape({128, 256}), Shape({64, 64}));
  ASSERT_TRUE(P);
  EXPECT_EQ(P->colorSpace(), Shape({2, 4}));
  SubTensor Piece = P->piece({1, 2});
  EXPECT_EQ(Piece.shape(), Shape({64, 64}));
  EXPECT_EQ(Piece.mapToParent({0, 0}), (std::vector<int64_t>{64, 128}));
  EXPECT_EQ(Piece.mapToParent({63, 63}), (std::vector<int64_t>{127, 191}));
}

TEST(BlocksPartition, ClampedEdgeTiles) {
  ErrorOr<Partition> P = Partition::byBlocks(Shape({100}), Shape({64}));
  ASSERT_TRUE(P);
  EXPECT_EQ(P->numPieces(), 2);
  EXPECT_EQ(P->piece({0}).shape(), Shape({64}));
  EXPECT_EQ(P->piece({1}).shape(), Shape({36}));
}

TEST(BlocksPartition, RankMismatchDiagnosed) {
  ErrorOr<Partition> P = Partition::byBlocks(Shape({8, 8}), Shape({4}));
  ASSERT_FALSE(P);
  EXPECT_NE(P.diagnostic().message().find("rank"), std::string::npos);
}

TEST(BlocksPartition, DisjointCoverProperty) {
  // Every parent element is covered by exactly one piece.
  Shape Parent({48, 80});
  ErrorOr<Partition> P = Partition::byBlocks(Parent, Shape({16, 32}));
  ASSERT_TRUE(P);
  std::map<std::vector<int64_t>, int> Cover;
  for (int64_t Color = 0; Color < P->numPieces(); ++Color) {
    SubTensor Piece = P->piece(Color);
    Piece.forEachElement(Parent,
                         [&](int64_t, const std::vector<int64_t> &Idx) {
                           ++Cover[Idx];
                         });
  }
  EXPECT_EQ(static_cast<int64_t>(Cover.size()), Parent.numElements());
  for (const auto &[Idx, Count] : Cover)
    EXPECT_EQ(Count, 1);
  EXPECT_TRUE(P->isDisjoint());
}

//===----------------------------------------------------------------------===//
// MMA partitioning (Figure 4)
//===----------------------------------------------------------------------===//

TEST(MmaPartition, WarpGranularityRowGroups) {
  MmaInstruction Instr = MmaInstruction::wgmma64xNx16(256);
  ErrorOr<Partition> P = Partition::byMma(Shape({64, 256}), Instr,
                                          MmaGranularity::Warp,
                                          MmaOperand::C);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->numPieces(), 4);
  for (int64_t Warp = 0; Warp < 4; ++Warp) {
    SubTensor Piece = P->piece({Warp});
    EXPECT_EQ(Piece.shape(), Shape({16, 256}));
    // Figure 4: warp w owns rows [16w, 16w+16).
    EXPECT_EQ(Piece.mapToParent({0, 0})[0], 16 * Warp);
    EXPECT_EQ(Piece.mapToParent({15, 0})[0], 16 * Warp + 15);
  }
}

TEST(MmaPartition, LaneSwizzleMatchesPtxLayout) {
  // PTX m64nNk16 accumulator: within a warp, lane l holds elements at
  // row = 8h + l/4, col = 8g + 2(l%4) + e. Check known positions of the
  // Figure 4 pattern (warp 0).
  MmaInstruction Instr = MmaInstruction::wgmma64xNx16(8);
  SubTensor Lane0 = SubTensor::mmaAccumLane(Instr, 0, 0);
  EXPECT_EQ(Lane0.shape(), Shape({2, 2}));
  EXPECT_EQ(Lane0.mapToParent({0, 0}), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(Lane0.mapToParent({0, 1}), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Lane0.mapToParent({1, 0}), (std::vector<int64_t>{8, 0}));

  SubTensor Lane3 = SubTensor::mmaAccumLane(Instr, 0, 3);
  EXPECT_EQ(Lane3.mapToParent({0, 0}), (std::vector<int64_t>{0, 6}));
  SubTensor Lane4 = SubTensor::mmaAccumLane(Instr, 0, 4);
  EXPECT_EQ(Lane4.mapToParent({0, 0}), (std::vector<int64_t>{1, 0}));
  SubTensor Lane31 = SubTensor::mmaAccumLane(Instr, 0, 31);
  EXPECT_EQ(Lane31.mapToParent({0, 0}), (std::vector<int64_t>{7, 6}));
  EXPECT_EQ(Lane31.mapToParent({1, 1}), (std::vector<int64_t>{15, 7}));
}

/// Property sweep over instruction widths: the 128 lane fragments of the
/// warpgroup tile the full 64xN accumulator exactly once.
class MmaCoverTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(MmaCoverTest, LaneFragmentsTileAccumulator) {
  int64_t N = GetParam();
  MmaInstruction Instr = MmaInstruction::wgmma64xNx16(N);
  Shape Parent({64, N});
  std::map<std::vector<int64_t>, int> Cover;
  for (int64_t Warp = 0; Warp < 4; ++Warp) {
    for (int64_t Lane = 0; Lane < 32; ++Lane) {
      SubTensor Frag = SubTensor::mmaAccumLane(Instr, Warp, Lane);
      EXPECT_EQ(Frag.shape().numElements(), 64 * N / 128);
      Frag.forEachElement(Parent,
                          [&](int64_t, const std::vector<int64_t> &Idx) {
                            ++Cover[Idx];
                          });
    }
  }
  ASSERT_EQ(static_cast<int64_t>(Cover.size()), Parent.numElements());
  for (const auto &[Idx, Count] : Cover)
    ASSERT_EQ(Count, 1) << "element covered " << Count << " times";
}

INSTANTIATE_TEST_SUITE_P(Widths, MmaCoverTest,
                         ::testing::Values<int64_t>(8, 16, 64, 128, 256));

TEST(MmaPartition, WarpPiecesComposeWithLanePieces) {
  // Partition C by warps, then each warp's 16xN slice by lanes: the
  // composed mapping must agree with the direct lane swizzle.
  MmaInstruction Instr = MmaInstruction::wgmma64xNx16(16);
  for (int64_t Warp = 0; Warp < 4; ++Warp) {
    SubTensor WarpPiece = SubTensor::mmaAccumWarp(Instr, Warp);
    for (int64_t Lane = 0; Lane < 32; ++Lane) {
      // Lane swizzle relative to the warp slice (warp index 0).
      SubTensor Rel = SubTensor::mmaAccumLane(Instr, 0, Lane);
      SubTensor Composed = SubTensor::compose(WarpPiece, Rel);
      SubTensor Direct = SubTensor::mmaAccumLane(Instr, Warp, Lane);
      for (int64_t I = 0; I < Composed.shape().numElements(); I += 3) {
        std::vector<int64_t> Sub = Composed.shape().delinearize(I);
        EXPECT_EQ(Composed.mapToParent(Sub), Direct.mapToParent(Sub));
      }
    }
  }
}

TEST(MmaPartition, SharedOperandsAliasWholeTile) {
  // A/B operands are collectively referenced: every piece is the whole.
  ErrorOr<Partition> P = Partition::byMma(Shape({64, 64}),
                                          MmaInstruction::wgmma64xNx16(256),
                                          MmaGranularity::Warp,
                                          MmaOperand::A);
  ASSERT_TRUE(P);
  EXPECT_FALSE(P->isDisjoint());
  SubTensor Piece = P->piece({2});
  EXPECT_TRUE(Piece.isWhole());
  EXPECT_EQ(Piece.shape(), Shape({64, 64}));
}

TEST(MmaPartition, AccumulatorShapeMismatchDiagnosed) {
  ErrorOr<Partition> P = Partition::byMma(Shape({32, 256}),
                                          MmaInstruction::wgmma64xNx16(256),
                                          MmaGranularity::Warp,
                                          MmaOperand::C);
  ASSERT_FALSE(P);
}

TEST(MmaPartition, SpecEquality) {
  MmaInstruction Instr = MmaInstruction::wgmma64xNx16(256);
  Partition A = Partition::byMma(Shape({64, 256}), Instr,
                                 MmaGranularity::Warp, MmaOperand::C)
                    .take();
  Partition B = Partition::byMma(Shape({64, 256}), Instr,
                                 MmaGranularity::Warp, MmaOperand::C)
                    .take();
  Partition C = Partition::byMma(Shape({64, 256}), Instr,
                                 MmaGranularity::Thread, MmaOperand::C)
                    .take();
  EXPECT_TRUE(A.equals(B));
  EXPECT_FALSE(A.equals(C));
  Partition D = Partition::byBlocks(Shape({64, 256}), Shape({16, 256})).take();
  EXPECT_FALSE(A.equals(D));
}

//===----------------------------------------------------------------------===//
// Composition
//===----------------------------------------------------------------------===//

TEST(SubTensor, RectComposition) {
  SubTensor Outer = SubTensor::rect(Shape({32, 32}), {64, 128});
  SubTensor Inner = SubTensor::rect(Shape({8, 8}), {16, 24});
  SubTensor Composed = SubTensor::compose(Outer, Inner);
  EXPECT_EQ(Composed.shape(), Shape({8, 8}));
  EXPECT_EQ(Composed.mapToParent({0, 0}), (std::vector<int64_t>{80, 152}));
  EXPECT_EQ(Composed.mapToParent({7, 7}), (std::vector<int64_t>{87, 159}));
  EXPECT_TRUE(Composed.isRect());
}

TEST(SubTensor, WholeIsIdentityForComposition) {
  SubTensor Whole = SubTensor::whole(Shape({16, 16}));
  SubTensor Piece = SubTensor::rect(Shape({4, 4}), {8, 8});
  SubTensor Left = SubTensor::compose(Whole, Piece);
  EXPECT_EQ(Left.mapToParent({1, 1}), (std::vector<int64_t>{9, 9}));
  SubTensor Right =
      SubTensor::compose(Piece, SubTensor::whole(Shape({4, 4})));
  EXPECT_EQ(Right.mapToParent({1, 1}), (std::vector<int64_t>{9, 9}));
}

TEST(SubTensor, ThreeLevelChain) {
  SubTensor A = SubTensor::rect(Shape({64, 64}), {128, 0});
  SubTensor B = SubTensor::rect(Shape({16, 16}), {32, 48});
  SubTensor C = SubTensor::rect(Shape({4, 4}), {8, 4});
  SubTensor Chain = SubTensor::compose(A, SubTensor::compose(B, C));
  EXPECT_EQ(Chain.mapToParent({0, 0}),
            (std::vector<int64_t>{128 + 32 + 8, 0 + 48 + 4}));
  SubTensor Chain2 = SubTensor::compose(SubTensor::compose(A, B), C);
  EXPECT_EQ(Chain2.mapToParent({3, 3}), Chain.mapToParent({3, 3}));
}
