//===- BaselinesTest.cpp - Comparator model tests ------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sanity checks on the baseline performance models (docs/DESIGN.md's
/// substitution table): physical plausibility, the documented behavioural
/// orderings (expert > Triton, persistent kernels help at small sizes),
/// and the end-to-end headline ratios of the paper's abstract, asserted as
/// hard test conditions so a regression in the compiler or simulator that
/// destroys a paper result fails the suite.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <memory>

using namespace cypress;

namespace {

double cypressGemmTFlops(const GemmConfig &Config) {
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "gemm");
  EXPECT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  if (!Kernel)
    return 0.0;
  return (*Kernel)->runTiming()->TFlops;
}

} // namespace

TEST(Baselines, AllModelsBelowPeak) {
  SimConfig Sim;
  double Peak = Sim.TensorCoreFlopsPerCycle * Sim.NumSMs * Sim.ClockGHz *
                1e9 / 1e12;
  GemmConfig Gemm;
  Gemm.M = Gemm.N = Gemm.K = 8192;
  EXPECT_LT(cublasGemm(Gemm, Sim).TFlops, Peak);
  EXPECT_LT(tritonGemm(Gemm, Sim).TFlops, Peak);
  EXPECT_LT(tritonDualGemm(Gemm, Sim).TFlops, Peak);
  EXPECT_LT(tritonGemmRed(Gemm, Sim).TFlops, Peak);
  AttentionConfig Attn = fa2Config(8192);
  EXPECT_LT(tritonAttention(Attn, Sim).TFlops, Peak);
  for (AttentionOracle Which :
       {AttentionOracle::CuDnn, AttentionOracle::ThunderKittens,
        AttentionOracle::FlashAttention3})
    EXPECT_LT(expertAttention(Attn, Sim, Which).TFlops, Peak);
}

TEST(Baselines, ExpertBeatsTritonEverywhere) {
  SimConfig Sim;
  for (int64_t Size : {4096, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    EXPECT_GT(cublasGemm(Config, Sim).TFlops,
              tritonGemm(Config, Sim).TFlops);
  }
  AttentionConfig Attn = fa2Config(8192);
  EXPECT_GT(
      expertAttention(Attn, Sim, AttentionOracle::ThunderKittens).TFlops,
      tritonAttention(Attn, Sim).TFlops);
}

TEST(Baselines, PersistentKernelHelpsAtPartialWaves) {
  // FA3-ref's persistent kernel avoids wave quantization; at a sequence
  // length whose block count does not divide the SM count it must gain
  // relative to a non-persistent oracle with the same inefficiency.
  SimConfig Sim;
  AttentionConfig Attn = fa3Config(4096); // 12 * 32 = 384 blocks: 2.9 waves.
  double Fa3 = expertAttention(Attn, Sim,
                               AttentionOracle::FlashAttention3).TFlops;
  double Cudnn = expertAttention(Attn, Sim, AttentionOracle::CuDnn).TFlops;
  EXPECT_GT(Fa3, Cudnn);
}

//===----------------------------------------------------------------------===//
// Paper headline ratios as regression gates
//===----------------------------------------------------------------------===//

TEST(PaperResults, GemmVsCublasInBand) {
  SimConfig Sim;
  for (int64_t Size : {4096, 6144, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    double Ratio =
        cypressGemmTFlops(Config) / cublasGemm(Config, Sim).TFlops;
    EXPECT_GE(Ratio, 0.88) << "size " << Size;
    EXPECT_LE(Ratio, 1.06) << "size " << Size;
  }
}

TEST(PaperResults, GemmVsTritonInBand) {
  SimConfig Sim;
  for (int64_t Size : {4096, 6144, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    double Ratio =
        cypressGemmTFlops(Config) / tritonGemm(Config, Sim).TFlops;
    EXPECT_GE(Ratio, 1.05) << "size " << Size;
    EXPECT_LE(Ratio, 1.11) << "size " << Size;
  }
}

TEST(PaperResults, DualGemmVsTritonInBand) {
  SimConfig Sim;
  GemmConfig Config;
  Config.M = Config.N = Config.K = 8192;
  TaskRegistry Registry;
  registerDualGemmTasks(Registry);
  MappingSpec Mapping = dualGemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     dualGemmArgTypes(Config)};
  auto Kernel = compileKernel(Input, "dual");
  ASSERT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  double Ratio = (*Kernel)->runTiming()->TFlops /
                 tritonDualGemm(Config, Sim).TFlops;
  EXPECT_GE(Ratio, 1.30);
  EXPECT_LE(Ratio, 1.45);
}

TEST(PaperResults, GemmRedVsTritonInBand) {
  SimConfig Sim;
  GemmConfig Config;
  Config.M = Config.N = Config.K = 8192;
  TaskRegistry Registry;
  registerGemmRedTasks(Registry);
  MappingSpec Mapping = gemmRedMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmRedArgTypes(Config)};
  auto Kernel = compileKernel(Input, "gemmred");
  ASSERT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  double Ratio =
      (*Kernel)->runTiming()->TFlops / tritonGemmRed(Config, Sim).TFlops;
  EXPECT_GE(Ratio, 1.95);
  EXPECT_LE(Ratio, 2.25);
}

TEST(PaperResults, AttentionVsBestInBand) {
  SimConfig Sim;
  for (int64_t SeqLen : {2048, 4096, 8192, 16384}) {
    AttentionConfig Config = fa3Config(SeqLen);
    TaskRegistry Registry;
    registerAttentionTasks(Registry);
    MappingSpec Mapping = attentionMapping(Config);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                       attentionArgTypes(Config)};
    auto Kernel = compileKernel(Input, "fa3");
    ASSERT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
    double Best =
        expertAttention(Config, Sim, AttentionOracle::FlashAttention3)
            .TFlops;
    double Ratio = (*Kernel)->runTiming()->TFlops / Best;
    EXPECT_GE(Ratio, 0.80) << "seqlen " << SeqLen;
    EXPECT_LE(Ratio, 0.98) << "seqlen " << SeqLen;
  }
}

TEST(PaperResults, AttentionBeatsTriton) {
  SimConfig Sim;
  for (int64_t SeqLen : {4096, 16384}) {
    AttentionConfig Config = fa2Config(SeqLen);
    TaskRegistry Registry;
    registerAttentionTasks(Registry);
    MappingSpec Mapping = attentionMapping(Config);
    CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                       attentionArgTypes(Config)};
    auto Kernel = compileKernel(Input, "fa2");
    ASSERT_TRUE(Kernel);
    EXPECT_GT((*Kernel)->runTiming()->TFlops,
              tritonAttention(Config, Sim).TFlops)
        << "seqlen " << SeqLen;
  }
}
