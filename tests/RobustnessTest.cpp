//===- RobustnessTest.cpp - Serving-core hardening tests -----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault matrix for the hardened serving core: cooperative deadlines
/// and cancellation (support/Cancel.h) observed by the pass pipeline, the
/// simulator, and the CPU lowering; CompilerSession admission control,
/// shutdown, and worker-throw containment; and the deterministic fault
/// injector (support/FaultInjection.h) that drives all of it. The
/// invariants under test: every failure is a structured Diagnostic (never
/// a crash, hang, or partial cache entry), transient failures are never
/// memoized, and the tuner degrades gracefully — quarantining faulted
/// candidates while keeping its landscape bit-identical at any worker
/// count under the same seed and fault spec.
///
/// Most tests install their fault plan explicitly through ScopedFaultSpec
/// so they are deterministic under any environment; the FaultMatrix test
/// at the bottom instead consumes whatever CYPRESS_FAULT_SPEC armed — the
/// CI fault-injection job runs it across a spec matrix.
///
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"
#include "backend/CpuLowering.h"
#include "kernels/Kernels.h"
#include "runtime/Session.h"
#include "support/FaultInjection.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace cypress;

namespace {

/// Installs a fault spec for one test block; the destructor reinstalls the
/// plan that was active before (for a top-level scope, whatever
/// CYPRESS_FAULT_SPEC armed — with fresh '@n' counters), so a binary run
/// with the environment armed still feeds the FaultMatrix test its plan.
/// Tests whose expectations assume fault-free serving install "" to
/// disarm explicitly.
class ScopedFaultSpec {
public:
  explicit ScopedFaultSpec(const std::string &Spec)
      : Saved(FaultPlan::global().spec()) {
    ErrorOrVoid Ok = FaultPlan::global().configure(Spec);
    EXPECT_TRUE(Ok) << (Ok ? "" : Ok.diagnostic().message());
  }
  ~ScopedFaultSpec() { FaultPlan::global().configure(Saved); }

private:
  std::string Saved;
};

/// The session-level compile fixture RuntimeTest pins: a square GEMM whose
/// registry/mapping/arg-types live as long as the test.
struct SessionGemm {
  TaskRegistry Registry;
  MappingSpec Mapping;
  std::vector<TensorType> Args;

  explicit SessionGemm(int64_t Size) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    registerGemmTasks(Registry);
    Mapping = gemmMapping(Config);
    Args = gemmArgTypes(Config);
  }

  CompileInput input() const {
    return {&Registry, &Mapping, &MachineModel::h100(), Args};
  }
};

GemmConfig smallGemm() {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 512;
  return Config;
}

/// The explorer grid AutotuneTest sweeps (16 points, a few statically
/// pruned).
std::vector<TuningAxis> smallAxes() {
  return {{"U", {64, 128}}, {"V", {128, 256}}, {"PIPE", {1, 2}},
          {"WGS", {1, 2}}};
}

} // namespace

//===----------------------------------------------------------------------===//
// Cancellation primitives
//===----------------------------------------------------------------------===//

TEST(Robustness, DeadlinePrimitives) {
  EXPECT_FALSE(Deadline::never().active());
  EXPECT_FALSE(Deadline::never().expired());
  EXPECT_GT(Deadline::never().remainingMicros(), 1e17);

  Deadline Past = Deadline::afterMicros(-1000.0);
  EXPECT_TRUE(Past.active());
  EXPECT_TRUE(Past.expired());
  EXPECT_LT(Past.remainingMicros(), 0.0);

  Deadline Future = Deadline::afterMillis(60000.0);
  EXPECT_TRUE(Future.active());
  EXPECT_FALSE(Future.expired());

  // An inert Cancellation never enables a check — the parity-suite
  // guarantee that plumbing nullptr/default changes nothing.
  EXPECT_FALSE(Cancellation().active());
  EXPECT_FALSE(CancelCheck().enabled());
  EXPECT_FALSE(CancelCheck(Cancellation()).enabled());

  EXPECT_EQ(cancelDiagnostic(Diagnostic::Code::Cancelled, "work").message(),
            "request cancelled during work");
  EXPECT_EQ(
      cancelDiagnostic(Diagnostic::Code::DeadlineExceeded, "work").message(),
      "deadline exceeded during work");
}

TEST(Robustness, CancelCheckPollsTokensEveryCallAndClockByStride) {
  // Tokens fire on the very next poll regardless of stride.
  CancelToken Token;
  CancelCheck OnToken(Cancellation(Deadline::never(), &Token), /*Stride=*/64);
  EXPECT_TRUE(OnToken.enabled());
  EXPECT_FALSE(OnToken.shouldStop());
  Token.cancel();
  EXPECT_TRUE(OnToken.shouldStop());
  EXPECT_EQ(OnToken.code(), Diagnostic::Code::Cancelled);
  EXPECT_TRUE(OnToken.shouldStop()) << "a fired check must latch";

  // The clock is only consulted every Stride-th strided poll...
  CancelCheck Strided(Cancellation(Deadline::afterMicros(-1.0)), /*Stride=*/4);
  EXPECT_FALSE(Strided.shouldStop());
  EXPECT_FALSE(Strided.shouldStop());
  EXPECT_FALSE(Strided.shouldStop());
  EXPECT_TRUE(Strided.shouldStop());
  EXPECT_EQ(Strided.code(), Diagnostic::Code::DeadlineExceeded);

  // ...but boundary checkpoints are exact.
  CancelCheck Exact(Cancellation(Deadline::afterMicros(-1.0)));
  EXPECT_TRUE(Exact.shouldStopNow());
  Diagnostic Diag = Exact.diagnostic("tuner round");
  EXPECT_EQ(Diag.code(), Diagnostic::Code::DeadlineExceeded);
  EXPECT_TRUE(Diag.isTransient());
}

//===----------------------------------------------------------------------===//
// Fault-spec parsing and determinism
//===----------------------------------------------------------------------===//

TEST(Robustness, FaultSpecParsesAndRejectsMalformed) {
  ScopedFaultSpec Restore(""); // Reinstalls any env plan on scope exit.
  FaultPlan &Plan = FaultPlan::global();

  EXPECT_TRUE(Plan.configure(
      "seed=7; fail-pass=copy-elimination@2, worker-throw~0.25;"
      "slow-pass:1000"));
  EXPECT_TRUE(Plan.armed());

  EXPECT_FALSE(Plan.configure("bogus-site"));
  EXPECT_FALSE(Plan.configure("fail-pass@0")) << "'@n' is 1-based";
  EXPECT_FALSE(Plan.configure("worker-throw~1.5")) << "p must be in [0,1]";
  EXPECT_FALSE(Plan.configure("seed=notanumber"));

  // A failed configure must not leave a half-installed plan behind, and an
  // empty spec disarms everything.
  EXPECT_TRUE(Plan.configure(""));
  EXPECT_FALSE(Plan.armed());
  EXPECT_FALSE(faultFires(FaultSite::FailPass, "vectorization"));
}

TEST(Robustness, ProbabilisticClausesAreDeterministicPerKey) {
  ScopedFaultSpec Spec("seed=1;worker-throw~0.5");
  FaultPlan &Plan = FaultPlan::global();

  std::vector<bool> First;
  for (int I = 0; I < 32; ++I)
    First.push_back(
        Plan.shouldFire(FaultSite::WorkerThrow, "key" + std::to_string(I)));

  // Decisions hash content, never a counter: reconfiguring and replaying
  // the same keys reproduces the exact pattern.
  ASSERT_TRUE(Plan.configure("seed=1;worker-throw~0.5"));
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Plan.shouldFire(FaultSite::WorkerThrow,
                              "key" + std::to_string(I)),
              First[I])
        << "key" << I;

  // With p=0.5 over 32 keys both outcomes must occur (the pattern is a
  // pure function of the seed, so this cannot flake).
  EXPECT_NE(std::count(First.begin(), First.end(), true), 0);
  EXPECT_NE(std::count(First.begin(), First.end(), true), 32);
}

//===----------------------------------------------------------------------===//
// Structured error taxonomy
//===----------------------------------------------------------------------===//

TEST(Robustness, DeterministicPassRejectionIsInfeasibleAndCacheable) {
  ScopedFaultSpec Disarm("");
  SessionGemm Gemm(512);
  CompileInput Bad = Gemm.input();
  Bad.EntryArgTypes.clear();

  CompilerSession Session;
  auto Result = Session.compile(Bad, "bad");
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.diagnostic().code(), Diagnostic::Code::Infeasible);
  EXPECT_FALSE(Result.diagnostic().isTransient())
      << "a pure-input rejection may be memoized by the tuner's cost cache";
  EXPECT_EQ(Result.diagnostic().passName(), "dependence-analysis");
}

//===----------------------------------------------------------------------===//
// Deadlines and cancellation through the session
//===----------------------------------------------------------------------===//

TEST(Robustness, CompileDeadlineReturnsStructuredErrorAndNothingIsCached) {
  // 20 ms per pass makes the 7-pass pipeline blow a 30 ms deadline at an
  // inter-pass checkpoint, deterministically.
  ScopedFaultSpec Spec("slow-pass:20000");
  SessionGemm Gemm(512);
  CompilerSession Session;

  CompileOptions Options;
  Options.DeadlineAt = Deadline::afterMillis(30.0);
  auto Result = Session.compile(Gemm.input(), "gemm", Options);
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.diagnostic().code(), Diagnostic::Code::DeadlineExceeded);
  EXPECT_NE(Result.diagnostic().message().find("deadline exceeded"),
            std::string::npos);
  EXPECT_EQ(Session.cachedKernels(), 0u) << "an abandoned compile must "
                                            "never become a cache entry";
  EXPECT_FALSE(Session.isCached(Gemm.input()));

  // The same input without a deadline compiles fine (the slow-pass clause
  // only delays), and the cache recovers.
  auto Retry = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Retry) << Retry.diagnostic().message();
  EXPECT_EQ(Session.cachedKernels(), 1u);
}

TEST(Robustness, PreCancelledTokenShedsMissesButServesHits) {
  ScopedFaultSpec Disarm("");
  SessionGemm Gemm(512);
  CompilerSession Session;

  CancelToken Token;
  Token.cancel();
  CompileOptions Cancelled;
  Cancelled.Cancel = &Token;

  // A cancelled request sheds before any pipeline work...
  auto Shed = Session.compile(Gemm.input(), "gemm", Cancelled);
  ASSERT_FALSE(Shed);
  EXPECT_EQ(Shed.diagnostic().code(), Diagnostic::Code::Cancelled);
  EXPECT_NE(Shed.diagnostic().message().find("queued compilation"),
            std::string::npos);
  EXPECT_EQ(Session.cachedKernels(), 0u);

  // ...but once a kernel exists, even a cancelled request is served from
  // the cache — hits cost microseconds, cheaper than the diagnostic.
  auto Warm = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Warm);
  auto Hit = Session.compile(Gemm.input(), "gemm", Cancelled);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->get(), Warm->get());
  EXPECT_EQ(Session.stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// Injected pipeline faults
//===----------------------------------------------------------------------===//

TEST(Robustness, InjectedPassFailureIsContainedAndNotCached) {
  ScopedFaultSpec Spec("fail-pass=vectorization@1");
  SessionGemm Gemm(512);
  CompilerSession Session;

  auto Result = Session.compile(Gemm.input(), "gemm");
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.diagnostic().code(), Diagnostic::Code::Internal)
      << "injected failures must stay transient, not be reclassified "
         "Infeasible like genuine pass rejections";
  EXPECT_TRUE(Result.diagnostic().isTransient());
  EXPECT_EQ(Result.diagnostic().passName(), "vectorization");
  EXPECT_NE(Result.diagnostic().message().find("injected failure"),
            std::string::npos);
  EXPECT_EQ(Session.cachedKernels(), 0u);

  // The '@1' clause is spent: the retry compiles and repopulates.
  auto Retry = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Retry) << Retry.diagnostic().message();
  EXPECT_EQ(Session.cachedKernels(), 1u);
}

TEST(Robustness, InjectedAllocFailureSurfacesInResourceAllocation) {
  ScopedFaultSpec Spec("alloc-fail");
  SessionGemm Gemm(512);
  CompilerSession Session;

  auto Result = Session.compile(Gemm.input(), "gemm");
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.diagnostic().code(), Diagnostic::Code::Internal);
  EXPECT_EQ(Result.diagnostic().passName(), "resource-allocation");
  EXPECT_NE(
      Result.diagnostic().message().find("shared-memory allocation failure"),
      std::string::npos);
  EXPECT_EQ(Session.cachedKernels(), 0u);
}

//===----------------------------------------------------------------------===//
// Admission control and shutdown
//===----------------------------------------------------------------------===//

TEST(Robustness, AdmissionBoundShedsBatchTailWithOverloaded) {
  ScopedFaultSpec Disarm("");
  SessionConfig Config;
  Config.Workers = 2;
  Config.MaxQueuedRequests = 2;
  CompilerSession Session(Config);
  SessionGemm Gemm(512);

  std::vector<CompilerSession::Request> Batch(
      5, {Gemm.input(), "gemm", std::string()});
  auto Results = Session.compileAll(Batch);
  ASSERT_EQ(Results.size(), 5u);

  // Admission is a positional prefix: the first two run, the tail sheds.
  for (size_t I = 0; I < 2; ++I)
    EXPECT_TRUE(Results[I]) << "request " << I << ": "
                            << Results[I].diagnostic().message();
  for (size_t I = 2; I < 5; ++I) {
    ASSERT_FALSE(Results[I]) << "request " << I;
    EXPECT_EQ(Results[I].diagnostic().code(), Diagnostic::Code::Overloaded);
    EXPECT_NE(Results[I].diagnostic().message().find("overloaded"),
              std::string::npos);
  }

  // Slots are returned when the batch finishes: a follow-up request admits.
  auto After = Session.compile(Gemm.input(), "gemm");
  EXPECT_TRUE(After) << After.diagnostic().message();
}

TEST(Robustness, ShutdownDrainRejectsNewWorkKeepsCacheReadable) {
  ScopedFaultSpec Disarm("");
  SessionGemm Gemm(512);
  CompilerSession Session;
  auto Warm = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Warm);

  Session.shutdown(ShutdownMode::Drain);
  EXPECT_FALSE(Session.acceptingRequests());

  auto Rejected = Session.compile(Gemm.input(), "gemm");
  ASSERT_FALSE(Rejected);
  EXPECT_EQ(Rejected.diagnostic().code(), Diagnostic::Code::Cancelled);
  EXPECT_NE(Rejected.diagnostic().message().find("shut down"),
            std::string::npos);

  auto BatchResults = Session.compileAll(
      {{Gemm.input(), "gemm", std::string()}});
  ASSERT_EQ(BatchResults.size(), 1u);
  EXPECT_FALSE(BatchResults[0]);

  // Cache inspection still works after shutdown, and shutdown is
  // idempotent.
  EXPECT_EQ(Session.cachedKernels(), 1u);
  EXPECT_TRUE(Session.isCached(Gemm.input()));
  EXPECT_EQ(Session.cacheStats().Entries, 1u);
  Session.shutdown(ShutdownMode::Drain);
}

TEST(Robustness, ShutdownAbortCancelsInFlightRequests) {
  // Park the in-flight compile in a 300 ms injected stall at vectorization
  // so shutdown(Abort) provably overlaps it; the session token is then
  // observed at the next inter-pass checkpoint.
  ScopedFaultSpec Spec("slow-pass=vectorization:300000");
  SessionGemm Gemm(512);
  CompilerSession Session;

  ErrorOr<std::shared_ptr<const CompiledKernel>> Result =
      Diagnostic("never ran");
  std::thread Client([&] { Result = Session.compile(Gemm.input(), "gemm"); });

  // The miss is counted before the pipeline starts — once it shows, the
  // request is in flight.
  while (Session.stats().Misses == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Session.shutdown(ShutdownMode::Abort); // Returns only once drained.
  Client.join();

  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.diagnostic().code(), Diagnostic::Code::Cancelled);
  EXPECT_EQ(Session.cachedKernels(), 0u)
      << "an aborted compile must not leave a partial cache entry";
}

//===----------------------------------------------------------------------===//
// Worker-throw containment and the concurrent-miss loser path
//===----------------------------------------------------------------------===//

TEST(Robustness, WorkerThrowCostsOneRequestNotThePool) {
  ScopedFaultSpec Spec("worker-throw@1");
  SessionGemm Small(512), Medium(1024), Large(2048);
  SessionConfig Config;
  Config.Workers = 2;
  CompilerSession Session(Config);

  std::vector<CompilerSession::Request> Batch = {
      {Small.input(), "gemm", std::string()},
      {Medium.input(), "gemm", std::string()},
      {Large.input(), "gemm", std::string()},
  };
  auto Results = Session.compileAll(Batch);
  ASSERT_EQ(Results.size(), 3u);

  // Exactly one request (whichever query arrived first) pays for the
  // throw; the pool and the other requests are untouched.
  size_t Failed = 0;
  for (const auto &R : Results) {
    if (R)
      continue;
    ++Failed;
    EXPECT_EQ(R.diagnostic().code(), Diagnostic::Code::Internal);
    EXPECT_NE(R.diagnostic().message().find("injected worker exception"),
              std::string::npos);
  }
  EXPECT_EQ(Failed, 1u);
  EXPECT_EQ(Session.cachedKernels(), 2u) << "the thrown compile must not "
                                            "poison the cache";

  // The pool keeps serving: the clause is spent, so a rerun of the same
  // batch compiles the missing kernel and hits the other two.
  auto Retry = Session.compileAll(Batch);
  for (size_t I = 0; I < Retry.size(); ++I)
    EXPECT_TRUE(Retry[I]) << "request " << I << ": "
                          << Retry[I].diagnostic().message();
  EXPECT_EQ(Session.cachedKernels(), 3u);
}

TEST(Robustness, ConcurrentMissLoserSurfacesItsOwnError) {
  // Two racing misses on one key: the injected stall at dependence-analysis
  // holds both in the pipeline long enough that both must miss, and the
  // '@2' clause fails exactly the second to reach vectorization. The loser
  // must report its own diagnostic — not silently pick up the winner's
  // kernel — and the cache must keep exactly the winner.
  ScopedFaultSpec Spec(
      "slow-pass=dependence-analysis:100000;fail-pass=vectorization@2");
  SessionGemm Gemm(512);
  CompilerSession Session;

  std::atomic<int> Ready{0};
  auto Race = [&](ErrorOr<std::shared_ptr<const CompiledKernel>> &Out) {
    Ready.fetch_add(1);
    while (Ready.load() < 2) {
    }
    Out = Session.compile(Gemm.input(), "gemm");
  };
  ErrorOr<std::shared_ptr<const CompiledKernel>> A = Diagnostic("never ran");
  ErrorOr<std::shared_ptr<const CompiledKernel>> B = Diagnostic("never ran");
  std::thread T1([&] { Race(A); });
  std::thread T2([&] { Race(B); });
  T1.join();
  T2.join();

  ASSERT_NE(bool(A), bool(B)) << "exactly one racer must fail";
  const Diagnostic &Loser = A ? B.diagnostic() : A.diagnostic();
  EXPECT_EQ(Loser.code(), Diagnostic::Code::Internal);
  EXPECT_NE(Loser.message().find("injected failure"), std::string::npos);

  EXPECT_EQ(Session.cachedKernels(), 1u);
  EXPECT_EQ(Session.stats().Misses, 2u);
  auto Hit = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->get(), (A ? A : B)->get());
}

//===----------------------------------------------------------------------===//
// Deadlines in the simulator and the CPU lowering
//===----------------------------------------------------------------------===//

TEST(Robustness, SimulatorHonorsDeadlineAndInertCancellationIsFree) {
  ScopedFaultSpec Disarm("");
  testkernels::Compiled C = testkernels::compileGemm(
      testkernels::smallGemmConfig());
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  Cancellation Expired(Deadline::afterMicros(-1.0));
  ErrorOr<SimResult> Timed = C.Kernel->runTiming(SimConfig(), nullptr,
                                                 &Expired);
  ASSERT_FALSE(Timed);
  EXPECT_EQ(Timed.diagnostic().code(), Diagnostic::Code::DeadlineExceeded);

  // An inactive Cancellation must be indistinguishable from passing
  // nullptr — the golden parity suites rely on this.
  Cancellation Inert;
  ErrorOr<SimResult> Plain = C.Kernel->runTiming();
  ErrorOr<SimResult> WithInert = C.Kernel->runTiming(SimConfig(), nullptr,
                                                     &Inert);
  ASSERT_TRUE(Plain);
  ASSERT_TRUE(WithInert);
  EXPECT_EQ(Plain->TFlops, WithInert->TFlops);
}

TEST(Robustness, CpuLoweredExecutionHonorsCancellation) {
  ScopedFaultSpec Disarm("");
  testkernels::Compiled C = testkernels::compileGemm(
      testkernels::smallGemmConfig());
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  CancelToken Token;
  Token.cancel();
  Cancellation Cancel(Deadline::never(), &Token);
  testkernels::KernelBuffers Buffers =
      testkernels::gemmInputs(testkernels::smallGemmConfig());
  ErrorOr<LoweredStats> Stats = runCpuLowered(
      C.Kernel->module(), LeafRegistry::sharedBuiltins(), Buffers.ptrs(),
      &Cancel);
  ASSERT_FALSE(Stats);
  EXPECT_EQ(Stats.diagnostic().code(), Diagnostic::Code::Cancelled);
  EXPECT_NE(Stats.diagnostic().message().find("lowered-execution"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tuner degradation
//===----------------------------------------------------------------------===//

TEST(Robustness, TunerQuarantineIsDeterministicAcrossWorkerCounts) {
  // Probabilistic worker throws are keyed on mapping fingerprints (pure
  // content), so the same candidates fail in every fresh session at any
  // worker count — the PR-8 bit-identical-landscape contract must survive
  // the fault matrix.
  ScopedFaultSpec Spec("seed=9;worker-throw~0.5");
  KernelSearchSpec SearchSpec = gemmSearchSpec(smallGemm(), smallAxes());

  auto Sweep = [&](unsigned Workers) {
    SessionConfig Config;
    Config.Workers = Workers;
    CompilerSession Session(Config);
    Tuner SweepTuner(Session);
    TuneResult Result =
        SweepTuner.tuneBudgeted(SearchSpec, MachineModel::h100(),
                                TuneBudget());
    EXPECT_EQ(SweepTuner.costCacheSize(),
              Result.Stats.Evals - Result.Stats.Quarantined)
        << "quarantined evaluations must never be memoized";
    return Result;
  };

  TuneResult R1 = Sweep(1), R2 = Sweep(2), R4 = Sweep(4);

  EXPECT_GT(R1.Stats.Quarantined, 0u);
  EXPECT_LT(R1.Stats.Quarantined, R1.Stats.Evals)
      << "seed 9 must fail some candidates and spare others";
  EXPECT_TRUE(R1.Partial);

  for (const TuneResult *Other : {&R2, &R4}) {
    EXPECT_EQ(Other->Stats.Evals, R1.Stats.Evals);
    EXPECT_EQ(Other->Stats.Quarantined, R1.Stats.Quarantined);
    EXPECT_EQ(Other->Partial, R1.Partial);
    ASSERT_EQ(Other->Landscape.size(), R1.Landscape.size());
    for (size_t I = 0; I < R1.Landscape.size(); ++I) {
      const CandidateResult &Lhs = R1.Landscape[I];
      const CandidateResult &Rhs = Other->Landscape[I];
      EXPECT_EQ(Lhs.Point.str(), Rhs.Point.str()) << "row " << I;
      EXPECT_EQ(Lhs.Status, Rhs.Status) << "row " << I;
      EXPECT_EQ(Lhs.Detail, Rhs.Detail) << "row " << I;
      EXPECT_EQ(Lhs.TFlops, Rhs.TFlops) << "row " << I;
    }
  }
}

TEST(Robustness, TunerDeadlineAndCancelReturnPartialBestSoFar) {
  ScopedFaultSpec Disarm("");
  Tuner DeadlineTuner;
  TuneBudget Expired;
  Expired.DeadlineAt = Deadline::afterMicros(-1.0);
  TuneResult R = DeadlineTuner.tuneBudgeted(
      gemmSearchSpec(smallGemm(), smallAxes()), MachineModel::h100(),
      Expired);
  EXPECT_TRUE(R.Partial);
  EXPECT_TRUE(R.Error.empty());
  EXPECT_EQ(R.Stats.Evals, 0u);

  CancelToken Token;
  Token.cancel();
  TuneBudget Cancelled;
  Cancelled.Cancel = &Token;
  Tuner CancelTuner;
  TuneResult C = CancelTuner.tuneBudgeted(
      gemmSearchSpec(smallGemm(), smallAxes()), MachineModel::h100(),
      Cancelled);
  EXPECT_TRUE(C.Partial);
  EXPECT_EQ(C.Stats.Evals, 0u);
}

TEST(Robustness, CostCacheSelfHealsInjectedCorruption) {
  ScopedFaultSpec Disarm(""); // The healing sweeps below must run clean.
  KernelSearchSpec SearchSpec = gemmSearchSpec(smallGemm(), smallAxes());
  Tuner SweepTuner;

  TuneResult First;
  {
    // Corrupt every cost-cache insert; the returned rows are built before
    // the insert, so the first landscape is still clean.
    ScopedFaultSpec Spec("cost-corrupt");
    First = SweepTuner.tuneBudgeted(SearchSpec, MachineModel::h100(),
                                    TuneBudget());
  }
  size_t Evaluated = 0;
  for (const CandidateResult &Row : First.Landscape)
    if (Row.Status == CandidateStatus::Evaluated) {
      ++Evaluated;
      EXPECT_FALSE(std::isnan(Row.TFlops));
      EXPECT_GT(Row.TFlops, 0.0);
    }
  ASSERT_GT(Evaluated, 0u);

  // The replaying sweep detects every NaN entry, discards it, and
  // re-evaluates (through the session's kernel cache, so no pipeline
  // reruns) — corruption never reaches a ranked landscape.
  TuneResult Second = SweepTuner.tuneBudgeted(SearchSpec,
                                              MachineModel::h100(),
                                              TuneBudget());
  EXPECT_EQ(Second.Stats.CostCacheHits, Second.Stats.Evals - Evaluated)
      << "corrupt entries must re-evaluate, intact ones must replay";
  EXPECT_EQ(Second.Stats.PipelinesRun, 0u);
  ASSERT_EQ(Second.Landscape.size(), First.Landscape.size());
  for (size_t I = 0; I < First.Landscape.size(); ++I) {
    EXPECT_EQ(Second.Landscape[I].Point.str(),
              First.Landscape[I].Point.str());
    EXPECT_EQ(Second.Landscape[I].TFlops, First.Landscape[I].TFlops)
        << "row " << I;
  }

  // Healed: a third sweep replays everything from the cost cache.
  TuneResult Third = SweepTuner.tuneBudgeted(SearchSpec,
                                             MachineModel::h100(),
                                             TuneBudget());
  EXPECT_EQ(Third.Stats.CostCacheHits, Third.Stats.Evals);
}

//===----------------------------------------------------------------------===//
// The environment-driven fault matrix (CI runs this across specs)
//===----------------------------------------------------------------------===//

TEST(Robustness, FaultMatrixServesStructuredResultsUnderEnvSpec) {
  // Consumes whatever CYPRESS_FAULT_SPEC armed (a malformed spec aborts in
  // FaultPlan::global; an unset one makes this a clean-path run). The
  // invariants hold under every spec the CI matrix installs: structured
  // diagnostics, no crashes or hangs, no poisoned caches, no NaN ranks.
  SessionConfig Config;
  Config.Workers = 4;
  Config.MaxQueuedRequests = 8;
  CompilerSession Session(Config);
  SessionGemm Small(512), Large(1024);

  CompileOptions Options;
  Options.DeadlineAt = Deadline::afterMillis(60000.0);
  std::vector<CompilerSession::Request> Batch = {
      {Small.input(), "gemm", std::string()},
      {Large.input(), "gemm", std::string()},
      {Small.input(), "gemm", std::string()},
      {Large.input(), "gemm", std::string()},
  };
  for (int Round = 0; Round < 3; ++Round) {
    auto Results = Session.compileAll(Batch, nullptr, nullptr, Options);
    ASSERT_EQ(Results.size(), Batch.size());
    for (size_t I = 0; I < Results.size(); ++I) {
      if (Results[I]) {
        EXPECT_NE(Results[I]->get(), nullptr);
        continue;
      }
      EXPECT_FALSE(Results[I].diagnostic().message().empty())
          << "round " << Round << " request " << I;
    }
  }
  // Only genuinely compiled kernels may be resident.
  EXPECT_LE(Session.cachedKernels(), 2u);

  Tuner MatrixTuner(Session);
  TuneBudget Budget;
  Budget.DeadlineAt = Deadline::afterMillis(60000.0);
  TuneResult Result = MatrixTuner.tuneBudgeted(
      gemmSearchSpec(smallGemm(), smallAxes()), MachineModel::h100(),
      Budget);
  EXPECT_TRUE(Result.Error.empty()) << Result.Error;
  for (const CandidateResult &Row : Result.Landscape) {
    if (Row.Status == CandidateStatus::Evaluated) {
      EXPECT_FALSE(std::isnan(Row.TFlops)) << Row.Point.str();
      EXPECT_GT(Row.TFlops, 0.0) << Row.Point.str();
    } else {
      EXPECT_FALSE(Row.Detail.empty()) << Row.Point.str();
    }
  }
  EXPECT_EQ(MatrixTuner.costCacheSize(),
            Result.Stats.Evals - Result.Stats.CostCacheHits -
                Result.Stats.Quarantined);
}
