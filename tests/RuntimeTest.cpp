//===- RuntimeTest.cpp - Host API surface tests --------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the public runtime API a downstream user programs against:
/// compile-time error propagation, custom leaf registration, artifact
/// accessors (IR dump, CUDA source, shared-memory plan), and a
/// user-defined task tree built from scratch rather than the shipped
/// kernels — the "new kernels not supported by vendor libraries" use case
/// the paper's introduction motivates.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "runtime/Session.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>

using namespace cypress;

namespace {

/// A user kernel the library does not ship: element-wise AXPY-like update
/// Out = X + X (computed through a custom leaf), tiled over blocks and
/// split across warpgroups.
struct UserKernel {
  TaskRegistry Registry;
  MappingSpec Mapping;
  std::vector<TensorType> Args;

  UserKernel() {
    Registry.addInner(
        "axpy", "axpy_host",
        {{"Out", 2, ElementType::F32, Privilege::Write},
         {"X", 2, ElementType::F32, Privilege::Read}},
        [](InnerContext &Ctx, std::vector<TensorHandle> Handles) {
          const Shape &S = Ctx.shapeOf(Handles[0]);
          int64_t U = Ctx.tunable("U");
          PartitionHandle OutPart =
              Ctx.partitionByBlocks(Handles[0], Shape({U, S.dim(1)}));
          PartitionHandle XPart =
              Ctx.partitionByBlocks(Handles[1], Shape({U, S.dim(1)}));
          Ctx.prange({ScalarExpr(S.dim(0) / U)},
                     [&](std::vector<ScalarExpr> I) {
                       Ctx.launch("axpy",
                                  {Ctx.index(OutPart, {I[0], ScalarExpr(0)}),
                                   Ctx.index(XPart, {I[0], ScalarExpr(0)})});
                     });
        });
    Registry.addInner(
        "axpy", "axpy_block",
        {{"Out", 2, ElementType::F32, Privilege::Write},
         {"X", 2, ElementType::F32, Privilege::Read}},
        [](InnerContext &Ctx, std::vector<TensorHandle> Handles) {
          const Shape &S = Ctx.shapeOf(Handles[0]);
          int64_t Wgs = Ctx.tunable("WGS");
          PartitionHandle OutPart = Ctx.partitionByBlocks(
              Handles[0], Shape({S.dim(0) / Wgs, S.dim(1)}));
          PartitionHandle XPart = Ctx.partitionByBlocks(
              Handles[1], Shape({S.dim(0) / Wgs, S.dim(1)}));
          Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
            Ctx.launch("axpy",
                       {Ctx.index(OutPart, {I[0], ScalarExpr(0)}),
                        Ctx.index(XPart, {I[0], ScalarExpr(0)})});
          });
        });
    Registry.addLeaf("axpy", "axpy_leaf",
                     {{"Out", 2, ElementType::F32, Privilege::Write},
                      {"X", 2, ElementType::F32, Privilege::Read}},
                     {"user_double", ExecUnit::SIMT,
                      [](const std::vector<Shape> &Shapes) {
                        return static_cast<double>(
                            Shapes[0].numElements());
                      }});

    std::vector<TaskMapping> Instances;
    TaskMapping Host;
    Host.Instance = "host";
    Host.Variant = "axpy_host";
    Host.Proc = Processor::Host;
    Host.Mems = {Memory::Global, Memory::Global};
    Host.Tunables = {{"U", 64}};
    Host.Entrypoint = true;
    Host.Calls = {"blk"};
    Instances.push_back(Host);
    TaskMapping Blk;
    Blk.Instance = "blk";
    Blk.Variant = "axpy_block";
    Blk.Proc = Processor::Block;
    Blk.Mems = {Memory::Global, Memory::Global};
    Blk.Tunables = {{"WGS", 2}};
    Blk.Calls = {"wg"};
    Instances.push_back(Blk);
    TaskMapping Wg;
    Wg.Instance = "wg";
    Wg.Variant = "axpy_leaf";
    Wg.Proc = Processor::Warpgroup;
    // Stage the tile through shared memory on the way in, registers out.
    Wg.Mems = {Memory::Register, Memory::Shared};
    Instances.push_back(Wg);
    Mapping = MappingSpec(std::move(Instances));
    Args = {{Shape({128, 64}), ElementType::F32},
            {Shape({128, 64}), ElementType::F32}};
  }
};

} // namespace

TEST(Runtime, UserKernelWithCustomLeaf) {
  UserKernel User;
  CompileInput Input{&User.Registry, &User.Mapping, &MachineModel::h100(),
                     User.Args};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "axpy");
  ASSERT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());

  (*Kernel)->addLeaf("user_double",
                     [](std::vector<TensorView> &Args,
                        const std::vector<int64_t> &) {
                       TensorView &Out = Args[0];
                       TensorView &X = Args[1];
                       int64_t Count = Out.shape().numElements();
                       for (int64_t I = 0; I < Count; ++I) {
                         std::vector<int64_t> Idx =
                             Out.shape().delinearize(I);
                         Out.set(Idx, 2.0f * X.at(Idx));
                       }
                     });

  TensorData Out(User.Args[0]);
  TensorData X(User.Args[1]);
  fillRandomFp16(X.raw(), 77);
  ErrorOr<SimResult> Result = (*Kernel)->runFunctional({&Out, &X});
  ASSERT_TRUE(Result) << (Result ? "" : Result.diagnostic().message());
  for (int64_t I = 0; I < 128; I += 17)
    for (int64_t J = 0; J < 64; J += 13)
      EXPECT_FLOAT_EQ(Out.at({I, J}), 2.0f * X.at({I, J}));
}

TEST(Runtime, MissingLeafImplementationDiagnosed) {
  UserKernel User;
  CompileInput Input{&User.Registry, &User.Mapping, &MachineModel::h100(),
                     User.Args};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "axpy");
  ASSERT_TRUE(Kernel);
  TensorData Out(User.Args[0]);
  TensorData X(User.Args[1]);
  // No addLeaf("user_double"): the functional run must fail cleanly.
  ErrorOr<SimResult> Result = (*Kernel)->runFunctional({&Out, &X});
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("user_double"),
            std::string::npos);
}

TEST(Runtime, CompileErrorsPropagate) {
  UserKernel User;
  CompileInput Input{&User.Registry, &User.Mapping, &MachineModel::h100(),
                     {}}; // Wrong arity.
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "axpy");
  ASSERT_FALSE(Kernel);
  EXPECT_NE(Kernel.diagnostic().message().find("entrypoint"),
            std::string::npos);
}

TEST(Runtime, ArtifactAccessors) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "artifacts");
  ASSERT_TRUE(Kernel);

  EXPECT_EQ((*Kernel)->name(), "artifacts");
  // IR dump uses the paper's notation.
  std::string Ir = (*Kernel)->irDump();
  EXPECT_NE(Ir.find("pfor"), std::string::npos);
  EXPECT_NE(Ir.find("on tma"), std::string::npos);
  EXPECT_NE(Ir.find("@lag("), std::string::npos);
  // Shared plan covers the tiles and fits the machine.
  const SharedAllocation &Plan = (*Kernel)->sharedPlan();
  EXPECT_FALSE(Plan.Entries.empty());
  EXPECT_LE(Plan.TotalBytes, H100Constants::SharedMemoryBytes);
  // The CUDA source names the kernel.
  EXPECT_NE((*Kernel)->cudaSource().find("artifacts_kernel"),
            std::string::npos);
}

TEST(Runtime, TimingIsDeterministic) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  auto Kernel = compileKernel(Input, "det");
  ASSERT_TRUE(Kernel);
  double First = (*Kernel)->runTiming()->BlockCycles;
  double Second = (*Kernel)->runTiming()->BlockCycles;
  EXPECT_EQ(First, Second);
}

//===----------------------------------------------------------------------===//
// CompilerSession: the caching, concurrent serving layer
//===----------------------------------------------------------------------===//

namespace {

/// Owned gemm compile input for session tests.
struct SessionGemm {
  TaskRegistry Registry;
  MappingSpec Mapping;
  std::vector<TensorType> Args;

  explicit SessionGemm(int64_t Size) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    registerGemmTasks(Registry);
    Mapping = gemmMapping(Config);
    Args = gemmArgTypes(Config);
  }

  CompileInput input() const {
    return {&Registry, &Mapping, &MachineModel::h100(), Args};
  }
};

} // namespace

TEST(Session, PipelineStatsSurfacedFromCompiledKernel) {
  SessionGemm Gemm(512);
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Gemm.input(), "stats");
  ASSERT_TRUE(Kernel);
  const PipelineStats &Stats = (*Kernel)->stats();
  ASSERT_EQ(Stats.Passes.size(), 7u);
  EXPECT_GT(Stats.TotalMicros, 0.0);
  EXPECT_NE(Stats.pass("warp-specialization"), nullptr);
}

TEST(Session, CacheHitReturnsIdenticalKernel) {
  SessionGemm Gemm(512);
  CompilerSession Session;

  auto First = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(First) << (First ? "" : First.diagnostic().message());
  auto Second = Session.compile(Gemm.input(), "gemm");
  ASSERT_TRUE(Second);

  EXPECT_EQ(First->get(), Second->get()); // Same object, not a recompile.
  EXPECT_EQ(Session.stats().Hits, 1u);
  EXPECT_EQ(Session.stats().Misses, 1u);
  EXPECT_EQ(Session.cachedKernels(), 1u);
}

TEST(Session, DifferentInputsMissTheCache) {
  SessionGemm Small(512), Large(1024);
  CompilerSession Session;

  auto First = Session.compile(Small.input(), "gemm");
  auto Second = Session.compile(Large.input(), "gemm");
  ASSERT_TRUE(First);
  ASSERT_TRUE(Second);
  EXPECT_NE(First->get(), Second->get());
  EXPECT_EQ(Session.stats().Hits, 0u);
  EXPECT_EQ(Session.stats().Misses, 2u);
  EXPECT_NE(CompilerSession::cacheKey(Small.input()),
            CompilerSession::cacheKey(Large.input()));
}

TEST(Session, CacheHitIsAtLeastTenTimesFasterThanColdCompile) {
  SessionGemm Gemm(4096);
  CompilerSession Session;
  using Clock = std::chrono::steady_clock;

  Clock::time_point ColdStart = Clock::now();
  auto Cold = Session.compile(Gemm.input(), "gemm");
  double ColdMicros =
      std::chrono::duration<double, std::micro>(Clock::now() - ColdStart)
          .count();
  ASSERT_TRUE(Cold);

  // Best hit of a few trials, so one scheduler hiccup cannot fail the
  // assertion; each trial still includes full key construction.
  double HitMicros = std::numeric_limits<double>::infinity();
  for (int Trial = 0; Trial < 5; ++Trial) {
    Clock::time_point HitStart = Clock::now();
    auto Hit = Session.compile(Gemm.input(), "gemm");
    double Micros =
        std::chrono::duration<double, std::micro>(Clock::now() - HitStart)
            .count();
    ASSERT_TRUE(Hit);
    EXPECT_EQ(Hit->get(), Cold->get());
    HitMicros = std::min(HitMicros, Micros);
  }

  EXPECT_GE(ColdMicros, 10.0 * HitMicros)
      << "cold " << ColdMicros << "us vs hit " << HitMicros << "us";
}

TEST(Session, CompileAllIsConcurrentDeterministicAndDeduplicated) {
  SessionGemm Small(512), Large(1024);
  TaskRegistry AttnRegistry;
  registerAttentionTasks(AttnRegistry);
  AttentionConfig AttnConfig = fa2Config(2048);
  MappingSpec AttnMapping = attentionMapping(AttnConfig);
  std::vector<TensorType> AttnArgs = attentionArgTypes(AttnConfig);
  CompileInput Attn{&AttnRegistry, &AttnMapping, &MachineModel::h100(),
                    AttnArgs};

  SessionConfig Config;
  Config.Workers = 4;
  CompilerSession Session(Config);
  std::vector<CompilerSession::Request> Requests = {
      {Small.input(), "gemm_small", {}},
      {Large.input(), "gemm_large", {}},
      {Attn, "attention", {}},
      {Small.input(), "gemm_small_again", {}},
      {Large.input(), "gemm_large_again", {}},
      {Attn, "attention_again", {}}};

  std::vector<uint8_t> Hits;
  auto Results = Session.compileAll(Requests, &Hits);
  ASSERT_EQ(Results.size(), Requests.size());
  // The per-request hit flags are positional and agree exactly with the
  // session counters (this session saw no other traffic).
  ASSERT_EQ(Hits.size(), Requests.size());
  uint64_t FlaggedHits = 0;
  for (uint8_t Hit : Hits)
    FlaggedHits += Hit ? 1 : 0;
  EXPECT_EQ(FlaggedHits, Session.stats().Hits);
  EXPECT_EQ(Hits.size() - FlaggedHits, Session.stats().Misses);
  for (size_t I = 0; I < Results.size(); ++I)
    ASSERT_TRUE(Results[I]) << "request " << I << ": "
                            << Results[I].diagnostic().message();

  // Duplicate inputs share one kernel, whichever worker compiled it.
  EXPECT_EQ(Results[0]->get(), Results[3]->get());
  EXPECT_EQ(Results[1]->get(), Results[4]->get());
  EXPECT_EQ(Results[2]->get(), Results[5]->get());
  EXPECT_EQ(Session.cachedKernels(), 3u);

  // Concurrent compilation is deterministic: bit-identical IR to a fresh
  // serial compile of the same inputs.
  ErrorOr<std::unique_ptr<CompiledKernel>> Serial =
      compileKernel(Small.input(), "serial");
  ASSERT_TRUE(Serial);
  EXPECT_EQ((*Results[0])->irDump(), (*Serial)->irDump());
}

TEST(Session, CacheStatsSnapshotsHitsMissesAndEntries) {
  SessionGemm Small(512), Large(1024);
  CompilerSession Session;

  CacheStats Empty = Session.cacheStats();
  EXPECT_EQ(Empty.Hits, 0u);
  EXPECT_EQ(Empty.Misses, 0u);
  EXPECT_EQ(Empty.Entries, 0u);
  EXPECT_FALSE(Session.isCached(Small.input()));

  ASSERT_TRUE(Session.compile(Small.input(), "gemm"));
  EXPECT_TRUE(Session.isCached(Small.input()));
  EXPECT_FALSE(Session.isCached(Large.input()));
  ASSERT_TRUE(Session.compile(Small.input(), "gemm"));
  ASSERT_TRUE(Session.compile(Large.input(), "gemm"));

  CacheStats Stats = Session.cacheStats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.Entries, 2u);
  // One consistent snapshot: the counters match the legacy accessors.
  EXPECT_EQ(Stats.Hits, Session.stats().Hits);
  EXPECT_EQ(Stats.Misses, Session.stats().Misses);
  EXPECT_EQ(Stats.Entries, Session.cachedKernels());

  // Clearing drops the kernels but keeps the monotonic counters; probing
  // never counts as a hit or miss.
  Session.clearCache();
  EXPECT_FALSE(Session.isCached(Small.input()));
  CacheStats Cleared = Session.cacheStats();
  EXPECT_EQ(Cleared.Entries, 0u);
  EXPECT_EQ(Cleared.Hits, 1u);
  EXPECT_EQ(Cleared.Misses, 2u);
}

TEST(Session, CompileErrorsAreReportedNotCached) {
  SessionGemm Gemm(512);
  CompilerSession Session;
  CompileInput Bad = Gemm.input();
  Bad.EntryArgTypes.clear(); // Wrong entrypoint arity.
  auto Result = Session.compile(Bad, "bad");
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("entrypoint"),
            std::string::npos);
  EXPECT_EQ(Result.diagnostic().passName(), "dependence-analysis");
  EXPECT_EQ(Session.cachedKernels(), 0u);
  // Failed compiles still count as misses: Hits + Misses == compile calls.
  EXPECT_EQ(Session.stats().Misses, 1u);
  EXPECT_EQ(Session.stats().Hits, 0u);
}
