//===- TestKernels.h - Shared kernel builders and inputs for tests ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile helpers, canonical configurations, seeded input builders,
/// and tensor comparison utilities shared by the suites that exercise the
/// six pinned kernels (SimulatorParityTest, CudaEmitterTest,
/// BackendExecTest). One home for the seeds and configs means a
/// differential suite and a golden suite can never silently drift onto
/// different inputs.
///
/// Deliberately gtest-free so non-test drivers can reuse it; helpers
/// report failure through Compiled::Error / return strings instead of
/// asserting.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_TESTS_TESTKERNELS_H
#define CYPRESS_TESTS_TESTKERNELS_H

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cypress {
namespace testkernels {

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

/// A compiled kernel plus the registry/mapping it borrows from (the kernel
/// holds pointers into both, so they must outlive it).
struct Compiled {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
  std::string Error; ///< Non-empty when compilation failed (Kernel null).
};

template <typename RegisterFn, typename MappingFn>
Compiled compile(const char *Name, RegisterFn Register, MappingFn Build,
                 std::vector<TensorType> Args) {
  Compiled Result;
  Result.Registry = std::make_unique<TaskRegistry>();
  Register(*Result.Registry);
  Result.Mapping = std::make_unique<MappingSpec>(Build());
  CompileInput Input{Result.Registry.get(), Result.Mapping.get(),
                     &MachineModel::h100(), std::move(Args)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, Name);
  if (Kernel)
    Result.Kernel = std::move(*Kernel);
  else
    Result.Error = Kernel.diagnostic().message();
  return Result;
}

inline Compiled compileGemm(const GemmConfig &Config) {
  return compile(
      "gemm", registerGemmTasks, [&] { return gemmMapping(Config); },
      gemmArgTypes(Config));
}

inline Compiled compileBatchedGemm(const GemmConfig &Config) {
  return compile(
      "batched_gemm", registerBatchedGemmTasks,
      [&] { return batchedGemmMapping(Config); },
      batchedGemmArgTypes(Config));
}

inline Compiled compileDualGemm(const GemmConfig &Config) {
  return compile(
      "dual", registerDualGemmTasks,
      [&] { return dualGemmMapping(Config); }, dualGemmArgTypes(Config));
}

inline Compiled compileGemmRed(const GemmConfig &Config) {
  return compile(
      "gemmred", registerGemmRedTasks,
      [&] { return gemmRedMapping(Config); }, gemmRedArgTypes(Config));
}

inline Compiled compileAttention(const AttentionConfig &Config) {
  return compile(
      "fa", registerAttentionTasks,
      [&] { return attentionMapping(Config); }, attentionArgTypes(Config));
}

//===----------------------------------------------------------------------===//
// Canonical configurations
//===----------------------------------------------------------------------===//

/// The paper's headline shape (4096^3, default tiles). Timing/golden scale;
/// far too large for scalar functional execution.
inline GemmConfig headlineGemmConfig() { return GemmConfig(); }

/// The functional-scale GEMM shape every functional suite uses
/// (256x512x128: multiple blocks, two K steps, both warpgroups exercised).
inline GemmConfig smallGemmConfig() {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  return Config;
}

/// Functional-scale attention (two heads, short sequence, 64-row KV steps)
/// as pinned by SimulatorParity.FunctionalAttentionDeterministic.
inline AttentionConfig smallAttentionConfig(bool StageScores = false) {
  AttentionConfig Config = StageScores ? fa3Config(384) : fa2Config(384);
  Config.Heads = 2;
  Config.BC = 64;
  return Config;
}

//===----------------------------------------------------------------------===//
// Seeded inputs
//===----------------------------------------------------------------------===//

/// Entry-argument buffers for one kernel run: outputs zeroed, inputs
/// filled deterministically from per-argument seeds.
struct KernelBuffers {
  std::vector<TensorData> Data;

  /// Pointer view in entry-argument order, as runFunctional/runCpuLowered
  /// take it.
  std::vector<TensorData *> ptrs() {
    std::vector<TensorData *> Result;
    for (TensorData &D : Data)
      Result.push_back(&D);
    return Result;
  }
};

/// Builds one buffer per type; argument I is filled from Seeds[I] when
/// nonzero (zero marks an output, left zero-initialized).
inline KernelBuffers makeBuffers(const std::vector<TensorType> &Types,
                                 const std::vector<uint64_t> &Seeds) {
  KernelBuffers Buffers;
  for (size_t I = 0; I < Types.size(); ++I) {
    Buffers.Data.emplace_back(Types[I]);
    if (I < Seeds.size() && Seeds[I] != 0)
      fillRandomFp16(Buffers.Data.back().raw(), Seeds[I]);
  }
  return Buffers;
}

/// The established per-family seeds (same values the pre-existing
/// functional tests pinned): changing them invalidates recorded
/// expectations, so new suites must reuse these helpers.
inline KernelBuffers gemmInputs(const GemmConfig &Config) {
  return makeBuffers(gemmArgTypes(Config), {0, 11, 22}); // C, A, B
}
inline KernelBuffers batchedGemmInputs(const GemmConfig &Config) {
  return makeBuffers(batchedGemmArgTypes(Config), {0, 31, 32});
}
inline KernelBuffers dualGemmInputs(const GemmConfig &Config) {
  return makeBuffers(dualGemmArgTypes(Config), {0, 41, 42, 43});
}
inline KernelBuffers gemmRedInputs(const GemmConfig &Config) {
  return makeBuffers(gemmRedArgTypes(Config), {0, 51, 52, 0}); // C,A,B,Y
}
inline KernelBuffers attentionInputs(const AttentionConfig &Config) {
  return makeBuffers(attentionArgTypes(Config), {0, 101, 102, 103});
}

//===----------------------------------------------------------------------===//
// Comparison
//===----------------------------------------------------------------------===//

/// Units-in-the-last-place distance between two finite floats (INT64_MAX
/// when either is NaN). The standard bit-reinterpretation trick: map the
/// sign-magnitude float ordering onto a monotone integer ordering.
inline int64_t ulpDistance(float A, float B) {
  if (std::isnan(A) || std::isnan(B))
    return INT64_MAX;
  int32_t IA, IB;
  std::memcpy(&IA, &A, sizeof(float));
  std::memcpy(&IB, &B, sizeof(float));
  if (IA < 0)
    IA = std::numeric_limits<int32_t>::min() - IA;
  if (IB < 0)
    IB = std::numeric_limits<int32_t>::min() - IB;
  return std::llabs(static_cast<int64_t>(IA) - static_cast<int64_t>(IB));
}

/// Element-wise comparison of two same-shaped tensors: equal when every
/// element pair is within \p MaxUlps units-in-the-last-place OR within
/// \p AbsTol absolutely (the absolute escape hatch covers near-zero values
/// where ULPs are meaninglessly tight). Returns "" on success, else a
/// description of the first and worst mismatches.
inline std::string compareTensors(const TensorData &Got,
                                  const TensorData &Want, int64_t MaxUlps,
                                  float AbsTol) {
  if (!(Got.shape() == Want.shape()))
    return "shape mismatch: " + Got.shape().toString() + " vs " +
           Want.shape().toString();
  int64_t FirstBad = -1, WorstIdx = -1, Mismatches = 0;
  int64_t WorstUlps = -1;
  for (int64_t I = 0, E = Got.shape().numElements(); I < E; ++I) {
    float G = Got.at(I), W = Want.at(I);
    if (std::fabs(G - W) <= AbsTol)
      continue;
    int64_t Ulps = ulpDistance(G, W);
    if (Ulps <= MaxUlps)
      continue;
    ++Mismatches;
    if (FirstBad < 0)
      FirstBad = I;
    if (Ulps > WorstUlps) {
      WorstUlps = Ulps;
      WorstIdx = I;
    }
  }
  if (Mismatches == 0)
    return "";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%lld mismatched elements; first at %lld (%.9g vs %.9g), "
                "worst at %lld (%.9g vs %.9g, %lld ulps)",
                static_cast<long long>(Mismatches),
                static_cast<long long>(FirstBad),
                static_cast<double>(Got.at(FirstBad)),
                static_cast<double>(Want.at(FirstBad)),
                static_cast<long long>(WorstIdx),
                static_cast<double>(Got.at(WorstIdx)),
                static_cast<double>(Want.at(WorstIdx)),
                static_cast<long long>(WorstUlps));
  return Buf;
}

} // namespace testkernels
} // namespace cypress

#endif // CYPRESS_TESTS_TESTKERNELS_H
