//===- BackendExecTest.cpp - Differential execution of the CPU lowering -------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential verification of the emitted-kernel schedule: the scalar CPU
/// lowering (src/backend) executes the post-pipeline IR the way the CUDA
/// emitter prints it — per-agent streams, event waits, pipeline lag — and
/// its outputs must match `runFunctional`'s program-order execution on the
/// same seeded inputs for every kernel family the paper evaluates. A
/// divergence means warp specialization or pipelining produced a schedule
/// that computes something other than the task program.
///
/// Also pins the harness itself: two lowered runs must be bit-identical
/// (the agent scheduler is deterministic), and an injected corruption must
/// make the differ fail (the comparison actually compares).
///
//===----------------------------------------------------------------------===//

#include "backend/CpuLowering.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace cypress;
using namespace cypress::testkernels;

namespace {

/// Tolerances for functional-vs-lowered comparison. Both executors run the
/// same scalar leaves in the same per-warpgroup order and quantize f16
/// stores identically, so agreement is tight; 4 ulps + 1e-5 absorbs any
/// libm/contraction variance without hiding a real scheduling bug.
constexpr int64_t MaxUlps = 4;
constexpr float AbsTol = 1e-5f;

/// Runs \p Compiled both ways on identical inputs and compares every
/// entry buffer (outputs and inputs — the lowering must not clobber
/// arguments the functional path leaves alone).
void expectDifferentialMatch(Compiled &C, KernelBuffers &&Functional,
                             KernelBuffers &&Lowered) {
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  ErrorOr<SimResult> Ref = C.Kernel->runFunctional(Functional.ptrs());
  ASSERT_TRUE(Ref) << (Ref ? "" : Ref.diagnostic().message());
  ASSERT_TRUE(Ref->FunctionalRan);

  ErrorOr<LoweredStats> Stats =
      runCpuLowered(C.Kernel->module(), LeafRegistry::sharedBuiltins(),
                    Lowered.ptrs());
  ASSERT_TRUE(Stats) << (Stats ? "" : Stats.diagnostic().message());
  EXPECT_GT(Stats->Blocks, 0);
  EXPECT_GT(Stats->Instances, 0);

  for (size_t I = 0; I < Functional.Data.size(); ++I)
    EXPECT_EQ("", compareTensors(Lowered.Data[I], Functional.Data[I],
                                 MaxUlps, AbsTol))
        << "entry argument " << I;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential execution: the six kernel families
//===----------------------------------------------------------------------===//

TEST(BackendExec, GemmMatchesFunctional) {
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileGemm(Config);
  expectDifferentialMatch(C, gemmInputs(Config), gemmInputs(Config));
}

TEST(BackendExec, GemmDeepPipelineMatchesFunctional) {
  // The headline mapping's shape is infeasible for scalar execution, but
  // its defining features — 3-deep pipeline with more K steps than the
  // pipeline depth, so the lag edges actually gate — fit at 256 K.
  GemmConfig Config = smallGemmConfig();
  Config.K = 256;
  Compiled C = compileGemm(Config);
  expectDifferentialMatch(C, gemmInputs(Config), gemmInputs(Config));
}

TEST(BackendExec, BatchedGemmMatchesFunctional) {
  GemmConfig Config = smallGemmConfig();
  Config.L = 2;
  Compiled C = compileBatchedGemm(Config);
  expectDifferentialMatch(C, batchedGemmInputs(Config),
                          batchedGemmInputs(Config));
}

TEST(BackendExec, AttentionFa2MatchesFunctional) {
  AttentionConfig Config = smallAttentionConfig(/*StageScores=*/false);
  Compiled C = compileAttention(Config);
  expectDifferentialMatch(C, attentionInputs(Config),
                          attentionInputs(Config));
}

TEST(BackendExec, AttentionFa3MatchesFunctional) {
  AttentionConfig Config = smallAttentionConfig(/*StageScores=*/true);
  Compiled C = compileAttention(Config);
  expectDifferentialMatch(C, attentionInputs(Config),
                          attentionInputs(Config));
}

TEST(BackendExec, DualGemmMatchesFunctional) {
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileDualGemm(Config);
  expectDifferentialMatch(C, dualGemmInputs(Config),
                          dualGemmInputs(Config));
}

TEST(BackendExec, GemmReductionMatchesFunctional) {
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileGemmRed(Config);
  expectDifferentialMatch(C, gemmRedInputs(Config), gemmRedInputs(Config));
}

TEST(BackendExec, NonWarpSpecializedMatchesFunctional) {
  // With warp specialization off the agent machine degenerates to a single
  // compute stream; the DMA-tagged ops must still execute (ownership is
  // gated on the grid flag, as in the simulator).
  GemmConfig Config = smallGemmConfig();
  Config.Pipe = 1;
  Config.WarpSpecialize = false;
  Compiled C = compileGemm(Config);
  expectDifferentialMatch(C, gemmInputs(Config), gemmInputs(Config));
}

//===----------------------------------------------------------------------===//
// Harness self-checks
//===----------------------------------------------------------------------===//

TEST(BackendExec, LoweredRunsBitIdentical) {
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileGemm(Config);
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  KernelBuffers One = gemmInputs(Config);
  KernelBuffers Two = gemmInputs(Config);
  ASSERT_TRUE(runCpuLowered(C.Kernel->module(),
                            LeafRegistry::sharedBuiltins(), One.ptrs()));
  ASSERT_TRUE(runCpuLowered(C.Kernel->module(),
                            LeafRegistry::sharedBuiltins(), Two.ptrs()));
  const TensorData &C1 = One.Data[0], &C2 = Two.Data[0];
  for (int64_t I = 0, E = C1.shape().numElements(); I < E; ++I)
    ASSERT_EQ(C1.at(I), C2.at(I)) << "element " << I;
}

TEST(BackendExec, DifferInjectedCorruptionFails) {
  // Prove the comparison can fail: perturb one lowered output element past
  // both tolerances and require a nonempty report naming it.
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileGemm(Config);
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  KernelBuffers Functional = gemmInputs(Config);
  KernelBuffers Lowered = gemmInputs(Config);
  ASSERT_TRUE(C.Kernel->runFunctional(Functional.ptrs()));
  ASSERT_TRUE(runCpuLowered(C.Kernel->module(),
                            LeafRegistry::sharedBuiltins(),
                            Lowered.ptrs()));

  TensorData &Out = Lowered.Data[0];
  Out.set(int64_t(12345), Out.at(int64_t(12345)) + 1.0f);
  std::string Report =
      compareTensors(Out, Functional.Data[0], MaxUlps, AbsTol);
  EXPECT_NE("", Report);
  EXPECT_NE(Report.find("12345"), std::string::npos) << Report;
}

TEST(BackendExec, StatsReflectWarpSpecialization) {
  GemmConfig Config = smallGemmConfig();
  Compiled C = compileGemm(Config);
  ASSERT_NE(C.Kernel, nullptr) << C.Error;

  KernelBuffers Buffers = gemmInputs(Config);
  ErrorOr<LoweredStats> Stats = runCpuLowered(
      C.Kernel->module(), LeafRegistry::sharedBuiltins(), Buffers.ptrs());
  ASSERT_TRUE(Stats) << (Stats ? "" : Stats.diagnostic().message());
  // 256x512 with 128x256 tiles = 4 blocks; 1 DMA agent + 2 warpgroups.
  EXPECT_EQ(Stats->Blocks, 4);
  EXPECT_EQ(Stats->Agents, 3);
  // The DMA agent runs ahead of compute, so it must have stalled at least
  // once on the pipeline's backward (lag) edges.
  EXPECT_GT(Stats->Stalls, 0);
}
