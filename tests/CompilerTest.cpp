//===- CompilerTest.cpp - Compiler pass tests ---------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the individual compiler stages of Section 4.2, using small
/// purpose-built task trees (including a reconstruction of the paper's
/// Figure 8/9 `clear` example at warp/thread granularity) plus structural
/// assertions on the shipped GEMM lowering.
///
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace cypress;

namespace {

/// The Figure 8 clear tree: a block-level tensor zeroed through warp- and
/// thread-level sub-launches (we stop at warp granularity with a leaf; the
/// thread level is exercised by the prange with 32 lanes).
struct ClearFixture {
  TaskRegistry Registry;
  MappingSpec Mapping;
  std::vector<TensorType> Args;

  ClearFixture() {
    Registry.addInner(
        "centry", "centry_host",
        {{"C", 2, ElementType::F32, Privilege::Write}},
        [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
          Ctx.prange({ScalarExpr(1)}, [&](std::vector<ScalarExpr>) {
            Ctx.launch("cblk", {Args[0]});
          });
        });
    Registry.addInner(
        "cblk", "cblk_block", {{"C", 2, ElementType::F32, Privilege::Write}},
        [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
          const Shape &S = Ctx.shapeOf(Args[0]);
          PartitionHandle Cp = Ctx.partitionByBlocks(
              Args[0], Shape({S.dim(0) / 4, S.dim(1)}));
          Ctx.prange({ScalarExpr(4)}, [&](std::vector<ScalarExpr> I) {
            Ctx.launch("cwarp", {Ctx.index(Cp, {I[0], ScalarExpr(0)})});
          });
        });
    Registry.addInner(
        "cwarp", "cwarp_inner",
        {{"C", 2, ElementType::F32, Privilege::Write}},
        [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
          const Shape &S = Ctx.shapeOf(Args[0]);
          PartitionHandle Cp = Ctx.partitionByBlocks(
              Args[0], Shape({S.dim(0), S.dim(1) / 32}));
          Ctx.prange({ScalarExpr(32)}, [&](std::vector<ScalarExpr> I) {
            Ctx.launch("cthread", {Ctx.index(Cp, {ScalarExpr(0), I[0]})});
          });
        });
    Registry.addLeaf("cthread", "cthread_leaf",
                     {{"C", 2, ElementType::F32, Privilege::Write}},
                     {"clear", ExecUnit::SIMT, nullptr});

    std::vector<TaskMapping> Instances;
    TaskMapping Host;
    Host.Instance = "host";
    Host.Variant = "centry_host";
    Host.Proc = Processor::Host;
    Host.Mems = {Memory::Global};
    Host.Entrypoint = true;
    Host.Calls = {"blk"};
    Instances.push_back(Host);
    TaskMapping Blk;
    Blk.Instance = "blk";
    Blk.Variant = "cblk_block";
    Blk.Proc = Processor::Block;
    Blk.Mems = {Memory::Global};
    Blk.Calls = {"warp"};
    Instances.push_back(Blk);
    TaskMapping Warp;
    Warp.Instance = "warp";
    Warp.Variant = "cwarp_inner";
    Warp.Proc = Processor::Warp;
    Warp.Mems = {Memory::None};
    Warp.Calls = {"thread"};
    Instances.push_back(Warp);
    TaskMapping Thread;
    Thread.Instance = "thread";
    Thread.Variant = "cthread_leaf";
    Thread.Proc = Processor::Thread;
    Thread.Mems = {Memory::Register};
    Instances.push_back(Thread);
    Mapping = MappingSpec(std::move(Instances));
    Args = {{Shape({16, 128}), ElementType::F32}};
  }

  CompileInput input() {
    return {&Registry, &Mapping, &MachineModel::h100(), Args};
  }
};

int countOps(const IRModule &Module, OpKind Kind) {
  int Count = 0;
  walkOps(Module.root(), [&](const Operation &Op) {
    if (Op.Kind == Kind)
      ++Count;
  });
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dependence analysis (Section 4.2.1)
//===----------------------------------------------------------------------===//

TEST(DependenceAnalysis, BuildsCopyInCopyOutStructure) {
  ClearFixture F;
  CompileInput Input = F.input();
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_TRUE(Module) << (Module ? "" : Module.diagnostic().message());
  EXPECT_TRUE(verifyModule(*Module));

  // The warp and thread pfors exist before vectorization; the leaf writes
  // a register fragment that is copied out to the warp piece (Figure 8's
  // e4 copy).
  int PFors = countOps(*Module, OpKind::PFor);
  EXPECT_EQ(PFors, 3); // Grid, warps, threads.
  EXPECT_GE(countOps(*Module, OpKind::Copy), 1);
}

TEST(DependenceAnalysis, PrivilegeViolationDiagnosed) {
  TaskRegistry Registry;
  Registry.addInner(
      "bad", "bad_host", {{"T", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.prange({ScalarExpr(1)}, [&](std::vector<ScalarExpr>) {
          Ctx.launch("bad", {Args[0]}); // Requests write under read.
        });
      });
  Registry.addLeaf("bad", "bad_leaf",
                   {{"T", 2, ElementType::F16, Privilege::Write}},
                   {"clear", ExecUnit::SIMT, nullptr});
  TaskMapping Host;
  Host.Instance = "host";
  Host.Variant = "bad_host";
  Host.Proc = Processor::Host;
  Host.Mems = {Memory::Global};
  Host.Entrypoint = true;
  Host.Calls = {"leaf"};
  TaskMapping Leaf;
  Leaf.Instance = "leaf";
  Leaf.Variant = "bad_leaf";
  Leaf.Proc = Processor::Block;
  Leaf.Mems = {Memory::Shared};
  MappingSpec Mapping({Host, Leaf});
  std::vector<TensorType> Args = {{Shape({8, 8}), ElementType::F16}};
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_FALSE(Module);
  EXPECT_NE(Module.diagnostic().message().find("requests write"),
            std::string::npos)
      << Module.diagnostic().message();
}

TEST(DependenceAnalysis, MissingTunableDiagnosed) {
  TaskRegistry Registry;
  Registry.addInner(
      "t", "t_host", {{"T", 2, ElementType::F16, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        (void)Ctx.tunable("U"); // Not bound by the mapping below.
        Ctx.prange({ScalarExpr(1)},
                   [&](std::vector<ScalarExpr>) { Ctx.launch("t", {Args[0]}); });
      });
  Registry.addLeaf("t", "t_leaf",
                   {{"T", 2, ElementType::F16, Privilege::Write}},
                   {"clear", ExecUnit::SIMT, nullptr});
  TaskMapping Host;
  Host.Instance = "host";
  Host.Variant = "t_host";
  Host.Proc = Processor::Host;
  Host.Mems = {Memory::Global};
  Host.Entrypoint = true;
  Host.Calls = {"leaf"};
  TaskMapping Leaf;
  Leaf.Instance = "leaf";
  Leaf.Variant = "t_leaf";
  Leaf.Proc = Processor::Block;
  Leaf.Mems = {Memory::Shared};
  MappingSpec Mapping({Host, Leaf});
  std::vector<TensorType> Args = {{Shape({8, 8}), ElementType::F16}};
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_FALSE(Module);
  EXPECT_NE(Module.diagnostic().message().find("tunable"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Vectorization (Section 4.2.2)
//===----------------------------------------------------------------------===//

TEST(Vectorization, FlattensImplicitLoopsAndPromotesEvents) {
  ClearFixture F;
  CompileInput Input = F.input();
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_TRUE(Module);
  ASSERT_TRUE(runVectorization(*Module, MachineModel::h100()));

  // Only the grid pfor remains (Figure 9c: warp and thread loops gone).
  EXPECT_EQ(countOps(*Module, OpKind::PFor), 1);
  walkOps(Module->root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::PFor) {
      EXPECT_EQ(Op.PForProc, Processor::Block);
    }
  });

  // The leaf's event now carries both flattened dimensions, and some op
  // references it with a warp and thread index (e3[i, j] in Figure 9c).
  bool SawPromoted = false;
  walkOps(Module->root(), [&](const Operation &Op) {
    if (Op.Kind != OpKind::Call || Op.Result == InvalidEventId)
      return;
    const EventType &Type = Module->event(Op.Result).Type;
    if (Type.Dims.size() == 2 && Type.Dims[0].Proc == Processor::Warp &&
        Type.Dims[0].Extent == 4 && Type.Dims[1].Proc == Processor::Thread &&
        Type.Dims[1].Extent == 32)
      SawPromoted = true;
  });
  EXPECT_TRUE(SawPromoted);
  EXPECT_TRUE(verifyModule(*Module));
}

TEST(Vectorization, SubstitutesProcessorIndices) {
  ClearFixture F;
  CompileInput Input = F.input();
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_TRUE(Module);
  ASSERT_TRUE(runVectorization(*Module, MachineModel::h100()));
  // Some copy destination now uses warp_id()/thread_id() in its colors.
  bool SawProcIndex = false;
  walkOps(Module->root(), [&](const Operation &Op) {
    if (Op.Kind != OpKind::Copy)
      return;
    for (const ScalarExpr &Color : Op.CopyDst.Color)
      SawProcIndex |= Color.usesProcIndex();
    for (const ScalarExpr &Color : Op.CopySrc.Color)
      SawProcIndex |= Color.usesProcIndex();
  });
  EXPECT_TRUE(SawProcIndex);
}

//===----------------------------------------------------------------------===//
// Copy elimination (Section 4.2.3)
//===----------------------------------------------------------------------===//

TEST(CopyElimination, NoneTensorsVanishFromClearTree) {
  ClearFixture F;
  CompileInput Input = F.input();
  ErrorOr<IRModule> Module = runDependenceAnalysis(Input);
  ASSERT_TRUE(Module);
  ASSERT_TRUE(runVectorization(*Module, MachineModel::h100()));
  ASSERT_TRUE(runCopyElimination(*Module));
  // No surviving operation references a none-memory tensor.
  walkOps(Module->root(), [&](const Operation &Op) {
    auto Check = [&](const TensorSlice &Slice) {
      EXPECT_NE(Module->tensor(Slice.Tensor).Mem, Memory::None);
    };
    if (Op.Kind == OpKind::Copy) {
      Check(Op.CopySrc);
      Check(Op.CopyDst);
    } else if (Op.Kind == OpKind::Call) {
      for (const TensorSlice &Slice : Op.Args)
        Check(Slice);
    }
  });
}

TEST(CopyElimination, UnsatisfiableNoneConstraintDiagnosed) {
  // A leaf that reads a none-mapped argument from global memory cannot be
  // forwarded (memories differ), so the none constraint must be reported,
  // matching Section 3.3's promised diagnostic.
  TaskRegistry Registry;
  Registry.addInner(
      "n", "n_host", {{"T", 2, ElementType::F16, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.prange({ScalarExpr(1)},
                   [&](std::vector<ScalarExpr>) { Ctx.launch("n", {Args[0]}); });
      });
  Registry.addInner(
      "n", "n_block", {{"T", 2, ElementType::F16, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        // A temp that is written by a shared-memory leaf and then read by
        // ANOTHER shared-memory leaf: with the temp mapped to None and the
        // leaves in Shared, the None temp must be materialized between the
        // two different memories and cannot be eliminated.
        TensorHandle Temp = Ctx.makeTensor("temp", Ctx.shapeOf(Args[0]),
                                           ElementType::F16);
        Ctx.launch("nleaf_w", {Temp});
        Ctx.launch("nleaf_rw", {Args[0], Temp});
      });
  Registry.addLeaf("nleaf_w", "nleaf_w_leaf",
                   {{"T", 2, ElementType::F16, Privilege::Write}},
                   {"clear", ExecUnit::SIMT, nullptr});
  Registry.addLeaf("nleaf_rw", "nleaf_rw_leaf",
                   {{"Dst", 2, ElementType::F16, Privilege::Write},
                    {"Src", 2, ElementType::F16, Privilege::Read}},
                   {"store", ExecUnit::SIMT, nullptr});

  TaskMapping Host;
  Host.Instance = "host";
  Host.Variant = "n_host";
  Host.Proc = Processor::Host;
  Host.Mems = {Memory::Global};
  Host.Entrypoint = true;
  Host.Calls = {"blk"};
  TaskMapping Blk;
  Blk.Instance = "blk";
  Blk.Variant = "n_block";
  Blk.Proc = Processor::Block;
  Blk.Mems = {Memory::Global};
  Blk.Calls = {"w", "rw"};
  TaskMapping W;
  W.Instance = "w";
  W.Variant = "nleaf_w_leaf";
  W.Proc = Processor::Warpgroup;
  // The writer leaf materializes in SHARED; the temp stays None. The
  // reader leaf asks for REGISTER, so forwarding cannot unify them through
  // the None temp's *pieces* because the writer wrote a different memory.
  W.Mems = {Memory::Shared};
  TaskMapping Rw;
  Rw.Instance = "rw";
  Rw.Variant = "nleaf_rw_leaf";
  Rw.Proc = Processor::Warpgroup;
  Rw.Mems = {Memory::Shared, Memory::Register};
  MappingSpec Mapping({Host, Blk, W, Rw});
  std::vector<TensorType> Args = {{Shape({64, 64}), ElementType::F16}};
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(), Args};

  ErrorOr<IRModule> Module = compileToIR(Input);
  // Either the none constraint fires, or forwarding legitimately resolved
  // everything (the pass got smarter); both verify the contract that no
  // None tensor survives in the final IR.
  if (!Module) {
    EXPECT_NE(Module.diagnostic().message().find("none"), std::string::npos);
  } else {
    walkOps(Module->root(), [&](const Operation &Op) {
      if (Op.Kind == OpKind::Copy) {
        EXPECT_NE(Module->tensor(Op.CopySrc.Tensor).Mem, Memory::None);
        EXPECT_NE(Module->tensor(Op.CopyDst.Tensor).Mem, Memory::None);
      }
    });
  }
}

TEST(CopyElimination, GemmAccumulatorHoistedOutOfKLoop) {
  // The crown-jewel rewrite (Figure 10b): no copies of the accumulator
  // remain inside the main K loop of the compiled GEMM.
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<IRModule> Module = compileToIR(Input);
  ASSERT_TRUE(Module) << (Module ? "" : Module.diagnostic().message());

  walkOps(Module->root(), [&](const Operation &Loop) {
    if (Loop.Kind != OpKind::For)
      return;
    for (const std::unique_ptr<Operation> &Op : Loop.Body.Ops) {
      if (Op->Kind != OpKind::Copy)
        continue;
      // Loop-body copies move global->shared tiles only; no register
      // traffic (the accumulator stays resident).
      EXPECT_EQ(Module->tensor(Op->CopySrc.Tensor).Mem, Memory::Global);
      EXPECT_EQ(Module->tensor(Op->CopyDst.Tensor).Mem, Memory::Shared);
    }
  });
}

//===----------------------------------------------------------------------===//
// Resource allocation (Section 4.2.4)
//===----------------------------------------------------------------------===//

TEST(ResourceAllocation, GemmFitsWithDistinctBuffers) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  SharedAllocation Alloc;
  ErrorOr<IRModule> Module = compileToIR(Input, &Alloc);
  ASSERT_TRUE(Module) << (Module ? "" : Module.diagnostic().message());

  // A tiles (16KB x3), B tiles (32KB x3) and staging (64KB for 2 wgs).
  EXPECT_EQ(Alloc.Entries.size(), 3u);
  EXPECT_LE(Alloc.TotalBytes, H100Constants::SharedMemoryBytes);
  // Pipeline depth multiplies footprints.
  int64_t Sum = 0;
  for (const SharedAllocation::Entry &E : Alloc.Entries)
    Sum += E.Bytes;
  EXPECT_EQ(Sum, (16 + 32) * 1024 * 3 + 64 * 1024);
  // Non-overlapping offsets (no aliasing was needed).
  EXPECT_TRUE(Alloc.AliasedPairs.empty());
}

TEST(ResourceAllocation, OverflowDiagnosed) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  Config.Pipe = 16; // 48KB x16 = 768KB of tiles: cannot fit.
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<IRModule> Module = compileToIR(Input);
  ASSERT_FALSE(Module);
  EXPECT_NE(Module.diagnostic().message().find("shared memory"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Warp specialization & pipelining (Section 4.2.5)
//===----------------------------------------------------------------------===//

TEST(WarpSpecialization, TmaCopiesOnDmaAgent) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<IRModule> Module = compileToIR(Input);
  ASSERT_TRUE(Module);
  walkOps(Module->root(), [&](const Operation &Op) {
    if (Op.Kind == OpKind::Copy) {
      EXPECT_EQ(Op.DmaAgent, Op.Unit == ExecUnit::TMA)
          << "graph partition: TMA <-> DMA agent, rest <-> compute";
    }
    if (Op.Kind == OpKind::Call) {
      EXPECT_FALSE(Op.DmaAgent);
    }
  });
}

TEST(WarpSpecialization, PipelineRotatesBuffersAndAddsBackEdges) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  ErrorOr<IRModule> Module = compileToIR(Input);
  ASSERT_TRUE(Module);

  int LagEdges = 0, RotatedSlices = 0;
  walkOps(Module->root(), [&](const Operation &Op) {
    for (const EventRef &Ref : Op.Preconds)
      if (Ref.IterLag == Config.Pipe)
        ++LagEdges;
    auto CheckSlice = [&](const TensorSlice &Slice) {
      if (!Slice.BufferIndex.isConstant())
        ++RotatedSlices;
    };
    if (Op.Kind == OpKind::Copy) {
      CheckSlice(Op.CopySrc);
      CheckSlice(Op.CopyDst);
    } else if (Op.Kind == OpKind::Call) {
      for (const TensorSlice &Slice : Op.Args)
        CheckSlice(Slice);
    }
  });
  EXPECT_EQ(LagEdges, 2);       // One per TMA tile copy (A and B).
  EXPECT_GE(RotatedSlices, 4);  // Copies' dsts + wgmma's srcs.
}

//===----------------------------------------------------------------------===//
// CUDA emission (Section 4.2.6)
//===----------------------------------------------------------------------===//

TEST(CudaEmitter, GoldenStructure) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 256;
  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     gemmArgTypes(Config)};
  SharedAllocation Alloc;
  ErrorOr<IRModule> Module = compileToIR(Input, &Alloc);
  ASSERT_TRUE(Module);
  std::string Cuda = emitCudaSource(*Module, Alloc, "gemm");

  // Figure 1b landmarks, in order: smem plan, DMA/compute split, the
  // K-loop, TMA loads with pipeline phases, wgmma commit/wait.
  size_t Smem = Cuda.find("extern __shared__");
  size_t Split = Cuda.find("is_dma_warp");
  size_t Loop = Cuda.find("for (int k");
  size_t Tma = Cuda.find("cp_async_bulk_tensor");
  size_t Wgmma = Cuda.find("warpgroup_commit_batch");
  ASSERT_NE(Smem, std::string::npos);
  ASSERT_NE(Split, std::string::npos);
  ASSERT_NE(Loop, std::string::npos);
  ASSERT_NE(Tma, std::string::npos);
  ASSERT_NE(Wgmma, std::string::npos);
  EXPECT_LT(Smem, Split);
  EXPECT_LT(Split, Loop);
  EXPECT_LT(Loop, Wgmma);
  // Multi-buffered tiles are declared as such.
  EXPECT_NE(Cuda.find("multi-buffered"), std::string::npos);
  // Pipelined barrier waits are phase-guarded.
  EXPECT_NE(Cuda.find("phase k-3"), std::string::npos);
}
