//===- MappingTest.cpp - Mapping specification validation ---------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the mapping half of the programming model (Section 3.3):
/// dispatch resolution through Calls lists, and the static validation the
/// compiler performs before lowering.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "mapping/Mapping.h"

#include <gtest/gtest.h>

using namespace cypress;

namespace {

/// A tiny two-level registry: a host task dispatching to a block leaf.
TaskRegistry tinyRegistry() {
  TaskRegistry Registry;
  Registry.addInner(
      "work", "work_host", {{"T", 2, ElementType::F16, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.prange({ScalarExpr(2)}, [&](std::vector<ScalarExpr>) {
          Ctx.launch("work", {Args[0]});
        });
      });
  Registry.addLeaf("work", "work_leaf",
                   {{"T", 2, ElementType::F16, Privilege::Write}},
                   {"clear", ExecUnit::SIMT, nullptr});
  return Registry;
}

MappingSpec tinyMapping() {
  TaskMapping Host;
  Host.Instance = "host";
  Host.Variant = "work_host";
  Host.Proc = Processor::Host;
  Host.Mems = {Memory::Global};
  Host.Entrypoint = true;
  Host.Calls = {"leaf"};
  TaskMapping Leaf;
  Leaf.Instance = "leaf";
  Leaf.Variant = "work_leaf";
  Leaf.Proc = Processor::Block;
  Leaf.Mems = {Memory::Shared};
  return MappingSpec({Host, Leaf});
}

} // namespace

TEST(Mapping, LookupAndEntrypoint) {
  MappingSpec Spec = tinyMapping();
  EXPECT_TRUE(Spec.hasInstance("host"));
  EXPECT_FALSE(Spec.hasInstance("nope"));
  EXPECT_EQ(Spec.entrypoint().Instance, "host");
}

TEST(Mapping, DispatchResolvesThroughCalls) {
  TaskRegistry Registry = tinyRegistry();
  MappingSpec Spec = tinyMapping();
  ErrorOr<std::string> Target =
      Spec.dispatch(Registry, Spec.instance("host"), "work");
  ASSERT_TRUE(Target);
  EXPECT_EQ(*Target, "leaf");

  ErrorOr<std::string> Missing =
      Spec.dispatch(Registry, Spec.instance("host"), "unknown_task");
  ASSERT_FALSE(Missing);
  EXPECT_NE(Missing.diagnostic().message().find("no dispatch target"),
            std::string::npos);
}

TEST(Mapping, ValidatesCleanSpec) {
  TaskRegistry Registry = tinyRegistry();
  EXPECT_TRUE(tinyMapping().validate(Registry, MachineModel::h100()));
}

TEST(Mapping, RejectsUnknownVariant) {
  TaskRegistry Registry = tinyRegistry();
  MappingSpec Spec = tinyMapping();
  std::vector<TaskMapping> Instances = Spec.instances();
  Instances[1].Variant = "does_not_exist";
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("unknown variant"),
            std::string::npos);
}

TEST(Mapping, RejectsArityMismatch) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<TaskMapping> Instances = tinyMapping().instances();
  Instances[0].Mems = {Memory::Global, Memory::Global};
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("params"), std::string::npos);
}

TEST(Mapping, RejectsInaccessibleLeafMemory) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<TaskMapping> Instances = tinyMapping().instances();
  Instances[1].Proc = Processor::Host; // Host cannot address shared memory.
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("not addressable"),
            std::string::npos);
}

TEST(Mapping, RejectsMissingEntrypoint) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<TaskMapping> Instances = tinyMapping().instances();
  Instances[0].Entrypoint = false;
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("entrypoint"),
            std::string::npos);
}

TEST(Mapping, RejectsOutwardDispatch) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<TaskMapping> Instances = tinyMapping().instances();
  // Child at Host while parent is Host is fine; child *outward* of parent
  // is not: make the leaf run at Host and the host task at Block.
  Instances[0].Proc = Processor::Block;
  Instances[1].Proc = Processor::Host;
  Instances[1].Mems = {Memory::Global};
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("outward"), std::string::npos);
}

TEST(Mapping, RejectsZeroPipelineDepth) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<TaskMapping> Instances = tinyMapping().instances();
  Instances[0].PipelineDepth = 0;
  ErrorOrVoid Result =
      MappingSpec(Instances).validate(Registry, MachineModel::h100());
  ASSERT_FALSE(Result);
}

TEST(Mapping, FingerprintIsContentKeyed) {
  // Equal specs built independently fingerprint identically; any knob the
  // lowering can see (tunables, pipeline depth, placements) changes it.
  GemmConfig Config;
  MappingSpec A = gemmMapping(Config);
  MappingSpec B = gemmMapping(Config);
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_TRUE(A == B);

  GemmConfig Deeper = Config;
  Deeper.Pipe += 1;
  MappingSpec C = gemmMapping(Deeper);
  EXPECT_NE(A.fingerprint(), C.fingerprint());
  EXPECT_TRUE(A != C);

  std::vector<TaskMapping> Instances = A.instances();
  Instances[0].Tunables["U"] += 64;
  EXPECT_NE(A.fingerprint(), MappingSpec(Instances).fingerprint());
}

TEST(Mapping, ShippedKernelMappingsValidate) {
  // Every shipped kernel's tuned mapping must pass validation.
  {
    TaskRegistry Registry;
    registerGemmTasks(Registry);
    EXPECT_TRUE(
        gemmMapping(GemmConfig()).validate(Registry, MachineModel::h100()));
  }
  {
    TaskRegistry Registry;
    registerDualGemmTasks(Registry);
    EXPECT_TRUE(dualGemmMapping(GemmConfig())
                    .validate(Registry, MachineModel::h100()));
  }
  {
    TaskRegistry Registry;
    registerGemmRedTasks(Registry);
    EXPECT_TRUE(gemmRedMapping(GemmConfig())
                    .validate(Registry, MachineModel::h100()));
  }
  {
    TaskRegistry Registry;
    registerAttentionTasks(Registry);
    EXPECT_TRUE(attentionMapping(fa2Config(4096))
                    .validate(Registry, MachineModel::h100()));
    EXPECT_TRUE(attentionMapping(fa3Config(4096))
                    .validate(Registry, MachineModel::h100()));
  }
}

TEST(Task, PrivilegeLattice) {
  EXPECT_TRUE(privilegeAllows(Privilege::ReadWrite, Privilege::Read));
  EXPECT_TRUE(privilegeAllows(Privilege::ReadWrite, Privilege::Write));
  EXPECT_TRUE(privilegeAllows(Privilege::Read, Privilege::Read));
  EXPECT_FALSE(privilegeAllows(Privilege::Read, Privilege::Write));
  EXPECT_FALSE(privilegeAllows(Privilege::Read, Privilege::ReadWrite));
  EXPECT_FALSE(privilegeAllows(Privilege::Write, Privilege::ReadWrite));
  EXPECT_TRUE(privilegeAllows(Privilege::Write, Privilege::Write));
}

TEST(Task, RegistryVariantsOf) {
  TaskRegistry Registry = tinyRegistry();
  std::vector<std::string> Variants = Registry.variantsOf("work");
  EXPECT_EQ(Variants.size(), 2u);
  EXPECT_TRUE(Registry.hasVariant("work_host"));
  EXPECT_EQ(Registry.variant("work_leaf").Kind, VariantKind::Leaf);
}
