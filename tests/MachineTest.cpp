//===- MachineTest.cpp - Machine model tests ---------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the hierarchical machine model of Section 3.1, including the key
/// relaxation over Sequoia: multiple processor levels address multiple
/// memories (a thread sees global, shared, and its registers).
///
//===----------------------------------------------------------------------===//

#include "machine/Machine.h"

#include <gtest/gtest.h>

using namespace cypress;

TEST(Machine, H100Hierarchy) {
  const MachineModel &M = MachineModel::h100();
  EXPECT_EQ(M.name(), "h100");
  EXPECT_EQ(M.levels().size(), 5u);
  EXPECT_TRUE(M.hasLevel(Processor::Warpgroup));
  EXPECT_EQ(M.depthOf(Processor::Host), 0u);
  EXPECT_LT(M.depthOf(Processor::Block), M.depthOf(Processor::Warpgroup));
  EXPECT_TRUE(M.isInner(Processor::Thread, Processor::Warp));
  EXPECT_FALSE(M.isInner(Processor::Block, Processor::Thread));
  EXPECT_EQ(M.childLevel(Processor::Warpgroup), Processor::Warp);
}

TEST(Machine, FanOuts) {
  const MachineModel &M = MachineModel::h100();
  EXPECT_EQ(M.fanOut(Processor::Warp), 4);    // Warps per warpgroup.
  EXPECT_EQ(M.fanOut(Processor::Thread), 32); // Threads per warp.
  EXPECT_EQ(M.level(Processor::Warpgroup).ThreadsPerInstance, 128);
}

TEST(Machine, MemoryVisibility) {
  const MachineModel &M = MachineModel::h100();
  // Global: everyone.
  EXPECT_TRUE(M.canAccess(Processor::Host, Memory::Global));
  EXPECT_TRUE(M.canAccess(Processor::Block, Memory::Global));
  EXPECT_TRUE(M.canAccess(Processor::Thread, Memory::Global));
  // Shared: the block and below, not the host (the Sequoia-breaking case:
  // several levels see several memories).
  EXPECT_FALSE(M.canAccess(Processor::Host, Memory::Shared));
  EXPECT_TRUE(M.canAccess(Processor::Block, Memory::Shared));
  EXPECT_TRUE(M.canAccess(Processor::Warpgroup, Memory::Shared));
  EXPECT_TRUE(M.canAccess(Processor::Thread, Memory::Shared));
  // Registers: thread groupings only (a warpgroup-level register tensor is
  // the Figure 4 distributed accumulator).
  EXPECT_TRUE(M.canAccess(Processor::Thread, Memory::Register));
  EXPECT_TRUE(M.canAccess(Processor::Warpgroup, Memory::Register));
  EXPECT_FALSE(M.canAccess(Processor::Block, Memory::Register));
  EXPECT_FALSE(M.canAccess(Processor::Host, Memory::Register));
  // None is never addressable.
  EXPECT_FALSE(M.canAccess(Processor::Thread, Memory::None));
}

TEST(Machine, Capacities) {
  const MachineModel &M = MachineModel::h100();
  EXPECT_EQ(M.memory(Memory::Shared).CapacityBytes,
            H100Constants::SharedMemoryBytes);
  EXPECT_EQ(M.memory(Memory::Register).CapacityBytes, 255 * 4);
  EXPECT_EQ(M.memory(Memory::Global).CapacityBytes, 0); // Unbounded.
}

TEST(Machine, CapacityQueriesForThePruner) {
  // The autotuner's static feasibility checks read capacities through
  // these helpers instead of digging through the level/memory lists.
  const MachineModel &M = MachineModel::h100();
  EXPECT_EQ(M.capacityBytes(Memory::Shared),
            H100Constants::SharedMemoryBytes);
  EXPECT_EQ(M.capacityBytes(Memory::Register), 255 * 4);
  EXPECT_EQ(M.capacityBytes(Memory::Global), 0);
  EXPECT_EQ(M.threadsPerInstance(Processor::Warpgroup),
            H100Constants::ThreadsPerWarp * H100Constants::WarpsPerWarpgroup);
  EXPECT_EQ(M.threadsPerInstance(Processor::Warp),
            H100Constants::ThreadsPerWarp);
  EXPECT_EQ(M.threadsPerInstance(Processor::Thread), 1);
  EXPECT_EQ(M.threadsPerInstance(Processor::Block), 0); // Dynamic.
}

TEST(Machine, CustomMachineDescription) {
  // The model is data-driven (Section 3.1's Blackwell note): a two-level
  // machine with one scratchpad validates without code changes.
  MachineModel Tiny("tiny",
                    {{Processor::Host, 0, 0}, {Processor::Block, 0, 64}},
                    {{Memory::Global, Processor::Host, 0},
                     {Memory::Shared, Processor::Block, 1024}});
  EXPECT_TRUE(Tiny.hasLevel(Processor::Block));
  EXPECT_FALSE(Tiny.hasLevel(Processor::Warp));
  EXPECT_TRUE(Tiny.canAccess(Processor::Block, Memory::Shared));
  EXPECT_EQ(Tiny.memory(Memory::Shared).CapacityBytes, 1024);
}

TEST(Machine, Names) {
  EXPECT_STREQ(processorName(Processor::Warpgroup), "WARPGROUP");
  EXPECT_STREQ(memoryName(Memory::Register), "REGISTER");
  EXPECT_STREQ(memoryName(Memory::None), "NONE");
}
