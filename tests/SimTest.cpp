//===- SimTest.cpp - Simulator substrate tests ---------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the simulated H100 substrate: the builtin leaf functions, the
/// timing model's qualitative properties (async overlap, pipeline scaling,
/// bandwidth/throughput limits, wave quantization), and the race detector.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "sim/LeafRegistry.h"
#include "sim/Simulator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace cypress;

//===----------------------------------------------------------------------===//
// Leaf functions
//===----------------------------------------------------------------------===//

namespace {

TensorData makeTensor(Shape S, ElementType E = ElementType::F32) {
  return TensorData(TensorType{std::move(S), E});
}

} // namespace

TEST(Leaves, WgmmaAccumulates) {
  LeafRegistry R = LeafRegistry::builtins();
  TensorData C = makeTensor(Shape({2, 2}));
  TensorData A = makeTensor(Shape({2, 3}), ElementType::F16);
  TensorData B = makeTensor(Shape({3, 2}), ElementType::F16);
  // A = [[1,2,3],[4,5,6]], B = [[1,0],[0,1],[1,1]].
  float AValues[] = {1, 2, 3, 4, 5, 6};
  float BValues[] = {1, 0, 0, 1, 1, 1};
  for (int I = 0; I < 6; ++I) {
    A.set(I, AValues[I]);
    B.set(I, BValues[I]);
  }
  C.set({0, 0}, 10.0f); // Pre-existing accumulator value.
  std::vector<TensorView> Args = {TensorView::whole(C),
                                  TensorView::whole(A),
                                  TensorView::whole(B)};
  R.lookup("wgmma_fp16")(Args, {});
  EXPECT_FLOAT_EQ(C.at({0, 0}), 10 + 1 + 3);
  EXPECT_FLOAT_EQ(C.at({0, 1}), 2 + 3);
  EXPECT_FLOAT_EQ(C.at({1, 0}), 4 + 6);
  EXPECT_FLOAT_EQ(C.at({1, 1}), 5 + 6);
}

TEST(Leaves, WgmmaBtSetOverwrites) {
  LeafRegistry R = LeafRegistry::builtins();
  TensorData S = makeTensor(Shape({2, 2}));
  TensorData Q = makeTensor(Shape({2, 2}), ElementType::F16);
  TensorData K = makeTensor(Shape({2, 2}), ElementType::F16);
  Q.set({0, 0}, 1.0f);
  Q.set({0, 1}, 2.0f);
  K.set({1, 0}, 3.0f);
  K.set({1, 1}, 4.0f);
  S.set({0, 1}, 99.0f); // Must be overwritten, not accumulated.
  std::vector<TensorView> Args = {TensorView::whole(S),
                                  TensorView::whole(Q),
                                  TensorView::whole(K)};
  R.lookup("wgmma_fp16_bt_set")(Args, {});
  // S[0][1] = Q[0,:] . K[1,:] = 1*3 + 2*4.
  EXPECT_FLOAT_EQ(S.at({0, 1}), 11.0f);
  EXPECT_FLOAT_EQ(S.at({0, 0}), 0.0f);
}

TEST(Leaves, ClearAndStore) {
  LeafRegistry R = LeafRegistry::builtins();
  TensorData T = makeTensor(Shape({4, 4}));
  T.fill(5.0f);
  std::vector<TensorView> ClearArgs = {TensorView::whole(T)};
  R.lookup("clear")(ClearArgs, {});
  for (int64_t I = 0; I < 16; ++I)
    EXPECT_EQ(T.at(I), 0.0f);

  TensorData Src = makeTensor(Shape({4, 4}));
  Src.fill(2.5f);
  TensorData Dst = makeTensor(Shape({4, 4}), ElementType::F16);
  std::vector<TensorView> StoreArgs = {TensorView::whole(Dst),
                                       TensorView::whole(Src)};
  R.lookup("store")(StoreArgs, {});
  EXPECT_EQ(Dst.at({3, 3}), 2.5f);
}

TEST(Leaves, RowSumTile) {
  LeafRegistry R = LeafRegistry::builtins();
  TensorData Y = makeTensor(Shape({1, 3}));
  TensorData A = makeTensor(Shape({3, 4}), ElementType::F16);
  for (int64_t I = 0; I < 12; ++I)
    A.set(I, 1.0f);
  Y.set({0, 1}, 7.0f); // Accumulates.
  std::vector<TensorView> Args = {TensorView::whole(Y),
                                  TensorView::whole(A)};
  R.lookup("row_sum_tile")(Args, {});
  EXPECT_FLOAT_EQ(Y.at({0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(Y.at({0, 1}), 11.0f);
}

TEST(Leaves, OnlineSoftmaxMatchesBatchSoftmax) {
  // Running the online update over column blocks must equal one-shot
  // softmax: P sums to 1 after finalize, weighted V reproduced.
  LeafRegistry R = LeafRegistry::builtins();
  const int64_t M = 4, N = 6, D = 2;
  TensorData SFull = makeTensor(Shape({M, N}));
  SplitMix64 Rng(3);
  for (int64_t I = 0; I < M * N; ++I)
    SFull.set(I, static_cast<float>(Rng.nextIn(-2, 2)));

  TensorData Mx = makeTensor(Shape({M}));
  TensorData L = makeTensor(Shape({M}));
  TensorData O = makeTensor(Shape({M, D}));
  std::vector<TensorView> InitArgs = {TensorView::whole(Mx),
                                      TensorView::whole(L)};
  R.lookup("softmax_init")(InitArgs, {});

  // Two blocks of 3 columns; V = ones so O accumulates sum of P per row.
  for (int64_t Block = 0; Block < 2; ++Block) {
    TensorData SBlock = makeTensor(Shape({M, 3}));
    for (int64_t I = 0; I < M; ++I)
      for (int64_t J = 0; J < 3; ++J)
        SBlock.set({I, J}, SFull.at({I, Block * 3 + J}));
    std::vector<TensorView> StepArgs = {
        TensorView::whole(SBlock), TensorView::whole(Mx),
        TensorView::whole(L), TensorView::whole(O)};
    R.lookup("softmax_step")(StepArgs, {65536}); // Scale = 1.0.
    // O += P . V with V = ones(3, D).
    TensorData V = makeTensor(Shape({3, D}), ElementType::F16);
    V.fill(1.0f);
    std::vector<TensorView> PvArgs = {TensorView::whole(O),
                                      TensorView::whole(SBlock),
                                      TensorView::whole(V)};
    R.lookup("wgmma_fp16")(PvArgs, {});
  }
  std::vector<TensorView> FinArgs = {TensorView::whole(O),
                                     TensorView::whole(L)};
  R.lookup("softmax_finalize")(FinArgs, {});
  // P rows sum to 1, so O = 1 everywhere.
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < D; ++J)
      EXPECT_NEAR(O.at({I, J}), 1.0f, 1e-5f);
}

TEST(Leaves, DualWgmma) {
  LeafRegistry R = LeafRegistry::builtins();
  TensorData C = makeTensor(Shape({1, 1}));
  TensorData A = makeTensor(Shape({1, 2}), ElementType::F16);
  TensorData B1 = makeTensor(Shape({2, 1}), ElementType::F16);
  TensorData B2 = makeTensor(Shape({2, 1}), ElementType::F16);
  A.set({0, 0}, 2.0f);
  A.set({0, 1}, 3.0f);
  B1.set({0, 0}, 1.0f);
  B2.set({1, 0}, 5.0f);
  std::vector<TensorView> Args = {
      TensorView::whole(C), TensorView::whole(A), TensorView::whole(B1),
      TensorView::whole(B2)};
  R.lookup("dual_wgmma")(Args, {});
  // 2*(1+0) + 3*(0+5) = 17.
  EXPECT_FLOAT_EQ(C.at({0, 0}), 17.0f);
}

TEST(Leaves, ViewsRespectCoordinateMaps) {
  // A leaf driven through a rect view writes the mapped region only.
  LeafRegistry R = LeafRegistry::builtins();
  TensorData Big = makeTensor(Shape({8, 8}));
  Big.fill(1.0f);
  TensorView Window(Big, SubTensor::rect(Shape({2, 2}), {4, 4}));
  std::vector<TensorView> Args = {Window};
  R.lookup("clear")(Args, {});
  EXPECT_EQ(Big.at({4, 4}), 0.0f);
  EXPECT_EQ(Big.at({5, 5}), 0.0f);
  EXPECT_EQ(Big.at({3, 3}), 1.0f);
  EXPECT_EQ(Big.at({6, 6}), 1.0f);
}

//===----------------------------------------------------------------------===//
// Timing model properties
//===----------------------------------------------------------------------===//

namespace {

struct CompiledGemm {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
};

CompiledGemm compileGemm(const GemmConfig &Config) {
  CompiledGemm Result;
  Result.Registry = std::make_unique<TaskRegistry>();
  registerGemmTasks(*Result.Registry);
  Result.Mapping = std::make_unique<MappingSpec>(gemmMapping(Config));
  CompileInput Input{Result.Registry.get(), Result.Mapping.get(),
                     &MachineModel::h100(), gemmArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "gemm");
  EXPECT_TRUE(Kernel) << (Kernel ? "" : Kernel.diagnostic().message());
  if (Kernel)
    Result.Kernel = std::move(*Kernel);
  return Result;
}

} // namespace

TEST(Timing, PipeliningHidesLatencyProgressively) {
  double Last = 0.0;
  for (int64_t Pipe : {1, 2, 3}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = 4096;
    Config.Pipe = Pipe;
    CompiledGemm G = compileGemm(Config);
    ASSERT_NE(G.Kernel, nullptr);
    double TFlops = G.Kernel->runTiming()->TFlops;
    EXPECT_GT(TFlops, Last) << "pipeline depth " << Pipe;
    Last = TFlops;
  }
}

TEST(Timing, WarpSpecializationWins) {
  GemmConfig On, Off;
  On.M = On.N = On.K = 4096;
  Off = On;
  Off.WarpSpecialize = false;
  CompiledGemm GOn = compileGemm(On);
  CompiledGemm GOff = compileGemm(Off);
  ASSERT_NE(GOn.Kernel, nullptr);
  ASSERT_NE(GOff.Kernel, nullptr);
  double TOn = GOn.Kernel->runTiming()->TFlops;
  double TOff = GOff.Kernel->runTiming()->TFlops;
  EXPECT_GT(TOn, 1.2 * TOff);
}

TEST(Timing, ThroughputBelowMachinePeak) {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 8192;
  CompiledGemm G = compileGemm(Config);
  ASSERT_NE(G.Kernel, nullptr);
  SimConfig Sim;
  ErrorOr<SimResult> Result = G.Kernel->runTiming(Sim);
  ASSERT_TRUE(Result);
  double Peak = Sim.TensorCoreFlopsPerCycle * Sim.NumSMs * Sim.ClockGHz *
                1e9 / 1e12;
  EXPECT_LT(Result->TFlops, Peak);
  EXPECT_GT(Result->TFlops, 0.75 * Peak); // Near-roofline when tuned.
}

TEST(Timing, WaveQuantizationVisible) {
  // 4096^2 output with 128x256 tiles = 512 blocks = 3.88 SM waves; 4608^2
  // gives 648 blocks = 4.9 waves. Efficiency (TFLOPs relative to block
  // count) must dip when a wave is nearly empty.
  GemmConfig A;
  A.M = A.N = 4096;
  A.K = 4096;
  GemmConfig B = A;
  B.M = 4352; // 34 x 16 = 544 blocks: a nearly-empty fifth wave.
  B.N = 4096;
  CompiledGemm GA = compileGemm(A);
  CompiledGemm GB = compileGemm(B);
  ASSERT_NE(GA.Kernel, nullptr);
  ASSERT_NE(GB.Kernel, nullptr);
  ErrorOr<SimResult> RA = GA.Kernel->runTiming();
  ErrorOr<SimResult> RB = GB.Kernel->runTiming();
  ASSERT_TRUE(RA);
  ASSERT_TRUE(RB);
  EXPECT_EQ(RA->Waves, 4);
  EXPECT_EQ(RB->Waves, 5);
  // Per-wave efficiency of B is worse: it computes only 6% more FLOPs but
  // needs a whole extra wave.
  EXPECT_LT(RB->TFlops, RA->TFlops);
}

TEST(Timing, TmaAndTensorCoreOverlap) {
  GemmConfig Config;
  Config.M = Config.N = Config.K = 4096;
  CompiledGemm G = compileGemm(Config);
  ASSERT_NE(G.Kernel, nullptr);
  ErrorOr<SimResult> Result = G.Kernel->runTiming();
  ASSERT_TRUE(Result);
  // Both engines busy most of the block: their busy cycles together exceed
  // the block duration, which is only possible with overlap.
  EXPECT_GT(Result->TmaBusyCycles + Result->TensorCoreBusyCycles,
            1.5 * Result->BlockCycles);
}

TEST(Timing, DramFloorForMemoryBoundShapes) {
  // A skinny GEMM (K = 64) moves far more bytes per FLOP; the DRAM floor
  // must bind and throughput must fall far below the compute roofline.
  GemmConfig Config;
  Config.M = Config.N = 8192;
  Config.K = 64;
  Config.W = 64;
  Config.Pipe = 2;
  CompiledGemm G = compileGemm(Config);
  ASSERT_NE(G.Kernel, nullptr);
  ErrorOr<SimResult> Result = G.Kernel->runTiming();
  ASSERT_TRUE(Result);
  EXPECT_LT(Result->TFlops, 250.0);
}

TEST(Timing, FunctionalAndTimingAgreeOnFlops) {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;
  CompiledGemm G = compileGemm(Config);
  ASSERT_NE(G.Kernel, nullptr);
  ErrorOr<SimResult> Result = G.Kernel->runTiming();
  ASSERT_TRUE(Result);
  // Useful FLOPs from leaf annotations = 2MNK (plus epsilon for clears).
  EXPECT_NEAR(Result->TotalFlops, gemmFlops(Config),
              0.02 * gemmFlops(Config));
}
