//===- nvcc_compat.cuh - Stubs for syntax-checking the golden emissions ----===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The emitter prints structural CUDA: Cypress pseudo-intrinsics
// (cp_async_bulk_tensor, wgmma_fp16, the scalar leaf calls) stand in for
// the PTX-level operations a production backend would emit, and tensor
// arguments use a .tile(...) notation that has no C++ meaning. This header
// stubs all of that away so scripts/nvcc_check_goldens.sh can push every
// committed golden through a real compiler front end and catch malformed
// emissions (unbalanced braces, undeclared identifiers, bad statement
// syntax) that a byte-compare against the golden would happily pin.
//
// The pseudo-intrinsics are variadic macros that discard their arguments,
// because the arguments themselves (A.tile(0, k), smem tiles with /*pipe*/
// comments) are notation, not expressions. Everything outside those call
// sites — declarations, control flow, barrier waits/arrives, the host
// launcher — is compiled for real.
//
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_GOLDENS_NVCC_COMPAT_CUH
#define CYPRESS_GOLDENS_NVCC_COMPAT_CUH

#if defined(__CUDACC__)
#include <cuda_fp16.h>
#else
// Host-compiler fallback: stub the CUDA execution model too, so the
// kernels check as plain C++ when no CUDA toolchain is installed.
typedef unsigned short __half;
#define __global__
#define __device__
#define __shared__
struct dim3 {
  dim3(long long = 0) {}
};
namespace {
struct CypressThreadDim {
  unsigned x = 0;
} threadIdx, blockDim;
} // namespace
// The <<<grid, block, smem>>> launch is not host C++; the check script
// rewrites it to this marker, leaving the argument list as a discarded
// comma expression.
#define CYPRESS_LAUNCH ;
#endif

// Replacement for <cuda/barrier> (stripped by the check script): the
// emitter's wait()/arrive() protocol is the mbarrier abstraction, not the
// token-based std::barrier API libcu++ exposes.
namespace cuda {
enum thread_scope { thread_scope_block };
template <thread_scope Scope> struct barrier {
  __device__ void wait() {}
  __device__ void arrive() {}
};
} // namespace cuda

// Hardware pseudo-intrinsics.
#define cp_async_bulk_tensor(...) (void)0
#define named_barrier_arrive_and_wait(...) (void)0
#define warpgroup_arrive() (void)0
#define warpgroup_commit_batch() (void)0
#define warpgroup_id() 0
template <int Pending> __device__ void warpgroup_wait() {}

// Scalar leaf calls (LeafRegistry names). Regenerate this list with:
//   grep -hoE '[a-z_]+\(' tests/goldens/*.cu | sort -u
#define clear(...) (void)0
#define store(...) (void)0
#define wgmma_fp16(...) (void)0
#define wgmma_fp16_bt_set(...) (void)0
#define dual_wgmma(...) (void)0
#define row_sum_tile(...) (void)0
#define softmax_init(...) (void)0
#define softmax_step(...) (void)0
#define softmax_finalize(...) (void)0

#endif // CYPRESS_GOLDENS_NVCC_COMPAT_CUH
