//===- IRTest.cpp - Event IR construction, printing, verification ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the event-based IR of Section 4.1: slice resolution
/// through partition chains, the Figure 8/9-style printer, and the SSA /
/// event-scoping verifier.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace cypress;

namespace {

/// Builds a tiny module: one global tensor, one shared tile, one copy.
struct Fixture {
  IRModule Module;
  TensorId A, Tile;
  PartitionId Part;

  Fixture() {
    A = Module.addTensor("A", {Shape({64, 64}), ElementType::F16},
                         Memory::Global);
    Tile = Module.addTensor("tile", {Shape({16, 64}), ElementType::F16},
                            Memory::Shared);
    Part = Module.addPartition(
        TensorSlice::whole(A),
        Partition::byBlocks(Shape({64, 64}), Shape({16, 64})).take());
  }

  Operation &append(OpKind Kind) {
    auto Op = std::make_unique<Operation>();
    Op->Kind = Kind;
    Op->Id = Module.freshOpId();
    Operation &Ref = *Op;
    Module.root().Ops.push_back(std::move(Op));
    return Ref;
  }
};

} // namespace

TEST(IR, SliceShapes) {
  Fixture F;
  TensorSlice Whole = TensorSlice::whole(F.A);
  EXPECT_EQ(F.Module.sliceShape(Whole), Shape({64, 64}));

  TensorSlice Piece = TensorSlice::piece(
      F.A, F.Part, {ScalarExpr(2), ScalarExpr(0)});
  EXPECT_EQ(F.Module.sliceShape(Piece), Shape({16, 64}));
  EXPECT_EQ(F.Module.sliceBytes(Piece), 16 * 64 * 2);

  // Symbolic colors report the uniform interior tile shape.
  TensorSlice Symbolic = TensorSlice::piece(
      F.A, F.Part, {ScalarExpr::loopVar(0, "k"), ScalarExpr(0)});
  EXPECT_EQ(F.Module.sliceShape(Symbolic), Shape({16, 64}));
}

TEST(IR, ResolveSliceThroughChain) {
  Fixture F;
  // Partition the piece again: a partition whose base is a piece.
  TensorSlice Base =
      TensorSlice::piece(F.A, F.Part, {ScalarExpr(1), ScalarExpr(0)});
  PartitionId Sub = F.Module.addPartition(
      Base, Partition::byBlocks(Shape({16, 64}), Shape({16, 16})).take());
  TensorSlice Leafy =
      TensorSlice::piece(F.A, Sub, {ScalarExpr(0), ScalarExpr(3)});

  ScalarEnv Env;
  SubTensor Resolved = F.Module.resolveSlice(Leafy, Env);
  // Rows 16..31 of A (piece 1) then columns 48..63 (sub-piece 3).
  EXPECT_EQ(Resolved.mapToParent({0, 0}), (std::vector<int64_t>{16, 48}));
  EXPECT_EQ(Resolved.mapToParent({15, 15}), (std::vector<int64_t>{31, 63}));
}

TEST(IR, PrinterMatchesPaperNotation) {
  Fixture F;
  Operation &Alloc = F.append(OpKind::Alloc);
  Alloc.AllocTensor = F.Tile;

  EventId E1 = F.Module.addEvent("e1", EventType{});
  Operation &Copy = F.append(OpKind::Copy);
  Copy.CopySrc =
      TensorSlice::piece(F.A, F.Part, {ScalarExpr(0), ScalarExpr(0)});
  Copy.CopyDst = TensorSlice::whole(F.Tile);
  Copy.Result = E1;
  Copy.Unit = ExecUnit::TMA;

  EventType ArrayType;
  ArrayType.Dims.push_back({4, Processor::Warp});
  EventId E2 = F.Module.addEvent("e2", ArrayType);
  Operation &Call = F.append(OpKind::Call);
  Call.Callee = "leaf";
  Call.Args = {TensorSlice::whole(F.Tile)};
  Call.ArgIsWritten = {false};
  Call.Result = E2;
  EventRef Pre = EventRef::unit(E1);
  Call.Preconds.push_back(Pre);

  std::string Text = printModule(F.Module);
  EXPECT_NE(Text.find("tile = tensor(f16[16, 64], SHARED)"),
            std::string::npos);
  EXPECT_NE(Text.find("e1 : () = copy(A[0, 0], tile) on tma, {}"),
            std::string::npos);
  EXPECT_NE(Text.find("e2 : [(4, WARP)] = call(leaf, tile) on simt, {e1}"),
            std::string::npos);
}

TEST(IR, PrinterShowsBroadcastAndLag) {
  Fixture F;
  EventType ArrayType;
  ArrayType.Dims.push_back({4, Processor::Warp});
  EventId E1 = F.Module.addEvent("e1", ArrayType);
  Operation &First = F.append(OpKind::Call);
  First.Callee = "producer";
  First.Result = E1;

  Operation &Second = F.append(OpKind::Call);
  Second.Callee = "consumer";
  EventRef Ref;
  Ref.Event = E1;
  Ref.Indices.push_back(EventIndex::broadcast());
  Ref.IterLag = 2;
  Second.Preconds.push_back(Ref);

  std::string Text = printModule(F.Module);
  EXPECT_NE(Text.find("{e1[:]@lag(2)}"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormed) {
  Fixture F;
  EventId E1 = F.Module.addEvent("e1", EventType{});
  Operation &Copy = F.append(OpKind::Copy);
  Copy.CopySrc = TensorSlice::whole(F.Tile);
  Copy.CopyDst = TensorSlice::whole(F.Tile);
  Copy.Result = E1;
  EXPECT_TRUE(verifyModule(F.Module));
}

TEST(Verifier, RejectsUseBeforeDef) {
  Fixture F;
  EventId E1 = F.Module.addEvent("e1", EventType{});
  Operation &Copy = F.append(OpKind::Copy);
  Copy.CopySrc = TensorSlice::whole(F.Tile);
  Copy.CopyDst = TensorSlice::whole(F.Tile);
  Copy.Preconds.push_back(EventRef::unit(E1)); // Defined by itself: later.
  Copy.Result = E1;
  ErrorOrVoid Result = verifyModule(F.Module);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("before its definition"),
            std::string::npos);
}

TEST(Verifier, AllowsLaggedBackwardRefs) {
  // Pipelining's anti-dependence edges point backward; the verifier must
  // accept them (they resolve to a previous iteration).
  Fixture F;
  EventId E1 = F.Module.addEvent("e1", EventType{});
  Operation &Copy = F.append(OpKind::Copy);
  Copy.CopySrc = TensorSlice::whole(F.Tile);
  Copy.CopyDst = TensorSlice::whole(F.Tile);
  EventRef Back = EventRef::unit(E1);
  Back.IterLag = 3;
  Copy.Preconds.push_back(Back);
  Copy.Result = E1;
  EXPECT_TRUE(verifyModule(F.Module));
}

TEST(Verifier, RejectsIndexRankMismatch) {
  Fixture F;
  EventType ArrayType;
  ArrayType.Dims.push_back({4, Processor::Warp});
  EventId E1 = F.Module.addEvent("e1", ArrayType);
  Operation &First = F.append(OpKind::Call);
  First.Callee = "producer";
  First.Result = E1;

  Operation &Second = F.append(OpKind::Call);
  Second.Callee = "consumer";
  Second.Preconds.push_back(EventRef::unit(E1)); // Rank-1 event, no index.
  ErrorOrVoid Result = verifyModule(F.Module);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("rank"), std::string::npos);
}

TEST(Verifier, RejectsDoubleDefinition) {
  Fixture F;
  EventId E1 = F.Module.addEvent("e1", EventType{});
  for (int I = 0; I < 2; ++I) {
    Operation &Copy = F.append(OpKind::Copy);
    Copy.CopySrc = TensorSlice::whole(F.Tile);
    Copy.CopyDst = TensorSlice::whole(F.Tile);
    Copy.Result = E1;
  }
  ErrorOrVoid Result = verifyModule(F.Module);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("SSA"), std::string::npos);
}

TEST(Verifier, RejectsCopySizeMismatch) {
  Fixture F;
  Operation &Copy = F.append(OpKind::Copy);
  Copy.CopySrc = TensorSlice::whole(F.A);    // 64x64
  Copy.CopyDst = TensorSlice::whole(F.Tile); // 16x64
  Copy.Result = F.Module.addEvent("e1", EventType{});
  ErrorOrVoid Result = verifyModule(F.Module);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.diagnostic().message().find("elements"),
            std::string::npos);
}

TEST(IR, CloneIsDeep) {
  Fixture F;
  auto Loop = std::make_unique<Operation>();
  Loop->Kind = OpKind::For;
  Loop->LoopVarName = "k";
  auto Inner = std::make_unique<Operation>();
  Inner->Kind = OpKind::Copy;
  Inner->CopySrc = TensorSlice::whole(F.Tile);
  Inner->CopyDst = TensorSlice::whole(F.Tile);
  Loop->Body.Ops.push_back(std::move(Inner));

  std::unique_ptr<Operation> Clone = Loop->clone();
  ASSERT_EQ(Clone->Body.Ops.size(), 1u);
  EXPECT_NE(Clone->Body.Ops[0].get(), Loop->Body.Ops[0].get());
  Clone->Body.Ops[0]->CopySrc = TensorSlice::whole(F.A);
  EXPECT_EQ(Loop->Body.Ops[0]->CopySrc.Tensor, F.Tile);
}
