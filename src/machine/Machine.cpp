//===- Machine.cpp - Hierarchical machine model ----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "machine/Machine.h"

#include "support/Error.h"

#include <algorithm>

using namespace cypress;

const char *cypress::processorName(Processor Proc) {
  switch (Proc) {
  case Processor::Host:
    return "HOST";
  case Processor::Block:
    return "BLOCK";
  case Processor::Warpgroup:
    return "WARPGROUP";
  case Processor::Warp:
    return "WARP";
  case Processor::Thread:
    return "THREAD";
  }
  cypressUnreachable("unknown processor kind");
}

const char *cypress::memoryName(Memory Mem) {
  switch (Mem) {
  case Memory::None:
    return "NONE";
  case Memory::Global:
    return "GLOBAL";
  case Memory::Shared:
    return "SHARED";
  case Memory::Register:
    return "REGISTER";
  }
  cypressUnreachable("unknown memory kind");
}

MachineModel::MachineModel(std::string Name, std::vector<ProcessorLevel> Levels,
                           std::vector<MemoryLevel> Memories)
    : Name(std::move(Name)), Levels(std::move(Levels)),
      Memories(std::move(Memories)) {
  assert(!this->Levels.empty() && "machine needs at least one level");
  for (const MemoryLevel &Mem : this->Memories) {
    (void)Mem; // Only inspected by the assert below.
    assert(hasLevel(Mem.Scope) && "memory scope names an unknown level");
  }
}

bool MachineModel::hasLevel(Processor Proc) const {
  return std::any_of(Levels.begin(), Levels.end(),
                     [&](const ProcessorLevel &L) { return L.Kind == Proc; });
}

const ProcessorLevel &MachineModel::level(Processor Proc) const {
  for (const ProcessorLevel &L : Levels)
    if (L.Kind == Proc)
      return L;
  cypressUnreachable("processor level not present in machine");
}

unsigned MachineModel::depthOf(Processor Proc) const {
  for (unsigned I = 0, E = Levels.size(); I != E; ++I)
    if (Levels[I].Kind == Proc)
      return I;
  cypressUnreachable("processor level not present in machine");
}

bool MachineModel::isInner(Processor Inner, Processor Outer) const {
  return depthOf(Inner) > depthOf(Outer);
}

Processor MachineModel::childLevel(Processor Proc) const {
  unsigned Depth = depthOf(Proc);
  assert(Depth + 1 < Levels.size() && "innermost level has no child");
  return Levels[Depth + 1].Kind;
}

bool MachineModel::canAccess(Processor Proc, Memory Mem) const {
  if (Mem == Memory::None)
    return false;
  const MemoryLevel &M = memory(Mem);
  // A memory scoped at level S is addressable from S and every level nested
  // inside S. Register placements are legal for any thread grouping at or
  // below the warpgroup: a warpgroup-level tensor in REGISTER memory means
  // the data is distributed across the register files of the group's
  // threads (the WGMMA accumulator layout of Figure 4).
  if (Mem == Memory::Register)
    return Proc == Processor::Thread || Proc == Processor::Warp ||
           Proc == Processor::Warpgroup;
  return depthOf(Proc) >= depthOf(M.Scope) ||
         // The host can address global memory even though global's scope is
         // listed as Host already; keep the general rule simple.
         (Mem == Memory::Global && Proc == Processor::Host);
}

const MemoryLevel &MachineModel::memory(Memory Mem) const {
  for (const MemoryLevel &M : Memories)
    if (M.Kind == Mem)
      return M;
  cypressUnreachable("memory kind not present in machine");
}

int64_t MachineModel::fanOut(Processor Proc) const {
  return std::max<int64_t>(level(Proc).FanOut, 1);
}

const MachineModel &MachineModel::h100() {
  static const MachineModel Model(
      "h100",
      {
          {Processor::Host, /*FanOut=*/0, /*ThreadsPerInstance=*/0},
          // Grid size is dynamic; the per-block resources below are what the
          // compiler reasons about.
          {Processor::Block, /*FanOut=*/0, /*ThreadsPerInstance=*/0},
          {Processor::Warpgroup, /*FanOut=*/0,
           /*ThreadsPerInstance=*/H100Constants::ThreadsPerWarp *
               H100Constants::WarpsPerWarpgroup},
          {Processor::Warp, /*FanOut=*/H100Constants::WarpsPerWarpgroup,
           /*ThreadsPerInstance=*/H100Constants::ThreadsPerWarp},
          {Processor::Thread, /*FanOut=*/H100Constants::ThreadsPerWarp,
           /*ThreadsPerInstance=*/1},
      },
      {
          {Memory::Global, Processor::Host, /*CapacityBytes=*/0},
          {Memory::Shared, Processor::Block,
           H100Constants::SharedMemoryBytes},
          {Memory::Register, Processor::Thread,
           H100Constants::RegistersPerThread * 4},
      });
  return Model;
}
