//===- Machine.h - Hierarchical machine model -----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical machine model of Section 3.1. A machine is a list of
/// processor levels (HOST down to THREAD) plus a set of memories, each
/// visible from a subset of the processor levels. The H100 description
/// (Figure 2) is provided as a builtin, but the model is data-driven so new
/// architectures (e.g. Blackwell's paired-SM tensor core and its extra
/// memory kind) can be described without code changes.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_MACHINE_MACHINE_H
#define CYPRESS_MACHINE_MACHINE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace cypress {

/// Logical processor levels, ordered from outermost to innermost.
/// Matches the grammar of Figure 3.
enum class Processor : uint8_t {
  Host,      ///< CPU launching kernels.
  Block,     ///< One CTA / one SM's worth of threads.
  Warpgroup, ///< 128 threads; the unit that issues WGMMA.
  Warp,      ///< 32 threads.
  Thread,    ///< A single hardware thread.
};

/// Memory kinds of the CUDA memory hierarchy plus the `none` constraint of
/// Section 3.3 (tensor must never be materialized at this level).
enum class Memory : uint8_t {
  None,     ///< Never materialized; placement deferred to children.
  Global,   ///< Device HBM, visible to all processors.
  Shared,   ///< Per-SM scratchpad, visible to one block.
  Register, ///< Thread-private register file.
};

const char *processorName(Processor Proc);
const char *memoryName(Memory Mem);

/// Description of one processor level within a machine.
struct ProcessorLevel {
  Processor Kind;
  /// How many instances of this level nest inside one parent instance
  /// (e.g. 4 warps per warpgroup). Host fan-out is the grid size and is
  /// dynamic, so it is recorded as 0 here.
  int64_t FanOut;
  /// Threads contained in one instance of this level (host = 0).
  int64_t ThreadsPerInstance;
};

/// Description of one memory within a machine.
struct MemoryLevel {
  Memory Kind;
  /// Innermost processor level from which every instance of this memory is
  /// visible. Global is visible from Host down; Shared from Block down;
  /// Register only at Thread.
  Processor Scope;
  /// Capacity in bytes of one instance (0 = effectively unbounded for the
  /// purposes of the compiler, e.g. global memory).
  int64_t CapacityBytes;
};

/// A machine: an ordered processor hierarchy plus memories.
///
/// Invariants: levels are listed outermost-first and strictly nested;
/// every memory's scope names a level present in the hierarchy.
class MachineModel {
public:
  MachineModel(std::string Name, std::vector<ProcessorLevel> Levels,
               std::vector<MemoryLevel> Memories);

  const std::string &name() const { return Name; }
  const std::vector<ProcessorLevel> &levels() const { return Levels; }
  const std::vector<MemoryLevel> &memories() const { return Memories; }

  /// True if the machine has the given processor level.
  bool hasLevel(Processor Proc) const;

  /// The description of \p Proc; asserts that the level exists.
  const ProcessorLevel &level(Processor Proc) const;

  /// Index of \p Proc in the hierarchy (0 = outermost).
  unsigned depthOf(Processor Proc) const;

  /// True if \p Inner nests strictly inside \p Outer.
  bool isInner(Processor Inner, Processor Outer) const;

  /// Next level inside \p Proc; asserts that one exists.
  Processor childLevel(Processor Proc) const;

  /// True if code running on \p Proc can address memory \p Mem.
  ///
  /// This is the key relaxation over Sequoia's strictly hierarchical model
  /// (Section 6): multiple processor levels may access multiple memories
  /// (e.g. a thread can address global, shared, and its registers).
  bool canAccess(Processor Proc, Memory Mem) const;

  /// The description of \p Mem; asserts that the memory exists.
  const MemoryLevel &memory(Memory Mem) const;

  /// Capacity in bytes of one instance of \p Mem (0 = effectively
  /// unbounded, e.g. global memory). The query the autotuner's static
  /// pruner runs before deciding whether a mapping can possibly allocate.
  int64_t capacityBytes(Memory Mem) const { return memory(Mem).CapacityBytes; }

  /// Threads contained in one instance of \p Proc (0 when the level's
  /// thread count is dynamic, i.e. host and block). Register-file tensors
  /// homed at \p Proc are distributed across exactly these threads, so the
  /// per-thread register budget of a candidate mapping is
  /// `ceilDiv(bytes, threadsPerInstance(Proc))`.
  int64_t threadsPerInstance(Processor Proc) const {
    return level(Proc).ThreadsPerInstance;
  }

  /// Number of parallel instances of \p Proc within one instance of its
  /// parent level (1 for host).
  int64_t fanOut(Processor Proc) const;

  /// The builtin NVIDIA H100 description of Figure 2.
  static const MachineModel &h100();

private:
  std::string Name;
  std::vector<ProcessorLevel> Levels;
  std::vector<MemoryLevel> Memories;
};

/// Hardware constants for the simulated H100 used by the performance model.
/// Values come from the Hopper whitepaper / datasheet; only ratios matter
/// for reproducing the paper's figures.
struct H100Constants {
  static constexpr int64_t NumSMs = 132;
  static constexpr int64_t SharedMemoryBytes = 227 * 1024; // Per-SM usable.
  static constexpr int64_t RegistersPerThread = 255;
  static constexpr int64_t WarpsPerBlockMax = 64;
  static constexpr int64_t ThreadsPerWarp = 32;
  static constexpr int64_t WarpsPerWarpgroup = 4;
  static constexpr double ClockGHz = 1.755;
  /// Dense FP16 tensor TFLOP/s across the device (no sparsity).
  static constexpr double PeakTensorTFLOPs = 989.0;
  /// HBM3 bandwidth in bytes per second.
  static constexpr double HBMBandwidthBytesPerSec = 3.35e12;
};

} // namespace cypress

#endif // CYPRESS_MACHINE_MACHINE_H
