//===- MappingSpace.h - Enumerable mapping search spaces -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search-space half of the autotuning subsystem. Section 5.4's
/// workflow is that tuning a Cypress kernel means editing the mapping
/// specification, never the logical task description; this file makes that
/// mapping space a first-class object. A KernelSearchSpec binds a kernel
/// family to the tuner: named tunable axes (tile sizes, pipeline depth,
/// warpgroup count, per-stream buffer depths, exec-unit assignment,
/// occupancy caps) plus callables that turn one axis assignment — a
/// TuningPoint — into a task registry, a MappingSpec, and entry argument
/// types. MappingSpace is a *lazy* view of the axes' cartesian product:
/// points are decoded from a flat index on demand (mixed-radix, last axis
/// fastest — the nested-sweep order), so spaces of 10^4..10^6 points cost
/// O(axes) to construct and O(1) memory to search. The spec's *static*
/// feasibility check runs per point, so candidates that can never allocate
/// (shared-memory footprint over the MachineModel capacity, broken WGMMA
/// band divisibility, register-file overflow) are rejected with a
/// diagnostic before the pass pipeline ever runs.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_AUTOTUNE_MAPPINGSPACE_H
#define CYPRESS_AUTOTUNE_MAPPINGSPACE_H

#include "frontend/Task.h"
#include "machine/Machine.h"
#include "mapping/Mapping.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cypress {

/// One tunable dimension of a kernel's mapping space: a name the kernel's
/// applyTunable understands ("U", "PIPE", ...) and the discrete values to
/// sweep.
struct TuningAxis {
  std::string Name;
  std::vector<int64_t> Values;
};

/// A concrete assignment of every axis, kept in axis-declaration order so
/// points print the way the sweep was written ("U=128 V=256 PIPE=3 WGS=2").
class TuningPoint {
public:
  TuningPoint() = default;
  explicit TuningPoint(std::vector<std::pair<std::string, int64_t>> Values)
      : Assignments(std::move(Values)) {}

  const std::vector<std::pair<std::string, int64_t>> &values() const {
    return Assignments;
  }

  bool has(const std::string &Name) const;
  /// The value assigned to \p Name; asserts that the axis exists.
  int64_t at(const std::string &Name) const;
  /// The value assigned to \p Name, or \p Fallback if the axis is absent.
  int64_t getOr(const std::string &Name, int64_t Fallback) const;

  /// "U=128 V=256 PIPE=3 WGS=2" — the landscape-row label.
  std::string str() const;

  /// Content hash over axis names and values (FNV-1a with a final
  /// avalanche). Visited-sets during guided search key on this instead of
  /// str(): one 64-bit word per point instead of a heap string. Equal
  /// points always collide; distinct points collide with probability
  /// ~2^-64, negligible against 10^6-point spaces.
  uint64_t fingerprint() const;

  /// Points compare by content (axis order and values), which makes them
  /// usable as keys and comparable across tuner runs.
  bool operator==(const TuningPoint &Other) const {
    return Assignments == Other.Assignments;
  }
  bool operator!=(const TuningPoint &Other) const { return !(*this == Other); }

private:
  std::vector<std::pair<std::string, int64_t>> Assignments;
};

/// Everything the tuner needs to search one kernel family. The callables
/// close over a base configuration (problem sizes, defaults for axes not
/// being swept); see gemmSearchSpec / attentionSearchSpec in
/// KernelSpaces.h for the builtin kernels.
struct KernelSearchSpec {
  /// Entrypoint task name passed to the compiler ("gemm", "fa").
  std::string KernelName;
  /// The swept dimensions, outermost first (enumeration is lexicographic
  /// in this order, matching a nested sweep loop).
  std::vector<TuningAxis> Axes;
  /// Registers the kernel's task tree (shared by every candidate — the
  /// logical description never changes during tuning).
  std::function<void(TaskRegistry &)> Register;
  /// Builds the candidate's mapping specification.
  std::function<MappingSpec(const TuningPoint &)> BuildMapping;
  /// Builds the candidate's entry argument types.
  std::function<std::vector<TensorType>(const TuningPoint &)> BuildArgs;
  /// Static feasibility of the candidate on \p Machine. An error prunes
  /// the point before compilation; pruning must be sound (reject only
  /// points the compiler would also reject), while points that pass may
  /// still fail the pipeline and are reported as compile errors.
  std::function<ErrorOrVoid(const TuningPoint &, const MachineModel &)>
      Feasible;
};

/// A lazy view of the axes' cartesian product with indexed random access.
/// Construction copies the axes and the feasibility callable but touches
/// no points; pointAt / candidateAt decode a flat index on demand. The
/// MachineModel must outlive the space (feasibility checks run lazily).
class MappingSpace {
public:
  struct Candidate {
    TuningPoint Point;
    /// Set iff the point was statically pruned; holds the reason.
    std::optional<Diagnostic> Rejection;

    bool feasible() const { return !Rejection.has_value(); }
  };

  MappingSpace(const KernelSearchSpec &Spec, const MachineModel &Machine);

  /// Product of the axis cardinalities (feasible and pruned alike).
  size_t size() const { return Total; }
  const std::vector<TuningAxis> &axes() const { return Axes; }

  /// The point at flat index \p Index in enumeration (nested-sweep) order:
  /// the last axis spins fastest, matching the loop nest a user would have
  /// written by hand. O(axes); no feasibility check.
  TuningPoint pointAt(size_t Index) const;

  /// pointAt plus the static-feasibility verdict.
  Candidate candidateAt(size_t Index) const;

  /// Streams every candidate in enumeration order without materializing
  /// the space. Return false from \p Visit to stop early.
  void forEach(const std::function<bool(size_t, const Candidate &)> &Visit)
      const;

  /// All candidates in enumeration order, pruned ones included with their
  /// rejection diagnostics. Materializes (and caches) the whole product —
  /// only call on spaces small enough to evaluate exhaustively.
  const std::vector<Candidate> &candidates() const;

  /// Number of statically feasible points. Lazily computed by one full
  /// scan on first call, then cached — like candidates(), avoid on huge
  /// spaces unless the count is genuinely needed.
  size_t feasibleCount() const;
  size_t prunedCount() const { return size() - feasibleCount(); }

private:
  std::vector<TuningAxis> Axes;
  std::function<ErrorOrVoid(const TuningPoint &, const MachineModel &)>
      Feasible;
  const MachineModel *Machine = nullptr;
  size_t Total = 1;

  /// Lazily-filled caches; mutable because the accessors are logically
  /// const views of an immutable space.
  mutable std::optional<std::vector<Candidate>> Materialized;
  mutable std::optional<size_t> FeasibleTotal;
};

} // namespace cypress

#endif // CYPRESS_AUTOTUNE_MAPPINGSPACE_H
