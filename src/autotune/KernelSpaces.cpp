//===- KernelSpaces.cpp - Builtin kernel search spaces ---------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"

using namespace cypress;

namespace {

// An axis whose name the config rejects is a malformed search spec, not a
// prunable candidate — fail loudly.
template <typename ConfigT>
ConfigT configAt(ConfigT Base, const TuningPoint &Point) {
  for (const auto &[Axis, Value] : Point.values())
    if (ErrorOrVoid Applied = applyTunable(Base, Axis, Value); !Applied)
      cypressUnreachable(Applied.diagnostic().message().c_str());
  return Base;
}

GemmConfig gemmConfigAt(GemmConfig Base, const TuningPoint &Point) {
  return configAt(Base, Point);
}

AttentionConfig attentionConfigAt(AttentionConfig Base,
                                  const TuningPoint &Point) {
  return configAt(Base, Point);
}

} // namespace

std::vector<TuningAxis> cypress::gemmSweepAxes() {
  return {{"U", {64, 128}},
          {"V", {128, 256}},
          {"PIPE", {2, 3, 4}},
          {"WGS", {1, 2}}};
}

KernelSearchSpec cypress::gemmSearchSpec(GemmConfig Base,
                                         std::vector<TuningAxis> Axes) {
  KernelSearchSpec Spec;
  Spec.KernelName = "gemm";
  Spec.Axes = std::move(Axes);
  Spec.Register = [](TaskRegistry &Registry) { registerGemmTasks(Registry); };
  Spec.BuildMapping = [Base](const TuningPoint &Point) {
    return gemmMapping(gemmConfigAt(Base, Point));
  };
  Spec.BuildArgs = [Base](const TuningPoint &Point) {
    return gemmArgTypes(gemmConfigAt(Base, Point));
  };
  Spec.Feasible = [Base](const TuningPoint &Point,
                         const MachineModel &Machine) {
    return gemmConfigAt(Base, Point).validate(Machine);
  };
  return Spec;
}

std::vector<TuningAxis> cypress::attentionSweepAxes() {
  return {{"BR", {128, 192, 256}}, {"BC", {64, 128}}, {"PIPE", {2, 3}}};
}

KernelSearchSpec cypress::attentionSearchSpec(AttentionConfig Base,
                                              std::vector<TuningAxis> Axes) {
  KernelSearchSpec Spec;
  Spec.KernelName = "fa";
  Spec.Axes = std::move(Axes);
  Spec.Register = [](TaskRegistry &Registry) {
    registerAttentionTasks(Registry);
  };
  Spec.BuildMapping = [Base](const TuningPoint &Point) {
    return attentionMapping(attentionConfigAt(Base, Point));
  };
  Spec.BuildArgs = [Base](const TuningPoint &Point) {
    return attentionArgTypes(attentionConfigAt(Base, Point));
  };
  Spec.Feasible = [Base](const TuningPoint &Point,
                         const MachineModel &Machine) {
    return attentionConfigAt(Base, Point).validate(Machine);
  };
  return Spec;
}
