//===- KernelSpaces.cpp - Builtin kernel search spaces ---------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"

using namespace cypress;

namespace {

// An axis whose name the config rejects is a malformed search spec, not a
// prunable candidate — fail loudly.
template <typename ConfigT>
ConfigT configAt(ConfigT Base, const TuningPoint &Point) {
  for (const auto &[Axis, Value] : Point.values())
    if (ErrorOrVoid Applied = applyTunable(Base, Axis, Value); !Applied)
      cypressUnreachable(Applied.diagnostic().message().c_str());
  return Base;
}

GemmConfig gemmConfigAt(GemmConfig Base, const TuningPoint &Point) {
  return configAt(Base, Point);
}

AttentionConfig attentionConfigAt(AttentionConfig Base,
                                  const TuningPoint &Point) {
  return configAt(Base, Point);
}

} // namespace

std::vector<TuningAxis> cypress::gemmSweepAxes() {
  return {{"U", {64, 128}},
          {"V", {128, 256}},
          {"PIPE", {2, 3, 4}},
          {"WGS", {1, 2}}};
}

std::vector<TuningAxis> cypress::gemmGuidedAxes() {
  // 3*3*4*4*3 * 3*3*2*2 * 5 = 77,760 raw points. A 0 on the per-stream
  // depth axes means "inherit PIPE"; a 0 on SMEM means "machine
  // capacity" — so the legacy sweep grid embeds as the all-defaults
  // hyperplane of this space.
  return {{"U", {64, 128, 256}},
          {"V", {64, 128, 256}},
          {"W", {16, 32, 64, 128}},
          {"PIPE", {2, 3, 4, 5}},
          {"WGS", {1, 2, 4}},
          {"PIPE_A", {0, 2, 3}},
          {"PIPE_B", {0, 2, 3}},
          {"TMA_A", {0, 1}},
          {"TMA_B", {0, 1}},
          {"SMEM", {0, 128, 160, 192, 224}}};
}

KernelSearchSpec cypress::gemmSearchSpec(GemmConfig Base,
                                         std::vector<TuningAxis> Axes) {
  KernelSearchSpec Spec;
  Spec.KernelName = "gemm";
  Spec.Axes = std::move(Axes);
  Spec.Register = [](TaskRegistry &Registry) { registerGemmTasks(Registry); };
  Spec.BuildMapping = [Base](const TuningPoint &Point) {
    return gemmMapping(gemmConfigAt(Base, Point));
  };
  Spec.BuildArgs = [Base](const TuningPoint &Point) {
    return gemmArgTypes(gemmConfigAt(Base, Point));
  };
  Spec.Feasible = [Base](const TuningPoint &Point,
                         const MachineModel &Machine) {
    return gemmConfigAt(Base, Point).validate(Machine);
  };
  return Spec;
}

std::vector<TuningAxis> cypress::attentionSweepAxes() {
  return {{"BR", {128, 192, 256}}, {"BC", {64, 128}}, {"PIPE", {2, 3}}};
}

std::vector<TuningAxis> cypress::attentionGuidedAxes() {
  // 3*3*4*3 * 3*3 * 4 = 3,888 raw points.
  return {{"BR", {128, 192, 256}},
          {"BC", {32, 64, 128}},
          {"WGS", {1, 2, 3, 4}},
          {"PIPE", {2, 3, 4}},
          {"PIPE_K", {0, 2, 3}},
          {"PIPE_V", {0, 2, 3}},
          {"SMEM", {0, 160, 192, 224}}};
}

KernelSearchSpec cypress::attentionSearchSpec(AttentionConfig Base,
                                              std::vector<TuningAxis> Axes) {
  KernelSearchSpec Spec;
  Spec.KernelName = "fa";
  Spec.Axes = std::move(Axes);
  Spec.Register = [](TaskRegistry &Registry) {
    registerAttentionTasks(Registry);
  };
  Spec.BuildMapping = [Base](const TuningPoint &Point) {
    return attentionMapping(attentionConfigAt(Base, Point));
  };
  Spec.BuildArgs = [Base](const TuningPoint &Point) {
    return attentionArgTypes(attentionConfigAt(Base, Point));
  };
  Spec.Feasible = [Base](const TuningPoint &Point,
                         const MachineModel &Machine) {
    return attentionConfigAt(Base, Point).validate(Machine);
  };
  return Spec;
}
