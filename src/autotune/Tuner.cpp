//===- Tuner.cpp - Mapping autotuner over compiler sessions ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/Tuner.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <deque>

using namespace cypress;

const char *cypress::candidateStatusName(CandidateStatus Status) {
  switch (Status) {
  case CandidateStatus::Pruned:
    return "pruned";
  case CandidateStatus::CompileError:
    return "compile-error";
  case CandidateStatus::SimError:
    return "sim-error";
  case CandidateStatus::Evaluated:
    return "ok";
  }
  cypressUnreachable("unknown candidate status");
}

Tuner::Tuner() : OwnedSession(std::make_unique<CompilerSession>()) {
  Session = OwnedSession.get();
}

Tuner::Tuner(CompilerSession &Session) : Session(&Session) {}

namespace {

/// The simulator parameters participate in evaluation identity: the same
/// kernel timed under a different machine calibration is a different cost.
std::string simFingerprint(const SimConfig &Sim) {
  return formatString(
      "|sim{%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g}",
      Sim.ClockGHz, Sim.TensorCoreFlopsPerCycle, Sim.TmaBytesPerCycle,
      Sim.SimtGlobalBytesPerCycle, Sim.SimtLocalBytesPerCycle,
      Sim.SimtFlopsPerCycle, Sim.GlobalLatency, Sim.TensorCoreLatency,
      Sim.SimtLatency);
}

} // namespace

size_t Tuner::costCacheSize() const {
  std::lock_guard<std::mutex> Lock(CostMutex);
  return CostCache.size();
}

void Tuner::clearCostCache() {
  std::lock_guard<std::mutex> Lock(CostMutex);
  CostCache.clear();
}

TaskRegistry &Tuner::registryFor(const KernelSearchSpec &Spec) {
  std::lock_guard<std::mutex> Lock(CostMutex);
  std::unique_ptr<TaskRegistry> &Slot = Registries[Spec.KernelName];
  if (!Slot) {
    Slot = std::make_unique<TaskRegistry>();
    Spec.Register(*Slot);
  }
  return *Slot;
}

TuneResult Tuner::tune(const KernelSearchSpec &Spec,
                       const MachineModel &Machine, const SimConfig &Sim) {
  MappingSpace Space(Spec, Machine);

  TuneResult Result;
  Result.Stats.Candidates = Space.size();
  Result.Stats.Pruned = Space.prunedCount();
  Result.Landscape.reserve(Space.size());

  // One registry per kernel family, shared across sweeps: tuning only
  // edits the mapping, never the logical description (Section 5.4), and a
  // stable registry identity is what makes candidate cache keys stable.
  TaskRegistry &Registry = registryFor(Spec);

  const std::string SimKey = simFingerprint(Sim);

  // The deque keeps pending candidates' mappings at stable addresses for
  // the CompileInput pointers handed to the session (argument types are
  // held by value in CompileInput).
  std::deque<MappingSpec> Mappings;
  struct PendingEval {
    size_t Row;
    std::string CostKey;
  };
  std::vector<PendingEval> Pending;
  std::vector<CompilerSession::Request> Requests;

  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    CandidateResult Row;
    Row.Point = Cand.Point;
    if (!Cand.feasible()) {
      Row.Status = CandidateStatus::Pruned;
      Row.Detail = Cand.Rejection->message();
      Result.Landscape.push_back(std::move(Row));
      continue;
    }

    Mappings.push_back(Spec.BuildMapping(Cand.Point));
    CompileInput Input{&Registry, &Mappings.back(), &Machine,
                       Spec.BuildArgs(Cand.Point)};
    // One serialization per candidate: the session key doubles as the
    // cost-cache key's prefix and rides along in the request.
    std::string SessionKey = CompilerSession::cacheKey(Input);
    std::string CostKey = SessionKey + SimKey;

    {
      std::lock_guard<std::mutex> Lock(CostMutex);
      auto It = CostCache.find(CostKey);
      if (It != CostCache.end()) {
        const CachedEval &Eval = It->second;
        Row.Status = Eval.Status;
        Row.Detail = Eval.Detail;
        Row.TFlops = Eval.TFlops;
        Row.SharedBytes = Eval.SharedBytes;
        Row.Kernel = Eval.Kernel;
        Row.CompileMicros =
            Eval.Kernel ? Eval.Kernel->stats().TotalMicros : 0.0;
        Row.SimulateMicros = Eval.SimulateMicros;
        Row.CostCacheHit = true;
        ++Result.Stats.CostCacheHits;
        Result.Landscape.push_back(std::move(Row));
        continue;
      }
    }

    Pending.push_back({Result.Landscape.size(), std::move(CostKey)});
    Requests.push_back(
        {std::move(Input), Spec.KernelName, std::move(SessionKey)});
    Result.Landscape.push_back(std::move(Row)); // Filled in below.
  }

  // Compile and evaluate every fresh candidate through the session's
  // worker pool: the post-compile hook times each kernel on the simulator
  // right on the worker that compiled it, so candidate A's simulation
  // overlaps candidate B's pass pipeline. Evaluations land in positional
  // slots and are merged (and cost-cached) sequentially below, so the
  // resulting landscape is identical to a sequential sweep. The per-request
  // hit flags attribute kernel-cache effectiveness to this sweep exactly,
  // immune to concurrent session clients and duplicate keys within the
  // batch.
  Result.Stats.Compiled = Requests.size();
  std::vector<CachedEval> Evals(Requests.size());
  auto Evaluate =
      [&](size_t I,
          const ErrorOr<std::shared_ptr<const CompiledKernel>> &Compiled) {
        CachedEval &Eval = Evals[I];
        if (!Compiled) {
          Eval.Status = CandidateStatus::CompileError;
          Eval.Detail = Compiled.diagnostic().str();
          return;
        }
        Eval.Kernel = *Compiled;
        Eval.SharedBytes = Eval.Kernel->sharedPlan().TotalBytes;
        auto SimStart = std::chrono::steady_clock::now();
        ErrorOr<SimResult> Timing = Eval.Kernel->runTiming(Sim);
        Eval.SimulateMicros = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - SimStart)
                                  .count();
        if (!Timing) {
          Eval.Status = CandidateStatus::SimError;
          Eval.Detail = Timing.diagnostic().str();
        } else {
          Eval.Status = CandidateStatus::Evaluated;
          Eval.TFlops = Timing->TFlops;
        }
      };
  std::vector<uint8_t> Hits;
  Session->compileAll(Requests, &Hits, Evaluate);
  for (uint8_t Hit : Hits)
    Result.Stats.SessionHits += Hit ? 1 : 0;
  Result.Stats.PipelinesRun = Requests.size() - Result.Stats.SessionHits;

  for (size_t I = 0; I < Pending.size(); ++I) {
    CachedEval &Eval = Evals[I];
    CandidateResult &Row = Result.Landscape[Pending[I].Row];
    Row.Status = Eval.Status;
    Row.Detail = Eval.Detail;
    Row.TFlops = Eval.TFlops;
    Row.SharedBytes = Eval.SharedBytes;
    Row.Kernel = Eval.Kernel;
    Row.CompileMicros = Eval.Kernel ? Eval.Kernel->stats().TotalMicros : 0.0;
    Row.SimulateMicros = Eval.SimulateMicros;

    std::lock_guard<std::mutex> Lock(CostMutex);
    CostCache.emplace(std::move(Pending[I].CostKey), std::move(Eval));
  }

  for (const CandidateResult &Row : Result.Landscape)
    Result.Stats.CompileErrors +=
        Row.Status == CandidateStatus::CompileError ? 1 : 0;
  Result.Stats.Session = Session->cacheStats();

  // Rank: evaluated candidates by TFLOP/s descending, then errors, then
  // pruned. stable_sort keeps enumeration order within ties and groups, so
  // the reported best is deterministic and matches what a hand-written
  // nested sweep taking the first strict maximum would pick.
  auto ClassOf = [](const CandidateResult &Row) {
    switch (Row.Status) {
    case CandidateStatus::Evaluated:
      return 0;
    case CandidateStatus::CompileError:
    case CandidateStatus::SimError:
      return 1;
    case CandidateStatus::Pruned:
      return 2;
    }
    cypressUnreachable("unknown candidate status");
  };
  std::stable_sort(Result.Landscape.begin(), Result.Landscape.end(),
                   [&](const CandidateResult &A, const CandidateResult &B) {
                     int CA = ClassOf(A), CB = ClassOf(B);
                     if (CA != CB)
                       return CA < CB;
                     return CA == 0 && A.TFlops > B.TFlops;
                   });
  return Result;
}
