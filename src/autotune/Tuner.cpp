//===- Tuner.cpp - Mapping autotuner over compiler sessions ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/Tuner.h"

#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_set>

using namespace cypress;

const char *cypress::candidateStatusName(CandidateStatus Status) {
  switch (Status) {
  case CandidateStatus::Pruned:
    return "pruned";
  case CandidateStatus::CompileError:
    return "compile-error";
  case CandidateStatus::SimError:
    return "sim-error";
  case CandidateStatus::Evaluated:
    return "ok";
  }
  cypressUnreachable("unknown candidate status");
}

Tuner::Tuner() : OwnedSession(std::make_unique<CompilerSession>()) {
  Session = OwnedSession.get();
}

Tuner::Tuner(CompilerSession &Session) : Session(&Session) {}

namespace {

/// The simulator parameters participate in evaluation identity: the same
/// kernel timed under a different machine calibration is a different cost.
std::string simFingerprint(const SimConfig &Sim) {
  return formatString(
      "|sim{%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g}",
      Sim.ClockGHz, Sim.TensorCoreFlopsPerCycle, Sim.TmaBytesPerCycle,
      Sim.SimtGlobalBytesPerCycle, Sim.SimtLocalBytesPerCycle,
      Sim.SimtFlopsPerCycle, Sim.GlobalLatency, Sim.TensorCoreLatency,
      Sim.SimtLatency);
}

/// Content seed for the guided search's PRNG: the kernel name and the axis
/// grid. Pure function of the spec, so repeat runs (and runs in different
/// processes) draw the identical sample sequence.
uint64_t specSeed(const KernelSearchSpec &Spec) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Byte = [&H](uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
  };
  for (char C : Spec.KernelName)
    Byte(static_cast<uint8_t>(C));
  for (const TuningAxis &Axis : Spec.Axes) {
    Byte(0);
    for (char C : Axis.Name)
      Byte(static_cast<uint8_t>(C));
    for (int64_t Value : Axis.Values) {
      uint64_t V = static_cast<uint64_t>(Value);
      for (int I = 0; I < 8; ++I)
        Byte(static_cast<uint8_t>(V >> (I * 8)));
    }
  }
  return H;
}

/// Evaluated candidates by TFLOP/s descending, then errors, then pruned;
/// stable within ties and groups so the reported best is deterministic and
/// matches what a hand-written nested sweep taking the first strict
/// maximum would pick.
void rankLandscape(std::vector<CandidateResult> &Landscape) {
  auto ClassOf = [](const CandidateResult &Row) {
    switch (Row.Status) {
    case CandidateStatus::Evaluated:
      return 0;
    case CandidateStatus::CompileError:
    case CandidateStatus::SimError:
      return 1;
    case CandidateStatus::Pruned:
      return 2;
    }
    cypressUnreachable("unknown candidate status");
  };
  std::stable_sort(Landscape.begin(), Landscape.end(),
                   [&](const CandidateResult &A, const CandidateResult &B) {
                     int CA = ClassOf(A), CB = ClassOf(B);
                     if (CA != CB)
                       return CA < CB;
                     return CA == 0 && A.TFlops > B.TFlops;
                   });
}

} // namespace

size_t Tuner::costCacheSize() const {
  std::lock_guard<std::mutex> Lock(CostMutex);
  return CostCache.size();
}

void Tuner::clearCostCache() {
  std::lock_guard<std::mutex> Lock(CostMutex);
  CostCache.clear();
}

TaskRegistry &Tuner::registryFor(const KernelSearchSpec &Spec) {
  std::lock_guard<std::mutex> Lock(CostMutex);
  std::unique_ptr<TaskRegistry> &Slot = Registries[Spec.KernelName];
  if (!Slot) {
    Slot = std::make_unique<TaskRegistry>();
    Spec.Register(*Slot);
  }
  return *Slot;
}

std::vector<CandidateResult>
Tuner::evaluateBatch(const KernelSearchSpec &Spec, TaskRegistry &Registry,
                     const MachineModel &Machine, const SimConfig &Sim,
                     const std::string &SimKey,
                     std::vector<TuningPoint> Points,
                     const CompileOptions &Options, TuneStats &Stats) {
  std::vector<CandidateResult> Rows(Points.size());

  // The deque keeps pending candidates' mappings at stable addresses for
  // the CompileInput pointers handed to the session (argument types are
  // held by value in CompileInput).
  std::deque<MappingSpec> Mappings;
  struct PendingEval {
    size_t Row;
    std::string CostKey;
  };
  std::vector<PendingEval> Pending;
  std::vector<CompilerSession::Request> Requests;

  for (size_t P = 0; P < Points.size(); ++P) {
    CandidateResult &Row = Rows[P];
    Row.Point = std::move(Points[P]);

    Mappings.push_back(Spec.BuildMapping(Row.Point));
    CompileInput Input{&Registry, &Mappings.back(), &Machine,
                       Spec.BuildArgs(Row.Point)};
    // One serialization per candidate: the session key doubles as the
    // cost-cache key's prefix and rides along in the request.
    std::string SessionKey = CompilerSession::cacheKey(Input);
    std::string CostKey = SessionKey + SimKey;

    {
      std::lock_guard<std::mutex> Lock(CostMutex);
      auto It = CostCache.find(CostKey);
      // Self-healing replay: an evaluated entry carrying NaN throughput is
      // corrupt (only the cost-corrupt fault site can write one) — discard
      // it and re-evaluate rather than rank garbage.
      if (It != CostCache.end() &&
          It->second.Status == CandidateStatus::Evaluated &&
          std::isnan(It->second.TFlops)) {
        CostCache.erase(It);
        It = CostCache.end();
      }
      if (It != CostCache.end()) {
        const CachedEval &Eval = It->second;
        Row.Status = Eval.Status;
        Row.Detail = Eval.Detail;
        Row.TFlops = Eval.TFlops;
        Row.SharedBytes = Eval.SharedBytes;
        Row.Kernel = Eval.Kernel;
        Row.CompileMicros =
            Eval.Kernel ? Eval.Kernel->stats().TotalMicros : 0.0;
        Row.SimulateMicros = Eval.SimulateMicros;
        Row.CostCacheHit = true;
        ++Stats.CostCacheHits;
        continue;
      }
    }

    Pending.push_back({P, std::move(CostKey)});
    Requests.push_back(
        {std::move(Input), Spec.KernelName, std::move(SessionKey)});
  }

  // Compile and evaluate every fresh candidate through the session's
  // worker pool: the post-compile hook times each kernel on the simulator
  // right on the worker that compiled it, so candidate A's simulation
  // overlaps candidate B's pass pipeline. Evaluations land in positional
  // slots and are merged (and cost-cached) sequentially below, so the
  // resulting rows are identical to a sequential sweep at any worker
  // count. The per-request hit flags attribute kernel-cache effectiveness
  // to this batch exactly, immune to concurrent session clients and
  // duplicate keys within the batch.
  Stats.Compiled += Requests.size();
  std::vector<CachedEval> Evals(Requests.size());
  auto Evaluate =
      [&](size_t I,
          const ErrorOr<std::shared_ptr<const CompiledKernel>> &Compiled) {
        CachedEval &Eval = Evals[I];
        if (!Compiled) {
          Eval.Status = CandidateStatus::CompileError;
          Eval.Detail = Compiled.diagnostic().str();
          Eval.Transient = Compiled.diagnostic().isTransient();
          return;
        }
        Eval.Kernel = *Compiled;
        Eval.SharedBytes = Eval.Kernel->sharedPlan().TotalBytes;
        auto SimStart = std::chrono::steady_clock::now();
        Cancellation RunCancel(Options.DeadlineAt, Options.Cancel);
        ErrorOr<SimResult> Timing = Eval.Kernel->runTiming(
            Sim, nullptr, RunCancel.active() ? &RunCancel : nullptr);
        Eval.SimulateMicros = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - SimStart)
                                  .count();
        if (!Timing) {
          Eval.Status = CandidateStatus::SimError;
          Eval.Detail = Timing.diagnostic().str();
          Eval.Transient = Timing.diagnostic().isTransient();
        } else {
          Eval.Status = CandidateStatus::Evaluated;
          Eval.TFlops = Timing->TFlops;
        }
      };
  std::vector<uint8_t> Hits;
  Session->compileAll(Requests, &Hits, Evaluate, Options);
  size_t BatchHits = 0;
  for (uint8_t Hit : Hits)
    BatchHits += Hit ? 1 : 0;
  Stats.SessionHits += BatchHits;
  Stats.PipelinesRun += Requests.size() - BatchHits;

  for (size_t I = 0; I < Pending.size(); ++I) {
    CachedEval &Eval = Evals[I];
    CandidateResult &Row = Rows[Pending[I].Row];
    Row.Status = Eval.Status;
    Row.Detail = Eval.Detail;
    Row.TFlops = Eval.TFlops;
    Row.SharedBytes = Eval.SharedBytes;
    Row.Kernel = Eval.Kernel;
    Row.CompileMicros = Eval.Kernel ? Eval.Kernel->stats().TotalMicros : 0.0;
    Row.SimulateMicros = Eval.SimulateMicros;

    // Transient outcomes (deadline, cancellation, shedding, injected
    // worker faults) are quarantined: the row keeps its diagnostic, but
    // nothing is memoized — a later sweep must re-evaluate the point.
    if (Eval.Transient) {
      ++Stats.Quarantined;
      continue;
    }
    // Keyed on the point's content (not the uid-bearing cost key) so a
    // probabilistic clause corrupts the same candidates in every run.
    if (Eval.Status == CandidateStatus::Evaluated &&
        faultFires(FaultSite::CostCorrupt, Row.Point.str()))
      Eval.TFlops = std::numeric_limits<double>::quiet_NaN();
    std::lock_guard<std::mutex> Lock(CostMutex);
    CostCache.emplace(std::move(Pending[I].CostKey), std::move(Eval));
  }

  for (const CandidateResult &Row : Rows)
    Stats.CompileErrors +=
        Row.Status == CandidateStatus::CompileError ? 1 : 0;
  Stats.Evals += Rows.size();
  return Rows;
}

TuneResult Tuner::tune(const KernelSearchSpec &Spec,
                       const MachineModel &Machine, const SimConfig &Sim) {
  MappingSpace Space(Spec, Machine);

  TuneResult Result;
  Result.Stats.Candidates = Space.size();
  if (Space.size() > ExhaustiveCandidateCap) {
    // Refuse rather than materialize: like the simulator's event-slot
    // cap, a diagnostic beats an out-of-memory kill.
    Result.Error = formatString(
        "mapping space has %zu candidates, over the exhaustive sweep cap "
        "of %zu; search it with tuneBudgeted() or raise "
        "Tuner::ExhaustiveCandidateCap",
        Space.size(), ExhaustiveCandidateCap);
    return Result;
  }

  // One registry per kernel family, shared across sweeps: tuning only
  // edits the mapping, never the logical description (Section 5.4), and a
  // stable registry identity is what makes candidate cache keys stable.
  TaskRegistry &Registry = registryFor(Spec);

  std::vector<TuningPoint> Feasible;
  std::vector<CandidateResult> PrunedRows;
  for (const MappingSpace::Candidate &Cand : Space.candidates()) {
    if (Cand.feasible()) {
      Feasible.push_back(Cand.Point);
      continue;
    }
    CandidateResult Row;
    Row.Point = Cand.Point;
    Row.Status = CandidateStatus::Pruned;
    Row.Detail = Cand.Rejection->message();
    PrunedRows.push_back(std::move(Row));
  }
  Result.Stats.Pruned = PrunedRows.size();

  Result.Landscape =
      evaluateBatch(Spec, Registry, Machine, Sim, simFingerprint(Sim),
                    std::move(Feasible), CompileOptions(), Result.Stats);
  Result.Landscape.reserve(Space.size());
  for (CandidateResult &Row : PrunedRows)
    Result.Landscape.push_back(std::move(Row));

  Result.Stats.Session = Session->cacheStats();
  Result.Partial = Result.Stats.Quarantined > 0;
  rankLandscape(Result.Landscape);
  return Result;
}

TuneResult Tuner::tuneBudgeted(const KernelSearchSpec &Spec,
                               const MachineModel &Machine,
                               const TuneBudget &Budget,
                               const SimConfig &Sim) {
  const auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&Start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  MappingSpace Space(Spec, Machine);
  TaskRegistry &Registry = registryFor(Spec);
  const std::string SimKey = simFingerprint(Sim);

  TuneResult Result;
  Result.Stats.Candidates = Space.size();

  // The search-level cancellation surface: checked at round boundaries
  // here, and threaded through every compile and timing run as Options.
  Cancellation Stop(Budget.DeadlineAt, Budget.Cancel);
  CancelCheck StopCheck(Stop);
  CompileOptions Options{Budget.DeadlineAt, Budget.Cancel};

  // Already expired or cancelled on entry: nothing was searched, and
  // best-so-far is legitimately empty.
  if (StopCheck.enabled() && StopCheck.shouldStopNow()) {
    Result.Partial = true;
    Result.Stats.Session = Session->cacheStats();
    return Result;
  }

  auto BestTFlops = [&Result]() {
    double Best = 0.0;
    for (const CandidateResult &Row : Result.Landscape)
      if (Row.Status == CandidateStatus::Evaluated)
        Best = std::max(Best, Row.TFlops);
    return Best;
  };

  // Small space under a covering budget: brute force is affordable and
  // strictly better than sampling, so sweep it. (feasibleCount is a full
  // scan — only taken on spaces already known to be small.)
  if (Space.size() <= SmallSpaceThreshold &&
      (Budget.MaxEvals == 0 || Budget.MaxEvals >= Space.feasibleCount())) {
    std::vector<TuningPoint> Feasible;
    for (const MappingSpace::Candidate &Cand : Space.candidates())
      if (Cand.feasible())
        Feasible.push_back(Cand.Point);
    Result.Stats.Pruned = Space.prunedCount();
    Result.Landscape =
        evaluateBatch(Spec, Registry, Machine, Sim, SimKey,
                      std::move(Feasible), Options, Result.Stats);
    Result.Stats.Rounds = 1;
    rankLandscape(Result.Landscape);
    Result.Curve.push_back({Result.Stats.Evals, BestTFlops(), ElapsedMs()});
    Result.Stats.Session = Session->cacheStats();
    Result.Partial = Result.Stats.Quarantined > 0;
    return Result;
  }

  // -- Guided anytime search ---------------------------------------------
  //
  // Successive halving over shrinking batched rounds: round 0 is broad
  // uniform exploration, later rounds spend half their (halved) size on
  // single-axis mutations of the elite points and the rest on fresh
  // samples. Every draw happens on this thread between batches, so the
  // visit sequence is a pure function of the spec content.
  SplitMix64 Rng(specSeed(Spec));
  std::unordered_set<uint64_t> Visited;
  Visited.reserve(256);

  // How many consecutive flat indices the fallback scan may examine when
  // rejection sampling stalls (heavily-pruned or nearly-exhausted spaces).
  // Bounded so a 10^6-point space with no feasible points terminates in
  // one scan's worth of static checks, not a hang.
  constexpr size_t ScanCap = 1 << 16;

  // Samples up to Want fresh feasible points into Batch; marks everything
  // it touches visited and counts statically-rejected draws as pruned.
  auto SampleRandom = [&](std::vector<TuningPoint> &Batch, size_t Want) {
    size_t Found = 0;
    size_t Attempts = 0;
    const size_t MaxAttempts = 64 * Want + 256;
    auto Consider = [&](size_t Index) {
      MappingSpace::Candidate Cand = Space.candidateAt(Index);
      if (!Visited.insert(Cand.Point.fingerprint()).second)
        return;
      if (!Cand.feasible()) {
        ++Result.Stats.Pruned;
        return;
      }
      Batch.push_back(std::move(Cand.Point));
      ++Found;
    };
    while (Found < Want && Attempts < MaxAttempts) {
      ++Attempts;
      Consider(static_cast<size_t>(Rng.nextBelow(Space.size())));
    }
    if (Found < Want) {
      // Deterministic bounded sweep from a random start so progress never
      // depends on rejection-sampling luck.
      size_t Base = static_cast<size_t>(Rng.nextBelow(Space.size()));
      for (size_t Off = 0; Off < std::min(Space.size(), ScanCap) &&
                           Found < Want;
           ++Off)
        Consider((Base + Off) % Space.size());
    }
  };

  // Single-axis neighbours of the elite points, elite-major then
  // axis-major then +1/-1 — a fixed order, so the mutation set is as
  // deterministic as the uniform draws.
  auto CollectMutations = [&](std::vector<TuningPoint> &Batch, size_t Want) {
    std::vector<const CandidateResult *> Elites;
    for (const CandidateResult &Row : Result.Landscape)
      if (Row.Status == CandidateStatus::Evaluated)
        Elites.push_back(&Row);
    std::stable_sort(Elites.begin(), Elites.end(),
                     [](const CandidateResult *A, const CandidateResult *B) {
                       return A->TFlops > B->TFlops;
                     });
    if (Elites.size() > 4)
      Elites.resize(4);

    const std::vector<TuningAxis> &Axes = Space.axes();
    for (const CandidateResult *Elite : Elites) {
      for (size_t I = 0; I < Axes.size() && Batch.size() < Want; ++I) {
        const std::vector<int64_t> &Values = Axes[I].Values;
        int64_t Current = Elite->Point.values()[I].second;
        size_t Pos = 0;
        while (Pos < Values.size() && Values[Pos] != Current)
          ++Pos;
        for (int Step : {1, -1}) {
          if (Batch.size() >= Want)
            break;
          size_t Next = Pos + static_cast<size_t>(Step);
          if (Step < 0 && Pos == 0)
            continue;
          if (Next >= Values.size())
            continue;
          std::vector<std::pair<std::string, int64_t>> Assign =
              Elite->Point.values();
          Assign[I].second = Values[Next];
          TuningPoint Mutant(std::move(Assign));
          if (!Visited.insert(Mutant.fingerprint()).second)
            continue;
          if (Spec.Feasible) {
            if (ErrorOrVoid Verdict = Spec.Feasible(Mutant, Machine);
                !Verdict) {
              ++Result.Stats.Pruned;
              continue;
            }
          }
          Batch.push_back(std::move(Mutant));
        }
      }
    }
  };

  size_t RoundSize = Budget.MaxEvals > 0
                         ? std::max<size_t>(1, Budget.MaxEvals / 2)
                         : 64;
  const size_t MinRound = Budget.MaxEvals > 0 ? size_t(1) : size_t(8);

  while (true) {
    size_t Left = Budget.MaxEvals == 0
                      ? RoundSize
                      : (Budget.MaxEvals > Result.Stats.Evals
                             ? Budget.MaxEvals - Result.Stats.Evals
                             : 0);
    size_t Want = std::min(RoundSize, Left);
    if (Want == 0)
      break;
    // Anytime contract: always complete at least one round, so even a
    // tiny wall budget returns a best-effort candidate.
    if (Result.Stats.Rounds > 0 && Budget.WallClockMs > 0 &&
        ElapsedMs() >= Budget.WallClockMs)
      break;
    // Deadline / cancellation: return best-so-far, marked Partial.
    if (Result.Stats.Rounds > 0 && StopCheck.enabled() &&
        StopCheck.shouldStopNow()) {
      Result.Partial = true;
      break;
    }

    std::vector<TuningPoint> Batch;
    Batch.reserve(Want);
    if (Result.Stats.Rounds > 0)
      CollectMutations(Batch, (Want + 1) / 2);
    SampleRandom(Batch, Want - Batch.size());
    if (Batch.empty())
      break; // Space exhausted (or nothing feasible within reach).

    std::vector<CandidateResult> Rows =
        evaluateBatch(Spec, Registry, Machine, Sim, SimKey, std::move(Batch),
                      Options, Result.Stats);
    for (CandidateResult &Row : Rows)
      Result.Landscape.push_back(std::move(Row));

    ++Result.Stats.Rounds;
    Result.Curve.push_back({Result.Stats.Evals, BestTFlops(), ElapsedMs()});
    RoundSize = std::max(MinRound, RoundSize / 2);
  }

  Result.Stats.Session = Session->cacheStats();
  Result.Partial = Result.Partial || Result.Stats.Quarantined > 0;
  rankLandscape(Result.Landscape);
  return Result;
}
