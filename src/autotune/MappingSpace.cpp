//===- MappingSpace.cpp - Enumerable mapping search spaces -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/MappingSpace.h"

#include "support/Format.h"

#include <cassert>

using namespace cypress;

bool TuningPoint::has(const std::string &Name) const {
  for (const auto &[Axis, Value] : Assignments) {
    (void)Value;
    if (Axis == Name)
      return true;
  }
  return false;
}

int64_t TuningPoint::at(const std::string &Name) const {
  for (const auto &[Axis, Value] : Assignments)
    if (Axis == Name)
      return Value;
  assert(false && "tuning point has no such axis");
  return 0;
}

int64_t TuningPoint::getOr(const std::string &Name, int64_t Fallback) const {
  for (const auto &[Axis, Value] : Assignments)
    if (Axis == Name)
      return Value;
  return Fallback;
}

std::string TuningPoint::str() const {
  std::string Out;
  for (const auto &[Axis, Value] : Assignments) {
    if (!Out.empty())
      Out += ' ';
    Out += formatString("%s=%lld", Axis.c_str(),
                        static_cast<long long>(Value));
  }
  return Out;
}

MappingSpace::MappingSpace(const KernelSearchSpec &Spec,
                           const MachineModel &Machine) {
  assert(!Spec.Axes.empty() && "search space needs at least one axis");
  size_t Total = 1;
  for (const TuningAxis &Axis : Spec.Axes) {
    assert(!Axis.Values.empty() && "tuning axis needs at least one value");
    Total *= Axis.Values.size();
  }
  Candidates.reserve(Total);

  // Odometer enumeration: the last axis spins fastest, so the order is the
  // nested sweep loop a user would have written by hand (and the order the
  // pre-refactor examples/bench sweeps used).
  std::vector<size_t> Digits(Spec.Axes.size(), 0);
  for (size_t N = 0; N < Total; ++N) {
    std::vector<std::pair<std::string, int64_t>> Values;
    Values.reserve(Spec.Axes.size());
    for (size_t I = 0; I < Spec.Axes.size(); ++I)
      Values.emplace_back(Spec.Axes[I].Name, Spec.Axes[I].Values[Digits[I]]);

    Candidate C;
    C.Point = TuningPoint(std::move(Values));
    if (Spec.Feasible) {
      if (ErrorOrVoid Verdict = Spec.Feasible(C.Point, Machine); !Verdict)
        C.Rejection = Verdict.diagnostic();
    }
    Feasible += C.feasible() ? 1 : 0;
    Candidates.push_back(std::move(C));

    for (size_t I = Spec.Axes.size(); I-- > 0;) {
      if (++Digits[I] < Spec.Axes[I].Values.size())
        break;
      Digits[I] = 0;
    }
  }
}
