//===- MappingSpace.cpp - Enumerable mapping search spaces -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "autotune/MappingSpace.h"

#include "support/Format.h"

#include <cassert>

using namespace cypress;

bool TuningPoint::has(const std::string &Name) const {
  for (const auto &[Axis, Value] : Assignments) {
    (void)Value;
    if (Axis == Name)
      return true;
  }
  return false;
}

int64_t TuningPoint::at(const std::string &Name) const {
  for (const auto &[Axis, Value] : Assignments)
    if (Axis == Name)
      return Value;
  assert(false && "tuning point has no such axis");
  return 0;
}

int64_t TuningPoint::getOr(const std::string &Name, int64_t Fallback) const {
  for (const auto &[Axis, Value] : Assignments)
    if (Axis == Name)
      return Value;
  return Fallback;
}

std::string TuningPoint::str() const {
  std::string Out;
  for (const auto &[Axis, Value] : Assignments) {
    if (!Out.empty())
      Out += ' ';
    Out += formatString("%s=%lld", Axis.c_str(),
                        static_cast<long long>(Value));
  }
  return Out;
}

uint64_t TuningPoint::fingerprint() const {
  // FNV-1a over the name bytes and value words, then a splitmix64-style
  // finalizer: neighbouring points (one axis stepped by one position)
  // differ in few input bits, and the avalanche keeps their hashes
  // uncorrelated for the guided search's visited-set.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Byte = [&H](uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
  };
  for (const auto &[Axis, Value] : Assignments) {
    for (char C : Axis)
      Byte(static_cast<uint8_t>(C));
    Byte(0); // Name terminator: ("AB", 1) never matches ("A", ...).
    uint64_t V = static_cast<uint64_t>(Value);
    for (int I = 0; I < 8; ++I)
      Byte(static_cast<uint8_t>(V >> (I * 8)));
  }
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ull;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebull;
  H ^= H >> 31;
  return H;
}

MappingSpace::MappingSpace(const KernelSearchSpec &Spec,
                           const MachineModel &Machine)
    : Axes(Spec.Axes), Feasible(Spec.Feasible), Machine(&Machine) {
  assert(!Axes.empty() && "search space needs at least one axis");
  for (const TuningAxis &Axis : Axes) {
    assert(!Axis.Values.empty() && "tuning axis needs at least one value");
    Total *= Axis.Values.size();
  }
}

TuningPoint MappingSpace::pointAt(size_t Index) const {
  assert(Index < Total && "flat index out of range");
  // Mixed-radix decode, last axis fastest — the same order the eager
  // odometer produced, so flat indices are stable across the refactor.
  std::vector<std::pair<std::string, int64_t>> Values(Axes.size());
  for (size_t I = Axes.size(); I-- > 0;) {
    size_t Radix = Axes[I].Values.size();
    Values[I] = {Axes[I].Name,
                 Axes[I].Values[Index % Radix]};
    Index /= Radix;
  }
  return TuningPoint(std::move(Values));
}

MappingSpace::Candidate MappingSpace::candidateAt(size_t Index) const {
  Candidate C;
  C.Point = pointAt(Index);
  if (Feasible)
    if (ErrorOrVoid Verdict = Feasible(C.Point, *Machine); !Verdict)
      C.Rejection = Verdict.diagnostic();
  return C;
}

void MappingSpace::forEach(
    const std::function<bool(size_t, const Candidate &)> &Visit) const {
  for (size_t N = 0; N < Total; ++N)
    if (!Visit(N, candidateAt(N)))
      return;
}

const std::vector<MappingSpace::Candidate> &MappingSpace::candidates() const {
  if (!Materialized) {
    std::vector<Candidate> All;
    All.reserve(Total);
    size_t FeasibleSeen = 0;
    for (size_t N = 0; N < Total; ++N) {
      All.push_back(candidateAt(N));
      FeasibleSeen += All.back().feasible() ? 1 : 0;
    }
    Materialized = std::move(All);
    FeasibleTotal = FeasibleSeen;
  }
  return *Materialized;
}

size_t MappingSpace::feasibleCount() const {
  if (!FeasibleTotal) {
    size_t FeasibleSeen = 0;
    // Cheaper than candidates(): counts without keeping the points.
    for (size_t N = 0; N < Total; ++N)
      FeasibleSeen += candidateAt(N).feasible() ? 1 : 0;
    FeasibleTotal = FeasibleSeen;
  }
  return *FeasibleTotal;
}
