//===- KernelSpaces.h - Builtin kernel search spaces -----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelSearchSpec factories for the kernel library: each binds a kernel
/// family's parameterized mapping generator (gemmMapping / attentionMapping
/// driven by a base config plus axis assignments applied via applyTunable)
/// and its static validate() to the autotuner. The default axis sets
/// reproduce the sweeps the paper's Section 5.4 workflow explores: tile
/// sizes, software pipeline depth, and consumer warpgroup count.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_AUTOTUNE_KERNELSPACES_H
#define CYPRESS_AUTOTUNE_KERNELSPACES_H

#include "autotune/MappingSpace.h"
#include "kernels/Kernels.h"

namespace cypress {

/// The Section 5.4 exploration grid for the dense GEMM:
/// U in {64, 128}, V in {128, 256}, PIPE in {2, 3, 4}, WGS in {1, 2}.
std::vector<TuningAxis> gemmSweepAxes();

/// The full guided-search grid: the Section 5.4 axes widened (U/V up to
/// 256, W swept, deeper pipelines) and crossed with the per-stream axes
/// the compiler understands — per-tensor pipeline depths PIPE_A/PIPE_B
/// (0 = the loop depth), exec-unit assignment TMA_A/TMA_B, and the
/// shared-memory occupancy cap SMEM in KiB (0 = machine capacity). The
/// product is ~7.8 * 10^4 points, of which >= 10^4 are statically
/// feasible on H100 — sized for tuneBudgeted, over tune()'s exhaustive
/// cap by design.
std::vector<TuningAxis> gemmGuidedAxes();

/// A search over \p Axes around \p Base (fields not named by an axis keep
/// the base value). Axis names are GemmConfig tunables: "M", "N", "K",
/// "L", "U", "V", "W", "WGS", "PIPE", "WSPEC", "PIPE_A", "PIPE_B",
/// "TMA_A", "TMA_B", "SMEM".
KernelSearchSpec gemmSearchSpec(GemmConfig Base, std::vector<TuningAxis> Axes);

/// Default attention sweep: BR in {128, 192, 256}, BC in {64, 128},
/// PIPE in {2, 3}, with WGS slaved to the base config.
std::vector<TuningAxis> attentionSweepAxes();

/// The guided attention grid: the sweep axes widened (BC down to 32, WGS
/// and deeper pipelines swept) and crossed with the per-stream K/V
/// pipeline depths and the SMEM occupancy cap. ~2.9 * 10^3 points,
/// >= 10^3 statically feasible on H100.
std::vector<TuningAxis> attentionGuidedAxes();

/// A search over \p Axes around \p Base. Axis names are AttentionConfig
/// tunables: "BATCH", "HEADS", "SEQ", "D", "BR", "BC", "WGS", "PIPE",
/// "STAGE", "PIPE_K", "PIPE_V", "SMEM".
KernelSearchSpec attentionSearchSpec(AttentionConfig Base,
                                     std::vector<TuningAxis> Axes);

} // namespace cypress

#endif // CYPRESS_AUTOTUNE_KERNELSPACES_H
