//===- Tuner.h - Mapping autotuner over compiler sessions ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search engine of the autotuning subsystem. A Tuner takes a
/// KernelSearchSpec, enumerates its MappingSpace, statically prunes
/// infeasible candidates, compiles and times the survivors in one batched
/// pass over the CompilerSession's worker pool — each worker runs the
/// simulator on the kernel it just compiled (or cache-fetched), so
/// compilation and timing overlap across candidates — and returns the
/// ranked performance landscape together with full observability: how many
/// candidates were pruned, how many pipelines actually ran, how many
/// evaluations were served from the tuner's content-keyed cost cache, and
/// per-candidate compile and simulate wall times. Evaluation results merge
/// into the landscape positionally, so a batched sweep is bit-identical to
/// a sequential one.
///
/// Typical use (see examples/mapping_explorer.cpp):
///
/// \code
///   CompilerSession Session;
///   Tuner Tuner(Session);
///   TuneResult Result = Tuner.tune(gemmSearchSpec(Config, gemmSweepAxes()),
///                                  MachineModel::h100());
///   if (const CandidateResult *Best = Result.best())
///     std::printf("best: %s at %.1f TFLOP/s\n",
///                 Best->Point.str().c_str(), Best->TFlops);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_AUTOTUNE_TUNER_H
#define CYPRESS_AUTOTUNE_TUNER_H

#include "autotune/MappingSpace.h"
#include "runtime/Session.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cypress {

/// What happened to one candidate.
enum class CandidateStatus : uint8_t {
  Pruned,       ///< Statically rejected; the pass pipeline never ran.
  CompileError, ///< Passed pruning but the pipeline rejected it.
  SimError,     ///< Compiled but the simulator failed.
  Evaluated,    ///< Compiled and timed.
};

const char *candidateStatusName(CandidateStatus Status);

/// One row of the tuning landscape.
struct CandidateResult {
  TuningPoint Point;
  CandidateStatus Status = CandidateStatus::Pruned;
  /// Rejection or error diagnostic (with pass provenance when the pipeline
  /// produced it); empty for evaluated candidates.
  std::string Detail;
  double TFlops = 0.0;
  /// Shared-memory plan size of the compiled kernel.
  int64_t SharedBytes = 0;
  /// Wall time of the pipeline run that produced the kernel — the original
  /// compile's when the kernel was served from a cache (0 if nothing
  /// compiled).
  double CompileMicros = 0.0;
  /// Wall time of the simulator timing run that evaluated the kernel —
  /// like CompileMicros, the original evaluation's when the row was
  /// replayed from the cost cache (0 if the candidate never simulated).
  double SimulateMicros = 0.0;
  /// True when the whole evaluation was replayed from the cost cache.
  bool CostCacheHit = false;
  /// The compiled kernel (null unless the candidate compiled).
  std::shared_ptr<const CompiledKernel> Kernel;
};

/// Search-effort accounting for one tune() / tuneBudgeted() call.
/// PipelinesRun is the number the acceptance bar cares about: full
/// pass-pipeline executions, i.e. evaluations minus every flavor of cache
/// hit.
struct TuneStats {
  size_t Candidates = 0;    ///< Full cartesian-product size.
  /// Rejected before compilation. For tune() this is the whole space's
  /// pruned count; for a guided search it counts only the sampled points
  /// that failed the static check (they consume no evaluation budget).
  size_t Pruned = 0;
  size_t Evals = 0;         ///< Feasible candidates submitted for timing.
  size_t CostCacheHits = 0; ///< Evaluations replayed from the cost cache.
  size_t Compiled = 0;      ///< Candidates handed to the session.
  size_t SessionHits = 0;   ///< Of those, served from the kernel cache.
  size_t PipelinesRun = 0;  ///< Full pass-pipeline executions.
  size_t CompileErrors = 0;
  size_t Rounds = 0;        ///< Search rounds of a budgeted run.
  /// Evaluations that failed transiently (deadline, cancellation, load
  /// shedding, injected worker faults — see Diagnostic::isTransient):
  /// quarantined into the landscape with their diagnostics but never
  /// written to the cost cache, so a later sweep re-evaluates them.
  size_t Quarantined = 0;
  /// Session-wide cache snapshot after the run (monotonic counters).
  CacheStats Session;
};

/// Wall-clock and/or evaluation budget for tuneBudgeted. Zero means
/// unlimited for either field; an all-zero budget searches until the space
/// stops yielding new candidates.
struct TuneBudget {
  /// Stop at the first round boundary at or past this many milliseconds.
  /// Rounds are never interrupted mid-flight, so a wall-limited run's
  /// visit sequence is always a prefix of the unlimited run's.
  double WallClockMs = 0.0;
  /// Maximum evaluations. Cost-cache hits count — budget consumption must
  /// not depend on cache warmth, or warm reruns would visit a different
  /// sequence than cold ones.
  size_t MaxEvals = 0;
  /// Hard wall-clock deadline for the whole search. Checked at round
  /// boundaries like WallClockMs, but it also rides along on every
  /// compile and timing run, so a round in flight when it expires sheds
  /// its remaining candidates with structured diagnostics (quarantined —
  /// see TuneStats::Quarantined) instead of finishing them. The search
  /// returns best-so-far marked TuneResult::Partial. Inactive (the
  /// default) costs nothing.
  Deadline DeadlineAt;
  /// Optional caller-held token: fire it to abandon the search; in-flight
  /// work exits at its next checkpoint and the tuner returns best-so-far
  /// marked Partial.
  const CancelToken *Cancel = nullptr;
};

/// The ranked landscape: evaluated candidates first, best TFLOP/s leading
/// (ties keep enumeration order), then compile/sim errors, then pruned
/// candidates, each group in enumeration order. A budgeted search's
/// landscape holds only the points it visited (sampled-and-pruned points
/// are counted in Stats.Pruned but not listed), and adds the
/// best-found-vs-budget curve.
struct TuneResult {
  std::vector<CandidateResult> Landscape;
  TuneStats Stats;

  /// One best-so-far sample per budgeted-search round.
  struct CurvePoint {
    size_t Evals = 0;        ///< Cumulative evaluations after the round.
    double BestTFlops = 0.0; ///< Best evaluated throughput so far.
    double ElapsedMs = 0.0;  ///< Wall clock since the search began.
  };
  std::vector<CurvePoint> Curve;

  /// Set when the tuner refused to run: an exhaustive tune() over a space
  /// larger than Tuner::ExhaustiveCandidateCap. The landscape is empty.
  std::string Error;

  /// True when the search degraded gracefully instead of completing: the
  /// deadline expired or the cancel token fired (best-so-far landscape),
  /// or some candidates failed transiently and were quarantined. The
  /// rows that are present are still exact.
  bool Partial = false;

  /// The best evaluated candidate, or nullptr if nothing compiled.
  const CandidateResult *best() const {
    return !Landscape.empty() &&
                   Landscape.front().Status == CandidateStatus::Evaluated
               ? &Landscape.front()
               : nullptr;
  }
};

/// The mapping-exploration engine. Thread-compatible: one Tuner may be
/// shared across threads (the cost cache is locked), and the underlying
/// CompilerSession is thread-safe by construction.
class Tuner {
public:
  /// A tuner over its own private session.
  Tuner();
  /// A tuner sharing \p Session (and therefore its kernel cache) with
  /// other clients — the serving-layer configuration.
  explicit Tuner(CompilerSession &Session);

  Tuner(const Tuner &) = delete;
  Tuner &operator=(const Tuner &) = delete;

  /// Enumerates, prunes, compiles (concurrently, through the session),
  /// and times every candidate of \p Spec on \p Machine.
  ///
  /// The tuner owns one TaskRegistry per Spec.KernelName, created by the
  /// first tune() of that kernel and reused afterwards — the registry's
  /// identity is part of every cache key, so this is what lets repeated or
  /// overlapping sweeps hit the kernel cache and the cost cache instead of
  /// recompiling. Specs sharing a KernelName must therefore register the
  /// same task tree (true by construction for the KernelSpaces factories).
  TuneResult tune(const KernelSearchSpec &Spec, const MachineModel &Machine,
                  const SimConfig &Sim = SimConfig());

  /// Anytime search under \p Budget: spends the evaluation budget on
  /// shrinking rounds of batched evaluations (successive halving), seeding
  /// each round with single-axis mutations of the elite points found so
  /// far plus fresh uniform samples, with a visited-set keyed on
  /// TuningPoint fingerprints so no point is timed twice. The space is
  /// never materialized, so 10^4..10^6-point spaces are searched in memory
  /// proportional to the points actually visited.
  ///
  /// Deterministic by construction: the PRNG is seeded from the spec's
  /// content (kernel name + axes), batches merge positionally, and round
  /// decisions depend only on simulated TFLOP/s — so the best point and
  /// the whole visit sequence are identical at any worker count, on repeat
  /// runs, and regardless of cost-cache warmth. A wall-clock budget
  /// truncates at round boundaries only, making a time-limited run a
  /// prefix of the unlimited one.
  ///
  /// Small spaces are swept exhaustively instead (no sampling noise where
  /// brute force is affordable): when the space has at most
  /// SmallSpaceThreshold points and the budget covers every feasible one.
  TuneResult tuneBudgeted(const KernelSearchSpec &Spec,
                          const MachineModel &Machine,
                          const TuneBudget &Budget,
                          const SimConfig &Sim = SimConfig());

  /// tune() refuses spaces with more candidates than this, returning
  /// TuneResult::Error instead of materializing the product (the analogue
  /// of the simulator's event-slot cap): exhaustive sweeps over 10^5+
  /// points are almost always a mistake — use tuneBudgeted().
  size_t ExhaustiveCandidateCap = 1 << 16;

  /// Spaces at most this big fall back from tuneBudgeted to an exhaustive
  /// sweep when the budget covers them (see tuneBudgeted).
  size_t SmallSpaceThreshold = 256;

  CompilerSession &session() { return *Session; }

  /// Entries in the content-keyed cost cache (kernel identity + simulator
  /// parameters -> evaluation outcome).
  size_t costCacheSize() const;
  void clearCostCache();

private:
  /// Memoized outcome of evaluating one (compile input, sim config) key.
  struct CachedEval {
    CandidateStatus Status = CandidateStatus::Evaluated;
    std::string Detail;
    double TFlops = 0.0;
    int64_t SharedBytes = 0;
    double SimulateMicros = 0.0;
    std::shared_ptr<const CompiledKernel> Kernel;
    /// Failure with a transient Diagnostic code: reported in the row but
    /// never inserted into the cost cache (see Diagnostic::isTransient).
    bool Transient = false;
  };

  /// The shared registry for \p Spec's kernel family (created on first
  /// use).
  TaskRegistry &registryFor(const KernelSearchSpec &Spec);

  /// Compiles and times \p Points (one batched pass over the session's
  /// worker pool, cost-cache consulted per point), returning one
  /// positional row per point and accumulating effort into \p Stats.
  /// \p Options bounds every compile and timing run in the batch.
  std::vector<CandidateResult>
  evaluateBatch(const KernelSearchSpec &Spec, TaskRegistry &Registry,
                const MachineModel &Machine, const SimConfig &Sim,
                const std::string &SimKey, std::vector<TuningPoint> Points,
                const CompileOptions &Options, TuneStats &Stats);

  std::unique_ptr<CompilerSession> OwnedSession; ///< Only for Tuner().
  CompilerSession *Session = nullptr;
  mutable std::mutex CostMutex;
  std::map<std::string, CachedEval> CostCache;
  std::map<std::string, std::unique_ptr<TaskRegistry>> Registries;
};

} // namespace cypress

#endif // CYPRESS_AUTOTUNE_TUNER_H
