//===- CpuLowering.cpp - Scalar CPU lowering of the emitted kernel --------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential backstop for the CUDA emitter (see CpuLowering.h). The
/// interpreter deliberately mirrors the *structure* the emitter prints —
/// per-agent instruction streams advanced in order, event waits resolved
/// against completed (event, warpgroup, iteration) keys — rather than
/// reusing the functional executor's program-order walk, so that a
/// scheduling bug in warp specialization or pipelining shows up as either
/// a deadlock or a wrong answer instead of being masked by shared code.
///
/// The agent-ownership and precondition-readiness rules are kept in lock
/// step with the timing simulator's BlockTimer (src/sim/Simulator.cpp):
///
///  * agent 0 is the DMA warp, agents 1..W the compute warpgroups, and an
///    op belongs to the DMA agent iff the grid is warp-specialized and the
///    warp-spec pass tagged it;
///  * ops with a warpgroup dimension run once per warpgroup (DMA-owned
///    instances all land on agent 0, with their per-warpgroup
///    preconditions still checked individually);
///  * precondition keys are the consumer's iteration coordinates at the
///    producer's loop depth; pipeline lag subtracts from the innermost
///    coordinate and is vacuously satisfied for the first LAG iterations;
///  * a `for` op's completion event becomes available when every body
///    instance of that loop instance has executed;
///  * `for` preconditions gate through their body instances' edges (both
///    agents enter the loop header freely), matching the simulator.
///
/// Data effects reuse only the module-level slice resolution; storage
/// management and the copy/call element loops are written independently of
/// FunctionalExec so the two executors do not share bugs.
///
//===----------------------------------------------------------------------===//

#include "backend/CpuLowering.h"

#include "sim/TensorView.h"
#include "support/Format.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>

using namespace cypress;

namespace {

/// Warpgroup replication count of an op (1 when it has no warpgroup dim).
int64_t warpgroupExtent(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return Dim.Extent;
  return 1;
}

bool hasWarpgroupDim(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return true;
  return false;
}

/// One precondition of one instance with the warpgroup index expression
/// already evaluated (it depends only on the instance's environment).
struct PrecondDesc {
  EventId Event = InvalidEventId;
  int64_t IterLag = 0;
  int32_t WantWg = -1; ///< Concrete warpgroup index; -1 when not indexed.
  bool Broadcast = false;
};

/// One executable op instance in an agent's stream.
struct Instance {
  const Operation *Op = nullptr;
  int32_t Wg = -1; ///< Warpgroup replica; -1 for unreplicated ops.
  std::vector<int64_t> Coords;   ///< Enclosing sequential-loop iterations.
  std::vector<uint32_t> Loops;   ///< Enclosing loop-instance slots.
  std::vector<PrecondDesc> Preconds;
  ScalarEnv Env; ///< Loop vars and processor indices at expansion.
};

/// One instantiation of a `for` op: counts outstanding body instances so
/// the loop's completion event can be registered when the last finishes.
struct LoopInst {
  int64_t Remaining = 0;
  EventId Event = InvalidEventId;
};

/// Static per-event facts, mirroring BlockTimer's EventRec.
struct EventInfo {
  bool Known = false;        ///< Produced inside the current grid body.
  bool WgReplicated = false; ///< Producer has a warpgroup dimension.
  uint32_t Depth = 0;        ///< Producer's enclosing sequential-loop count.
};

/// Storage key of one tensor instance: the processor indices named by the
/// tensor's alloc context (at most one per machine level).
using StorageKey = std::vector<int64_t>;

class CpuLowered {
public:
  CpuLowered(const IRModule &Module, const LeafRegistry &Leaves,
             const std::vector<TensorData *> &EntryBuffers,
             const Cancellation *Cancel)
      : Module(Module), Leaves(Leaves), EntryBuffers(EntryBuffers) {
    if (Cancel)
      Check = CancelCheck(*Cancel);
  }

  ErrorOr<LoweredStats> run() {
    AllocContext.assign(Module.tensors().size(), nullptr);
    Storage.resize(Module.tensors().size());
    walkOps(Module.root(), [&](const Operation &Op) {
      if (Op.Kind == OpKind::Alloc)
        AllocContext[Op.AllocTensor] = &Op.VecContext;
    });
    ScalarEnv Env;
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = 0;
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    execHostBlock(Module.root(), Env);
    if (Failure)
      return *Failure;
    return Stats;
  }

private:
  //===--- Host-level interpretation --------------------------------------===//

  /// Host-level ops run in program order (they model the launch sequence);
  /// each block-level pfor iteration dispatches to the agent machine.
  void execHostBlock(const IRBlock &Block, ScalarEnv Env) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Failure)
        return;
      switch (Op->Kind) {
      case OpKind::MakePart:
        break;
      case OpKind::Alloc:
        execAlloc(*Op, Env);
        break;
      case OpKind::For: {
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          execHostBlock(Op->Body, Env);
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::PFor: {
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          if (Op->PForProc == Processor::Block) {
            Env.ProcIndices[Processor::Block] = K;
            runGridBlock(*Op, Env);
            ++Stats.Blocks;
          } else {
            execHostBlock(Op->Body, Env);
          }
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::Copy:
        forEachProcInstance(Op->VecContext, Env,
                            [&](const ScalarEnv &E) { execCopy(*Op, E); });
        break;
      case OpKind::Call:
        forEachProcInstance(Op->VecContext, Env,
                            [&](const ScalarEnv &E) { execCall(*Op, E); });
        break;
      }
    }
  }

  //===--- Agent machine for one block ------------------------------------===//

  void runGridBlock(const Operation &Grid, const ScalarEnv &BlockEnv) {
    // Allocation prologue: the emitted kernel declares every tile and
    // register fragment up front (smem plan + prologue decls), so storage
    // must exist — zeroed — before any agent issues its first instruction.
    // Running Allocs as scheduled instructions instead could let the DMA
    // agent fill a pipelined tile before the owning agent's Alloc wiped it
    // (the first PIPE iterations have vacuous lag preconditions).
    walkOps(Grid.Body, [&](const Operation &Op) {
      if (Op.Kind == OpKind::Alloc)
        execAlloc(Op, BlockEnv);
    });

    int64_t Wgs = 1;
    walkOps(Grid.Body, [&](const Operation &Op) {
      Wgs = std::max(Wgs, warpgroupExtent(Op));
    });
    NumAgents = 1 + static_cast<size_t>(Wgs);
    Stats.Agents = std::max<int64_t>(Stats.Agents,
                                     static_cast<int64_t>(NumAgents));

    Events.assign(Module.numEvents(), EventInfo());
    Done.clear();
    Loops.clear();
    Streams.assign(NumAgents, {});
    Cursor.assign(NumAgents, 0);
    Insts.clear();
    GridWarpSpec = Grid.WarpSpecialize;

    walkOps(Grid.Body, [&](const Operation &Op) {
      if (Op.Result == InvalidEventId)
        return;
      Events[Op.Result].Known = true;
      Events[Op.Result].WgReplicated = hasWarpgroupDim(Op);
    });

    CoordStack.clear();
    LoopPath.clear();
    expandBlock(Grid.Body, BlockEnv);
    if (Failure)
      return;
    schedule();
  }

  /// Unrolls the block body into per-agent instruction streams, evaluating
  /// everything iteration-dependent (loop variables, warpgroup index
  /// expressions) at unroll time.
  void expandBlock(const IRBlock &Block, ScalarEnv Env) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Failure)
        return;
      switch (Op->Kind) {
      case OpKind::Alloc:
      case OpKind::MakePart:
        break; // Prologue territory.
      case OpKind::PFor:
        fail("nested parallel loops must be flattened before lowering");
        return;
      case OpKind::For: {
        if (Op->Result != InvalidEventId)
          Events[Op->Result].Depth =
              static_cast<uint32_t>(CoordStack.size());
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        uint32_t LI = static_cast<uint32_t>(Loops.size());
        Loops.push_back({0, Op->Result});
        LoopPath.push_back(LI);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          CoordStack.push_back(K);
          expandBlock(Op->Body, Env);
          CoordStack.pop_back();
        }
        Env.LoopVars.erase(Op->LoopVar);
        LoopPath.pop_back();
        break;
      }
      case OpKind::Copy:
      case OpKind::Call: {
        if (Check.enabled() && Check.shouldStop()) {
          fail(Check.diagnostic("lowered-execution unroll"));
          return;
        }
        if (Op->Result != InvalidEventId)
          Events[Op->Result].Depth =
              static_cast<uint32_t>(CoordStack.size());
        bool Dma = GridWarpSpec && Op->DmaAgent;
        if (hasWarpgroupDim(*Op)) {
          for (int64_t Wg = 0; Wg < warpgroupExtent(*Op); ++Wg)
            pushInstance(*Op, Env, Wg,
                         Dma ? 0 : 1 + static_cast<size_t>(Wg));
        } else {
          pushInstance(*Op, Env, -1, Dma ? 0 : 1);
        }
        break;
      }
      }
    }
  }

  void pushInstance(const Operation &Op, const ScalarEnv &Env, int64_t Wg,
                    size_t Agent) {
    Instance Inst;
    Inst.Op = &Op;
    Inst.Wg = static_cast<int32_t>(Wg);
    Inst.Coords = CoordStack;
    Inst.Loops = LoopPath;
    Inst.Env = Env;
    Inst.Env.ProcIndices[Processor::Warpgroup] = std::max<int64_t>(Wg, 0);

    for (uint32_t LI : LoopPath)
      ++Loops[LI].Remaining;

    for (const EventRef &Ref : Op.Preconds) {
      PrecondDesc P;
      P.Event = Ref.Event;
      P.IterLag = Ref.IterLag;
      if (Ref.Event < Events.size() && Events[Ref.Event].Known) {
        const EventType &Type = Module.event(Ref.Event).Type;
        for (size_t D = 0; D < Ref.Indices.size() && D < Type.Dims.size();
             ++D) {
          if (Type.Dims[D].Proc == Processor::Warpgroup) {
            if (Ref.Indices[D].isBroadcast())
              P.Broadcast = true;
            else
              P.WantWg = static_cast<int32_t>(
                  Ref.Indices[D].Index.evaluate(Inst.Env));
          } else if (Ref.Indices[D].isBroadcast()) {
            P.Broadcast = true;
          }
        }
      }
      Inst.Preconds.push_back(P);
    }

    Insts.push_back(std::move(Inst));
    Streams[Agent].push_back(static_cast<uint32_t>(Insts.size() - 1));
  }

  //===--- Scheduling ------------------------------------------------------===//

  /// Completed-event key: (event, warpgroup slot, producer-depth coords).
  using DoneKey = std::tuple<EventId, int32_t, std::vector<int64_t>>;

  /// True when the (event, wg, prefix-with-lag) instance has completed.
  bool isDone(const EventInfo &Rec, EventId Event, int32_t Wg,
              const std::vector<int64_t> &Coords, uint32_t KeyLen,
              int64_t Last) const {
    // Producers register keys at their own depth; a shorter consumer
    // prefix can never match (same rule as the simulator).
    if (KeyLen != Rec.Depth)
      return false;
    std::vector<int64_t> Key(Coords.begin(), Coords.begin() + KeyLen);
    if (KeyLen)
      Key[KeyLen - 1] = Last;
    return Done.count(DoneKey(Event, Wg, std::move(Key))) != 0;
  }

  bool precondsReady(const Instance &Inst) const {
    for (const PrecondDesc &P : Inst.Preconds) {
      if (P.Event >= Events.size())
        continue; // Reference outside the module: ready.
      const EventInfo &Rec = Events[P.Event];
      if (!Rec.Known)
        continue; // Host-level event: completed before launch.

      uint32_t KeyLen = std::min<uint32_t>(
          static_cast<uint32_t>(Inst.Coords.size()), Rec.Depth);
      int64_t Last = KeyLen ? Inst.Coords[KeyLen - 1] : 0;
      if (P.IterLag > 0) {
        if (KeyLen == 0)
          continue; // Lag at depth zero: vacuously satisfied.
        Last -= P.IterLag;
        if (Last < 0)
          continue; // First PIPE iterations: buffer not yet reused.
      }

      if (Rec.WgReplicated) {
        if (P.WantWg >= 0 && !P.Broadcast) {
          if (!isDone(Rec, P.Event, P.WantWg, Inst.Coords, KeyLen, Last))
            return false;
        } else {
          // Broadcast: every warpgroup instance must have completed.
          for (int64_t Wg = 0; Wg + 1 < static_cast<int64_t>(NumAgents);
               ++Wg)
            if (!isDone(Rec, P.Event, static_cast<int32_t>(Wg), Inst.Coords,
                        KeyLen, Last))
              return false;
        }
      } else {
        if (!isDone(Rec, P.Event, -1, Inst.Coords, KeyLen, Last))
          return false;
      }
    }
    return true;
  }

  /// Round-robin over agents: each runs until its next instruction blocks
  /// on an unmet event. A full round with no progress is a deadlock — the
  /// compiled schedule could not execute on hardware either. The cancel
  /// checkpoint sits after the deadlock check: a genuinely stuck schedule
  /// always reports the deadlock diagnostic, never a deadline.
  void schedule() {
    while (true) {
      bool Progress = false;
      bool Pending = false;
      for (size_t Agent = 0; Agent < NumAgents && !Failure; ++Agent) {
        while (Cursor[Agent] < Streams[Agent].size()) {
          const Instance &Inst = Insts[Streams[Agent][Cursor[Agent]]];
          if (!precondsReady(Inst)) {
            ++Stats.Stalls;
            break;
          }
          executeInstance(Inst);
          ++Cursor[Agent];
          Progress = true;
        }
        Pending = Pending || Cursor[Agent] < Streams[Agent].size();
      }
      if (Failure || !Pending)
        return;
      if (Progress) {
        if (Check.enabled() && Check.shouldStop()) {
          fail(Check.diagnostic("lowered-execution agent schedule"));
          return;
        }
        continue;
      }
      for (size_t Agent = 0; Agent < NumAgents; ++Agent) {
        if (Cursor[Agent] >= Streams[Agent].size())
          continue;
        const Instance &Inst = Insts[Streams[Agent][Cursor[Agent]]];
        fail(formatString(
            "lowered-execution deadlock: agent %zu blocked at %s "
            "(event producer missing or never scheduled)",
            Agent,
            Inst.Op->Kind == OpKind::Copy
                ? "copy"
                : Inst.Op->Callee.c_str()));
        return;
      }
    }
  }

  void executeInstance(const Instance &Inst) {
    const Operation &Op = *Inst.Op;
    ++Stats.Instances;

    // Enumerate the sub-warpgroup processor dims (warps/threads); the
    // warpgroup dim, when present, is pinned to this instance's replica.
    forEachProcInstance(Op.VecContext, Inst.Env,
                        [&](const ScalarEnv &E) {
                          if (Op.Kind == OpKind::Copy)
                            execCopy(Op, E);
                          else
                            execCall(Op, E);
                        },
                        /*PinnedWg=*/Inst.Wg);
    if (Failure)
      return;

    if (Op.Result != InvalidEventId) {
      uint32_t KeyLen = static_cast<uint32_t>(Inst.Coords.size());
      std::vector<int64_t> Key(Inst.Coords.begin(),
                               Inst.Coords.begin() + KeyLen);
      Done.insert(DoneKey(Op.Result, Inst.Wg, std::move(Key)));
    }

    // Credit completion to every enclosing loop instance; the last body
    // instance of a loop instance releases the loop's completion event at
    // the loop's own depth (warpgroup slot -1).
    for (uint32_t D = 0; D < Inst.Loops.size(); ++D) {
      LoopInst &Loop = Loops[Inst.Loops[D]];
      if (--Loop.Remaining == 0 && Loop.Event != InvalidEventId) {
        std::vector<int64_t> Key(Inst.Coords.begin(),
                                 Inst.Coords.begin() + D);
        Done.insert(DoneKey(Loop.Event, -1, std::move(Key)));
      }
    }
  }

  //===--- Data effects ----------------------------------------------------===//

  /// Odometer over \p Dims (innermost fastest). When \p PinnedWg >= 0 the
  /// warpgroup dimension is held at that replica instead of enumerated.
  template <typename Fn>
  void forEachProcInstance(const InlineVector<EventDim, 4> &Dims,
                           const ScalarEnv &Env, Fn &&Body,
                           int64_t PinnedWg = -1) {
    ScalarEnv InstEnv = Env;
    std::vector<int64_t> Counter(Dims.size(), 0);
    for (const EventDim &Dim : Dims)
      if (Dim.Extent <= 0)
        return;
    while (true) {
      for (size_t D = 0; D < Dims.size(); ++D)
        InstEnv.ProcIndices[Dims[D].Proc] =
            (PinnedWg >= 0 && Dims[D].Proc == Processor::Warpgroup)
                ? PinnedWg
                : Counter[D];
      Body(InstEnv);
      size_t D = Dims.size();
      while (D-- > 0) {
        if (PinnedWg >= 0 && Dims[D].Proc == Processor::Warpgroup)
          continue; // Pinned: never advances.
        if (++Counter[D] < Dims[D].Extent)
          break;
        Counter[D] = 0;
      }
      if (D == ~size_t(0))
        return;
    }
  }

  StorageKey storageKey(TensorId Tensor, const ScalarEnv &Env) {
    StorageKey Key;
    const InlineVector<EventDim, 4> *Ctx = AllocContext[Tensor];
    if (!Ctx)
      return Key;
    for (const EventDim &Dim : *Ctx)
      Key.push_back(Env.ProcIndices.at(Dim.Proc));
    return Key;
  }

  TensorData &storage(TensorId Tensor, const ScalarEnv &Env, int64_t Buf) {
    const IRTensor &T = Module.tensor(Tensor);
    if (T.IsEntryArg) {
      for (size_t I = 0; I < Module.entryArgs().size(); ++I)
        if (Module.entryArgs()[I] == Tensor)
          return *EntryBuffers[I];
      cypressUnreachable("entry arg not found");
    }
    std::vector<TensorData> &Buffers =
        Storage[Tensor][storageKey(Tensor, Env)];
    if (Buffers.empty())
      Buffers.assign(
          static_cast<size_t>(std::max<int64_t>(T.PipelineDepth, 1)),
          TensorData(T.Type));
    assert(Buf >= 0 && Buf < static_cast<int64_t>(Buffers.size()) &&
           "pipeline buffer index out of range");
    return Buffers[static_cast<size_t>(Buf)];
  }

  void execAlloc(const Operation &Op, const ScalarEnv &Env) {
    const IRTensor &T = Module.tensor(Op.AllocTensor);
    forEachProcInstance(Op.VecContext, Env, [&](const ScalarEnv &E) {
      Storage[Op.AllocTensor][storageKey(Op.AllocTensor, E)].assign(
          static_cast<size_t>(std::max<int64_t>(T.PipelineDepth, 1)),
          TensorData(T.Type));
    });
  }

  void execCopy(const Operation &Op, const ScalarEnv &Env) {
    if (Failure)
      return;
    SubTensor SrcMap = Module.resolveSlice(Op.CopySrc, Env);
    SubTensor DstMap = Module.resolveSlice(Op.CopyDst, Env);
    TensorData &Src = storage(Op.CopySrc.Tensor, Env,
                              Op.CopySrc.BufferIndex.evaluate(Env));
    TensorData &Dst = storage(Op.CopyDst.Tensor, Env,
                              Op.CopyDst.BufferIndex.evaluate(Env));
    int64_t Count = SrcMap.shape().numElements();
    if (Count != DstMap.shape().numElements()) {
      fail(formatString("lowered copy size mismatch (%lld vs %lld)",
                        static_cast<long long>(Count),
                        static_cast<long long>(
                            DstMap.shape().numElements())));
      return;
    }
    for (int64_t I = 0; I < Count; ++I)
      Dst.set(DstMap.mapToParent(DstMap.shape().delinearize(I)),
              Src.at(SrcMap.mapToParent(SrcMap.shape().delinearize(I))));
  }

  void execCall(const Operation &Op, const ScalarEnv &Env) {
    if (Failure)
      return;
    if (!Leaves.has(Op.Callee)) {
      fail(formatString("no scalar reference implementation for leaf %s",
                        Op.Callee.c_str()));
      return;
    }
    std::vector<TensorView> Views;
    for (const TensorSlice &Slice : Op.Args) {
      SubTensor Map = Module.resolveSlice(Slice, Env);
      TensorData &Data =
          storage(Slice.Tensor, Env, Slice.BufferIndex.evaluate(Env));
      Views.emplace_back(Data, std::move(Map));
    }
    std::vector<int64_t> Scalars;
    for (const ScalarExpr &Expr : Op.ScalarArgs)
      Scalars.push_back(Expr.evaluate(Env));
    Leaves.lookup(Op.Callee)(Views, Scalars);
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  void fail(Diagnostic Diag) {
    if (!Failure)
      Failure = std::move(Diag);
  }

  const IRModule &Module;
  const LeafRegistry &Leaves;
  const std::vector<TensorData *> &EntryBuffers;
  CancelCheck Check; ///< Inert (enabled() == false) without a Cancellation.
  LoweredStats Stats;
  std::optional<Diagnostic> Failure;

  // Storage (lives across blocks; blocks run sequentially).
  std::vector<const InlineVector<EventDim, 4> *> AllocContext;
  std::vector<std::map<StorageKey, std::vector<TensorData>>> Storage;

  // Per-grid agent machine state.
  size_t NumAgents = 0;
  bool GridWarpSpec = false;
  std::vector<EventInfo> Events;
  std::set<DoneKey> Done;
  std::vector<LoopInst> Loops;
  std::vector<Instance> Insts;
  std::vector<std::vector<uint32_t>> Streams;
  std::vector<size_t> Cursor;
  std::vector<int64_t> CoordStack;
  std::vector<uint32_t> LoopPath;
};

} // namespace

ErrorOr<LoweredStats>
cypress::runCpuLowered(const IRModule &Module, const LeafRegistry &Leaves,
                       const std::vector<TensorData *> &EntryBuffers,
                       const Cancellation *Cancel) {
  if (EntryBuffers.size() != Module.entryArgs().size())
    return Diagnostic(formatString(
        "lowered execution needs one buffer per entry argument "
        "(%zu given, %zu expected)",
        EntryBuffers.size(), Module.entryArgs().size()));
  return CpuLowered(Module, Leaves, EntryBuffers, Cancel).run();
}
