//===- CpuLowering.h - Scalar CPU lowering of the emitted kernel ----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scalar CPU lowering of the kernel body the CUDA emitter prints: a
/// structured walker over the same post-pipeline IR that executes copies
/// element-wise, calls the LeafRegistry scalar reference leaves, and
/// resolves the warp-specialized agent split and its barriers sequentially.
///
/// Where `runFunctional` (src/sim) ignores agents entirely and executes the
/// block body in program order, this lowering reproduces the emitted
/// kernel's control structure: one DMA agent plus one agent per compute
/// warpgroup, each advancing through its own instruction stream in order
/// and blocking on unresolved event preconditions exactly as the timing
/// simulator's BlockTimer does (same ownership rule, same precondition
/// keying, same pipeline-lag vacuity, same loop-completion events). Running
/// both executors over shared inputs and comparing outputs is the repo's
/// offline differential check that the emitted schedule computes the same
/// function as the task program (tests/BackendExecTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_BACKEND_CPULOWERING_H
#define CYPRESS_BACKEND_CPULOWERING_H

#include "ir/IR.h"
#include "sim/LeafRegistry.h"
#include "support/Cancel.h"
#include "support/Error.h"
#include "tensor/TensorData.h"

#include <vector>

namespace cypress {

/// What one lowered run did: enough to assert the agent machinery actually
/// engaged (a warp-specialized kernel that never stalled an agent never
/// exercised a barrier) and to report scale in bench output.
struct LoweredStats {
  int64_t Blocks = 0;    ///< Grid iterations executed.
  int64_t Agents = 0;    ///< Widest agent count of any grid (1 + warpgroups).
  int64_t Instances = 0; ///< Op instances executed across all agents.
  int64_t Stalls = 0;    ///< Times an agent blocked on an unmet event.
};

/// Executes \p Module the way the emitted CUDA kernel would run, writing
/// results into \p EntryBuffers (one per entry argument, shapes matching
/// the compile-time types). Fails with a diagnostic on a schedule deadlock
/// (an event wait no agent can satisfy — i.e. the compiler emitted an
/// unexecutable kernel), an unregistered leaf, or a malformed copy.
/// \p Cancel (when active) is polled at unroll and scheduler-round
/// boundaries; an expired deadline or fired token stops the run with the
/// checkpoint's structured diagnostic instead of letting a stalled
/// schedule spin forever. A genuinely stuck schedule still surfaces as
/// the deadlock diagnostic — progress detection runs before the
/// checkpoint, so an injected stall never masquerades as a deadline.
ErrorOr<LoweredStats>
runCpuLowered(const IRModule &Module, const LeafRegistry &Leaves,
              const std::vector<TensorData *> &EntryBuffers,
              const Cancellation *Cancel = nullptr);

} // namespace cypress

#endif // CYPRESS_BACKEND_CPULOWERING_H
