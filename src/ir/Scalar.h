//===- Scalar.h - Symbolic scalar expressions ------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer expressions for the Cypress IR. Loop induction variables
/// and processor indices (the warp/thread ids substituted by vectorization,
/// Section 4.2.2) stay symbolic through the pass pipeline; everything else
/// constant-folds on construction. Expressions evaluate to concrete values
/// during simulation/codegen once an environment binds every variable.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_IR_SCALAR_H
#define CYPRESS_IR_SCALAR_H

#include "machine/Machine.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace cypress {

/// Identifies a loop induction variable.
using LoopVarId = uint32_t;

/// Environment binding loop variables and processor indices to values.
struct ScalarEnv {
  std::map<LoopVarId, int64_t> LoopVars;
  std::map<Processor, int64_t> ProcIndices;

  int64_t loopVar(LoopVarId Id) const {
    auto It = LoopVars.find(Id);
    assert(It != LoopVars.end() && "unbound loop variable");
    return It->second;
  }

  int64_t procIndex(Processor Proc) const {
    auto It = ProcIndices.find(Proc);
    assert(It != ProcIndices.end() && "unbound processor index");
    return It->second;
  }
};

/// An immutable symbolic integer expression with value semantics.
class ScalarExpr {
public:
  enum class Kind : uint8_t {
    Constant,
    LoopVar,
    ProcIndex,
    Add,
    Sub,
    Mul,
    FloorDiv,
    Mod,
  };

  /// Default-constructs the constant 0.
  ScalarExpr() : ScalarExpr(0) {}
  /*implicit*/ ScalarExpr(int64_t Value);

  static ScalarExpr constant(int64_t Value) { return ScalarExpr(Value); }
  static ScalarExpr loopVar(LoopVarId Id, std::string Name);
  static ScalarExpr procIndex(Processor Proc);

  friend ScalarExpr operator+(const ScalarExpr &L, const ScalarExpr &R);
  friend ScalarExpr operator-(const ScalarExpr &L, const ScalarExpr &R);
  friend ScalarExpr operator*(const ScalarExpr &L, const ScalarExpr &R);
  /// Floor division (C-style for non-negative operands).
  ScalarExpr floorDiv(const ScalarExpr &Divisor) const;
  ScalarExpr mod(const ScalarExpr &Divisor) const;

  Kind kind() const { return TheKind; }
  bool isConstant() const { return TheKind == Kind::Constant; }
  /// The constant value; asserts isConstant().
  int64_t constantValue() const {
    assert(isConstant() && "expression is not constant");
    return Value;
  }

  /// Evaluates with all variables bound by \p Env.
  int64_t evaluate(const ScalarEnv &Env) const;

  /// Substitutes loop variable \p Id with \p Replacement everywhere.
  /// Used by vectorization to replace pfor induction variables with
  /// processor indices, and by pipelining for modular rotation.
  ScalarExpr substituteLoopVar(LoopVarId Id,
                               const ScalarExpr &Replacement) const;

  /// True if the expression mentions loop variable \p Id.
  bool usesLoopVar(LoopVarId Id) const;
  /// True if the expression mentions any processor index.
  bool usesProcIndex() const;

  std::string toString() const;

  /// Structural equality.
  bool equals(const ScalarExpr &Other) const;

private:
  struct Node;
  explicit ScalarExpr(std::shared_ptr<const Node> N);
  static ScalarExpr binary(Kind K, const ScalarExpr &L, const ScalarExpr &R);

  Kind TheKind = Kind::Constant;
  int64_t Value = 0;                  // Constant payload.
  LoopVarId VarId = 0;                // LoopVar payload.
  std::string VarName;                // LoopVar payload.
  Processor Proc = Processor::Thread; // ProcIndex payload.
  std::shared_ptr<const ScalarExpr> Lhs, Rhs; // Binary payload.
};

} // namespace cypress

#endif // CYPRESS_IR_SCALAR_H
