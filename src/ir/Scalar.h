//===- Scalar.h - Symbolic scalar expressions ------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer expressions for the Cypress IR. Loop induction variables
/// and processor indices (the warp/thread ids substituted by vectorization,
/// Section 4.2.2) stay symbolic through the pass pipeline; everything else
/// constant-folds on construction. Expressions evaluate to concrete values
/// during simulation/codegen once an environment binds every variable.
///
/// Expressions are hash-consed: construction dedupes into an immortal node
/// pool, so a ScalarExpr is one pointer, copies are free, and structural
/// equality is (almost always) a pointer comparison. Nodes live until
/// process exit — the pool never shrinks — which makes expressions safe to
/// move across threads (compiler worker pools hand modules to other
/// threads) at the cost of retaining every *distinct* expression ever
/// built; the distinct-expression population of a compile is tiny and
/// recurs across tuner sweeps, so the pool plateaus in practice.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_IR_SCALAR_H
#define CYPRESS_IR_SCALAR_H

#include "machine/Machine.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>

namespace cypress {

/// Identifies a loop induction variable.
using LoopVarId = uint32_t;

/// Environment binding loop variables and processor indices to values.
struct ScalarEnv {
  std::map<LoopVarId, int64_t> LoopVars;
  std::map<Processor, int64_t> ProcIndices;

  int64_t loopVar(LoopVarId Id) const {
    auto It = LoopVars.find(Id);
    assert(It != LoopVars.end() && "unbound loop variable");
    return It->second;
  }

  int64_t procIndex(Processor Proc) const {
    auto It = ProcIndices.find(Proc);
    assert(It != ProcIndices.end() && "unbound processor index");
    return It->second;
  }
};

namespace detail {
struct ScalarNode;
}

/// An immutable symbolic integer expression with value semantics. One
/// interned-node pointer wide: trivially copyable and cheap to store in the
/// slice/event structures that the compiler copies constantly.
class ScalarExpr {
public:
  enum class Kind : uint8_t {
    Constant,
    LoopVar,
    ProcIndex,
    Add,
    Sub,
    Mul,
    FloorDiv,
    Mod,
  };

  /// Default-constructs the constant 0.
  ScalarExpr();
  /*implicit*/ ScalarExpr(int64_t Value);

  static ScalarExpr constant(int64_t Value) { return ScalarExpr(Value); }
  static ScalarExpr loopVar(LoopVarId Id, std::string Name);
  static ScalarExpr procIndex(Processor Proc);

  friend ScalarExpr operator+(const ScalarExpr &L, const ScalarExpr &R);
  friend ScalarExpr operator-(const ScalarExpr &L, const ScalarExpr &R);
  friend ScalarExpr operator*(const ScalarExpr &L, const ScalarExpr &R);
  /// Floor division (C-style for non-negative operands).
  ScalarExpr floorDiv(const ScalarExpr &Divisor) const;
  ScalarExpr mod(const ScalarExpr &Divisor) const;

  Kind kind() const;
  bool isConstant() const;
  /// The constant value; asserts isConstant().
  int64_t constantValue() const;

  /// Evaluates with all variables bound by \p Env.
  int64_t evaluate(const ScalarEnv &Env) const;

  /// Substitutes loop variable \p Id with \p Replacement everywhere.
  /// Used by vectorization to replace pfor induction variables with
  /// processor indices, and by pipelining for modular rotation. Memoized
  /// per (node, variable, replacement) in the interner, and a no-op —
  /// returning the same handle — when the expression does not mention the
  /// variable.
  ScalarExpr substituteLoopVar(LoopVarId Id,
                               const ScalarExpr &Replacement) const;

  /// True if the expression mentions loop variable \p Id.
  bool usesLoopVar(LoopVarId Id) const;
  /// True if the expression mentions any processor index.
  bool usesProcIndex() const;

  std::string toString() const;

  /// Structural equality. Identically-constructed expressions on one thread
  /// intern to the same node, so this is usually a pointer comparison; the
  /// structural fallback covers nodes built on different threads and
  /// same-id loop variables registered under different display names.
  bool equals(const ScalarExpr &Other) const;

  /// The interned node identity. Stable for the process lifetime; equal
  /// handles imply equal expressions (the converse holds for expressions
  /// constructed identically on one thread). Exposed for tests and for
  /// hashed containers keyed on expression identity.
  const void *handle() const { return Node; }

private:
  struct FromNode {};
  ScalarExpr(FromNode, const detail::ScalarNode *Node) : Node(Node) {}
  /// Wraps an interned node (disambiguated from the int64_t constructor,
  /// for which a literal 0 would otherwise also be a null pointer match).
  static ScalarExpr wrap(const detail::ScalarNode *Node) {
    return ScalarExpr(FromNode{}, Node);
  }
  static ScalarExpr binary(Kind K, const ScalarExpr &L, const ScalarExpr &R);

  const detail::ScalarNode *Node;
};

namespace detail {

/// One interned expression node. Immutable after construction; child links
/// point at other interned nodes, so the whole population forms a DAG.
/// Defined in the header only so ScalarExpr's hot accessors can inline.
struct ScalarNode {
  ScalarExpr::Kind TheKind = ScalarExpr::Kind::Constant;
  Processor Proc = Processor::Thread; ///< ProcIndex payload.
  bool HasProcIndex = false;          ///< Any ProcIndex in the subtree.
  LoopVarId VarId = 0;                ///< LoopVar payload.
  int64_t Value = 0;                  ///< Constant payload.
  const ScalarNode *Lhs = nullptr;    ///< Binary payload.
  const ScalarNode *Rhs = nullptr;    ///< Binary payload.
  /// Bloom filter over (VarId % 64) of every loop variable in the subtree;
  /// zero means provably loop-variable-free.
  uint64_t LoopVarMask = 0;
  std::string VarName;                ///< LoopVar payload.
};

/// Structural equality with pointer short-circuit at every level (loop
/// variables compare by id, ignoring display names, exactly as the
/// pre-interning implementation did).
bool scalarNodesEqual(const ScalarNode *A, const ScalarNode *B);

} // namespace detail

inline ScalarExpr::Kind ScalarExpr::kind() const { return Node->TheKind; }

inline bool ScalarExpr::isConstant() const {
  return Node->TheKind == Kind::Constant;
}

inline int64_t ScalarExpr::constantValue() const {
  assert(isConstant() && "expression is not constant");
  return Node->Value;
}

inline bool ScalarExpr::usesProcIndex() const { return Node->HasProcIndex; }

inline bool ScalarExpr::equals(const ScalarExpr &Other) const {
  return Node == Other.Node || detail::scalarNodesEqual(Node, Other.Node);
}

} // namespace cypress

#endif // CYPRESS_IR_SCALAR_H
