//===- Printer.cpp - Textual IR dump ---------------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules in the surface syntax used by the paper's Figure 8/9
/// worked examples, e.g.:
///
///   e5 : () = copy(CW, C1p[i]), {e2[:]}
///   e7 : () = for k in [0, 16), {e6} do ... yield e12
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "support/Format.h"

using namespace cypress;

namespace {

std::string eventTypeString(const EventType &Type) {
  if (Type.isUnit())
    return "()";
  std::vector<std::string> Parts;
  for (const EventDim &Dim : Type.Dims)
    Parts.push_back(formatString("(%lld, %s)",
                                 static_cast<long long>(Dim.Extent),
                                 processorName(Dim.Proc)));
  return "[" + joinStrings(Parts, ", ") + "]";
}

std::string eventRefString(const IRModule &Module, const EventRef &Ref) {
  std::string Result = Module.event(Ref.Event).Name;
  if (!Ref.Indices.empty()) {
    std::vector<std::string> Parts;
    for (const EventIndex &Index : Ref.Indices)
      Parts.push_back(Index.isBroadcast() ? ":" : Index.Index.toString());
    Result += "[" + joinStrings(Parts, ", ") + "]";
  }
  if (Ref.IterLag != 0)
    Result += formatString("@lag(%lld)", static_cast<long long>(Ref.IterLag));
  return Result;
}

std::string precondString(const IRModule &Module,
                          const std::vector<EventRef> &Preconds) {
  std::vector<std::string> Parts;
  for (const EventRef &Ref : Preconds)
    Parts.push_back(eventRefString(Module, Ref));
  return "{" + joinStrings(Parts, ", ") + "}";
}

std::string sliceString(const IRModule &Module, const TensorSlice &Slice) {
  std::string Result = Module.tensor(Slice.Tensor).Name;
  if (Slice.Part) {
    std::vector<std::string> Parts;
    for (const ScalarExpr &Expr : Slice.Color)
      Parts.push_back(Expr.toString());
    Result += "[" + joinStrings(Parts, ", ") + "]";
  }
  if (!Slice.BufferIndex.isConstant() ||
      Slice.BufferIndex.constantValue() != 0)
    Result += "@buf(" + Slice.BufferIndex.toString() + ")";
  return Result;
}

std::string resultString(const IRModule &Module, const Operation &Op) {
  if (Op.Result == InvalidEventId)
    return "";
  const IREvent &Ev = Module.event(Op.Result);
  return Ev.Name + " : " + eventTypeString(Ev.Type) + " = ";
}

void printOp(const IRModule &Module, const Operation &Op, unsigned Indent,
             std::string &Out);

void printBlockInto(const IRModule &Module, const IRBlock &Block,
                    unsigned Indent, std::string &Out) {
  for (const std::unique_ptr<Operation> &Op : Block.Ops)
    printOp(Module, *Op, Indent, Out);
  if (Block.Yield)
    Out += std::string(Indent, ' ') +
           "yield " + eventRefString(Module, *Block.Yield) + "\n";
}

void printOp(const IRModule &Module, const Operation &Op, unsigned Indent,
             std::string &Out) {
  std::string Pad(Indent, ' ');
  switch (Op.Kind) {
  case OpKind::Alloc: {
    const IRTensor &T = Module.tensor(Op.AllocTensor);
    Out += Pad + T.Name + " = tensor(" + T.Type.toString() + ", " +
           memoryName(T.Mem);
    if (T.PipelineDepth > 1)
      Out += formatString(", pipe=%lld", static_cast<long long>(T.PipelineDepth));
    Out += ")\n";
    break;
  }
  case OpKind::MakePart: {
    const IRPartition &P = Module.partition(Op.Part);
    Out += Pad + formatString("p%u", P.Id) + " = partition(" +
           sliceString(Module, P.Base) + ", " +
           partitionKindName(P.Spec.kind()) + ")\n";
    break;
  }
  case OpKind::Copy:
    Out += Pad + resultString(Module, Op) + "copy(" +
           sliceString(Module, Op.CopySrc) + ", " +
           sliceString(Module, Op.CopyDst) + ") on " +
           execUnitName(Op.Unit) + ", " +
           precondString(Module, Op.Preconds) + "\n";
    break;
  case OpKind::Call: {
    std::vector<std::string> Args;
    for (const TensorSlice &Slice : Op.Args)
      Args.push_back(sliceString(Module, Slice));
    for (const ScalarExpr &Expr : Op.ScalarArgs)
      Args.push_back(Expr.toString());
    Out += Pad + resultString(Module, Op) + "call(" + Op.Callee + ", " +
           joinStrings(Args, ", ") + ") on " + execUnitName(Op.Unit) + ", " +
           precondString(Module, Op.Preconds) + "\n";
    break;
  }
  case OpKind::For:
  case OpKind::PFor: {
    const char *Keyword = Op.Kind == OpKind::For ? "for" : "pfor";
    Out += Pad + resultString(Module, Op) + Keyword + " " + Op.LoopVarName +
           " in [" + Op.LoopLo.toString() + ", " + Op.LoopHi.toString() + ")";
    if (Op.Kind == OpKind::PFor)
      Out += formatString(" @%s", processorName(Op.PForProc));
    Out += ", " + precondString(Module, Op.Preconds) + " do\n";
    printBlockInto(Module, Op.Body, Indent + 2, Out);
    break;
  }
  }
}

} // namespace

std::string cypress::printBlock(const IRModule &Module, const IRBlock &Block,
                                unsigned Indent) {
  std::string Out;
  printBlockInto(Module, Block, Indent, Out);
  return Out;
}

std::string cypress::printModule(const IRModule &Module) {
  return printBlock(Module, Module.root(), 0);
}
