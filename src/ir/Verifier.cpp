//===- Verifier.cpp - IR structural well-formedness checks -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the SSA/event invariants of Section 4.1: every event used as a
/// precondition is defined by an earlier operation in scope, index counts
/// match event ranks, and slice colors match partition color-space ranks.
///
/// The verifier runs after every pipeline stage, so the success path is
/// engineered to do no allocation: defined-event tracking is a pooled
/// dense flag array with an undo stack (loop scopes roll back their inner
/// definitions instead of copying a set), copy element counts come from
/// IRModule::sliceNumElements (no Shape materialization), and diagnostic
/// strings are only built once a violation is found.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "support/Format.h"

#include <vector>

using namespace cypress;

namespace {

/// Pooled per-thread verifier scratch: the defined-event flags and the
/// definition undo stack, reused across runs.
struct VerifierScratch {
  std::vector<uint8_t> Defined; ///< By event id.
  std::vector<EventId> DefStack;
};

VerifierScratch &verifierScratch() {
  thread_local VerifierScratch Scratch;
  return Scratch;
}

class VerifierImpl {
public:
  explicit VerifierImpl(const IRModule &Module)
      : Module(Module), S(verifierScratch()) {}

  ErrorOrVoid run() {
    if (S.Defined.size() < Module.numEvents())
      S.Defined.resize(Module.numEvents());
    std::fill_n(S.Defined.begin(), Module.numEvents(), 0);
    S.DefStack.clear();
    return verifyBlock(Module.root());
  }

private:
  ErrorOrVoid verifyRef(const EventRef &Ref, const char *Where) {
    if (Ref.Event >= Module.numEvents())
      return Diagnostic(formatString("%s references unknown event", Where));
    // Lagged references point backward across loop iterations (pipelining's
    // anti-dependence edges); the producer may appear later in the body.
    if (Ref.IterLag > 0)
      return ErrorOrVoid::success();
    if (!S.Defined[Ref.Event])
      return Diagnostic(formatString(
          "%s uses event %s before its definition", Where,
          Module.event(Ref.Event).Name.c_str()));
    const EventType &Type = Module.event(Ref.Event).Type;
    if (Ref.Indices.size() != Type.Dims.size())
      return Diagnostic(formatString(
          "%s indexes event %s with %zu indices but its rank is %zu", Where,
          Module.event(Ref.Event).Name.c_str(), Ref.Indices.size(),
          Type.Dims.size()));
    return ErrorOrVoid::success();
  }

  ErrorOrVoid verifySlice(const TensorSlice &Slice, const char *Where) {
    if (Slice.Tensor >= Module.tensors().size())
      return Diagnostic(formatString("%s references unknown tensor", Where));
    if (!Slice.Part)
      return ErrorOrVoid::success();
    const IRPartition &P = Module.partition(*Slice.Part);
    if (P.Base.Tensor != Slice.Tensor)
      return Diagnostic(formatString(
          "%s slices tensor %s through a partition rooted at %s", Where,
          Module.tensor(Slice.Tensor).Name.c_str(),
          Module.tensor(P.Base.Tensor).Name.c_str()));
    if (Slice.Color.size() != P.Spec.colorSpace().rank())
      return Diagnostic(formatString(
          "%s colors partition p%u with %zu indices but its rank is %u",
          Where, P.Id, Slice.Color.size(), P.Spec.colorSpace().rank()));
    return ErrorOrVoid::success();
  }

  ErrorOrVoid verifyBlock(const IRBlock &Block) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      for (const EventRef &Ref : Op->Preconds)
        if (ErrorOrVoid Err = verifyRef(Ref, "precondition"); !Err)
          return Err;

      switch (Op->Kind) {
      case OpKind::Alloc:
        if (Op->AllocTensor >= Module.tensors().size())
          return Diagnostic("alloc references unknown tensor");
        break;
      case OpKind::MakePart:
        break;
      case OpKind::Copy: {
        if (ErrorOrVoid Err = verifySlice(Op->CopySrc, "copy source"); !Err)
          return Err;
        if (ErrorOrVoid Err = verifySlice(Op->CopyDst, "copy dest"); !Err)
          return Err;
        int64_t SrcElems = Module.sliceNumElements(Op->CopySrc);
        int64_t DstElems = Module.sliceNumElements(Op->CopyDst);
        if (SrcElems != DstElems)
          return Diagnostic(formatString(
              "copy moves %lld elements into %lld",
              static_cast<long long>(SrcElems),
              static_cast<long long>(DstElems)));
        break;
      }
      case OpKind::Call:
        if (Op->Args.size() != Op->ArgIsWritten.size())
          return Diagnostic(formatString(
              "call %s has %zu args but %zu privilege flags",
              Op->Callee.c_str(), Op->Args.size(), Op->ArgIsWritten.size()));
        for (const TensorSlice &Slice : Op->Args)
          if (ErrorOrVoid Err = verifySlice(Slice, "call argument"); !Err)
            return Err;
        break;
      case OpKind::For:
      case OpKind::PFor: {
        // Loop bodies may reference events defined outside plus their own;
        // definitions inside do not escape except via the loop's own
        // result. Mark the undo point, verify the body, then roll inner
        // definitions back.
        size_t Mark = S.DefStack.size();
        if (ErrorOrVoid Err = verifyBlock(Op->Body); !Err)
          return Err;
        if (Op->Body.Yield)
          if (ErrorOrVoid Err = verifyRef(*Op->Body.Yield, "yield"); !Err)
            return Err;
        while (S.DefStack.size() > Mark) {
          S.Defined[S.DefStack.back()] = 0;
          S.DefStack.pop_back();
        }
        break;
      }
      }

      if (Op->Result != InvalidEventId) {
        if (Op->Result < Module.numEvents() && S.Defined[Op->Result])
          return Diagnostic(formatString(
              "event %s defined more than once (SSA violation)",
              Module.event(Op->Result).Name.c_str()));
        if (Op->Result < Module.numEvents()) {
          S.Defined[Op->Result] = 1;
          S.DefStack.push_back(Op->Result);
        }
      }
    }
    return ErrorOrVoid::success();
  }

  const IRModule &Module;
  VerifierScratch &S;
};

} // namespace

ErrorOrVoid cypress::verifyModule(const IRModule &Module) {
  return VerifierImpl(Module).run();
}
