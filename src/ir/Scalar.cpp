//===- Scalar.cpp - Symbolic scalar expressions -----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Scalar.h"

#include "support/Format.h"

using namespace cypress;

ScalarExpr::ScalarExpr(int64_t Value) : TheKind(Kind::Constant), Value(Value) {}

ScalarExpr ScalarExpr::loopVar(LoopVarId Id, std::string Name) {
  ScalarExpr Result;
  Result.TheKind = Kind::LoopVar;
  Result.VarId = Id;
  Result.VarName = std::move(Name);
  return Result;
}

ScalarExpr ScalarExpr::procIndex(Processor Proc) {
  ScalarExpr Result;
  Result.TheKind = Kind::ProcIndex;
  Result.Proc = Proc;
  return Result;
}

ScalarExpr ScalarExpr::binary(Kind K, const ScalarExpr &L,
                              const ScalarExpr &R) {
  // Constant fold eagerly; symbolic expressions stay small in practice.
  if (L.isConstant() && R.isConstant()) {
    int64_t A = L.constantValue(), B = R.constantValue();
    switch (K) {
    case Kind::Add:
      return ScalarExpr(A + B);
    case Kind::Sub:
      return ScalarExpr(A - B);
    case Kind::Mul:
      return ScalarExpr(A * B);
    case Kind::FloorDiv:
      assert(B != 0 && "division by zero in constant fold");
      return ScalarExpr(A / B);
    case Kind::Mod:
      assert(B != 0 && "modulo by zero in constant fold");
      return ScalarExpr(A % B);
    default:
      cypressUnreachable("non-binary kind in binary fold");
    }
  }
  // Identity simplifications keep printed IR readable.
  if (K == Kind::Add && L.isConstant() && L.constantValue() == 0)
    return R;
  if ((K == Kind::Add || K == Kind::Sub) && R.isConstant() &&
      R.constantValue() == 0)
    return L;
  if (K == Kind::Mul && L.isConstant() && L.constantValue() == 1)
    return R;
  if (K == Kind::Mul && R.isConstant() && R.constantValue() == 1)
    return L;
  if (K == Kind::Mul && ((L.isConstant() && L.constantValue() == 0) ||
                         (R.isConstant() && R.constantValue() == 0)))
    return ScalarExpr(0);
  if (K == Kind::FloorDiv && R.isConstant() && R.constantValue() == 1)
    return L;

  ScalarExpr Result;
  Result.TheKind = K;
  Result.Lhs = std::make_shared<const ScalarExpr>(L);
  Result.Rhs = std::make_shared<const ScalarExpr>(R);
  return Result;
}

namespace cypress {

ScalarExpr operator+(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Add, L, R);
}
ScalarExpr operator-(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Sub, L, R);
}
ScalarExpr operator*(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Mul, L, R);
}

} // namespace cypress

ScalarExpr ScalarExpr::floorDiv(const ScalarExpr &Divisor) const {
  return binary(Kind::FloorDiv, *this, Divisor);
}

ScalarExpr ScalarExpr::mod(const ScalarExpr &Divisor) const {
  return binary(Kind::Mod, *this, Divisor);
}

int64_t ScalarExpr::evaluate(const ScalarEnv &Env) const {
  switch (TheKind) {
  case Kind::Constant:
    return Value;
  case Kind::LoopVar:
    return Env.loopVar(VarId);
  case Kind::ProcIndex:
    return Env.procIndex(Proc);
  case Kind::Add:
    return Lhs->evaluate(Env) + Rhs->evaluate(Env);
  case Kind::Sub:
    return Lhs->evaluate(Env) - Rhs->evaluate(Env);
  case Kind::Mul:
    return Lhs->evaluate(Env) * Rhs->evaluate(Env);
  case Kind::FloorDiv: {
    int64_t D = Rhs->evaluate(Env);
    assert(D != 0 && "division by zero");
    return Lhs->evaluate(Env) / D;
  }
  case Kind::Mod: {
    int64_t D = Rhs->evaluate(Env);
    assert(D != 0 && "modulo by zero");
    return Lhs->evaluate(Env) % D;
  }
  }
  cypressUnreachable("unknown scalar expression kind");
}

ScalarExpr ScalarExpr::substituteLoopVar(LoopVarId Id,
                                         const ScalarExpr &Replacement) const {
  switch (TheKind) {
  case Kind::Constant:
  case Kind::ProcIndex:
    return *this;
  case Kind::LoopVar:
    return VarId == Id ? Replacement : *this;
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::FloorDiv:
  case Kind::Mod:
    return binary(TheKind, Lhs->substituteLoopVar(Id, Replacement),
                  Rhs->substituteLoopVar(Id, Replacement));
  }
  cypressUnreachable("unknown scalar expression kind");
}

bool ScalarExpr::usesLoopVar(LoopVarId Id) const {
  switch (TheKind) {
  case Kind::Constant:
  case Kind::ProcIndex:
    return false;
  case Kind::LoopVar:
    return VarId == Id;
  default:
    return Lhs->usesLoopVar(Id) || Rhs->usesLoopVar(Id);
  }
}

bool ScalarExpr::usesProcIndex() const {
  switch (TheKind) {
  case Kind::Constant:
  case Kind::LoopVar:
    return false;
  case Kind::ProcIndex:
    return true;
  default:
    return Lhs->usesProcIndex() || Rhs->usesProcIndex();
  }
}

std::string ScalarExpr::toString() const {
  switch (TheKind) {
  case Kind::Constant:
    return std::to_string(Value);
  case Kind::LoopVar:
    return VarName.empty() ? formatString("v%u", VarId) : VarName;
  case Kind::ProcIndex:
    switch (Proc) {
    case Processor::Block:
      return "block_id()";
    case Processor::Warpgroup:
      return "warpgroup_id()";
    case Processor::Warp:
      return "warp_id()";
    case Processor::Thread:
      return "thread_id()";
    case Processor::Host:
      return "host_id()";
    }
    cypressUnreachable("unknown processor");
  case Kind::Add:
    return "(" + Lhs->toString() + " + " + Rhs->toString() + ")";
  case Kind::Sub:
    return "(" + Lhs->toString() + " - " + Rhs->toString() + ")";
  case Kind::Mul:
    return "(" + Lhs->toString() + " * " + Rhs->toString() + ")";
  case Kind::FloorDiv:
    return "(" + Lhs->toString() + " / " + Rhs->toString() + ")";
  case Kind::Mod:
    return "(" + Lhs->toString() + " % " + Rhs->toString() + ")";
  }
  cypressUnreachable("unknown scalar expression kind");
}

bool ScalarExpr::equals(const ScalarExpr &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Constant:
    return Value == Other.Value;
  case Kind::LoopVar:
    return VarId == Other.VarId;
  case Kind::ProcIndex:
    return Proc == Other.Proc;
  default:
    return Lhs->equals(*Other.Lhs) && Rhs->equals(*Other.Rhs);
  }
}
