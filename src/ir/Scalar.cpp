//===- Scalar.cpp - Symbolic scalar expressions -----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-consing machinery behind ScalarExpr. Nodes are allocated from a
/// process-global pool (released only at exit, so handles outlive the
/// worker threads that built them) and deduplicated through per-thread
/// intern tables (no locking on the construction hot path; a lock is taken
/// only when a thread sees a structurally new expression). Two threads can
/// therefore hold distinct nodes for one expression — equals() falls back
/// to a structural walk with pointer short-circuits for exactly that case.
///
//===----------------------------------------------------------------------===//

#include "ir/Scalar.h"

#include "support/Format.h"

#include <array>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

using namespace cypress;
using cypress::detail::ScalarNode;

//===----------------------------------------------------------------------===//
// Node pool and interner
//===----------------------------------------------------------------------===//

namespace {

/// The process-global node pool. A deque gives pointer stability; the mutex
/// is taken only on intern misses (structurally new expressions), never on
/// hits.
struct NodePool {
  std::mutex Mutex;
  std::deque<ScalarNode> Nodes;

  const ScalarNode *add(ScalarNode &&Node) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Nodes.push_back(std::move(Node));
    return &Nodes.back();
  }
};

NodePool &pool() {
  static NodePool Pool;
  return Pool;
}

uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit variant of boost::hash_combine (splitmix-style mixing).
  Value *= 0x9e3779b97f4a7c15ull;
  Value ^= Value >> 32;
  return Seed * 0x100000001b3ull ^ Value;
}

uint64_t hashNodeProto(const ScalarNode &Proto) {
  uint64_t H = hashCombine(0xcbf29ce484222325ull,
                           static_cast<uint64_t>(Proto.TheKind));
  switch (Proto.TheKind) {
  case ScalarExpr::Kind::Constant:
    return hashCombine(H, static_cast<uint64_t>(Proto.Value));
  case ScalarExpr::Kind::LoopVar:
    H = hashCombine(H, Proto.VarId);
    return hashCombine(H, std::hash<std::string>()(Proto.VarName));
  case ScalarExpr::Kind::ProcIndex:
    return hashCombine(H, static_cast<uint64_t>(Proto.Proc));
  default:
    H = hashCombine(H, reinterpret_cast<uintptr_t>(Proto.Lhs));
    return hashCombine(H, reinterpret_cast<uintptr_t>(Proto.Rhs));
  }
}

/// Intern-table identity: exact payload match, children by pointer. This is
/// finer than equals() — loop variables with one id but different display
/// names intern separately so printing stays faithful per module.
bool protoMatches(const ScalarNode &A, const ScalarNode &B) {
  if (A.TheKind != B.TheKind)
    return false;
  switch (A.TheKind) {
  case ScalarExpr::Kind::Constant:
    return A.Value == B.Value;
  case ScalarExpr::Kind::LoopVar:
    return A.VarId == B.VarId && A.VarName == B.VarName;
  case ScalarExpr::Kind::ProcIndex:
    return A.Proc == B.Proc;
  default:
    return A.Lhs == B.Lhs && A.Rhs == B.Rhs;
  }
}

/// Per-thread interner: dedup table plus the substitution memo. Thread
/// destruction drops only the tables — the nodes they point at are pooled
/// globally, so ScalarExprs handed to other threads stay valid.
struct Interner {
  std::unordered_map<uint64_t, std::vector<const ScalarNode *>> Table;

  struct SubstKey {
    const ScalarNode *Node;
    LoopVarId Var;
    const ScalarNode *Replacement;

    bool operator==(const SubstKey &Other) const {
      return Node == Other.Node && Var == Other.Var &&
             Replacement == Other.Replacement;
    }
  };
  struct SubstKeyHash {
    size_t operator()(const SubstKey &Key) const {
      uint64_t H = hashCombine(reinterpret_cast<uintptr_t>(Key.Node),
                               Key.Var);
      return static_cast<size_t>(
          hashCombine(H, reinterpret_cast<uintptr_t>(Key.Replacement)));
    }
  };
  std::unordered_map<SubstKey, const ScalarNode *, SubstKeyHash> SubstMemo;

  const ScalarNode *intern(ScalarNode &&Proto) {
    uint64_t H = hashNodeProto(Proto);
    std::vector<const ScalarNode *> &Chain = Table[H];
    for (const ScalarNode *Node : Chain)
      if (protoMatches(*Node, Proto))
        return Node;
    const ScalarNode *Node = pool().add(std::move(Proto));
    Chain.push_back(Node);
    return Node;
  }
};

Interner &interner() {
  thread_local Interner TheInterner;
  return TheInterner;
}

/// Constants in [0, SmallConstantCount) are the bulk of all expressions
/// (colors, buffer indices, loop bounds); they intern once globally and
/// resolve with an array load, shared by every thread.
constexpr int64_t SmallConstantCount = 65;

const ScalarNode *const *smallConstants() {
  static const std::vector<const ScalarNode *> Cache = [] {
    std::vector<const ScalarNode *> Nodes;
    Nodes.reserve(SmallConstantCount);
    for (int64_t V = 0; V < SmallConstantCount; ++V) {
      ScalarNode Proto;
      Proto.TheKind = ScalarExpr::Kind::Constant;
      Proto.Value = V;
      Nodes.push_back(pool().add(std::move(Proto)));
    }
    return Nodes;
  }();
  return Cache.data();
}

const ScalarNode *internConstant(int64_t Value) {
  if (Value >= 0 && Value < SmallConstantCount)
    return smallConstants()[Value];
  ScalarNode Proto;
  Proto.TheKind = ScalarExpr::Kind::Constant;
  Proto.Value = Value;
  return interner().intern(std::move(Proto));
}

uint64_t loopVarBit(LoopVarId Id) { return 1ull << (Id % 64); }

} // namespace

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

ScalarExpr::ScalarExpr() : Node(smallConstants()[0]) {}

ScalarExpr::ScalarExpr(int64_t Value) : Node(internConstant(Value)) {}

ScalarExpr ScalarExpr::loopVar(LoopVarId Id, std::string Name) {
  ScalarNode Proto;
  Proto.TheKind = Kind::LoopVar;
  Proto.VarId = Id;
  Proto.VarName = std::move(Name);
  Proto.LoopVarMask = loopVarBit(Id);
  return wrap(interner().intern(std::move(Proto)));
}

ScalarExpr ScalarExpr::procIndex(Processor Proc) {
  // One immortal node per processor level, shared by every thread: the
  // compiler builds these in inner loops (vectorization substitution,
  // splice adjustment), so they bypass the interner entirely.
  static const std::array<const ScalarNode *, 5> Cache = [] {
    std::array<const ScalarNode *, 5> Nodes{};
    for (size_t I = 0; I < Nodes.size(); ++I) {
      ScalarNode Proto;
      Proto.TheKind = Kind::ProcIndex;
      Proto.Proc = static_cast<Processor>(I);
      Proto.HasProcIndex = true;
      Nodes[I] = pool().add(std::move(Proto));
    }
    return Nodes;
  }();
  size_t Index = static_cast<size_t>(Proc);
  assert(Index < Cache.size() && "unknown processor level");
  return wrap(Cache[Index]);
}

ScalarExpr ScalarExpr::binary(Kind K, const ScalarExpr &L,
                              const ScalarExpr &R) {
  // Constant fold eagerly; symbolic expressions stay small in practice.
  if (L.isConstant() && R.isConstant()) {
    int64_t A = L.constantValue(), B = R.constantValue();
    switch (K) {
    case Kind::Add:
      return ScalarExpr(A + B);
    case Kind::Sub:
      return ScalarExpr(A - B);
    case Kind::Mul:
      return ScalarExpr(A * B);
    case Kind::FloorDiv:
      assert(B != 0 && "division by zero in constant fold");
      return ScalarExpr(A / B);
    case Kind::Mod:
      assert(B != 0 && "modulo by zero in constant fold");
      return ScalarExpr(A % B);
    default:
      cypressUnreachable("non-binary kind in binary fold");
    }
  }
  // Identity simplifications keep printed IR readable.
  if (K == Kind::Add && L.isConstant() && L.constantValue() == 0)
    return R;
  if ((K == Kind::Add || K == Kind::Sub) && R.isConstant() &&
      R.constantValue() == 0)
    return L;
  if (K == Kind::Mul && L.isConstant() && L.constantValue() == 1)
    return R;
  if (K == Kind::Mul && R.isConstant() && R.constantValue() == 1)
    return L;
  if (K == Kind::Mul && ((L.isConstant() && L.constantValue() == 0) ||
                         (R.isConstant() && R.constantValue() == 0)))
    return ScalarExpr(0);
  if (K == Kind::FloorDiv && R.isConstant() && R.constantValue() == 1)
    return L;
  // Anything mod 1 is 0, and a zero numerator divides/reduces to zero
  // regardless of the (symbolic, assumed nonzero — division by zero is
  // checked at evaluation) divisor. These arise from degenerate prange
  // extents and delinearization of rank-1 domains.
  if (K == Kind::Mod && R.isConstant() && R.constantValue() == 1)
    return ScalarExpr(0);
  if ((K == Kind::FloorDiv || K == Kind::Mod) && L.isConstant() &&
      L.constantValue() == 0)
    return ScalarExpr(0);

  ScalarNode Proto;
  Proto.TheKind = K;
  Proto.Lhs = L.Node;
  Proto.Rhs = R.Node;
  Proto.LoopVarMask = L.Node->LoopVarMask | R.Node->LoopVarMask;
  Proto.HasProcIndex = L.Node->HasProcIndex || R.Node->HasProcIndex;
  return wrap(interner().intern(std::move(Proto)));
}

namespace cypress {

ScalarExpr operator+(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Add, L, R);
}
ScalarExpr operator-(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Sub, L, R);
}
ScalarExpr operator*(const ScalarExpr &L, const ScalarExpr &R) {
  return ScalarExpr::binary(ScalarExpr::Kind::Mul, L, R);
}

} // namespace cypress

ScalarExpr ScalarExpr::floorDiv(const ScalarExpr &Divisor) const {
  return binary(Kind::FloorDiv, *this, Divisor);
}

ScalarExpr ScalarExpr::mod(const ScalarExpr &Divisor) const {
  return binary(Kind::Mod, *this, Divisor);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

int64_t ScalarExpr::evaluate(const ScalarEnv &Env) const {
  const ScalarNode *N = Node;
  switch (N->TheKind) {
  case Kind::Constant:
    return N->Value;
  case Kind::LoopVar:
    return Env.loopVar(N->VarId);
  case Kind::ProcIndex:
    return Env.procIndex(N->Proc);
  case Kind::Add:
    return wrap(N->Lhs).evaluate(Env) + wrap(N->Rhs).evaluate(Env);
  case Kind::Sub:
    return wrap(N->Lhs).evaluate(Env) - wrap(N->Rhs).evaluate(Env);
  case Kind::Mul:
    return wrap(N->Lhs).evaluate(Env) * wrap(N->Rhs).evaluate(Env);
  case Kind::FloorDiv: {
    int64_t D = wrap(N->Rhs).evaluate(Env);
    assert(D != 0 && "division by zero");
    return wrap(N->Lhs).evaluate(Env) / D;
  }
  case Kind::Mod: {
    int64_t D = wrap(N->Rhs).evaluate(Env);
    assert(D != 0 && "modulo by zero");
    return wrap(N->Lhs).evaluate(Env) % D;
  }
  }
  cypressUnreachable("unknown scalar expression kind");
}

ScalarExpr ScalarExpr::substituteLoopVar(LoopVarId Id,
                                         const ScalarExpr &Replacement) const {
  // Bloom prefilter: subtrees that provably don't mention the variable
  // return their own handle, which keeps substitution linear in the touched
  // region of the DAG rather than the whole expression.
  if (!(Node->LoopVarMask & loopVarBit(Id)))
    return *this;
  if (Node->TheKind == Kind::LoopVar)
    return Node->VarId == Id ? Replacement : *this;

  Interner &I = interner();
  Interner::SubstKey Key{Node, Id, Replacement.Node};
  auto It = I.SubstMemo.find(Key);
  if (It != I.SubstMemo.end())
    return wrap(It->second);

  ScalarExpr Result = binary(Node->TheKind,
                             wrap(Node->Lhs).substituteLoopVar(
                                 Id, Replacement),
                             wrap(Node->Rhs).substituteLoopVar(
                                 Id, Replacement));
  // Re-find: binary() may have interned new nodes and rehashed the memo's
  // sibling table, but SubstMemo itself is only touched here.
  I.SubstMemo.emplace(Key, Result.Node);
  return Result;
}

bool ScalarExpr::usesLoopVar(LoopVarId Id) const {
  const ScalarNode *N = Node;
  if (!(N->LoopVarMask & loopVarBit(Id)))
    return false;
  switch (N->TheKind) {
  case Kind::Constant:
  case Kind::ProcIndex:
    return false;
  case Kind::LoopVar:
    return N->VarId == Id;
  default:
    return wrap(N->Lhs).usesLoopVar(Id) ||
           wrap(N->Rhs).usesLoopVar(Id);
  }
}

std::string ScalarExpr::toString() const {
  const ScalarNode *N = Node;
  switch (N->TheKind) {
  case Kind::Constant:
    return std::to_string(N->Value);
  case Kind::LoopVar:
    return N->VarName.empty() ? formatString("v%u", N->VarId) : N->VarName;
  case Kind::ProcIndex:
    switch (N->Proc) {
    case Processor::Block:
      return "block_id()";
    case Processor::Warpgroup:
      return "warpgroup_id()";
    case Processor::Warp:
      return "warp_id()";
    case Processor::Thread:
      return "thread_id()";
    case Processor::Host:
      return "host_id()";
    }
    cypressUnreachable("unknown processor");
  case Kind::Add:
    return "(" + wrap(N->Lhs).toString() + " + " +
           wrap(N->Rhs).toString() + ")";
  case Kind::Sub:
    return "(" + wrap(N->Lhs).toString() + " - " +
           wrap(N->Rhs).toString() + ")";
  case Kind::Mul:
    return "(" + wrap(N->Lhs).toString() + " * " +
           wrap(N->Rhs).toString() + ")";
  case Kind::FloorDiv:
    return "(" + wrap(N->Lhs).toString() + " / " +
           wrap(N->Rhs).toString() + ")";
  case Kind::Mod:
    return "(" + wrap(N->Lhs).toString() + " % " +
           wrap(N->Rhs).toString() + ")";
  }
  cypressUnreachable("unknown scalar expression kind");
}

bool cypress::detail::scalarNodesEqual(const ScalarNode *A,
                                       const ScalarNode *B) {
  if (A == B)
    return true;
  if (A->TheKind != B->TheKind)
    return false;
  switch (A->TheKind) {
  case ScalarExpr::Kind::Constant:
    return A->Value == B->Value;
  case ScalarExpr::Kind::LoopVar:
    return A->VarId == B->VarId;
  case ScalarExpr::Kind::ProcIndex:
    return A->Proc == B->Proc;
  default:
    return scalarNodesEqual(A->Lhs, B->Lhs) &&
           scalarNodesEqual(A->Rhs, B->Rhs);
  }
}
