//===- IR.cpp - Cypress event-based intermediate representation ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>

using namespace cypress;

const char *cypress::execUnitName(ExecUnit Unit) {
  switch (Unit) {
  case ExecUnit::TMA:
    return "tma";
  case ExecUnit::TensorCore:
    return "tensorcore";
  case ExecUnit::SIMT:
    return "simt";
  }
  cypressUnreachable("unknown exec unit");
}

std::unique_ptr<Operation> Operation::clone() const {
  auto Copy = std::make_unique<Operation>();
  Copy->Kind = Kind;
  Copy->Id = Id;
  Copy->Result = Result;
  Copy->Preconds = Preconds;
  Copy->AllocTensor = AllocTensor;
  Copy->Part = Part;
  Copy->CopySrc = CopySrc;
  Copy->CopyDst = CopyDst;
  Copy->LaunchBoundary = LaunchBoundary;
  Copy->BoundaryTensor = BoundaryTensor;
  Copy->Callee = Callee;
  Copy->Args = Args;
  Copy->ArgIsWritten = ArgIsWritten;
  Copy->ScalarArgs = ScalarArgs;
  Copy->Flops = Flops;
  Copy->Unit = Unit;
  Copy->ExecProc = ExecProc;
  Copy->LoopVar = LoopVar;
  Copy->LoopVarName = LoopVarName;
  Copy->LoopLo = LoopLo;
  Copy->LoopHi = LoopHi;
  Copy->PForProc = PForProc;
  Copy->ForPipeline = ForPipeline;
  Copy->WarpSpecialize = WarpSpecialize;
  Copy->VecContext = VecContext;
  Copy->DmaAgent = DmaAgent;
  for (const std::unique_ptr<Operation> &Op : Body.Ops)
    Copy->Body.Ops.push_back(Op->clone());
  Copy->Body.Yield = Body.Yield;
  return Copy;
}

TensorId IRModule::addTensor(std::string Name, TensorType Type, Memory Mem) {
  if (Tensors.empty())
    Tensors.reserve(64); // IRTensor carries strings; skip doubling churn.
  TensorId Id = static_cast<TensorId>(Tensors.size());
  Tensors.push_back({Id, std::move(Name), std::move(Type), Mem,
                     /*PipelineDepth=*/1});
  return Id;
}

PartitionId IRModule::addPartition(TensorSlice Base, Partition Spec) {
  if (Partitions.empty())
    Partitions.reserve(32);
  PartitionId Id = static_cast<PartitionId>(Partitions.size());
  Partitions.push_back({Id, std::move(Base), std::move(Spec)});
  return Id;
}

EventId IRModule::addEvent(std::string Name, EventType Type) {
  if (Events.empty())
    Events.reserve(128); // One event per async op; realloc moves strings.
  EventId Id = static_cast<EventId>(Events.size());
  Events.push_back({Id, std::move(Name), std::move(Type), ~0u});
  return Id;
}

Shape IRModule::sliceShape(const TensorSlice &Slice) const {
  const IRTensor &T = tensor(Slice.Tensor);
  if (Slice.isWhole())
    return T.Type.Dims;
  const IRPartition &P = partition(*Slice.Part);
  // For symbolic colors the piece shape must be uniform; piece(0...) gives
  // the interior tile shape. Constant colors resolve exactly (edge tiles).
  std::vector<int64_t> Color(Slice.Color.size(), 0);
  bool AllConstant = true;
  for (unsigned I = 0, E = Slice.Color.size(); I != E; ++I) {
    if (Slice.Color[I].isConstant())
      Color[I] = Slice.Color[I].constantValue();
    else
      AllConstant = false;
  }
  if (!AllConstant)
    Color.assign(Slice.Color.size(), 0);
  return P.Spec.piece(Color).shape();
}

SubTensor IRModule::resolveSlice(const TensorSlice &Slice,
                                 const ScalarEnv &Env) const {
  const IRTensor &T = tensor(Slice.Tensor);
  if (Slice.isWhole())
    return SubTensor::whole(T.Type.Dims);
  const IRPartition &P = partition(*Slice.Part);
  std::vector<int64_t> Color(Slice.Color.size());
  for (unsigned I = 0, E = Slice.Color.size(); I != E; ++I)
    Color[I] = Slice.Color[I].evaluate(Env);
  SubTensor Piece = P.Spec.piece(Color);
  // Compose through the partition's base slice so pieces of pieces map all
  // the way to root-tensor coordinates.
  SubTensor Base = resolveSlice(P.Base, Env);
  return SubTensor::compose(Base, Piece);
}

int64_t IRModule::sliceNumElements(const TensorSlice &Slice) const {
  const IRTensor &T = tensor(Slice.Tensor);
  if (Slice.isWhole())
    return T.Type.Dims.numElements();
  const IRPartition &P = partition(*Slice.Part);
  // Mirror sliceShape's color handling: constant colors resolve exactly
  // (edge tiles); any symbolic color falls back to the uniform interior
  // tile at color 0.
  size_t Rank = Slice.Color.size();
  int64_t Stack[8];
  std::vector<int64_t> Heap;
  int64_t *Color = Rank <= 8 ? Stack : (Heap.resize(Rank), Heap.data());
  bool AllConstant = true;
  for (unsigned I = 0; I != Rank; ++I) {
    if (Slice.Color[I].isConstant())
      Color[I] = Slice.Color[I].constantValue();
    else
      AllConstant = false;
  }
  if (!AllConstant)
    std::fill_n(Color, Rank, 0);
  return P.Spec.pieceNumElements(Color, Rank);
}

int64_t IRModule::sliceBytes(const TensorSlice &Slice) const {
  const IRTensor &T = tensor(Slice.Tensor);
  return sliceNumElements(Slice) * elementTypeBytes(T.Type.Element);
}

void cypress::walkOps(IRBlock &Block,
                      const std::function<void(Operation &)> &Fn) {
  for (std::unique_ptr<Operation> &Op : Block.Ops) {
    Fn(*Op);
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      walkOps(Op->Body, Fn);
  }
}

void cypress::walkOps(const IRBlock &Block,
                      const std::function<void(const Operation &)> &Fn) {
  for (const std::unique_ptr<Operation> &Op : Block.Ops) {
    Fn(*Op);
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      walkOps(static_cast<const IRBlock &>(Op->Body), Fn);
  }
}

namespace {
size_t countBlockOps(const IRBlock &Block) {
  size_t Count = Block.Ops.size();
  for (const std::unique_ptr<Operation> &Op : Block.Ops)
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      Count += countBlockOps(Op->Body);
  return Count;
}
} // namespace

size_t cypress::countOps(const IRModule &Module) {
  // Runs after every pass (PipelineStats); direct recursion, no
  // std::function dispatch per op.
  return countBlockOps(Module.root());
}
