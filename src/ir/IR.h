//===- IR.h - Cypress event-based intermediate representation -------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-based IR of Section 4.1 (Figure 7). Asynchronous operations
/// (copies, leaf-task calls, loops) produce events; each operation carries a
/// set of precondition events, so the IR encodes a dependence graph. Event
/// types are either unit or arrays with processor-annotated dimensions;
/// event arrays are indexed point-wise or with the broadcast operator `[:]`,
/// which denotes all events of that dimension completing. The IR is in SSA
/// form: any valid ordering of operations satisfies all event dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_IR_IR_H
#define CYPRESS_IR_IR_H

#include "ir/Scalar.h"
#include "machine/Machine.h"
#include "support/InlineVector.h"
#include "tensor/Partition.h"
#include "tensor/Shape.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cypress {

using TensorId = uint32_t;
using PartitionId = uint32_t;
using EventId = uint32_t;
using OpId = uint32_t;

constexpr TensorId InvalidTensorId = ~0u;
constexpr EventId InvalidEventId = ~0u;

//===----------------------------------------------------------------------===//
// Tensors and partitions
//===----------------------------------------------------------------------===//

/// A tensor allocation in the IR: `t ::= (int list, m)` of Figure 7.
/// Memory::None tensors are placeholders that must be eliminated by copy
/// elimination (Section 3.3); reaching resource allocation with a None
/// tensor still live is a compile error reported to the user.
struct IRTensor {
  TensorId Id = InvalidTensorId;
  std::string Name;
  TensorType Type;
  Memory Mem = Memory::None;
  /// Pipelining multiplies the allocation by the pipeline depth and indexes
  /// buffers with (k mod PIPE); a value > 1 records that multi-buffering.
  int64_t PipelineDepth = 1;
  /// The processor level of the task instance that created the tensor; one
  /// storage instance exists per processor instance at this level (e.g. a
  /// register fragment per thread, a staging buffer per block).
  Processor HomeProc = Processor::Host;
  /// True for kernel arguments (pre-existing global allocations).
  bool IsEntryArg = false;
  /// Mapping request (TaskMapping::SimtCopyParams): copies into or out of
  /// this tensor run on the SIMT units even when they would qualify for
  /// the TMA. Exec-unit assignment consults this flag.
  bool ForceSimtCopy = false;
};

struct IRPartition;

/// A reference to data in the IR: either a whole tensor or one piece of a
/// partition selected by symbolic color expressions. Because partitions are
/// declared over slices (see IRPartition::Base), pieces of pieces arise
/// naturally when copy elimination forwards an unmaterialized tensor to the
/// slice it aliases.
struct TensorSlice {
  /// Root tensor ultimately referenced (through the partition base chain).
  TensorId Tensor = InvalidTensorId;
  /// Partition piece selection; empty when referencing the whole tensor.
  std::optional<PartitionId> Part;
  /// Piece colors, inline up to rank 2 (every shipped partition fits):
  /// slices are the compiler's most-copied structure.
  InlineVector<ScalarExpr, 2> Color;
  /// Pipelined buffer index (k mod PIPE); constant 0 when not pipelined.
  ScalarExpr BufferIndex = ScalarExpr(0);

  static TensorSlice whole(TensorId Tensor) {
    TensorSlice Slice;
    Slice.Tensor = Tensor;
    return Slice;
  }
  static TensorSlice piece(TensorId Tensor, PartitionId Part,
                           std::vector<ScalarExpr> Color) {
    TensorSlice Slice;
    Slice.Tensor = Tensor;
    Slice.Part = Part;
    Slice.Color.assign(Color.begin(), Color.end());
    return Slice;
  }

  bool isWhole() const { return !Part.has_value(); }
};

/// A partition declaration: how one slice (often a whole tensor) is
/// decomposed into pieces.
struct IRPartition {
  PartitionId Id = 0;
  /// The data being partitioned. Partitioning a piece of another partition
  /// composes the coordinate maps (SubTensor chains).
  TensorSlice Base;
  Partition Spec;
};

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

/// One dimension of an event array: extent plus the processor level whose
/// parallel instances the dimension ranges over.
struct EventDim {
  int64_t Extent = 0;
  Processor Proc = Processor::Thread;

  bool operator==(const EventDim &Other) const {
    return Extent == Other.Extent && Proc == Other.Proc;
  }
};

/// `et ::= () | (N, p) list` of Figure 7.
struct EventType {
  std::vector<EventDim> Dims;

  bool isUnit() const { return Dims.empty(); }
  bool operator==(const EventType &Other) const { return Dims == Other.Dims; }
};

/// An event definition. Events are defined by asynchronous operations and by
/// loops (the loop's completion); vectorization promotes events defined in
/// flattened pfor bodies to arrays.
struct IREvent {
  EventId Id = InvalidEventId;
  std::string Name;
  EventType Type;
  OpId Producer = ~0u;
};

/// One index into an event array: an expression or the broadcast `[:]`.
struct EventIndex {
  enum class Kind : uint8_t { Expr, Broadcast } IKind = Kind::Broadcast;
  ScalarExpr Index;

  static EventIndex expr(ScalarExpr E) {
    EventIndex Result;
    Result.IKind = Kind::Expr;
    Result.Index = std::move(E);
    return Result;
  }
  static EventIndex broadcast() { return EventIndex(); }

  bool isBroadcast() const { return IKind == Kind::Broadcast; }
};

/// `ev ::= x | ev[ei]` — a use of an event, fully indexed.
/// The number of indices must equal the rank of the event's type.
/// Index lists stay inline up to rank 4 (every kernel's events fit):
/// EventRefs are copied and spliced on the compiler's hottest paths.
struct EventRef {
  EventId Event = InvalidEventId;
  InlineVector<EventIndex, 4> Indices;
  /// Pipelining lag: a reference with IterLag = L inside a loop waits on the
  /// event instance from iteration (k - L) and is vacuously satisfied for
  /// the first L iterations. This encodes the backward write-after-read
  /// anti-dependence edges of Section 4.2.5 (dashed edges in Figure 12);
  /// codegen lowers them onto mbarrier phases.
  int64_t IterLag = 0;

  static EventRef unit(EventId Event) {
    EventRef Ref;
    Ref.Event = Event;
    return Ref;
  }

  /// True if any dimension is broadcast (synchronizes that processor level).
  bool hasBroadcast() const {
    for (const EventIndex &I : Indices)
      if (I.isBroadcast())
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

enum class OpKind : uint8_t {
  Alloc,     ///< Declares a tensor allocation.
  MakePart,  ///< Declares a partition of a tensor.
  Copy,      ///< Asynchronous data movement between slices.
  Call,      ///< Leaf-task invocation (arbitrary computation).
  For,       ///< Sequential loop.
  PFor,      ///< Parallel loop over processor instances.
};

class Operation;

/// `b ::= o; yield ev` — a block of operations yielding a completion event.
struct IRBlock {
  std::vector<std::unique_ptr<Operation>> Ops;
  /// The event reference yielded as the loop iteration's completion; may be
  /// empty for blocks whose completion is implied (e.g. after lowering).
  std::optional<EventRef> Yield;
};

/// Functional units that execute asynchronous operations. Assigned during
/// lowering from the mapping (copies into shared memory from global use the
/// TMA; WGMMA leaf tasks use the Tensor Core; everything else is SIMT).
enum class ExecUnit : uint8_t {
  TMA,        ///< Tensor Memory Accelerator (global <-> shared bulk copies).
  TensorCore, ///< WGMMA matrix engine.
  SIMT,       ///< Regular CUDA cores (register copies, scalar math).
};

const char *execUnitName(ExecUnit Unit);

/// A single IR operation. A tagged union kept deliberately simple; passes
/// match on Kind and the relevant payload fields.
class Operation {
public:
  OpKind Kind;
  OpId Id = ~0u;

  /// Event produced (Copy/Call/For/PFor); InvalidEventId for Alloc/MakePart.
  EventId Result = InvalidEventId;
  /// Precondition events that must complete before this op starts.
  std::vector<EventRef> Preconds;

  // Alloc payload.
  TensorId AllocTensor = InvalidTensorId;

  // MakePart payload.
  PartitionId Part = 0;

  // Copy payload.
  TensorSlice CopySrc;
  TensorSlice CopyDst;
  /// True for copies emitted by the launch-boundary copy-in/copy-out
  /// discipline of the dependence analysis; copy elimination may forward
  /// through them by construction (Section 4.2.3).
  bool LaunchBoundary = false;
  /// For launch-boundary copies: the fresh argument tensor the copy was
  /// created for (its dst for copy-ins, src for copy-outs). Stable across
  /// slice rewrites, so forwarding always resolves the intended pair.
  TensorId BoundaryTensor = InvalidTensorId;

  // Call payload.
  std::string Callee;                ///< Leaf function name (runtime lookup).
  std::vector<TensorSlice> Args;     ///< Tensor arguments.
  std::vector<bool> ArgIsWritten;    ///< Per-arg write privilege.
  std::vector<ScalarExpr> ScalarArgs;///< Scalar arguments (e.g. loop index).
  double Flops = 0.0;                ///< Cost-model FLOP estimate.

  // Copy/Call execution placement.
  ExecUnit Unit = ExecUnit::SIMT;
  /// Processor level this op executes on (granularity of its launch).
  Processor ExecProc = Processor::Thread;

  // For/PFor payload.
  LoopVarId LoopVar = 0;
  std::string LoopVarName;
  ScalarExpr LoopLo = ScalarExpr(0);
  ScalarExpr LoopHi = ScalarExpr(0);
  Processor PForProc = Processor::Thread; ///< PFor: processor level.
  IRBlock Body;
  /// For: software pipeline depth requested by the mapping (1 = none).
  int64_t ForPipeline = 1;
  /// PFor at Block level: warp-specialize the body (Section 4.2.5).
  bool WarpSpecialize = false;

  /// Flattened parallel context surrounding this op after vectorization
  /// (outermost first): the op executes once per index combination of these
  /// processor dimensions. Inline: assigned to every op the flattener
  /// touches.
  InlineVector<EventDim, 4> VecContext;

  /// Warp-specialization agent assignment (set by the warp-spec pass):
  /// true if this op belongs to the data-movement (DMA) agent.
  bool DmaAgent = false;

  /// Deep copy (fresh unique_ptrs; ids preserved). Used by pipelining's
  /// unroll-and-compact transformation.
  std::unique_ptr<Operation> clone() const;
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// A compiled kernel in IR form: the arena for tensors, partitions, and
/// events, plus the root block (host-level program).
class IRModule {
public:
  IRModule() = default;
  IRModule(IRModule &&) = default;
  IRModule &operator=(IRModule &&) = default;

  //===--- Arena construction ----------------------------------------===//

  TensorId addTensor(std::string Name, TensorType Type, Memory Mem);
  PartitionId addPartition(TensorSlice Base, Partition Spec);
  EventId addEvent(std::string Name, EventType Type);
  LoopVarId freshLoopVar() { return NextLoopVar++; }
  OpId freshOpId() { return NextOpId++; }

  //===--- Access ------------------------------------------------------===//

  IRTensor &tensor(TensorId Id) {
    assert(Id < Tensors.size() && "tensor id out of range");
    return Tensors[Id];
  }
  const IRTensor &tensor(TensorId Id) const {
    assert(Id < Tensors.size() && "tensor id out of range");
    return Tensors[Id];
  }
  const std::vector<IRTensor> &tensors() const { return Tensors; }

  IRPartition &partition(PartitionId Id) {
    assert(Id < Partitions.size() && "partition id out of range");
    return Partitions[Id];
  }
  const IRPartition &partition(PartitionId Id) const {
    assert(Id < Partitions.size() && "partition id out of range");
    return Partitions[Id];
  }
  std::vector<IRPartition> &partitions() { return Partitions; }
  const std::vector<IRPartition> &partitionsConst() const {
    return Partitions;
  }

  IREvent &event(EventId Id) {
    assert(Id < Events.size() && "event id out of range");
    return Events[Id];
  }
  const IREvent &event(EventId Id) const {
    assert(Id < Events.size() && "event id out of range");
    return Events[Id];
  }
  size_t numEvents() const { return Events.size(); }

  IRBlock &root() { return Root; }
  const IRBlock &root() const { return Root; }

  /// Kernel-argument tensors in entrypoint signature order.
  std::vector<TensorId> &entryArgs() { return EntryArgs; }
  const std::vector<TensorId> &entryArgs() const { return EntryArgs; }

  /// The concrete shape of the data referenced by \p Slice (the piece shape
  /// for constant colors, the uniform tile shape for symbolic ones).
  Shape sliceShape(const TensorSlice &Slice) const;

  /// Evaluates \p Slice's piece under \p Env (all colors concrete).
  SubTensor resolveSlice(const TensorSlice &Slice, const ScalarEnv &Env) const;

  /// Element count of \p Slice without materializing its shape (no
  /// allocation; the verifier's copy checks run after every pass).
  int64_t sliceNumElements(const TensorSlice &Slice) const;

  /// Bytes moved by a copy between these slices (size of the data, using the
  /// source element type).
  int64_t sliceBytes(const TensorSlice &Slice) const;

private:
  std::vector<IRTensor> Tensors;
  std::vector<IRPartition> Partitions;
  std::vector<IREvent> Events;
  IRBlock Root;
  std::vector<TensorId> EntryArgs;
  LoopVarId NextLoopVar = 0;
  OpId NextOpId = 0;
};

//===----------------------------------------------------------------------===//
// Utilities shared by passes
//===----------------------------------------------------------------------===//

/// Invokes \p Fn on every operation in \p Block, recursing into loop bodies
/// (pre-order).
void walkOps(IRBlock &Block, const std::function<void(Operation &)> &Fn);
void walkOps(const IRBlock &Block,
             const std::function<void(const Operation &)> &Fn);

/// Number of operations in the module, recursing into loop bodies. The
/// pass manager records this after every stage as its IR-size statistic.
size_t countOps(const IRModule &Module);

/// Prints the module in the textual form used in the paper's Figure 8/9
/// examples. Stable across runs; golden-tested.
std::string printModule(const IRModule &Module);
std::string printBlock(const IRModule &Module, const IRBlock &Block,
                       unsigned Indent);

/// Structural well-formedness checks (SSA event order, index ranks, slice
/// ranks, privilege flags). Returns a diagnostic on the first violation.
ErrorOrVoid verifyModule(const IRModule &Module);

} // namespace cypress

#endif // CYPRESS_IR_IR_H
