//===- Mapping.h - Mapping specification -----------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping-specification half of a Cypress program (Section 3.3,
/// Figure 5b). A mapping statically instantiates a tree of task instances:
/// each instance names the task variant it executes, the processor level it
/// runs on, the memory for every tensor argument, concrete values for the
/// variant's tunables, and the instance each launched child task dispatches
/// to. Instances can additionally request warp specialization, a software
/// pipeline depth, and a shared-memory budget for the resource allocator.
/// Mapping decisions may affect performance only, never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_MAPPING_MAPPING_H
#define CYPRESS_MAPPING_MAPPING_H

#include "frontend/Task.h"
#include "machine/Machine.h"
#include "support/Error.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cypress {

/// One task-mapping object ("instance", Figure 5b).
struct TaskMapping {
  /// Unique instance name referenced by other instances' Calls lists.
  std::string Instance;
  /// The task variant this instance executes.
  std::string Variant;
  /// Processor level the variant runs on.
  Processor Proc = Processor::Host;
  /// Memory placement for each tensor argument (in signature order).
  std::vector<Memory> Mems;
  /// Concrete values for the variant's integer tunables.
  std::map<std::string, int64_t> Tunables;
  /// Concrete values for the variant's processor tunables.
  std::map<std::string, Processor> ProcTunables;
  /// Memory placement for temporaries created with make_tensor, by name;
  /// temporaries default to Memory::None (materialize further down).
  std::map<std::string, Memory> TempMems;
  /// Instances child launches dispatch to. At a launch of task T, dispatch
  /// goes to the first entry whose variant implements T.
  std::vector<std::string> Calls;
  /// Entry point of the computation (exactly one instance).
  bool Entrypoint = false;
  /// Request warp specialization of this instance's body (Section 4.2.5).
  bool WarpSpecialize = false;
  /// Software pipeline depth for the instance's main sequential loop
  /// (1 = no pipelining).
  int64_t PipelineDepth = 1;
  /// Upper bound on shared-memory usage for the resource allocator
  /// (Section 4.2.4); 0 = the machine's full per-block capacity.
  int64_t SharedLimitBytes = 0;
  /// Per-parameter override of the multi-buffering depth used when the
  /// named argument is staged into shared memory, keyed by the variant's
  /// parameter name. Absent parameters inherit the enclosing pipelined
  /// loop's depth (the historical behavior); an entry must be >= 1. This
  /// is the mapping-level knob behind the autotuner's PIPE_A/PIPE_B axes:
  /// deep-pipeline one stream while keeping the other shallow.
  std::map<std::string, int64_t> ArgPipeline;
  /// Variant parameter names whose launch-boundary copies are pinned to
  /// the SIMT units instead of the TMA. Normally exec-unit assignment
  /// routes bulk global<->shared traffic through the TMA; pinning a
  /// parameter here makes its staging copies compete with the consumer
  /// warpgroups instead — a real exec-unit assignment axis (warp
  /// specialization only offloads TMA copies to the DMA agent).
  std::vector<std::string> SimtCopyParams;
};

/// A full mapping specification plus lookup and validation.
class MappingSpec {
public:
  MappingSpec() = default;
  explicit MappingSpec(std::vector<TaskMapping> Instances);

  const std::vector<TaskMapping> &instances() const { return Instances; }

  bool hasInstance(const std::string &Name) const {
    return Index.count(Name) != 0;
  }
  const TaskMapping &instance(const std::string &Name) const;

  /// The unique entrypoint instance.
  const TaskMapping &entrypoint() const;

  /// Resolves the instance a launch of \p Task dispatches to from within
  /// \p Parent, following the parent's Calls list.
  ErrorOr<std::string> dispatch(const TaskRegistry &Registry,
                                const TaskMapping &Parent,
                                const std::string &Task) const;

  /// Canonical content serialization: every instance in declaration order
  /// with its variant, processor, memory placements, tunables, calls, and
  /// pipeline/warp-specialization knobs. Two specs with equal fingerprints
  /// lower identically, so mappings are comparable and hashable as values —
  /// the CompilerSession kernel-cache key and the autotuner's cost cache
  /// are both built on this.
  std::string fingerprint() const;

  /// Content equality (fingerprint comparison). Enumerated candidate specs
  /// from the autotuner compare by what they say, never by address.
  bool operator==(const MappingSpec &Other) const {
    return fingerprint() == Other.fingerprint();
  }
  bool operator!=(const MappingSpec &Other) const { return !(*this == Other); }

  /// Static validation against the registry and machine model:
  ///  * every referenced variant exists and arities match,
  ///  * exactly one entrypoint,
  ///  * argument memories are addressable from the instance's processor
  ///    (or None),
  ///  * Calls entries resolve to known instances,
  ///  * child instances run at the same or a deeper processor level,
  ///  * child privileges do not exceed the parent's.
  ErrorOrVoid validate(const TaskRegistry &Registry,
                       const MachineModel &Machine) const;

private:
  std::vector<TaskMapping> Instances;
  std::map<std::string, size_t> Index;
};

} // namespace cypress

#endif // CYPRESS_MAPPING_MAPPING_H
