//===- Mapping.cpp - Mapping specification ----------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "mapping/Mapping.h"

#include "support/Format.h"

#include <sstream>

using namespace cypress;

MappingSpec::MappingSpec(std::vector<TaskMapping> Instances)
    : Instances(std::move(Instances)) {
  for (size_t I = 0, E = this->Instances.size(); I != E; ++I) {
    [[maybe_unused]] auto [It, Fresh] =
        Index.emplace(this->Instances[I].Instance, I);
    assert(Fresh && "duplicate mapping instance name");
  }
}

const TaskMapping &MappingSpec::instance(const std::string &Name) const {
  auto It = Index.find(Name);
  assert(It != Index.end() && "unknown mapping instance");
  return Instances[It->second];
}

const TaskMapping &MappingSpec::entrypoint() const {
  for (const TaskMapping &TM : Instances)
    if (TM.Entrypoint)
      return TM;
  cypressUnreachable("mapping has no entrypoint instance");
}

std::string MappingSpec::fingerprint() const {
  std::ostringstream OS;
  OS << "mapping{";
  for (const TaskMapping &Inst : Instances) {
    OS << Inst.Instance << '=' << Inst.Variant << '@'
       << static_cast<int>(Inst.Proc) << '[';
    for (Memory Mem : Inst.Mems)
      OS << static_cast<int>(Mem) << ',';
    OS << "]t{";
    for (const auto &[Key, Value] : Inst.Tunables)
      OS << Key << '=' << Value << ',';
    for (const auto &[Key, Value] : Inst.ProcTunables)
      OS << Key << '=' << 'p' << static_cast<int>(Value) << ',';
    OS << "}m{";
    for (const auto &[Key, Value] : Inst.TempMems)
      OS << Key << '=' << static_cast<int>(Value) << ',';
    OS << "}c{";
    for (const std::string &Call : Inst.Calls)
      OS << Call << ',';
    OS << "}a{";
    for (const auto &[Key, Value] : Inst.ArgPipeline)
      OS << Key << '=' << Value << ',';
    for (const std::string &Param : Inst.SimtCopyParams)
      OS << Param << "=simt,";
    OS << '}' << (Inst.Entrypoint ? 'E' : '-')
       << (Inst.WarpSpecialize ? 'W' : '-') << 'p' << Inst.PipelineDepth
       << 's' << Inst.SharedLimitBytes << ' ';
  }
  OS << '}';
  return OS.str();
}

ErrorOr<std::string> MappingSpec::dispatch(const TaskRegistry &Registry,
                                           const TaskMapping &Parent,
                                           const std::string &Task) const {
  for (const std::string &Callee : Parent.Calls) {
    if (!hasInstance(Callee))
      return Diagnostic(formatString(
          "instance %s calls unknown instance %s", Parent.Instance.c_str(),
          Callee.c_str()));
    const TaskMapping &Child = instance(Callee);
    if (!Registry.hasVariant(Child.Variant))
      return Diagnostic(formatString("instance %s uses unknown variant %s",
                                     Child.Instance.c_str(),
                                     Child.Variant.c_str()));
    if (Registry.variant(Child.Variant).Task == Task)
      return Callee;
  }
  return Diagnostic(formatString(
      "instance %s has no dispatch target for task %s (add it to calls)",
      Parent.Instance.c_str(), Task.c_str()));
}

ErrorOrVoid MappingSpec::validate(const TaskRegistry &Registry,
                                  const MachineModel &Machine) const {
  unsigned EntryCount = 0;
  for (const TaskMapping &TM : Instances) {
    if (TM.Entrypoint)
      ++EntryCount;

    if (!Registry.hasVariant(TM.Variant))
      return Diagnostic(formatString("instance %s names unknown variant %s",
                                     TM.Instance.c_str(),
                                     TM.Variant.c_str()));
    const TaskVariant &Variant = Registry.variant(TM.Variant);

    if (!Machine.hasLevel(TM.Proc))
      return Diagnostic(formatString(
          "instance %s targets processor %s absent from machine %s",
          TM.Instance.c_str(), processorName(TM.Proc),
          Machine.name().c_str()));

    if (TM.Mems.size() != Variant.Params.size())
      return Diagnostic(formatString(
          "instance %s maps %zu memories but variant %s has %zu params",
          TM.Instance.c_str(), TM.Mems.size(), TM.Variant.c_str(),
          Variant.Params.size()));

    for (size_t I = 0, E = TM.Mems.size(); I != E; ++I) {
      Memory Mem = TM.Mems[I];
      if (Mem == Memory::None)
        continue;
      // Leaf variants must be able to address their data from the level
      // they run on; inner variants only pass data through, so an outer
      // placement (e.g. global tensors named by a host task) is fine as
      // long as the memory exists on the machine.
      if (Variant.Kind == VariantKind::Leaf &&
          !Machine.canAccess(TM.Proc, Mem))
        return Diagnostic(formatString(
            "instance %s places arg %s in %s, not addressable from %s",
            TM.Instance.c_str(), Variant.Params[I].Name.c_str(),
            memoryName(Mem), processorName(TM.Proc)));
    }

    if (TM.PipelineDepth < 1)
      return Diagnostic(formatString("instance %s has pipeline depth %lld",
                                     TM.Instance.c_str(),
                                     static_cast<long long>(TM.PipelineDepth)));

    // Per-parameter knobs must name real parameters of the variant: a typo
    // here would silently leave the default behavior in place.
    auto HasParam = [&](const std::string &Name) {
      for (const TaskParam &Param : Variant.Params)
        if (Param.Name == Name)
          return true;
      return false;
    };
    for (const auto &[Param, Depth] : TM.ArgPipeline) {
      if (!HasParam(Param))
        return Diagnostic(formatString(
            "instance %s pipelines unknown parameter %s of variant %s",
            TM.Instance.c_str(), Param.c_str(), TM.Variant.c_str()));
      if (Depth < 1)
        return Diagnostic(formatString(
            "instance %s gives parameter %s pipeline depth %lld",
            TM.Instance.c_str(), Param.c_str(),
            static_cast<long long>(Depth)));
    }
    for (const std::string &Param : TM.SimtCopyParams)
      if (!HasParam(Param))
        return Diagnostic(formatString(
            "instance %s pins copies of unknown parameter %s of variant %s",
            TM.Instance.c_str(), Param.c_str(), TM.Variant.c_str()));

    for (const std::string &Callee : TM.Calls) {
      if (!hasInstance(Callee))
        return Diagnostic(formatString("instance %s calls unknown instance %s",
                                       TM.Instance.c_str(), Callee.c_str()));
      const TaskMapping &Child = instance(Callee);
      if (!Registry.hasVariant(Child.Variant))
        return Diagnostic(formatString("instance %s uses unknown variant %s",
                                       Child.Instance.c_str(),
                                       Child.Variant.c_str()));
      if (Machine.depthOf(Child.Proc) < Machine.depthOf(TM.Proc))
        return Diagnostic(formatString(
            "instance %s (at %s) dispatches outward to %s (at %s)",
            TM.Instance.c_str(), processorName(TM.Proc),
            Child.Instance.c_str(), processorName(Child.Proc)));
    }
  }

  if (EntryCount != 1)
    return Diagnostic(formatString(
        "mapping must have exactly one entrypoint, found %u", EntryCount));
  return ErrorOrVoid::success();
}
