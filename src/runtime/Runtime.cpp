//===- Runtime.cpp - Host-side compile-and-run API --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

using namespace cypress;

ErrorOr<std::unique_ptr<CompiledKernel>>
cypress::compileKernel(const CompileInput &Input, std::string Name) {
  SharedAllocation Alloc;
  PipelineStats Stats;
  ErrorOr<IRModule> Module =
      PassPipeline::defaultPipeline().run(Input, &Alloc, &Stats);
  if (!Module)
    return Module.diagnostic();
  return std::make_unique<CompiledKernel>(std::move(*Module), std::move(Alloc),
                                          std::move(Name), std::move(Stats));
}
