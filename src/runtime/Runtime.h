//===- Runtime.h - Host-side compile-and-run API ---------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point a downstream user programs against: register
/// tasks, write a mapping, then compile and run kernels on the simulated
/// H100. `CompiledKernel` bundles the lowered IR, the shared-memory plan,
/// the generated CUDA text, and simulation entry points.
///
/// Typical use (see examples/quickstart.cpp):
///
/// \code
///   TaskRegistry Registry;
///   registerGemmTasks(Registry);                  // or your own tasks
///   MappingSpec Mapping = gemmMapping(M, N, K);   // or your own mapping
///   auto Kernel = compileKernel({&Registry, &Mapping,
///                                &MachineModel::h100(), ArgTypes});
///   SimResult R = Kernel->runTiming();            // paper-style TFLOP/s
///   Kernel->runFunctional({&A, &B, &C});          // real results
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_RUNTIME_RUNTIME_H
#define CYPRESS_RUNTIME_RUNTIME_H

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "sim/Simulator.h"

#include <memory>
#include <string>

namespace cypress {

/// A fully lowered kernel plus its execution entry points.
class CompiledKernel {
public:
  CompiledKernel(IRModule Module, SharedAllocation Alloc, std::string Name,
                 PipelineStats Stats = PipelineStats())
      : Module(std::move(Module)), Alloc(std::move(Alloc)),
        Name(std::move(Name)), Stats(std::move(Stats)),
        Leaves(&LeafRegistry::sharedBuiltins()) {}

  const IRModule &module() const { return Module; }
  const SharedAllocation &sharedPlan() const { return Alloc; }
  const std::string &name() const { return Name; }

  /// Per-pass timing and IR-size statistics of the compile that produced
  /// this kernel (empty for hand-assembled kernels).
  const PipelineStats &stats() const { return Stats; }

  /// Extra leaf implementations beyond the builtins. Only user leaves are
  /// stored here; builtin resolution goes through the shared registry.
  void addLeaf(std::string LeafName, LeafFn Fn) {
    Leaves.add(std::move(LeafName), std::move(Fn));
  }

  /// Timing-only simulation (fast; used by the benchmarks and the
  /// autotuner's candidate evaluation). Thread-safe on a shared kernel.
  /// Passing \p Pool (e.g. a CompilerSession) shards this one kernel's
  /// expansion across its workers with bit-identical results; see
  /// simulate() for the nesting caveat. \p Cancel (when active) bounds
  /// the run with the simulator's cooperative checkpoints.
  ErrorOr<SimResult> runTiming(const SimConfig &Config = SimConfig(),
                               SimWorkerPool *Pool = nullptr,
                               const Cancellation *Cancel = nullptr) const {
    SimHints Hints = simHints();
    return simulate(Module, Alloc, Config, Leaves, {},
                    Hints.NumOps ? &Hints : nullptr, Pool, Cancel);
  }

  /// Timing plus functional execution into \p EntryBuffers (one per entry
  /// argument, shapes matching the compile-time types).
  ErrorOr<SimResult>
  runFunctional(const std::vector<TensorData *> &EntryBuffers,
                const SimConfig &Config = SimConfig(),
                SimWorkerPool *Pool = nullptr,
                const Cancellation *Cancel = nullptr) const {
    SimHints Hints = simHints();
    return simulate(Module, Alloc, Config, Leaves, EntryBuffers,
                    Hints.NumOps ? &Hints : nullptr, Pool, Cancel);
  }

  /// One CUDA emission: the generated text plus the printer's counters
  /// (tests cross-check the counters against the post-pipeline IR, and
  /// bench_emit reports them next to wall time).
  struct CudaEmission {
    std::string Source;
    CudaEmitStats Stats;
  };

  /// Emits the warp-specialized CUDA C++ for this kernel from the
  /// post-pipeline IR, with emission statistics.
  CudaEmission emitCuda() const {
    CudaEmission Emission;
    Emission.Source = emitCudaSource(Module, Alloc, Name, Emission.Stats);
    return Emission;
  }

  /// The generated warp-specialized CUDA C++ (structural artifact).
  std::string cudaSource() const { return emitCuda().Source; }

  /// The IR in the paper's textual form (Figures 8/9).
  std::string irDump() const { return printModule(Module); }

private:
  /// Simulator table pre-sizing from the final pass's IR statistics (zero
  /// when this kernel was hand-assembled without pipeline stats).
  SimHints simHints() const {
    SimHints Hints;
    if (!Stats.Passes.empty()) {
      Hints.NumOps = Stats.Passes.back().OpsAfter;
      Hints.NumEvents = Stats.Passes.back().EventsAfter;
    }
    return Hints;
  }

  IRModule Module;
  SharedAllocation Alloc;
  std::string Name;
  PipelineStats Stats;
  LeafRegistry Leaves; ///< User leaves; falls back to sharedBuiltins().
};

/// Runs the full compiler pipeline on \p Input.
ErrorOr<std::unique_ptr<CompiledKernel>>
compileKernel(const CompileInput &Input, std::string Name);

} // namespace cypress

#endif // CYPRESS_RUNTIME_RUNTIME_H
