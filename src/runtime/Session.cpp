//===- Session.cpp - Caching, concurrent compilation sessions --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"

#include "support/FaultInjection.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace cypress;

CompilerSession::CompilerSession(SessionConfig Config) : Config(Config) {}

CompilerSession::~CompilerSession() {
  Accepting.store(false);
  joinWorkers();
}

//===----------------------------------------------------------------------===//
// Admission control and shutdown
//===----------------------------------------------------------------------===//

size_t CompilerSession::admitUpTo(size_t Want) {
  if (Want == 0)
    return 0;
  size_t Take = Want;
  if (Config.MaxQueuedRequests == 0) {
    InFlight.fetch_add(Want);
  } else {
    size_t Cur = InFlight.load();
    while (true) {
      size_t Avail = Config.MaxQueuedRequests > Cur
                         ? Config.MaxQueuedRequests - Cur
                         : 0;
      Take = std::min(Want, Avail);
      if (Take == 0)
        return 0;
      if (InFlight.compare_exchange_weak(Cur, Cur + Take))
        break;
    }
  }
  // Re-checked after the increment (both seq_cst): if a racing shutdown's
  // Accepting store is not visible here, our increment is visible to its
  // drain wait, so it cannot miss this request either way.
  if (!Accepting.load()) {
    release(Take);
    return 0;
  }
  return Take;
}

void CompilerSession::release(size_t N) {
  if (N == 0)
    return;
  if (InFlight.fetch_sub(N) == N) {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    DrainCv.notify_all();
  }
}

Diagnostic CompilerSession::shedDiagnostic() const {
  if (!Accepting.load())
    return Diagnostic(Diagnostic::Code::Cancelled,
                      "compiler session is shut down");
  return Diagnostic(
      Diagnostic::Code::Overloaded,
      formatString("session overloaded: admission limit of %zu concurrent "
                   "requests reached",
                   Config.MaxQueuedRequests));
}

void CompilerSession::shutdown(ShutdownMode Mode) {
  Accepting.store(false);
  if (Mode == ShutdownMode::Abort)
    SessionCancel.cancel();
  {
    std::unique_lock<std::mutex> Lock(DrainMutex);
    DrainCv.wait(Lock, [&] { return InFlight.load() == 0; });
  }
  joinWorkers();
}

void CompilerSession::joinWorkers() {
  // SubmitMutex keeps this from racing a runParallel batch submission; a
  // batch already draining completes on its caller's thread regardless
  // (workers that wake to ShuttingDown exit without claiming items).
  std::lock_guard<std::mutex> Submit(SubmitMutex);
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
  Workers.clear();
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

void CompilerSession::ensureWorkers(unsigned Count) {
  while (Workers.size() < Count)
    Workers.emplace_back([this] { workerMain(); });
}

void CompilerSession::drainJob(JobState &Job) {
  for (size_t I = Job.Next.fetch_add(1); I < Job.N;
       I = Job.Next.fetch_add(1)) {
    (*Job.Fn)(I);
    if (Job.Done.fetch_add(1) + 1 == Job.N) {
      std::lock_guard<std::mutex> Lock(PoolMutex);
      DoneCv.notify_all();
    }
  }
}

void CompilerSession::workerMain() {
  std::shared_ptr<JobState> Last;
  while (true) {
    std::shared_ptr<JobState> Job;
    {
      std::unique_lock<std::mutex> Lock(PoolMutex);
      WorkCv.wait(Lock, [&] {
        return ShuttingDown || (CurrentJob && CurrentJob != Last);
      });
      if (ShuttingDown)
        return;
      Job = Last = CurrentJob;
    }
    // A stale batch is harmless: its index counter is already exhausted,
    // so drainJob immediately falls through.
    drainJob(*Job);
  }
}

void CompilerSession::runParallel(size_t Items,
                                  const std::function<void(size_t)> &Fn) {
  if (Items == 0)
    return;
  unsigned WorkerCount = Config.Workers;
  if (WorkerCount == 0)
    WorkerCount =
        std::max(1u, std::min(4u, std::thread::hardware_concurrency()));
  WorkerCount = static_cast<unsigned>(
      std::min<size_t>(WorkerCount, Items));
  if (WorkerCount <= 1) {
    for (size_t I = 0; I < Items; ++I)
      Fn(I);
    return;
  }

  std::lock_guard<std::mutex> Submit(SubmitMutex);
  ensureWorkers(WorkerCount - 1); // The caller is the remaining worker.
  auto Job = std::make_shared<JobState>();
  Job->Fn = &Fn;
  Job->N = Items;
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    CurrentJob = Job;
  }
  WorkCv.notify_all();
  drainJob(*Job);
  std::unique_lock<std::mutex> Lock(PoolMutex);
  DoneCv.wait(Lock, [&] { return Job->Done.load() == Job->N; });
  // Drop the published job so no stale pointer to this frame's Fn survives
  // the return (late-waking workers see a null CurrentJob and keep
  // sleeping; ones already holding the shared state find its index counter
  // exhausted).
  if (CurrentJob == Job)
    CurrentJob = nullptr;
}

size_t CompilerSession::parallelism() const {
  unsigned WorkerCount = Config.Workers;
  if (WorkerCount == 0)
    WorkerCount =
        std::max(1u, std::min(4u, std::thread::hardware_concurrency()));
  return WorkerCount;
}

void CompilerSession::parallelFor(size_t Items,
                                  const std::function<void(size_t)> &Fn) {
  runParallel(Items, Fn);
}

//===----------------------------------------------------------------------===//
// Cache key
//===----------------------------------------------------------------------===//

namespace {

void appendTensorType(std::ostringstream &OS, const TensorType &Type) {
  OS << elementTypeName(Type.Element) << '[';
  for (unsigned I = 0; I < Type.Dims.rank(); ++I)
    OS << (I ? "x" : "") << Type.Dims.dim(I);
  OS << ']';
}

void appendRegistry(std::ostringstream &OS, const TaskRegistry &Registry) {
  // Inner bodies are opaque std::functions, so their content cannot be
  // fingerprinted; the registry's never-recycled uid stands in for it
  // (an address would suffer ABA when the allocator reuses storage for a
  // registry with identical structure but different bodies). Structure
  // (names, signatures, leaf bindings) is still serialized so the key
  // stays readable.
  OS << "registry#" << Registry.uid() << '{';
  for (const auto &[Name, Variant] : Registry.variants()) {
    OS << Variant.Task << '/' << Name << ':'
       << (Variant.Kind == VariantKind::Leaf ? 'L' : 'I') << '(';
    for (const TaskParam &Param : Variant.Params)
      OS << Param.Name << ',' << Param.Rank << ','
         << elementTypeName(Param.Element) << ','
         << privilegeName(Param.Priv) << ';';
    OS << ')';
    if (Variant.Kind == VariantKind::Leaf)
      OS << Variant.Leaf.Function << '#'
         << execUnitName(Variant.Leaf.Unit);
    OS << ' ';
  }
  OS << '}';
}

void appendMachine(std::ostringstream &OS, const MachineModel &Machine) {
  // Fully content-keyed (unlike the registry there are no opaque parts),
  // so stack-allocated machine variants from autotuning sweeps can never
  // alias through a recycled address.
  OS << "machine{" << Machine.name() << ';';
  for (const ProcessorLevel &Level : Machine.levels())
    OS << static_cast<int>(Level.Kind) << ':' << Level.FanOut << ':'
       << Level.ThreadsPerInstance << ',';
  OS << '|';
  for (const MemoryLevel &Mem : Machine.memories())
    OS << static_cast<int>(Mem.Kind) << ':' << static_cast<int>(Mem.Scope)
       << ':' << Mem.CapacityBytes << ',';
  OS << '}';
}

} // namespace

std::string CompilerSession::cacheKey(const CompileInput &Input) {
  std::ostringstream OS;
  appendRegistry(OS, *Input.Registry);
  // The mapping serializes itself: specs are content-keyed values (see
  // MappingSpec::fingerprint), which is what lets the autotuner's cost
  // cache and this kernel cache agree on candidate identity.
  OS << '|' << Input.Mapping->fingerprint() << '|';
  appendMachine(OS, *Input.Machine);
  OS << "|args{";
  for (const TensorType &Type : Input.EntryArgTypes) {
    appendTensorType(OS, Type);
    OS << ',';
  }
  OS << '}';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

ErrorOr<std::shared_ptr<const CompiledKernel>>
CompilerSession::compile(const CompileInput &Input, const std::string &Name,
                         const CompileOptions &Options) {
  if (admitUpTo(1) == 0)
    return shedDiagnostic();
  Cancellation Cancel(Options.DeadlineAt, Options.Cancel, &SessionCancel);
  bool WasHit = false;
  auto Result = compileKeyed(cacheKey(Input), Input, Name, WasHit, Cancel);
  release(1);
  return Result;
}

ErrorOr<std::shared_ptr<const CompiledKernel>>
CompilerSession::compileKeyed(std::string Key, const CompileInput &Input,
                              const std::string &Name, bool &WasHit,
                              const Cancellation &Cancel) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      ++Stats.Hits;
      WasHit = true;
      return It->second;
    }
    // Counted at lookup time so Hits + Misses always equals the number of
    // compile() calls, even when the compile below fails.
    ++Stats.Misses;
    WasHit = false;
  }

  // Queued-but-unstarted shedding: a request whose token fired (or whose
  // deadline expired) while it waited for a worker exits here, before any
  // pipeline work. Cache hits above are still served — they are cheaper
  // than constructing this diagnostic.
  CancelCheck Entry(Cancel);
  if (Entry.enabled() && Entry.shouldStopNow())
    return Entry.diagnostic("queued compilation");

  // Compile outside the lock so independent misses overlap. Concurrent
  // misses on one key both compile; emplace keeps the first result and
  // every caller shares it.
  SharedAllocation Alloc;
  PipelineStats PassStats;
  PassPipeline Pipeline = PassPipeline::defaultPipeline();
  Pipeline.setVerifyEachPass(Config.VerifyEachPass);
  ErrorOr<IRModule> Module = [&]() -> ErrorOr<IRModule> {
    // Worker-throw containment: a pass that throws (modeled by the
    // worker-throw fault site) must cost exactly one request, not a pool
    // thread — std::thread would std::terminate on an escaped exception.
    // The fault key is the mapping fingerprint, not the cache key: the
    // cache key embeds the registry uid, which differs between sessions,
    // while the fingerprint is pure content — so a probabilistic clause
    // fires on the same candidates in every run at any worker count.
    try {
      FaultPlan &Faults = FaultPlan::global();
      if (Faults.armed() &&
          Faults.shouldFire(FaultSite::WorkerThrow,
                            Input.Mapping->fingerprint()))
        throw std::runtime_error("injected worker exception");
      return Pipeline.run(Input, &Alloc, &PassStats, &Cancel);
    } catch (const std::exception &E) {
      return Diagnostic(Diagnostic::Code::Internal,
                        formatString("worker exception while compiling "
                                     "'%s': %s",
                                     Name.c_str(), E.what()));
    } catch (...) {
      return Diagnostic(Diagnostic::Code::Internal,
                        formatString("worker exception while compiling '%s'",
                                     Name.c_str()));
    }
  }();
  if (!Module)
    // Failures (and cancelled/deadline exits) are never cached; a failing
    // compile that lost a concurrent-miss race against a success on the
    // same key still surfaces its own Diagnostic — the cache keeps the
    // winner's kernel and this caller learns what went wrong with *its*
    // compile (see RobustnessTest ConcurrentMissLoser regression).
    return Module.diagnostic();
  auto Kernel = std::make_shared<const CompiledKernel>(
      std::move(*Module), std::move(Alloc), Name, std::move(PassStats));

  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Cache.emplace(std::move(Key), std::move(Kernel));
  return It->second;
}

std::vector<ErrorOr<std::shared_ptr<const CompiledKernel>>>
CompilerSession::compileAll(const std::vector<Request> &Requests,
                            std::vector<uint8_t> *HitsOut,
                            const PostCompileFn &PostCompile,
                            const CompileOptions &Options) {
  // ErrorOr has no default state, so results land in optionals first.
  std::vector<std::optional<ErrorOr<std::shared_ptr<const CompiledKernel>>>>
      Slots(Requests.size());
  if (HitsOut)
    HitsOut->assign(Requests.size(), 0);

  // Admission is positional: the first Admitted requests run, the tail is
  // shed (overloaded / shutting down) without compiling.
  size_t Admitted = admitUpTo(Requests.size());
  Cancellation Cancel(Options.DeadlineAt, Options.Cancel, &SessionCancel);

  auto Work = [&](size_t I) {
    const Request &R = Requests[I];
    bool WasHit = false;
    // Last-resort containment (compileKeyed already catches pipeline
    // throws): an empty slot or an exception escaping into the pool's
    // std::thread would take the whole process down.
    try {
      Slots[I].emplace(compileKeyed(
          R.Key.empty() ? cacheKey(R.Input) : R.Key, R.Input, R.Name,
          WasHit, Cancel));
    } catch (...) {
      Slots[I].emplace(Diagnostic(
          Diagnostic::Code::Internal,
          formatString("worker exception while compiling '%s'",
                       R.Name.c_str())));
    }
    if (HitsOut)
      (*HitsOut)[I] = WasHit ? 1 : 0;
    if (PostCompile)
      PostCompile(I, *Slots[I]);
  };
  runParallel(Admitted, Work);
  release(Admitted);

  for (size_t I = Admitted; I < Requests.size(); ++I) {
    Slots[I].emplace(shedDiagnostic());
    if (PostCompile)
      PostCompile(I, *Slots[I]);
  }

  std::vector<ErrorOr<std::shared_ptr<const CompiledKernel>>> Results;
  Results.reserve(Slots.size());
  for (auto &Slot : Slots)
    Results.push_back(std::move(*Slot));
  return Results;
}

SessionStats CompilerSession::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

CacheStats CompilerSession::cacheStats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Stats.Hits, Stats.Misses, Cache.size()};
}

bool CompilerSession::isCached(const CompileInput &Input) const {
  std::string Key = cacheKey(Input);
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cache.count(Key) != 0;
}

size_t CompilerSession::cachedKernels() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cache.size();
}

void CompilerSession::clearCache() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Cache.clear();
}
