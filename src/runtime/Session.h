//===- Session.h - Caching, concurrent compilation sessions ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer entry point: a thread-safe CompilerSession owning a
/// keyed cache of compiled kernels. A kernel is identified by what actually
/// determines its lowering — the task registry, the mapping, the machine
/// model, and the entrypoint argument types — so a repeated compile of the
/// same CompileInput is a key construction plus cache lookup (microseconds)
/// rather than a pipeline run (milliseconds), and `compileAll` lowers
/// independent kernels concurrently on a small worker pool.
///
/// Typical use:
///
/// \code
///   CompilerSession Session;
///   auto Kernel = Session.compile({&Registry, &Mapping,
///                                  &MachineModel::h100(), ArgTypes},
///                                 "gemm");
///   if (Kernel)
///     (*Kernel)->runTiming();
///   // ... a later identical request returns the same kernel instantly.
/// \endcode
///
/// Cached kernels are shared as pointers-to-const: they are immutable once
/// compiled, so concurrent callers may run them freely. Kernels that need
/// extra user leaves (addLeaf) should use compileKernel, which returns an
/// owned, mutable kernel.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_RUNTIME_SESSION_H
#define CYPRESS_RUNTIME_SESSION_H

#include "runtime/Runtime.h"
#include "support/Cancel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cypress {

/// Tuning knobs for a CompilerSession.
struct SessionConfig {
  /// Worker threads used by compileAll; 0 = min(hardware_concurrency, 4).
  unsigned Workers = 0;
  /// Run the IR verifier between pipeline stages (see PassPipeline). On by
  /// default; serving deployments can turn it off for compile throughput.
  bool VerifyEachPass = true;
  /// Admission bound: the maximum number of requests (summed across
  /// concurrent compile and compileAll callers) in flight at once. Requests
  /// beyond the bound are shed immediately with a Code::Overloaded
  /// diagnostic instead of queueing unboundedly; a compileAll batch is
  /// admitted as a positional prefix and the tail is shed. 0 = unbounded.
  size_t MaxQueuedRequests = 0;
};

/// Per-request serving options: an optional wall-clock deadline and an
/// optional caller-held cancellation token. Defaults are fully inert (the
/// session-wide abort token is always honored regardless).
struct CompileOptions {
  Deadline DeadlineAt;
  const CancelToken *Cancel = nullptr;
};

/// How CompilerSession::shutdown treats in-flight work: Drain waits for it
/// to complete normally; Abort fires the session-wide cancel token so every
/// in-flight request exits at its next checkpoint with Code::Cancelled.
enum class ShutdownMode { Drain, Abort };

/// Cache-effectiveness counters (monotonic over the session's lifetime).
struct SessionStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// One consistent snapshot of the kernel cache: the hit/miss counters plus
/// the number of resident kernels, taken under a single lock. This is the
/// observability surface the autotuner reports after a sweep (hits tell it
/// how many candidate evaluations skipped the pass pipeline entirely).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  size_t Entries = 0;
};

/// A thread-safe compilation service with a keyed kernel cache and a
/// persistent worker pool. The pool is created lazily on the first batched
/// call and reused for the session's lifetime, so sweeping clients (the
/// autotuner) never pay per-batch thread spawns.
///
/// The session is also a SimWorkerPool: the same persistent workers that
/// compile a batch can shard a single kernel's timing simulation
/// (`Kernel->runTiming(SimConfig(), &Session)`). Never call parallelFor —
/// directly or through runTiming — from code already running on the
/// pool's own workers (e.g. a compileAll PostCompile hook): batches are
/// serialized on a lock the outer batch still holds, so the nested
/// submission would deadlock.
class CompilerSession : public SimWorkerPool {
public:
  explicit CompilerSession(SessionConfig Config = SessionConfig());
  ~CompilerSession();

  CompilerSession(const CompilerSession &) = delete;
  CompilerSession &operator=(const CompilerSession &) = delete;

  /// One compileAll work item. Key may carry a precomputed cacheKey(Input)
  /// so callers that already serialized the input (the autotuner's cost
  /// cache) don't pay for it twice; leave it empty to have compileAll
  /// compute it.
  struct Request {
    CompileInput Input;
    std::string Name;
    std::string Key;
  };

  /// Compiles \p Input, or returns the cached kernel compiled for an
  /// identical input. Thread-safe; concurrent misses on the same key both
  /// compile, and the first to finish populates the cache (a losing
  /// *successful* compile is discarded in favor of the cached winner, so
  /// callers always share one kernel per key; a losing *errored* compile
  /// surfaces its own Diagnostic and is never cached). \p Options bounds
  /// the request: an expired deadline or fired token yields a structured
  /// Code::DeadlineExceeded / Code::Cancelled diagnostic — cache hits are
  /// still served (they cost microseconds), and failed or abandoned
  /// compiles never become cache entries.
  ErrorOr<std::shared_ptr<const CompiledKernel>>
  compile(const CompileInput &Input, const std::string &Name,
          const CompileOptions &Options = CompileOptions());

  /// Per-request continuation of compileAll, invoked on the worker thread
  /// that finished (or cache-served) request \p Index, before the worker
  /// picks up its next request. This is how batched clients overlap
  /// post-compile work (the autotuner's simulator timing runs) with the
  /// compilation of later requests. Must be safe to call concurrently for
  /// distinct indices.
  using PostCompileFn = std::function<void(
      size_t Index,
      const ErrorOr<std::shared_ptr<const CompiledKernel>> &Kernel)>;

  /// Compiles every request, scheduling work across the session's worker
  /// pool. Results are positional: Result[i] belongs to Requests[i].
  /// Deterministic: the pipeline is pure, so concurrent compilation yields
  /// bit-identical kernels regardless of scheduling. When \p HitsOut is
  /// non-null it is filled positionally with whether each request was
  /// served from the cache — the exact attribution (unlike diffing the
  /// global counters, which absorb concurrent clients' traffic). When
  /// \p PostCompile is non-null it runs on the worker right after each
  /// request resolves (see PostCompileFn). \p Options applies to every
  /// request in the batch: requests still queued when the deadline expires
  /// or the token fires are shed without compiling (each gets its own
  /// structured diagnostic). Under SessionConfig::MaxQueuedRequests, the
  /// batch is admitted as a prefix and the tail is shed with
  /// Code::Overloaded; PostCompile still runs for shed requests.
  std::vector<ErrorOr<std::shared_ptr<const CompiledKernel>>>
  compileAll(const std::vector<Request> &Requests,
             std::vector<uint8_t> *HitsOut = nullptr,
             const PostCompileFn &PostCompile = nullptr,
             const CompileOptions &Options = CompileOptions());

  /// Stops admitting new requests and waits for in-flight ones: Drain lets
  /// them finish normally; Abort cancels them at their next checkpoint
  /// (each returns Code::Cancelled). Joins the worker pool. Idempotent,
  /// and safe to call concurrently with serving threads — they observe
  /// shed diagnostics, never crashes. After shutdown, compile/compileAll
  /// reject every request with a structured diagnostic; cache inspection
  /// (stats, cachedKernels, isCached) still works.
  void shutdown(ShutdownMode Mode = ShutdownMode::Drain);

  /// False once shutdown() has begun; new requests are being shed.
  bool acceptingRequests() const { return Accepting.load(); }

  /// The cache key for \p Input: the registry's structural fingerprint and
  /// identity (inner task bodies are opaque callables, so object identity
  /// stands in for body content), the full mapping, the machine, and the
  /// entry argument types. Exposed for tests and cache introspection.
  static std::string cacheKey(const CompileInput &Input);

  /// SimWorkerPool: the worker count compileAll batches resolve to (the
  /// configured Workers, or the hardware-derived default).
  size_t parallelism() const override;
  /// SimWorkerPool: runs \p Fn over the session's pool, the calling
  /// thread participating. See the class comment for the nesting caveat.
  void parallelFor(size_t Items,
                   const std::function<void(size_t)> &Fn) override;

  SessionStats stats() const;
  /// Hits, misses, and resident-kernel count in one locked snapshot.
  CacheStats cacheStats() const;
  /// True if a compile of \p Input would be served from the cache right
  /// now. Does not count as a hit or miss. Lets callers (the autotuner)
  /// attribute cache effectiveness to their own requests instead of
  /// diffing the global counters, which other threads may be advancing.
  bool isCached(const CompileInput &Input) const;
  size_t cachedKernels() const;
  void clearCache();

private:
  /// The shared implementation: \p Key is cacheKey(Input); \p WasHit
  /// reports whether the cache served the request; \p Cancel is the
  /// request's effective cancellation surface (deadline + caller token +
  /// session token). Contains worker exceptions: a throwing pass (or an
  /// injected worker-throw fault) becomes a per-request Code::Internal
  /// diagnostic and the pool keeps serving.
  ErrorOr<std::shared_ptr<const CompiledKernel>>
  compileKeyed(std::string Key, const CompileInput &Input,
               const std::string &Name, bool &WasHit,
               const Cancellation &Cancel);

  /// Reserves up to \p Want admission slots; returns how many were granted
  /// (0 when shedding — overloaded or shutting down). Rechecks Accepting
  /// after the reservation so a concurrent shutdown() can never miss an
  /// in-flight increment.
  size_t admitUpTo(size_t Want);
  /// Returns \p N admission slots and wakes a draining shutdown().
  void release(size_t N);
  /// The diagnostic a shed request observes (shutdown vs. overload).
  Diagnostic shedDiagnostic() const;
  /// Joins the worker pool (idempotent; shared by shutdown and ~).
  void joinWorkers();

  /// One batched unit of work on the pool: items claim indices from a
  /// shared atomic, so a job survives stale wakeups from earlier batches
  /// (each batch is a fresh JobState; exhausted batches hand out indices
  /// past N and do nothing).
  struct JobState {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t N = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
  };

  /// Runs Fn(0..Items) across the worker pool; the calling thread
  /// participates. Batches from concurrent callers are serialized (items
  /// within each batch still run concurrently).
  void runParallel(size_t Items, const std::function<void(size_t)> &Fn);
  void ensureWorkers(unsigned Count);
  void drainJob(JobState &Job);
  void workerMain();

  SessionConfig Config;
  mutable std::mutex Mutex;
  std::map<std::string, std::shared_ptr<const CompiledKernel>> Cache;
  SessionStats Stats;

  // Admission control and shutdown (see shutdown()). InFlight counts
  // admitted-but-unfinished requests; DrainCv wakes shutdown when it
  // reaches zero. SessionCancel is the Abort fan-out: it rides along as
  // Cancellation::SessionToken on every request.
  std::atomic<bool> Accepting{true};
  std::atomic<size_t> InFlight{0};
  CancelToken SessionCancel;
  std::mutex DrainMutex;
  std::condition_variable DrainCv;

  // Worker pool (lazily started, joined on destruction).
  std::mutex SubmitMutex; ///< Serializes runParallel callers.
  std::mutex PoolMutex;   ///< Guards CurrentJob / ShuttingDown.
  std::condition_variable WorkCv, DoneCv;
  std::vector<std::thread> Workers;
  std::shared_ptr<JobState> CurrentJob;
  bool ShuttingDown = false;
};

} // namespace cypress

#endif // CYPRESS_RUNTIME_SESSION_H
