//===- Session.h - Caching, concurrent compilation sessions ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer entry point: a thread-safe CompilerSession owning a
/// keyed cache of compiled kernels. A kernel is identified by what actually
/// determines its lowering — the task registry, the mapping, the machine
/// model, and the entrypoint argument types — so a repeated compile of the
/// same CompileInput is a key construction plus cache lookup (microseconds)
/// rather than a pipeline run (milliseconds), and `compileAll` lowers
/// independent kernels concurrently on a small worker pool.
///
/// Typical use:
///
/// \code
///   CompilerSession Session;
///   auto Kernel = Session.compile({&Registry, &Mapping,
///                                  &MachineModel::h100(), ArgTypes},
///                                 "gemm");
///   if (Kernel)
///     (*Kernel)->runTiming();
///   // ... a later identical request returns the same kernel instantly.
/// \endcode
///
/// Cached kernels are shared as pointers-to-const: they are immutable once
/// compiled, so concurrent callers may run them freely. Kernels that need
/// extra user leaves (addLeaf) should use compileKernel, which returns an
/// owned, mutable kernel.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_RUNTIME_SESSION_H
#define CYPRESS_RUNTIME_SESSION_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cypress {

/// Tuning knobs for a CompilerSession.
struct SessionConfig {
  /// Worker threads used by compileAll; 0 = min(hardware_concurrency, 4).
  unsigned Workers = 0;
  /// Run the IR verifier between pipeline stages (see PassPipeline). On by
  /// default; serving deployments can turn it off for compile throughput.
  bool VerifyEachPass = true;
};

/// Cache-effectiveness counters (monotonic over the session's lifetime).
struct SessionStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// A thread-safe compilation service with a keyed kernel cache.
class CompilerSession {
public:
  explicit CompilerSession(SessionConfig Config = SessionConfig());

  CompilerSession(const CompilerSession &) = delete;
  CompilerSession &operator=(const CompilerSession &) = delete;

  /// One compileAll work item.
  struct Request {
    CompileInput Input;
    std::string Name;
  };

  /// Compiles \p Input, or returns the cached kernel compiled for an
  /// identical input. Thread-safe; concurrent misses on the same key both
  /// compile, and the first to finish populates the cache (the loser's
  /// result is discarded, so callers always share one kernel per key).
  ErrorOr<std::shared_ptr<const CompiledKernel>>
  compile(const CompileInput &Input, const std::string &Name);

  /// Compiles every request, scheduling cache misses across the worker
  /// pool. Results are positional: Result[i] belongs to Requests[i].
  /// Deterministic: the pipeline is pure, so concurrent compilation yields
  /// bit-identical kernels regardless of scheduling.
  std::vector<ErrorOr<std::shared_ptr<const CompiledKernel>>>
  compileAll(const std::vector<Request> &Requests);

  /// The cache key for \p Input: the registry's structural fingerprint and
  /// identity (inner task bodies are opaque callables, so object identity
  /// stands in for body content), the full mapping, the machine, and the
  /// entry argument types. Exposed for tests and cache introspection.
  static std::string cacheKey(const CompileInput &Input);

  SessionStats stats() const;
  size_t cachedKernels() const;
  void clearCache();

private:
  SessionConfig Config;
  mutable std::mutex Mutex;
  std::map<std::string, std::shared_ptr<const CompiledKernel>> Cache;
  SessionStats Stats;
};

} // namespace cypress

#endif // CYPRESS_RUNTIME_SESSION_H
