//===- Kernels.h - Cypress kernel library ----------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernels evaluated in the paper (Section 5), each expressed as a
/// Cypress logical description plus a tuned mapping specification:
///
///  * GEMM (Figure 5 / Figure 13a) and Batched-GEMM (Figure 13b),
///  * Dual-GEMM, A.B1 + A.B2 fused (Figure 13c),
///  * GEMM+Reduction, C = A.B with y = rowsum(A) fused (Figure 13d),
///  * Flash Attention 2 and 3 forward kernels (Figure 14).
///
/// Every builder returns the task registry contributions, the mapping, and
/// the entry argument types for one problem instantiation. Mappings expose
/// the tunables the paper tunes: tile sizes, warpgroup counts, pipeline
/// depth, and memory placements.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_KERNELS_KERNELS_H
#define CYPRESS_KERNELS_KERNELS_H

#include "frontend/Task.h"
#include "mapping/Mapping.h"

#include <cstdint>
#include <vector>

namespace cypress {

//===----------------------------------------------------------------------===//
// GEMM family
//===----------------------------------------------------------------------===//

/// Tile/mapping parameters of the GEMM kernels. Defaults reproduce the
/// paper's Hopper configuration (128x256 block tiles, K-tile 64, two
/// consumer warpgroups, 3-deep pipeline).
struct GemmConfig {
  int64_t M = 4096;
  int64_t N = 4096;
  int64_t K = 4096;
  int64_t L = 1;   ///< Batch count (Batched-GEMM).
  int64_t U = 128; ///< Block tile rows.
  int64_t V = 256; ///< Block tile columns.
  int64_t W = 64;  ///< K-reduction tile.
  int64_t WGS = 2; ///< Consumer warpgroups per block.
  int64_t Pipe = 3;
  bool WarpSpecialize = true;
  /// Per-stream pipeline-depth overrides for the A and B shared tiles
  /// (TaskMapping::ArgPipeline). 0 keeps the loop depth \c Pipe; a positive
  /// value rotates that stream through its own buffer count.
  int64_t PipeA = 0;
  int64_t PipeB = 0;
  /// Execution-unit assignment for the A/B tile loads: true issues them on
  /// the TMA engine (the default), false pins them to SIMT copies
  /// (TaskMapping::SimtCopyParams).
  bool TmaA = true;
  bool TmaB = true;
  /// Caps the allocator's per-block shared-memory budget, in KiB
  /// (TaskMapping::SharedLimitBytes — the occupancy knob). 0 = machine
  /// capacity.
  int64_t SharedLimitKB = 0;

  /// Static mapping feasibility against \p Machine, checked before any
  /// compilation. Rejects (with a diagnostic naming the violated
  /// constraint):
  ///  * tile sizes that do not divide the problem,
  ///  * row splits that break the 64-row WGMMA band rule (U/WGS % 64) — a
  ///    real-hardware legality constraint the permissive simulator does not
  ///    enforce, so this is policy rather than a mirror of a compiler
  ///    check,
  ///  * accumulator tiles that overflow the per-thread register file
  ///    (mirrors the resource allocator's formula exactly),
  ///  * tile/pipeline combinations whose concurrently-live shared-memory
  ///    footprint exceeds the machine's per-block capacity even before
  ///    aliasing (a lower bound, so a pass here may still fail allocation,
  ///    but a rejection here is definitive).
  /// This is the single home of the validity logic previously copy-pasted
  /// into the sweep loops of examples/ and bench/.
  ErrorOrVoid validate(const MachineModel &Machine) const;
};

/// Assigns the tunable named \p Name ("M", "N", "K", "L", "U", "V", "W",
/// "WGS", "PIPE", "WSPEC", "PIPE_A", "PIPE_B", "TMA_A", "TMA_B", "SMEM")
/// on \p Config; errors on unknown names. The autotuner applies
/// search-space axis values through this.
ErrorOrVoid applyTunable(GemmConfig &Config, const std::string &Name,
                         int64_t Value);

/// Registers the GEMM task tree of Figure 5a (host / block / tile /
/// warpgroup variants plus the clear and store trees).
void registerGemmTasks(TaskRegistry &Registry);
MappingSpec gemmMapping(const GemmConfig &Config);
/// Entry argument types, in order C, A, B.
std::vector<TensorType> gemmArgTypes(const GemmConfig &Config);

/// Batched GEMM: L independent problems stored row-stacked
/// (C is [L*M, N], A is [L*M, K], B is [L*K, N]).
void registerBatchedGemmTasks(TaskRegistry &Registry);
MappingSpec batchedGemmMapping(const GemmConfig &Config);
std::vector<TensorType> batchedGemmArgTypes(const GemmConfig &Config);

/// Dual-GEMM: C = A.B1 + A.B2 in one kernel (Gated Linear Units).
/// Entry args: C, A, B1, B2.
void registerDualGemmTasks(TaskRegistry &Registry);
MappingSpec dualGemmMapping(const GemmConfig &Config);
std::vector<TensorType> dualGemmArgTypes(const GemmConfig &Config);

/// GEMM+Reduction: C = A.B and y(i) = sum_k A(i,k) in one kernel. The
/// reduction is computed per block-column into Y[N/V, M]; row 0 is the
/// kernel's logical y (other rows are identical replicas — the reduction
/// runs redundantly per column block so the SIMT units overlap the Tensor
/// Core everywhere, see docs/DESIGN.md). Entry args: C, A, B, Y.
void registerGemmRedTasks(TaskRegistry &Registry);
MappingSpec gemmRedMapping(const GemmConfig &Config);
std::vector<TensorType> gemmRedArgTypes(const GemmConfig &Config);

//===----------------------------------------------------------------------===//
// Flash Attention
//===----------------------------------------------------------------------===//

/// Forward-attention parameters (FP16, HeadDim = 128 as in Figure 14).
struct AttentionConfig {
  int64_t Batch = 1;
  /// 12 heads: divisible by both the FA2 (192-row) and FA3 (128-row) query
  /// blocks at every sequence length of Figure 14.
  int64_t Heads = 12;
  int64_t SeqLen = 4096;
  int64_t HeadDim = 128;
  int64_t BR = 192; ///< Query rows per block (64 per consumer warpgroup).
  int64_t BC = 64;  ///< Key/value rows per main-loop step.
  int64_t WGS = 3;  ///< Consumer warpgroups.
  int64_t Pipe = 2;
  /// FA3 restructuring: stage the score tile so the next Q.K^T overlaps
  /// the current softmax (Section 5.3).
  bool StageScores = false;
  /// Per-stream pipeline-depth overrides for the K and V shared tiles
  /// (TaskMapping::ArgPipeline). 0 keeps the loop depth \c Pipe.
  int64_t PipeK = 0;
  int64_t PipeV = 0;
  /// Caps the allocator's per-block shared-memory budget, in KiB. 0 =
  /// machine capacity.
  int64_t SharedLimitKB = 0;

  /// Static mapping feasibility against \p Machine (see
  /// GemmConfig::validate): block divisibility, the WGMMA band rule on
  /// BR/WGS, a per-thread register lower bound for the output accumulator
  /// and score tiles, and a shared-memory lower bound for the Q tile plus
  /// the K/V pipeline buffers.
  ErrorOrVoid validate(const MachineModel &Machine) const;
};

/// Assigns the tunable named \p Name ("BATCH", "HEADS", "SEQ", "D", "BR",
/// "BC", "WGS", "PIPE", "STAGE", "PIPE_K", "PIPE_V", "SMEM") on \p Config;
/// errors on unknown names.
ErrorOrVoid applyTunable(AttentionConfig &Config, const std::string &Name,
                         int64_t Value);

/// The tuned configurations of Section 5.3: Cypress FA2 uses three
/// consumer warpgroups over 192-row query blocks; Cypress FA3 uses two
/// warpgroups over 128-row blocks with the staged-scores restructuring.
AttentionConfig fa2Config(int64_t SeqLen);
AttentionConfig fa3Config(int64_t SeqLen);

/// Registers the attention task tree (FA2 when StageScores = false, FA3
/// when true — both share most tasks). Entry args: O, Q, K, V, all
/// [Batch*Heads*SeqLen, HeadDim] row-stacked.
void registerAttentionTasks(TaskRegistry &Registry);
MappingSpec attentionMapping(const AttentionConfig &Config);
std::vector<TensorType> attentionArgTypes(const AttentionConfig &Config);

/// FLOP count conventions used by the benchmarks (matching the paper:
/// 2MNK for GEMM, 4 * S^2 * D per head for attention).
double gemmFlops(const GemmConfig &Config);
double attentionFlops(const AttentionConfig &Config);

} // namespace cypress

#endif // CYPRESS_KERNELS_KERNELS_H
