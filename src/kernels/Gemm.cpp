//===- Gemm.cpp - GEMM-family Cypress kernels -------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 5 GEMM program and its variants, written against the C++
/// embedding of the Cypress DSL. The task tree mirrors the paper exactly:
///
///   gemm_host   (HOST)  - tiles C into U x V blocks, prange over tiles
///   gemm_block  (BLOCK) - K-loop over W-wide tiles into an accumulator
///   gemm_tile   (BLOCK) - splits rows across WGS consumer warpgroups
///   gemm_wg     (WARPGROUP leaf) - the WGMMA dispatch
///
/// plus the clear and store trees the paper elides. The mapping requests
/// warp specialization and a 3-deep pipeline on gemm_block; Cypress then
/// derives the Figure 1b structure (TMA double/triple buffering, mbarrier
/// synchronization, register-resident accumulator) automatically.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <cmath>

using namespace cypress;

namespace {

double flops2MNK(const std::vector<Shape> &Shapes) {
  // Shapes: C [M, N], A [M, K], ...
  return 2.0 * static_cast<double>(Shapes[0].dim(0)) *
         static_cast<double>(Shapes[0].dim(1)) *
         static_cast<double>(Shapes[1].dim(1));
}

double flopsElems(const std::vector<Shape> &Shapes) {
  return static_cast<double>(Shapes[0].numElements());
}

/// Registers the clear and store task trees shared by the GEMM family
/// (idempotent: callers may register several kernels into one registry).
void registerCommonTasks(TaskRegistry &Registry) {
  if (Registry.hasVariant("clear_block"))
    return;

  // clear: zero an accumulator, split across warpgroups.
  Registry.addInner(
      "clear", "clear_block",
      {{"C", 2, ElementType::F32, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        PartitionHandle Cp =
            Ctx.partitionByBlocks(Args[0], Shape({M / Wgs, N}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("clear", {Ctx.index(Cp, {I[0], ScalarExpr(0)})});
        });
      });
  Registry.addLeaf("clear", "clear_wg_leaf",
                   {{"C", 2, ElementType::F32, Privilege::Write}},
                   {"clear", ExecUnit::SIMT, flopsElems});

  // store: write the accumulator to the output tile through a shared
  // staging buffer (the TMA store path of Figure 1b).
  Registry.addInner(
      "store", "store_block",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"Src", 2, ElementType::F32, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        PartitionHandle Cp =
            Ctx.partitionByBlocks(Args[0], Shape({M / Wgs, N}));
        PartitionHandle Sp =
            Ctx.partitionByBlocks(Args[1], Shape({M / Wgs, N}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("store", {Ctx.index(Cp, {I[0], ScalarExpr(0)}),
                               Ctx.index(Sp, {I[0], ScalarExpr(0)})});
        });
      });
  Registry.addLeaf("store", "store_wg_leaf",
                   {{"C", 2, ElementType::F16, Privilege::Write},
                    {"Src", 2, ElementType::F32, Privilege::Read}},
                   {"store", ExecUnit::SIMT, flopsElems});
}

/// Shared mapping instances for the clear and store trees.
void appendCommonMappings(std::vector<TaskMapping> &Instances, int64_t Wgs) {
  {
    TaskMapping TM;
    TM.Instance = "clear_block";
    TM.Variant = "clear_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::None};
    TM.Tunables["WGS"] = Wgs;
    TM.Calls = {"clear_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "clear_wg";
    TM.Variant = "clear_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Register};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "store_block";
    TM.Variant = "store_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::Global, Memory::None};
    TM.Tunables["WGS"] = Wgs;
    TM.Calls = {"store_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "store_wg";
    TM.Variant = "store_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Shared, Memory::Register};
    Instances.push_back(TM);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// GEMM (Figure 5)
//===----------------------------------------------------------------------===//

void cypress::registerGemmTasks(TaskRegistry &Registry) {
  if (Registry.hasVariant("gemm_host"))
    return;
  registerCommonTasks(Registry);

  // gemm_host: tile the output and launch a parallel group per tile.
  Registry.addInner(
      "gemm", "gemm_host",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t U = Ctx.tunable("U"), V = Ctx.tunable("V");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Cp = Ctx.partitionByBlocks(Args[0], Shape({U, V}));
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({U, K}));
        PartitionHandle Bp = Ctx.partitionByBlocks(Args[2], Shape({K, V}));
        Ctx.prange({ScalarExpr(M / U), ScalarExpr(N / V)},
                   [&](std::vector<ScalarExpr> I) {
                     Ctx.launch("gemm",
                                {Ctx.index(Cp, {I[0], I[1]}),
                                 Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                                 Ctx.index(Bp, {ScalarExpr(0), I[1]})});
                   });
      });

  // gemm_block: K-loop into a register-file accumulator.
  Registry.addInner(
      "gemm", "gemm_block",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t W = Ctx.tunable("W");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({M, W}));
        PartitionHandle Bp = Ctx.partitionByBlocks(Args[2], Shape({W, N}));
        TensorHandle Cacc =
            Ctx.makeTensor("Cacc", Shape({M, N}), ElementType::F32);
        Ctx.launch("clear", {Cacc});
        Ctx.srange(ScalarExpr(K / W), [&](ScalarExpr K2) {
          Ctx.launch("gemm", {Cacc, Ctx.index(Ap, {ScalarExpr(0), K2}),
                              Ctx.index(Bp, {K2, ScalarExpr(0)})});
        });
        Ctx.launch("store", {Args[0], Cacc});
      });

  // gemm_tile: row split across consumer warpgroups (lowers per-thread
  // register pressure for large tiles, Section 3.4).
  Registry.addInner(
      "gemm", "gemm_tile",
      {{"C", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Cp =
            Ctx.partitionByBlocks(Args[0], Shape({M / Wgs, N}));
        PartitionHandle Ap =
            Ctx.partitionByBlocks(Args[1], Shape({M / Wgs, K}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("gemm", {Ctx.index(Cp, {I[0], ScalarExpr(0)}),
                              Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                              Args[2]});
        });
      });

  // gemm_wg: the Tensor Core leaf (CuTe WGMMA dispatch in the paper).
  Registry.addLeaf("gemm", "gemm_wg_leaf",
                   {{"C", 2, ElementType::F32, Privilege::ReadWrite},
                    {"A", 2, ElementType::F16, Privilege::Read},
                    {"B", 2, ElementType::F16, Privilege::Read}},
                   {"wgmma_fp16", ExecUnit::TensorCore, flops2MNK});
}

ErrorOrVoid GemmConfig::validate(const MachineModel &Machine) const {
  if (M <= 0 || N <= 0 || K <= 0 || L <= 0 || U <= 0 || V <= 0 || W <= 0 ||
      WGS <= 0 || Pipe <= 0)
    return Diagnostic("gemm problem sizes and tunables must be positive");
  if (PipeA < 0 || PipeB < 0 || SharedLimitKB < 0)
    return Diagnostic(
        "gemm per-stream pipeline depths and the shared-memory limit must "
        "be non-negative (0 = default)");
  if (M % U != 0 || N % V != 0 || K % W != 0)
    return Diagnostic(formatString(
        "tile %lldx%lld (K-tile %lld) does not divide the %lldx%lldx%lld "
        "problem",
        static_cast<long long>(U), static_cast<long long>(V),
        static_cast<long long>(W), static_cast<long long>(M),
        static_cast<long long>(N), static_cast<long long>(K)));
  // The 64-row band rule: each consumer warpgroup's row split must be a
  // whole number of WGMMA bands.
  if (U % WGS != 0 || (U / WGS) % 64 != 0)
    return Diagnostic(formatString(
        "row split U/WGS = %lld/%lld does not divide the tile height into "
        "64-row WGMMA bands",
        static_cast<long long>(U), static_cast<long long>(WGS)));

  // Per-thread register budget for the FP32 accumulator tile, using the
  // resource allocator's own formula: the warpgroup's (U/WGS) x V slice is
  // distributed across the group's threads.
  int64_t RegisterBytes = Machine.capacityBytes(Memory::Register);
  int64_t Threads = Machine.threadsPerInstance(Processor::Warpgroup);
  if (RegisterBytes > 0 && Threads > 0) {
    int64_t PerThread = ceilDiv((U / WGS) * V * 4, Threads);
    if (PerThread > RegisterBytes)
      return Diagnostic(formatString(
          "accumulator tile needs %lld bytes of registers per thread but "
          "the machine provides %lld; split it across more warpgroups",
          static_cast<long long>(PerThread),
          static_cast<long long>(RegisterBytes)));
  }

  // Shared-memory lower bound. The A/B pipeline buffers are concurrently
  // live across the whole K-loop, so they can never alias each other; the
  // output staging tile may alias them (its live range starts after the
  // loop), so the bound is the max of the two groups, not their sum. Each
  // stream is sized by its own effective depth (ArgPipeline override or
  // the loop depth), exactly as the allocator multiplies per-tensor
  // PipelineDepth. A SharedLimitKB cap tightens the budget the same way
  // the allocator's LimitBytes does.
  int64_t SharedBytes = Machine.capacityBytes(Memory::Shared);
  if (SharedLimitKB > 0) {
    int64_t Limit = SharedLimitKB * 1024;
    SharedBytes = SharedBytes > 0 ? std::min(SharedBytes, Limit) : Limit;
  }
  if (SharedBytes > 0) {
    int64_t DepthA = PipeA > 0 ? PipeA : Pipe;
    int64_t DepthB = PipeB > 0 ? PipeB : Pipe;
    int64_t LoopBytes = alignUp(U * W * 2, 128) * DepthA +
                        alignUp(W * V * 2, 128) * DepthB;
    int64_t StagingBytes = WGS * alignUp((U / WGS) * V * 2, 128);
    int64_t Need = std::max(LoopBytes, StagingBytes);
    if (Need > SharedBytes)
      return Diagnostic(formatString(
          "shared memory needs at least %lld bytes (%lld/%lld-deep "
          "pipelines of %lldx%lld and %lldx%lld tiles) but the budget is "
          "%lld per block",
          static_cast<long long>(Need), static_cast<long long>(DepthA),
          static_cast<long long>(DepthB), static_cast<long long>(U),
          static_cast<long long>(W), static_cast<long long>(W),
          static_cast<long long>(V), static_cast<long long>(SharedBytes)));
  }
  return ErrorOrVoid::success();
}

ErrorOrVoid cypress::applyTunable(GemmConfig &Config, const std::string &Name,
                                  int64_t Value) {
  if (Name == "M")
    Config.M = Value;
  else if (Name == "N")
    Config.N = Value;
  else if (Name == "K")
    Config.K = Value;
  else if (Name == "L")
    Config.L = Value;
  else if (Name == "U")
    Config.U = Value;
  else if (Name == "V")
    Config.V = Value;
  else if (Name == "W")
    Config.W = Value;
  else if (Name == "WGS")
    Config.WGS = Value;
  else if (Name == "PIPE")
    Config.Pipe = Value;
  else if (Name == "WSPEC")
    Config.WarpSpecialize = Value != 0;
  else if (Name == "PIPE_A")
    Config.PipeA = Value;
  else if (Name == "PIPE_B")
    Config.PipeB = Value;
  else if (Name == "TMA_A")
    Config.TmaA = Value != 0;
  else if (Name == "TMA_B")
    Config.TmaB = Value != 0;
  else if (Name == "SMEM")
    Config.SharedLimitKB = Value;
  else
    return Diagnostic(formatString("gemm has no tunable named %s",
                                   Name.c_str()));
  return ErrorOrVoid::success();
}

MappingSpec cypress::gemmMapping(const GemmConfig &Config) {
  std::vector<TaskMapping> Instances;
  {
    TaskMapping TM;
    TM.Instance = "gemm_host";
    TM.Variant = "gemm_host";
    TM.Proc = Processor::Host;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global};
    TM.Tunables = {{"U", Config.U}, {"V", Config.V}};
    TM.Entrypoint = true;
    TM.Calls = {"gemm_block"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gemm_block";
    TM.Variant = "gemm_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global};
    TM.Tunables = {{"W", Config.W}};
    TM.Calls = {"clear_block", "gemm_tile", "store_block"};
    TM.WarpSpecialize = Config.WarpSpecialize;
    TM.PipelineDepth = Config.Pipe;
    if (Config.SharedLimitKB > 0)
      TM.SharedLimitBytes = Config.SharedLimitKB * 1024;
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gemm_tile";
    TM.Variant = "gemm_tile";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::None, Memory::Shared, Memory::Shared};
    TM.Tunables = {{"WGS", Config.WGS}};
    TM.Calls = {"gemm_wg"};
    // Per-stream knobs: the A/B tiles staged at this launch boundary may
    // rotate through their own buffer count or pin their loads to SIMT.
    if (Config.PipeA > 0)
      TM.ArgPipeline["A"] = Config.PipeA;
    if (Config.PipeB > 0)
      TM.ArgPipeline["B"] = Config.PipeB;
    if (!Config.TmaA)
      TM.SimtCopyParams.push_back("A");
    if (!Config.TmaB)
      TM.SimtCopyParams.push_back("B");
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gemm_wg";
    TM.Variant = "gemm_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Register, Memory::Shared, Memory::Shared};
    Instances.push_back(TM);
  }
  appendCommonMappings(Instances, Config.WGS);
  return MappingSpec(std::move(Instances));
}

std::vector<TensorType> cypress::gemmArgTypes(const GemmConfig &Config) {
  return {
      {Shape({Config.M, Config.N}), ElementType::F16},
      {Shape({Config.M, Config.K}), ElementType::F16},
      {Shape({Config.K, Config.N}), ElementType::F16},
  };
}

double cypress::gemmFlops(const GemmConfig &Config) {
  return 2.0 * static_cast<double>(Config.L) *
         static_cast<double>(Config.M) * static_cast<double>(Config.N) *
         static_cast<double>(Config.K);
}

//===----------------------------------------------------------------------===//
// Batched GEMM (Figure 13b)
//===----------------------------------------------------------------------===//

void cypress::registerBatchedGemmTasks(TaskRegistry &Registry) {
  registerGemmTasks(Registry);
  if (Registry.hasVariant("bgemm_host"))
    return;

  // Row-stacked layout: C [L*M, N], A [L*M, K], B [L*K, N]. A block's row
  // index determines its batch, which selects the matching K-panel of B.
  Registry.addInner(
      "gemm", "bgemm_host",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t U = Ctx.tunable("U"), V = Ctx.tunable("V");
        int64_t L = Ctx.tunable("L");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t LM = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        int64_t M = LM / L;
        PartitionHandle Cp = Ctx.partitionByBlocks(Args[0], Shape({U, V}));
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({U, K}));
        PartitionHandle Bp = Ctx.partitionByBlocks(Args[2], Shape({K, V}));
        Ctx.prange(
            {ScalarExpr(LM / U), ScalarExpr(N / V)},
            [&](std::vector<ScalarExpr> I) {
              ScalarExpr Batch = I[0].floorDiv(ScalarExpr(M / U));
              Ctx.launch("gemm", {Ctx.index(Cp, {I[0], I[1]}),
                                  Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                                  Ctx.index(Bp, {Batch, I[1]})});
            });
      });
}

MappingSpec cypress::batchedGemmMapping(const GemmConfig &Config) {
  MappingSpec Base = gemmMapping(Config);
  std::vector<TaskMapping> Instances = Base.instances();
  for (TaskMapping &TM : Instances) {
    if (TM.Instance == "gemm_host") {
      TM.Variant = "bgemm_host";
      TM.Tunables["L"] = Config.L;
    }
  }
  return MappingSpec(std::move(Instances));
}

std::vector<TensorType>
cypress::batchedGemmArgTypes(const GemmConfig &Config) {
  return {
      {Shape({Config.L * Config.M, Config.N}), ElementType::F16},
      {Shape({Config.L * Config.M, Config.K}), ElementType::F16},
      {Shape({Config.L * Config.K, Config.N}), ElementType::F16},
  };
}

//===----------------------------------------------------------------------===//
// Dual-GEMM (Figure 13c)
//===----------------------------------------------------------------------===//

void cypress::registerDualGemmTasks(TaskRegistry &Registry) {
  registerCommonTasks(Registry);
  if (Registry.hasVariant("dual_host"))
    return;

  Registry.addInner(
      "dual", "dual_host",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B1", 2, ElementType::F16, Privilege::Read},
       {"B2", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t U = Ctx.tunable("U"), V = Ctx.tunable("V");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Cp = Ctx.partitionByBlocks(Args[0], Shape({U, V}));
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({U, K}));
        PartitionHandle B1p = Ctx.partitionByBlocks(Args[2], Shape({K, V}));
        PartitionHandle B2p = Ctx.partitionByBlocks(Args[3], Shape({K, V}));
        Ctx.prange({ScalarExpr(M / U), ScalarExpr(N / V)},
                   [&](std::vector<ScalarExpr> I) {
                     Ctx.launch("dual",
                                {Ctx.index(Cp, {I[0], I[1]}),
                                 Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                                 Ctx.index(B1p, {ScalarExpr(0), I[1]}),
                                 Ctx.index(B2p, {ScalarExpr(0), I[1]})});
                   });
      });

  Registry.addInner(
      "dual", "dual_block",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B1", 2, ElementType::F16, Privilege::Read},
       {"B2", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t W = Ctx.tunable("W");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({M, W}));
        PartitionHandle B1p = Ctx.partitionByBlocks(Args[2], Shape({W, N}));
        PartitionHandle B2p = Ctx.partitionByBlocks(Args[3], Shape({W, N}));
        TensorHandle Cacc =
            Ctx.makeTensor("Cacc", Shape({M, N}), ElementType::F32);
        Ctx.launch("clear", {Cacc});
        Ctx.srange(ScalarExpr(K / W), [&](ScalarExpr K2) {
          Ctx.launch("dual", {Cacc, Ctx.index(Ap, {ScalarExpr(0), K2}),
                              Ctx.index(B1p, {K2, ScalarExpr(0)}),
                              Ctx.index(B2p, {K2, ScalarExpr(0)})});
        });
        Ctx.launch("store", {Args[0], Cacc});
      });

  Registry.addInner(
      "dual", "dual_tile",
      {{"C", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B1", 2, ElementType::F16, Privilege::Read},
       {"B2", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Cp =
            Ctx.partitionByBlocks(Args[0], Shape({M / Wgs, N}));
        PartitionHandle Ap =
            Ctx.partitionByBlocks(Args[1], Shape({M / Wgs, K}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("dual", {Ctx.index(Cp, {I[0], ScalarExpr(0)}),
                              Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                              Args[2], Args[3]});
        });
      });

  Registry.addLeaf(
      "dual", "dual_wg_leaf",
      {{"C", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B1", 2, ElementType::F16, Privilege::Read},
       {"B2", 2, ElementType::F16, Privilege::Read}},
      {"dual_wgmma", ExecUnit::TensorCore,
       [](const std::vector<Shape> &Shapes) {
         return 4.0 * static_cast<double>(Shapes[0].dim(0)) *
                static_cast<double>(Shapes[0].dim(1)) *
                static_cast<double>(Shapes[1].dim(1));
       }});
}

MappingSpec cypress::dualGemmMapping(const GemmConfig &Config) {
  std::vector<TaskMapping> Instances;
  {
    TaskMapping TM;
    TM.Instance = "dual_host";
    TM.Variant = "dual_host";
    TM.Proc = Processor::Host;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"U", Config.U}, {"V", Config.V}};
    TM.Entrypoint = true;
    TM.Calls = {"dual_block"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "dual_block";
    TM.Variant = "dual_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"W", Config.W}};
    TM.Calls = {"clear_block", "dual_tile", "store_block"};
    TM.WarpSpecialize = Config.WarpSpecialize;
    // Three tile buffers per iteration (A, B1, B2) leave room for only a
    // double-buffered pipeline within the 227 KB of shared memory:
    // (16 + 32 + 32) KB x 2 + 64 KB staging = 224 KB.
    TM.PipelineDepth = std::min<int64_t>(Config.Pipe, 2);
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "dual_tile";
    TM.Variant = "dual_tile";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::None, Memory::Shared, Memory::Shared,
               Memory::Shared};
    TM.Tunables = {{"WGS", Config.WGS}};
    TM.Calls = {"dual_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "dual_wg";
    TM.Variant = "dual_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Register, Memory::Shared, Memory::Shared,
               Memory::Shared};
    Instances.push_back(TM);
  }
  appendCommonMappings(Instances, Config.WGS);
  return MappingSpec(std::move(Instances));
}

std::vector<TensorType> cypress::dualGemmArgTypes(const GemmConfig &Config) {
  return {
      {Shape({Config.M, Config.N}), ElementType::F16},
      {Shape({Config.M, Config.K}), ElementType::F16},
      {Shape({Config.K, Config.N}), ElementType::F16},
      {Shape({Config.K, Config.N}), ElementType::F16},
  };
}

//===----------------------------------------------------------------------===//
// GEMM + Reduction (Figure 13d)
//===----------------------------------------------------------------------===//

void cypress::registerGemmRedTasks(TaskRegistry &Registry) {
  registerGemmTasks(Registry);
  if (Registry.hasVariant("gr_host"))
    return;

  Registry.addInner(
      "gemmred", "gr_host",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read},
       {"Y", 2, ElementType::F32, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t U = Ctx.tunable("U"), V = Ctx.tunable("V");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Cp = Ctx.partitionByBlocks(Args[0], Shape({U, V}));
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({U, K}));
        PartitionHandle Bp = Ctx.partitionByBlocks(Args[2], Shape({K, V}));
        PartitionHandle Yp = Ctx.partitionByBlocks(Args[3], Shape({1, U}));
        Ctx.prange({ScalarExpr(M / U), ScalarExpr(N / V)},
                   [&](std::vector<ScalarExpr> I) {
                     Ctx.launch("gemmred",
                                {Ctx.index(Cp, {I[0], I[1]}),
                                 Ctx.index(Ap, {I[0], ScalarExpr(0)}),
                                 Ctx.index(Bp, {ScalarExpr(0), I[1]}),
                                 Ctx.index(Yp, {I[1], I[0]})});
                   });
      });

  Registry.addInner(
      "gemmred", "gr_block",
      {{"C", 2, ElementType::F16, Privilege::Write},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read},
       {"Y", 2, ElementType::F32, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t W = Ctx.tunable("W");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[1]).dim(1);
        PartitionHandle Ap = Ctx.partitionByBlocks(Args[1], Shape({M, W}));
        PartitionHandle Bp = Ctx.partitionByBlocks(Args[2], Shape({W, N}));
        TensorHandle Cacc =
            Ctx.makeTensor("Cacc", Shape({M, N}), ElementType::F32);
        TensorHandle Yacc =
            Ctx.makeTensor("Yacc", Shape({1, M}), ElementType::F32);
        Ctx.launch("clear", {Cacc});
        Ctx.launch("clear_row", {Yacc});
        Ctx.srange(ScalarExpr(K / W), [&](ScalarExpr K2) {
          Ctx.launch("gemmred_tile",
                     {Cacc, Yacc, Ctx.index(Ap, {ScalarExpr(0), K2}),
                      Ctx.index(Bp, {K2, ScalarExpr(0)})});
        });
        Ctx.launch("store", {Args[0], Cacc});
        Ctx.launch("store_row", {Args[3], Yacc});
      });

  Registry.addInner(
      "gemmred_tile", "gr_tile",
      {{"C", 2, ElementType::F32, Privilege::ReadWrite},
       {"Y", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        const Shape &C = Ctx.shapeOf(Args[0]);
        int64_t M = C.dim(0), N = C.dim(1);
        int64_t K = Ctx.shapeOf(Args[2]).dim(1);
        PartitionHandle Cp =
            Ctx.partitionByBlocks(Args[0], Shape({M / Wgs, N}));
        PartitionHandle Yp =
            Ctx.partitionByBlocks(Args[1], Shape({1, M / Wgs}));
        PartitionHandle Ap =
            Ctx.partitionByBlocks(Args[2], Shape({M / Wgs, K}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("gemmred_wg",
                     {Ctx.index(Cp, {I[0], ScalarExpr(0)}),
                      Ctx.index(Yp, {ScalarExpr(0), I[0]}),
                      Ctx.index(Ap, {I[0], ScalarExpr(0)}), Args[3]});
        });
      });

  // The warpgroup inner variant launches two independent leaves: the WGMMA
  // on the Tensor Core and the row reduction on the SIMT lanes. They touch
  // disjoint accumulators, so the compiler schedules them concurrently —
  // this is the overlap Triton misses (Section 5.2).
  Registry.addInner(
      "gemmred_wg", "gr_wg",
      {{"C", 2, ElementType::F32, Privilege::ReadWrite},
       {"Y", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read},
       {"B", 2, ElementType::F16, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.launch("gemm", {Args[0], Args[2], Args[3]});
        Ctx.launch("rowsum", {Args[1], Args[2]});
      });

  Registry.addLeaf(
      "rowsum", "rowsum_wg_leaf",
      {{"Y", 2, ElementType::F32, Privilege::ReadWrite},
       {"A", 2, ElementType::F16, Privilege::Read}},
      {"row_sum_tile", ExecUnit::SIMT,
       [](const std::vector<Shape> &Shapes) {
         return static_cast<double>(Shapes[1].numElements());
       }});

  // clear_row / store_row: column-split variants for the [1, M] vector.
  Registry.addInner(
      "clear_row", "clear_row_block",
      {{"Y", 2, ElementType::F32, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        int64_t M = Ctx.shapeOf(Args[0]).dim(1);
        PartitionHandle Yp =
            Ctx.partitionByBlocks(Args[0], Shape({1, M / Wgs}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("clear", {Ctx.index(Yp, {ScalarExpr(0), I[0]})});
        });
      });

  Registry.addInner(
      "store_row", "store_row_block",
      {{"Y", 2, ElementType::F32, Privilege::Write},
       {"Src", 2, ElementType::F32, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        int64_t M = Ctx.shapeOf(Args[0]).dim(1);
        PartitionHandle Yp =
            Ctx.partitionByBlocks(Args[0], Shape({1, M / Wgs}));
        PartitionHandle Sp =
            Ctx.partitionByBlocks(Args[1], Shape({1, M / Wgs}));
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          Ctx.launch("store_vec", {Ctx.index(Yp, {ScalarExpr(0), I[0]}),
                                   Ctx.index(Sp, {ScalarExpr(0), I[0]})});
        });
      });
  Registry.addLeaf("store_vec", "store_vec_leaf",
                   {{"Y", 2, ElementType::F32, Privilege::Write},
                    {"Src", 2, ElementType::F32, Privilege::Read}},
                   {"store", ExecUnit::SIMT, flopsElems});
}

MappingSpec cypress::gemmRedMapping(const GemmConfig &Config) {
  std::vector<TaskMapping> Instances;
  {
    TaskMapping TM;
    TM.Instance = "gr_host";
    TM.Variant = "gr_host";
    TM.Proc = Processor::Host;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"U", Config.U}, {"V", Config.V}};
    TM.Entrypoint = true;
    TM.Calls = {"gr_block"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gr_block";
    TM.Variant = "gr_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"W", Config.W}};
    TM.Calls = {"clear_block", "clear_row_block", "gr_tile", "store_block",
                "store_row_block"};
    TM.WarpSpecialize = Config.WarpSpecialize;
    TM.PipelineDepth = Config.Pipe;
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gr_tile";
    TM.Variant = "gr_tile";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::None, Memory::None, Memory::Shared, Memory::Shared};
    TM.Tunables = {{"WGS", Config.WGS}};
    TM.Calls = {"gr_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gr_wg";
    TM.Variant = "gr_wg";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::None, Memory::None, Memory::Shared, Memory::Shared};
    TM.Calls = {"gemm_wg", "rowsum_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "gemm_wg";
    TM.Variant = "gemm_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Register, Memory::Shared, Memory::Shared};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "rowsum_wg";
    TM.Variant = "rowsum_wg_leaf";
    TM.Proc = Processor::Warpgroup;
    // The reduction accumulator lives in the register file; Triton's
    // heuristic placement into shared memory is what Section 5.2 shows
    // costs 2x (the ablation bench flips this choice).
    TM.Mems = {Memory::Register, Memory::Shared};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "clear_row_block";
    TM.Variant = "clear_row_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::None};
    TM.Tunables = {{"WGS", Config.WGS}};
    TM.Calls = {"clear_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "store_row_block";
    TM.Variant = "store_row_block";
    TM.Proc = Processor::Block;
    TM.Mems = {Memory::Global, Memory::None};
    TM.Tunables = {{"WGS", Config.WGS}};
    TM.Calls = {"store_vec_wg"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "store_vec_wg";
    TM.Variant = "store_vec_leaf";
    TM.Proc = Processor::Warpgroup;
    TM.Mems = {Memory::Shared, Memory::Register};
    Instances.push_back(TM);
  }
  appendCommonMappings(Instances, Config.WGS);
  return MappingSpec(std::move(Instances));
}

std::vector<TensorType> cypress::gemmRedArgTypes(const GemmConfig &Config) {
  return {
      {Shape({Config.M, Config.N}), ElementType::F16},
      {Shape({Config.M, Config.K}), ElementType::F16},
      {Shape({Config.K, Config.N}), ElementType::F16},
      {Shape({Config.N / Config.V, Config.M}), ElementType::F32},
  };
}
