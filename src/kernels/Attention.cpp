//===- Attention.cpp - Flash Attention 2/3 Cypress kernels ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward attention (Section 5.3). The logical description follows the
/// Flash Attention 2 algorithm: per 192-row query block, loop over 64-row
/// key/value tiles computing S = Q.K^T, an online-softmax update, and
/// O += P.V, with the running max/denominator kept in registers. Query
/// rows split across three consumer warpgroups (the tuning the paper found
/// competitive with Flash Attention 3); K/V tiles stream through shared
/// memory via the TMA with a 2-deep pipeline.
///
/// The FA3 variant (StageScores) restructures the loop exactly as the
/// Flash Attention 3 paper does: the score tile is copied into a staging
/// register tile immediately after Q.K^T, so the *next* iteration's Q.K^T
/// (which only write-after-read depends on the staging copy, not on the
/// softmax) can overlap the current softmax. Cypress infers all of the
/// interleaved synchronization from the sequential program.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <cmath>

using namespace cypress;

namespace {

double flopsQK(const std::vector<Shape> &Shapes) {
  // S [m, BC], Q [m, D]: 2 * m * BC * D.
  return 2.0 * static_cast<double>(Shapes[0].dim(0)) *
         static_cast<double>(Shapes[0].dim(1)) *
         static_cast<double>(Shapes[1].dim(1));
}

double flopsPV(const std::vector<Shape> &Shapes) {
  // O [m, D], S [m, BC]: 2 * m * D * BC.
  return 2.0 * static_cast<double>(Shapes[0].dim(0)) *
         static_cast<double>(Shapes[0].dim(1)) *
         static_cast<double>(Shapes[1].dim(1));
}

double flopsSoftmax(const std::vector<Shape> &Shapes) {
  // Per score: scale, max pass, subtract, exponential (~8 FLOP-equivalents
  // on the SFU path including the FP32<->FP16 conversions), sum pass; plus
  // two D-wide passes over the output accumulator for the rescale.
  double M = static_cast<double>(Shapes[0].dim(0));
  double N = static_cast<double>(Shapes[0].dim(1));
  double D = static_cast<double>(Shapes[3].dim(1));
  return M * (12.0 * N + 2.0 * D);
}

/// Declares a warpgroup-splitting inner task that partitions all arguments
/// row-wise and forwards to \p Child. Several attention stages share this
/// shape, differing only in which arguments exist.
void addRowSplitTask(TaskRegistry &Registry, const std::string &Task,
                     const std::string &Variant, const std::string &Child,
                     std::vector<TaskParam> Params,
                     std::vector<bool> SplitArg) {
  Registry.addInner(
      Task, Variant, Params,
      [Child, SplitArg](InnerContext &Ctx,
                        std::vector<TensorHandle> Args) {
        int64_t Wgs = Ctx.tunable("WGS");
        std::vector<PartitionHandle> Parts(Args.size());
        for (size_t I = 0; I < Args.size(); ++I) {
          if (!SplitArg[I])
            continue;
          const Shape &S = Ctx.shapeOf(Args[I]);
          if (S.rank() == 2 && S.dim(0) > 1) {
            Parts[I] =
                Ctx.partitionByBlocks(Args[I], Shape({S.dim(0) / Wgs,
                                                      S.dim(1)}));
          } else if (S.rank() == 1) {
            Parts[I] = Ctx.partitionByBlocks(Args[I],
                                             Shape({S.dim(0) / Wgs}));
          }
        }
        Ctx.prange({ScalarExpr(Wgs)}, [&](std::vector<ScalarExpr> I) {
          std::vector<TensorHandle> Pieces;
          for (size_t A = 0; A < Args.size(); ++A) {
            if (!SplitArg[A]) {
              Pieces.push_back(Args[A]);
              continue;
            }
            const Shape &S = Ctx.shapeOf(Args[A]);
            if (S.rank() == 1)
              Pieces.push_back(Ctx.index(Parts[A], {I[0]}));
            else
              Pieces.push_back(
                  Ctx.index(Parts[A], {I[0], ScalarExpr(0)}));
          }
          Ctx.launch(Child, Pieces, Ctx.scalarArgs());
        });
      });
}

} // namespace

AttentionConfig cypress::fa2Config(int64_t SeqLen) {
  AttentionConfig Config;
  Config.SeqLen = SeqLen;
  Config.WGS = 3;
  Config.BR = 192;
  Config.BC = 128;
  Config.Pipe = 2;
  Config.StageScores = false;
  return Config;
}

AttentionConfig cypress::fa3Config(int64_t SeqLen) {
  // Same three-consumer-warpgroup tuning as FA2 (the paper found this
  // competitive with the reference FA3's two-warpgroup layout), plus the
  // staged-scores main loop.
  AttentionConfig Config = fa2Config(SeqLen);
  Config.StageScores = true;
  return Config;
}

ErrorOrVoid AttentionConfig::validate(const MachineModel &Machine) const {
  if (Batch <= 0 || Heads <= 0 || SeqLen <= 0 || HeadDim <= 0 || BR <= 0 ||
      BC <= 0 || WGS <= 0 || Pipe <= 0)
    return Diagnostic("attention problem sizes and tunables must be positive");
  if (PipeK < 0 || PipeV < 0 || SharedLimitKB < 0)
    return Diagnostic(
        "attention per-stream pipeline depths and the shared-memory limit "
        "must be non-negative (0 = default)");
  // The host task tiles the row-stacked [Batch*Heads*SeqLen, D] tensors by
  // BR-row query blocks (blocks may straddle head boundaries — Heads is
  // chosen so the panel indexing still lands on whole heads), and the main
  // loop streams BC-row K/V tiles over one sequence.
  if ((Batch * Heads * SeqLen) % BR != 0 || SeqLen % BC != 0)
    return Diagnostic(formatString(
        "query block %lld / key block %lld do not divide the %lld stacked "
        "rows / sequence length %lld",
        static_cast<long long>(BR), static_cast<long long>(BC),
        static_cast<long long>(Batch * Heads * SeqLen),
        static_cast<long long>(SeqLen)));
  if (BR % WGS != 0 || (BR / WGS) % 64 != 0)
    return Diagnostic(formatString(
        "row split BR/WGS = %lld/%lld does not divide the query block into "
        "64-row WGMMA bands",
        static_cast<long long>(BR), static_cast<long long>(WGS)));

  // Register lower bound: the output accumulator and the score tile(s) are
  // concurrently live in every main-loop iteration, each split row-wise
  // across the consumer warpgroups.
  int64_t RegisterBytes = Machine.capacityBytes(Memory::Register);
  int64_t Threads = Machine.threadsPerInstance(Processor::Warpgroup);
  if (RegisterBytes > 0 && Threads > 0) {
    int64_t Rows = BR / WGS;
    int64_t ScoreTiles = StageScores ? 2 : 1;
    int64_t PerThread = ceilDiv(Rows * HeadDim * 4, Threads) +
                        ScoreTiles * ceilDiv(Rows * BC * 4, Threads);
    if (PerThread > RegisterBytes)
      return Diagnostic(formatString(
          "accumulator and score tiles need %lld bytes of registers per "
          "thread but the machine provides %lld; split across more "
          "warpgroups or shrink BC",
          static_cast<long long>(PerThread),
          static_cast<long long>(RegisterBytes)));
  }

  // Shared lower bound, mirroring the allocator's aliasing on this
  // mapping: the Q tile is live across the qk launch and truly interferes
  // with the K pipeline buffers, so they sum. The V pipeline feeds the
  // later pv launch and its buffers fully alias the Q+K region (the
  // allocator serializes the two groups with write-after-read edges), so
  // the loop bound is max(Q + K-deep, V-deep), and the output staging
  // tile only matters if it exceeds everything else.
  int64_t SharedBytes = Machine.capacityBytes(Memory::Shared);
  if (SharedLimitKB > 0) {
    int64_t Limit = SharedLimitKB * 1024;
    SharedBytes = SharedBytes > 0 ? std::min(SharedBytes, Limit) : Limit;
  }
  if (SharedBytes > 0) {
    int64_t DepthK = PipeK > 0 ? PipeK : Pipe;
    int64_t DepthV = PipeV > 0 ? PipeV : Pipe;
    int64_t QBytes = alignUp(BR * HeadDim * 2, 128);
    int64_t TileBytes = alignUp(BC * HeadDim * 2, 128);
    int64_t LoopBytes = std::max(QBytes + TileBytes * DepthK,
                                 TileBytes * DepthV);
    int64_t StagingBytes = WGS * alignUp((BR / WGS) * HeadDim * 2, 128);
    int64_t Need = std::max(LoopBytes, StagingBytes);
    if (Need > SharedBytes)
      return Diagnostic(formatString(
          "shared memory needs at least %lld bytes (Q tile plus "
          "%lld/%lld-deep K/V pipelines) but the budget is %lld per block",
          static_cast<long long>(Need), static_cast<long long>(DepthK),
          static_cast<long long>(DepthV),
          static_cast<long long>(SharedBytes)));
  }
  return ErrorOrVoid::success();
}

ErrorOrVoid cypress::applyTunable(AttentionConfig &Config,
                                  const std::string &Name, int64_t Value) {
  if (Name == "BATCH")
    Config.Batch = Value;
  else if (Name == "HEADS")
    Config.Heads = Value;
  else if (Name == "SEQ")
    Config.SeqLen = Value;
  else if (Name == "D")
    Config.HeadDim = Value;
  else if (Name == "BR")
    Config.BR = Value;
  else if (Name == "BC")
    Config.BC = Value;
  else if (Name == "WGS")
    Config.WGS = Value;
  else if (Name == "PIPE")
    Config.Pipe = Value;
  else if (Name == "STAGE")
    Config.StageScores = Value != 0;
  else if (Name == "PIPE_K")
    Config.PipeK = Value;
  else if (Name == "PIPE_V")
    Config.PipeV = Value;
  else if (Name == "SMEM")
    Config.SharedLimitKB = Value;
  else
    return Diagnostic(formatString("attention has no tunable named %s",
                                   Name.c_str()));
  return ErrorOrVoid::success();
}

void cypress::registerAttentionTasks(TaskRegistry &Registry) {
  if (Registry.hasVariant("fa_host"))
    return;

  TaskParam OW{"O", 2, ElementType::F16, Privilege::Write};
  TaskParam QR{"Q", 2, ElementType::F16, Privilege::Read};
  TaskParam KR{"K", 2, ElementType::F16, Privilege::Read};
  TaskParam VR{"V", 2, ElementType::F16, Privilege::Read};

  // fa_host: one block per 192-row query band; K/V panels per head.
  Registry.addInner(
      "fa", "fa_host", {OW, QR, KR, VR},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        int64_t BR = Ctx.tunable("BR");
        int64_t S = Ctx.tunable("S");
        const Shape &O = Ctx.shapeOf(Args[0]);
        int64_t Rows = O.dim(0), D = O.dim(1);
        PartitionHandle Op = Ctx.partitionByBlocks(Args[0], Shape({BR, D}));
        PartitionHandle Qp = Ctx.partitionByBlocks(Args[1], Shape({BR, D}));
        PartitionHandle Kp = Ctx.partitionByBlocks(Args[2], Shape({S, D}));
        PartitionHandle Vp = Ctx.partitionByBlocks(Args[3], Shape({S, D}));
        Ctx.prange({ScalarExpr(Rows / BR)}, [&](std::vector<ScalarExpr> I) {
          ScalarExpr Head = I[0].floorDiv(ScalarExpr(S / BR));
          Ctx.launch("fa", {Ctx.index(Op, {I[0], ScalarExpr(0)}),
                            Ctx.index(Qp, {I[0], ScalarExpr(0)}),
                            Ctx.index(Kp, {Head, ScalarExpr(0)}),
                            Ctx.index(Vp, {Head, ScalarExpr(0)})});
        });
      });

  // The FA2 main loop (per block): S = Q.K^T; online softmax; O += P.V.
  auto Fa2Body = [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
    int64_t BC = Ctx.tunable("BC");
    const Shape &O = Ctx.shapeOf(Args[0]);
    int64_t BR = O.dim(0), D = O.dim(1);
    int64_t S = Ctx.shapeOf(Args[2]).dim(0);
    int64_t ScaleFx = static_cast<int64_t>(
        65536.0 / std::sqrt(static_cast<double>(D)));

    PartitionHandle Kp = Ctx.partitionByBlocks(Args[2], Shape({BC, D}));
    PartitionHandle Vp = Ctx.partitionByBlocks(Args[3], Shape({BC, D}));
    TensorHandle Oacc =
        Ctx.makeTensor("Oacc", Shape({BR, D}), ElementType::F32);
    TensorHandle Mx = Ctx.makeTensor("Mx", Shape({BR}), ElementType::F32);
    TensorHandle L = Ctx.makeTensor("L", Shape({BR}), ElementType::F32);
    TensorHandle Sc =
        Ctx.makeTensor("Sc", Shape({BR, BC}), ElementType::F32);

    Ctx.launch("fa_init", {Oacc, Mx, L});
    Ctx.srange(ScalarExpr(S / BC), [&](ScalarExpr K2) {
      Ctx.launch("fa_qk",
                 {Sc, Args[1], Ctx.index(Kp, {K2, ScalarExpr(0)})});
      Ctx.launch("fa_softmax", {Sc, Mx, L, Oacc},
                 {ScalarExpr(ScaleFx)});
      Ctx.launch("fa_pv", {Oacc, Sc, Ctx.index(Vp, {K2, ScalarExpr(0)})});
    });
    Ctx.launch("fa_out", {Args[0], Oacc, L});
  };
  Registry.addInner("fa", "fa2_block", {OW, QR, KR, VR}, Fa2Body);

  // The FA3 restructuring: stage the scores so the next Q.K^T overlaps the
  // current softmax (Section 5.3's pipelined main loop).
  auto Fa3Body = [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
    int64_t BC = Ctx.tunable("BC");
    const Shape &O = Ctx.shapeOf(Args[0]);
    int64_t BR = O.dim(0), D = O.dim(1);
    int64_t S = Ctx.shapeOf(Args[2]).dim(0);
    int64_t ScaleFx = static_cast<int64_t>(
        65536.0 / std::sqrt(static_cast<double>(D)));

    PartitionHandle Kp = Ctx.partitionByBlocks(Args[2], Shape({BC, D}));
    PartitionHandle Vp = Ctx.partitionByBlocks(Args[3], Shape({BC, D}));
    TensorHandle Oacc =
        Ctx.makeTensor("Oacc", Shape({BR, D}), ElementType::F32);
    TensorHandle Mx = Ctx.makeTensor("Mx", Shape({BR}), ElementType::F32);
    TensorHandle L = Ctx.makeTensor("L", Shape({BR}), ElementType::F32);
    TensorHandle Sc =
        Ctx.makeTensor("Sc", Shape({BR, BC}), ElementType::F32);
    TensorHandle Sc2 =
        Ctx.makeTensor("Sc2", Shape({BR, BC}), ElementType::F32);

    Ctx.launch("fa_init", {Oacc, Mx, L});
    Ctx.srange(ScalarExpr(S / BC), [&](ScalarExpr K2) {
      Ctx.launch("fa_qk",
                 {Sc, Args[1], Ctx.index(Kp, {K2, ScalarExpr(0)})});
      // Staging copy: after it completes, Sc is free for the next
      // iteration's Q.K^T while the softmax chews on Sc2.
      Ctx.launch("fa_stage", {Sc2, Sc});
      Ctx.launch("fa_softmax", {Sc2, Mx, L, Oacc},
                 {ScalarExpr(ScaleFx)});
      Ctx.launch("fa_pv", {Oacc, Sc2, Ctx.index(Vp, {K2, ScalarExpr(0)})});
    });
    Ctx.launch("fa_out", {Args[0], Oacc, L});
  };
  Registry.addInner("fa", "fa3_block", {OW, QR, KR, VR}, Fa3Body);

  //===--- Stage task trees (warpgroup row splits + leaves) ---------------===//

  addRowSplitTask(Registry, "fa_init", "fa_init_block", "fa_init_wg",
                  {{"O", 2, ElementType::F32, Privilege::Write},
                   {"Mx", 1, ElementType::F32, Privilege::Write},
                   {"L", 1, ElementType::F32, Privilege::Write}},
                  {true, true, true});
  Registry.addInner(
      "fa_init_wg", "fa_init_wg",
      {{"O", 2, ElementType::F32, Privilege::Write},
       {"Mx", 1, ElementType::F32, Privilege::Write},
       {"L", 1, ElementType::F32, Privilege::Write}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.launch("clear", {Args[0]});
        Ctx.launch("smx_init", {Args[1], Args[2]});
      });
  Registry.addLeaf("smx_init", "smx_init_leaf",
                   {{"Mx", 1, ElementType::F32, Privilege::Write},
                    {"L", 1, ElementType::F32, Privilege::Write}},
                   {"softmax_init", ExecUnit::SIMT,
                    [](const std::vector<Shape> &Shapes) {
                      return static_cast<double>(Shapes[0].numElements());
                    }});

  addRowSplitTask(Registry, "fa_qk", "fa_qk_block", "fa_qk_wg",
                  {{"S", 2, ElementType::F32, Privilege::Write},
                   {"Q", 2, ElementType::F16, Privilege::Read},
                   {"K", 2, ElementType::F16, Privilege::Read}},
                  {true, true, false});
  Registry.addLeaf("fa_qk_wg", "fa_qk_wg_leaf",
                   {{"S", 2, ElementType::F32, Privilege::Write},
                    {"Q", 2, ElementType::F16, Privilege::Read},
                    {"K", 2, ElementType::F16, Privilege::Read}},
                   {"wgmma_fp16_bt_set", ExecUnit::TensorCore, flopsQK});

  addRowSplitTask(Registry, "fa_softmax", "fa_softmax_block",
                  "fa_softmax_wg",
                  {{"S", 2, ElementType::F32, Privilege::ReadWrite},
                   {"Mx", 1, ElementType::F32, Privilege::ReadWrite},
                   {"L", 1, ElementType::F32, Privilege::ReadWrite},
                   {"O", 2, ElementType::F32, Privilege::ReadWrite}},
                  {true, true, true, true});
  Registry.addLeaf("fa_softmax_wg", "fa_softmax_wg_leaf",
                   {{"S", 2, ElementType::F32, Privilege::ReadWrite},
                    {"Mx", 1, ElementType::F32, Privilege::ReadWrite},
                    {"L", 1, ElementType::F32, Privilege::ReadWrite},
                    {"O", 2, ElementType::F32, Privilege::ReadWrite}},
                   {"softmax_step", ExecUnit::SIMT, flopsSoftmax});

  addRowSplitTask(Registry, "fa_pv", "fa_pv_block", "fa_pv_wg",
                  {{"O", 2, ElementType::F32, Privilege::ReadWrite},
                   {"S", 2, ElementType::F32, Privilege::Read},
                   {"V", 2, ElementType::F16, Privilege::Read}},
                  {true, true, false});
  Registry.addLeaf("fa_pv_wg", "fa_pv_wg_leaf",
                   {{"O", 2, ElementType::F32, Privilege::ReadWrite},
                    {"S", 2, ElementType::F32, Privilege::Read},
                    {"V", 2, ElementType::F16, Privilege::Read}},
                   {"wgmma_fp16", ExecUnit::TensorCore, flopsPV});

  addRowSplitTask(Registry, "fa_stage", "fa_stage_block", "fa_stage_wg",
                  {{"Dst", 2, ElementType::F32, Privilege::Write},
                   {"Src", 2, ElementType::F32, Privilege::Read}},
                  {true, true});
  Registry.addLeaf("fa_stage_wg", "fa_stage_wg_leaf",
                   {{"Dst", 2, ElementType::F32, Privilege::Write},
                    {"Src", 2, ElementType::F32, Privilege::Read}},
                   {"store", ExecUnit::SIMT,
                    [](const std::vector<Shape> &Shapes) {
                      return static_cast<double>(Shapes[0].numElements());
                    }});

  addRowSplitTask(Registry, "fa_out", "fa_out_block", "fa_out_wg",
                  {{"O", 2, ElementType::F16, Privilege::Write},
                   {"Acc", 2, ElementType::F32, Privilege::ReadWrite},
                   {"L", 1, ElementType::F32, Privilege::Read}},
                  {true, true, true});
  Registry.addInner(
      "fa_out_wg", "fa_out_wg",
      {{"O", 2, ElementType::F16, Privilege::Write},
       {"Acc", 2, ElementType::F32, Privilege::ReadWrite},
       {"L", 1, ElementType::F32, Privilege::Read}},
      [](InnerContext &Ctx, std::vector<TensorHandle> Args) {
        Ctx.launch("smx_fin", {Args[1], Args[2]});
        Ctx.launch("store", {Args[0], Args[1]});
      });
  Registry.addLeaf("smx_fin", "smx_fin_leaf",
                   {{"O", 2, ElementType::F32, Privilege::ReadWrite},
                    {"L", 1, ElementType::F32, Privilege::Read}},
                   {"softmax_finalize", ExecUnit::SIMT,
                    [](const std::vector<Shape> &Shapes) {
                      return static_cast<double>(Shapes[0].numElements());
                    }});

  // Shared store leaf (same shape as the GEMM one, registered here too so
  // attention works in a registry without the GEMM tasks).
  if (!Registry.hasVariant("store_wg_leaf"))
    Registry.addLeaf("store", "store_wg_leaf",
                     {{"C", 2, ElementType::F16, Privilege::Write},
                      {"Src", 2, ElementType::F32, Privilege::Read}},
                     {"store", ExecUnit::SIMT,
                      [](const std::vector<Shape> &Shapes) {
                        return static_cast<double>(
                            Shapes[0].numElements());
                      }});
  if (!Registry.hasVariant("clear_wg_leaf"))
    Registry.addLeaf("clear", "clear_wg_leaf",
                     {{"C", 2, ElementType::F32, Privilege::Write}},
                     {"clear", ExecUnit::SIMT,
                      [](const std::vector<Shape> &Shapes) {
                        return static_cast<double>(
                            Shapes[0].numElements());
                      }});
}

MappingSpec cypress::attentionMapping(const AttentionConfig &Config) {
  std::vector<TaskMapping> Instances;
  auto Block = [&](const std::string &Instance, const std::string &Variant,
                   std::vector<Memory> Mems,
                   std::vector<std::string> Calls) {
    TaskMapping TM;
    TM.Instance = Instance;
    TM.Variant = Variant;
    TM.Proc = Processor::Block;
    TM.Mems = std::move(Mems);
    TM.Tunables["WGS"] = Config.WGS;
    TM.Calls = std::move(Calls);
    Instances.push_back(TM);
  };
  auto Wg = [&](const std::string &Instance, const std::string &Variant,
                std::vector<Memory> Mems,
                std::vector<std::string> Calls = {}) {
    TaskMapping TM;
    TM.Instance = Instance;
    TM.Variant = Variant;
    TM.Proc = Processor::Warpgroup;
    TM.Mems = std::move(Mems);
    TM.Calls = std::move(Calls);
    Instances.push_back(TM);
  };

  {
    TaskMapping TM;
    TM.Instance = "fa_host";
    TM.Variant = "fa_host";
    TM.Proc = Processor::Host;
    TM.Mems = {Memory::Global, Memory::Global, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"BR", Config.BR}, {"S", Config.SeqLen}};
    TM.Entrypoint = true;
    TM.Calls = {"fa_block"};
    Instances.push_back(TM);
  }
  {
    TaskMapping TM;
    TM.Instance = "fa_block";
    TM.Variant = Config.StageScores ? "fa3_block" : "fa2_block";
    TM.Proc = Processor::Block;
    // Q is staged into shared memory once per block; K/V panels stay in
    // global memory and stream tile-by-tile through the TMA.
    TM.Mems = {Memory::Global, Memory::Shared, Memory::Global,
               Memory::Global};
    TM.Tunables = {{"BC", Config.BC}};
    TM.Calls = {"fa_init_block", "fa_qk_block", "fa_softmax_block",
                "fa_pv_block",  "fa_out_block", "fa_stage_block"};
    TM.WarpSpecialize = true;
    TM.PipelineDepth = Config.Pipe;
    if (Config.SharedLimitKB > 0)
      TM.SharedLimitBytes = Config.SharedLimitKB * 1024;
    Instances.push_back(TM);
  }

  Block("fa_init_block", "fa_init_block",
        {Memory::None, Memory::None, Memory::None}, {"fa_init_wg"});
  Wg("fa_init_wg", "fa_init_wg",
     {Memory::None, Memory::None, Memory::None},
     {"clear_wg", "smx_init_wg"});
  Wg("clear_wg", "clear_wg_leaf", {Memory::Register});
  Wg("smx_init_wg", "smx_init_leaf", {Memory::Register, Memory::Register});

  Block("fa_qk_block", "fa_qk_block",
        {Memory::None, Memory::None, Memory::Shared}, {"fa_qk_wg"});
  // The K tile staged at this boundary may rotate through its own buffer
  // count, decoupled from the loop depth (and likewise V below).
  if (Config.PipeK > 0)
    Instances.back().ArgPipeline["K"] = Config.PipeK;
  Wg("fa_qk_wg", "fa_qk_wg_leaf",
     {Memory::Register, Memory::Shared, Memory::Shared});

  Block("fa_softmax_block", "fa_softmax_block",
        {Memory::None, Memory::None, Memory::None, Memory::None},
        {"fa_softmax_wg"});
  Wg("fa_softmax_wg", "fa_softmax_wg_leaf",
     {Memory::Register, Memory::Register, Memory::Register,
      Memory::Register});

  Block("fa_pv_block", "fa_pv_block",
        {Memory::None, Memory::None, Memory::Shared}, {"fa_pv_wg"});
  if (Config.PipeV > 0)
    Instances.back().ArgPipeline["V"] = Config.PipeV;
  Wg("fa_pv_wg", "fa_pv_wg_leaf",
     {Memory::Register, Memory::Register, Memory::Shared});

  Block("fa_stage_block", "fa_stage_block", {Memory::None, Memory::None},
        {"fa_stage_wg"});
  Wg("fa_stage_wg", "fa_stage_wg_leaf",
     {Memory::Register, Memory::Register});

  Block("fa_out_block", "fa_out_block",
        {Memory::Global, Memory::None, Memory::None}, {"fa_out_wg"});
  Wg("fa_out_wg", "fa_out_wg", {Memory::None, Memory::None, Memory::None},
     {"smx_fin_wg", "store_wg"});
  Wg("smx_fin_wg", "smx_fin_leaf", {Memory::Register, Memory::Register});
  Wg("store_wg", "store_wg_leaf", {Memory::Shared, Memory::Register});

  return MappingSpec(std::move(Instances));
}

std::vector<TensorType>
cypress::attentionArgTypes(const AttentionConfig &Config) {
  int64_t Rows = Config.Batch * Config.Heads * Config.SeqLen;
  TensorType T{Shape({Rows, Config.HeadDim}), ElementType::F16};
  return {T, T, T, T};
}

double cypress::attentionFlops(const AttentionConfig &Config) {
  // The convention used by the Flash Attention papers: 4 * S^2 * D FLOPs
  // per (batch, head) for the forward pass.
  return 4.0 * static_cast<double>(Config.Batch) *
         static_cast<double>(Config.Heads) *
         static_cast<double>(Config.SeqLen) *
         static_cast<double>(Config.SeqLen) *
         static_cast<double>(Config.HeadDim);
}
