//===- LeafRegistry.h - Leaf-task function registry ------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leaf task variants name external functions (the analogue of the paper's
/// call-external / CuTe dispatch). The registry resolves those names for
/// functional execution on the simulator. Builtin leaves cover the kernels
/// shipped with the library (WGMMA, clears, stores, reductions, softmax
/// pieces); applications may register their own.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SIM_LEAFREGISTRY_H
#define CYPRESS_SIM_LEAFREGISTRY_H

#include "sim/TensorView.h"
#include "support/Error.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cypress {

/// Signature of a functional leaf implementation.
using LeafFn = std::function<void(std::vector<TensorView> &Args,
                                  const std::vector<int64_t> &Scalars)>;

/// Name-to-implementation table for leaf tasks. A registry may delegate
/// misses to an immutable fallback registry, so per-kernel tables hold only
/// user-registered leaves and share one builtin table process-wide instead
/// of copying it per CompiledKernel.
class LeafRegistry {
public:
  LeafRegistry() = default;
  explicit LeafRegistry(const LeafRegistry *Fallback) : Fallback(Fallback) {}

  void add(std::string Name, LeafFn Fn) {
    Table[std::move(Name)] = std::move(Fn);
  }

  bool has(const std::string &Name) const {
    return Table.count(Name) != 0 || (Fallback && Fallback->has(Name));
  }

  const LeafFn &lookup(const std::string &Name) const {
    auto It = Table.find(Name);
    if (It != Table.end())
      return It->second;
    if (Fallback)
      return Fallback->lookup(Name);
    cypressUnreachable("unknown leaf function");
  }

  /// The registry preloaded with the builtin leaves used by the shipped
  /// kernels (wgmma_fp16, clear, store, row reductions, online softmax).
  /// Returns a fresh copy; prefer sharedBuiltins() unless you mutate it.
  static LeafRegistry builtins();

  /// One immutable process-wide builtin registry (thread-safe magic-static
  /// initialization); meant as the Fallback of per-kernel registries.
  static const LeafRegistry &sharedBuiltins();

private:
  std::map<std::string, LeafFn> Table;
  const LeafRegistry *Fallback = nullptr;
};

} // namespace cypress

#endif // CYPRESS_SIM_LEAFREGISTRY_H
