//===- LeafRegistry.h - Leaf-task function registry ------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leaf task variants name external functions (the analogue of the paper's
/// call-external / CuTe dispatch). The registry resolves those names for
/// functional execution on the simulator. Builtin leaves cover the kernels
/// shipped with the library (WGMMA, clears, stores, reductions, softmax
/// pieces); applications may register their own.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SIM_LEAFREGISTRY_H
#define CYPRESS_SIM_LEAFREGISTRY_H

#include "sim/TensorView.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cypress {

/// Signature of a functional leaf implementation.
using LeafFn = std::function<void(std::vector<TensorView> &Args,
                                  const std::vector<int64_t> &Scalars)>;

/// Name-to-implementation table for leaf tasks.
class LeafRegistry {
public:
  void add(std::string Name, LeafFn Fn) {
    Table[std::move(Name)] = std::move(Fn);
  }

  bool has(const std::string &Name) const { return Table.count(Name) != 0; }

  const LeafFn &lookup(const std::string &Name) const {
    auto It = Table.find(Name);
    assert(It != Table.end() && "unknown leaf function");
    return It->second;
  }

  /// The registry preloaded with the builtin leaves used by the shipped
  /// kernels (wgmma_fp16, clear, store, row reductions, online softmax).
  static LeafRegistry builtins();

private:
  std::map<std::string, LeafFn> Table;
};

} // namespace cypress

#endif // CYPRESS_SIM_LEAFREGISTRY_H
