//===- LeafRegistry.cpp - Builtin leaf-task implementations ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional implementations of the builtin leaves. These are the host
/// equivalents of the device code the paper's leaf tasks dispatch to via
/// CuTe: FP16 inputs with FP32 accumulation for the Tensor Core path, plus
/// the SIMT leaves used by the attention kernels (row max/sum, exponential
/// rescaling of the online-softmax state).
///
//===----------------------------------------------------------------------===//

#include "sim/LeafRegistry.h"

#include <cmath>

using namespace cypress;

namespace {

/// C += A x B with FP32 accumulation (the wgmma semantics; C is an FP32
/// accumulator view, A/B are FP16 tiles).
void wgmmaAccumulate(std::vector<TensorView> &Args,
                     const std::vector<int64_t> &) {
  assert(Args.size() == 3 && "wgmma expects C, A, B");
  TensorView &C = Args[0];
  TensorView &A = Args[1];
  TensorView &B = Args[2];
  int64_t M = C.shape().dim(0);
  int64_t N = C.shape().dim(1);
  int64_t K = A.shape().dim(1);
  assert(A.shape().dim(0) == M && B.shape().dim(0) == K &&
         B.shape().dim(1) == N && "wgmma operand shape mismatch");
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Acc = C.at2(I, J);
      for (int64_t KK = 0; KK < K; ++KK)
        Acc += A.at2(I, KK) * B.at2(KK, J);
      C.set2(I, J, Acc);
    }
}

/// C = A x B^T with FP32 accumulation (attention's Q.K^T step; B is stored
/// row-major [N, K] and used transposed).
void wgmmaAccumulateBT(std::vector<TensorView> &Args,
                       const std::vector<int64_t> &) {
  assert(Args.size() == 3 && "wgmma_bt expects C, A, B");
  TensorView &C = Args[0];
  TensorView &A = Args[1];
  TensorView &B = Args[2];
  int64_t M = C.shape().dim(0);
  int64_t N = C.shape().dim(1);
  int64_t K = A.shape().dim(1);
  assert(B.shape().dim(0) == N && B.shape().dim(1) == K &&
         "wgmma_bt operand shape mismatch");
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Acc = C.at2(I, J);
      for (int64_t KK = 0; KK < K; ++KK)
        Acc += A.at2(I, KK) * B.at2(J, KK);
      C.set2(I, J, Acc);
    }
}

void clearTensor(std::vector<TensorView> &Args,
                 const std::vector<int64_t> &) {
  assert(!Args.empty() && "clear expects one tensor");
  TensorView &T = Args[0];
  int64_t Count = T.shape().numElements();
  for (int64_t I = 0; I < Count; ++I)
    T.set(T.shape().delinearize(I), 0.0f);
}

/// Dst = Src (element-wise, possibly with FP16 quantization on the store).
void storeTensor(std::vector<TensorView> &Args,
                 const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "store expects Dst, Src");
  TensorView &Dst = Args[0];
  TensorView &Src = Args[1];
  int64_t Count = Dst.shape().numElements();
  assert(Src.shape().numElements() == Count && "store size mismatch");
  for (int64_t I = 0; I < Count; ++I)
    Dst.set(Dst.shape().delinearize(I),
            Src.at(Src.shape().delinearize(I)));
}

/// y(i) += sum_k A(i, k): the fused row reduction of Figure 13d's kernel.
void rowSumAccumulate(std::vector<TensorView> &Args,
                      const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "row_sum expects y, A");
  TensorView &Y = Args[0];
  TensorView &A = Args[1];
  int64_t M = A.shape().dim(0);
  int64_t K = A.shape().dim(1);
  for (int64_t I = 0; I < M; ++I) {
    float Acc = Y.at({I});
    for (int64_t KK = 0; KK < K; ++KK)
      Acc += A.at2(I, KK);
    Y.set({I}, Acc);
  }
}

/// One step of online softmax (Flash Attention 2 inner loop):
/// given scores S (m x n), running max Mx (m), running denominator L (m)
/// and output accumulator O (m x d):
///   newmax = max(Mx, rowmax(S)); alpha = exp(Mx - newmax)
///   P = exp(S - newmax); L = alpha*L + rowsum(P); O = alpha*O  (rescale)
///   S <- P (probabilities written back for the following P.V GEMM)
/// Scalars[0] carries the softmax scale multiplied into S first, as a
/// fixed-point thousandth (scale = Scalars[0] / 65536.0).
void onlineSoftmaxStep(std::vector<TensorView> &Args,
                       const std::vector<int64_t> &Scalars) {
  assert(Args.size() == 4 && "softmax_step expects S, Mx, L, O");
  TensorView &S = Args[0];
  TensorView &Mx = Args[1];
  TensorView &L = Args[2];
  TensorView &O = Args[3];
  double Scale = Scalars.empty()
                     ? 1.0
                     : static_cast<double>(Scalars[0]) / 65536.0;
  int64_t M = S.shape().dim(0);
  int64_t N = S.shape().dim(1);
  int64_t D = O.shape().dim(1);
  for (int64_t I = 0; I < M; ++I) {
    float RowMax = Mx.at({I});
    for (int64_t J = 0; J < N; ++J) {
      float V = static_cast<float>(S.at2(I, J) * Scale);
      S.set2(I, J, V);
      RowMax = std::max(RowMax, V);
    }
    float Alpha = std::exp(Mx.at({I}) - RowMax);
    float RowSum = 0.0f;
    for (int64_t J = 0; J < N; ++J) {
      float P = std::exp(S.at2(I, J) - RowMax);
      S.set2(I, J, P);
      RowSum += P;
    }
    L.set({I}, Alpha * L.at({I}) + RowSum);
    Mx.set({I}, RowMax);
    for (int64_t J = 0; J < D; ++J)
      O.set2(I, J, Alpha * O.at2(I, J));
  }
}

/// Final normalization of attention output: O(i, :) /= L(i).
void softmaxFinalize(std::vector<TensorView> &Args,
                     const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "softmax_finalize expects O, L");
  TensorView &O = Args[0];
  TensorView &L = Args[1];
  int64_t M = O.shape().dim(0);
  int64_t D = O.shape().dim(1);
  for (int64_t I = 0; I < M; ++I) {
    float Denominator = L.at({I});
    float Inv = Denominator != 0.0f ? 1.0f / Denominator : 0.0f;
    for (int64_t J = 0; J < D; ++J)
      O.set2(I, J, O.at2(I, J) * Inv);
  }
}

/// Initializes the online-softmax state: Mx = -inf, L = 0.
void softmaxInit(std::vector<TensorView> &Args, const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "softmax_init expects Mx, L");
  TensorView &Mx = Args[0];
  TensorView &L = Args[1];
  int64_t M = Mx.shape().dim(0);
  for (int64_t I = 0; I < M; ++I) {
    Mx.set({I}, -3.0e38f);
    L.set({I}, 0.0f);
  }
}

/// Element-wise addition Dst += Src (Dual-GEMM's combine step when the two
/// products are accumulated in separate register tiles).
void addInto(std::vector<TensorView> &Args, const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "add_into expects Dst, Src");
  TensorView &Dst = Args[0];
  TensorView &Src = Args[1];
  int64_t Count = Dst.shape().numElements();
  for (int64_t I = 0; I < Count; ++I) {
    std::vector<int64_t> Index = Dst.shape().delinearize(I);
    Dst.set(Index, Dst.at(Index) + Src.at(Src.shape().delinearize(I)));
  }
}

/// Dual-GEMM inner step: C += A x B1 + A x B2 in one Tensor Core pass over
/// the shared tiles (two chained WGMMAs in hardware).
void dualWgmma(std::vector<TensorView> &Args, const std::vector<int64_t> &) {
  assert(Args.size() == 4 && "dual_wgmma expects C, A, B1, B2");
  TensorView &C = Args[0];
  TensorView &A = Args[1];
  TensorView &B1 = Args[2];
  TensorView &B2 = Args[3];
  int64_t M = C.shape().dim(0);
  int64_t N = C.shape().dim(1);
  int64_t K = A.shape().dim(1);
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Acc = C.at2(I, J);
      for (int64_t KK = 0; KK < K; ++KK)
        Acc += A.at2(I, KK) * (B1.at2(KK, J) + B2.at2(KK, J));
      C.set2(I, J, Acc);
    }
}

/// Fused-reduction leaf: Y(0, i) += sum_k A(i, k) where Y is a [1, M] row
/// accumulator tile (Figure 13d's kernel).
void rowSumTile(std::vector<TensorView> &Args, const std::vector<int64_t> &) {
  assert(Args.size() == 2 && "row_sum_tile expects Y, A");
  TensorView &Y = Args[0];
  TensorView &A = Args[1];
  int64_t M = A.shape().dim(0);
  int64_t K = A.shape().dim(1);
  for (int64_t I = 0; I < M; ++I) {
    float Acc = Y.at2(0, I);
    for (int64_t KK = 0; KK < K; ++KK)
      Acc += A.at2(I, KK);
    Y.set2(0, I, Acc);
  }
}

/// S = A x B^T (overwrite, no accumulate): attention's Q.K^T scores.
void wgmmaBTSet(std::vector<TensorView> &Args, const std::vector<int64_t> &) {
  assert(Args.size() == 3 && "wgmma_bt_set expects S, Q, K");
  TensorView &S = Args[0];
  TensorView &Q = Args[1];
  TensorView &K = Args[2];
  int64_t M = S.shape().dim(0);
  int64_t N = S.shape().dim(1);
  int64_t D = Q.shape().dim(1);
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Acc = 0.0f;
      for (int64_t KK = 0; KK < D; ++KK)
        Acc += Q.at2(I, KK) * K.at2(J, KK);
      S.set2(I, J, Acc);
    }
}

} // namespace

const LeafRegistry &LeafRegistry::sharedBuiltins() {
  static const LeafRegistry Builtins = builtins();
  return Builtins;
}

LeafRegistry LeafRegistry::builtins() {
  LeafRegistry R;
  R.add("wgmma_fp16", wgmmaAccumulate);
  R.add("wgmma_fp16_bt", wgmmaAccumulateBT);
  R.add("clear", clearTensor);
  R.add("store", storeTensor);
  R.add("row_sum", rowSumAccumulate);
  R.add("softmax_step", onlineSoftmaxStep);
  R.add("softmax_finalize", softmaxFinalize);
  R.add("softmax_init", softmaxInit);
  R.add("add_into", addInto);
  R.add("dual_wgmma", dualWgmma);
  R.add("row_sum_tile", rowSumTile);
  R.add("wgmma_fp16_bt_set", wgmmaBTSet);
  return R;
}
