//===- TensorView.h - Coordinate-mapped views over tensor storage ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TensorView is how leaf functions and the functional executor touch
/// data: a dense TensorData allocation plus a SubTensor coordinate map
/// (often the identity). Views let forwarded leaf arguments address slices
/// of larger allocations — e.g. a warpgroup's 64-row band of the block's
/// shared A tile — without copying.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SIM_TENSORVIEW_H
#define CYPRESS_SIM_TENSORVIEW_H

#include "tensor/Partition.h"
#include "tensor/TensorData.h"

namespace cypress {

/// A (possibly swizzled) window into a TensorData allocation.
class TensorView {
public:
  TensorView(TensorData &Data, SubTensor Map)
      : Data(&Data), Map(std::move(Map)) {}

  /// Identity view over a whole allocation.
  static TensorView whole(TensorData &Data) {
    return TensorView(Data, SubTensor::whole(Data.shape()));
  }

  const Shape &shape() const { return Map.shape(); }

  float at(const std::vector<int64_t> &Index) const {
    return Data->at(Map.mapToParent(Index));
  }
  void set(const std::vector<int64_t> &Index, float Value) {
    Data->set(Map.mapToParent(Index), Value);
  }

  /// Convenience accessors for the ubiquitous rank-2 case.
  float at2(int64_t Row, int64_t Col) const { return at({Row, Col}); }
  void set2(int64_t Row, int64_t Col, float Value) {
    set({Row, Col}, Value);
  }

  TensorData &data() { return *Data; }
  const SubTensor &map() const { return Map; }

private:
  TensorData *Data;
  SubTensor Map;
};

} // namespace cypress

#endif // CYPRESS_SIM_TENSORVIEW_H
