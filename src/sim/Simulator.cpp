//===- Simulator.cpp - Discrete-event Hopper SM simulator ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of both execution modes described in Simulator.h. The
/// timing model treats the TMA and Tensor Core as asynchronous units — the
/// issuing agent only pays an issue cost, and downstream operations wait on
/// the completion events the compiler wired — so schedules that overlap
/// copies, matrix ops, and SIMT math are rewarded exactly as on Hopper.
///
/// The timing hot path is built on dense, pre-sized tables rather than
/// ordered maps: one expansion pass enumerates every operation instance
/// into per-agent streams, interning iteration coordinates, loop-instance
/// paths, precondition descriptors (with warpgroup indices already
/// evaluated), shared-memory byte ranges, and per-op costs into flat
/// arenas. Event completion times live in a single flat array indexed by a
/// strided linear coordinate key computed from the loop extents observed
/// during expansion, so the scheduler's readiness checks are array loads.
/// All arenas are pooled in a thread-local scratch that survives across
/// simulation runs, which makes repeated `runTiming` calls (the autotuner's
/// candidate evaluation loop) allocation-free in steady state.
///
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

using namespace cypress;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Warpgroup replication count of an op (1 when it has no warpgroup dim).
int64_t warpgroupExtent(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return Dim.Extent;
  return 1;
}

bool hasWarpgroupDim(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Timing simulation of one block
//===----------------------------------------------------------------------===//

/// Per-op execution cost, computed once per op and cached.
struct Cost {
  double IssueCycles = 0;   ///< Time the issuing agent is occupied.
  double UnitCycles = 0;    ///< Occupancy of the shared unit (TMA/TC).
  double Latency = 0;       ///< Extra completion latency after transfer.
  enum class UnitKind : uint8_t { None, Tma, TensorCore } Unit = UnitKind::None;
};

/// One precondition of one instance, with everything that is static for
/// that instance resolved at expansion time (the warpgroup index expression
/// evaluates under the instance's environment, so it never has to be
/// re-evaluated in the scheduler's inner loop).
struct PrecondDesc {
  EventId Event = InvalidEventId;
  int64_t IterLag = 0;
  int32_t WantWg = -1; ///< Concrete warpgroup index; -1 when not indexed.
  bool Broadcast = false;
};

/// Static half of a shared-memory access trace entry; Start/End are filled
/// in when the instance executes.
struct SmemPre {
  TensorId Tensor = InvalidTensorId;
  OpId Op = ~0u;
  int64_t Lo = 0, Hi = 0; ///< Byte range.
  size_t IterHash = 0;
  int32_t Wg = -1;
  bool Write = false;
};

/// Shared-memory access trace entry for the WAR race detector.
struct SmemAccess {
  TensorId Tensor;
  int64_t Lo = 0, Hi = 0; ///< Byte range.
  double Start = 0, End = 0;
  bool Write = false;
  /// Identity of the accessing instance (op id, warpgroup, iteration hash)
  /// so an instance is never raced against itself.
  OpId Op = ~0u;
  int64_t Wg = -1;
  size_t IterHash = 0;
};

/// Per-op record in the dense op table (indexed by a dense id assigned at
/// the op's first visit during expansion).
struct OpRec {
  Cost C;
  uint32_t Depth = 0;    ///< Number of enclosing sequential loops.
  uint32_t ChainOff = 0; ///< Enclosing loop ops (dense ids), in ChainArena.
  /// For `For` ops: the coordinate range this loop iterates over, across
  /// all its instantiations (min Lo .. max Hi-1). Sizes the slabs of every
  /// event produced under this loop.
  int64_t MinCoord = std::numeric_limits<int64_t>::max();
  int64_t MaxCoord = std::numeric_limits<int64_t>::min();
  bool HasCost = false;
  /// Dense slots are assigned by a static pre-walk, so an op can hold a
  /// slot without ever being reached (a zero-trip enclosing loop). Events
  /// produced by unreached ops must size their slabs as if the producer
  /// were unknown, exactly as when slots were assigned at first visit.
  bool Visited = false;
};

/// One executable instance of an operation. All variable-length payloads
/// (iteration coordinates, loop-instance path, precondition descriptors,
/// smem ranges) live in the scratch arenas; the instance stores offsets.
struct InstRec {
  const Operation *Op = nullptr;
  int32_t Wg = -1;      ///< -1 when the op has no warpgroup dim.
  uint32_t OpIdx = 0;   ///< Dense op table index.
  uint32_t Depth = 0;   ///< Enclosing loop count == coordinate count.
  uint32_t CoordOff = 0;
  uint32_t LoopOff = 0;
  uint32_t PrecondOff = 0, PrecondCount = 0;
  uint32_t SmemOff = 0, SmemCount = 0;
};

/// Per-event completion table descriptor. Completion cycles for the event's
/// (warpgroup, iteration-prefix) instances live in the shared Times arena
/// at [TimesOff, TimesOff + WgSlots * CoordCount); NaN marks "not yet
/// completed". Slot 0 holds the unreplicated (-1) warpgroup key, slots
/// 1..Wgs the per-warpgroup keys of replicated events. The coordinate box
/// is the producer's own enclosing-loop ranges (ChainOff into the chain
/// arena), so a slab is exactly as large as the set of keys the producer
/// can ever register — sibling loops with skewed extents don't inflate it.
struct EventRec {
  uint64_t TimesOff = 0;
  uint64_t CoordCount = 1;
  uint32_t WgSlots = 1;
  uint32_t Depth = 0;    ///< Number of enclosing loops of the producer.
  uint32_t ChainOff = 0; ///< Producer's enclosing loop ops (dense ids).
  bool WgReplicated = false;
  bool Known = false; ///< Produced inside the grid body.
};

/// Outstanding body-instance count per loop instance (one For op entered at
/// one enclosing iteration prefix).
struct LoopInst {
  int64_t Remaining = 0;
  double MaxTime = 0;
  EventId Event = InvalidEventId;
};

/// One top-level unit of expansion work: a bare Copy/Call directly in the
/// grid body, or one iteration of a top-level sequential loop. The unit
/// list is what the sharded expansion distributes — contiguous ranges of
/// it expand independently into private buffers, and concatenating the
/// shards in index order reproduces the sequential instance order
/// byte-for-byte.
struct TopUnit {
  const Operation *Op = nullptr;
  int64_t Iter = 0;       ///< Loop iteration value (loop units only).
  uint32_t TopLoop = ~0u; ///< Global loop-instance id; ~0u for bare ops.
};

/// Per-op facts one shard accumulates privately; the merge folds them into
/// the global dense op table. Everything here is order-independent: min
/// and max commute, the cost is a pure function of the op, and Visited is
/// a disjunction.
struct OpAcc {
  Cost C;
  int64_t MinCoord = std::numeric_limits<int64_t>::max();
  int64_t MaxCoord = std::numeric_limits<int64_t>::min();
  bool HasCost = false;
  bool Visited = false;
};

/// Private output buffers of one expansion shard, mirroring the arena
/// layout of TimerScratch. Loop-path entries are encoded so the merge can
/// renumber without a per-shard map: values below the top-loop count name
/// a global (pre-created) top-level loop instance, values at or above it
/// name this shard's local loop instances and are shifted by the shard's
/// final base offset. Pooled inside TimerScratch so steady-state sharded
/// runs allocate nothing.
struct ShardBuf {
  std::vector<InstRec> Insts;
  std::vector<std::vector<uint32_t>> Streams; ///< Shard-local inst indices.
  std::vector<int64_t> Coords;
  std::vector<uint32_t> LoopPaths; ///< Encoded loop-instance ids.
  std::vector<PrecondDesc> Preconds;
  std::vector<SmemPre> SmemPres;
  std::vector<LoopInst> Loops;       ///< Nested loop instances (local ids).
  std::vector<int64_t> TopRemaining; ///< Contributions to top-level loops.
  std::vector<OpAcc> Ops;
  // Expansion cursor state (kept here so its capacity pools too).
  std::vector<int64_t> CoordStack;
  std::vector<uint32_t> LoopPath;
  /// Loop-variable bindings are overwritten in place and deliberately NOT
  /// erased on scope exit or between runs: each erase/re-emplace pair is a
  /// map-node allocation, which would put an alloc on every top-level loop
  /// iteration. The verifier guarantees expressions only reference
  /// in-scope variables, so stale bindings are never read.
  ScalarEnv Env;
  std::optional<Diagnostic> Failure;

  void reset(size_t NumAgents, size_t NumOps, size_t NumTopLoops) {
    Insts.clear();
    Coords.clear();
    LoopPaths.clear();
    Preconds.clear();
    SmemPres.clear();
    Loops.clear();
    Streams.resize(NumAgents);
    for (std::vector<uint32_t> &Stream : Streams)
      Stream.clear();
    TopRemaining.assign(NumTopLoops, 0);
    Ops.assign(NumOps, OpAcc());
    CoordStack.clear();
    LoopPath.clear();
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = 0;
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    Failure.reset();
  }
};

/// All per-run state of the timing simulator, pooled across runs: clear()
/// resets sizes but keeps capacity, so steady-state simulation performs no
/// allocation. One scratch exists per thread (runTiming is const and may be
/// called concurrently on shared kernels).
struct TimerScratch {
  std::vector<InstRec> Insts;
  std::vector<std::vector<uint32_t>> Streams; ///< Instance indices per agent.
  std::vector<int64_t> Coords;                ///< Iteration-coordinate arena.
  std::vector<uint32_t> LoopPaths;            ///< Loop-instance-path arena.
  std::vector<PrecondDesc> Preconds;
  std::vector<SmemPre> SmemPres;
  std::vector<OpRec> Ops;
  std::vector<uint32_t> OpDense; ///< OpId -> dense op index (~0u absent).
  std::vector<EventRec> Events;  ///< Indexed by EventId.
  std::vector<std::pair<EventId, OpId>> KnownEvents;
  std::vector<double> Times; ///< Shared completion-time arena (NaN = absent).
  std::vector<LoopInst> Loops;
  std::vector<SmemAccess> Accesses;
  std::vector<uint32_t> ChainArena; ///< Enclosing-loop dense ids per op.
  std::vector<TopUnit> Units;       ///< Top-level expansion work list.
  std::vector<ShardBuf> Shards;     ///< Per-shard buffers (pooled).
  // Scheduler / race-detector scratch.
  std::vector<size_t> Cursor;
  std::vector<double> Ready;
  std::vector<uint32_t> RaceOrder, RaceActive;

  /// Clears everything except the per-agent streams, which are sized once
  /// the static pre-walk has counted the warpgroups (see buildStreams).
  void reset(size_t NumEvents, const SimHints *Hints) {
    Insts.clear();
    Coords.clear();
    LoopPaths.clear();
    Preconds.clear();
    SmemPres.clear();
    Ops.clear();
    OpDense.clear();
    KnownEvents.clear();
    // Pooling keeps steady-state runs allocation-free, but one outsized
    // simulation must not pin its completion-time arena to the thread for
    // the process lifetime; release anything beyond a generous ceiling.
    Times.clear();
    if (Times.capacity() > (size_t(1) << 22))
      Times.shrink_to_fit();
    Loops.clear();
    Accesses.clear();
    ChainArena.clear();
    Units.clear();
    // Shards are reset per run by the expansion (only the ones it uses).
    Events.assign(NumEvents, EventRec());
    if (Hints) {
      // IR statistics from the compile that produced the module (the pass
      // manager's PipelineStats) pre-size the per-run tables.
      Ops.reserve(Hints->NumOps);
      OpDense.reserve(Hints->NumOps);
      Insts.reserve(Hints->NumOps);
      KnownEvents.reserve(Hints->NumEvents);
    }
  }
};

TimerScratch &timerScratch() {
  static thread_local TimerScratch Scratch;
  return Scratch;
}

class BlockTimer {
public:
  BlockTimer(const IRModule &Module, const SharedAllocation &Alloc,
             const SimConfig &Config, const Operation &Grid,
             TimerScratch &S, const SimHints *Hints, SimWorkerPool *Pool,
             const Cancellation *Cancel)
      : Module(Module), Alloc(Alloc), Config(Config), Grid(Grid), S(S),
        Hints(Hints), Pool(Pool), Cancel(Cancel) {
    if (Cancel)
      SchedCheck = CancelCheck(*Cancel);
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = 0;
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    WgIndex = Env.ProcIndices.find(Processor::Warpgroup);
  }

  ErrorOr<SimResult> run() {
    buildStreams();
    if (Failure)
      return *Failure;
    buildEventTables();
    if (Failure)
      return *Failure;
    schedule();
    if (Failure)
      return *Failure;
    detectRaces();

    SimResult Result;
    Result.BlockCycles = Finish;
    Result.TotalFlops = BlockFlops;
    Result.TmaBusyCycles = TmaBusy;
    Result.TensorCoreBusyCycles = TcBusy;
    Result.Races = std::move(Races);
    return Result;
  }

private:
  //===--- Stream construction --------------------------------------------===//

  void buildStreams() {
    S.reset(Module.numEvents(), Hints);

    // One static pre-walk over the grid body replaces the former
    // warpgroup-count walk, the known-event walk, and the first-visit
    // dense-id assignment of the dynamic expansion: it records every
    // For/Copy/Call op's dense slot, depth, and enclosing-loop chain,
    // takes the widest warpgroup extent, and marks the events produced
    // inside the body (references to anything else are host-level and
    // vacuously ready). Static ids are what let expansion shards run
    // without shared mutable state.
    indexOps(Grid.Body);

    // Agent 0 = DMA warp; agents 1..Wgs = compute warpgroups.
    NumAgents = 1 + static_cast<size_t>(Wgs);
    S.Streams.resize(NumAgents);
    for (std::vector<uint32_t> &Stream : S.Streams)
      Stream.clear();

    buildUnits();
    if (Failure)
      return;
    expandShards();
  }

  /// The static pre-walk (see buildStreams). Mirrors walkOps order — op
  /// before body, recursing into For and PFor alike — so the known-event
  /// list is recorded in the same order as before. Dense slots are only
  /// assigned to For/Copy/Call ops; ops under a PFor keep none, exactly
  /// like the dynamic scheme (reaching a PFor fails the expansion, so
  /// their slots could never have been created).
  void indexOps(const IRBlock &Block) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      Wgs = std::max(Wgs, warpgroupExtent(*Op));
      if (Op->Result != InvalidEventId) {
        EventRec &Rec = S.Events[Op->Result];
        Rec.Known = true;
        Rec.WgReplicated = hasWarpgroupDim(*Op);
        S.KnownEvents.emplace_back(Op->Result, Op->Id);
      }
      switch (Op->Kind) {
      case OpKind::Alloc:
      case OpKind::MakePart:
        break;
      case OpKind::For:
        LoopOpStack.push_back(assignDense(*Op));
        indexOps(Op->Body);
        LoopOpStack.pop_back();
        break;
      case OpKind::PFor:
        indexOps(Op->Body);
        break;
      case OpKind::Copy:
      case OpKind::Call:
        assignDense(*Op);
        break;
      }
    }
  }

  /// Dense op-table slot for \p Op. Nesting is static, so the op's depth
  /// and enclosing-loop chain are recorded once, at slot creation.
  uint32_t assignDense(const Operation &Op) {
    if (Op.Id >= S.OpDense.size())
      S.OpDense.resize(Op.Id + 1, ~0u);
    uint32_t Slot = static_cast<uint32_t>(S.Ops.size());
    S.OpDense[Op.Id] = Slot;
    S.Ops.emplace_back();
    OpRec &Rec = S.Ops.back();
    Rec.Depth = static_cast<uint32_t>(LoopOpStack.size());
    Rec.ChainOff = static_cast<uint32_t>(S.ChainArena.size());
    S.ChainArena.insert(S.ChainArena.end(), LoopOpStack.begin(),
                        LoopOpStack.end());
    return Slot;
  }

  /// Flattens the grid body's top level into the unit work list: one unit
  /// per bare Copy/Call and one per iteration of each top-level For. The
  /// top-level loops' instances are created here (ids 0..NumTopLoops-1)
  /// because their iterations may be split across shards — each shard
  /// counts its body instances privately and the merge sums them.
  void buildUnits() {
    for (const std::unique_ptr<Operation> &Op : Grid.Body.Ops) {
      switch (Op->Kind) {
      case OpKind::Alloc:
      case OpKind::MakePart:
        break; // No runtime cost; addresses come from the allocator.
      case OpKind::For: {
        OpRec &Rec = S.Ops[S.OpDense[Op->Id]];
        Rec.Visited = true;
        WgIndex->second = 0;
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        if (Lo < Hi) {
          Rec.MinCoord = std::min(Rec.MinCoord, Lo);
          Rec.MaxCoord = std::max(Rec.MaxCoord, Hi - 1);
        }
        uint32_t LI = static_cast<uint32_t>(S.Loops.size());
        S.Loops.push_back({0, 0.0, Op->Result});
        for (int64_t K = Lo; K < Hi; ++K)
          S.Units.push_back({Op.get(), K, LI});
        break;
      }
      case OpKind::PFor:
        fail("nested parallel loops must be flattened before simulation");
        return;
      case OpKind::Copy:
      case OpKind::Call:
        S.Units.push_back({Op.get(), 0, ~0u});
        break;
      }
    }
    NumTopLoops = static_cast<uint32_t>(S.Loops.size());
  }

  /// Splits the unit list into contiguous shards, expands each into its
  /// private buffers (across the worker pool when one is available), and
  /// merges in shard order. The shard count never changes results — only
  /// which thread produced which contiguous slice — so any parallelism,
  /// including none, yields bit-identical timing.
  void expandShards() {
    size_t NumUnits = S.Units.size();
    size_t NumShards = 1;
    if (Pool && NumUnits > 1)
      NumShards = std::min(Pool->parallelism(), NumUnits);
    if (S.Shards.size() < NumShards)
      S.Shards.resize(NumShards);
    for (size_t I = 0; I < NumShards; ++I) {
      ShardBuf &B = S.Shards[I];
      B.reset(NumAgents, S.Ops.size(), NumTopLoops);
      if (Hints && Hints->NumOps) {
        // The same IR statistics that pre-size the global tables, divided
        // across the shards (each sees roughly 1/NumShards of the work).
        size_t PerShard = Hints->NumOps / NumShards + 1;
        B.Insts.reserve(PerShard);
        B.Preconds.reserve(PerShard);
        B.SmemPres.reserve(PerShard);
      }
    }
    auto Work = [&](size_t Shard) {
      expandUnitRange(S.Shards[Shard], NumUnits * Shard / NumShards,
                      NumUnits * (Shard + 1) / NumShards);
    };
    if (NumShards > 1)
      Pool->parallelFor(NumShards, Work);
    else
      Work(0);
    mergeShards(NumShards);
  }

  /// Expands units [Begin, End) into \p B. Runs on a pool worker: reads
  /// only immutable state (the IR, the allocation, the pre-walked dense
  /// tables and event flags) and writes only \p B.
  void expandUnitRange(ShardBuf &B, size_t Begin, size_t End) {
    ScalarEnv &Env = B.Env;
    auto WgIt = Env.ProcIndices.find(Processor::Warpgroup);
    // Each shard polls its own checkpoint (the stride counter is
    // per-thread state); shards that notice the stop write their failure
    // and the in-order merge surfaces the first one, so the exit is as
    // deterministic as the expansion itself.
    CancelCheck Check = Cancel ? CancelCheck(*Cancel) : CancelCheck();
    for (size_t U = Begin; U < End && !B.Failure; ++U) {
      if (Check.enabled() && Check.shouldStop()) {
        B.Failure = Check.diagnostic("simulation shard expansion");
        return;
      }
      const TopUnit &Unit = S.Units[U];
      B.CoordStack.clear();
      B.LoopPath.clear();
      if (Unit.TopLoop != ~0u) {
        auto [VarIt, Inserted] =
            Env.LoopVars.emplace(Unit.Op->LoopVar, Unit.Iter);
        (void)Inserted;
        VarIt->second = Unit.Iter;
        B.CoordStack.push_back(Unit.Iter);
        B.LoopPath.push_back(Unit.TopLoop);
        expandShardBlock(B, Env, WgIt, Unit.Op->Body);
      } else {
        expandShardOp(B, Env, WgIt, *Unit.Op);
      }
    }
  }

  void expandShardBlock(ShardBuf &B, ScalarEnv &Env,
                        std::map<Processor, int64_t>::iterator WgIt,
                        const IRBlock &Block) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (B.Failure)
        return;
      switch (Op->Kind) {
      case OpKind::Alloc:
      case OpKind::MakePart:
        break; // No runtime cost; addresses come from the allocator.
      case OpKind::For: {
        OpAcc &Acc = B.Ops[S.OpDense[Op->Id]];
        Acc.Visited = true;
        WgIt->second = 0;
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        if (Lo < Hi) {
          Acc.MinCoord = std::min(Acc.MinCoord, Lo);
          Acc.MaxCoord = std::max(Acc.MaxCoord, Hi - 1);
        }
        // Encoded local id: shifted past the global top-level loops.
        uint32_t LI = NumTopLoops + static_cast<uint32_t>(B.Loops.size());
        B.Loops.push_back({0, 0.0, Op->Result});
        B.LoopPath.push_back(LI);
        auto [VarIt, Inserted] = Env.LoopVars.emplace(Op->LoopVar, 0);
        (void)Inserted;
        for (int64_t K = Lo; K < Hi; ++K) {
          VarIt->second = K;
          B.CoordStack.push_back(K);
          expandShardBlock(B, Env, WgIt, Op->Body);
          B.CoordStack.pop_back();
        }
        B.LoopPath.pop_back();
        break;
      }
      case OpKind::PFor:
        if (!B.Failure)
          B.Failure = Diagnostic(
              "nested parallel loops must be flattened before simulation");
        return;
      case OpKind::Copy:
      case OpKind::Call:
        expandShardOp(B, Env, WgIt, *Op);
        break;
      }
    }
  }

  void expandShardOp(ShardBuf &B, ScalarEnv &Env,
                     std::map<Processor, int64_t>::iterator WgIt,
                     const Operation &Op) {
    uint32_t OpIdx = S.OpDense[Op.Id];
    bool Dma = Grid.WarpSpecialize && Op.DmaAgent;
    if (hasWarpgroupDim(Op)) {
      for (int64_t Wg = 0; Wg < warpgroupExtent(Op); ++Wg)
        pushInstance(B, Env, WgIt, Op, OpIdx, Wg,
                     Dma ? 0 : 1 + static_cast<size_t>(Wg));
    } else {
      pushInstance(B, Env, WgIt, Op, OpIdx, -1, Dma ? 0 : 1);
    }
  }

  /// Materializes one executable instance into \p B: interns its
  /// coordinates, loop path, precondition descriptors, and shared-memory
  /// ranges, counts it against every enclosing loop instance, and appends
  /// it to its agent's stream. Everything environment-dependent is
  /// evaluated here, once.
  void pushInstance(ShardBuf &B, ScalarEnv &Env,
                    std::map<Processor, int64_t>::iterator WgIt,
                    const Operation &Op, uint32_t OpIdx, int64_t Wg,
                    size_t Agent) {
    OpAcc &Info = B.Ops[OpIdx];
    Info.Visited = true;
    if (!Info.HasCost) {
      Info.C = costOf(Op);
      Info.HasCost = true;
    }

    InstRec R;
    R.Op = &Op;
    R.Wg = static_cast<int32_t>(Wg);
    R.OpIdx = OpIdx;
    R.Depth = static_cast<uint32_t>(B.CoordStack.size());
    R.CoordOff = static_cast<uint32_t>(B.Coords.size());
    B.Coords.insert(B.Coords.end(), B.CoordStack.begin(),
                    B.CoordStack.end());
    R.LoopOff = static_cast<uint32_t>(B.LoopPaths.size());
    B.LoopPaths.insert(B.LoopPaths.end(), B.LoopPath.begin(),
                       B.LoopPath.end());

    // Count every instance against every enclosing loop so the loop's
    // completion event fires when all body instances have finished. The
    // top-level loop a shard shares with its peers is counted privately
    // and summed at merge time.
    for (uint32_t LI : B.LoopPath) {
      if (LI < NumTopLoops)
        ++B.TopRemaining[LI];
      else
        ++B.Loops[LI - NumTopLoops].Remaining;
    }

    WgIt->second = std::max<int64_t>(Wg, 0);

    R.PrecondOff = static_cast<uint32_t>(B.Preconds.size());
    for (const EventRef &Ref : Op.Preconds) {
      PrecondDesc P;
      P.Event = Ref.Event;
      P.IterLag = Ref.IterLag;
      if (Ref.Event < S.Events.size() && S.Events[Ref.Event].Known) {
        const EventType &Type = Module.event(Ref.Event).Type;
        for (size_t D = 0; D < Ref.Indices.size() && D < Type.Dims.size();
             ++D) {
          if (Type.Dims[D].Proc == Processor::Warpgroup) {
            if (Ref.Indices[D].isBroadcast())
              P.Broadcast = true;
            else
              P.WantWg =
                  static_cast<int32_t>(Ref.Indices[D].Index.evaluate(Env));
          } else if (Ref.Indices[D].isBroadcast()) {
            // Warp/thread broadcast: the collective instance plus a barrier.
            P.Broadcast = true;
          }
        }
      }
      B.Preconds.push_back(P);
    }
    R.PrecondCount =
        static_cast<uint32_t>(B.Preconds.size()) - R.PrecondOff;

    size_t IterHash = 0;
    for (int64_t I : B.CoordStack)
      IterHash = IterHash * 1000003u + static_cast<size_t>(I + 1);

    R.SmemOff = static_cast<uint32_t>(B.SmemPres.size());
    auto Record = [&](const TensorSlice &Slice, bool Write) {
      const IRTensor &T = Module.tensor(Slice.Tensor);
      if (T.Mem != Memory::Shared)
        return;
      const SharedAllocation::Entry *Entry = Alloc.find(Slice.Tensor);
      if (!Entry)
        return;
      int64_t BufBytes = Entry->Bytes / std::max<int64_t>(T.PipelineDepth, 1);
      int64_t Buf = Slice.BufferIndex.evaluate(Env);
      int64_t Lo = Entry->Offset + Buf * BufBytes;
      B.SmemPres.push_back({Slice.Tensor, Op.Id, Lo, Lo + BufBytes, IterHash,
                            static_cast<int32_t>(Wg), Write});
    };
    if (Op.Kind == OpKind::Copy) {
      Record(Op.CopySrc, false);
      Record(Op.CopyDst, true);
    } else if (Op.Kind == OpKind::Call) {
      for (size_t I = 0; I < Op.Args.size(); ++I)
        Record(Op.Args[I], Op.ArgIsWritten[I]);
    }
    R.SmemCount = static_cast<uint32_t>(B.SmemPres.size()) - R.SmemOff;

    B.Insts.push_back(R);
    B.Streams[Agent].push_back(static_cast<uint32_t>(B.Insts.size() - 1));
  }

  /// Concatenates the shard buffers into the global arenas in shard
  /// order, fixing up offsets and renumbering shard-local loop instances
  /// past the top-level ones. Because shards cover contiguous unit ranges
  /// in order, the merged instance order is exactly the sequential
  /// dynamic expansion order.
  void mergeShards(size_t NumShards) {
    for (size_t I = 0; I < NumShards && !Failure; ++I)
      if (S.Shards[I].Failure)
        Failure = S.Shards[I].Failure;
    if (Failure)
      return;
    uint32_t LoopShift = 0; // Sum of earlier shards' local loop counts.
    for (size_t SI = 0; SI < NumShards; ++SI) {
      ShardBuf &B = S.Shards[SI];
      for (size_t O = 0, E = B.Ops.size(); O != E; ++O) {
        const OpAcc &Acc = B.Ops[O];
        if (!Acc.Visited)
          continue; // Shards only write facts about ops they reached.
        OpRec &R = S.Ops[O];
        R.Visited = true;
        R.MinCoord = std::min(R.MinCoord, Acc.MinCoord);
        R.MaxCoord = std::max(R.MaxCoord, Acc.MaxCoord);
        if (Acc.HasCost && !R.HasCost) {
          R.C = Acc.C;
          R.HasCost = true;
        }
      }
      for (uint32_t T = 0; T < NumTopLoops; ++T)
        S.Loops[T].Remaining += B.TopRemaining[T];

      uint32_t InstBase = static_cast<uint32_t>(S.Insts.size());
      uint32_t CoordBase = static_cast<uint32_t>(S.Coords.size());
      uint32_t LoopPathBase = static_cast<uint32_t>(S.LoopPaths.size());
      uint32_t PrecondBase = static_cast<uint32_t>(S.Preconds.size());
      uint32_t SmemBase = static_cast<uint32_t>(S.SmemPres.size());
      for (const InstRec &Inst : B.Insts) {
        InstRec R = Inst;
        R.CoordOff += CoordBase;
        R.LoopOff += LoopPathBase;
        R.PrecondOff += PrecondBase;
        R.SmemOff += SmemBase;
        S.Insts.push_back(R);
      }
      S.Coords.insert(S.Coords.end(), B.Coords.begin(), B.Coords.end());
      S.Preconds.insert(S.Preconds.end(), B.Preconds.begin(),
                        B.Preconds.end());
      S.SmemPres.insert(S.SmemPres.end(), B.SmemPres.begin(),
                        B.SmemPres.end());
      for (uint32_t Entry : B.LoopPaths)
        S.LoopPaths.push_back(Entry < NumTopLoops ? Entry
                                                  : Entry + LoopShift);
      S.Loops.insert(S.Loops.end(), B.Loops.begin(), B.Loops.end());
      for (size_t A = 0; A < NumAgents; ++A)
        for (uint32_t Idx : B.Streams[A])
          S.Streams[A].push_back(Idx + InstBase);
      LoopShift += static_cast<uint32_t>(B.Loops.size());
    }
  }

  //===--- Completion-time tables -----------------------------------------===//

  /// Sizes the flat completion-time arena: one slab per in-grid event,
  /// (Wgs + 1) warpgroup slots when replicated, times the coordinate box of
  /// the producer's own enclosing loops (ranges observed during expansion).
  /// Sizing each slab from the producer's chain — not a per-depth union —
  /// means the arena holds exactly the keys producers can register, the
  /// same cardinality the sparse ordered map used to reach.
  void buildEventTables() {
    uint64_t Total = 0;
    for (auto [Event, ProducerId] : S.KnownEvents) {
      EventRec &Rec = S.Events[Event];
      uint32_t Dense =
          ProducerId < S.OpDense.size() ? S.OpDense[ProducerId] : ~0u;
      // A statically indexed producer that was never reached (zero-trip
      // enclosing loop) sizes like an unknown one, as it did when slots
      // were assigned at first dynamic visit.
      if (Dense != ~0u && !S.Ops[Dense].Visited)
        Dense = ~0u;
      Rec.Depth = 0;
      Rec.ChainOff = 0;
      Rec.CoordCount = 1;
      if (Dense != ~0u) {
        const OpRec &Producer = S.Ops[Dense];
        Rec.Depth = Producer.Depth;
        Rec.ChainOff = Producer.ChainOff;
        for (uint32_t D = 0; D < Rec.Depth; ++D) {
          const OpRec &Loop = S.Ops[S.ChainArena[Rec.ChainOff + D]];
          // The op was reached, so every enclosing loop ran >= 1 iteration.
          Rec.CoordCount *= static_cast<uint64_t>(Loop.MaxCoord -
                                                  Loop.MinCoord + 1);
          if (Rec.CoordCount > (uint64_t(1) << 32))
            break;
        }
      }
      Rec.WgSlots =
          Rec.WgReplicated ? static_cast<uint32_t>(NumAgents) : 1;
      Rec.TimesOff = Total;
      Total += static_cast<uint64_t>(Rec.WgSlots) * Rec.CoordCount;
    }
    // A nest this size would also have been hopeless for the sparse map
    // (one key per executed iteration); fail with a diagnostic instead of
    // allocating gigabytes per thread.
    if (Total > (uint64_t(1) << 27)) {
      fail("simulation iteration space too large for dense event tables");
      return;
    }
    // The NaN fill of the completion-time arena is the one O(iteration
    // space) initialization; chunk it across the pool when the arena is
    // big enough for the fan-out to pay for itself. Disjoint ranges, so
    // any chunk order produces the same bytes.
    S.Times.resize(Total);
    double *Data = S.Times.data();
    const double NaN = std::numeric_limits<double>::quiet_NaN();
    size_t Chunks = Pool ? Pool->parallelism() : 1;
    if (Chunks > 1 && Total > (uint64_t(1) << 16)) {
      Pool->parallelFor(Chunks, [&](size_t C) {
        std::fill(Data + Total * C / Chunks,
                  Data + Total * (C + 1) / Chunks, NaN);
      });
    } else {
      std::fill(Data, Data + Total, NaN);
    }
  }

  /// Strided linear index of the coordinate prefix Coords[0..Len) within
  /// \p Rec's producer coordinate box, with the last coordinate overridden
  /// by \p Last (pipeline lag). False when any coordinate falls outside
  /// the box (no producer instance exists there).
  bool coordIndex(const EventRec &Rec, const int64_t *Coords, uint32_t Len,
                  int64_t Last, uint64_t &Out) const {
    uint64_t Idx = 0;
    const uint32_t *Chain = S.ChainArena.data() + Rec.ChainOff;
    for (uint32_t D = 0; D < Len; ++D) {
      const OpRec &Loop = S.Ops[Chain[D]];
      int64_t C = (D + 1 == Len) ? Last : Coords[D];
      if (C < Loop.MinCoord || C > Loop.MaxCoord)
        return false;
      Idx = Idx * static_cast<uint64_t>(Loop.MaxCoord - Loop.MinCoord + 1) +
            static_cast<uint64_t>(C - Loop.MinCoord);
    }
    Out = Idx;
    return true;
  }

  /// Completion cycle of one (event, warpgroup, iteration-prefix) key;
  /// false when that instance has not completed (or can never exist).
  bool lookupTime(const EventRec &Rec, int64_t Wg, const int64_t *Coords,
                  uint32_t KeyLen, int64_t Last, double &Out) const {
    // Producers always register keys at their own depth; a shorter prefix
    // (consumer shallower than producer) can never match.
    if (KeyLen != Rec.Depth)
      return false;
    uint64_t Idx;
    if (!coordIndex(Rec, Coords, KeyLen, Last, Idx))
      return false;
    uint64_t Slot = Wg < 0 ? 0 : static_cast<uint64_t>(Wg) + 1;
    if (Slot >= Rec.WgSlots)
      return false;
    double T = S.Times[Rec.TimesOff + Slot * Rec.CoordCount + Idx];
    if (std::isnan(T))
      return false;
    Out = T;
    return true;
  }

  //===--- Cost model -------------------------------------------------------===//

  Cost costOf(const Operation &Op) const {
    Cost C;
    if (Op.Kind == OpKind::Copy) {
      int64_t Bytes = Module.sliceBytes(Op.CopySrc);
      Memory Src = Module.tensor(Op.CopySrc.Tensor).Mem;
      Memory Dst = Module.tensor(Op.CopyDst.Tensor).Mem;
      bool Global = Src == Memory::Global || Dst == Memory::Global;
      if (Op.Unit == ExecUnit::TMA) {
        C.Unit = Cost::UnitKind::Tma;
        C.IssueCycles = Config.SimtLatency;
        C.UnitCycles = static_cast<double>(Bytes) / Config.TmaBytesPerCycle;
        C.Latency = Config.GlobalLatency;
      } else if (Global) {
        // SIMT path to global memory (the no-TMA fallback).
        C.IssueCycles = Config.SimtLatency +
                        static_cast<double>(Bytes) /
                            Config.SimtGlobalBytesPerCycle;
        C.Latency = Config.GlobalLatency;
      } else {
        C.IssueCycles = Config.SimtLatency +
                        static_cast<double>(Bytes) /
                            Config.SimtLocalBytesPerCycle;
      }
      return C;
    }
    assert(Op.Kind == OpKind::Call && "costOf expects copies or calls");
    if (Op.Unit == ExecUnit::TensorCore) {
      C.Unit = Cost::UnitKind::TensorCore;
      C.IssueCycles = Config.SimtLatency;
      C.UnitCycles = Op.Flops / Config.TensorCoreFlopsPerCycle;
      C.Latency = Config.TensorCoreLatency;
    } else {
      C.IssueCycles = Config.SimtLatency +
                      Op.Flops / Config.SimtFlopsPerCycle;
    }
    return C;
  }

  //===--- Scheduling --------------------------------------------------------===//

  void schedule() {
    S.Cursor.assign(NumAgents, 0);
    S.Ready.assign(NumAgents, 0.0);

    // Time-ordered scheduling: of all agents whose next instruction has
    // satisfied preconditions, execute the one that can start earliest.
    // (Greedy per-agent draining would let one warpgroup book the shared
    // Tensor Core arbitrarily far ahead of its peers, which the hardware
    // warp scheduler does not do.)
    while (true) {
      // Relaxation checkpoint: one strided poll per scheduling step, so a
      // deadline cuts even a pathological event graph off instead of
      // spinning to the end of its streams.
      if (SchedCheck.enabled() && SchedCheck.shouldStop()) {
        fail(SchedCheck.diagnostic("simulation event relaxation"));
        return;
      }
      size_t BestAgent = ~size_t(0);
      double BestStart = 0.0, BestWait = 0.0;
      bool AnyPending = false;
      for (size_t Agent = 0; Agent < NumAgents; ++Agent) {
        if (S.Cursor[Agent] >= S.Streams[Agent].size())
          continue;
        AnyPending = true;
        const InstRec &Inst = S.Insts[S.Streams[Agent][S.Cursor[Agent]]];
        double WaitTime = 0.0;
        if (!precondsReady(Inst, WaitTime))
          continue;
        double Start = std::max(S.Ready[Agent], WaitTime);
        if (BestAgent == ~size_t(0) || Start < BestStart) {
          BestAgent = Agent;
          BestStart = Start;
          BestWait = WaitTime;
        }
      }
      if (!AnyPending)
        break;
      if (BestAgent == ~size_t(0)) {
        for (size_t Agent = 0; Agent < NumAgents; ++Agent)
          if (S.Cursor[Agent] < S.Streams[Agent].size()) {
            fail(formatString(
                "simulation deadlock: agent %zu blocked at instruction %zu "
                "(missing event producer)",
                Agent, S.Cursor[Agent]));
            return;
          }
      }
      executeInstance(S.Insts[S.Streams[BestAgent][S.Cursor[BestAgent]]],
                      S.Ready[BestAgent], BestWait);
      ++S.Cursor[BestAgent];
    }
    for (size_t Agent = 0; Agent < NumAgents; ++Agent)
      Finish = std::max(Finish, S.Ready[Agent]);
    // Outstanding async completions also bound the block time.
    Finish = std::max(Finish, LastCompletion);
  }

  /// Checks all preconditions of an instance; on success \p WaitTime is the
  /// cycle when the last of them completes.
  bool precondsReady(const InstRec &Inst, double &WaitTime) const {
    WaitTime = 0.0;
    const PrecondDesc *P = S.Preconds.data() + Inst.PrecondOff;
    const int64_t *Coords = S.Coords.data() + Inst.CoordOff;
    for (uint32_t I = 0; I < Inst.PrecondCount; ++I, ++P) {
      if (P->Event >= S.Events.size())
        continue; // Reference to an event outside the module: ready.
      const EventRec &Rec = S.Events[P->Event];
      if (!Rec.Known)
        continue; // Events from outside the grid body: host-level, ready.

      uint32_t KeyLen = std::min<uint32_t>(Inst.Depth, Rec.Depth);
      int64_t Last = KeyLen ? Coords[KeyLen - 1] : 0;
      if (P->IterLag > 0) {
        if (KeyLen == 0)
          continue; // Lag at depth zero: vacuously satisfied.
        Last -= P->IterLag;
        if (Last < 0)
          continue; // First PIPE iterations: buffer not yet reused.
      }

      double Cycle = 0.0;
      if (Rec.WgReplicated) {
        if (P->WantWg >= 0 && !P->Broadcast) {
          if (!lookupTime(Rec, P->WantWg, Coords, KeyLen, Last, Cycle))
            return false;
        } else {
          // All warpgroup instances must exist.
          int64_t Wgs = static_cast<int64_t>(NumAgents) - 1;
          for (int64_t Wg = 0; Wg < Wgs; ++Wg) {
            double T;
            if (!lookupTime(Rec, Wg, Coords, KeyLen, Last, T))
              return false;
            Cycle = std::max(Cycle, T);
          }
          Cycle += Config.BarrierLatency;
        }
      } else {
        if (!lookupTime(Rec, -1, Coords, KeyLen, Last, Cycle))
          return false;
        if (P->Broadcast)
          Cycle += Config.BarrierLatency;
      }
      WaitTime = std::max(WaitTime, Cycle);
    }
    return true;
  }

  void executeInstance(const InstRec &Inst, double &Ready, double WaitTime) {
    const Operation &Op = *Inst.Op;
    const Cost &C = S.Ops[Inst.OpIdx].C;

    double Start = std::max(Ready, WaitTime);
    double Completion;
    if (C.Unit == Cost::UnitKind::Tma) {
      double UnitStart = std::max(Start + C.IssueCycles, TmaFree);
      TmaFree = UnitStart + C.UnitCycles;
      TmaBusy += C.UnitCycles;
      Completion = TmaFree + C.Latency;
      Ready = Start + C.IssueCycles; // Issuing agent moves on (async).
    } else if (C.Unit == Cost::UnitKind::TensorCore) {
      double UnitStart = std::max(Start + C.IssueCycles, TcFree);
      TcFree = UnitStart + C.UnitCycles;
      TcBusy += C.UnitCycles;
      Completion = TcFree + C.Latency;
      Ready = Start + C.IssueCycles; // wgmma is asynchronous too.
    } else {
      Completion = Start + C.IssueCycles;
      Ready = Completion;
    }
    LastCompletion = std::max(LastCompletion, Completion);

    const int64_t *Coords = S.Coords.data() + Inst.CoordOff;

#ifdef CYPRESS_SIM_TRACE
    if (Inst.Depth > 0 && Coords[0] < 8)
      std::fprintf(stderr,
                   "[trace] op%u %s wg=%d k=%lld start=%.0f done=%.0f "
                   "wait=%.0f\n",
                   Op.Id, Op.Kind == OpKind::Copy ? "copy" : Op.Callee.c_str(),
                   Inst.Wg,
                   (long long)(Inst.Depth == 0 ? -1 : Coords[0]), Start,
                   Completion, WaitTime);
#endif

    if (Op.Kind == OpKind::Call)
      BlockFlops += Op.Flops;

    if (Op.Result != InvalidEventId) {
      EventRec &Rec = S.Events[Op.Result];
      uint32_t KeyLen = std::min(Inst.Depth, S.Ops[Inst.OpIdx].Depth);
      uint64_t Idx = 0;
      bool InRange = coordIndex(
          Rec, Coords, KeyLen, KeyLen ? Coords[KeyLen - 1] : 0, Idx);
      assert(InRange && KeyLen == Rec.Depth &&
             "producer key outside its own coordinate box");
      (void)InRange;
      uint64_t Slot = Inst.Wg < 0 ? 0 : static_cast<uint64_t>(Inst.Wg) + 1;
      S.Times[Rec.TimesOff + Slot * Rec.CoordCount + Idx] = Completion;
    }

    // Credit the completion to every enclosing loop; when the last body
    // instance of a loop instance finishes, the loop's completion event
    // becomes available (Figure 8's `for` events).
    const uint32_t *Path = S.LoopPaths.data() + Inst.LoopOff;
    for (uint32_t D = 0; D < Inst.Depth; ++D) {
      LoopInst &Loop = S.Loops[Path[D]];
      Loop.MaxTime = std::max(Loop.MaxTime, Completion);
      if (--Loop.Remaining == 0 && Loop.Event != InvalidEventId) {
        EventRec &Rec = S.Events[Loop.Event];
        Rec.Depth = D;
        uint64_t Idx = 0;
        bool InRange =
            coordIndex(Rec, Coords, D, D ? Coords[D - 1] : 0, Idx);
        assert(InRange && "loop prefix outside its own coordinate box");
        (void)InRange;
        S.Times[Rec.TimesOff + Idx] = Loop.MaxTime; // Warpgroup slot -1.
      }
    }

    const SmemPre *Pre = S.SmemPres.data() + Inst.SmemOff;
    for (uint32_t I = 0; I < Inst.SmemCount; ++I, ++Pre)
      S.Accesses.push_back({Pre->Tensor, Pre->Lo, Pre->Hi, Start, Completion,
                            Pre->Write, Pre->Op, Pre->Wg, Pre->IterHash});
  }

  //===--- Race detection ----------------------------------------------------===//

  static bool isRacePair(const SmemAccess &A, const SmemAccess &B) {
    // Same-tensor conflicts are real too: an unsynchronized loop would
    // overwrite a buffer another iteration is still reading. Only the
    // exact same instance (and the read side of its own write) is exempt.
    if (A.Op == B.Op && A.Wg == B.Wg && A.IterHash == B.IterHash)
      return false;
    if (!(A.Write || B.Write))
      return false;
    // Distinct warpgroups touch disjoint slices of per-warpgroup tensors;
    // the byte-range trace is per-tensor, so cross-warpgroup pairs on the
    // same tensor cannot be classified and are skipped.
    if (A.Tensor == B.Tensor && A.Wg != B.Wg)
      return false;
    bool AddrOverlap = A.Lo < B.Hi && B.Lo < A.Hi;
    bool TimeOverlap = A.Start < B.End && B.Start < A.End;
    return AddrOverlap && TimeOverlap;
  }

  /// Interval sweep over the access trace ordered by start time: an access
  /// only needs checking against the accesses still in flight when it
  /// starts, so the all-clear case (every healthy kernel) is near-linear.
  bool anyRace() {
    size_t N = S.Accesses.size();
    if (N < 2)
      return false;
    S.RaceOrder.resize(N);
    for (size_t I = 0; I < N; ++I)
      S.RaceOrder[I] = static_cast<uint32_t>(I);
    std::sort(S.RaceOrder.begin(), S.RaceOrder.end(),
              [&](uint32_t A, uint32_t B) {
                return S.Accesses[A].Start < S.Accesses[B].Start ||
                       (S.Accesses[A].Start == S.Accesses[B].Start && A < B);
              });
    S.RaceActive.clear();
    for (uint32_t Idx : S.RaceOrder) {
      const SmemAccess &B = S.Accesses[Idx];
      size_t Keep = 0;
      for (uint32_t ActiveIdx : S.RaceActive) {
        const SmemAccess &A = S.Accesses[ActiveIdx];
        if (A.End <= B.Start)
          continue; // Expired: can never overlap anything later either.
        if (isRacePair(A, B))
          return true;
        S.RaceActive[Keep++] = ActiveIdx;
      }
      S.RaceActive.resize(Keep);
      S.RaceActive.push_back(Idx);
    }
    return false;
  }

  void detectRaces() {
    // Fast path: prove the trace race-free with the interval sweep. Only
    // when a hazard exists does the exact pairwise scan run, so diagnostics
    // keep their historical order and cap.
    if (!anyRace())
      return;
    for (size_t I = 0; I < S.Accesses.size(); ++I) {
      for (size_t J = I + 1; J < S.Accesses.size(); ++J) {
        const SmemAccess &A = S.Accesses[I];
        const SmemAccess &B = S.Accesses[J];
        if (!isRacePair(A, B))
          continue;
        Races.push_back(formatString(
            "shared-memory hazard between %s and %s (aliased bytes "
            "[%lld, %lld) overlap in time)",
            Module.tensor(A.Tensor).Name.c_str(),
            Module.tensor(B.Tensor).Name.c_str(),
            static_cast<long long>(std::max(A.Lo, B.Lo)),
            static_cast<long long>(std::min(A.Hi, B.Hi))));
        if (Races.size() > 8)
          return; // Enough evidence.
      }
    }
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }
  void fail(Diagnostic Diag) {
    if (!Failure)
      Failure = std::move(Diag);
  }

  const IRModule &Module;
  const SharedAllocation &Alloc;
  const SimConfig &Config;
  const Operation &Grid;
  TimerScratch &S;
  const SimHints *Hints;
  SimWorkerPool *Pool; ///< Null: expand in one shard on this thread.
  const Cancellation *Cancel = nullptr;
  CancelCheck SchedCheck; ///< The scheduling loop's (main-thread) poll.

  size_t NumAgents = 0;
  int64_t Wgs = 1;          ///< Widest warpgroup dim (static pre-walk).
  uint32_t NumTopLoops = 0; ///< Global loop instances from buildUnits.

  /// Top-level environment for buildUnits' bound evaluation (per-shard
  /// expansion keeps its own; see expandUnitRange).
  ScalarEnv Env;
  std::map<Processor, int64_t>::iterator WgIndex;
  std::vector<uint32_t> LoopOpStack; ///< Pre-walk: enclosing For dense ids.

  std::vector<std::string> Races;

  double TmaFree = 0, TcFree = 0;
  double TmaBusy = 0, TcBusy = 0;
  double Finish = 0, LastCompletion = 0;
  double BlockFlops = 0;
  std::optional<Diagnostic> Failure;
};

} // namespace

//===----------------------------------------------------------------------===//
// Functional execution
//===----------------------------------------------------------------------===//

namespace {

/// Storage key of one tensor instance: the values of the processor indices
/// the tensor's alloc context names, inline (the context is at most one
/// index per machine processor level).
struct StorageKey {
  std::array<int64_t, 6> Values{};
  uint32_t Len = 0;

  bool operator==(const StorageKey &Other) const {
    if (Len != Other.Len)
      return false;
    for (uint32_t I = 0; I < Len; ++I)
      if (Values[I] != Other.Values[I])
        return false;
    return true;
  }
};

struct StorageKeyHash {
  size_t operator()(const StorageKey &Key) const {
    uint64_t Hash = 1469598103934665603ull;
    for (uint32_t I = 0; I < Key.Len; ++I)
      Hash = (Hash ^ static_cast<uint64_t>(Key.Values[I])) *
             1099511628211ull;
    return static_cast<size_t>(Hash ^ Key.Len);
  }
};

class FunctionalExec {
public:
  FunctionalExec(const IRModule &Module, const LeafRegistry &Leaves,
                 const std::vector<TensorData *> &EntryBuffers)
      : Module(Module), Leaves(Leaves), EntryBuffers(EntryBuffers) {}

  ErrorOrVoid run() {
    // Map alloc contexts (which processor dims key a tensor's storage):
    // flat per-tensor pointers into the IR, no ordered map.
    AllocContext.assign(Module.tensors().size(), nullptr);
    Storage.resize(Module.tensors().size());
    walkOps(Module.root(), [&](const Operation &Op) {
      if (Op.Kind == OpKind::Alloc)
        AllocContext[Op.AllocTensor] = &Op.VecContext;
    });
    execBlockSeq(Module.root(), BaseEnv());
    if (Failure)
      return *Failure;
    return ErrorOrVoid::success();
  }

private:
  ScalarEnv BaseEnv() const {
    ScalarEnv Env;
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = 0;
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    return Env;
  }

  /// Storage key: the values of the processor indices the tensor's alloc
  /// context names, plus the block index (block-scoped reuse is fine since
  /// blocks execute sequentially, but register tensors per warp/thread need
  /// distinct instances).
  StorageKey storageKey(TensorId Tensor, const ScalarEnv &Env) {
    StorageKey Key;
    const InlineVector<EventDim, 4> *Ctx = AllocContext[Tensor];
    if (!Ctx)
      return Key;
    if (Ctx->size() > Key.Values.size()) {
      fail("alloc context deeper than the machine processor hierarchy");
      return Key;
    }
    for (const EventDim &Dim : *Ctx)
      Key.Values[Key.Len++] = Env.ProcIndices.at(Dim.Proc);
    return Key;
  }

  TensorData &storage(TensorId Tensor, const ScalarEnv &Env, int64_t Buf) {
    const IRTensor &T = Module.tensor(Tensor);
    if (T.IsEntryArg) {
      for (size_t I = 0; I < Module.entryArgs().size(); ++I)
        if (Module.entryArgs()[I] == Tensor)
          return *EntryBuffers[I];
      cypressUnreachable("entry arg not found");
    }
    auto &Buffers = Storage[Tensor][storageKey(Tensor, Env)];
    if (Buffers.empty())
      Buffers.assign(static_cast<size_t>(std::max<int64_t>(T.PipelineDepth,
                                                           1)),
                     TensorData(T.Type));
    assert(Buf >= 0 &&
           Buf < static_cast<int64_t>(Buffers.size()) &&
           "pipeline buffer index out of range");
    return Buffers[static_cast<size_t>(Buf)];
  }

  /// Executes a block sequentially under \p Env (loop vars bound).
  void execBlockSeq(const IRBlock &Block, ScalarEnv Env) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Failure)
        return;
      switch (Op->Kind) {
      case OpKind::MakePart:
        break;
      case OpKind::Alloc:
        execAlloc(*Op, Env);
        break;
      case OpKind::For: {
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          execBlockSeq(Op->Body, Env);
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::PFor: {
        // Grid (or host-level) parallel loop: iterations are independent by
        // construction; execute sequentially.
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          if (Op->PForProc == Processor::Block)
            Env.ProcIndices[Processor::Block] = K;
          execBlockSeq(Op->Body, Env);
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::Copy:
      case OpKind::Call:
        forEachProcInstance(*Op, Env, [&](const ScalarEnv &InstEnv) {
          if (Op->Kind == OpKind::Copy)
            execCopy(*Op, InstEnv);
          else
            execCall(*Op, InstEnv);
        });
        break;
      }
    }
  }

  /// Iterates all combinations of the op's flattened processor dims with an
  /// iterative odometer (innermost dim fastest, matching a nested loop).
  template <typename Fn>
  void forEachProcInstance(const Operation &Op, const ScalarEnv &Env,
                           Fn &&Body) {
    const InlineVector<EventDim, 4> &Dims = Op.VecContext;
    ScalarEnv InstEnv = Env;
    if (Dims.empty()) {
      Body(InstEnv);
      return;
    }
    for (const EventDim &Dim : Dims)
      if (Dim.Extent <= 0)
        return;
    Odometer.assign(Dims.size(), 0);
    while (true) {
      for (size_t D = 0; D < Dims.size(); ++D)
        InstEnv.ProcIndices[Dims[D].Proc] = Odometer[D];
      Body(InstEnv);
      size_t D = Dims.size();
      while (D-- > 0) {
        if (++Odometer[D] < Dims[D].Extent)
          break;
        Odometer[D] = 0;
      }
      if (D == ~size_t(0))
        return; // Every dimension wrapped: enumeration complete.
    }
  }

  void execAlloc(const Operation &Op, const ScalarEnv &Env) {
    // (Re)create every instance of the allocation for the current block:
    // enumerate the alloc's own context dims.
    forEachProcInstance(Op, Env, [&](const ScalarEnv &InstEnv) {
      const IRTensor &T = Module.tensor(Op.AllocTensor);
      auto &Buffers =
          Storage[Op.AllocTensor][storageKey(Op.AllocTensor, InstEnv)];
      Buffers.assign(static_cast<size_t>(std::max<int64_t>(T.PipelineDepth,
                                                           1)),
                     TensorData(T.Type));
    });
  }

  void execCopy(const Operation &Op, const ScalarEnv &Env) {
    SubTensor SrcMap = Module.resolveSlice(Op.CopySrc, Env);
    SubTensor DstMap = Module.resolveSlice(Op.CopyDst, Env);
    TensorData &Src = storage(Op.CopySrc.Tensor, Env,
                              Op.CopySrc.BufferIndex.evaluate(Env));
    TensorData &Dst = storage(Op.CopyDst.Tensor, Env,
                              Op.CopyDst.BufferIndex.evaluate(Env));
    int64_t Count = SrcMap.shape().numElements();
    if (Count != DstMap.shape().numElements()) {
      fail(formatString("copy size mismatch at runtime (%lld vs %lld)",
                        static_cast<long long>(Count),
                        static_cast<long long>(
                            DstMap.shape().numElements())));
      return;
    }
    for (int64_t I = 0; I < Count; ++I) {
      std::vector<int64_t> SrcIdx =
          SrcMap.mapToParent(SrcMap.shape().delinearize(I));
      std::vector<int64_t> DstIdx =
          DstMap.mapToParent(DstMap.shape().delinearize(I));
      Dst.set(DstIdx, Src.at(SrcIdx));
    }
  }

  void execCall(const Operation &Op, const ScalarEnv &Env) {
    if (!Leaves.has(Op.Callee)) {
      fail(formatString("no functional implementation registered for leaf "
                        "%s",
                        Op.Callee.c_str()));
      return;
    }
    std::vector<TensorView> Views;
    for (const TensorSlice &Slice : Op.Args) {
      SubTensor Map = Module.resolveSlice(Slice, Env);
      TensorData &Data =
          storage(Slice.Tensor, Env, Slice.BufferIndex.evaluate(Env));
      Views.emplace_back(Data, std::move(Map));
    }
    std::vector<int64_t> Scalars;
    for (const ScalarExpr &Expr : Op.ScalarArgs)
      Scalars.push_back(Expr.evaluate(Env));
    Leaves.lookup(Op.Callee)(Views, Scalars);
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  const IRModule &Module;
  const LeafRegistry &Leaves;
  const std::vector<TensorData *> &EntryBuffers;
  /// TensorId -> the alloc op's processor context (null = no alloc seen).
  std::vector<const InlineVector<EventDim, 4> *> AllocContext;
  /// TensorId -> storage-key -> pipeline buffers.
  std::vector<std::unordered_map<StorageKey, std::vector<TensorData>,
                                 StorageKeyHash>>
      Storage;
  std::vector<int64_t> Odometer;
  std::optional<Diagnostic> Failure;
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

ErrorOr<SimResult> cypress::simulate(const IRModule &Module,
                                     const SharedAllocation &Alloc,
                                     const SimConfig &Config,
                                     const LeafRegistry &Leaves,
                                     const std::vector<TensorData *> &EntryBuffers,
                                     const SimHints *Hints,
                                     SimWorkerPool *Pool,
                                     const Cancellation *Cancel) {
  SimResult Total;
  bool FoundGrid = false;

  // Entry checkpoint: a request that arrives already cancelled or past
  // its deadline never touches the scratch tables.
  if (Cancel) {
    CancelCheck Entry(*Cancel);
    if (Entry.enabled() && Entry.shouldStopNow())
      return Entry.diagnostic("simulation");
  }

  for (const std::unique_ptr<Operation> &Op : Module.root().Ops) {
    if (Op->Kind != OpKind::PFor || Op->PForProc != Processor::Block)
      continue;
    FoundGrid = true;
    ScalarEnv Env;
    Env.ProcIndices[Processor::Block] = 0;
    int64_t Blocks = Op->LoopHi.evaluate(Env) - Op->LoopLo.evaluate(Env);

    BlockTimer Timer(Module, Alloc, Config, *Op, timerScratch(), Hints,
                     Pool, Cancel);
    ErrorOr<SimResult> BlockResult = Timer.run();
    if (!BlockResult)
      return BlockResult.diagnostic();

    int64_t Waves = ceilDiv(Blocks, Config.NumSMs);
    double Cycles =
        BlockResult->BlockCycles * static_cast<double>(Waves) +
        Config.BlockOverhead;
    double Seconds = Cycles / (Config.ClockGHz * 1e9);

    Total.BlockCycles += BlockResult->BlockCycles;
    Total.TotalSeconds += Seconds;
    Total.TotalFlops +=
        BlockResult->TotalFlops * static_cast<double>(Blocks);
    Total.Blocks += Blocks;
    Total.Waves += Waves;
    Total.TmaBusyCycles += BlockResult->TmaBusyCycles;
    Total.TensorCoreBusyCycles += BlockResult->TensorCoreBusyCycles;
    for (std::string &Race : BlockResult->Races)
      Total.Races.push_back(std::move(Race));
  }

  if (!FoundGrid)
    return Diagnostic("module has no block-level parallel loop to simulate");

  // DRAM floor: every kernel argument crosses the pins at least once.
  double Compulsory = 0;
  for (TensorId Id : Module.entryArgs())
    Compulsory += static_cast<double>(Module.tensor(Id).Type.sizeBytes());
  Total.TotalSeconds =
      std::max(Total.TotalSeconds, Compulsory / Config.DramBytesPerSec);

  if (Total.TotalSeconds > 0)
    Total.TFlops = Total.TotalFlops / Total.TotalSeconds / 1e12;

  if (!EntryBuffers.empty()) {
    FunctionalExec Exec(Module, Leaves, EntryBuffers);
    if (ErrorOrVoid Err = Exec.run(); !Err)
      return Err.diagnostic();
    Total.FunctionalRan = true;
  }
  return Total;
}
