//===- Simulator.cpp - Discrete-event Hopper SM simulator ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of both execution modes described in Simulator.h. The
/// timing model treats the TMA and Tensor Core as asynchronous units — the
/// issuing agent only pays an issue cost, and downstream operations wait on
/// the completion events the compiler wired — so schedules that overlap
/// copies, matrix ops, and SIMT math are rewarded exactly as on Hopper.
///
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <cstdio>

using namespace cypress;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Warpgroup replication count of an op (1 when it has no warpgroup dim).
int64_t warpgroupExtent(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return Dim.Extent;
  return 1;
}

bool hasWarpgroupDim(const Operation &Op) {
  for (const EventDim &Dim : Op.VecContext)
    if (Dim.Proc == Processor::Warpgroup)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Timing simulation of one block
//===----------------------------------------------------------------------===//

/// One executable instance of an operation: a concrete warpgroup index plus
/// concrete indices for the enclosing sequential loops.
struct OpInstance {
  const Operation *Op = nullptr;
  int64_t Wg = -1;              ///< -1 when the op has no warpgroup dim.
  std::vector<int64_t> Iters;   ///< Enclosing For indices, outermost first.
  std::vector<LoopVarId> IterVars;
  /// Enclosing For-loop op ids, outermost first (loop d encloses the
  /// instance with iteration prefix Iters[0..d]).
  std::vector<OpId> LoopChain;
};

/// Per-event bookkeeping for completion lookup.
struct EventRecord {
  /// (wg, iters) -> completion cycle. wg = -1 for unreplicated events.
  std::map<std::vector<int64_t>, double> Times;
  unsigned Depth = 0;   ///< Number of enclosing loops of the producer.
  bool WgReplicated = false;
};

/// Shared-memory access trace entry for the WAR race detector.
struct SmemAccess {
  TensorId Tensor;
  int64_t Lo = 0, Hi = 0; ///< Byte range.
  double Start = 0, End = 0;
  bool Write = false;
  /// Identity of the accessing instance (op id, warpgroup, iteration hash)
  /// so an instance is never raced against itself.
  OpId Op = ~0u;
  int64_t Wg = -1;
  size_t IterHash = 0;
};

class BlockTimer {
public:
  BlockTimer(const IRModule &Module, const SharedAllocation &Alloc,
             const SimConfig &Config, const Operation &Grid)
      : Module(Module), Alloc(Alloc), Config(Config), Grid(Grid) {}

  ErrorOr<SimResult> run() {
    buildStreams();
    if (Failure)
      return *Failure;
    schedule();
    if (Failure)
      return *Failure;
    detectRaces();

    SimResult Result;
    Result.BlockCycles = Finish;
    Result.TotalFlops = BlockFlops;
    Result.TmaBusyCycles = TmaBusy;
    Result.TensorCoreBusyCycles = TcBusy;
    Result.Races = std::move(Races);
    return Result;
  }

private:
  //===--- Stream construction --------------------------------------------===//

  /// Number of compute warpgroup agents: the widest warpgroup dim seen.
  int64_t numWarpgroups() const {
    int64_t Count = 1;
    walkOps(Grid.Body, [&](const Operation &Op) {
      Count = std::max(Count, warpgroupExtent(Op));
    });
    return Count;
  }

  void buildStreams() {
    int64_t Wgs = numWarpgroups();
    // Agent 0 = DMA warp; agents 1..Wgs = compute warpgroups.
    Streams.resize(1 + static_cast<size_t>(Wgs));
    std::vector<int64_t> Iters;
    std::vector<LoopVarId> Vars;
    std::vector<OpId> Loops;
    expandBlock(Grid.Body, Iters, Vars, Loops);

    // Record per-event metadata.
    walkOps(Grid.Body, [&](const Operation &Op) {
      if (Op.Result == InvalidEventId)
        return;
      EventRecord &Rec = Events[Op.Result];
      Rec.WgReplicated = hasWarpgroupDim(Op);
      Rec.Depth = DepthOf.count(Op.Id) ? DepthOf.at(Op.Id) : 0;
    });
  }

  void expandBlock(const IRBlock &Block, std::vector<int64_t> &Iters,
                   std::vector<LoopVarId> &Vars, std::vector<OpId> &Loops) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Failure)
        return;
      switch (Op->Kind) {
      case OpKind::Alloc:
      case OpKind::MakePart:
        break; // No runtime cost; addresses come from the allocator.
      case OpKind::For: {
        DepthOf[Op->Id] = static_cast<unsigned>(Iters.size());
        if (Op->Result != InvalidEventId)
          LoopEventOf[Op->Id] = Op->Result;
        ScalarEnv Env = makeEnv(Iters, Vars, /*Wg=*/0);
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        Vars.push_back(Op->LoopVar);
        Loops.push_back(Op->Id);
        for (int64_t K = Lo; K < Hi; ++K) {
          Iters.push_back(K);
          expandBlock(Op->Body, Iters, Vars, Loops);
          Iters.pop_back();
        }
        Loops.pop_back();
        Vars.pop_back();
        break;
      }
      case OpKind::PFor:
        fail("nested parallel loops must be flattened before simulation");
        return;
      case OpKind::Copy:
      case OpKind::Call: {
        DepthOf[Op->Id] = static_cast<unsigned>(Iters.size());
        bool Dma = Grid.WarpSpecialize && Op->DmaAgent;
        // Count every instance against every enclosing loop so the loop's
        // completion event fires when all body instances have finished.
        auto Push = [&](size_t Agent, OpInstance Inst) {
          for (size_t D = 0; D < Loops.size(); ++D) {
            std::vector<int64_t> Prefix(
                Iters.begin(), Iters.begin() + static_cast<long>(D));
            ++LoopRemaining[{Loops[D], Prefix}].Remaining;
          }
          Streams[Agent].push_back(std::move(Inst));
        };
        OpInstance Inst{Op.get(), -1, Iters, Vars, Loops};
        if (hasWarpgroupDim(*Op)) {
          for (int64_t Wg = 0; Wg < warpgroupExtent(*Op); ++Wg) {
            Inst.Wg = Wg;
            Push(Dma ? 0 : 1 + static_cast<size_t>(Wg), Inst);
          }
        } else {
          Push(Dma ? 0 : 1, Inst);
        }
        break;
      }
      }
    }
  }

  ScalarEnv makeEnv(const std::vector<int64_t> &Iters,
                    const std::vector<LoopVarId> &Vars, int64_t Wg) const {
    ScalarEnv Env;
    for (size_t I = 0; I < Iters.size(); ++I)
      Env.LoopVars[Vars[I]] = Iters[I];
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = std::max<int64_t>(Wg, 0);
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    return Env;
  }

  //===--- Cost model -------------------------------------------------------===//

  struct Cost {
    double IssueCycles = 0;   ///< Time the issuing agent is occupied.
    double UnitCycles = 0;    ///< Occupancy of the shared unit (TMA/TC).
    double Latency = 0;       ///< Extra completion latency after transfer.
    enum class UnitKind { None, Tma, TensorCore } Unit = UnitKind::None;
  };

  Cost costOf(const Operation &Op) const {
    Cost C;
    if (Op.Kind == OpKind::Copy) {
      int64_t Bytes = Module.sliceBytes(Op.CopySrc);
      Memory Src = Module.tensor(Op.CopySrc.Tensor).Mem;
      Memory Dst = Module.tensor(Op.CopyDst.Tensor).Mem;
      bool Global = Src == Memory::Global || Dst == Memory::Global;
      if (Op.Unit == ExecUnit::TMA) {
        C.Unit = Cost::UnitKind::Tma;
        C.IssueCycles = Config.SimtLatency;
        C.UnitCycles = static_cast<double>(Bytes) / Config.TmaBytesPerCycle;
        C.Latency = Config.GlobalLatency;
      } else if (Global) {
        // SIMT path to global memory (the no-TMA fallback).
        C.IssueCycles = Config.SimtLatency +
                        static_cast<double>(Bytes) /
                            Config.SimtGlobalBytesPerCycle;
        C.Latency = Config.GlobalLatency;
      } else {
        C.IssueCycles = Config.SimtLatency +
                        static_cast<double>(Bytes) /
                            Config.SimtLocalBytesPerCycle;
      }
      return C;
    }
    assert(Op.Kind == OpKind::Call && "costOf expects copies or calls");
    if (Op.Unit == ExecUnit::TensorCore) {
      C.Unit = Cost::UnitKind::TensorCore;
      C.IssueCycles = Config.SimtLatency;
      C.UnitCycles = Op.Flops / Config.TensorCoreFlopsPerCycle;
      C.Latency = Config.TensorCoreLatency;
    } else {
      C.IssueCycles = Config.SimtLatency +
                      Op.Flops / Config.SimtFlopsPerCycle;
    }
    return C;
  }

  //===--- Scheduling --------------------------------------------------------===//

  void schedule() {
    std::vector<size_t> Cursor(Streams.size(), 0);
    std::vector<double> Ready(Streams.size(), 0.0);

    // Time-ordered scheduling: of all agents whose next instruction has
    // satisfied preconditions, execute the one that can start earliest.
    // (Greedy per-agent draining would let one warpgroup book the shared
    // Tensor Core arbitrarily far ahead of its peers, which the hardware
    // warp scheduler does not do.)
    while (true) {
      size_t BestAgent = ~size_t(0);
      double BestStart = 0.0, BestWait = 0.0;
      bool AnyPending = false;
      for (size_t Agent = 0; Agent < Streams.size(); ++Agent) {
        if (Cursor[Agent] >= Streams[Agent].size())
          continue;
        AnyPending = true;
        const OpInstance &Inst = Streams[Agent][Cursor[Agent]];
        double WaitTime = 0.0;
        if (!precondsReady(Inst, WaitTime))
          continue;
        double Start = std::max(Ready[Agent], WaitTime);
        if (BestAgent == ~size_t(0) || Start < BestStart) {
          BestAgent = Agent;
          BestStart = Start;
          BestWait = WaitTime;
        }
      }
      if (!AnyPending)
        break;
      if (BestAgent == ~size_t(0)) {
        for (size_t Agent = 0; Agent < Streams.size(); ++Agent)
          if (Cursor[Agent] < Streams[Agent].size()) {
            fail(formatString(
                "simulation deadlock: agent %zu blocked at instruction %zu "
                "(missing event producer)",
                Agent, Cursor[Agent]));
            return;
          }
      }
      executeInstance(Streams[BestAgent][Cursor[BestAgent]],
                      Ready[BestAgent], BestWait);
      ++Cursor[BestAgent];
    }
    for (size_t Agent = 0; Agent < Streams.size(); ++Agent)
      Finish = std::max(Finish, Ready[Agent]);
    // Outstanding async completions also bound the block time.
    Finish = std::max(Finish, LastCompletion);
  }

  /// Checks all preconditions of an instance; on success \p WaitTime is the
  /// cycle when the last of them completes.
  bool precondsReady(const OpInstance &Inst, double &WaitTime) {
    WaitTime = 0.0;
    for (const EventRef &Ref : Inst.Op->Preconds) {
      auto It = Events.find(Ref.Event);
      if (It == Events.end())
        continue; // Events from outside the grid body: host-level, ready.
      EventRecord &Rec = It->second;

      std::vector<int64_t> Key = Inst.Iters;
      Key.resize(std::min<size_t>(Key.size(), Rec.Depth));
      if (Ref.IterLag > 0) {
        if (Key.empty())
          continue; // Lag at depth zero: vacuously satisfied.
        Key.back() -= Ref.IterLag;
        if (Key.back() < 0)
          continue; // First PIPE iterations: buffer not yet reused.
      }

      // Identify warpgroup indexing.
      bool Broadcast = false;
      int64_t WantWg = -1;
      const EventType &Type = Module.event(Ref.Event).Type;
      for (size_t D = 0; D < Ref.Indices.size() && D < Type.Dims.size();
           ++D) {
        if (Type.Dims[D].Proc == Processor::Warpgroup) {
          if (Ref.Indices[D].isBroadcast()) {
            Broadcast = true;
          } else {
            ScalarEnv Env = makeEnv(Inst.Iters, Inst.IterVars, Inst.Wg);
            WantWg = Ref.Indices[D].Index.evaluate(Env);
          }
        } else if (Ref.Indices[D].isBroadcast()) {
          // Warp/thread broadcast: the collective instance plus a barrier.
          Broadcast = true;
        }
      }

      double Cycle = 0.0;
      if (Rec.WgReplicated) {
        if (WantWg >= 0 && !Broadcast) {
          std::vector<int64_t> K = Key;
          K.insert(K.begin(), WantWg);
          auto TimeIt = Rec.Times.find(K);
          if (TimeIt == Rec.Times.end())
            return false;
          Cycle = TimeIt->second;
        } else {
          // All warpgroup instances must exist.
          int64_t Wgs = static_cast<int64_t>(Streams.size()) - 1;
          for (int64_t Wg = 0; Wg < Wgs; ++Wg) {
            std::vector<int64_t> K = Key;
            K.insert(K.begin(), Wg);
            auto TimeIt = Rec.Times.find(K);
            if (TimeIt == Rec.Times.end())
              return false;
            Cycle = std::max(Cycle, TimeIt->second);
          }
          Cycle += Config.BarrierLatency;
        }
      } else {
        std::vector<int64_t> K = Key;
        K.insert(K.begin(), -1);
        auto TimeIt = Rec.Times.find(K);
        if (TimeIt == Rec.Times.end())
          return false;
        Cycle = TimeIt->second;
        if (Broadcast)
          Cycle += Config.BarrierLatency;
      }
      WaitTime = std::max(WaitTime, Cycle);
    }
    return true;
  }

  void executeInstance(const OpInstance &Inst, double &Ready,
                       double WaitTime) {
    const Operation &Op = *Inst.Op;
    Cost C = costOf(Op);

    double Start = std::max(Ready, WaitTime);
    double Completion;
    if (C.Unit == Cost::UnitKind::Tma) {
      double UnitStart = std::max(Start + C.IssueCycles, TmaFree);
      TmaFree = UnitStart + C.UnitCycles;
      TmaBusy += C.UnitCycles;
      Completion = TmaFree + C.Latency;
      Ready = Start + C.IssueCycles; // Issuing agent moves on (async).
    } else if (C.Unit == Cost::UnitKind::TensorCore) {
      double UnitStart = std::max(Start + C.IssueCycles, TcFree);
      TcFree = UnitStart + C.UnitCycles;
      TcBusy += C.UnitCycles;
      Completion = TcFree + C.Latency;
      Ready = Start + C.IssueCycles; // wgmma is asynchronous too.
    } else {
      Completion = Start + C.IssueCycles;
      Ready = Completion;
    }
    LastCompletion = std::max(LastCompletion, Completion);

#ifdef CYPRESS_SIM_TRACE
    if (!Inst.Iters.empty() && Inst.Iters[0] < 8)
      std::fprintf(stderr, "[trace] op%u %s wg=%lld k=%lld start=%.0f done=%.0f wait=%.0f\n",
                   Op.Id,
                   Op.Kind == OpKind::Copy ? "copy" : Op.Callee.c_str(),
                   (long long)Inst.Wg,
                   (long long)(Inst.Iters.empty() ? -1 : Inst.Iters[0]),
                   Start, Completion, WaitTime);
#endif


    if (Op.Kind == OpKind::Call)
      BlockFlops += Op.Flops;

    if (Op.Result != InvalidEventId) {
      std::vector<int64_t> Key = Inst.Iters;
      Key.resize(std::min<size_t>(Key.size(), DepthOf.at(Op.Id)));
      Key.insert(Key.begin(), Inst.Wg);
      Events[Op.Result].Times[Key] = Completion;
    }

    // Credit the completion to every enclosing loop; when the last body
    // instance of a loop instance finishes, the loop's completion event
    // becomes available (Figure 8's `for` events).
    for (size_t D = 0; D < Inst.LoopChain.size(); ++D) {
      std::vector<int64_t> Prefix(Inst.Iters.begin(),
                                  Inst.Iters.begin() + static_cast<long>(D));
      auto It = LoopRemaining.find({Inst.LoopChain[D], Prefix});
      if (It == LoopRemaining.end())
        continue;
      It->second.MaxTime = std::max(It->second.MaxTime, Completion);
      if (--It->second.Remaining == 0) {
        auto EvIt = LoopEventOf.find(Inst.LoopChain[D]);
        if (EvIt != LoopEventOf.end()) {
          std::vector<int64_t> Key = Prefix;
          Key.insert(Key.begin(), static_cast<int64_t>(-1));
          EventRecord &Rec = Events[EvIt->second];
          Rec.Depth = static_cast<unsigned>(D);
          Rec.Times[Key] = It->second.MaxTime;
        }
      }
    }

    traceSmem(Inst, Start, Completion);
  }

  //===--- Loop events -------------------------------------------------------===//

  /// After body instances execute, register each loop's completion event as
  /// the max completion of its body events for the loop's iteration key.
  /// Called lazily from precondsReady via the normal lookup: loop events
  /// are registered eagerly here instead, after scheduling rounds, keyed at
  /// the loop's own depth. Simpler: loops yield their final op's event, and
  /// the dependence analysis points loop-event uses at the for op's Result.
  /// We register the loop event when all its body instances completed.
  /// (Invoked from schedule() rounds implicitly by re-checking.)

  //===--- Race detection ----------------------------------------------------===//

  void traceSmem(const OpInstance &Inst, double Start, double End) {
    const Operation &Op = *Inst.Op;
    auto Record = [&](const TensorSlice &Slice, bool Write) {
      const IRTensor &T = Module.tensor(Slice.Tensor);
      if (T.Mem != Memory::Shared)
        return;
      const SharedAllocation::Entry *Entry = Alloc.find(Slice.Tensor);
      if (!Entry)
        return;
      int64_t BufBytes = Entry->Bytes / std::max<int64_t>(T.PipelineDepth, 1);
      ScalarEnv Env = makeEnv(Inst.Iters, Inst.IterVars, Inst.Wg);
      int64_t Buf = Slice.BufferIndex.evaluate(Env);
      int64_t Lo = Entry->Offset + Buf * BufBytes;
      size_t IterHash = 0;
      for (int64_t I : Inst.Iters)
        IterHash = IterHash * 1000003u + static_cast<size_t>(I + 1);
      Accesses.push_back({Slice.Tensor, Lo, Lo + BufBytes, Start, End,
                          Write, Op.Id, Inst.Wg, IterHash});
    };
    if (Op.Kind == OpKind::Copy) {
      Record(Op.CopySrc, false);
      Record(Op.CopyDst, true);
    } else if (Op.Kind == OpKind::Call) {
      for (size_t I = 0; I < Op.Args.size(); ++I)
        Record(Op.Args[I], Op.ArgIsWritten[I]);
    }
  }

  void detectRaces() {
    for (size_t I = 0; I < Accesses.size(); ++I) {
      for (size_t J = I + 1; J < Accesses.size(); ++J) {
        const SmemAccess &A = Accesses[I];
        const SmemAccess &B = Accesses[J];
        // Same-tensor conflicts are real too: an unsynchronized loop would
        // overwrite a buffer another iteration is still reading. Only the
        // exact same instance (and the read side of its own write) is
        // exempt.
        if (A.Op == B.Op && A.Wg == B.Wg && A.IterHash == B.IterHash)
          continue;
        if (!(A.Write || B.Write))
          continue;
        // Distinct warpgroups touch disjoint slices of per-warpgroup
        // tensors; the byte-range trace is per-tensor, so cross-warpgroup
        // pairs on the same tensor cannot be classified and are skipped.
        if (A.Tensor == B.Tensor && A.Wg != B.Wg)
          continue;
        bool AddrOverlap = A.Lo < B.Hi && B.Lo < A.Hi;
        bool TimeOverlap = A.Start < B.End && B.Start < A.End;
        if (AddrOverlap && TimeOverlap) {
          Races.push_back(formatString(
              "shared-memory hazard between %s and %s (aliased bytes "
              "[%lld, %lld) overlap in time)",
              Module.tensor(A.Tensor).Name.c_str(),
              Module.tensor(B.Tensor).Name.c_str(),
              static_cast<long long>(std::max(A.Lo, B.Lo)),
              static_cast<long long>(std::min(A.Hi, B.Hi))));
          if (Races.size() > 8)
            return; // Enough evidence.
        }
      }
    }
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  const IRModule &Module;
  const SharedAllocation &Alloc;
  const SimConfig &Config;
  const Operation &Grid;

  /// Outstanding body-instance counts per (loop op, iteration prefix).
  struct LoopProgress {
    int64_t Remaining = 0;
    double MaxTime = 0;
  };

  std::vector<std::vector<OpInstance>> Streams;
  std::map<std::pair<OpId, std::vector<int64_t>>, LoopProgress>
      LoopRemaining;
  std::map<OpId, EventId> LoopEventOf;
  std::map<OpId, unsigned> DepthOf;
  std::map<EventId, EventRecord> Events;
  std::vector<SmemAccess> Accesses;
  std::vector<std::string> Races;

  double TmaFree = 0, TcFree = 0;
  double TmaBusy = 0, TcBusy = 0;
  double Finish = 0, LastCompletion = 0;
  double BlockFlops = 0;
  std::optional<Diagnostic> Failure;
};

} // namespace

//===----------------------------------------------------------------------===//
// Functional execution
//===----------------------------------------------------------------------===//

namespace {

class FunctionalExec {
public:
  FunctionalExec(const IRModule &Module, const LeafRegistry &Leaves,
                 const std::vector<TensorData *> &EntryBuffers)
      : Module(Module), Leaves(Leaves), EntryBuffers(EntryBuffers) {}

  ErrorOrVoid run() {
    // Map alloc contexts (which processor dims key a tensor's storage).
    walkOps(Module.root(), [&](const Operation &Op) {
      if (Op.Kind == OpKind::Alloc)
        AllocContext[Op.AllocTensor] = Op.VecContext;
    });
    execBlockSeq(Module.root(), BaseEnv());
    if (Failure)
      return *Failure;
    return ErrorOrVoid::success();
  }

private:
  ScalarEnv BaseEnv() const {
    ScalarEnv Env;
    Env.ProcIndices[Processor::Block] = 0;
    Env.ProcIndices[Processor::Warpgroup] = 0;
    Env.ProcIndices[Processor::Warp] = 0;
    Env.ProcIndices[Processor::Thread] = 0;
    return Env;
  }

  /// Storage key: the values of the processor indices the tensor's alloc
  /// context names, plus the block index (block-scoped reuse is fine since
  /// blocks execute sequentially, but register tensors per warp/thread need
  /// distinct instances).
  std::vector<int64_t> storageKey(TensorId Tensor,
                                  const ScalarEnv &Env) const {
    std::vector<int64_t> Key;
    auto It = AllocContext.find(Tensor);
    if (It == AllocContext.end())
      return Key;
    for (const EventDim &Dim : It->second)
      Key.push_back(Env.ProcIndices.at(Dim.Proc));
    return Key;
  }

  TensorData &storage(TensorId Tensor, const ScalarEnv &Env, int64_t Buf) {
    const IRTensor &T = Module.tensor(Tensor);
    if (T.IsEntryArg) {
      for (size_t I = 0; I < Module.entryArgs().size(); ++I)
        if (Module.entryArgs()[I] == Tensor)
          return *EntryBuffers[I];
      cypressUnreachable("entry arg not found");
    }
    auto &Buffers = Storage[{Tensor, storageKey(Tensor, Env)}];
    if (Buffers.empty())
      Buffers.assign(static_cast<size_t>(std::max<int64_t>(T.PipelineDepth,
                                                           1)),
                     TensorData(T.Type));
    assert(Buf >= 0 &&
           Buf < static_cast<int64_t>(Buffers.size()) &&
           "pipeline buffer index out of range");
    return Buffers[static_cast<size_t>(Buf)];
  }

  /// Executes a block sequentially under \p Env (loop vars bound).
  void execBlockSeq(const IRBlock &Block, ScalarEnv Env) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Failure)
        return;
      switch (Op->Kind) {
      case OpKind::MakePart:
        break;
      case OpKind::Alloc:
        execAlloc(*Op, Env);
        break;
      case OpKind::For: {
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          execBlockSeq(Op->Body, Env);
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::PFor: {
        // Grid (or host-level) parallel loop: iterations are independent by
        // construction; execute sequentially.
        int64_t Lo = Op->LoopLo.evaluate(Env);
        int64_t Hi = Op->LoopHi.evaluate(Env);
        for (int64_t K = Lo; K < Hi; ++K) {
          Env.LoopVars[Op->LoopVar] = K;
          if (Op->PForProc == Processor::Block)
            Env.ProcIndices[Processor::Block] = K;
          execBlockSeq(Op->Body, Env);
        }
        Env.LoopVars.erase(Op->LoopVar);
        break;
      }
      case OpKind::Copy:
      case OpKind::Call:
        forEachProcInstance(*Op, Env, [&](const ScalarEnv &InstEnv) {
          if (Op->Kind == OpKind::Copy)
            execCopy(*Op, InstEnv);
          else
            execCall(*Op, InstEnv);
        });
        break;
      }
    }
  }

  /// Iterates all combinations of the op's flattened processor dims.
  void forEachProcInstance(const Operation &Op, const ScalarEnv &Env,
                           const std::function<void(const ScalarEnv &)> &Fn) {
    std::vector<EventDim> Dims = Op.VecContext;
    std::vector<int64_t> Index(Dims.size(), 0);
    ScalarEnv InstEnv = Env;
    std::function<void(size_t)> Recurse = [&](size_t D) {
      if (D == Dims.size()) {
        Fn(InstEnv);
        return;
      }
      for (int64_t I = 0; I < Dims[D].Extent; ++I) {
        InstEnv.ProcIndices[Dims[D].Proc] = I;
        Recurse(D + 1);
      }
    };
    Recurse(0);
  }

  void execAlloc(const Operation &Op, const ScalarEnv &Env) {
    // (Re)create every instance of the allocation for the current block:
    // enumerate the alloc's own context dims.
    forEachProcInstance(Op, Env, [&](const ScalarEnv &InstEnv) {
      const IRTensor &T = Module.tensor(Op.AllocTensor);
      auto &Buffers = Storage[{Op.AllocTensor,
                               storageKey(Op.AllocTensor, InstEnv)}];
      Buffers.assign(static_cast<size_t>(std::max<int64_t>(T.PipelineDepth,
                                                           1)),
                     TensorData(T.Type));
    });
  }

  void execCopy(const Operation &Op, const ScalarEnv &Env) {
    SubTensor SrcMap = Module.resolveSlice(Op.CopySrc, Env);
    SubTensor DstMap = Module.resolveSlice(Op.CopyDst, Env);
    TensorData &Src = storage(Op.CopySrc.Tensor, Env,
                              Op.CopySrc.BufferIndex.evaluate(Env));
    TensorData &Dst = storage(Op.CopyDst.Tensor, Env,
                              Op.CopyDst.BufferIndex.evaluate(Env));
    int64_t Count = SrcMap.shape().numElements();
    if (Count != DstMap.shape().numElements()) {
      fail(formatString("copy size mismatch at runtime (%lld vs %lld)",
                        static_cast<long long>(Count),
                        static_cast<long long>(
                            DstMap.shape().numElements())));
      return;
    }
    for (int64_t I = 0; I < Count; ++I) {
      std::vector<int64_t> SrcIdx =
          SrcMap.mapToParent(SrcMap.shape().delinearize(I));
      std::vector<int64_t> DstIdx =
          DstMap.mapToParent(DstMap.shape().delinearize(I));
      Dst.set(DstIdx, Src.at(SrcIdx));
    }
  }

  void execCall(const Operation &Op, const ScalarEnv &Env) {
    if (!Leaves.has(Op.Callee)) {
      fail(formatString("no functional implementation registered for leaf "
                        "%s",
                        Op.Callee.c_str()));
      return;
    }
    std::vector<TensorView> Views;
    for (const TensorSlice &Slice : Op.Args) {
      SubTensor Map = Module.resolveSlice(Slice, Env);
      TensorData &Data =
          storage(Slice.Tensor, Env, Slice.BufferIndex.evaluate(Env));
      Views.emplace_back(Data, std::move(Map));
    }
    std::vector<int64_t> Scalars;
    for (const ScalarExpr &Expr : Op.ScalarArgs)
      Scalars.push_back(Expr.evaluate(Env));
    Leaves.lookup(Op.Callee)(Views, Scalars);
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  const IRModule &Module;
  const LeafRegistry &Leaves;
  const std::vector<TensorData *> &EntryBuffers;
  std::map<TensorId, std::vector<EventDim>> AllocContext;
  std::map<std::pair<TensorId, std::vector<int64_t>>,
           std::vector<TensorData>>
      Storage;
  std::optional<Diagnostic> Failure;
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

ErrorOr<SimResult> cypress::simulate(const IRModule &Module,
                                     const SharedAllocation &Alloc,
                                     const SimConfig &Config,
                                     const LeafRegistry &Leaves,
                                     const std::vector<TensorData *> &EntryBuffers) {
  SimResult Total;
  bool FoundGrid = false;

  for (const std::unique_ptr<Operation> &Op : Module.root().Ops) {
    if (Op->Kind != OpKind::PFor || Op->PForProc != Processor::Block)
      continue;
    FoundGrid = true;
    ScalarEnv Env;
    Env.ProcIndices[Processor::Block] = 0;
    int64_t Blocks = Op->LoopHi.evaluate(Env) - Op->LoopLo.evaluate(Env);

    BlockTimer Timer(Module, Alloc, Config, *Op);
    ErrorOr<SimResult> BlockResult = Timer.run();
    if (!BlockResult)
      return BlockResult.diagnostic();

    int64_t Waves = ceilDiv(Blocks, Config.NumSMs);
    double Cycles =
        BlockResult->BlockCycles * static_cast<double>(Waves) +
        Config.BlockOverhead;
    double Seconds = Cycles / (Config.ClockGHz * 1e9);

    Total.BlockCycles += BlockResult->BlockCycles;
    Total.TotalSeconds += Seconds;
    Total.TotalFlops +=
        BlockResult->TotalFlops * static_cast<double>(Blocks);
    Total.Blocks += Blocks;
    Total.Waves += Waves;
    Total.TmaBusyCycles += BlockResult->TmaBusyCycles;
    Total.TensorCoreBusyCycles += BlockResult->TensorCoreBusyCycles;
    for (std::string &Race : BlockResult->Races)
      Total.Races.push_back(std::move(Race));
  }

  if (!FoundGrid)
    return Diagnostic("module has no block-level parallel loop to simulate");

  // DRAM floor: every kernel argument crosses the pins at least once.
  double Compulsory = 0;
  for (TensorId Id : Module.entryArgs())
    Compulsory += static_cast<double>(Module.tensor(Id).Type.sizeBytes());
  Total.TotalSeconds =
      std::max(Total.TotalSeconds, Compulsory / Config.DramBytesPerSec);

  if (Total.TotalSeconds > 0)
    Total.TFlops = Total.TotalFlops / Total.TotalSeconds / 1e12;

  if (!EntryBuffers.empty()) {
    FunctionalExec Exec(Module, Leaves, EntryBuffers);
    if (ErrorOrVoid Err = Exec.run(); !Err)
      return Err.diagnostic();
    Total.FunctionalRan = true;
  }
  return Total;
}
