//===- Simulator.h - Discrete-event Hopper SM simulator --------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated H100 substrate (see docs/DESIGN.md, substitution table). The
/// simulator consumes the compiler's final IR and executes it two ways:
///
///  * Timing: a discrete-event model of one SM's block schedule — a DMA
///    warp agent plus compute-warpgroup agents, a TMA engine with latency
///    and bandwidth, a Tensor Core with issue latency and throughput,
///    mbarrier-equivalent event completion tracking (with pipeline phase
///    lags), and barrier costs for broadcast synchronization. Blocks are
///    homogeneous, so one block is simulated and scaled by wave count, with
///    a DRAM-bandwidth floor for compulsory traffic.
///
///  * Functional: sequential execution of all block instances on host
///    TensorData buffers, validating that generated data movement and leaf
///    calls compute the right answer (mapping decisions must not change
///    results — the paper's correctness guarantee).
///
/// A write-after-read race detector checks that aliased shared-memory
/// buffers are never overwritten while a reader is still in flight.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SIM_SIMULATOR_H
#define CYPRESS_SIM_SIMULATOR_H

#include "compiler/Passes.h"
#include "ir/IR.h"
#include "sim/LeafRegistry.h"
#include "tensor/TensorData.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace cypress {

/// Abstract worker pool the timing simulator can shard one kernel's
/// op-instance expansion and event-table initialization across.
/// CompilerSession implements it on its persistent worker pool, so the
/// same threads that compile a batch can split a single large
/// simulation. Sharding is deterministic: results are bit-identical for
/// any parallelism (including 1) because shards cover contiguous ranges
/// of the sequential expansion order and are merged in order.
class SimWorkerPool {
public:
  virtual ~SimWorkerPool() = default;
  /// Number of workers parallelFor may use (>= 1).
  virtual size_t parallelism() const = 0;
  /// Runs Fn(0), ..., Fn(Items - 1) across the workers and returns once
  /// every item has finished. Items may run in any order on any thread;
  /// callers own any cross-item ordering (the simulator gives each item
  /// a private output buffer and merges afterwards).
  virtual void parallelFor(size_t Items,
                           const std::function<void(size_t)> &Fn) = 0;
};

/// Timing constants of the simulated H100. Defaults are derived from the
/// Hopper whitepaper/datasheet ratios; only relative magnitudes matter for
/// reproducing the paper's figures (see docs/DESIGN.md).
struct SimConfig {
  double ClockGHz = 1.755;
  /// Dense FP16 Tensor Core throughput per SM (FLOP per cycle):
  /// 989 TFLOP/s / (132 SMs * 1.755 GHz).
  double TensorCoreFlopsPerCycle = 4269.0;
  /// TMA transfer bandwidth per SM (bytes per cycle), an L2-side share.
  double TmaBytesPerCycle = 52.0;
  /// SIMT-issued global copies (no TMA — the Triton default path;
  /// cp.async through the LSU achieves slightly less than the TMA).
  double SimtGlobalBytesPerCycle = 46.0;
  /// SIMT shared/register traffic per warpgroup (bytes per cycle).
  double SimtLocalBytesPerCycle = 256.0;
  /// SIMT FP32 math throughput per warpgroup (FLOP per cycle):
  /// 128 FP32 lanes per SM quadrant.
  double SimtFlopsPerCycle = 256.0;
  /// Global-memory access latency (cycles) for the first byte.
  double GlobalLatency = 650.0;
  /// Tensor Core issue + drain latency per call (cycles).
  double TensorCoreLatency = 40.0;
  /// SIMT instruction issue overhead per op (cycles).
  double SimtLatency = 12.0;
  /// Cost of a block-scope barrier / mbarrier wait (cycles).
  double BarrierLatency = 30.0;
  /// Device DRAM bandwidth (bytes per second) — the compulsory-traffic
  /// floor across the whole kernel.
  double DramBytesPerSec = 3.35e12;
  int64_t NumSMs = 132;
  /// Per-block kernel launch/drain overhead (cycles).
  double BlockOverhead = 1500.0;
};

/// Outcome of one simulated kernel execution.
struct SimResult {
  double BlockCycles = 0.0;  ///< Steady-state cycles of one block.
  double TotalSeconds = 0.0; ///< Whole-kernel wall time.
  double TotalFlops = 0.0;   ///< Useful FLOPs (from leaf annotations).
  double TFlops = 0.0;       ///< TotalFlops / TotalSeconds / 1e12.
  int64_t Blocks = 0;
  int64_t Waves = 0;
  double TmaBusyCycles = 0.0; ///< Per-block TMA engine occupancy.
  double TensorCoreBusyCycles = 0.0;
  std::vector<std::string> Races; ///< Detected shared-memory hazards.
  bool FunctionalRan = false;
};

/// Pre-sizing hints for the simulator's per-run tables, typically taken
/// from the PipelineStats of the compile that produced the module (see
/// CompiledKernel::runTiming). Optional: the simulator's pooled scratch
/// reaches steady-state capacity after the first run either way.
struct SimHints {
  size_t NumOps = 0;
  size_t NumEvents = 0;
};

/// Simulates \p Module. When \p EntryBuffers is non-empty (one TensorData
/// per entry argument, matching shapes) the functional executor also runs,
/// producing real results in those buffers. Timing always runs. The buffer
/// list is only read for the duration of the call.
///
/// Thread-safe for concurrent calls on shared immutable inputs: all timing
/// state lives in a per-thread pooled scratch, so the autotuner may time
/// many kernels from its worker pool at once.
///
/// When \p Pool is non-null, the timing simulator shards a single
/// kernel's op-instance expansion and completion-table initialization
/// across it (see SimWorkerPool); results are bit-identical to the
/// sequential path. Do not pass a pool whose workers are what is calling
/// simulate (e.g. from inside CompilerSession::compileAll's PostCompile
/// hook): nested submission would deadlock on the pool's batch lock.
///
/// When \p Cancel is active, the shard-expansion and event-relaxation
/// loops poll it (strided, so the steady-state hot path stays
/// allocation-free and branch-cheap) and the run exits with the
/// checkpoint's structured Code::DeadlineExceeded / Code::Cancelled
/// diagnostic instead of a partial SimResult. A nullptr Cancel changes
/// nothing — the bit-identical parity contract is unaffected.
ErrorOr<SimResult> simulate(const IRModule &Module,
                            const SharedAllocation &Alloc,
                            const SimConfig &Config,
                            const LeafRegistry &Leaves,
                            const std::vector<TensorData *> &EntryBuffers = {},
                            const SimHints *Hints = nullptr,
                            SimWorkerPool *Pool = nullptr,
                            const Cancellation *Cancel = nullptr);

} // namespace cypress

#endif // CYPRESS_SIM_SIMULATOR_H
