//===- Partition.h - Tensor partitioning operators ------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two partitioning operators of Section 3.2:
///
///  * `blocks`: tiling-based rectangular partition.
///  * `mma`: the architecture-mandated partition of Tensor Core operands.
///    For the accumulator (operand "C") this is the register swizzle of
///    Figure 4: rows split in groups of 16 across the four warps of a
///    warpgroup, columns swizzled across the 32 lanes of each warp in the
///    PTX m64nNk16 accumulator pattern, repeated every 8 rows / 8 columns.
///    For shared-memory operands ("A"/"B") every piece aliases the whole
///    tile, because all 128 threads collectively reference the tile when
///    issuing WGMMA.
///
/// Sub-tensors have compacted, origin-based coordinate systems and need not
/// be contiguous in the parent.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_TENSOR_PARTITION_H
#define CYPRESS_TENSOR_PARTITION_H

#include "support/Error.h"
#include "tensor/Shape.h"

#include <functional>
#include <memory>
#include <vector>

namespace cypress {

enum class PartitionKind : uint8_t {
  Blocks,
  Mma,
};

const char *partitionKindName(PartitionKind Kind);

/// Which operand of the MMA an mma-partition describes.
enum class MmaOperand : uint8_t {
  A, ///< Left operand (shared memory or registers).
  B, ///< Right operand (shared memory).
  C, ///< Accumulator (register file, Figure 4 swizzle).
};

const char *mmaOperandName(MmaOperand Operand);

/// Shape of one warpgroup MMA instruction, e.g. WGMMA_64x256x16.
struct MmaInstruction {
  int64_t M;
  int64_t N;
  int64_t K;

  static MmaInstruction wgmma64xNx16(int64_t N) { return {64, N, 16}; }

  std::string toString() const;
};

/// At which processor granularity an mma partition splits its operand.
/// The paper's `partition_by_mma(C, WGMMA, PROC, "C")` takes the target
/// processor as a tunable; only Warp and Thread splits exist on Hopper.
enum class MmaGranularity : uint8_t {
  Warp,   ///< 4 pieces: each warp's 16-row slice of the accumulator.
  Thread, ///< 32 pieces per warp: each lane's swizzled fragment.
};

/// One piece of a partition: a mapping from a compacted, origin-based
/// sub-tensor coordinate system into parent coordinates.
class SubTensor {
public:
  /// Rectangular piece: sub index + Offset = parent index.
  static SubTensor rect(Shape SubShape, std::vector<int64_t> Offset);

  /// Piece aliasing the entire parent (used for shared MMA operands).
  static SubTensor whole(Shape ParentShape);

  /// Swizzled accumulator fragment for one lane of one warp
  /// (MmaGranularity::Thread) of an m64nN accumulator.
  static SubTensor mmaAccumLane(const MmaInstruction &Instr, int64_t WarpIndex,
                                int64_t LaneIndex);

  /// A warp's 16-row slice of an m64nN accumulator (MmaGranularity::Warp).
  static SubTensor mmaAccumWarp(const MmaInstruction &Instr,
                                int64_t WarpIndex);

  /// Composes two mappings: \p Inner selects within \p Outer's coordinate
  /// system; the result maps Inner coordinates to Outer's parent.
  static SubTensor compose(const SubTensor &Outer, const SubTensor &Inner);

  const Shape &shape() const { return SubShape; }
  bool isRect() const {
    return (Kind == MapKind::Rect || Kind == MapKind::Whole) &&
           (!Parent || Parent->isRect());
  }
  bool isWhole() const { return Kind == MapKind::Whole && !Parent; }

  /// Parent coordinates of sub-tensor element \p SubIndex, following the
  /// full composition chain to the root.
  std::vector<int64_t> mapToParent(const std::vector<int64_t> &SubIndex) const;

  /// Visits every (subLinear, parentIndex) pair. The callback receives the
  /// linearized sub index (row-major over shape()) and the parent coords.
  void forEachElement(
      const Shape &ParentShape,
      const std::function<void(int64_t, const std::vector<int64_t> &)> &Fn)
      const;

private:
  /// Maps a sub index one level up (ignoring the composition chain).
  std::vector<int64_t>
  mapToLocalParent(const std::vector<int64_t> &SubIndex) const;

private:
  enum class MapKind : uint8_t { Rect, Whole, MmaLane, MmaWarp };

  MapKind Kind = MapKind::Rect;
  Shape SubShape;
  std::vector<int64_t> Offset; // Rect only.
  MmaInstruction Instr{0, 0, 0};
  int64_t WarpIndex = 0;
  int64_t LaneIndex = 0;
  /// Composition chain: when set, this mapping's outputs are coordinates in
  /// Parent's system and are mapped once more through Parent.
  std::shared_ptr<const SubTensor> Parent;
};

/// A partition of a tensor into SubTensor pieces.
///
/// Pieces are indexed by a (possibly multi-dimensional) color space; blocks
/// partitions have a grid color space, mma partitions a linear one.
class Partition {
public:
  /// Tiling partition of \p Parent into tiles of \p TileShape (Figure 5a's
  /// partition_by_blocks). Edge tiles are clamped to the parent bounds.
  static ErrorOr<Partition> byBlocks(const Shape &Parent,
                                     const Shape &TileShape);

  /// MMA partition of \p Parent for \p Operand of \p Instr at \p Granularity
  /// (Figure 5a's partition_by_mma).
  static ErrorOr<Partition> byMma(const Shape &Parent,
                                  const MmaInstruction &Instr,
                                  MmaGranularity Granularity,
                                  MmaOperand Operand);

  PartitionKind kind() const { return Kind; }
  const Shape &parentShape() const { return Parent; }
  const Shape &tileShape() const {
    assert(Kind == PartitionKind::Blocks && "not a blocks partition");
    return TileShape;
  }
  const MmaInstruction &mmaInstr() const {
    assert(Kind == PartitionKind::Mma && "not an mma partition");
    return Instr;
  }
  MmaGranularity granularity() const { return Granularity; }
  MmaOperand operand() const { return Operand; }

  /// Structural equality of partition specifications (same decomposition of
  /// the same parent shape).
  bool equals(const Partition &Other) const;

  /// The color (index) space of the partition.
  const Shape &colorSpace() const { return Colors; }
  int64_t numPieces() const { return Colors.numElements(); }

  /// The piece at multi-dimensional color \p Color.
  SubTensor piece(const std::vector<int64_t> &Color) const;
  /// piece(Color).shape().numElements() without materializing the piece —
  /// the verifier checks element counts after every pass, so this must not
  /// allocate. \p Color points at rank() color coordinates.
  int64_t pieceNumElements(const int64_t *Color, size_t Rank) const;
  /// The piece at linearized color \p LinearColor.
  SubTensor piece(int64_t LinearColor) const {
    return piece(Colors.delinearize(LinearColor));
  }

  /// True if distinct pieces never overlap (writable partition). MMA operand
  /// partitions for A/B alias the whole tile and are therefore read-only.
  bool isDisjoint() const;

private:
  PartitionKind Kind = PartitionKind::Blocks;
  Shape Parent;
  Shape Colors;
  // Blocks parameters.
  Shape TileShape;
  // Mma parameters.
  MmaInstruction Instr{0, 0, 0};
  MmaGranularity Granularity = MmaGranularity::Thread;
  MmaOperand Operand = MmaOperand::C;
};

} // namespace cypress

#endif // CYPRESS_TENSOR_PARTITION_H
