//===- Shape.h - Tensor shapes and element types --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-dimensional shapes and element types for Cypress's first-class
/// tensors (Section 3.2). Shapes are dense and row-major throughout; layout
/// control (Section 3.3) is modeled at the allocation level.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_TENSOR_SHAPE_H
#define CYPRESS_TENSOR_SHAPE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace cypress {

/// Element types usable in tensors. FP16 is stored as FP32 host values that
/// are quantized through binary16 on every store (see support/Fp16.h).
enum class ElementType : uint8_t {
  F16,
  F32,
};

inline const char *elementTypeName(ElementType Type) {
  return Type == ElementType::F16 ? "f16" : "f32";
}

inline int64_t elementTypeBytes(ElementType Type) {
  return Type == ElementType::F16 ? 2 : 4;
}

/// A dense, row-major tensor shape.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> Dims) : Dims(Dims) { checkDims(); }
  explicit Shape(std::vector<int64_t> Dims) : Dims(std::move(Dims)) {
    checkDims();
  }

  unsigned rank() const { return Dims.size(); }
  int64_t dim(unsigned I) const {
    assert(I < Dims.size() && "shape dimension out of range");
    return Dims[I];
  }
  const std::vector<int64_t> &dims() const { return Dims; }

  int64_t numElements() const {
    int64_t Count = 1;
    for (int64_t D : Dims)
      Count *= D;
    return Count;
  }

  /// Row-major linear offset of \p Index.
  int64_t linearize(const std::vector<int64_t> &Index) const {
    assert(Index.size() == Dims.size() && "index rank mismatch");
    int64_t Offset = 0;
    for (unsigned I = 0, E = Dims.size(); I != E; ++I) {
      assert(Index[I] >= 0 && Index[I] < Dims[I] && "index out of bounds");
      Offset = Offset * Dims[I] + Index[I];
    }
    return Offset;
  }

  /// Inverse of linearize.
  std::vector<int64_t> delinearize(int64_t Offset) const {
    std::vector<int64_t> Index(Dims.size(), 0);
    for (unsigned I = Dims.size(); I-- > 0;) {
      Index[I] = Offset % Dims[I];
      Offset /= Dims[I];
    }
    return Index;
  }

  bool operator==(const Shape &Other) const { return Dims == Other.Dims; }
  bool operator!=(const Shape &Other) const { return !(*this == Other); }

  std::string toString() const {
    std::string Result = "[";
    for (unsigned I = 0, E = Dims.size(); I != E; ++I) {
      if (I != 0)
        Result += ", ";
      Result += std::to_string(Dims[I]);
    }
    return Result + "]";
  }

private:
  void checkDims() const {
    for ([[maybe_unused]] int64_t D : Dims)
      assert(D > 0 && "shape dimensions must be positive");
  }

  std::vector<int64_t> Dims;
};

/// A logical tensor type: shape plus element type.
struct TensorType {
  Shape Dims;
  ElementType Element = ElementType::F16;

  int64_t sizeBytes() const {
    return Dims.numElements() * elementTypeBytes(Element);
  }

  bool operator==(const TensorType &Other) const {
    return Dims == Other.Dims && Element == Other.Element;
  }

  std::string toString() const {
    return std::string(elementTypeName(Element)) + Dims.toString();
  }
};

} // namespace cypress

#endif // CYPRESS_TENSOR_SHAPE_H
