//===- TensorData.h - Dense host tensor storage ---------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense host-side tensor storage used by the functional simulator and the
/// reference implementations. FP16 tensors store FP32 values quantized
/// through binary16 on every write, matching the Tensor Core FP16 data path.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_TENSOR_TENSORDATA_H
#define CYPRESS_TENSOR_TENSORDATA_H

#include "support/Fp16.h"
#include "tensor/Shape.h"

#include <vector>

namespace cypress {

/// A dense, row-major host tensor.
class TensorData {
public:
  TensorData() = default;
  explicit TensorData(TensorType Type)
      : Type(std::move(Type)),
        Values(static_cast<size_t>(this->Type.Dims.numElements()), 0.0f) {}

  const TensorType &type() const { return Type; }
  const Shape &shape() const { return Type.Dims; }
  ElementType elementType() const { return Type.Element; }
  int64_t numElements() const { return Type.Dims.numElements(); }

  float at(int64_t LinearIndex) const {
    return Values[static_cast<size_t>(LinearIndex)];
  }
  float at(const std::vector<int64_t> &Index) const {
    return Values[static_cast<size_t>(Type.Dims.linearize(Index))];
  }

  /// Stores \p Value, quantizing through FP16 when the element type is F16.
  void set(int64_t LinearIndex, float Value) {
    if (Type.Element == ElementType::F16)
      Value = quantizeFp16(Value);
    Values[static_cast<size_t>(LinearIndex)] = Value;
  }
  void set(const std::vector<int64_t> &Index, float Value) {
    set(Type.Dims.linearize(Index), Value);
  }

  /// Raw storage access for bulk operations (values are already quantized).
  const std::vector<float> &raw() const { return Values; }
  std::vector<float> &raw() { return Values; }

  void fill(float Value) {
    if (Type.Element == ElementType::F16)
      Value = quantizeFp16(Value);
    for (float &V : Values)
      V = Value;
  }

  /// Maximum absolute element-wise difference against \p Other.
  /// Shapes must match.
  double maxAbsDiff(const TensorData &Other) const;

private:
  TensorType Type;
  std::vector<float> Values;
};

} // namespace cypress

#endif // CYPRESS_TENSOR_TENSORDATA_H
