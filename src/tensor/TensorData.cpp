//===- TensorData.cpp - Dense host tensor storage --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tensor/TensorData.h"

#include <cassert>
#include <cmath>

using namespace cypress;

double TensorData::maxAbsDiff(const TensorData &Other) const {
  assert(shape() == Other.shape() && "shape mismatch in maxAbsDiff");
  double Max = 0.0;
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    double Diff = std::fabs(static_cast<double>(Values[I]) -
                            static_cast<double>(Other.Values[I]));
    if (Diff > Max)
      Max = Diff;
  }
  return Max;
}
