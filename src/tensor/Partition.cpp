//===- Partition.cpp - Tensor partitioning operators -----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tensor/Partition.h"

#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>

using namespace cypress;

const char *cypress::partitionKindName(PartitionKind Kind) {
  switch (Kind) {
  case PartitionKind::Blocks:
    return "blocks";
  case PartitionKind::Mma:
    return "mma";
  }
  cypressUnreachable("unknown partition kind");
}

const char *cypress::mmaOperandName(MmaOperand Operand) {
  switch (Operand) {
  case MmaOperand::A:
    return "A";
  case MmaOperand::B:
    return "B";
  case MmaOperand::C:
    return "C";
  }
  cypressUnreachable("unknown mma operand");
}

std::string MmaInstruction::toString() const {
  return formatString("WGMMA_%lldx%lldx%lld", static_cast<long long>(M),
                      static_cast<long long>(N), static_cast<long long>(K));
}

//===----------------------------------------------------------------------===//
// SubTensor
//===----------------------------------------------------------------------===//

SubTensor SubTensor::rect(Shape SubShape, std::vector<int64_t> Offset) {
  assert(SubShape.rank() == Offset.size() && "offset rank mismatch");
  SubTensor Result;
  Result.Kind = MapKind::Rect;
  Result.SubShape = std::move(SubShape);
  Result.Offset = std::move(Offset);
  return Result;
}

SubTensor SubTensor::whole(Shape ParentShape) {
  SubTensor Result;
  Result.Kind = MapKind::Whole;
  Result.SubShape = ParentShape;
  Result.Offset.assign(ParentShape.rank(), 0);
  return Result;
}

SubTensor SubTensor::mmaAccumLane(const MmaInstruction &Instr,
                                  int64_t WarpIndex, int64_t LaneIndex) {
  assert(WarpIndex >= 0 && WarpIndex < 4 && "warp index out of range");
  assert(LaneIndex >= 0 && LaneIndex < 32 && "lane index out of range");
  assert(Instr.M == 64 && "accumulator swizzle modeled for m64 WGMMA only");
  assert(Instr.N % 8 == 0 && "WGMMA N must be a multiple of 8");
  SubTensor Result;
  Result.Kind = MapKind::MmaLane;
  // Each lane holds 2 rows x (N/8 column groups x 2 elements) = shape
  // [2, N/4] in a compacted coordinate system.
  Result.SubShape = Shape({2, Instr.N / 4});
  Result.Instr = Instr;
  Result.WarpIndex = WarpIndex;
  Result.LaneIndex = LaneIndex;
  return Result;
}

SubTensor SubTensor::mmaAccumWarp(const MmaInstruction &Instr,
                                  int64_t WarpIndex) {
  assert(WarpIndex >= 0 && WarpIndex < 4 && "warp index out of range");
  assert(Instr.M == 64 && "accumulator swizzle modeled for m64 WGMMA only");
  SubTensor Result;
  Result.Kind = MapKind::MmaWarp;
  Result.SubShape = Shape({16, Instr.N});
  Result.Instr = Instr;
  Result.WarpIndex = WarpIndex;
  return Result;
}

SubTensor SubTensor::compose(const SubTensor &Outer, const SubTensor &Inner) {
  if (Outer.isWhole())
    return Inner;
  if (Inner.Kind == MapKind::Whole && !Inner.Parent) {
    // Whole-of-outer is just outer, provided the shapes agree.
    assert(Inner.SubShape == Outer.SubShape &&
           "whole-slice composition with mismatched shapes");
    return Outer;
  }
  SubTensor Result = Inner;
  // Chain: Result maps into Inner's parent space, which is Outer's sub
  // space; attach Outer (itself possibly chained) as the continuation.
  if (Result.Parent) {
    SubTensor Mid = compose(Outer, *Result.Parent);
    Result.Parent = std::make_shared<const SubTensor>(std::move(Mid));
  } else {
    Result.Parent = std::make_shared<const SubTensor>(Outer);
  }
  return Result;
}

std::vector<int64_t>
SubTensor::mapToParent(const std::vector<int64_t> &SubIndex) const {
  std::vector<int64_t> Local = mapToLocalParent(SubIndex);
  if (Parent)
    return Parent->mapToParent(Local);
  return Local;
}

std::vector<int64_t>
SubTensor::mapToLocalParent(const std::vector<int64_t> &SubIndex) const {
  assert(SubIndex.size() == SubShape.rank() && "sub index rank mismatch");
  switch (Kind) {
  case MapKind::Rect:
  case MapKind::Whole: {
    std::vector<int64_t> Parent(SubIndex.size());
    for (unsigned I = 0, E = SubIndex.size(); I != E; ++I)
      Parent[I] = SubIndex[I] + Offset[I];
    return Parent;
  }
  case MapKind::MmaWarp: {
    // Warp w owns rows [16w, 16w + 16) of the m64 accumulator (Figure 4
    // row coloring); columns are not swizzled at warp granularity.
    return {SubIndex[0] + 16 * WarpIndex, SubIndex[1]};
  }
  case MapKind::MmaLane: {
    // PTX m64nNk16 accumulator fragment layout. Within warp w, lane l holds,
    // for every 8-column group g and row-half h in {0, 1}:
    //   row = 16w + 8h + l / 4
    //   col = 8g + 2 * (l % 4) + e      for e in {0, 1}
    // The compacted fragment is indexed [h][g * 2 + e'] where the flattened
    // column coordinate walks column groups then element pairs.
    int64_t H = SubIndex[0];
    int64_t Flat = SubIndex[1];
    int64_t Group = Flat / 2;
    int64_t Elem = Flat % 2;
    int64_t Row = 16 * WarpIndex + 8 * H + LaneIndex / 4;
    int64_t Col = 8 * Group + 2 * (LaneIndex % 4) + Elem;
    return {Row, Col};
  }
  }
  cypressUnreachable("unknown sub-tensor map kind");
}

void SubTensor::forEachElement(
    const Shape &ParentShape,
    const std::function<void(int64_t, const std::vector<int64_t> &)> &Fn)
    const {
  int64_t Count = SubShape.numElements();
  for (int64_t Linear = 0; Linear != Count; ++Linear) {
    std::vector<int64_t> SubIndex = SubShape.delinearize(Linear);
    std::vector<int64_t> ParentIndex = mapToParent(SubIndex);
    // Clamped edge tiles never reach here (shape already clamped); guard in
    // debug builds anyway.
#ifndef NDEBUG
    for (unsigned I = 0, E = ParentIndex.size(); I != E; ++I)
      assert(ParentIndex[I] >= 0 && ParentIndex[I] < ParentShape.dim(I) &&
             "sub-tensor element maps outside parent");
#else
    (void)ParentShape;
#endif
    Fn(Linear, ParentIndex);
  }
}

//===----------------------------------------------------------------------===//
// Partition
//===----------------------------------------------------------------------===//

ErrorOr<Partition> Partition::byBlocks(const Shape &Parent,
                                       const Shape &TileShape) {
  if (Parent.rank() != TileShape.rank())
    return Diagnostic(formatString(
        "blocks partition rank mismatch: parent %s vs tile %s",
        Parent.toString().c_str(), TileShape.toString().c_str()));
  Partition Result;
  Result.Kind = PartitionKind::Blocks;
  Result.Parent = Parent;
  Result.TileShape = TileShape;
  std::vector<int64_t> ColorDims(Parent.rank());
  for (unsigned I = 0, E = Parent.rank(); I != E; ++I)
    ColorDims[I] = ceilDiv(Parent.dim(I), TileShape.dim(I));
  Result.Colors = Shape(std::move(ColorDims));
  return Result;
}

ErrorOr<Partition> Partition::byMma(const Shape &Parent,
                                    const MmaInstruction &Instr,
                                    MmaGranularity Granularity,
                                    MmaOperand Operand) {
  if (Parent.rank() != 2)
    return Diagnostic("mma partition requires a rank-2 tensor");
  if (Operand == MmaOperand::C) {
    if (Parent.dim(0) != Instr.M || Parent.dim(1) != Instr.N)
      return Diagnostic(formatString(
          "mma accumulator partition shape mismatch: tensor %s vs %s",
          Parent.toString().c_str(), Instr.toString().c_str()));
  }
  Partition Result;
  Result.Kind = PartitionKind::Mma;
  Result.Parent = Parent;
  Result.Instr = Instr;
  Result.Granularity = Granularity;
  Result.Operand = Operand;
  int64_t Pieces =
      Granularity == MmaGranularity::Warp ? 4 : 32; // Per enclosing level.
  Result.Colors = Shape({Pieces});
  return Result;
}

int64_t Partition::pieceNumElements(const int64_t *Color,
                                    size_t Rank) const {
  assert(Rank == Colors.rank() && "color rank mismatch");
  (void)Rank;
  switch (Kind) {
  case PartitionKind::Blocks: {
    int64_t Count = 1;
    for (unsigned I = 0, E = Parent.rank(); I != E; ++I)
      Count *= std::min(TileShape.dim(I),
                        Parent.dim(I) - Color[I] * TileShape.dim(I));
    return Count;
  }
  case PartitionKind::Mma:
    if (Operand != MmaOperand::C)
      return Parent.numElements(); // Pieces alias the whole tile.
    if (Granularity == MmaGranularity::Warp)
      return 16 * Instr.N; // A warp's 16-row slice of the accumulator.
    return 2 * (Instr.N / 4); // One lane's swizzled fragment.
  }
  cypressUnreachable("unknown partition kind");
}

SubTensor Partition::piece(const std::vector<int64_t> &Color) const {
  assert(Color.size() == Colors.rank() && "color rank mismatch");
#ifndef NDEBUG
  for (unsigned I = 0, E = Color.size(); I != E; ++I)
    assert(Color[I] >= 0 && Color[I] < Colors.dim(I) &&
           "partition color out of range");
#endif
  switch (Kind) {
  case PartitionKind::Blocks: {
    std::vector<int64_t> Offset(Parent.rank());
    std::vector<int64_t> Extent(Parent.rank());
    for (unsigned I = 0, E = Parent.rank(); I != E; ++I) {
      Offset[I] = Color[I] * TileShape.dim(I);
      Extent[I] = std::min(TileShape.dim(I), Parent.dim(I) - Offset[I]);
    }
    return SubTensor::rect(Shape(std::move(Extent)), std::move(Offset));
  }
  case PartitionKind::Mma: {
    int64_t Index = Color[0];
    if (Operand != MmaOperand::C) {
      // Shared-memory operands are referenced in full by every thread of the
      // warpgroup when WGMMA is issued; each piece aliases the whole tile.
      return SubTensor::whole(Parent);
    }
    if (Granularity == MmaGranularity::Warp)
      return SubTensor::mmaAccumWarp(Instr, Index);
    // Thread granularity partitions the enclosing warp's 16-row slice; the
    // parent here is the warp-level sub-tensor re-based at origin, so warp
    // index 0 with the true lane index gives the correct swizzle inside it.
    if (Parent.dim(0) == 16) {
      SubTensor Lane = SubTensor::mmaAccumLane(
          {64, Instr.N, Instr.K}, /*WarpIndex=*/0, /*LaneIndex=*/Index);
      return Lane;
    }
    return SubTensor::mmaAccumLane(Instr, /*WarpIndex=*/0,
                                   /*LaneIndex=*/Index);
  }
  }
  cypressUnreachable("unknown partition kind");
}

bool Partition::isDisjoint() const {
  if (Kind == PartitionKind::Blocks)
    return true;
  return Operand == MmaOperand::C;
}

bool Partition::equals(const Partition &Other) const {
  if (Kind != Other.Kind || Parent != Other.Parent)
    return false;
  if (Kind == PartitionKind::Blocks)
    return TileShape == Other.TileShape;
  return Instr.M == Other.Instr.M && Instr.N == Other.Instr.N &&
         Instr.K == Other.Instr.K && Granularity == Other.Granularity &&
         Operand == Other.Operand;
}
