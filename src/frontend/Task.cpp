//===- Task.cpp - Logical description: tasks, variants, privileges ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "frontend/Task.h"

#include <atomic>

using namespace cypress;

const char *cypress::privilegeName(Privilege P) {
  switch (P) {
  case Privilege::Read:
    return "read";
  case Privilege::Write:
    return "write";
  case Privilege::ReadWrite:
    return "read-write";
  }
  cypressUnreachable("unknown privilege");
}

InnerContext::~InnerContext() = default;

uint64_t TaskRegistry::nextUid() {
  static std::atomic<uint64_t> Counter{1};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

void TaskRegistry::addInner(std::string Task, std::string Variant,
                            std::vector<TaskParam> Params, InnerBody Body) {
  assert(!hasVariant(Variant) && "variant name already registered");
  TaskVariant V;
  V.Task = std::move(Task);
  V.Variant = Variant;
  V.Kind = VariantKind::Inner;
  V.Params = std::move(Params);
  V.Body = std::move(Body);
  Variants.emplace(std::move(Variant), std::move(V));
}

void TaskRegistry::addLeaf(std::string Task, std::string Variant,
                           std::vector<TaskParam> Params, LeafInfo Leaf) {
  assert(!hasVariant(Variant) && "variant name already registered");
  TaskVariant V;
  V.Task = std::move(Task);
  V.Variant = Variant;
  V.Kind = VariantKind::Leaf;
  V.Params = std::move(Params);
  V.Leaf = std::move(Leaf);
  Variants.emplace(std::move(Variant), std::move(V));
}

const TaskVariant &TaskRegistry::variant(const std::string &Variant) const {
  auto It = Variants.find(Variant);
  assert(It != Variants.end() && "unknown task variant");
  return It->second;
}

std::vector<std::string>
TaskRegistry::variantsOf(const std::string &Task) const {
  std::vector<std::string> Result;
  for (const auto &[Name, V] : Variants)
    if (V.Task == Task)
      Result.push_back(Name);
  return Result;
}
