//===- Task.h - Logical description: tasks, variants, privileges ----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logical-description half of a Cypress program (Section 3.2,
/// Figure 3/5a), embedded in C++. Tasks are named computations with one or
/// more variants. Inner variants decompose work by partitioning tensors and
/// launching sub-tasks through an InnerContext (the analogue of the paper's
/// Python-embedded DSL); they may not touch tensor data. Leaf variants name
/// an external function (resolved by the runtime's leaf registry) plus the
/// execution unit it drives and a FLOP estimate for the cost model.
///
/// Privileges (read / write / read-write) are declared per tensor parameter
/// and drive the dependence analysis; sub-launches may not request
/// privileges the parent lacks.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_FRONTEND_TASK_H
#define CYPRESS_FRONTEND_TASK_H

#include "ir/IR.h"
#include "machine/Machine.h"
#include "tensor/Partition.h"
#include "tensor/Shape.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cypress {

/// Access privilege a task declares on a tensor parameter.
enum class Privilege : uint8_t {
  Read,
  Write,
  ReadWrite,
};

inline bool privilegeReads(Privilege P) { return P != Privilege::Write; }
inline bool privilegeWrites(Privilege P) { return P != Privilege::Read; }
const char *privilegeName(Privilege P);

/// Returns true if a child request \p Child is allowed under parent
/// privilege \p Parent (a reader may not launch writers, Section 3.2).
inline bool privilegeAllows(Privilege Parent, Privilege Child) {
  if (privilegeReads(Child) && !privilegeReads(Parent))
    return false;
  if (privilegeWrites(Child) && !privilegeWrites(Parent))
    return false;
  return true;
}

/// One tensor parameter of a task signature.
struct TaskParam {
  std::string Name;
  unsigned Rank = 2;
  ElementType Element = ElementType::F16;
  Privilege Priv = Privilege::Read;
};

/// Handle to a tensor (or a partition piece) inside an inner task body.
/// Opaque to user code; minted and interpreted by the compiler.
struct TensorHandle {
  uint32_t Index = ~0u;
  bool valid() const { return Index != ~0u; }
};

/// Handle to a partition created inside an inner task body.
struct PartitionHandle {
  uint32_t Index = ~0u;
  bool valid() const { return Index != ~0u; }
};

class InnerContext;

/// Body of an inner task variant: records partitions and sub-task launches
/// against the context. Invoked once per mapped instantiation with symbolic
/// loop indices, so bodies must be deterministic straight-line recorders.
using InnerBody =
    std::function<void(InnerContext &Ctx, std::vector<TensorHandle> Args)>;

/// Description of a leaf variant's external computation.
struct LeafInfo {
  /// Name looked up in the runtime leaf-function registry for functional
  /// execution (the analogue of call-external / CuTe dispatch in Fig. 5a).
  std::string Function;
  /// Which functional unit the call drives (WGMMA leaf tasks occupy the
  /// Tensor Core; everything else issues SIMT work).
  ExecUnit Unit = ExecUnit::SIMT;
  /// FLOPs performed given the argument shapes; used by the cost model and
  /// the TFLOP/s accounting.
  std::function<double(const std::vector<Shape> &)> Flops;
};

/// Task variant kinds (Figure 3).
enum class VariantKind : uint8_t { Inner, Leaf };

/// One variant of a task.
struct TaskVariant {
  std::string Task;    ///< Task name this variant implements.
  std::string Variant; ///< Unique variant name.
  VariantKind Kind = VariantKind::Inner;
  std::vector<TaskParam> Params;
  InnerBody Body;    ///< Inner variants.
  LeafInfo Leaf;     ///< Leaf variants.
};

/// Registry of all task variants of a program.
class TaskRegistry {
public:
  TaskRegistry() : Uid(nextUid()) {}
  /// Copies get a fresh uid: inner bodies are opaque callables, so a copy
  /// cannot be proven behaviorally identical to its source.
  TaskRegistry(const TaskRegistry &Other)
      : Variants(Other.Variants), Uid(nextUid()) {}
  TaskRegistry &operator=(const TaskRegistry &Other) {
    Variants = Other.Variants;
    Uid = nextUid();
    return *this;
  }
  TaskRegistry(TaskRegistry &&) = default;
  TaskRegistry &operator=(TaskRegistry &&) = default;

  /// Registers an inner variant; asserts the variant name is fresh.
  void addInner(std::string Task, std::string Variant,
                std::vector<TaskParam> Params, InnerBody Body);

  /// Registers a leaf variant.
  void addLeaf(std::string Task, std::string Variant,
               std::vector<TaskParam> Params, LeafInfo Leaf);

  bool hasVariant(const std::string &Variant) const {
    return Variants.count(Variant) != 0;
  }
  const TaskVariant &variant(const std::string &Variant) const;

  /// All variants implementing \p Task.
  std::vector<std::string> variantsOf(const std::string &Task) const;

  /// Every registered variant, keyed by variant name. Used by the session
  /// cache to fingerprint a registry's structure.
  const std::map<std::string, TaskVariant> &variants() const {
    return Variants;
  }

  /// Process-unique registry identity (assigned at construction, never
  /// recycled). Inner bodies are opaque std::functions whose content
  /// cannot be fingerprinted, so the session cache keys on this instead of
  /// the object address, which the allocator may reuse.
  uint64_t uid() const { return Uid; }

private:
  static uint64_t nextUid();

  std::map<std::string, TaskVariant> Variants;
  uint64_t Uid;
};

/// The recording interface available to inner task bodies. Implemented by
/// the compiler's dependence analysis (Section 4.2.1), which interprets the
/// task tree while building IR.
class InnerContext {
public:
  virtual ~InnerContext();

  //===--- Introspection -------------------------------------------------===//

  /// Concrete shape of a tensor argument (shapes are static per kernel
  /// instantiation; the paper reads them via `C.shape[i]`).
  virtual const Shape &shapeOf(TensorHandle Handle) = 0;

  /// Integer tunable bound by the mapping for this task instance.
  virtual int64_t tunable(const std::string &Name) = 0;

  /// Processor-valued tunable (the paper's `tunable(processor)`).
  virtual Processor tunableProc(const std::string &Name) = 0;

  /// Scalar arguments this task instance was launched with (forwarded to
  /// sub-launches explicitly; e.g. the softmax scale threading through the
  /// attention task tree).
  virtual const std::vector<ScalarExpr> &scalarArgs() = 0;

  //===--- Data decomposition --------------------------------------------===//

  /// Fresh temporary tensor local to this task (the paper's make_tensor).
  virtual TensorHandle makeTensor(const std::string &Name, Shape Dims,
                                  ElementType Element) = 0;

  /// Tiling partition (partition_by_blocks).
  virtual PartitionHandle partitionByBlocks(TensorHandle Tensor,
                                            Shape TileShape) = 0;

  /// Tensor-core partition (partition_by_mma).
  virtual PartitionHandle partitionByMma(TensorHandle Tensor,
                                         MmaInstruction Instr,
                                         Processor Proc,
                                         MmaOperand Operand) = 0;

  /// Selects piece \p Color of a partition (the indexing operator).
  virtual TensorHandle index(PartitionHandle Part,
                             std::vector<ScalarExpr> Color) = 0;

  //===--- Task launches --------------------------------------------------===//

  /// Inline launch of a single sub-task.
  virtual void launch(const std::string &Task,
                      std::vector<TensorHandle> Args,
                      std::vector<ScalarExpr> Scalars = {}) = 0;

  /// Sequential group launch: body invoked once with a symbolic induction
  /// variable ranging over [0, Extent).
  virtual void srange(ScalarExpr Extent,
                      const std::function<void(ScalarExpr)> &Body) = 0;

  /// Parallel group launch over a (possibly multi-dimensional) domain; the
  /// body sees one symbolic index per dimension. Launched tasks must not
  /// perform aliasing writes (sequential semantics are preserved either
  /// way; the compiler checks partition disjointness where it can).
  virtual void prange(std::vector<ScalarExpr> Extents,
                      const std::function<void(std::vector<ScalarExpr>)>
                          &Body) = 0;
};

/// Ceiling-division helper matching the paper's `cdiv`.
inline ScalarExpr cdiv(ScalarExpr Num, int64_t Den) {
  return (Num + ScalarExpr(Den - 1)).floorDiv(ScalarExpr(Den));
}

} // namespace cypress

#endif // CYPRESS_FRONTEND_TASK_H
