//===- Fp16.h - IEEE half-precision emulation -----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software emulation of IEEE binary16. The kernels compute in FP32 but all
/// tensor stores quantize through FP16, matching the Tensor Core FP16 data
/// path (FP16 inputs, FP32 accumulate) used throughout the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_FP16_H
#define CYPRESS_SUPPORT_FP16_H

#include <cstdint>

namespace cypress {

/// Converts an FP32 value to IEEE binary16 bits (round-to-nearest-even).
uint16_t fp32ToFp16Bits(float Value);

/// Converts IEEE binary16 bits back to FP32.
float fp16BitsToFp32(uint16_t Bits);

/// Quantizes an FP32 value through FP16 and back (lossy round trip).
inline float quantizeFp16(float Value) {
  return fp16BitsToFp32(fp32ToFp16Bits(Value));
}

} // namespace cypress

#endif // CYPRESS_SUPPORT_FP16_H
