//===- Random.cpp - Deterministic pseudo-random generation ----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "support/Fp16.h"

namespace cypress {

void fillRandomFp16(std::vector<float> &Buffer, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (float &Value : Buffer)
    Value = quantizeFp16(static_cast<float>(Rng.nextIn(-1.0, 1.0)));
}

} // namespace cypress
