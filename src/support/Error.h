//===- Error.h - Lightweight recoverable error handling ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling utilities in the spirit of llvm::Expected. Library
/// code reports recoverable problems (bad mappings, infeasible allocations)
/// via ErrorOr<T>; programmatic invariants use assert/cypress_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_ERROR_H
#define CYPRESS_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace cypress {

/// Aborts with a message; marks unreachable control flow.
[[noreturn]] inline void cypressUnreachable(const char *Msg) {
  std::fprintf(stderr, "cypress fatal: %s\n", Msg);
  std::abort();
}

/// A recoverable diagnostic with a human-readable message and optional
/// provenance: the compiler pass (and pipeline stage) that produced it.
///
/// Diagnostics compare equal on their message text, which keeps tests simple
/// and deterministic — provenance and the Code are reporting metadata, not
/// identity. Messages follow the "lowercase, no trailing period" convention.
class Diagnostic {
public:
  /// Structured error taxonomy for the serving layer. Callers branch on
  /// this instead of matching message strings: retry policy, cache
  /// eligibility (see CompilerSession), and load-shedding all key off the
  /// Code. Kept deliberately small — a code describes what a caller should
  /// *do* about the error, not where it came from (passName carries that).
  enum class Code : uint8_t {
    Internal,         ///< Unclassified failure; assume nothing, don't retry.
    Infeasible,       ///< The input can never compile (deterministic).
    VerifyFailed,     ///< IR verification failed after a pass.
    DeadlineExceeded, ///< A cooperative deadline checkpoint fired.
    Cancelled,        ///< A CancelToken was observed at a checkpoint.
    Overloaded,       ///< Load-shed: admission queue full or shut down.
  };

  Diagnostic() = default;
  explicit Diagnostic(std::string Message) : Message(std::move(Message)) {}
  Diagnostic(Code C, std::string Message)
      : Message(std::move(Message)), Kind(C) {}

  const std::string &message() const { return Message; }

  Code code() const { return Kind; }
  void setCode(Code C) { Kind = C; }

  /// Deterministic failures are pure functions of the input and may be
  /// memoized (the tuner's cost cache); transient ones (deadline, cancel,
  /// overload, unclassified internal errors) must never be.
  bool isTransient() const {
    return Kind == Code::DeadlineExceeded || Kind == Code::Cancelled ||
           Kind == Code::Overloaded || Kind == Code::Internal;
  }

  /// The pipeline pass the diagnostic was raised in (set by PassPipeline);
  /// empty when the error did not come from a pass.
  const std::string &passName() const { return Pass; }
  void setPass(std::string Name) { Pass = std::move(Name); }

  /// The message with provenance prefixed, e.g.
  /// "[resource-allocation] shared memory allocation exceeds ...".
  std::string str() const {
    return Pass.empty() ? Message : "[" + Pass + "] " + Message;
  }

  bool operator==(const Diagnostic &Other) const {
    return Message == Other.Message;
  }

private:
  std::string Message;
  std::string Pass;
  Code Kind = Code::Internal;
};

/// Either a value of type T or a Diagnostic explaining why none is available.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Diagnostic Diag) : Storage(std::move(Diag)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  const T &operator*() const {
    assert(*this && "accessing value of an error result");
    return std::get<T>(Storage);
  }
  T &operator*() {
    assert(*this && "accessing value of an error result");
    return std::get<T>(Storage);
  }
  const T *operator->() const { return &**this; }
  T *operator->() { return &**this; }

  /// The diagnostic; only valid when the result holds an error.
  const Diagnostic &diagnostic() const {
    assert(!*this && "accessing diagnostic of a success result");
    return std::get<Diagnostic>(Storage);
  }

  /// Moves the value out, aborting if this holds an error. Tool-code helper.
  T take() {
    if (!*this)
      cypressUnreachable(diagnostic().message().c_str());
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Diagnostic> Storage;
};

/// Result of an operation that produces no value.
class ErrorOrVoid {
public:
  ErrorOrVoid() = default;
  ErrorOrVoid(Diagnostic Diag) : Diag(std::move(Diag)) {}

  static ErrorOrVoid success() { return ErrorOrVoid(); }

  explicit operator bool() const { return !Diag.has_value(); }

  const Diagnostic &diagnostic() const {
    assert(Diag && "accessing diagnostic of a success result");
    return *Diag;
  }

private:
  std::optional<Diagnostic> Diag;
};

} // namespace cypress

#endif // CYPRESS_SUPPORT_ERROR_H
