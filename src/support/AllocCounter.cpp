//===- AllocCounter.cpp - Opt-in per-thread heap-allocation counter --------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/AllocCounter.h"

#include <atomic>
#include <cstdlib>
#include <new>

// The replacement operators must not be defined when a sanitizer owns the
// allocator: ASan/TSan/MSan interpose malloc and new themselves, and a
// user-provided operator new would bypass their bookkeeping (poisoned
// redzones, allocation stacks). The hook simply compiles out there and
// allocCounterActive() reports it dead.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) ||           \
    defined(__SANITIZE_MEMORY__)
#define CYPRESS_ALLOC_COUNTER_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) ||     \
    __has_feature(memory_sanitizer)
#define CYPRESS_ALLOC_COUNTER_DISABLED 1
#endif
#endif

namespace {

std::atomic<bool> CountingEnabled{false};
thread_local uint64_t ThreadAllocs = 0;

} // namespace

namespace cypress {

void setAllocCounting(bool Enable) {
  CountingEnabled.store(Enable, std::memory_order_relaxed);
}

bool allocCountingEnabled() {
  return CountingEnabled.load(std::memory_order_relaxed);
}

uint64_t threadAllocCount() { return ThreadAllocs; }

bool allocCounterActive() {
#ifdef CYPRESS_ALLOC_COUNTER_DISABLED
  return false;
#else
  return true;
#endif
}

} // namespace cypress

#ifndef CYPRESS_ALLOC_COUNTER_DISABLED

namespace {

void *countedAlloc(size_t Size) {
  if (CountingEnabled.load(std::memory_order_relaxed))
    ++ThreadAllocs;
  // operator new must never return null for a successful zero-byte request.
  void *Ptr = std::malloc(Size ? Size : 1);
  if (!Ptr)
    throw std::bad_alloc();
  return Ptr;
}

} // namespace

void *operator new(size_t Size) { return countedAlloc(Size); }
void *operator new[](size_t Size) { return countedAlloc(Size); }

void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  if (CountingEnabled.load(std::memory_order_relaxed))
    ++ThreadAllocs;
  return std::malloc(Size ? Size : 1);
}
void *operator new[](size_t Size, const std::nothrow_t &) noexcept {
  if (CountingEnabled.load(std::memory_order_relaxed))
    ++ThreadAllocs;
  return std::malloc(Size ? Size : 1);
}

void operator delete(void *Ptr) noexcept { std::free(Ptr); }
void operator delete[](void *Ptr) noexcept { std::free(Ptr); }
void operator delete(void *Ptr, size_t) noexcept { std::free(Ptr); }
void operator delete[](void *Ptr, size_t) noexcept { std::free(Ptr); }
void operator delete(void *Ptr, const std::nothrow_t &) noexcept {
  std::free(Ptr);
}
void operator delete[](void *Ptr, const std::nothrow_t &) noexcept {
  std::free(Ptr);
}

#endif // !CYPRESS_ALLOC_COUNTER_DISABLED
