//===- InlineVector.h - Small-buffer vector for trivial types --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-buffer vector for trivially copyable element types. The
/// IR's event-index lists (rank <= 4 in every kernel the compiler emits)
/// live in structures that the passes copy and splice constantly; keeping
/// them inline removes a heap allocation per reference. The API is the
/// std::vector subset those structures use, with one deliberate match to
/// libstdc++ behavior the compiler relies on: a moved-from InlineVector is
/// empty.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_INLINEVECTOR_H
#define CYPRESS_SUPPORT_INLINEVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace cypress {

template <typename T, unsigned InlineN> class InlineVector {
  static_assert(std::is_trivially_copyable<T>::value,
                "InlineVector is specialized for trivially copyable types");

public:
  InlineVector() = default;

  InlineVector(const InlineVector &Other) { assignFrom(Other); }

  InlineVector &operator=(const InlineVector &Other) {
    if (this != &Other) {
      Sz = 0;
      assignFrom(Other);
    }
    return *this;
  }

  InlineVector(InlineVector &&Other) noexcept { stealFrom(Other); }

  InlineVector &operator=(InlineVector &&Other) noexcept {
    if (this != &Other) {
      releaseHeap();
      stealFrom(Other);
    }
    return *this;
  }

  ~InlineVector() { releaseHeap(); }

  using iterator = T *;
  using const_iterator = const T *;

  T *begin() { return data(); }
  T *end() { return data() + Sz; }
  const T *begin() const { return data(); }
  const T *end() const { return data() + Sz; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  T &operator[](size_t Index) {
    assert(Index < Sz && "index out of range");
    return data()[Index];
  }
  const T &operator[](size_t Index) const {
    assert(Index < Sz && "index out of range");
    return data()[Index];
  }

  void clear() { Sz = 0; }

  void push_back(const T &Value) {
    grow(Sz + 1);
    data()[Sz++] = Value;
  }

  /// Replaces the contents with [First, Last) (bridges from std::vector
  /// call sites).
  template <typename It> void assign(It First, It Last) {
    Sz = 0;
    grow(static_cast<size_t>(Last - First));
    for (It Cur = First; Cur != Last; ++Cur)
      data()[Sz++] = *Cur;
  }

  /// Inserts \p Value before \p Pos (typically begin(): vectorization
  /// prepends the flattened processor index).
  iterator insert(const_iterator Pos, const T &Value) {
    size_t Index = static_cast<size_t>(Pos - data());
    grow(Sz + 1);
    T *Base = data();
    std::memmove(Base + Index + 1, Base + Index, (Sz - Index) * sizeof(T));
    Base[Index] = Value;
    ++Sz;
    return Base + Index;
  }

private:
  T *data() { return Heap ? Heap : inlineData(); }
  const T *data() const { return Heap ? Heap : inlineData(); }

  void grow(size_t Needed) {
    if (Needed <= Cap)
      return;
    uint32_t NewCap = Cap * 2 < Needed ? static_cast<uint32_t>(Needed)
                                       : Cap * 2;
    // Raw storage: T may have a non-trivial default constructor (it is
    // only required to be trivially *copyable*), so elements materialize
    // exclusively via memcpy from live objects.
    T *NewHeap = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    std::memcpy(static_cast<void *>(NewHeap), data(), Sz * sizeof(T));
    releaseHeap();
    Heap = NewHeap;
    Cap = NewCap;
  }

  void assignFrom(const InlineVector &Other) {
    grow(Other.Sz);
    std::memcpy(data(), Other.data(), Other.Sz * sizeof(T));
    Sz = Other.Sz;
  }

  void stealFrom(InlineVector &Other) {
    if (Other.Heap) {
      Heap = Other.Heap;
      Cap = Other.Cap;
      Sz = Other.Sz;
      Other.Heap = nullptr;
      Other.Cap = InlineN;
    } else {
      Heap = nullptr;
      Cap = InlineN;
      Sz = Other.Sz;
      std::memcpy(Storage, Other.Storage, Other.Sz * sizeof(T));
    }
    Other.Sz = 0; // Moved-from is empty, matching std::vector in practice.
  }

  void releaseHeap() {
    ::operator delete(Heap);
    Heap = nullptr;
    Cap = InlineN;
  }

  T *inlineData() { return reinterpret_cast<T *>(Storage); }
  const T *inlineData() const {
    return reinterpret_cast<const T *>(Storage);
  }

  alignas(T) unsigned char Storage[sizeof(T) * InlineN];
  T *Heap = nullptr;
  uint32_t Sz = 0;
  uint32_t Cap = InlineN;
};

} // namespace cypress

#endif // CYPRESS_SUPPORT_INLINEVECTOR_H
