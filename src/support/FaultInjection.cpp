//===- FaultInjection.cpp - Deterministic, seeded fault injection ----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Format.h"
#include "support/Random.h"

#include <cctype>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace cypress;

const char *cypress::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::AllocFail:
    return "alloc-fail";
  case FaultSite::FailPass:
    return "fail-pass";
  case FaultSite::SlowPass:
    return "slow-pass";
  case FaultSite::WorkerThrow:
    return "worker-throw";
  case FaultSite::CostCorrupt:
    return "cost-corrupt";
  }
  cypressUnreachable("unknown fault site");
}

namespace {

struct Clause {
  FaultSite Site = FaultSite::FailPass;
  std::string Filter;      ///< Empty = any key.
  int64_t Arg = 0;         ///< Payload (slow-pass delay micros).
  uint64_t NthHit = 0;     ///< >0: fire on this eligible query only.
  double Probability = -1; ///< >=0: fire with this chance per query.
  uint64_t Hits = 0;       ///< Eligible queries seen (for NthHit).
};

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool siteByName(std::string_view Name, FaultSite &Out) {
  for (FaultSite Site :
       {FaultSite::AllocFail, FaultSite::FailPass, FaultSite::SlowPass,
        FaultSite::WorkerThrow, FaultSite::CostCorrupt})
    if (Name == faultSiteName(Site)) {
      Out = Site;
      return true;
    }
  return false;
}

/// Content hash for probabilistic decisions: a pure function of the seed,
/// the site, and the query key — never of arrival order or time, which is
/// what makes '~p' clauses deterministic at any worker count.
double decisionUnit(uint64_t Seed, FaultSite Site, std::string_view Key) {
  uint64_t H = Seed ^ (0x9e3779b97f4a7c15ull * (uint64_t(Site) + 1));
  for (char C : Key) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ull;
  }
  return SplitMix64(H).nextUnit();
}

} // namespace

struct FaultPlan::Impl {
  std::mutex Mutex;
  std::string Spec;
  uint64_t Seed = 0;
  std::vector<Clause> Clauses;
};

FaultPlan::Impl *FaultPlan::impl() {
  static Impl I;
  return &I;
}

FaultPlan &FaultPlan::global() {
  static FaultPlan Plan;
  static std::once_flag EnvOnce;
  std::call_once(EnvOnce, [] {
    if (const char *Env = std::getenv("CYPRESS_FAULT_SPEC")) {
      // A typo'd spec must not silently run the suite fault-free: the
      // fault-matrix CI job would vacuously pass.
      if (ErrorOrVoid Parsed = Plan.configure(Env); !Parsed)
        cypressUnreachable(Parsed.diagnostic().message().c_str());
    }
  });
  return Plan;
}

ErrorOrVoid FaultPlan::configure(const std::string &Spec) {
  uint64_t Seed = 0;
  std::vector<Clause> Clauses;

  std::string_view Rest = Spec;
  while (!Rest.empty()) {
    size_t Cut = Rest.find_first_of(";,");
    std::string_view Raw = trim(Rest.substr(0, Cut));
    Rest = Cut == std::string_view::npos ? std::string_view()
                                         : Rest.substr(Cut + 1);
    if (Raw.empty())
      continue;

    if (Raw.rfind("seed=", 0) == 0) {
      std::string Digits(Raw.substr(5));
      char *End = nullptr;
      Seed = std::strtoull(Digits.c_str(), &End, 10);
      // strtoull accepts garbage by returning 0 — a typo'd seed silently
      // changing every probabilistic decision is exactly the silent
      // misconfiguration this parser exists to reject.
      if (Digits.empty() || End != Digits.c_str() + Digits.size())
        return Diagnostic(formatString(
            "bad fault spec clause '%s': seed must be an unsigned integer",
            std::string(Raw).c_str()));
      continue;
    }

    Clause C;
    size_t NameEnd = Raw.find_first_of("=:@~");
    if (!siteByName(Raw.substr(0, NameEnd), C.Site))
      return Diagnostic(formatString(
          "bad fault spec clause '%s': unknown site (expected one of "
          "alloc-fail, fail-pass, slow-pass, worker-throw, cost-corrupt)",
          std::string(Raw).c_str()));
    std::string_view Tail =
        NameEnd == std::string_view::npos ? std::string_view()
                                          : Raw.substr(NameEnd);
    // Optional parts in order: =filter :arg @n ~p.
    if (!Tail.empty() && Tail.front() == '=') {
      Tail.remove_prefix(1);
      size_t End = Tail.find_first_of(":@~");
      C.Filter = std::string(Tail.substr(0, End));
      Tail = End == std::string_view::npos ? std::string_view()
                                           : Tail.substr(End);
    }
    if (!Tail.empty() && Tail.front() == ':') {
      Tail.remove_prefix(1);
      size_t End = Tail.find_first_of("@~");
      C.Arg = std::strtoll(std::string(Tail.substr(0, End)).c_str(),
                           nullptr, 10);
      Tail = End == std::string_view::npos ? std::string_view()
                                           : Tail.substr(End);
    }
    if (!Tail.empty() && Tail.front() == '@') {
      Tail.remove_prefix(1);
      size_t End = Tail.find_first_of("~");
      C.NthHit = std::strtoull(std::string(Tail.substr(0, End)).c_str(),
                               nullptr, 10);
      if (C.NthHit == 0)
        return Diagnostic(formatString(
            "bad fault spec clause '%s': @n is 1-based and must be positive",
            std::string(Raw).c_str()));
      Tail = End == std::string_view::npos ? std::string_view()
                                           : Tail.substr(End);
    }
    if (!Tail.empty() && Tail.front() == '~') {
      C.Probability =
          std::strtod(std::string(Tail.substr(1)).c_str(), nullptr);
      if (C.Probability < 0.0 || C.Probability > 1.0)
        return Diagnostic(formatString(
            "bad fault spec clause '%s': ~p must be in [0, 1]",
            std::string(Raw).c_str()));
      Tail = std::string_view();
    }
    if (!Tail.empty())
      return Diagnostic(formatString(
          "bad fault spec clause '%s': trailing '%s'",
          std::string(Raw).c_str(), std::string(Tail).c_str()));
    Clauses.push_back(std::move(C));
  }

  Impl &I = *impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  I.Spec = Spec;
  I.Seed = Seed;
  I.Clauses = std::move(Clauses);
  Armed.store(!I.Clauses.empty(), std::memory_order_relaxed);
  return ErrorOrVoid::success();
}

std::string FaultPlan::spec() {
  Impl &I = *impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Spec;
}

bool FaultPlan::shouldFire(FaultSite Site, std::string_view Key,
                           int64_t *ArgOut) {
  Impl &I = *impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  for (Clause &C : I.Clauses) {
    if (C.Site != Site)
      continue;
    if (!C.Filter.empty() && C.Filter != Key)
      continue;
    bool Fire = true;
    if (C.NthHit > 0)
      Fire = ++C.Hits == C.NthHit;
    else if (C.Probability >= 0.0)
      Fire = decisionUnit(I.Seed, Site, Key) < C.Probability;
    if (Fire) {
      if (ArgOut)
        *ArgOut = C.Arg;
      return true;
    }
  }
  return false;
}
