//===- AllocCounter.h - Opt-in per-thread heap-allocation counter ----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A counting-allocator hook: when enabled, the replacement global
/// `operator new` bumps a thread-local counter, so instrumentation (the
/// pass pipeline's per-pass HeapAllocs stat, bench_compile_time's alloc
/// column, the steady-state tests) can measure exactly how many heap
/// allocations a region of code performed on the current thread. The
/// counter costs one relaxed atomic load per allocation when disabled,
/// which is why it exists at all instead of wrapping every allocator.
///
/// The replacement operators are compiled out under ASan/TSan/MSan (the
/// sanitizer runtimes own the allocator there); `allocCounterActive()`
/// reports at runtime whether counting actually works, so tests can skip
/// instead of asserting on a dead counter.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_ALLOCCOUNTER_H
#define CYPRESS_SUPPORT_ALLOCCOUNTER_H

#include <cstdint>

namespace cypress {

/// Globally enables or disables allocation counting. Cheap to toggle;
/// affects all threads (each thread still counts into its own counter).
void setAllocCounting(bool Enable);
bool allocCountingEnabled();

/// Allocations observed on the calling thread while counting was enabled.
/// Monotonic; diff around a region to measure it.
uint64_t threadAllocCount();

/// True when the counting hook is live in this binary (false under
/// sanitizers, where the replacement operators are compiled out).
bool allocCounterActive();

} // namespace cypress

#endif // CYPRESS_SUPPORT_ALLOCCOUNTER_H
