//===- Fp16.cpp - IEEE half-precision emulation ---------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Fp16.h"

#include <cmath>
#include <cstring>

namespace cypress {

uint16_t fp32ToFp16Bits(float Value) {
  uint32_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));

  uint32_t Sign = (Bits >> 16) & 0x8000u;
  int32_t Exponent = static_cast<int32_t>((Bits >> 23) & 0xff) - 127 + 15;
  uint32_t Mantissa = Bits & 0x7fffffu;

  // NaN / infinity.
  if (((Bits >> 23) & 0xff) == 0xff) {
    uint16_t NanPayload = Mantissa ? 0x200u : 0u;
    return static_cast<uint16_t>(Sign | 0x7c00u | NanPayload);
  }

  // Overflow to infinity.
  if (Exponent >= 0x1f)
    return static_cast<uint16_t>(Sign | 0x7c00u);

  // Subnormal or zero in FP16.
  if (Exponent <= 0) {
    if (Exponent < -10)
      return static_cast<uint16_t>(Sign);
    // Add the implicit bit, then shift into the subnormal position with
    // round-to-nearest-even.
    Mantissa |= 0x800000u;
    unsigned Shift = static_cast<unsigned>(14 - Exponent);
    uint32_t Rounded = Mantissa >> Shift;
    uint32_t Remainder = Mantissa & ((1u << Shift) - 1);
    uint32_t Half = 1u << (Shift - 1);
    if (Remainder > Half || (Remainder == Half && (Rounded & 1)))
      ++Rounded;
    return static_cast<uint16_t>(Sign | Rounded);
  }

  // Normal case with round-to-nearest-even on the dropped 13 bits.
  uint32_t Rounded = Mantissa >> 13;
  uint32_t Remainder = Mantissa & 0x1fffu;
  if (Remainder > 0x1000u || (Remainder == 0x1000u && (Rounded & 1)))
    ++Rounded;
  // The rounded mantissa is ADDED (not OR'd) so a carry out of the
  // mantissa correctly increments the exponent (0x03ff + 1 -> exponent + 1,
  // mantissa 0), including overflow to infinity.
  uint32_t Result = Sign + (static_cast<uint32_t>(Exponent) << 10) + Rounded;
  return static_cast<uint16_t>(Result);
}

float fp16BitsToFp32(uint16_t Bits) {
  uint32_t Sign = static_cast<uint32_t>(Bits & 0x8000u) << 16;
  uint32_t Exponent = (Bits >> 10) & 0x1f;
  uint32_t Mantissa = Bits & 0x3ffu;

  uint32_t Out;
  if (Exponent == 0) {
    if (Mantissa == 0) {
      Out = Sign; // Signed zero.
    } else {
      // Normalize the subnormal.
      int Shift = 0;
      while (!(Mantissa & 0x400u)) {
        Mantissa <<= 1;
        ++Shift;
      }
      Mantissa &= 0x3ffu;
      Out = Sign | ((127 - 15 - Shift + 1) << 23) | (Mantissa << 13);
    }
  } else if (Exponent == 0x1f) {
    Out = Sign | 0x7f800000u | (Mantissa << 13); // Inf / NaN.
  } else {
    Out = Sign | ((Exponent - 15 + 127) << 23) | (Mantissa << 13);
  }

  float Value;
  std::memcpy(&Value, &Out, sizeof(Value));
  return Value;
}

} // namespace cypress
