//===- Random.h - Deterministic pseudo-random generation ------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic RNG used by workload generators and property tests. The
/// paper benchmarks with matrix elements drawn from the same random
/// distribution across systems to normalize power throttling; we keep the
/// same discipline so all systems see identical inputs.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_RANDOM_H
#define CYPRESS_SUPPORT_RANDOM_H

#include <cstdint>
#include <vector>

namespace cypress {

/// SplitMix64: tiny, fast, deterministic, well distributed.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, 1).
  double nextUnit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [Lo, Hi).
  double nextIn(double Lo, double Hi) { return Lo + nextUnit() * (Hi - Lo); }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

private:
  uint64_t State;
};

/// Fills a buffer with values in [-1, 1), FP16-quantized on the way in so all
/// systems compute on identical inputs (mirrors the paper's normalization).
void fillRandomFp16(std::vector<float> &Buffer, uint64_t Seed);

} // namespace cypress

#endif // CYPRESS_SUPPORT_RANDOM_H
