//===- MathUtil.h - Small integer math helpers ----------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ceiling division, alignment, and power-of-two helpers used by tiling and
/// the shared-memory allocator.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_MATHUTIL_H
#define CYPRESS_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cstdint>

namespace cypress {

/// Ceiling division of non-negative integers.
inline int64_t ceilDiv(int64_t Numerator, int64_t Denominator) {
  assert(Denominator > 0 && "division by non-positive value");
  assert(Numerator >= 0 && "ceilDiv expects a non-negative numerator");
  return (Numerator + Denominator - 1) / Denominator;
}

/// Rounds \p Value up to the next multiple of \p Align.
inline int64_t alignUp(int64_t Value, int64_t Align) {
  assert(Align > 0 && "alignment must be positive");
  return ceilDiv(Value, Align) * Align;
}

/// True if \p Value is a power of two (zero is not).
inline bool isPowerOfTwo(int64_t Value) {
  return Value > 0 && (Value & (Value - 1)) == 0;
}

} // namespace cypress

#endif // CYPRESS_SUPPORT_MATHUTIL_H
