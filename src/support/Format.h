//===- Format.h - String formatting helpers ------------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and small string utilities used by the
/// IR printer, diagnostics, and the CUDA emitter.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_FORMAT_H
#define CYPRESS_SUPPORT_FORMAT_H

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace cypress {

/// Formats like printf into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Size > 0 ? static_cast<size_t>(Size) : 0, '\0');
  if (Size > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

/// Joins the elements of \p Parts with \p Sep between them.
inline std::string joinStrings(const std::vector<std::string> &Parts,
                               const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

/// Returns \p Text with each line prefixed by \p Indent spaces.
inline std::string indentLines(const std::string &Text, unsigned Indent) {
  std::string Pad(Indent, ' ');
  std::string Result;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos)
      End = Text.size();
    Result += Pad + Text.substr(Start, End - Start) + "\n";
    Start = End + 1;
  }
  return Result;
}

} // namespace cypress

#endif // CYPRESS_SUPPORT_FORMAT_H
