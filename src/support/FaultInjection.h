//===- FaultInjection.h - Deterministic, seeded fault injection ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault injector for testing the serving stack's failure
/// paths. Production code queries named sites at the exact places real
/// failures would surface; a fault plan (parsed from the CYPRESS_FAULT_SPEC
/// environment variable, or installed programmatically by tests) decides
/// which queries fire. When no plan is armed every query is a single
/// relaxed atomic load — the injector is zero-overhead in real serving.
///
/// Sites:
///   alloc-fail    shared-memory allocation fails (resource-allocation)
///   fail-pass     a named pipeline pass returns an internal error
///   slow-pass     a named pipeline pass is delayed by N microseconds
///   worker-throw  a session compile worker throws (containment test)
///   cost-corrupt  a tuner cost-cache insert is written corrupted
///
/// Spec grammar (clauses separated by ';' or ','):
///
///   CYPRESS_FAULT_SPEC="seed=7;fail-pass=copy-elimination@2;worker-throw~0.25"
///
///   seed=<u64>            PRNG seed shared by every probabilistic clause
///   <site>                fire on every eligible query
///   <site>=<filter>       only queries whose key equals <filter>
///   <site>:<arg>          integer payload (slow-pass delay in micros)
///   <site>@<n>            fire on the n-th eligible query only (1-based)
///   <site>~<p>            fire with probability p per query
///
/// Determinism: a '~p' decision hashes (seed, site, query key) — never a
/// counter or the clock — so with content-derived keys (pass names, mapping
/// fingerprints) the same spec fires on the same work items at any worker
/// count and in every fresh session, preserving the tuner's
/// bit-identical-landscape contract under faults.
/// '@n' clauses count eligible queries in arrival order: exactly one query
/// fires regardless of scheduling, but *which* concurrent query it is is
/// unspecified — use them where arrival order is controlled (single-request
/// tests) or where any-one-of-N is the property under test.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_FAULTINJECTION_H
#define CYPRESS_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace cypress {

enum class FaultSite : uint8_t {
  AllocFail,
  FailPass,
  SlowPass,
  WorkerThrow,
  CostCorrupt,
};

/// The spec-grammar name of \p Site ("alloc-fail", "fail-pass", ...).
const char *faultSiteName(FaultSite Site);

/// The installed set of fault clauses. One process-wide instance; tests
/// reconfigure it around the block under test and disarm it afterwards.
class FaultPlan {
public:
  /// The process-wide plan. First access parses CYPRESS_FAULT_SPEC (a
  /// malformed env spec aborts loudly — silently running a fault matrix
  /// with no faults armed would vacuously pass).
  static FaultPlan &global();

  /// Parses and installs \p Spec; an empty spec disarms every site.
  /// Thread-safe, but reconfiguring while queries are in flight applies
  /// the new plan to whatever queries follow.
  ErrorOrVoid configure(const std::string &Spec);

  /// The spec string of the installed plan ("" when disarmed). Lets tests
  /// save and restore the active plan around a scoped reconfiguration.
  std::string spec();

  /// True when any clause is installed (the hot-path gate).
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// True when an armed clause fires for this query. \p Key is the query's
  /// stable content identity (pass name, cache key); \p ArgOut receives
  /// the clause payload when non-null.
  bool shouldFire(FaultSite Site, std::string_view Key = {},
                  int64_t *ArgOut = nullptr);

private:
  FaultPlan() = default;

  struct Impl;
  Impl *impl();

  std::atomic<bool> Armed{false};
};

/// The query production code uses: one relaxed load when no plan is armed.
inline bool faultFires(FaultSite Site, std::string_view Key = {},
                       int64_t *ArgOut = nullptr) {
  FaultPlan &Plan = FaultPlan::global();
  return Plan.armed() && Plan.shouldFire(Site, Key, ArgOut);
}

} // namespace cypress

#endif // CYPRESS_SUPPORT_FAULTINJECTION_H
