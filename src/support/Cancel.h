//===- Cancel.h - Deadlines and cooperative cancellation -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for the serving layer. A request carries a
/// Cancellation (an optional wall-clock Deadline plus up to two CancelToken
/// sources: the caller's and the owning session's); long-running loops poll
/// a CancelCheck at natural checkpoints — between pipeline passes, every N
/// worklist pops in copy elimination, per unit in the simulator's shard
/// expansion, every N scheduling steps in the simulator and the CPU
/// lowering, and at tuner round boundaries.
///
/// Cost model: tokens are relaxed atomic loads checked on every poll; the
/// clock (the expensive part) is read only every Stride-th poll, so a
/// checkpoint in a hot loop costs one predictable branch plus an occasional
/// steady_clock read. Code running without a Cancellation passes nullptr
/// and pays a single null test — the golden parity suites see bit-identical
/// behavior because an absent Cancellation changes nothing at all.
///
/// A checkpoint that fires produces a structured Diagnostic
/// (Code::DeadlineExceeded or Code::Cancelled) through cancelDiagnostic();
/// callers propagate it like any other recoverable error, and the caches
/// (kernel cache, cost cache) refuse to memoize those codes — see
/// Diagnostic::isTransient.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_SUPPORT_CANCEL_H
#define CYPRESS_SUPPORT_CANCEL_H

#include "support/Error.h"

#include <atomic>
#include <chrono>

namespace cypress {

/// A one-way latch a caller flips to abandon in-flight work. Safe to share
/// across threads; cancellation is observed at the next checkpoint, never
/// preemptively.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// An absolute wall-clock cutoff. Default-constructed deadlines are
/// inactive (never expire), so plumbing one unconditionally costs nothing.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline never() { return Deadline(); }
  static Deadline at(Clock::time_point When) {
    Deadline D;
    D.At = When;
    D.Has = true;
    return D;
  }
  static Deadline afterMicros(double Micros) {
    return at(Clock::now() + std::chrono::microseconds(
                                 static_cast<int64_t>(Micros)));
  }
  static Deadline afterMillis(double Millis) {
    return afterMicros(Millis * 1000.0);
  }

  bool active() const { return Has; }
  bool expired() const { return Has && Clock::now() >= At; }

  /// Microseconds until expiry (negative once past); +inf semantics are
  /// approximated with a large value for inactive deadlines.
  double remainingMicros() const {
    if (!Has)
      return 1e18;
    return std::chrono::duration<double, std::micro>(At - Clock::now())
        .count();
  }

private:
  Clock::time_point At{};
  bool Has = false;
};

/// The full cancellation surface of one request: a deadline plus the
/// caller's token plus (optionally) a session-wide token, so
/// CompilerSession::shutdown(Abort) reaches into every in-flight request
/// without the caller wiring anything. Cheap to copy; the tokens are
/// non-owning and must outlive the request.
struct Cancellation {
  Deadline DeadlineAt;
  const CancelToken *Token = nullptr;
  const CancelToken *SessionToken = nullptr;

  Cancellation() = default;
  Cancellation(Deadline D, const CancelToken *Token = nullptr,
               const CancelToken *SessionToken = nullptr)
      : DeadlineAt(D), Token(Token), SessionToken(SessionToken) {}

  /// False when polling could never fire — the zero-overhead fast path.
  bool active() const {
    return DeadlineAt.active() || Token != nullptr || SessionToken != nullptr;
  }
};

/// Builds the structured diagnostic for a checkpoint that fired. \p What
/// names the work that was abandoned ("compilation", "simulation", ...).
inline Diagnostic cancelDiagnostic(Diagnostic::Code Code,
                                   const std::string &What) {
  return Diagnostic(Code,
                    (Code == Diagnostic::Code::Cancelled
                         ? "request cancelled during "
                         : "deadline exceeded during ") +
                        What);
}

/// The poll object hot loops actually touch. One CancelCheck per thread of
/// work (it holds a stride counter, so sharing one across threads would
/// race); all checks against the same Cancellation agree on when to stop.
/// Once a check fires it latches, so callers may poll again on the unwind
/// path without re-reading the clock.
class CancelCheck {
public:
  CancelCheck() = default;
  explicit CancelCheck(const Cancellation &C, unsigned Stride = 256)
      : C(C), Stride(C.active() ? Stride : 0) {}

  bool enabled() const { return Stride != 0; }

  /// Cheap strided checkpoint for hot loops: tokens every call, clock
  /// every Stride-th call.
  bool shouldStop() {
    if (Stride == 0 || Stopped)
      return Stopped;
    if (tokensFired())
      return true;
    if (++Count >= Stride) {
      Count = 0;
      return pollDeadline();
    }
    return false;
  }

  /// Exact checkpoint for loop boundaries (between passes, between tuner
  /// rounds): always reads the clock.
  bool shouldStopNow() {
    if (Stride == 0 || Stopped)
      return Stopped;
    if (tokensFired())
      return true;
    return pollDeadline();
  }

  /// Why the check fired; only meaningful after shouldStop* returned true.
  Diagnostic::Code code() const { return Why; }

  /// The structured diagnostic for this firing (see cancelDiagnostic).
  Diagnostic diagnostic(const std::string &What) const {
    return cancelDiagnostic(Why, What);
  }

private:
  bool tokensFired() {
    if ((C.Token && C.Token->cancelled()) ||
        (C.SessionToken && C.SessionToken->cancelled())) {
      Stopped = true;
      Why = Diagnostic::Code::Cancelled;
      return true;
    }
    return false;
  }
  bool pollDeadline() {
    if (C.DeadlineAt.expired()) {
      Stopped = true;
      Why = Diagnostic::Code::DeadlineExceeded;
      return true;
    }
    return false;
  }

  Cancellation C;
  unsigned Stride = 0; ///< 0 = inert (no sources to poll).
  unsigned Count = 0;
  bool Stopped = false;
  Diagnostic::Code Why = Diagnostic::Code::Internal;
};

} // namespace cypress

#endif // CYPRESS_SUPPORT_CANCEL_H
