//===- PassManager.cpp - Instrumented compiler pass pipeline ---------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"

#include "support/AllocCounter.h"
#include "support/FaultInjection.h"
#include "support/Format.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <thread>

using namespace cypress;

Pass::~Pass() = default;

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

} // namespace

PassPipeline::PassPipeline() {
  const char *Env = std::getenv("CYPRESS_PRINT_IR_AFTER_ALL");
  PrintIRAfterAll = Env && *Env && std::string(Env) != "0";
}

ErrorOr<IRModule> PassPipeline::run(const CompileInput &Input,
                                    SharedAllocation *AllocOut,
                                    PipelineStats *StatsOut,
                                    const Cancellation *Cancel) const {
  PipelineState State;
  State.Input = &Input;
  CancelCheck Check;
  if (Cancel) {
    Check = CancelCheck(*Cancel);
    State.Cancel = &Check;
  }

  PipelineStats Stats;
  Clock::time_point PipelineStart = Clock::now();
  // The counter is global but thread-local in what it counts, so enabling
  // it here only perturbs other threads by the cost of a relaxed load per
  // allocation; the per-pass diffs below see this thread alone.
  bool WasCounting = allocCountingEnabled();
  if (CountAllocs)
    setAllocCounting(true);
  auto Finish = [&]() {
    if (CountAllocs)
      setAllocCounting(WasCounting);
    Stats.TotalMicros = microsSince(PipelineStart);
    if (StatsOut)
      *StatsOut = std::move(Stats);
  };

  for (const std::unique_ptr<Pass> &P : Passes) {
    // Between-pass checkpoint: the exact variant, since pass boundaries
    // are rare enough that a real clock read per pass is free.
    if (Check.enabled() && Check.shouldStopNow()) {
      Finish();
      return Check.diagnostic(
          formatString("compilation (before pass '%s')", P->name()));
    }

    // Injected faults surface here, at the boundary a real wedged or
    // buggy pass would, and return directly so the Infeasible
    // reclassification below never touches them: injected failures are
    // transient by definition and must stay uncacheable.
    if (FaultPlan::global().armed()) {
      int64_t DelayMicros = 0;
      if (faultFires(FaultSite::SlowPass, P->name(), &DelayMicros) &&
          DelayMicros > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(DelayMicros));
      if (faultFires(FaultSite::FailPass, P->name())) {
        Finish();
        Diagnostic Diag(Diagnostic::Code::Internal,
                        formatString("injected failure in pass '%s'",
                                     P->name()));
        Diag.setPass(P->name());
        return Diag;
      }
      if (std::string_view(P->name()) == "resource-allocation" &&
          faultFires(FaultSite::AllocFail, P->name())) {
        Finish();
        Diagnostic Diag(Diagnostic::Code::Internal,
                        "injected shared-memory allocation failure");
        Diag.setPass(P->name());
        return Diag;
      }
    }

    PassStat Stat;
    Stat.Name = P->name();
    State.Counters = PassCounters();

    uint64_t AllocsBefore = CountAllocs ? threadAllocCount() : 0;
    Clock::time_point PassStart = Clock::now();
    ErrorOrVoid Result = P->run(State);
    Stat.Micros = microsSince(PassStart);
    if (CountAllocs)
      Stat.HeapAllocs = threadAllocCount() - AllocsBefore;
    Stat.Rewrites = State.Counters.Rewrites;
    Stat.WorklistPops = State.Counters.WorklistPops;
    Stat.OpsAfter = countOps(State.Module);
    Stat.EventsAfter = State.Module.numEvents();
    Stat.TensorsAfter = State.Module.tensors().size();

    if (!Result) {
      Stats.Passes.push_back(std::move(Stat));
      Finish();
      Diagnostic Diag = Result.diagnostic();
      if (Diag.passName().empty())
        Diag.setPass(P->name());
      // An uncoded pass rejection is a deterministic property of the
      // input (the pipeline is pure), so classify it Infeasible; coded
      // diagnostics — checkpoint exits above all — pass through.
      if (Diag.code() == Diagnostic::Code::Internal)
        Diag.setCode(Diagnostic::Code::Infeasible);
      return Diag;
    }

    if (PrintIRAfterAll) {
      std::ostream &OS = PrintStream ? *PrintStream : std::cerr;
      OS << "// --- IR after " << P->name() << " ---\n"
         << printModule(State.Module) << '\n';
    }

    if (VerifyEachPass && P->verifyAfter()) {
      Clock::time_point VerifyStart = Clock::now();
      ErrorOrVoid Verified = verifyModule(State.Module);
      Stat.VerifyMicros = microsSince(VerifyStart);
      if (!Verified) {
        Stats.Passes.push_back(std::move(Stat));
        Finish();
        Diagnostic Diag(Diagnostic::Code::VerifyFailed,
                        formatString(
                            "verification failed after pass '%s': %s",
                            P->name(),
                            Verified.diagnostic().message().c_str()));
        Diag.setPass(P->name());
        return Diag;
      }
    }
    Stats.Passes.push_back(std::move(Stat));
  }

  if (AllocOut)
    *AllocOut = std::move(State.Alloc);
  Finish();
  return std::move(State.Module);
}

PassPipeline PassPipeline::defaultPipeline() {
  PassPipeline Pipeline;
  Pipeline.addPass(createDependenceAnalysisPass());
  Pipeline.addPass(createVectorizationPass());
  Pipeline.addPass(createCopyEliminationPass());
  Pipeline.addPass(createAssignExecUnitsPass());
  Pipeline.addPass(createResourceAllocationPass());
  Pipeline.addPass(createRepairEventScopesPass());
  Pipeline.addPass(createWarpSpecializationPass());
  return Pipeline;
}

//===----------------------------------------------------------------------===//
// compileToIR: the legacy single-call driver, now a pipeline wrapper
//===----------------------------------------------------------------------===//

ErrorOr<IRModule> cypress::compileToIR(const CompileInput &Input,
                                       SharedAllocation *AllocOut) {
  return PassPipeline::defaultPipeline().run(Input, AllocOut);
}
