//===- ResourceAllocation.cpp - Shared-memory allocation -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 4 of the compiler (Section 4.2.4, Figure 11). Binds every
/// shared-memory tensor of a block to a physical byte range within the
/// user's per-block budget. The trade-off is memory pressure versus
/// parallelism: aliasing two logical tensors onto one buffer saves space
/// but serializes their live ranges.
///
/// The algorithm starts from the COMPLETE interference graph (every pair of
/// tensors interferes, i.e. nothing aliases) and relaxes: if an allocation
/// under the current graph exceeds the budget, one auxiliary edge — an edge
/// between tensors whose live ranges do NOT actually overlap — is removed
/// (largest combined size first) and allocation retries. Removing edges
/// only between non-overlapping tensors keeps the result correct; starting
/// complete keeps aliasing minimal. If even the true interference graph
/// does not fit, an out-of-memory diagnostic tells the user to adjust the
/// mapping.
///
/// For every aliased pair the pass inserts a write-after-read event edge:
/// the first writer of the later tensor waits on the last readers of the
/// earlier one, preventing reuse hazards.
///
/// All tables live in pooled thread-local scratch indexed densely by tensor
/// id or range index (interference is a flat bit matrix — the shared-tensor
/// count per block is small), so steady-state tuner sweeps neither hash nor
/// allocate here.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>

using namespace cypress;

namespace {

/// Live-range info for one shared tensor within the block body, in
/// flattened op order.
struct LiveRange {
  TensorId Tensor = InvalidTensorId;
  int64_t Bytes = 0;     ///< Allocation size including pipeline buffers.
  size_t FirstUse = 0;   ///< Flattened position of the first def/use.
  size_t LastUse = 0;    ///< Flattened position of the last use.
  Operation *FirstWriter = nullptr;
  Operation *LastReader = nullptr; ///< Latest read position's op.
};

constexpr uint32_t NoRange = ~0u;

/// Pooled per-run tables. LiveRange holds raw Operation pointers, so the
/// scratch never outlives one run() call's module walk.
struct AllocScratch {
  std::vector<Operation *> Order;     ///< Flattened pre-order op sequence.
  std::vector<LiveRange> Ranges;
  std::vector<int64_t> WgExtent;      ///< By tensor id; 0 = no alloc seen.
  std::vector<uint32_t> RangeOf;      ///< By tensor id; NoRange = none.
  std::vector<uint8_t> Edge;          ///< N*N interference bit matrix.
  std::vector<std::pair<size_t, size_t>> Auxiliary;
  std::vector<size_t> BySize;
  std::vector<int64_t> Offsets;
  std::vector<std::pair<int64_t, int64_t>> Forbidden;
  std::vector<uint8_t> RegCounted;    ///< By tensor id.
  /// One op's tensor uses, merged across duplicate occurrences and sorted
  /// by id so range discovery order matches the historical all-tensors
  /// scan at each position.
  struct Use {
    TensorId Tensor;
    bool Reads;
    bool Writes;
  };
  std::vector<Use> Uses;
};

AllocScratch &allocScratch() {
  thread_local AllocScratch Scratch;
  return Scratch;
}

/// Flattens the block body (including loop bodies) into a linear order used
/// for live-range construction. Ops inside loops conservatively extend live
/// ranges across the whole loop.
void linearize(IRBlock &Block, std::vector<Operation *> &Out) {
  for (std::unique_ptr<Operation> &Op : Block.Ops) {
    Out.push_back(Op.get());
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      linearize(Op->Body, Out);
  }
}

class Allocator {
public:
  Allocator(IRModule &Module, const MachineModel &Machine, int64_t LimitBytes)
      : Module(Module), Machine(Machine), LimitBytes(LimitBytes),
        S(allocScratch()) {}

  ErrorOr<SharedAllocation> run() {
    S.Order.clear();
    linearize(Module.root(), S.Order);
    if (ErrorOrVoid Regs = checkRegisterPressure(); !Regs)
      return Regs.diagnostic();
    collectRanges();
    std::vector<LiveRange> &Ranges = S.Ranges;
    if (Ranges.empty())
      return SharedAllocation{};

    // The mapping may tighten the budget below the machine capacity
    // (TaskMapping::SharedLimitBytes, plumbed through as LimitBytes); the
    // machine capacity is the hard ceiling either way.
    int64_t Budget = Machine.memory(Memory::Shared).CapacityBytes;
    if (LimitBytes > 0)
      Budget = std::min(Budget, LimitBytes);

    // Complete interference graph: every unordered pair starts present.
    // Auxiliary edges are those whose live ranges do not truly overlap.
    size_t N = Ranges.size();
    S.Edge.assign(N * N, 1);
    S.Auxiliary.clear();
    for (size_t I = 0; I < N; ++I) {
      for (size_t J = I + 1; J < N; ++J) {
        bool Overlap = Ranges[I].FirstUse <= Ranges[J].LastUse &&
                       Ranges[J].FirstUse <= Ranges[I].LastUse;
        if (!Overlap)
          S.Auxiliary.push_back({I, J});
      }
    }
    // Remove the largest-combined-size auxiliary edges first: each removal
    // buys the most space, so total aliasing stays minimal.
    std::sort(S.Auxiliary.begin(), S.Auxiliary.end(),
              [&](const auto &A, const auto &B) {
                int64_t SA = Ranges[A.first].Bytes + Ranges[A.second].Bytes;
                int64_t SB = Ranges[B.first].Bytes + Ranges[B.second].Bytes;
                return SA > SB;
              });

    size_t NextRelax = 0;
    SharedAllocation Result;
    while (true) {
      std::optional<SharedAllocation> Attempt = tryAllocate(Budget);
      if (Attempt) {
        Result = std::move(*Attempt);
        break;
      }
      if (NextRelax == S.Auxiliary.size())
        return Diagnostic(formatString(
            "shared memory allocation exceeds the per-block budget of %lld "
            "bytes even with maximal aliasing; map fewer tensors to shared "
            "memory or reduce tile sizes",
            static_cast<long long>(Budget)));
      auto [EI, EJ] = S.Auxiliary[NextRelax++];
      S.Edge[EI * N + EJ] = 0;
      S.Edge[EJ * N + EI] = 0;
    }

    insertWarEdges(Result);
    Result.buildIndex();
    return Result;
  }

private:
  /// Register-file capacity check (Section 3.4): tensors mapped to the
  /// register memory are distributed over the threads of their home
  /// processor level; the per-thread total must fit the 255-register CUDA
  /// limit. This is what forces large accumulators to be split across
  /// warpgroups.
  ErrorOrVoid checkRegisterPressure() {
    const int64_t BytesPerThread =
        Machine.memory(Memory::Register).CapacityBytes;
    // Live-range-insensitive sum: register tensors in our kernels are live
    // for essentially the whole block.
    int64_t PerThreadBytes = 0;
    S.RegCounted.assign(Module.tensors().size(), 0);
    auto Count = [&](TensorId Id) {
      const IRTensor &T = Module.tensor(Id);
      if (T.Mem != Memory::Register || S.RegCounted[Id])
        return;
      S.RegCounted[Id] = 1;
      int64_t Threads = 1;
      switch (T.HomeProc) {
      case Processor::Warpgroup:
        Threads = H100Constants::ThreadsPerWarp *
                  H100Constants::WarpsPerWarpgroup;
        break;
      case Processor::Warp:
        Threads = H100Constants::ThreadsPerWarp;
        break;
      default:
        break;
      }
      PerThreadBytes += ceilDiv(T.Type.sizeBytes(), Threads);
    };
    for (const Operation *Op : S.Order) {
      if (Op->Kind == OpKind::Copy) {
        Count(Op->CopySrc.Tensor);
        Count(Op->CopyDst.Tensor);
      } else if (Op->Kind == OpKind::Call) {
        for (const TensorSlice &Slice : Op->Args)
          Count(Slice.Tensor);
      }
    }
    if (PerThreadBytes > BytesPerThread)
      return Diagnostic(formatString(
          "register allocation needs %lld bytes per thread but the machine "
          "provides %lld (255 registers); split accumulators across more "
          "warpgroups (Section 3.4)",
          static_cast<long long>(PerThreadBytes),
          static_cast<long long>(BytesPerThread)));
    return ErrorOrVoid::success();
  }

  /// Appends \p Op's shared-memory tensor uses to S.Uses, merging duplicate
  /// occurrences (a read-write call argument both reads and writes).
  void gatherUses(Operation &Op) {
    S.Uses.clear();
    auto Note = [&](TensorId Tensor, bool Reads, bool Writes) {
      if (Module.tensor(Tensor).Mem != Memory::Shared)
        return;
      for (AllocScratch::Use &U : S.Uses)
        if (U.Tensor == Tensor) {
          U.Reads |= Reads;
          U.Writes |= Writes;
          return;
        }
      S.Uses.push_back({Tensor, Reads, Writes});
    };
    if (Op.Kind == OpKind::Alloc) {
      Note(Op.AllocTensor, false, false);
    } else if (Op.Kind == OpKind::Copy) {
      Note(Op.CopySrc.Tensor, true, false);
      Note(Op.CopyDst.Tensor, false, true);
    } else if (Op.Kind == OpKind::Call) {
      for (size_t I = 0, E = Op.Args.size(); I != E; ++I)
        Note(Op.Args[I].Tensor, true, Op.ArgIsWritten[I]);
    }
    // Range discovery order must match the historical per-position scan
    // over the module tensor table, i.e. ascending tensor id.
    std::sort(S.Uses.begin(), S.Uses.end(),
              [](const AllocScratch::Use &A, const AllocScratch::Use &B) {
                return A.Tensor < B.Tensor;
              });
  }

  void collectRanges() {
    // Tensors allocated inside flattened warpgroup context have one
    // physical instance per warpgroup; their footprint scales accordingly.
    S.WgExtent.assign(Module.tensors().size(), 0);
    for (const Operation *Op : S.Order) {
      if (Op->Kind != OpKind::Alloc)
        continue;
      int64_t Extent = 1;
      for (const EventDim &Dim : Op->VecContext)
        if (Dim.Proc == Processor::Warpgroup)
          Extent = Dim.Extent;
      S.WgExtent[Op->AllocTensor] = Extent;
    }

    S.Ranges.clear();
    S.RangeOf.assign(Module.tensors().size(), NoRange);
    for (size_t Pos = 0; Pos < S.Order.size(); ++Pos) {
      Operation &Op = *S.Order[Pos];
      gatherUses(Op);
      for (const AllocScratch::Use &U : S.Uses) {
        uint32_t Index = S.RangeOf[U.Tensor];
        if (Index == NoRange) {
          Index = static_cast<uint32_t>(S.Ranges.size());
          S.RangeOf[U.Tensor] = Index;
          const IRTensor &T = Module.tensor(U.Tensor);
          LiveRange R;
          R.Tensor = U.Tensor;
          int64_t Instances =
              S.WgExtent[U.Tensor] ? S.WgExtent[U.Tensor] : 1;
          R.Bytes =
              alignUp(T.Type.sizeBytes(), 128) * T.PipelineDepth * Instances;
          R.FirstUse = Pos;
          S.Ranges.push_back(R);
        }
        LiveRange &R = S.Ranges[Index];
        R.LastUse = Pos;
        if (U.Writes && !R.FirstWriter && Op.Kind != OpKind::Alloc)
          R.FirstWriter = &Op;
        if (U.Reads && Op.Kind != OpKind::Alloc)
          R.LastReader = &Op; // Latest read position wins.
      }
    }
  }

  /// First-fit offset assignment honoring the interference graph: tensors
  /// connected by an edge must not overlap in addresses; unconnected
  /// tensors are packed greedily and may alias.
  std::optional<SharedAllocation> tryAllocate(int64_t Budget) {
    std::vector<LiveRange> &Ranges = S.Ranges;
    size_t N = Ranges.size();
    // Sort by size descending for better packing.
    S.BySize.resize(N);
    for (size_t I = 0; I < N; ++I)
      S.BySize[I] = I;
    std::sort(S.BySize.begin(), S.BySize.end(), [&](size_t A, size_t B) {
      if (Ranges[A].Bytes != Ranges[B].Bytes)
        return Ranges[A].Bytes > Ranges[B].Bytes;
      return A < B;
    });

    S.Offsets.assign(N, -1);
    int64_t High = 0;
    for (size_t I : S.BySize) {
      // Collect forbidden intervals from already-placed neighbors.
      S.Forbidden.clear();
      for (size_t J = 0; J < N; ++J) {
        if (J == I || S.Offsets[J] < 0 || !S.Edge[I * N + J])
          continue;
        S.Forbidden.push_back({S.Offsets[J], S.Offsets[J] + Ranges[J].Bytes});
      }
      std::sort(S.Forbidden.begin(), S.Forbidden.end());
      int64_t Candidate = 0;
      for (const auto &[Lo, Hi] : S.Forbidden) {
        if (Candidate + Ranges[I].Bytes <= Lo)
          break;
        Candidate = std::max(Candidate, Hi);
      }
      if (Candidate + Ranges[I].Bytes > Budget)
        return std::nullopt;
      S.Offsets[I] = Candidate;
      High = std::max(High, Candidate + Ranges[I].Bytes);
    }

    SharedAllocation Result;
    Result.TotalBytes = High;
    for (size_t I = 0; I < N; ++I)
      Result.Entries.push_back({Ranges[I].Tensor, S.Offsets[I],
                                Ranges[I].Bytes});
    // Record aliased pairs (address overlap).
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J) {
        bool Overlap = S.Offsets[I] < S.Offsets[J] + Ranges[J].Bytes &&
                       S.Offsets[J] < S.Offsets[I] + Ranges[I].Bytes;
        if (Overlap)
          Result.AliasedPairs.push_back(
              {Ranges[I].Tensor, Ranges[J].Tensor});
      }
    return Result;
  }

  /// For each aliased pair, the later tensor's first writer must wait for
  /// the earlier tensor's last readers (write-after-read on the shared
  /// physical buffer).
  void insertWarEdges(const SharedAllocation &Alloc) {
    for (const auto &[TA, TB] : Alloc.AliasedPairs) {
      LiveRange &A = S.Ranges[S.RangeOf[TA]];
      LiveRange &B = S.Ranges[S.RangeOf[TB]];
      // Order by live range: earlier one's readers gate later's writer.
      LiveRange &Early = A.LastUse <= B.FirstUse ? A : B;
      LiveRange &Late = A.LastUse <= B.FirstUse ? B : A;
      if (!Late.FirstWriter || !Early.LastReader)
        continue;
      Operation *Reader = Early.LastReader;
      if (Reader->Result == InvalidEventId)
        continue;
      EventRef Ref;
      Ref.Event = Reader->Result;
      const EventType &Type = Module.event(Reader->Result).Type;
      for (const EventDim &Dim : Type.Dims) {
        (void)Dim;
        Ref.Indices.push_back(EventIndex::broadcast());
      }
      Late.FirstWriter->Preconds.push_back(std::move(Ref));
    }
  }

  IRModule &Module;
  const MachineModel &Machine;
  int64_t LimitBytes;
  AllocScratch &S;
};

} // namespace

ErrorOr<SharedAllocation>
cypress::runResourceAllocation(IRModule &Module, const MachineModel &Machine,
                               int64_t LimitBytes) {
  return Allocator(Module, Machine, LimitBytes).run();
}

std::unique_ptr<Pass> cypress::createResourceAllocationPass() {
  // The allocator's WAR edges may reference loop-interior events from
  // outside their scope until repair-event-scopes normalizes them, so
  // inter-stage verification is deferred to that pass (verifyAfter=false).
  return std::make_unique<FunctionPass>(
      "resource-allocation",
      [](PipelineState &State) -> ErrorOrVoid {
        // The tightest positive per-instance limit governs the whole
        // kernel: shared memory is one per-block arena, so the strictest
        // instance wins.
        int64_t Limit = 0;
        for (const TaskMapping &TM : State.Input->Mapping->instances())
          if (TM.SharedLimitBytes > 0)
            Limit = Limit ? std::min(Limit, TM.SharedLimitBytes)
                          : TM.SharedLimitBytes;
        ErrorOr<SharedAllocation> Alloc =
            runResourceAllocation(State.Module, *State.Input->Machine, Limit);
        if (!Alloc)
          return Alloc.diagnostic();
        State.Alloc = std::move(*Alloc);
        return ErrorOrVoid::success();
      },
      /*Verify=*/false);
}
