//===- ResourceAllocation.cpp - Shared-memory allocation -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 4 of the compiler (Section 4.2.4, Figure 11). Binds every
/// shared-memory tensor of a block to a physical byte range within the
/// user's per-block budget. The trade-off is memory pressure versus
/// parallelism: aliasing two logical tensors onto one buffer saves space
/// but serializes their live ranges.
///
/// The algorithm starts from the COMPLETE interference graph (every pair of
/// tensors interferes, i.e. nothing aliases) and relaxes: if an allocation
/// under the current graph exceeds the budget, one auxiliary edge — an edge
/// between tensors whose live ranges do NOT actually overlap — is removed
/// (largest combined size first) and allocation retries. Removing edges
/// only between non-overlapping tensors keeps the result correct; starting
/// complete keeps aliasing minimal. If even the true interference graph
/// does not fit, an out-of-memory diagnostic tells the user to adjust the
/// mapping.
///
/// For every aliased pair the pass inserts a write-after-read event edge:
/// the first writer of the later tensor waits on the last readers of the
/// earlier one, preventing reuse hazards.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <map>
#include <set>

using namespace cypress;

namespace {

/// Live-range info for one shared tensor within the block body, in
/// flattened op order.
struct LiveRange {
  TensorId Tensor = InvalidTensorId;
  int64_t Bytes = 0;     ///< Allocation size including pipeline buffers.
  size_t FirstUse = 0;   ///< Flattened position of the first def/use.
  size_t LastUse = 0;    ///< Flattened position of the last use.
  Operation *FirstWriter = nullptr;
  std::vector<Operation *> LastReaders;
};

/// Flattens the block body (including loop bodies) into a linear order used
/// for live-range construction. Ops inside loops conservatively extend live
/// ranges across the whole loop.
void linearize(IRBlock &Block, std::vector<Operation *> &Out) {
  for (std::unique_ptr<Operation> &Op : Block.Ops) {
    Out.push_back(Op.get());
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      linearize(Op->Body, Out);
  }
}

bool opUsesTensor(const Operation &Op, TensorId Tensor, bool &Reads,
                  bool &Writes) {
  Reads = Writes = false;
  if (Op.Kind == OpKind::Alloc)
    return Op.AllocTensor == Tensor;
  if (Op.Kind == OpKind::Copy) {
    Reads = Op.CopySrc.Tensor == Tensor;
    Writes = Op.CopyDst.Tensor == Tensor;
    return Reads || Writes;
  }
  if (Op.Kind == OpKind::Call) {
    for (size_t I = 0, E = Op.Args.size(); I != E; ++I) {
      if (Op.Args[I].Tensor != Tensor)
        continue;
      Reads = true; // Read-write args also read.
      Writes = Writes || Op.ArgIsWritten[I];
    }
    return Reads || Writes;
  }
  return false;
}

class Allocator {
public:
  Allocator(IRModule &Module, const MachineModel &Machine)
      : Module(Module), Machine(Machine) {}

  ErrorOr<SharedAllocation> run() {
    if (ErrorOrVoid Regs = checkRegisterPressure(); !Regs)
      return Regs.diagnostic();
    collectRanges();
    if (Ranges.empty())
      return SharedAllocation{};

    int64_t Budget = Machine.memory(Memory::Shared).CapacityBytes;
    // (A per-mapping budget override would arrive through the grid pfor's
    // instance; the machine capacity is the hard ceiling either way.)

    // Complete interference graph: every unordered pair starts present.
    // Auxiliary edges are those whose live ranges do not truly overlap.
    std::set<std::pair<size_t, size_t>> Edges;
    std::vector<std::pair<size_t, size_t>> Auxiliary;
    for (size_t I = 0; I < Ranges.size(); ++I) {
      for (size_t J = I + 1; J < Ranges.size(); ++J) {
        Edges.insert({I, J});
        bool Overlap = Ranges[I].FirstUse <= Ranges[J].LastUse &&
                       Ranges[J].FirstUse <= Ranges[I].LastUse;
        if (!Overlap)
          Auxiliary.push_back({I, J});
      }
    }
    // Remove the largest-combined-size auxiliary edges first: each removal
    // buys the most space, so total aliasing stays minimal.
    std::sort(Auxiliary.begin(), Auxiliary.end(),
              [&](const auto &A, const auto &B) {
                int64_t SA = Ranges[A.first].Bytes + Ranges[A.second].Bytes;
                int64_t SB = Ranges[B.first].Bytes + Ranges[B.second].Bytes;
                return SA > SB;
              });

    size_t NextRelax = 0;
    SharedAllocation Result;
    while (true) {
      std::optional<SharedAllocation> Attempt = tryAllocate(Edges, Budget);
      if (Attempt) {
        Result = std::move(*Attempt);
        break;
      }
      if (NextRelax == Auxiliary.size())
        return Diagnostic(formatString(
            "shared memory allocation exceeds the per-block budget of %lld "
            "bytes even with maximal aliasing; map fewer tensors to shared "
            "memory or reduce tile sizes",
            static_cast<long long>(Budget)));
      Edges.erase(Auxiliary[NextRelax++]);
    }

    insertWarEdges(Result);
    Result.buildIndex();
    return Result;
  }

private:
  /// Register-file capacity check (Section 3.4): tensors mapped to the
  /// register memory are distributed over the threads of their home
  /// processor level; the per-thread total must fit the 255-register CUDA
  /// limit. This is what forces large accumulators to be split across
  /// warpgroups.
  ErrorOrVoid checkRegisterPressure() {
    const int64_t BytesPerThread =
        Machine.memory(Memory::Register).CapacityBytes;
    // Live-range-insensitive sum: register tensors in our kernels are live
    // for essentially the whole block.
    int64_t PerThreadBytes = 0;
    std::set<TensorId> Counted;
    walkOps(Module.root(), [&](const Operation &Op) {
      auto Count = [&](TensorId Id) {
        const IRTensor &T = Module.tensor(Id);
        if (T.Mem != Memory::Register || Counted.count(Id))
          return;
        Counted.insert(Id);
        int64_t Threads = 1;
        switch (T.HomeProc) {
        case Processor::Warpgroup:
          Threads = H100Constants::ThreadsPerWarp *
                    H100Constants::WarpsPerWarpgroup;
          break;
        case Processor::Warp:
          Threads = H100Constants::ThreadsPerWarp;
          break;
        default:
          break;
        }
        PerThreadBytes += ceilDiv(T.Type.sizeBytes(), Threads);
      };
      if (Op.Kind == OpKind::Copy) {
        Count(Op.CopySrc.Tensor);
        Count(Op.CopyDst.Tensor);
      } else if (Op.Kind == OpKind::Call) {
        for (const TensorSlice &Slice : Op.Args)
          Count(Slice.Tensor);
      }
    });
    if (PerThreadBytes > BytesPerThread)
      return Diagnostic(formatString(
          "register allocation needs %lld bytes per thread but the machine "
          "provides %lld (255 registers); split accumulators across more "
          "warpgroups (Section 3.4)",
          static_cast<long long>(PerThreadBytes),
          static_cast<long long>(BytesPerThread)));
    return ErrorOrVoid::success();
  }

  void collectRanges() {
    std::vector<Operation *> Order;
    linearize(Module.root(), Order);

    // Tensors allocated inside flattened warpgroup context have one
    // physical instance per warpgroup; their footprint scales accordingly.
    std::map<TensorId, int64_t> WgExtent;
    walkOps(Module.root(), [&](const Operation &Op) {
      if (Op.Kind != OpKind::Alloc)
        return;
      int64_t Extent = 1;
      for (const EventDim &Dim : Op.VecContext)
        if (Dim.Proc == Processor::Warpgroup)
          Extent = Dim.Extent;
      WgExtent[Op.AllocTensor] = Extent;
    });

    std::map<TensorId, size_t> Seen;
    for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
      Operation &Op = *Order[Pos];
      for (const IRTensor &T : Module.tensors()) {
        if (T.Mem != Memory::Shared)
          continue;
        bool Reads = false, Writes = false;
        if (!opUsesTensor(Op, T.Id, Reads, Writes))
          continue;
        size_t Index;
        if (auto It = Seen.find(T.Id); It != Seen.end()) {
          Index = It->second;
        } else {
          Index = Ranges.size();
          Seen.emplace(T.Id, Index);
          LiveRange R;
          R.Tensor = T.Id;
          int64_t Instances = 1;
          if (auto WgIt = WgExtent.find(T.Id); WgIt != WgExtent.end())
            Instances = WgIt->second;
          R.Bytes =
              alignUp(T.Type.sizeBytes(), 128) * T.PipelineDepth * Instances;
          R.FirstUse = Pos;
          Ranges.push_back(R);
        }
        LiveRange &R = Ranges[Index];
        R.LastUse = Pos;
        if (Writes && !R.FirstWriter && Op.Kind != OpKind::Alloc)
          R.FirstWriter = &Op;
        if (Reads && Op.Kind != OpKind::Alloc) {
          // Maintain the set of current last readers (everything at the
          // final read position; simplest: keep the latest reader only,
          // plus collect all at the end).
          R.LastReaders.clear();
          R.LastReaders.push_back(&Op);
        }
      }
    }
  }

  /// First-fit offset assignment honoring the interference graph: tensors
  /// connected by an edge must not overlap in addresses; unconnected
  /// tensors are packed greedily and may alias.
  std::optional<SharedAllocation>
  tryAllocate(const std::set<std::pair<size_t, size_t>> &Edges,
              int64_t Budget) {
    // Sort by size descending for better packing.
    std::vector<size_t> BydSize(Ranges.size());
    for (size_t I = 0; I < BydSize.size(); ++I)
      BydSize[I] = I;
    std::sort(BydSize.begin(), BydSize.end(), [&](size_t A, size_t B) {
      if (Ranges[A].Bytes != Ranges[B].Bytes)
        return Ranges[A].Bytes > Ranges[B].Bytes;
      return A < B;
    });

    std::vector<int64_t> Offsets(Ranges.size(), -1);
    int64_t High = 0;
    for (size_t I : BydSize) {
      // Collect forbidden intervals from already-placed neighbors.
      std::vector<std::pair<int64_t, int64_t>> Forbidden;
      for (size_t J = 0; J < Ranges.size(); ++J) {
        if (J == I || Offsets[J] < 0)
          continue;
        auto Key = std::minmax(I, J);
        if (!Edges.count({Key.first, Key.second}))
          continue;
        Forbidden.push_back({Offsets[J], Offsets[J] + Ranges[J].Bytes});
      }
      std::sort(Forbidden.begin(), Forbidden.end());
      int64_t Candidate = 0;
      for (const auto &[Lo, Hi] : Forbidden) {
        if (Candidate + Ranges[I].Bytes <= Lo)
          break;
        Candidate = std::max(Candidate, Hi);
      }
      if (Candidate + Ranges[I].Bytes > Budget)
        return std::nullopt;
      Offsets[I] = Candidate;
      High = std::max(High, Candidate + Ranges[I].Bytes);
    }

    SharedAllocation Result;
    Result.TotalBytes = High;
    for (size_t I = 0; I < Ranges.size(); ++I)
      Result.Entries.push_back({Ranges[I].Tensor, Offsets[I],
                                Ranges[I].Bytes});
    // Record aliased pairs (address overlap).
    for (size_t I = 0; I < Ranges.size(); ++I)
      for (size_t J = I + 1; J < Ranges.size(); ++J) {
        bool Overlap = Offsets[I] < Offsets[J] + Ranges[J].Bytes &&
                       Offsets[J] < Offsets[I] + Ranges[I].Bytes;
        if (Overlap)
          Result.AliasedPairs.push_back(
              {Ranges[I].Tensor, Ranges[J].Tensor});
      }
    return Result;
  }

  /// For each aliased pair, the later tensor's first writer must wait for
  /// the earlier tensor's last readers (write-after-read on the shared
  /// physical buffer).
  void insertWarEdges(const SharedAllocation &Alloc) {
    std::map<TensorId, size_t> Index;
    for (size_t I = 0; I < Ranges.size(); ++I)
      Index[Ranges[I].Tensor] = I;
    for (const auto &[TA, TB] : Alloc.AliasedPairs) {
      LiveRange &A = Ranges[Index[TA]];
      LiveRange &B = Ranges[Index[TB]];
      // Order by live range: earlier one's readers gate later's writer.
      LiveRange &Early = A.LastUse <= B.FirstUse ? A : B;
      LiveRange &Late = A.LastUse <= B.FirstUse ? B : A;
      if (!Late.FirstWriter)
        continue;
      for (Operation *Reader : Early.LastReaders) {
        if (Reader->Result == InvalidEventId)
          continue;
        EventRef Ref;
        Ref.Event = Reader->Result;
        const EventType &Type = Module.event(Reader->Result).Type;
        for (const EventDim &Dim : Type.Dims) {
          (void)Dim;
          Ref.Indices.push_back(EventIndex::broadcast());
        }
        Late.FirstWriter->Preconds.push_back(std::move(Ref));
      }
    }
  }

  IRModule &Module;
  const MachineModel &Machine;
  std::vector<LiveRange> Ranges;
};

} // namespace

ErrorOr<SharedAllocation>
cypress::runResourceAllocation(IRModule &Module, const MachineModel &Machine) {
  return Allocator(Module, Machine).run();
}

std::unique_ptr<Pass> cypress::createResourceAllocationPass() {
  // The allocator's WAR edges may reference loop-interior events from
  // outside their scope until repair-event-scopes normalizes them, so
  // inter-stage verification is deferred to that pass (verifyAfter=false).
  return std::make_unique<FunctionPass>(
      "resource-allocation",
      [](PipelineState &State) -> ErrorOrVoid {
        ErrorOr<SharedAllocation> Alloc =
            runResourceAllocation(State.Module, *State.Input->Machine);
        if (!Alloc)
          return Alloc.diagnostic();
        State.Alloc = std::move(*Alloc);
        return ErrorOrVoid::success();
      },
      /*Verify=*/false);
}
