//===- Passes.h - Cypress compiler pass pipeline ---------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six-stage pipeline of Section 4.2 (Figure 6):
///
///   dependence analysis -> vectorization -> copy elimination ->
///   resource allocation -> warp specialization -> code generation
///
/// The first three capture information from the task-based representation
/// and lower away the tasking abstractions; resource allocation and warp
/// specialization optimize; the emitters (CudaEmitter / the simulator
/// backend in src/sim) replace events by concrete synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_COMPILER_PASSES_H
#define CYPRESS_COMPILER_PASSES_H

#include "frontend/Task.h"
#include "ir/IR.h"
#include "machine/Machine.h"
#include "mapping/Mapping.h"
#include "support/Cancel.h"
#include "support/Error.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace cypress {

/// Everything the compiler needs to lower one kernel.
struct CompileInput {
  const TaskRegistry *Registry = nullptr;
  const MappingSpec *Mapping = nullptr;
  const MachineModel *Machine = nullptr;
  /// Concrete types of the entrypoint's tensor arguments (shapes are static
  /// per kernel instantiation; the prototype compiles one kernel per
  /// problem size, like the paper's statically specialized programs).
  std::vector<TensorType> EntryArgTypes;
};

/// Stage 1 (Section 4.2.1): interprets the instantiated task tree under the
/// mapping, enforcing privileges, inserting copy-in/copy-out data movement,
/// and chaining events to encode all true and anti dependencies. Produces
/// the event IR of Figure 8.
ErrorOr<IRModule> runDependenceAnalysis(const CompileInput &Input);

/// Stage 2 (Section 4.2.2): flattens the implicit intra-block parallel
/// loops (warpgroup / warp / thread pfors), substituting induction variables
/// with processor indices and promoting events to indexed event arrays
/// (Figure 9). Block-level pfors remain: they become the kernel grid.
ErrorOrVoid runVectorization(IRModule &Module, const MachineModel &Machine);

/// Per-pass work counters, filled by passes that do pattern rewriting so
/// fixpoint behavior is observable (printed by bench_compile_time's
/// breakdown) instead of inferred from wall time.
struct PassCounters {
  /// Pattern rewrites actually applied (IR mutations).
  uint64_t Rewrites = 0;
  /// Worklist candidates popped and examined (including non-matches).
  uint64_t WorklistPops = 0;
};

/// Stage 3 (Section 4.2.3): removes the copies introduced by the
/// copy-in/copy-out discipline using the rewrite patterns of Figure 10
/// (copy propagation, spill elimination/hoisting, duplicate and self-copy
/// elimination, unmaterialized-tensor forwarding), preserving required
/// synchronization. Reports an error if a tensor mapped to the `none`
/// memory would have to be materialized (Section 3.3). Fills \p Counters
/// (when given) with rewrite/worklist statistics. \p Cancel (when given)
/// is polled at worklist-pop intervals: the pass stops between rewrites
/// and returns the checkpoint's structured diagnostic, leaving no partial
/// rewrite behind.
ErrorOrVoid runCopyElimination(IRModule &Module,
                               PassCounters *Counters = nullptr,
                               CancelCheck *Cancel = nullptr);

/// Restores event-scope well-formedness: references that point at events
/// defined inside loop bodies from outside those bodies (which both event
/// splicing and the allocator's WAR edges can create) are replaced by the
/// enclosing loop's completion event; duplicates are removed.
void repairEventScopes(IRModule &Module);

/// Assigns execution units to the surviving copies (TMA for global<->shared
/// bulk transfers, SIMT otherwise). Run after copy elimination, once the
/// real endpoints are known.
void assignExecUnits(IRModule &Module);

/// Result of shared-memory resource allocation for one block.
struct SharedAllocation {
  struct Entry {
    TensorId Tensor = InvalidTensorId;
    int64_t Offset = 0; ///< Byte offset of buffer 0.
    int64_t Bytes = 0;  ///< Total bytes including pipeline copies.
  };
  std::vector<Entry> Entries;
  int64_t TotalBytes = 0;
  /// Pairs of tensors that ended up aliased (share addresses) and therefore
  /// required write-after-read synchronization edges.
  std::vector<std::pair<TensorId, TensorId>> AliasedPairs;
  /// Tensor id -> Entries position, built by buildIndex(). The simulator
  /// calls find() on every buffer access, so lookups must not scan.
  std::unordered_map<TensorId, uint32_t> Index;

  /// (Re)builds Index from Entries. The allocator calls this before
  /// returning; call it again after mutating Entries by hand.
  void buildIndex() {
    Index.clear();
    Index.reserve(Entries.size());
    for (uint32_t I = 0; I < Entries.size(); ++I)
      Index.emplace(Entries[I].Tensor, I);
  }

  /// O(1) when the index is current; falls back to a linear scan for
  /// hand-assembled allocations that never called buildIndex().
  const Entry *find(TensorId Tensor) const {
    if (Index.size() == Entries.size()) {
      auto It = Index.find(Tensor);
      return It == Index.end() ? nullptr : &Entries[It->second];
    }
    for (const Entry &E : Entries)
      if (E.Tensor == Tensor)
        return &E;
    return nullptr;
  }
};

/// Stage 4 (Section 4.2.4): binds shared-memory tensors to physical offsets
/// within the per-block budget, starting from a complete interference graph
/// and removing auxiliary edges (allowing aliasing) only until the
/// allocation fits, then inserting WAR event edges between aliased users
/// (Figure 11). Fails with an out-of-memory diagnostic if even full
/// aliasing cannot fit. \p LimitBytes tightens the budget below the
/// machine's per-block capacity (TaskMapping::SharedLimitBytes — the
/// mapping-level occupancy knob); 0 means the full capacity.
ErrorOr<SharedAllocation> runResourceAllocation(IRModule &Module,
                                                const MachineModel &Machine,
                                                int64_t LimitBytes = 0);

/// Stage 5 (Section 4.2.5): for block bodies whose mapping requested warp
/// specialization, partitions the dependence graph into a data-movement
/// (DMA) agent and compute agents (Figure 12), and software-pipelines the
/// main sequential loop to the mapped depth: multi-buffers shared tensors,
/// rewrites buffer indices to (k mod PIPE), and inserts backward
/// anti-dependence edges so copies wait for the consumers of their
/// destination buffers from PIPE iterations ago.
ErrorOrVoid runWarpSpecialization(IRModule &Module);

/// Full pipeline through stage 5. The returned module is what the emitters
/// (CUDA text, simulator program) consume. This is a thin wrapper over
/// PassPipeline::defaultPipeline() (compiler/PassManager.h) — build a
/// pipeline explicitly to control verification, collect PipelineStats, or
/// register extra passes.
ErrorOr<IRModule> compileToIR(const CompileInput &Input,
                              SharedAllocation *AllocOut = nullptr);

/// Counters describing one CUDA emission: how many synchronization
/// constructs and op bodies the printer produced. Tests cross-check these
/// against the post-pipeline IR (e.g. one mbarrier per cross-agent event),
/// and bench_emit reports them next to emit wall time.
struct CudaEmitStats {
  int64_t Kernels = 0;         ///< __global__ kernels (one per grid pfor).
  int64_t Mbarriers = 0;       ///< Cross-agent events lowered to mbarriers.
  int64_t MbarrierWaits = 0;   ///< bar.wait sites (incl. phase-guarded).
  int64_t MbarrierArrives = 0; ///< bar.arrive sites.
  int64_t NamedBarriers = 0;   ///< Intra-compute warpgroup-broadcast syncs.
  int64_t TmaCopies = 0;       ///< cp_async_bulk_tensor sites.
  int64_t SimtCopies = 0;      ///< Plain SIMT copy sites.
  int64_t WgmmaCalls = 0;      ///< Tensor Core calls (commit/wait wrapped).
  int64_t SimtCalls = 0;       ///< SIMT leaf calls.
  int64_t SharedTensors = 0;   ///< Shared-memory prologue declarations.
  int64_t RegisterTensors = 0; ///< Register-fragment prologue declarations.
  int64_t Lines = 0;           ///< Total emitted lines.
};

/// Stage 6a: prints warp-specialized CUDA C++ matching the structure of
/// Figure 1b (mbarriers, TMA intrinsics, wgmma, named barriers). The text
/// is golden-tested; it is not compiled in this environment (see docs/DESIGN.md
/// substitutions). The second overload also fills \p Stats with emission
/// counters.
std::string emitCudaSource(const IRModule &Module,
                           const SharedAllocation &Alloc,
                           const std::string &KernelName);
std::string emitCudaSource(const IRModule &Module,
                           const SharedAllocation &Alloc,
                           const std::string &KernelName,
                           CudaEmitStats &Stats);

} // namespace cypress

#endif // CYPRESS_COMPILER_PASSES_H
