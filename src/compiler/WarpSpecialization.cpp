//===- WarpSpecialization.cpp - DMA/compute split and pipelining -----------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 5 of the compiler (Section 4.2.5, Figure 12). Two transformations:
///
/// 1. Warp specialization partitions the dependence graph of a block body
///    between a data-movement (DMA) warp and the compute warpgroups: all
///    TMA transfers are assigned to the DMA agent, everything else to the
///    compute agents. Dependence edges that cross the partition become
///    inter-warp barriers during code generation — the prod/cons mbarriers
///    of Figure 1b.
///
/// 2. Software pipelining of the main sequential loop to the mapped depth:
///    multi-buffered shared tensors (allocated with PipelineDepth > 1) are
///    hoisted out of the loop, their uses indexed with (k mod PIPE), and
///    backward anti-dependence edges are inserted so an asynchronous copy
///    only begins once the consumers of its destination buffer from PIPE
///    iterations ago have completed (the dashed edges of Figure 12). With
///    warp specialization, the DMA warp thereby runs PIPE iterations ahead
///    of the compute warps, hiding global-memory latency.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"

using namespace cypress;

namespace {

/// Pooled per-thread tables indexed by tensor id. The tensor table is
/// small, so dense masks beat node-allocating sets, and the scratch keeps
/// its capacity across the compiles of a tuner sweep.
struct WsScratch {
  std::vector<uint8_t> Buffered;        ///< PipelineDepth > 1 shared tiles.
  std::vector<uint8_t> Shared;          ///< All shared tiles of the loop.
  std::vector<Operation *> LastReader;  ///< Last body reader per tensor.
};

WsScratch &wsScratch() {
  thread_local WsScratch Scratch;
  return Scratch;
}

class WarpSpecializer {
public:
  explicit WarpSpecializer(IRModule &Module)
      : Module(Module), S(wsScratch()) {}

  ErrorOrVoid run() {
    processBlock(Module.root(), /*InWarpSpec=*/false);
    if (Failure)
      return *Failure;
    return ErrorOrVoid::success();
  }

private:
  void processBlock(IRBlock &Block, bool InWarpSpec) {
    for (size_t I = 0; I < Block.Ops.size(); ++I) {
      if (Block.Ops[I]->Kind == OpKind::For) {
        // Even unpipelined loops (depth 1) need the backward WAR edges:
        // an iteration's copies reuse the previous iteration's buffers.
        // Hoisting buffer allocations shifts the loop right; track it.
        I += pipelineLoop(Block, I);
      }
      Operation &Op = *Block.Ops[I];
      switch (Op.Kind) {
      case OpKind::PFor:
        processBlock(Op.Body, Op.WarpSpecialize || InWarpSpec);
        break;
      case OpKind::For:
        processBlock(Op.Body, InWarpSpec);
        break;
      default:
        break;
      }
      if (InWarpSpec)
        assignAgent(Op);
    }
  }

  /// DMA agent = TMA transfers (both loads into shared memory and the
  /// final store of staged results back to global memory); everything else
  /// belongs to the compute warps. Alternative partitions of the graph are
  /// possible (the paper notes this); this is the one CUTLASS-style main
  /// loops use.
  void assignAgent(Operation &Op) {
    Op.DmaAgent = Op.Kind == OpKind::Copy && Op.Unit == ExecUnit::TMA;
    if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor)
      for (std::unique_ptr<Operation> &Inner : Op.Body.Ops)
        assignAgent(*Inner);
  }

  /// Pipelines the loop at Parent.Ops[LoopIndex]; returns how many hoisted
  /// allocations were inserted before it (the loop's new position shift).
  size_t pipelineLoop(IRBlock &Parent, size_t LoopIndex) {
    // 1. Identify the shared tiles of the loop body. Multi-buffered ones
    //    (PipelineDepth > 1) are hoisted and rotate through their buffers;
    //    depth-1 tiles stay in place but still need the WAR edge below.
    S.Buffered.assign(Module.tensors().size(), 0);
    S.Shared.assign(Module.tensors().size(), 0);
    bool AnyShared = false;
    for (std::unique_ptr<Operation> &Op : Parent.Ops[LoopIndex]->Body.Ops)
      if (Op->Kind == OpKind::Alloc) {
        IRTensor &T = Module.tensor(Op->AllocTensor);
        if (T.Mem != Memory::Shared)
          continue;
        S.Shared[T.Id] = 1;
        AnyShared = true;
        if (T.PipelineDepth > 1)
          S.Buffered[T.Id] = 1;
      }
    if (!AnyShared)
      return 0;

    // 2. Hoist their allocations before the loop: one allocation of
    //    PipelineDepth buffers lives across all iterations. (Insertion may
    //    reallocate Parent.Ops, so the loop op is re-fetched by index.)
    size_t Hoisted = 0;
    for (size_t I = 0; I < Parent.Ops[LoopIndex + Hoisted]->Body.Ops.size();) {
      IRBlock &Body = Parent.Ops[LoopIndex + Hoisted]->Body;
      Operation &Op = *Body.Ops[I];
      if (Op.Kind == OpKind::Alloc && S.Buffered[Op.AllocTensor]) {
        std::unique_ptr<Operation> Alloc = std::move(Body.Ops[I]);
        Body.Ops.erase(Body.Ops.begin() + static_cast<long>(I));
        Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(LoopIndex),
                          std::move(Alloc));
        ++Hoisted;
        continue;
      }
      ++I;
    }
    Operation &Loop = *Parent.Ops[LoopIndex + Hoisted];
    IRBlock &Body = Loop.Body;

    // 3. Rewrite uses: slices of buffered tensors select buffer
    //    (k mod PIPE), like `sA[_, _, k % PIPE]` in Figure 1b. The depth
    //    is per tensor (IRTensor::PipelineDepth): tiles usually inherit the
    //    loop's mapped depth, but a TaskMapping::ArgPipeline override may
    //    rotate one stream through fewer or more buffers than another.
    ScalarExpr Var = ScalarExpr::loopVar(Loop.LoopVar, Loop.LoopVarName);
    rewriteBufferIndices(Body, Var);

    // 4. Backward anti-dependence edges: a copy writing buffer X at
    //    iteration k reuses the physical buffer of iteration k - PIPE, so
    //    it must wait for X's consumers from that iteration (vacuously
    //    satisfied for k < PIPE). This is the `wait(cons[k % PIPE])` of
    //    Figure 1b. One body pass records the last reader of every shared
    //    tile; the writer loop then looks it up instead of rescanning.
    S.LastReader.assign(Module.tensors().size(), nullptr);
    for (std::unique_ptr<Operation> &Op : Body.Ops) {
      if (Op->Result == InvalidEventId)
        continue;
      if (Op->Kind == OpKind::Copy) {
        TensorId Src = Op->CopySrc.Tensor;
        if (S.Shared[Src])
          S.LastReader[Src] = Op.get();
      } else if (Op->Kind == OpKind::Call) {
        for (const TensorSlice &Slice : Op->Args)
          if (S.Shared[Slice.Tensor])
            S.LastReader[Slice.Tensor] = Op.get();
      }
    }
    for (std::unique_ptr<Operation> &Writer : Body.Ops) {
      if (Writer->Kind != OpKind::Copy)
        continue;
      TensorId Dst = Writer->CopyDst.Tensor;
      if (!S.Shared[Dst])
        continue;
      Operation *LastReader = S.LastReader[Dst];
      if (!LastReader)
        continue;
      EventRef Ref;
      Ref.Event = LastReader->Result;
      const EventType &Type = Module.event(LastReader->Result).Type;
      for (size_t D = 0, E = Type.Dims.size(); D != E; ++D)
        Ref.Indices.push_back(EventIndex::broadcast());
      // Depth-1 tiles reuse their single buffer every iteration; deeper
      // pipelines reuse their own tensor's PIPE iterations back.
      Ref.IterLag =
          S.Buffered[Dst] ? Module.tensor(Dst).PipelineDepth : 1;
      Writer->Preconds.push_back(std::move(Ref));
    }
    return Hoisted;
  }

  /// Stamps `k % PIPE` buffer indices on every slice of a multi-buffered
  /// tile (PIPE = the tile's own PipelineDepth; scalar exprs are interned,
  /// so tiles sharing a depth share one index expression), recursing into
  /// nested loop bodies (direct recursion: this runs per pipelined loop,
  /// so std::function dispatch per op adds up).
  void rewriteBufferIndices(IRBlock &Block, const ScalarExpr &Var) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      auto Fix = [&](TensorSlice &Slice) {
        if (S.Buffered[Slice.Tensor])
          Slice.BufferIndex = Var.mod(
              ScalarExpr(Module.tensor(Slice.Tensor).PipelineDepth));
      };
      if (Op->Kind == OpKind::Copy) {
        Fix(Op->CopySrc);
        Fix(Op->CopyDst);
      } else if (Op->Kind == OpKind::Call) {
        for (TensorSlice &Slice : Op->Args)
          Fix(Slice);
      }
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
        rewriteBufferIndices(Op->Body, Var);
    }
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  IRModule &Module;
  WsScratch &S;
  std::optional<Diagnostic> Failure;
};

} // namespace

ErrorOrVoid cypress::runWarpSpecialization(IRModule &Module) {
  return WarpSpecializer(Module).run();
}

std::unique_ptr<Pass> cypress::createWarpSpecializationPass() {
  return std::make_unique<FunctionPass>(
      "warp-specialization",
      [](PipelineState &State) { return runWarpSpecialization(State.Module); });
}
