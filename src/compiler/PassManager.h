//===- PassManager.h - Instrumented compiler pass pipeline -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style pass management for the six-stage pipeline of Section 4.2.
/// Each lowering stage (and the two repair helpers) is a registered Pass
/// over a shared PipelineState; PassPipeline runs them in order, verifies
/// the IR between stages, collects per-pass wall-time and IR-size
/// statistics into PipelineStats, and can dump the IR after every pass
/// (set CYPRESS_PRINT_IR_AFTER_ALL, or call setPrintIRAfterAll).
///
/// `compileToIR` in Passes.h is a thin wrapper over
/// `PassPipeline::defaultPipeline()`, so existing callers keep working;
/// new infrastructure (sessions, autotuning search, alternate backends)
/// should build pipelines explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_COMPILER_PASSMANAGER_H
#define CYPRESS_COMPILER_PASSMANAGER_H

#include "compiler/Passes.h"
#include "ir/IR.h"
#include "support/Cancel.h"
#include "support/Error.h"

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace cypress {

/// Everything a pass may read or rewrite. Dependence analysis creates
/// Module from Input; resource allocation fills Alloc; every other pass
/// transforms Module in place.
struct PipelineState {
  const CompileInput *Input = nullptr;
  IRModule Module;
  SharedAllocation Alloc;
  /// Work counters for the pass currently running; reset by the pipeline
  /// before each pass and copied into that pass's PassStat afterwards.
  PassCounters Counters;
  /// The request's cancellation checkpoint, or nullptr when the run is not
  /// cancellable. Long-running passes (copy elimination's worklist) poll
  /// it between rewrites and return its diagnostic to stop early; the
  /// pipeline itself checks between passes.
  CancelCheck *Cancel = nullptr;
};

/// Per-pass measurements taken by PassPipeline::run.
struct PassStat {
  std::string Name;
  double Micros = 0.0;      ///< Wall time of the pass itself.
  double VerifyMicros = 0.0;///< Wall time of the post-pass verification.
  size_t OpsAfter = 0;      ///< Operations in the module after the pass.
  size_t EventsAfter = 0;   ///< Events in the module after the pass.
  size_t TensorsAfter = 0;  ///< Tensors in the module after the pass.
  uint64_t Rewrites = 0;    ///< Pattern rewrites the pass applied.
  uint64_t WorklistPops = 0;///< Worklist candidates the pass examined.
  uint64_t HeapAllocs = 0;  ///< Heap allocations during the pass (only
                            ///< when the pipeline's CountAllocs opt-in is
                            ///< set and the AllocCounter hook is live;
                            ///< zero otherwise).
};

/// Statistics for one full pipeline run.
struct PipelineStats {
  std::vector<PassStat> Passes;
  double TotalMicros = 0.0;

  /// The stat row for \p Name, or nullptr if that pass did not run.
  const PassStat *pass(const std::string &Name) const {
    for (const PassStat &S : Passes)
      if (S.Name == Name)
        return &S;
    return nullptr;
  }
};

/// One registered pipeline stage.
class Pass {
public:
  virtual ~Pass();

  /// Stable kebab-case identifier used in stats, diagnostics, and dumps.
  virtual const char *name() const = 0;

  virtual ErrorOrVoid run(PipelineState &State) = 0;

  /// False for passes whose output intentionally violates an IR invariant
  /// that a later registered pass restores (resource allocation's WAR edges
  /// may cross loop scopes until repair-event-scopes runs).
  virtual bool verifyAfter() const { return true; }
};

/// A pass defined by a name and a callable; enough for every builtin stage
/// and convenient for test-injected passes.
class FunctionPass : public Pass {
public:
  using RunFn = std::function<ErrorOrVoid(PipelineState &)>;

  FunctionPass(std::string Name, RunFn Fn, bool Verify = true)
      : PassName(std::move(Name)), Fn(std::move(Fn)), Verify(Verify) {}

  const char *name() const override { return PassName.c_str(); }
  ErrorOrVoid run(PipelineState &State) override { return Fn(State); }
  bool verifyAfter() const override { return Verify; }

private:
  std::string PassName;
  RunFn Fn;
  bool Verify;
};

/// An ordered sequence of passes plus the instrumentation around them.
class PassPipeline {
public:
  /// Honors CYPRESS_PRINT_IR_AFTER_ALL at construction time.
  PassPipeline();

  PassPipeline(PassPipeline &&) = default;
  PassPipeline &operator=(PassPipeline &&) = default;

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  size_t size() const { return Passes.size(); }
  const Pass &pass(size_t I) const { return *Passes[I]; }

  /// Run verifyModule after every pass (on by default; turn off for
  /// release/serving builds where throughput matters).
  void setVerifyEachPass(bool Enable) { VerifyEachPass = Enable; }
  bool verifyEachPass() const { return VerifyEachPass; }

  /// Record each pass's heap-allocation count into PassStat::HeapAllocs
  /// (see support/AllocCounter.h). Off by default: counting enables a
  /// global allocator hook for the duration of run(), which perturbs other
  /// threads' allocation costs, so only measurement harnesses
  /// (bench_compile_time, the steady-state tests) should turn it on.
  void setCountAllocs(bool Enable) { CountAllocs = Enable; }
  bool countAllocs() const { return CountAllocs; }

  /// Dump the IR to the print stream after every pass. The environment
  /// variable CYPRESS_PRINT_IR_AFTER_ALL enables this too.
  void setPrintIRAfterAll(bool Enable) { PrintIRAfterAll = Enable; }
  /// Where dumps go; defaults to stderr.
  void setPrintStream(std::ostream &OS) { PrintStream = &OS; }

  /// Runs every pass in order. On success returns the final module and
  /// fills \p AllocOut / \p StatsOut when non-null; on failure returns the
  /// failing pass's diagnostic, tagged with that pass's name (see
  /// Diagnostic::passName). StatsOut is filled with the passes that did run
  /// even on failure.
  ///
  /// When \p Cancel is active the pipeline checkpoints before every pass
  /// (and copy elimination checkpoints inside its worklist), returning a
  /// structured Code::DeadlineExceeded / Code::Cancelled diagnostic as
  /// soon as one fires; a nullptr Cancel is completely inert. Pass
  /// diagnostics that carry no explicit Code are classified Infeasible on
  /// the way out: the pipeline is a pure function of its input, so its
  /// own rejections are deterministic and safe to memoize — unlike
  /// checkpoint exits and injected faults, which keep transient codes.
  ErrorOr<IRModule> run(const CompileInput &Input,
                        SharedAllocation *AllocOut = nullptr,
                        PipelineStats *StatsOut = nullptr,
                        const Cancellation *Cancel = nullptr) const;

  /// The Section 4.2 lowering pipeline: the five IR-to-IR stages with the
  /// two repair helpers registered between them, in the order compileToIR
  /// has always run them. Stage 6 (code generation) consumes the result
  /// through emitCudaSource / the simulator and is not an IR pass.
  static PassPipeline defaultPipeline();

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  bool VerifyEachPass = true;
  bool CountAllocs = false;
  bool PrintIRAfterAll = false;
  std::ostream *PrintStream = nullptr; ///< nullptr = stderr.
};

//===----------------------------------------------------------------------===//
// Builtin pass factories (defined next to each stage's implementation)
//===----------------------------------------------------------------------===//

std::unique_ptr<Pass> createDependenceAnalysisPass();
std::unique_ptr<Pass> createVectorizationPass();
std::unique_ptr<Pass> createCopyEliminationPass();
std::unique_ptr<Pass> createAssignExecUnitsPass();
std::unique_ptr<Pass> createResourceAllocationPass();
std::unique_ptr<Pass> createRepairEventScopesPass();
std::unique_ptr<Pass> createWarpSpecializationPass();

} // namespace cypress

#endif // CYPRESS_COMPILER_PASSMANAGER_H
