//===- DependenceAnalysis.cpp - Task tree to event IR ----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 1 of the compiler (Section 4.2.1). Performs an in-order traversal
/// of the instantiated task tree, starting at the entrypoint of the mapping
/// specification. The traversal maintains an event version for each tensor
/// in scope; task launches follow the four-step copy-in/copy-out discipline:
///
///   (1) fresh allocation per tensor argument in the mapped memory,
///   (2) copy-in for read arguments (with recorded preconditions),
///   (3) recursive traversal of the selected callee variant,
///   (4) copy-out for written arguments.
///
/// Sequential (srange) and parallel (prange) groups lower to for/pfor ops;
/// loop bodies perform dependence tracking in a fresh scope, and the loop
/// operation itself collects the external dependencies at entry, exactly as
/// in the worked example of Figure 8.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace cypress;

namespace {

/// How a loop body used an external tensor (drives the loop op's preconds
/// and the outer version update at loop exit).
struct ExternalUse {
  bool Read = false;
  bool Written = false;
};

/// Per-tensor dependence state within one scope: the last writer plus all
/// readers since (for write-after-read anti-dependencies), scope-locality,
/// and the external-use summary for loop wiring — one flat record instead
/// of three hashed tables.
struct TensorState {
  TensorId Tensor = InvalidTensorId;
  bool HasWrite = false;
  EventRef LastWrite;
  std::vector<EventRef> Reads;
  bool Local = false;   ///< Allocated in this scope.
  bool ExtRead = false; ///< Read of a tensor from an enclosing scope.
  bool ExtWritten = false;
  bool Active = false;  ///< Slot in use (slots pool across scopes).
};

/// One dependence-tracking scope. The root scope covers the entrypoint
/// body; every for/pfor body pushes a child scope. A scope touches a
/// handful of tensors, so the table is a flat slot vector with linear
/// lookup — no hashing, and slot capacity (including each slot's Reads
/// buffer) pools across scopes and compiles via the thread-local scope
/// stack. Every place whose output depends on slot order (finishLoop's
/// dependence wiring) re-sorts by tensor id first.
struct Scope {
  std::vector<TensorState> Slots;
  size_t Size = 0; ///< Active prefix of Slots.

  void reset() {
    for (size_t I = 0; I < Size; ++I)
      Slots[I].Active = false;
    Size = 0;
  }

  TensorState *find(TensorId Tensor) {
    for (size_t I = 0; I < Size; ++I)
      if (Slots[I].Tensor == Tensor)
        return &Slots[I];
    return nullptr;
  }

  TensorState &get(TensorId Tensor) {
    if (TensorState *Have = find(Tensor))
      return *Have;
    if (Size == Slots.size())
      Slots.emplace_back();
    TensorState &Slot = Slots[Size++];
    // Reuse the pooled slot in place: reset fields, keep Reads capacity.
    Slot.Tensor = Tensor;
    Slot.HasWrite = false;
    Slot.LastWrite = EventRef();
    Slot.Reads.clear();
    Slot.Local = false;
    Slot.ExtRead = false;
    Slot.ExtWritten = false;
    Slot.Active = true;
    return Slot;
  }
};

/// The pooled scope stack: scopes (and their slots' buffers) persist
/// across compiles on one thread, so steady-state traversal allocates
/// nothing for dependence tracking.
struct ScopeStack {
  std::deque<Scope> Scopes; ///< Deque: references survive deeper pushes.
  size_t Depth = 0;

  Scope &push() {
    if (Depth == Scopes.size())
      Scopes.emplace_back();
    Scope &S = Scopes[Depth++];
    S.reset();
    return S;
  }
  void pop() {
    assert(Depth > 0 && "scope stack underflow");
    Scopes[--Depth].reset();
  }
  Scope &top() {
    assert(Depth > 0 && "no active scope");
    return Scopes[Depth - 1];
  }
};

ScopeStack &scopeStack() {
  thread_local ScopeStack Stack;
  return Stack;
}

class Analysis;

/// The InnerContext implementation handed to inner task bodies. One exists
/// per task instance being traversed; handles are indices into its tables.
class AnalysisContext : public InnerContext {
public:
  AnalysisContext(Analysis &A, const TaskMapping &Instance,
                  const TaskVariant &Variant,
                  std::vector<ScalarExpr> Scalars = {})
      : A(A), Instance(Instance), Variant(Variant),
        Scalars(std::move(Scalars)) {}

  const std::vector<ScalarExpr> &scalarArgs() override { return Scalars; }

  const Shape &shapeOf(TensorHandle Handle) override;
  int64_t tunable(const std::string &Name) override;
  Processor tunableProc(const std::string &Name) override;
  TensorHandle makeTensor(const std::string &Name, Shape Dims,
                          ElementType Element) override;
  PartitionHandle partitionByBlocks(TensorHandle Tensor,
                                    Shape TileShape) override;
  PartitionHandle partitionByMma(TensorHandle Tensor, MmaInstruction Instr,
                                 Processor Proc, MmaOperand Operand) override;
  TensorHandle index(PartitionHandle Part,
                     std::vector<ScalarExpr> Color) override;
  void launch(const std::string &Task, std::vector<TensorHandle> Args,
              std::vector<ScalarExpr> Scalars) override;
  void srange(ScalarExpr Extent,
              const std::function<void(ScalarExpr)> &Body) override;
  void prange(std::vector<ScalarExpr> Extents,
              const std::function<void(std::vector<ScalarExpr>)> &Body)
      override;

  TensorHandle bindParam(TensorSlice Slice, Privilege Priv) {
    Handles.push_back(std::move(Slice));
    HandlePrivs.push_back(Priv);
    return {static_cast<uint32_t>(Handles.size() - 1)};
  }

  const TensorSlice &slice(TensorHandle Handle) const {
    assert(Handle.Index < Handles.size() && "invalid tensor handle");
    return Handles[Handle.Index];
  }
  Privilege priv(TensorHandle Handle) const {
    assert(Handle.Index < HandlePrivs.size() && "invalid tensor handle");
    return HandlePrivs[Handle.Index];
  }

private:
  Analysis &A;
  const TaskMapping &Instance;
  const TaskVariant &Variant;
  std::vector<TensorSlice> Handles;
  std::vector<Privilege> HandlePrivs;
  std::vector<PartitionId> Parts;
  std::vector<Privilege> PartPrivs;
  std::vector<ScalarExpr> Scalars; ///< Launch-time scalar arguments.
  Shape ShapeCache; ///< Backing storage for shapeOf's returned reference.
};

/// The traversal engine: owns the module under construction, the scope
/// stack, and the current emission block.
class Analysis {
public:
  Analysis(const CompileInput &Input) : Input(Input) {}

  ErrorOr<IRModule> run();

  //===--- Emission helpers (used by AnalysisContext) --------------------===//

  IRModule &module() { return Module; }
  const CompileInput &input() const { return Input; }

  /// Records a fatal diagnostic; traversal unwinds at the next check.
  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }
  bool failed() const { return Failure.has_value(); }

  IRBlock &block() { return *Blocks.back(); }

  EventId freshEvent(EventType Type = {}) {
    // "e%u" fits in the SSO buffer; assemble it in place so the traversal
    // never touches the allocator for event names.
    char Buf[16];
    unsigned Len = formatTag(Buf, 'e', ++EventCounter);
    return Module.addEvent(std::string(Buf, Len), std::move(Type));
  }

  /// Writes "<Prefix><Value>" into \p Buf (no terminator); returns length.
  static unsigned formatTag(char (&Buf)[16], char Prefix, unsigned Value) {
    char Digits[12];
    unsigned N = 0;
    do {
      Digits[N++] = static_cast<char>('0' + Value % 10);
      Value /= 10;
    } while (Value);
    Buf[0] = Prefix;
    for (unsigned I = 0; I < N; ++I)
      Buf[1 + I] = Digits[N - 1 - I];
    return 1 + N;
  }

  Operation &emit(OpKind Kind) {
    auto Op = std::make_unique<Operation>();
    Op->Kind = Kind;
    Op->Id = Module.freshOpId();
    Operation &Ref = *Op;
    block().Ops.push_back(std::move(Op));
    return Ref;
  }

  //===--- Scope / version machinery -------------------------------------===//

  Scope &scope() { return Stack.top(); }

  void noteLocal(TensorId Tensor) { scope().get(Tensor).Local = true; }

  /// Dependencies for reading \p Tensor in the current scope appended onto
  /// \p Deps (pooled by the caller); records the external use when the
  /// tensor lives further out (the enclosing loop op then carries the
  /// dependence, per Figure 8's for-loop wiring).
  void appendReadDeps(TensorId Tensor, std::vector<EventRef> &Deps) {
    Scope &S = scope();
    TensorState *State = S.find(Tensor);
    if (!State || !State->Local)
      S.get(Tensor).ExtRead = true;
    // get() may have created the slot; re-find for the dependence check.
    State = S.find(Tensor);
    if (State && State->HasWrite)
      Deps.push_back(State->LastWrite);
  }

  /// Dependencies for writing \p Tensor (RAW on the last writer plus WAR on
  /// all readers since), appended onto \p Deps.
  void appendWriteDeps(TensorId Tensor, std::vector<EventRef> &Deps) {
    Scope &S = scope();
    TensorState *State = S.find(Tensor);
    if (!State || !State->Local)
      S.get(Tensor).ExtWritten = true;
    State = S.find(Tensor);
    if (!State)
      return;
    if (State->HasWrite)
      Deps.push_back(State->LastWrite);
    for (const EventRef &R : State->Reads)
      Deps.push_back(R);
  }

  /// Pooled scratch for dependence lists; cleared by each user before use.
  std::vector<EventRef> DepScratch;

  /// Per-compile dispatch memo (see recordLaunch); pointers into the const
  /// MappingSpec/TaskRegistry stay valid for the whole traversal.
  struct DispatchEntry {
    const TaskMapping *Caller;
    std::string Task;
    const TaskMapping *Child;
    const TaskVariant *Variant;
  };
  std::vector<DispatchEntry> DispatchCache;

  /// Pooled buffer for assembling dotted tensor names.
  std::string NameBuf;

  void recordRead(TensorId Tensor, EventRef Event) {
    scope().get(Tensor).Reads.push_back(std::move(Event));
  }

  void recordWrite(TensorId Tensor, EventRef Event) {
    TensorState &State = scope().get(Tensor);
    State.HasWrite = true;
    State.LastWrite = std::move(Event);
    State.Reads.clear();
  }

  /// Runs \p Body inside a fresh scope whose ops are emitted into \p Into;
  /// pushes the external-use summary for the loop op's dependence wiring
  /// onto the pooled ExternalStack in first-use order (finishLoop re-sorts
  /// by tensor id) and returns the base index of this loop's entries.
  size_t withLoopScope(IRBlock &Into, const std::function<void()> &Body) {
    Scope &Inner = Stack.push();
    Blocks.push_back(&Into);
    Body();
    Blocks.pop_back();
    size_t Base = ExternalStack.size();
    for (size_t I = 0; I < Inner.Size; ++I) {
      const TensorState &State = Inner.Slots[I];
      if (State.ExtRead || State.ExtWritten)
        ExternalStack.emplace_back(
            State.Tensor, ExternalUse{State.ExtRead, State.ExtWritten});
    }
    Stack.pop();
    return Base;
  }

  /// Wires a finished loop op into the enclosing scope: collects entry
  /// dependencies for every external tensor the body touched (the
  /// ExternalStack entries from \p ExternalBase on, consumed here) and
  /// updates outer versions with the loop's completion event. Iterates in
  /// tensor-id order (the traversal order has none) so the loop's
  /// precondition list — which prints in the IR and feeds the verifier's
  /// diagnostics — stays deterministic.
  void finishLoop(Operation &Loop, size_t ExternalBase, EventRef LoopDone) {
    auto Begin = ExternalStack.begin() + static_cast<long>(ExternalBase);
    std::sort(Begin, ExternalStack.end(),
              [](const std::pair<TensorId, ExternalUse> &A,
                 const std::pair<TensorId, ExternalUse> &B) {
                return A.first < B.first;
              });
    for (size_t I = ExternalBase; I < ExternalStack.size(); ++I) {
      const auto [Tensor, Use] = ExternalStack[I];
      // appendReadDeps/appendWriteDeps also propagate the external use
      // outward, so grand-parent loops see it at their own exits.
      DepScratch.clear();
      if (Use.Written)
        appendWriteDeps(Tensor, DepScratch);
      else
        appendReadDeps(Tensor, DepScratch);
      for (EventRef &Dep : DepScratch)
        addPrecond(Loop, std::move(Dep));
      if (Use.Written)
        recordWrite(Tensor, LoopDone);
      else
        recordRead(Tensor, LoopDone);
    }
    ExternalStack.resize(ExternalBase);
  }

  /// Pooled loop-external summaries; stack discipline across nested loops.
  std::vector<std::pair<TensorId, ExternalUse>> ExternalStack;

  static void addPrecond(Operation &Op, EventRef Ref) {
    if (Op.Preconds.empty())
      Op.Preconds.reserve(4); // Typical fan-in; avoids doubling churn.
    for (const EventRef &Existing : Op.Preconds)
      if (Existing.Event == Ref.Event && Existing.IterLag == Ref.IterLag &&
          Existing.Indices.size() == Ref.Indices.size()) {
        bool Same = true;
        for (size_t I = 0; I != Ref.Indices.size(); ++I) {
          if (Existing.Indices[I].isBroadcast() !=
              Ref.Indices[I].isBroadcast() ||
              (!Ref.Indices[I].isBroadcast() &&
               !Existing.Indices[I].Index.equals(Ref.Indices[I].Index))) {
            Same = false;
            break;
          }
        }
        if (Same)
          return;
      }
    Op.Preconds.push_back(std::move(Ref));
  }

  //===--- Launch lowering -------------------------------------------------===//

  void recordLaunch(AnalysisContext &Caller, const TaskMapping &CallerInst,
                    const std::string &Task, std::vector<TensorHandle> Args,
                    std::vector<ScalarExpr> Scalars);

  /// Extent of the innermost pipelined enclosing loop (1 when none).
  int64_t currentPipelineDepth() const { return PipelineStack.back(); }
  void pushPipeline(int64_t Depth) { PipelineStack.push_back(Depth); }
  void popPipeline() { PipelineStack.pop_back(); }

  /// Processor of the child instances launched inside the current prange
  /// body (discovered at the first launch), plus whether those instances
  /// requested warp specialization of their bodies.
  std::optional<Processor> PrangeChildProc;
  bool PrangeChildWarpSpec = false;

  unsigned TempCounter = 0;

private:
  const CompileInput &Input;
  IRModule Module;
  ScopeStack &Stack = scopeStack();
  std::vector<IRBlock *> Blocks;
  std::vector<int64_t> PipelineStack{1};
  unsigned EventCounter = 0;
  std::optional<Diagnostic> Failure;

public:
  std::optional<Diagnostic> takeFailure() { return std::move(Failure); }
};

//===----------------------------------------------------------------------===//
// AnalysisContext implementation
//===----------------------------------------------------------------------===//

const Shape &AnalysisContext::shapeOf(TensorHandle Handle) {
  static Shape Empty;
  if (Handle.Index >= Handles.size()) {
    A.fail("invalid tensor handle passed to shapeOf");
    return Empty;
  }
  // Shapes are concrete: slice shapes of symbolic colors are the uniform
  // tile shape (see IRModule::sliceShape).
  ShapeCache = A.module().sliceShape(Handles[Handle.Index]);
  return ShapeCache;
}

int64_t AnalysisContext::tunable(const std::string &Name) {
  auto It = Instance.Tunables.find(Name);
  if (It == Instance.Tunables.end()) {
    A.fail(formatString("instance %s does not bind tunable %s",
                        Instance.Instance.c_str(), Name.c_str()));
    return 1;
  }
  return It->second;
}

Processor AnalysisContext::tunableProc(const std::string &Name) {
  auto It = Instance.ProcTunables.find(Name);
  if (It == Instance.ProcTunables.end()) {
    A.fail(formatString("instance %s does not bind processor tunable %s",
                        Instance.Instance.c_str(), Name.c_str()));
    return Processor::Thread;
  }
  return It->second;
}

TensorHandle AnalysisContext::makeTensor(const std::string &Name, Shape Dims,
                                         ElementType Element) {
  Memory Mem = Memory::None;
  if (auto It = Instance.TempMems.find(Name); It != Instance.TempMems.end())
    Mem = It->second;
  TensorId Id = A.module().addTensor(
      Instance.Instance + "." + Name, TensorType{std::move(Dims), Element},
      Mem);
  IRTensor &T = A.module().tensor(Id);
  T.HomeProc = Instance.Proc;
  T.PipelineDepth =
      (Mem == Memory::Shared) ? A.currentPipelineDepth() : 1;
  Operation &Alloc = A.emit(OpKind::Alloc);
  Alloc.AllocTensor = Id;
  Alloc.ExecProc = Instance.Proc;
  A.noteLocal(Id);
  return bindParam(TensorSlice::whole(Id), Privilege::ReadWrite);
}

PartitionHandle AnalysisContext::partitionByBlocks(TensorHandle Tensor,
                                                   Shape TileShape) {
  const TensorSlice &Base = slice(Tensor);
  Shape ParentShape = A.module().sliceShape(Base);
  ErrorOr<Partition> Spec = Partition::byBlocks(ParentShape, TileShape);
  if (!Spec) {
    A.fail(Spec.diagnostic().message());
    return {};
  }
  PartitionId Id = A.module().addPartition(Base, std::move(*Spec));
  Operation &Op = A.emit(OpKind::MakePart);
  Op.Part = Id;
  Op.ExecProc = Instance.Proc;
  Parts.push_back(Id);
  PartPrivs.push_back(priv(Tensor));
  return {static_cast<uint32_t>(Parts.size() - 1)};
}

PartitionHandle AnalysisContext::partitionByMma(TensorHandle Tensor,
                                                MmaInstruction Instr,
                                                Processor Proc,
                                                MmaOperand Operand) {
  const TensorSlice &Base = slice(Tensor);
  Shape ParentShape = A.module().sliceShape(Base);
  MmaGranularity Granularity = Proc == Processor::Warp
                                   ? MmaGranularity::Warp
                                   : MmaGranularity::Thread;
  ErrorOr<Partition> Spec =
      Partition::byMma(ParentShape, Instr, Granularity, Operand);
  if (!Spec) {
    A.fail(Spec.diagnostic().message());
    return {};
  }
  PartitionId Id = A.module().addPartition(Base, std::move(*Spec));
  Operation &Op = A.emit(OpKind::MakePart);
  Op.Part = Id;
  Op.ExecProc = Instance.Proc;
  Parts.push_back(Id);
  PartPrivs.push_back(priv(Tensor));
  return {static_cast<uint32_t>(Parts.size() - 1)};
}

TensorHandle AnalysisContext::index(PartitionHandle Part,
                                    std::vector<ScalarExpr> Color) {
  if (Part.Index >= Parts.size()) {
    A.fail("invalid partition handle passed to index");
    return {};
  }
  PartitionId Id = Parts[Part.Index];
  const IRPartition &P = A.module().partition(Id);
  TensorSlice Slice =
      TensorSlice::piece(P.Base.Tensor, Id, std::move(Color));
  Handles.push_back(std::move(Slice));
  HandlePrivs.push_back(PartPrivs[Part.Index]);
  return {static_cast<uint32_t>(Handles.size() - 1)};
}

void AnalysisContext::launch(const std::string &Task,
                             std::vector<TensorHandle> Args,
                             std::vector<ScalarExpr> Scalars) {
  A.recordLaunch(*this, Instance, Task, std::move(Args), std::move(Scalars));
}

void AnalysisContext::srange(ScalarExpr Extent,
                             const std::function<void(ScalarExpr)> &Body) {
  if (A.failed())
    return;
  Operation &Loop = A.emit(OpKind::For);
  LoopVarId Var = A.module().freshLoopVar();
  Loop.LoopVar = Var;
  char Tag[16];
  Loop.LoopVarName.assign(Tag, Analysis::formatTag(Tag, 'k', Var));
  Loop.LoopLo = ScalarExpr(0);
  Loop.LoopHi = Extent;
  Loop.ExecProc = Instance.Proc;
  Loop.ForPipeline = Instance.PipelineDepth;
  Loop.Result = A.freshEvent();
  A.module().event(Loop.Result).Producer = Loop.Id;

  A.pushPipeline(Instance.PipelineDepth);
  size_t External = A.withLoopScope(
      Loop.Body,
      [&] { Body(ScalarExpr::loopVar(Var, Loop.LoopVarName)); });
  A.popPipeline();

  if (!Loop.Body.Ops.empty()) {
    // Yield the completion of the final operation with a result event.
    for (auto It = Loop.Body.Ops.rbegin(); It != Loop.Body.Ops.rend(); ++It) {
      if ((*It)->Result != InvalidEventId) {
        Loop.Body.Yield = EventRef::unit((*It)->Result);
        break;
      }
    }
  }
  A.finishLoop(Loop, External, EventRef::unit(Loop.Result));
}

void AnalysisContext::prange(
    std::vector<ScalarExpr> Extents,
    const std::function<void(std::vector<ScalarExpr>)> &Body) {
  if (A.failed())
    return;
  // Linearize the (possibly multi-dimensional) domain; all extents must be
  // static (they derive from shapes and tunables).
  int64_t Total = 1;
  std::vector<int64_t> Dims;
  for (const ScalarExpr &E : Extents) {
    if (!E.isConstant()) {
      A.fail("prange extents must be statically evaluable");
      return;
    }
    Dims.push_back(E.constantValue());
    Total *= E.constantValue();
  }

  Operation &Loop = A.emit(OpKind::PFor);
  LoopVarId Var = A.module().freshLoopVar();
  Loop.LoopVar = Var;
  char Tag[16];
  Loop.LoopVarName.assign(Tag, Analysis::formatTag(Tag, 'i', Var));
  Loop.LoopLo = ScalarExpr(0);
  Loop.LoopHi = ScalarExpr(Total);
  Loop.ExecProc = Instance.Proc;

  ScalarExpr LinearVar = ScalarExpr::loopVar(Var, Loop.LoopVarName);
  std::vector<ScalarExpr> Indices;
  {
    // Row-major delinearization of the linear induction variable.
    ScalarExpr Rest = LinearVar;
    std::vector<ScalarExpr> Rev;
    for (unsigned I = Dims.size(); I-- > 0;) {
      if (I == 0) {
        Rev.push_back(Rest);
      } else {
        Rev.push_back(Rest.mod(ScalarExpr(Dims[I])));
        Rest = Rest.floorDiv(ScalarExpr(Dims[I]));
      }
    }
    Indices.assign(Rev.rbegin(), Rev.rend());
  }

  std::optional<Processor> SavedChild = A.PrangeChildProc;
  bool SavedWarpSpec = A.PrangeChildWarpSpec;
  A.PrangeChildProc.reset();
  A.PrangeChildWarpSpec = false;
  size_t External = A.withLoopScope(Loop.Body, [&] { Body(Indices); });
  if (!A.PrangeChildProc) {
    A.fail("prange body launched no tasks; cannot infer processor level");
    return;
  }
  Loop.PForProc = *A.PrangeChildProc;
  if (Loop.PForProc == Processor::Block && A.PrangeChildWarpSpec)
    Loop.WarpSpecialize = true;
  A.PrangeChildProc = SavedChild;
  A.PrangeChildWarpSpec = SavedWarpSpec;

  // A Block-level pfor is the kernel grid; record whether its child
  // instances asked for warp specialization (discovered during launches).
  EventType Type;
  Type.Dims.push_back({Total, Loop.PForProc});
  Loop.Result = A.freshEvent(Type);
  A.module().event(Loop.Result).Producer = Loop.Id;

  if (!Loop.Body.Ops.empty()) {
    for (auto It = Loop.Body.Ops.rbegin(); It != Loop.Body.Ops.rend(); ++It) {
      if ((*It)->Result != InvalidEventId) {
        Loop.Body.Yield = EventRef::unit((*It)->Result);
        break;
      }
    }
  }
  EventRef Done;
  Done.Event = Loop.Result;
  Done.Indices.push_back(EventIndex::broadcast());
  A.finishLoop(Loop, External, Done);
}

//===----------------------------------------------------------------------===//
// Launch lowering
//===----------------------------------------------------------------------===//

void Analysis::recordLaunch(AnalysisContext &Caller,
                            const TaskMapping &CallerInst,
                            const std::string &Task,
                            std::vector<TensorHandle> Args,
                            std::vector<ScalarExpr> Scalars) {
  if (failed())
    return;
  const TaskRegistry &Registry = *Input.Registry;
  const MappingSpec &Mapping = *Input.Mapping;

  // Dispatch + instance + variant resolution is a pure function of the
  // (calling instance, task) pair, and launches repeat the same few pairs
  // every loop iteration: memoize per compile (a short linear scan beats
  // the rule walk plus two string-keyed map lookups).
  const TaskMapping *ChildPtr = nullptr;
  const TaskVariant *VariantPtr = nullptr;
  for (const DispatchEntry &Entry : DispatchCache)
    if (Entry.Caller == &CallerInst && Entry.Task == Task) {
      ChildPtr = Entry.Child;
      VariantPtr = Entry.Variant;
      break;
    }
  if (!ChildPtr) {
    ErrorOr<std::string> ChildName =
        Mapping.dispatch(Registry, CallerInst, Task);
    if (!ChildName) {
      fail(ChildName.diagnostic().message());
      return;
    }
    ChildPtr = &Mapping.instance(*ChildName);
    VariantPtr = &Registry.variant(ChildPtr->Variant);
    DispatchCache.push_back({&CallerInst, Task, ChildPtr, VariantPtr});
  }
  const TaskMapping &Child = *ChildPtr;
  const TaskVariant &Variant = *VariantPtr;

  if (Variant.Params.size() != Args.size()) {
    fail(formatString("launch of %s passes %zu tensors but variant %s takes "
                      "%zu",
                      Task.c_str(), Args.size(), Child.Variant.c_str(),
                      Variant.Params.size()));
    return;
  }

  // Record the child processor for enclosing prange inference.
  if (!PrangeChildProc)
    PrangeChildProc = Child.Proc;
  PrangeChildWarpSpec |= Child.WarpSpecialize;

  // Privilege containment: a launch may not request privileges on a tensor
  // beyond what the caller holds (Section 3.2).
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    Privilege Parent = Caller.priv(Args[I]);
    Privilege Request = Variant.Params[I].Priv;
    if (!privilegeAllows(Parent, Request)) {
      fail(formatString(
          "launch of %s requests %s on parameter %s but caller holds %s",
          Task.c_str(), privilegeName(Request),
          Variant.Params[I].Name.c_str(), privilegeName(Parent)));
      return;
    }
  }

  // Step 1: fresh allocations in the memories the mapping requests.
  std::vector<TensorId> Fresh(Args.size());
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    const TensorSlice &Arg = Caller.slice(Args[I]);
    Shape ArgShape = Module.sliceShape(Arg);
    ElementType Elem = Module.tensor(Arg.Tensor).Type.Element;
    // Assemble "<instance>.<param>.<n>" in the pooled buffer: one exact
    // allocation for the stored name instead of a chain of temporaries.
    NameBuf.assign(Child.Instance);
    NameBuf += '.';
    NameBuf += Variant.Params[I].Name;
    char Tag[16];
    NameBuf.append(Tag, formatTag(Tag, '.', ++TempCounter));
    TensorId Id = Module.addTensor(NameBuf, TensorType{ArgShape, Elem},
                                   Child.Mems[I]);
    IRTensor &T = Module.tensor(Id);
    T.HomeProc = Child.Proc;
    T.PipelineDepth =
        (Child.Mems[I] == Memory::Shared) ? currentPipelineDepth() : 1;
    // The mapping may pin this parameter's multi-buffering depth (the
    // per-tensor pipeline axis); absent entries keep the loop's depth.
    if (Child.Mems[I] == Memory::Shared && !Child.ArgPipeline.empty())
      if (auto It = Child.ArgPipeline.find(Variant.Params[I].Name);
          It != Child.ArgPipeline.end())
        T.PipelineDepth = It->second;
    for (const std::string &Simt : Child.SimtCopyParams)
      if (Simt == Variant.Params[I].Name)
        T.ForceSimtCopy = true;
    Operation &Alloc = emit(OpKind::Alloc);
    Alloc.AllocTensor = Id;
    Alloc.ExecProc = Child.Proc;
    noteLocal(Id);
    Fresh[I] = Id;
  }

  // Step 2: copy-ins for read parameters.
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (!privilegeReads(Variant.Params[I].Priv))
      continue;
    const TensorSlice &Arg = Caller.slice(Args[I]);
    Operation &Copy = emit(OpKind::Copy);
    Copy.CopySrc = Arg;
    Copy.CopyDst = TensorSlice::whole(Fresh[I]);
    Copy.ExecProc = CallerInst.Proc;
    Copy.LaunchBoundary = true;
    Copy.BoundaryTensor = Fresh[I];
    Copy.Result = freshEvent();
    Module.event(Copy.Result).Producer = Copy.Id;
    DepScratch.clear();
    appendReadDeps(Arg.Tensor, DepScratch);
    for (EventRef &Dep : DepScratch)
      addPrecond(Copy, std::move(Dep));
    recordRead(Arg.Tensor, EventRef::unit(Copy.Result));
    recordWrite(Fresh[I], EventRef::unit(Copy.Result));
  }

  // Step 3: traverse the callee.
  if (Variant.Kind == VariantKind::Leaf) {
    Operation &Call = emit(OpKind::Call);
    Call.Callee = Variant.Leaf.Function;
    Call.Unit = Variant.Leaf.Unit;
    Call.ExecProc = Child.Proc;
    Call.ScalarArgs = std::move(Scalars);
    std::vector<Shape> ArgShapes;
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      Call.Args.push_back(TensorSlice::whole(Fresh[I]));
      Call.ArgIsWritten.push_back(privilegeWrites(Variant.Params[I].Priv));
      ArgShapes.push_back(Module.tensor(Fresh[I]).Type.Dims);
    }
    Call.Flops = Variant.Leaf.Flops ? Variant.Leaf.Flops(ArgShapes) : 0.0;
    Call.Result = freshEvent();
    Module.event(Call.Result).Producer = Call.Id;
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      DepScratch.clear();
      if (privilegeWrites(Variant.Params[I].Priv))
        appendWriteDeps(Fresh[I], DepScratch);
      else
        appendReadDeps(Fresh[I], DepScratch);
      for (EventRef &Dep : DepScratch)
        addPrecond(Call, std::move(Dep));
    }
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      if (privilegeWrites(Variant.Params[I].Priv))
        recordWrite(Fresh[I], EventRef::unit(Call.Result));
      else
        recordRead(Fresh[I], EventRef::unit(Call.Result));
    }
  } else {
    AnalysisContext ChildCtx(*this, Child, Variant, std::move(Scalars));
    std::vector<TensorHandle> Params;
    for (size_t I = 0, E = Args.size(); I != E; ++I)
      Params.push_back(ChildCtx.bindParam(TensorSlice::whole(Fresh[I]),
                                          Variant.Params[I].Priv));
    Variant.Body(ChildCtx, Params);
    if (failed())
      return;
  }

  // Step 4: copy-outs for written parameters.
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (!privilegeWrites(Variant.Params[I].Priv))
      continue;
    const TensorSlice &Arg = Caller.slice(Args[I]);
    Operation &Copy = emit(OpKind::Copy);
    Copy.CopySrc = TensorSlice::whole(Fresh[I]);
    Copy.CopyDst = Arg;
    Copy.ExecProc = CallerInst.Proc;
    Copy.LaunchBoundary = true;
    Copy.BoundaryTensor = Fresh[I];
    Copy.Result = freshEvent();
    Module.event(Copy.Result).Producer = Copy.Id;
    DepScratch.clear();
    appendReadDeps(Fresh[I], DepScratch);
    appendWriteDeps(Arg.Tensor, DepScratch);
    for (EventRef &Dep : DepScratch)
      addPrecond(Copy, std::move(Dep));
    recordRead(Fresh[I], EventRef::unit(Copy.Result));
    recordWrite(Arg.Tensor, EventRef::unit(Copy.Result));
  }
}

//===----------------------------------------------------------------------===//
// Entry
//===----------------------------------------------------------------------===//

ErrorOr<IRModule> Analysis::run() {
  const TaskRegistry &Registry = *Input.Registry;
  const MappingSpec &Mapping = *Input.Mapping;

  if (ErrorOrVoid Valid = Mapping.validate(Registry, *Input.Machine); !Valid)
    return Valid.diagnostic();

  const TaskMapping &Entry = Mapping.entrypoint();
  const TaskVariant &Variant = Registry.variant(Entry.Variant);
  if (Variant.Kind != VariantKind::Inner)
    return Diagnostic("entrypoint variant must be an inner task");
  if (Variant.Params.size() != Input.EntryArgTypes.size())
    return Diagnostic(formatString(
        "entrypoint takes %zu tensors but %zu argument types were supplied",
        Variant.Params.size(), Input.EntryArgTypes.size()));

  Stack.push();
  Blocks.push_back(&Module.root());

  AnalysisContext Ctx(*this, Entry, Variant);
  std::vector<TensorHandle> Params;
  for (size_t I = 0, E = Variant.Params.size(); I != E; ++I) {
    Memory Mem = Entry.Mems[I];
    TensorId Id = Module.addTensor(Variant.Params[I].Name,
                                   Input.EntryArgTypes[I], Mem);
    IRTensor &T = Module.tensor(Id);
    T.HomeProc = Entry.Proc;
    T.IsEntryArg = true;
    Module.entryArgs().push_back(Id);
    noteLocal(Id);
    Params.push_back(Ctx.bindParam(TensorSlice::whole(Id),
                                   Variant.Params[I].Priv));
  }

  Variant.Body(Ctx, Params);

  Blocks.pop_back();
  Stack.pop();

  if (std::optional<Diagnostic> Failed = takeFailure())
    return *Failed;

  if (ErrorOrVoid Valid = verifyModule(Module); !Valid)
    return Valid.diagnostic();
  return std::move(Module);
}

} // namespace

ErrorOr<IRModule> cypress::runDependenceAnalysis(const CompileInput &Input) {
  assert(Input.Registry && Input.Mapping && Input.Machine &&
         "compile input missing components");
  Analysis A(Input);
  return A.run();
}

std::unique_ptr<Pass> cypress::createDependenceAnalysisPass() {
  return std::make_unique<FunctionPass>(
      "dependence-analysis", [](PipelineState &State) -> ErrorOrVoid {
        ErrorOr<IRModule> Module = runDependenceAnalysis(*State.Input);
        if (!Module)
          return Module.diagnostic();
        State.Module = std::move(*Module);
        return ErrorOrVoid::success();
      });
}
