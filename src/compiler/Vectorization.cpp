//===- Vectorization.cpp - Flattening implicit parallel loops --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 2 of the compiler (Section 4.2.2, Figure 9). Flattens the pfor
/// loops that are implicit in the GPU programming model — loops over
/// warpgroups, warps, and threads — starting from the deepest nesting:
///
///  * the induction variable is substituted with the processor index,
///  * events defined in the body gain a leading (extent, proc) dimension,
///  * point-wise uses inside the body prepend the processor index,
///  * uses of the loop's own completion event are redirected to the yielded
///    event, prepending the original indexing (so `e2[:]` becomes `e4[:]`
///    and `e2[i]` becomes `e4[i, ...]`).
///
/// Point-wise dependencies between the independent iterations are thereby
/// preserved, while post-loop synchronization stays encoded as broadcasted
/// indexing. Block-level pfors are left intact: they are the kernel grid.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace cypress;

namespace {

/// Replaces every occurrence of loop variable \p Var with \p Replacement in
/// an operation's expressions (slices, scalar args, loop bounds, event
/// indices).
void substituteVar(Operation &Op, LoopVarId Var,
                   const ScalarExpr &Replacement) {
  auto FixSlice = [&](TensorSlice &Slice) {
    for (ScalarExpr &Color : Slice.Color)
      Color = Color.substituteLoopVar(Var, Replacement);
    Slice.BufferIndex = Slice.BufferIndex.substituteLoopVar(Var, Replacement);
  };
  FixSlice(Op.CopySrc);
  FixSlice(Op.CopyDst);
  for (TensorSlice &Slice : Op.Args)
    FixSlice(Slice);
  for (ScalarExpr &Expr : Op.ScalarArgs)
    Expr = Expr.substituteLoopVar(Var, Replacement);
  Op.LoopLo = Op.LoopLo.substituteLoopVar(Var, Replacement);
  Op.LoopHi = Op.LoopHi.substituteLoopVar(Var, Replacement);
  for (EventRef &Ref : Op.Preconds)
    for (EventIndex &Index : Ref.Indices)
      if (!Index.isBroadcast())
        Index.Index = Index.Index.substituteLoopVar(Var, Replacement);
  if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) {
    for (std::unique_ptr<Operation> &Inner : Op.Body.Ops)
      substituteVar(*Inner, Var, Replacement);
    if (Op.Body.Yield)
      for (EventIndex &Index : Op.Body.Yield->Indices)
        if (!Index.isBroadcast())
          Index.Index = Index.Index.substituteLoopVar(Var, Replacement);
  }
}

/// Substitutes the induction variable inside partition bases too:
/// partitions created in a flattened body may select pieces with the loop
/// variable in their base-slice colors.
void substituteInPartitions(IRModule &Module, LoopVarId Var,
                            const ScalarExpr &Replacement) {
  for (IRPartition &P : Module.partitions()) {
    for (ScalarExpr &Color : P.Base.Color)
      Color = Color.substituteLoopVar(Var, Replacement);
    P.Base.BufferIndex = P.Base.BufferIndex.substituteLoopVar(Var, Replacement);
  }
}

/// Pooled per-thread buffers: flattening is called once per implicit pfor
/// per compile, and tuner sweeps compile back to back.
struct VectScratch {
  std::vector<EventId> BodyEvents;
  std::vector<EventDim> Inner;
};

VectScratch &vectScratch() {
  thread_local VectScratch Scratch;
  return Scratch;
}

class Vectorizer {
public:
  Vectorizer(IRModule &Module, const MachineModel &Machine)
      : Module(Module), Machine(Machine), S(vectScratch()) {}

  ErrorOrVoid run() {
    std::vector<EventDim> Context;
    processBlock(Module.root(), Context);
    if (Failure)
      return *Failure;
    return ErrorOrVoid::success();
  }

private:
  /// True if pfors at this level flatten away (intra-block parallelism).
  bool isImplicitLevel(Processor Proc) const {
    return Proc == Processor::Warpgroup || Proc == Processor::Warp ||
           Proc == Processor::Thread;
  }

  /// Recursively vectorizes \p Block. \p Context is the flattened parallel
  /// context accumulated so far (outermost first); it is mutated push/pop
  /// style around recursion instead of copied per block.
  void processBlock(IRBlock &Block, std::vector<EventDim> &Context) {
    // Deepest-first: vectorize inside loop bodies before flattening here.
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Op->Kind == OpKind::For) {
        processBlock(Op->Body, Context);
      } else if (Op->Kind == OpKind::PFor) {
        bool Pushed = isImplicitLevel(Op->PForProc);
        if (Pushed)
          Context.push_back(
              {Op->LoopHi.constantValue() - Op->LoopLo.constantValue(),
               Op->PForProc});
        processBlock(Op->Body, Context);
        if (Pushed)
          Context.pop_back();
      }
    }

    // Now flatten the implicit pfors at this level, in place.
    for (size_t I = 0; I < Block.Ops.size();) {
      Operation &Op = *Block.Ops[I];
      if (Op.Kind != OpKind::PFor || !isImplicitLevel(Op.PForProc)) {
        if (!Context.empty() && Op.Kind != OpKind::PFor)
          appendContext(Op, Context);
        ++I;
        continue;
      }
      flattenPFor(Block, I, Context);
      // Re-visit index I: the first moved op now sits there.
    }
  }

  void appendContext(Operation &Op, const std::vector<EventDim> &Context) {
    // Record the enclosing flattened dims once (outermost first); avoid
    // double-stamping ops already annotated via nested processing.
    if (Op.VecContext.empty())
      Op.VecContext.assign(Context.begin(), Context.end());
  }

  /// Flattens the pfor at Block.Ops[Index].
  void flattenPFor(IRBlock &Block, size_t Index,
                   const std::vector<EventDim> &Context) {
    std::unique_ptr<Operation> Loop = std::move(Block.Ops[Index]);
    Block.Ops.erase(Block.Ops.begin() + static_cast<long>(Index));

    if (!Loop->LoopLo.isConstant() || !Loop->LoopHi.isConstant()) {
      fail("pfor bounds over implicit processor levels must be static");
      return;
    }
    int64_t Extent = Loop->LoopHi.constantValue() -
                     Loop->LoopLo.constantValue();
    EventDim NewDim{Extent, Loop->PForProc};
    ScalarExpr ProcVar = ScalarExpr::procIndex(Loop->PForProc);

    // Events defined directly in the body (loop results of nested loops
    // included — nested implicit pfors were flattened already, so their
    // events now live directly in this body). Sorted vector: the member
    // tests below are the flattening loop's innermost operation.
    std::vector<EventId> &BodyEvents = S.BodyEvents;
    BodyEvents.clear();
    for (std::unique_ptr<Operation> &Op : Loop->Body.Ops)
      if (Op->Result != InvalidEventId)
        BodyEvents.push_back(Op->Result);
    std::sort(BodyEvents.begin(), BodyEvents.end());

    // Promote event types: prepend the new dimension.
    for (EventId E : BodyEvents) {
      EventType &Type = Module.event(E).Type;
      Type.Dims.insert(Type.Dims.begin(), NewDim);
    }

    // Capture the yield target before rewriting body refs.
    std::optional<EventRef> Yield = Loop->Body.Yield;

    // Rewrite uses inside the body: substitute the induction variable with
    // the processor index and prepend the point-wise index on refs to
    // promoted events.
    for (std::unique_ptr<Operation> &Op : Loop->Body.Ops) {
      substituteVar(*Op, Loop->LoopVar, ProcVar);
      prependIndexOnRefs(*Op, BodyEvents,
                         EventIndex::expr(ProcVar));
    }
    substituteInPartitions(Module, Loop->LoopVar, ProcVar);

    // Uses of the loop's completion event elsewhere redirect to the yielded
    // event; uses of promoted body events cannot appear outside by SSA
    // scoping, but the yield ref's event was promoted, so the original
    // outer index takes the new leading slot. SSA scoping also bounds the
    // search: references to the pfor's completion event can only exist in
    // its containing block (including nested bodies and that block's own
    // yield), so the redirect walks Block, not the whole module.
    if (Loop->Result != InvalidEventId) {
      if (!Yield) {
        // Empty loops: drop refs to the loop event entirely.
        dropRefsTo(Block, Loop->Result);
      } else {
        redirectLoopEvent(Block, Loop->Result, *Yield);
        if (Block.Yield)
          redirectRef(*Block.Yield, Loop->Result, *Yield);
      }
    }

    // Splice the body into the parent, annotating the flattened context.
    // Annotate first, then insert the whole body with one tail shift
    // (per-op inserts would shift the parent's tail once per body op).
    std::vector<EventDim> &Inner = S.Inner;
    Inner.assign(Context.begin(), Context.end());
    Inner.push_back(NewDim);
    for (std::unique_ptr<Operation> &Op : Loop->Body.Ops) {
      // Entry ops (no intra-body precondition) inherit the loop's
      // preconditions.
      if (opHasNoPrecondIn(*Op, BodyEvents))
        for (const EventRef &Pre : Loop->Preconds)
          Op->Preconds.push_back(Pre);
      if (Op->Kind == OpKind::PFor) {
        // Remaining pfors are grid-level only; they cannot appear under an
        // implicit level.
        fail("block-level pfor nested inside an implicit parallel loop");
        return;
      }
      Op->VecContext.assign(Inner.begin(), Inner.end());
      if (Op->Kind == OpKind::For)
        stampContext(Op->Body, Inner);
    }
    Block.Ops.insert(Block.Ops.begin() + static_cast<long>(Index),
                     std::make_move_iterator(Loop->Body.Ops.begin()),
                     std::make_move_iterator(Loop->Body.Ops.end()));
  }

  void stampContext(IRBlock &Block, const std::vector<EventDim> &Context) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      Op->VecContext.assign(Context.begin(), Context.end());
      if (Op->Kind == OpKind::For)
        stampContext(Op->Body, Context);
    }
  }

  static bool contains(const std::vector<EventId> &Events, EventId Event) {
    return std::binary_search(Events.begin(), Events.end(), Event);
  }

  static bool opHasNoPrecondIn(const Operation &Op,
                               const std::vector<EventId> &Events) {
    for (const EventRef &Ref : Op.Preconds)
      if (contains(Events, Ref.Event))
        return false;
    return true;
  }

  /// Prepends \p Index to every reference to an event in \p Events within
  /// one operation (preconditions, nested bodies, yields).
  void prependIndexOnRefs(Operation &Op, const std::vector<EventId> &Events,
                          const EventIndex &Index) {
    for (EventRef &Ref : Op.Preconds)
      if (contains(Events, Ref.Event))
        Ref.Indices.insert(Ref.Indices.begin(), Index);
    if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) {
      for (std::unique_ptr<Operation> &Inner : Op.Body.Ops)
        prependIndexOnRefs(*Inner, Events, Index);
      if (Op.Body.Yield && contains(Events, Op.Body.Yield->Event))
        Op.Body.Yield->Indices.insert(Op.Body.Yield->Indices.begin(), Index);
    }
  }

  /// Redirects every use of \p LoopEvent to \p Yield, prepending the
  /// original outer index to the yield's indices.
  void redirectLoopEvent(IRBlock &Block, EventId LoopEvent,
                         const EventRef &Yield) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      for (EventRef &Ref : Op->Preconds)
        redirectRef(Ref, LoopEvent, Yield);
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        redirectLoopEvent(Op->Body, LoopEvent, Yield);
        if (Op->Body.Yield)
          redirectRef(*Op->Body.Yield, LoopEvent, Yield);
      }
    }
  }

  static void redirectRef(EventRef &Ref, EventId LoopEvent,
                          const EventRef &Yield) {
    if (Ref.Event != LoopEvent)
      return;
    assert(Ref.Indices.size() == 1 &&
           "loop completion events have exactly one dimension at flatten");
    EventIndex Outer = Ref.Indices[0];
    EventRef New = Yield;
    New.Indices.insert(New.Indices.begin(), Outer);
    New.IterLag = Ref.IterLag;
    Ref = std::move(New);
  }

  void dropRefsTo(IRBlock &Block, EventId Event) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      std::vector<EventRef> Kept;
      for (EventRef &Ref : Op->Preconds)
        if (Ref.Event != Event)
          Kept.push_back(std::move(Ref));
      Op->Preconds = std::move(Kept);
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
        dropRefsTo(Op->Body, Event);
    }
    if (Block.Yield && Block.Yield->Event == Event)
      Block.Yield.reset();
  }

  void fail(std::string Message) {
    if (!Failure)
      Failure = Diagnostic(std::move(Message));
  }

  IRModule &Module;
  [[maybe_unused]] const MachineModel &Machine;
  VectScratch &S;
  std::optional<Diagnostic> Failure;
};

} // namespace

ErrorOrVoid cypress::runVectorization(IRModule &Module,
                                      const MachineModel &Machine) {
  return Vectorizer(Module, Machine).run();
}

std::unique_ptr<Pass> cypress::createVectorizationPass() {
  return std::make_unique<FunctionPass>(
      "vectorization", [](PipelineState &State) {
        return runVectorization(State.Module, *State.Input->Machine);
      });
}
