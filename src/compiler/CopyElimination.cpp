//===- CopyElimination.cpp - Removing copy-in/copy-out copies --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the compiler (Section 4.2.3). The copy-in/copy-out discipline
/// of the dependence analysis makes the analysis local but introduces many
/// unnecessary copies; this pass removes them with a set of rewrite patterns
/// akin to Figure 10 (and Sequoia's compiler):
///
///  * launch-pair forwarding: a launch argument's fresh tensor whose mapped
///    memory matches the data it copies from (or is `none`) is replaced by
///    the original slice; the paired copies then die as self-copies,
///  * copy propagation: `copy(X -> P); ...; copy(P -> Y)` over the same
///    piece with no intervening writes rewrites the consumer to read X,
///  * self-copy and duplicate elimination (Figure 10d/c), renaming the
///    erased event into its single-precondition event where ranks align and
///    splicing preconditions (with broadcast-aware processor index
///    conversion) otherwise — preserving the synchronization that collapsed
///    event arrays imply,
///  * spill hoisting (Figure 10b): a loop body that copies a piece into an
///    accumulator at the top and back at the bottom, with a loop-invariant
///    color, hoists the pair into the preamble/postamble — this is what
///    keeps the GEMM accumulator resident in the register file across the
///    K loop,
///  * dead-copy/dead-alloc cleanup.
///
/// Patterns that can eliminate events run before ones that must preserve
/// dependencies, mirroring the paper's ordering heuristic. After the
/// fixpoint, any tensor mapped to the `none` memory that still appears in a
/// copy or call is reported as an unsatisfiable mapping constraint
/// (Section 3.3).
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"

#include <map>
#include <optional>
#include <set>

using namespace cypress;

namespace {

//===----------------------------------------------------------------------===//
// Structural slice equivalence
//===----------------------------------------------------------------------===//

bool colorsEqual(const std::vector<ScalarExpr> &A,
                 const std::vector<ScalarExpr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!A[I].equals(B[I]))
      return false;
  return true;
}

/// True if two slices denote the same data: same root tensor, same buffer,
/// and structurally identical partition chains (specs compared by value, so
/// two tasks partitioning the same tensor the same way match even though
/// they created distinct partition ids).
bool sliceEquivalent(const IRModule &M, const TensorSlice &A,
                     const TensorSlice &B) {
  if (A.Tensor != B.Tensor)
    return false;
  if (!A.BufferIndex.equals(B.BufferIndex))
    return false;
  if (A.isWhole() != B.isWhole())
    return false;
  if (A.isWhole())
    return true;
  const IRPartition &PA = M.partition(*A.Part);
  const IRPartition &PB = M.partition(*B.Part);
  if (!PA.Spec.equals(PB.Spec))
    return false;
  if (!colorsEqual(A.Color, B.Color))
    return false;
  return sliceEquivalent(M, PA.Base, PB.Base);
}

//===----------------------------------------------------------------------===//
// Flat op index
//===----------------------------------------------------------------------===//

/// A flattened view of the module: every op with its containing block and
/// position, in program order. Rebuilt after each mutating pattern.
struct FlatOp {
  IRBlock *Block = nullptr;
  size_t Index = 0;
  Operation *Op = nullptr;
  unsigned Depth = 0; ///< Loop-nest depth.
};

void flatten(IRBlock &Block, unsigned Depth, std::vector<FlatOp> &Out) {
  for (size_t I = 0, E = Block.Ops.size(); I != E; ++I) {
    Operation *Op = Block.Ops[I].get();
    Out.push_back({&Block, I, Op, Depth});
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
      flatten(Op->Body, Depth + 1, Out);
  }
}

/// Visits every slice of an op (in place).
void forEachSlice(Operation &Op, const std::function<void(TensorSlice &)> &Fn) {
  if (Op.Kind == OpKind::Copy) {
    Fn(Op.CopySrc);
    Fn(Op.CopyDst);
  } else if (Op.Kind == OpKind::Call) {
    for (TensorSlice &Slice : Op.Args)
      Fn(Slice);
  }
}

/// Does the op read (or write) data rooted at \p Tensor?
bool opReadsTensor(const Operation &Op, TensorId Tensor) {
  if (Op.Kind == OpKind::Copy)
    return Op.CopySrc.Tensor == Tensor;
  if (Op.Kind == OpKind::Call) {
    for (size_t I = 0, E = Op.Args.size(); I != E; ++I)
      if (Op.Args[I].Tensor == Tensor)
        return true; // Calls may read even written args (read-write).
  }
  return false;
}

bool opWritesTensor(const Operation &Op, TensorId Tensor) {
  if (Op.Kind == OpKind::Copy)
    return Op.CopyDst.Tensor == Tensor;
  if (Op.Kind == OpKind::Call) {
    for (size_t I = 0, E = Op.Args.size(); I != E; ++I)
      if (Op.Args[I].Tensor == Tensor && Op.ArgIsWritten[I])
        return true;
  }
  return false;
}

bool opTouchesTensor(const Operation &Op, TensorId Tensor) {
  return opReadsTensor(Op, Tensor) || opWritesTensor(Op, Tensor);
}

//===----------------------------------------------------------------------===//
// The pass
//===----------------------------------------------------------------------===//

class CopyEliminator {
public:
  explicit CopyEliminator(IRModule &Module) : Module(Module) {}

  ErrorOrVoid run() {
    // Iterate the pattern set to a fixpoint. Spill/forwarding patterns run
    // first (they can remove synchronization); cleanup follows.
    for (unsigned Round = 0; Round < MaxRounds; ++Round) {
      bool Changed = false;
      // Each pattern performs one safe rewrite per call (the flat index is
      // rebuilt between mutations); drive every pattern to its own local
      // fixpoint inside the round.
      auto Drive = [&](bool (CopyEliminator::*Pattern)()) {
        unsigned Guard = 0;
        while ((this->*Pattern)() && ++Guard < 10000)
          Changed = true;
      };
      Drive(&CopyEliminator::copyPropagation);
      Drive(&CopyEliminator::launchPairForwarding);
      Drive(&CopyEliminator::selfCopyElimination);
      Drive(&CopyEliminator::duplicateElimination);
      Drive(&CopyEliminator::redundantStoreElimination);
      Drive(&CopyEliminator::spillHoisting);
      Drive(&CopyEliminator::deadCopyElimination);
      if (Failure)
        return *Failure;
      if (!Changed)
        break;
    }
    cypress::repairEventScopes(Module);
    removeDeadDecls();
    return checkNoneConstraint();
  }

private:
  static constexpr unsigned MaxRounds = 64;

  /// Rebuilds the flat op index into a reused buffer. Each pattern rescans
  /// the module from scratch after every rewrite (correct by construction),
  /// so the index buffer is the pass's hottest allocation; pooling it keeps
  /// the fixpoint loop allocation-free.
  std::vector<FlatOp> &flatIndex() {
    FlatScratch.clear();
    flatten(Module.root(), 0, FlatScratch);
    return FlatScratch;
  }

  //===--- Event rewiring helpers ----------------------------------------===//

  /// Renames event \p From to \p To in every reference (indices preserved).
  void renameEvent(EventId From, EventId To) {
    walkOps(Module.root(), [&](Operation &Op) {
      for (EventRef &Ref : Op.Preconds)
        if (Ref.Event == From)
          Ref.Event = To;
      if ((Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) &&
          Op.Body.Yield && Op.Body.Yield->Event == From)
        Op.Body.Yield->Event = To;
    });
  }

  /// Replaces references to \p From with the op's precondition refs,
  /// converting point-wise processor indices to match the user's indexing
  /// (a broadcast user of a flattened event must keep waiting on all
  /// instances of the producer's preconditions).
  bool spliceEvent(EventId From, const std::vector<EventRef> &Preconds) {
    const EventType &FromType = Module.event(From).Type;
    bool Ok = true;
    walkOps(Module.root(), [&](Operation &Op) {
      if (!Ok)
        return;
      std::vector<EventRef> NewPreconds;
      for (EventRef &Ref : Op.Preconds) {
        if (Ref.Event != From) {
          NewPreconds.push_back(std::move(Ref));
          continue;
        }
        for (const EventRef &P : Preconds) {
          std::optional<EventRef> Adjusted = adjustSpliced(P, Ref, FromType);
          if (!Adjusted) {
            Ok = false;
            return;
          }
          NewPreconds.push_back(std::move(*Adjusted));
        }
      }
      Op.Preconds = std::move(NewPreconds);
      if ((Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) &&
          Op.Body.Yield && Op.Body.Yield->Event == From) {
        // A yield cannot expand to multiple events; retarget to the single
        // precondition if there is one, else drop the yield.
        if (Preconds.size() == 1 && Preconds[0].Indices.empty())
          Op.Body.Yield = Preconds[0];
        else
          Op.Body.Yield.reset();
      }
    });
    return Ok;
  }

  /// Adjusts a spliced precondition \p P for a user that referenced the
  /// erased event as \p User. Point-wise processor indices in P that match
  /// a dimension of the erased event's type take the user's index for that
  /// dimension (turning into broadcasts when the user broadcast).
  std::optional<EventRef> adjustSpliced(const EventRef &P,
                                        const EventRef &User,
                                        const EventType &FromType) {
    EventRef Result = P;
    Result.IterLag = P.IterLag + User.IterLag;
    for (EventIndex &Index : Result.Indices) {
      if (Index.isBroadcast())
        continue;
      if (!Index.Index.usesProcIndex())
        continue;
      // Identify which processor this index selects; only plain
      // processor-index expressions are handled.
      bool Matched = false;
      for (size_t D = 0, E = FromType.Dims.size(); D != E; ++D) {
        ScalarExpr Plain = ScalarExpr::procIndex(FromType.Dims[D].Proc);
        if (Index.Index.equals(Plain)) {
          if (D < User.Indices.size())
            Index = User.Indices[D];
          Matched = true;
          break;
        }
      }
      if (!Matched)
        return std::nullopt; // Complex proc expression: bail out.
    }
    return Result;
  }

  /// Erases the op at \p Flat (must not be a loop), rewiring its event.
  /// Returns false (leaving the IR untouched) when rewiring is not legal.
  bool eraseOp(const FlatOp &Flat) {
    Operation &Op = *Flat.Op;
    assert(Op.Kind != OpKind::For && Op.Kind != OpKind::PFor &&
           "cannot erase loops");
    if (Op.Result != InvalidEventId) {
      const EventType &Type = Module.event(Op.Result).Type;
      // Fast path: one precondition with identical rank -> rename.
      if (Op.Preconds.size() == 1 &&
          Module.event(Op.Preconds[0].Event).Type.Dims.size() ==
              Type.Dims.size() &&
          Op.Preconds[0].IterLag == 0 && allPointwise(Op.Preconds[0])) {
        renameEvent(Op.Result, Op.Preconds[0].Event);
      } else if (!spliceEvent(Op.Result, Op.Preconds)) {
        return false;
      }
      // Yields referencing the erased event: repoint to the previous event
      // producer in the same block (the loop completes when its last
      // remaining operation does).
      fixYields(Op.Result, *Flat.Block);
    }
    Flat.Block->Ops.erase(Flat.Block->Ops.begin() +
                          static_cast<long>(Flat.Index));
    return true;
  }

  bool allPointwise(const EventRef &Ref) {
    for (const EventIndex &Index : Ref.Indices)
      if (Index.isBroadcast())
        return false;
    return true;
  }

  void fixYields(EventId Erased, IRBlock &Block) {
    // Walk all loops; if a yield still references the erased event (splice
    // already retargeted most), fall back to the last event-producing op.
    walkOps(Module.root(), [&](Operation &Op) {
      if (Op.Kind != OpKind::For && Op.Kind != OpKind::PFor)
        return;
      if (!Op.Body.Yield || Op.Body.Yield->Event != Erased)
        return;
      Op.Body.Yield.reset();
      for (auto It = Op.Body.Ops.rbegin(); It != Op.Body.Ops.rend(); ++It) {
        if ((*It)->Result != InvalidEventId &&
            (*It)->Result != Erased) {
          Op.Body.Yield = EventRef::unit((*It)->Result);
          break;
        }
      }
    });
    (void)Block;
  }

  //===--- Pattern: copy propagation --------------------------------------===//

  /// copy(X -> P) ... copy(P -> Y) with equivalent P slices and no
  /// intervening write to P's root: the consumer reads X directly.
  bool copyPropagation() {
    std::vector<FlatOp> &Ops = flatIndex();
    for (size_t I = 0; I < Ops.size(); ++I) {
      Operation &Producer = *Ops[I].Op;
      if (Producer.Kind != OpKind::Copy)
        continue;
      TensorId Root = Producer.CopyDst.Tensor;
      if (Module.tensor(Root).IsEntryArg)
        continue;
      // Propagating across a *staging* copy would defeat its purpose: a
      // consumer reading a shared tile must not be rewritten to re-fetch
      // from global memory. Only propagate when the intermediate adds no
      // locality (unmaterialized, or same memory as the original source).
      Memory MidMem = Module.tensor(Root).Mem;
      Memory SrcMem = Module.tensor(Producer.CopySrc.Tensor).Mem;
      if (MidMem != Memory::None && MidMem != SrcMem)
        continue;
      for (size_t J = I + 1; J < Ops.size(); ++J) {
        Operation &Consumer = *Ops[J].Op;
        // Stop at any other write to the root tensor.
        if (&Consumer != &Producer && opWritesTensor(Consumer, Root) &&
            !(Consumer.Kind == OpKind::Copy &&
              sliceEquivalent(Module, Consumer.CopySrc, Producer.CopyDst)))
          break;
        if (Consumer.Kind != OpKind::Copy)
          continue;
        if (!sliceEquivalent(Module, Consumer.CopySrc, Producer.CopyDst))
          continue;
        if (sliceEquivalent(Module, Consumer.CopySrc, Producer.CopySrc))
          break; // Already propagated (or self copy).
        // Don't propagate across loop scopes when the source carries loop
        // variables that differ between contexts.
        if (Ops[J].Depth != Ops[I].Depth)
          continue;
        Consumer.CopySrc = Producer.CopySrc;
        // The consumer must still wait for the producer (it already does
        // through version chaining); keep preconditions unchanged.
        return true;
      }
    }
    return false;
  }

  //===--- Pattern: launch-pair forwarding --------------------------------===//

  /// Forwards a launch argument's fresh tensor to the slice it was copied
  /// from/to, when its mapped memory adds nothing (None, or same memory as
  /// the source data). Sequential semantics of the source program guarantee
  /// no third party touches the slice while the callee runs, so the
  /// substitution is always legal for launch-boundary pairs.
  bool launchPairForwarding() {
    std::vector<FlatOp> &Ops = flatIndex();

    // Collect copy-in/copy-out per fresh tensor.
    struct PairInfo {
      Operation *In = nullptr;
      Operation *Out = nullptr;
      bool OtherWholeWriters = false;
    };
    std::map<TensorId, PairInfo> Pairs;
    for (FlatOp &F : Ops) {
      Operation &Op = *F.Op;
      if (Op.Kind != OpKind::Copy || !Op.LaunchBoundary ||
          Op.BoundaryTensor == InvalidTensorId)
        continue;
      // Pair by the launch's fresh tensor, not by slice shape: slice
      // rewrites (copy propagation) must not flip a copy-in into looking
      // like some other tensor's copy-out.
      if (Op.CopyDst.isWhole() && Op.CopyDst.Tensor == Op.BoundaryTensor)
        Pairs[Op.BoundaryTensor].In = &Op;
      else if (Op.CopySrc.isWhole() &&
               Op.CopySrc.Tensor == Op.BoundaryTensor)
        Pairs[Op.BoundaryTensor].Out = &Op;
    }

    for (auto &[Tensor, Info] : Pairs) {
      const IRTensor &T = Module.tensor(Tensor);
      if (T.IsEntryArg)
        continue;
      const TensorSlice *Source = nullptr;
      if (Info.In)
        Source = &Info.In->CopySrc;
      else if (Info.Out)
        Source = &Info.Out->CopyDst;
      if (!Source)
        continue;
      if (Source->Tensor == Tensor)
        continue; // Already forwarded.
      Memory SourceMem = Module.tensor(Source->Tensor).Mem;
      // Forwarding ignores pipeline depth: the fresh tensor's buffers
      // existed only to hold the copy, which disappears entirely.
      bool Forwardable =
          T.Mem == Memory::None || T.Mem == SourceMem;
      if (!Forwardable)
        continue;
      // When both a copy-in and a copy-out exist, forwarding follows the
      // copy-in's source: data flows in -> use -> out, so substituting the
      // fresh tensor with the in-source leaves the copy-out rewritten to a
      // correct (possibly non-trivial) store of that source.
      substituteTensor(Tensor, *Source);
      return true;
    }
    return false;
  }

  /// Replaces every reference to whole-\p From (op slices and partition
  /// bases) with \p To, rebasing partitions rooted at From.
  void substituteTensor(TensorId From, const TensorSlice &To) {
    for (IRPartition &P : Module.partitions()) {
      if (P.Base.Tensor != From)
        continue;
      if (P.Base.isWhole())
        P.Base = To;
      else
        P.Base.Tensor = To.Tensor; // Chain root updates below.
    }
    walkOps(Module.root(), [&](Operation &Op) {
      forEachSlice(Op, [&](TensorSlice &Slice) {
        if (Slice.Tensor != From)
          return;
        if (Slice.isWhole())
          Slice = To;
        else
          Slice.Tensor = To.Tensor;
      });
    });
  }

  //===--- Pattern: self-copy elimination (Figure 10d) ---------------------===//

  bool selfCopyElimination() {
    std::vector<FlatOp> &Ops = flatIndex();
    for (FlatOp &F : Ops) {
      Operation &Op = *F.Op;
      if (Op.Kind != OpKind::Copy)
        continue;
      if (!sliceEquivalent(Module, Op.CopySrc, Op.CopyDst))
        continue;
      if (eraseOp(F))
        return true;
    }
    return false;
  }

  //===--- Pattern: duplicate elimination (Figure 10c) ---------------------===//

  bool duplicateElimination() {
    std::vector<FlatOp> &Ops = flatIndex();
    for (size_t I = 0; I < Ops.size(); ++I) {
      Operation &First = *Ops[I].Op;
      if (First.Kind != OpKind::Copy)
        continue;
      for (size_t J = I + 1; J < Ops.size(); ++J) {
        Operation &Second = *Ops[J].Op;
        if (opWritesTensor(Second, First.CopySrc.Tensor) ||
            opWritesTensor(Second, First.CopyDst.Tensor))
          break;
        if (Second.Kind != OpKind::Copy)
          continue;
        if (!sliceEquivalent(Module, First.CopySrc, Second.CopySrc) ||
            !sliceEquivalent(Module, First.CopyDst, Second.CopyDst))
          continue;
        if (Ops[J].Depth != Ops[I].Depth)
          continue;
        // Identical copy with unchanged operands: the second is redundant;
        // its event forwards to the first copy's event.
        if (Second.Result != InvalidEventId)
          renameEvent(Second.Result, First.Result);
        Ops[J].Block->Ops.erase(Ops[J].Block->Ops.begin() +
                                static_cast<long>(Ops[J].Index));
        return true;
      }
    }
    return false;
  }

  //===--- Pattern: redundant stores ----------------------------------------===//

  /// copy(X -> P) followed by copy(Y -> P) over the same piece with no read
  /// of P's root in between: the first store is dead. Arises when two
  /// launches in one loop iteration both copy their accumulator fragment
  /// back to the same unmaterialized parent piece.
  bool redundantStoreElimination() {
    std::vector<FlatOp> &Ops = flatIndex();
    for (size_t I = 0; I < Ops.size(); ++I) {
      Operation &First = *Ops[I].Op;
      if (First.Kind != OpKind::Copy)
        continue;
      TensorId Root = First.CopyDst.Tensor;
      if (Module.tensor(Root).IsEntryArg)
        continue;
      for (size_t J = I + 1; J < Ops.size(); ++J) {
        Operation &Second = *Ops[J].Op;
        if (opReadsTensor(Second, Root))
          break;
        // Same-block requirement: across loop boundaries the next iteration
        // of the first copy's loop may read the piece before this position,
        // which the forward scan cannot see. Within one body the second
        // store re-executes every iteration, so erasure stays correct.
        if (Second.Kind == OpKind::Copy &&
            sliceEquivalent(Module, Second.CopyDst, First.CopyDst) &&
            Ops[J].Block == Ops[I].Block) {
          if (eraseOp(Ops[I]))
            return true;
          break;
        }
        if (opWritesTensor(Second, Root))
          break; // A different-slice write: stop the scan conservatively.
      }
    }
    return false;
  }

  //===--- Pattern: spill hoisting (Figure 10b) ----------------------------===//

  /// Loop bodies of the form
  ///   alloc t; copy(P[j] -> t); ...body...; copy(t -> P[j])
  /// with loop-invariant j and no other reference to P's root inside the
  /// body hoist the allocation and both copies out of the loop, keeping the
  /// accumulator resident across iterations.
  bool spillHoisting() {
    std::vector<FlatOp> &Ops = flatIndex();
    for (FlatOp &F : Ops) {
      Operation &Loop = *F.Op;
      if (Loop.Kind != OpKind::For)
        continue;
      if (hoistFromLoop(F, Loop))
        return true;
    }
    return false;
  }

  bool hoistFromLoop(const FlatOp &Where, Operation &Loop) {
    IRBlock &Body = Loop.Body;
    // Find a copy-in near the top whose source is loop-invariant and whose
    // destination is a whole local tensor.
    for (size_t I = 0; I < Body.Ops.size(); ++I) {
      Operation &In = *Body.Ops[I];
      if (In.Kind != OpKind::Copy || !In.CopyDst.isWhole())
        continue;
      TensorId Acc = In.CopyDst.Tensor;
      if (sliceUsesVar(In.CopySrc, Loop.LoopVar))
        continue;
      TensorId Root = In.CopySrc.Tensor;
      if (Root == Acc)
        continue;
      // Find the matching trailing copy-out.
      for (size_t J = Body.Ops.size(); J-- > I + 1;) {
        Operation &Out = *Body.Ops[J];
        if (Out.Kind != OpKind::Copy || !Out.CopySrc.isWhole() ||
            Out.CopySrc.Tensor != Acc)
          continue;
        if (!sliceEquivalent(Module, Out.CopyDst, In.CopySrc))
          continue;
        // No other reference to the root slice inside the body.
        bool Clean = true;
        for (size_t K = 0; K < Body.Ops.size() && Clean; ++K) {
          if (K == I || K == J)
            continue;
          if (opTouchesTensor(*Body.Ops[K], Root))
            Clean = false;
          if (Body.Ops[K]->Kind == OpKind::For ||
              Body.Ops[K]->Kind == OpKind::PFor)
            walkOps(Body.Ops[K]->Body, [&](Operation &Nested) {
              if (opTouchesTensor(Nested, Root))
                Clean = false;
            });
        }
        if (!Clean)
          continue;
        performHoist(Where, Loop, I, J, Acc);
        return true;
      }
    }
    return false;
  }

  static bool sliceUsesVar(const TensorSlice &Slice, LoopVarId Var) {
    for (const ScalarExpr &Color : Slice.Color)
      if (Color.usesLoopVar(Var))
        return true;
    return Slice.BufferIndex.usesLoopVar(Var);
  }

  void performHoist(const FlatOp &Where, Operation &Loop, size_t InIdx,
                    size_t OutIdx, TensorId Acc) {
    IRBlock &Body = Loop.Body;
    IRBlock &Parent = *Where.Block;

    std::unique_ptr<Operation> Out = std::move(Body.Ops[OutIdx]);
    Body.Ops.erase(Body.Ops.begin() + static_cast<long>(OutIdx));
    std::unique_ptr<Operation> In = std::move(Body.Ops[InIdx]);
    Body.Ops.erase(Body.Ops.begin() + static_cast<long>(InIdx));

    // Hoist the accumulator's allocation if it lives in the body.
    std::unique_ptr<Operation> Alloc;
    for (size_t K = 0; K < Body.Ops.size(); ++K) {
      if (Body.Ops[K]->Kind == OpKind::Alloc &&
          Body.Ops[K]->AllocTensor == Acc) {
        Alloc = std::move(Body.Ops[K]);
        Body.Ops.erase(Body.Ops.begin() + static_cast<long>(K));
        break;
      }
    }

    // Intra-body users of the copy-in's event now reference an event
    // defined before the loop; SSA ordering still holds. The copy-out's
    // preconditions referenced in-body events, which would escape their
    // scope: rebase it onto the loop's completion event.
    Out->Preconds.clear();
    if (Loop.Result != InvalidEventId)
      Out->Preconds.push_back(EventRef::unit(Loop.Result));

    // The loop must wait for the hoisted copy-in; the copy-in adopts the
    // loop's entry dependencies (conservative but sound).
    if (In->Result != InvalidEventId) {
      for (const EventRef &Pre : Loop.Preconds)
        In->Preconds.push_back(Pre);
      Loop.Preconds.push_back(EventRef::unit(In->Result));
    }

    // If the body yielded the copy-out's event, retarget.
    if (Body.Yield && Out->Result != InvalidEventId &&
        Body.Yield->Event == Out->Result) {
      Body.Yield.reset();
      for (auto It = Body.Ops.rbegin(); It != Body.Ops.rend(); ++It)
        if ((*It)->Result != InvalidEventId) {
          Body.Yield = EventRef::unit((*It)->Result);
          break;
        }
    }

    size_t At = Where.Index;
    if (Alloc)
      Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(At++),
                        std::move(Alloc));
    Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(At++),
                      std::move(In));
    // Copy-out goes right after the loop.
    for (size_t K = 0; K < Parent.Ops.size(); ++K) {
      if (Parent.Ops[K].get() == &Loop) {
        Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(K + 1),
                          std::move(Out));
        break;
      }
    }
  }

  //===--- Pattern: dead copies -------------------------------------------===//

  /// Copies into tensors that are never read (and are not kernel outputs).
  bool deadCopyElimination() {
    std::set<TensorId> ReadRoots;
    walkOps(Module.root(), [&](Operation &Op) {
      if (Op.Kind == OpKind::Copy)
        ReadRoots.insert(Op.CopySrc.Tensor);
      if (Op.Kind == OpKind::Call)
        for (const TensorSlice &Slice : Op.Args)
          ReadRoots.insert(Slice.Tensor);
    });
    std::vector<FlatOp> &Ops = flatIndex();
    for (FlatOp &F : Ops) {
      Operation &Op = *F.Op;
      if (Op.Kind != OpKind::Copy)
        continue;
      TensorId Dst = Op.CopyDst.Tensor;
      if (Module.tensor(Dst).IsEntryArg)
        continue;
      if (ReadRoots.count(Dst))
        continue;
      if (eraseOp(F))
        return true;
    }
    return false;
  }

  //===--- Cleanup ----------------------------------------------------------===//

  void removeDeadDecls() {
    std::set<TensorId> Live;
    std::set<PartitionId> LiveParts;
    walkOps(Module.root(), [&](Operation &Op) {
      forEachSlice(Op, [&](TensorSlice &Slice) {
        Live.insert(Slice.Tensor);
        std::optional<PartitionId> Part = Slice.Part;
        while (Part) {
          LiveParts.insert(*Part);
          const IRPartition &P = Module.partition(*Part);
          Live.insert(P.Base.Tensor);
          Part = P.Base.Part;
        }
      });
    });
    for (TensorId T : Module.entryArgs())
      Live.insert(T);

    erasePass(Module.root(), Live, LiveParts);
  }

  void erasePass(IRBlock &Block, const std::set<TensorId> &Live,
                 const std::set<PartitionId> &LiveParts) {
    for (size_t I = 0; I < Block.Ops.size();) {
      Operation &Op = *Block.Ops[I];
      bool Erase = false;
      if (Op.Kind == OpKind::Alloc && !Live.count(Op.AllocTensor))
        Erase = true;
      if (Op.Kind == OpKind::MakePart && !LiveParts.count(Op.Part))
        Erase = true;
      if (Erase) {
        Block.Ops.erase(Block.Ops.begin() + static_cast<long>(I));
        continue;
      }
      if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor)
        erasePass(Op.Body, Live, LiveParts);
      ++I;
    }
  }

  /// Post-condition of Section 3.3: no tensor mapped to `none` may survive
  /// in a copy or call (it would have to be materialized).
  ErrorOrVoid checkNoneConstraint() {
    std::optional<Diagnostic> Err;
    walkOps(Module.root(), [&](Operation &Op) {
      if (Err)
        return;
      auto Check = [&](const TensorSlice &Slice) {
        if (Err)
          return;
        const IRTensor &T = Module.tensor(Slice.Tensor);
        if (T.Mem == Memory::None)
          Err = Diagnostic(formatString(
              "tensor %s mapped to the none memory cannot be eliminated; "
              "change the partitioning or mapping strategy",
              T.Name.c_str()));
      };
      if (Op.Kind == OpKind::Copy) {
        Check(Op.CopySrc);
        Check(Op.CopyDst);
      } else if (Op.Kind == OpKind::Call) {
        for (const TensorSlice &Slice : Op.Args)
          Check(Slice);
      }
    });
    if (Err)
      return *Err;
    return ErrorOrVoid::success();
  }

  IRModule &Module;
  std::vector<FlatOp> FlatScratch;
  std::optional<Diagnostic> Failure;
};

} // namespace

ErrorOrVoid cypress::runCopyElimination(IRModule &Module) {
  return CopyEliminator(Module).run();
}

//===----------------------------------------------------------------------===//
// Execution-unit assignment
//===----------------------------------------------------------------------===//

void cypress::assignExecUnits(IRModule &Module) {
  walkOps(Module.root(), [&](Operation &Op) {
    if (Op.Kind != OpKind::Copy)
      return;
    Memory Src = Module.tensor(Op.CopySrc.Tensor).Mem;
    Memory Dst = Module.tensor(Op.CopyDst.Tensor).Mem;
    // Bulk global<->shared transfers ride the TMA on Hopper (Section 2.2);
    // everything else (register traffic, shared<->shared staging) is SIMT.
    bool Tma = (Src == Memory::Global && Dst == Memory::Shared) ||
               (Src == Memory::Shared && Dst == Memory::Global);
    Op.Unit = Tma ? ExecUnit::TMA : ExecUnit::SIMT;
  });
}

//===----------------------------------------------------------------------===//
// Event scope repair (shared by copy elimination and resource allocation)
//===----------------------------------------------------------------------===//

void cypress::repairEventScopes(IRModule &Module) {
  // Definition environment per event: the chain of loop ops entered to
  // reach the defining block (empty = root block).
  std::map<EventId, std::vector<const Operation *>> DefChain;
  std::vector<const Operation *> Chain;
  std::function<void(const IRBlock &)> Collect = [&](const IRBlock &Block) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Op->Result != InvalidEventId)
        DefChain[Op->Result] = Chain;
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        Chain.push_back(Op.get());
        Collect(Op->Body);
        Chain.pop_back();
      }
    }
  };
  Collect(Module.root());

  std::function<void(IRBlock &)> Fix = [&](IRBlock &Block) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      std::vector<EventRef> Kept;
      for (EventRef &Ref : Op->Preconds) {
        auto It = DefChain.find(Ref.Event);
        if (It == DefChain.end())
          continue; // Producer erased without rewiring: drop.
        const std::vector<const Operation *> &Def = It->second;
        size_t Common = 0;
        while (Common < Def.size() && Common < Chain.size() &&
               Def[Common] == Chain[Common])
          ++Common;
        if (Common == Def.size()) {
          Kept.push_back(std::move(Ref));
          continue;
        }
        // The event lives inside loops the user is not in; wait for the
        // outermost such loop instead.
        const Operation *Loop = Def[Common];
        if (Loop == Op.get())
          continue; // A loop waiting on its own body: drop.
        if (Loop->Result == InvalidEventId)
          continue;
        EventRef Repl;
        Repl.Event = Loop->Result;
        const EventType &Type = Module.event(Loop->Result).Type;
        for (size_t D = 0; D < Type.Dims.size(); ++D)
          Repl.Indices.push_back(EventIndex::broadcast());
        Kept.push_back(std::move(Repl));
      }
      // Deduplicate structurally identical references.
      std::vector<EventRef> Unique;
      for (EventRef &Ref : Kept) {
        bool Seen = false;
        for (const EventRef &Have : Unique) {
          if (Have.Event != Ref.Event || Have.IterLag != Ref.IterLag ||
              Have.Indices.size() != Ref.Indices.size())
            continue;
          bool Same = true;
          for (size_t D = 0; D < Ref.Indices.size(); ++D) {
            if (Have.Indices[D].isBroadcast() !=
                    Ref.Indices[D].isBroadcast() ||
                (!Ref.Indices[D].isBroadcast() &&
                 !Have.Indices[D].Index.equals(Ref.Indices[D].Index))) {
              Same = false;
              break;
            }
          }
          if (Same) {
            Seen = true;
            break;
          }
        }
        if (!Seen)
          Unique.push_back(std::move(Ref));
      }
      Op->Preconds = std::move(Unique);
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        Chain.push_back(Op.get());
        Fix(Op->Body);
        Chain.pop_back();
      }
    }
  };
  Chain.clear();
  Fix(Module.root());
}

std::unique_ptr<Pass> cypress::createCopyEliminationPass() {
  return std::make_unique<FunctionPass>(
      "copy-elimination",
      [](PipelineState &State) { return runCopyElimination(State.Module); });
}

std::unique_ptr<Pass> cypress::createAssignExecUnitsPass() {
  return std::make_unique<FunctionPass>(
      "assign-exec-units", [](PipelineState &State) {
        assignExecUnits(State.Module);
        return ErrorOrVoid::success();
      });
}

std::unique_ptr<Pass> cypress::createRepairEventScopesPass() {
  return std::make_unique<FunctionPass>(
      "repair-event-scopes", [](PipelineState &State) {
        repairEventScopes(State.Module);
        return ErrorOrVoid::success();
      });
}
