//===- CopyElimination.cpp - Removing copy-in/copy-out copies --------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the compiler (Section 4.2.3). The copy-in/copy-out discipline
/// of the dependence analysis makes the analysis local but introduces many
/// unnecessary copies; this pass removes them with a set of rewrite patterns
/// akin to Figure 10 (and Sequoia's compiler):
///
///  * launch-pair forwarding: a launch argument's fresh tensor whose mapped
///    memory matches the data it copies from (or is `none`) is replaced by
///    the original slice; the paired copies then die as self-copies,
///  * copy propagation: `copy(X -> P); ...; copy(P -> Y)` over the same
///    piece with no intervening writes rewrites the consumer to read X,
///  * self-copy and duplicate elimination (Figure 10d/c), renaming the
///    erased event into its single-precondition event where ranks align and
///    splicing preconditions (with broadcast-aware processor index
///    conversion) otherwise — preserving the synchronization that collapsed
///    event arrays imply,
///  * spill hoisting (Figure 10b): a loop body that copies a piece into an
///    accumulator at the top and back at the bottom, with a loop-invariant
///    color, hoists the pair into the preamble/postamble — this is what
///    keeps the GEMM accumulator resident in the register file across the
///    K loop,
///  * dead-copy/dead-alloc cleanup.
///
/// Patterns that can eliminate events run before ones that must preserve
/// dependencies, mirroring the paper's ordering heuristic. After the
/// fixpoint, any tensor mapped to the `none` memory that still appears in a
/// copy or call is reported as an unsatisfiable mapping constraint
/// (Section 3.3).
///
/// The engine is worklist-driven over a flat op graph built once per run:
/// every op gets a slot in program (pre)order, with per-event user lists
/// and per-tensor toucher lists maintained incrementally across rewrites.
/// Event renames and precondition splices walk use-lists instead of the
/// module; erasure is lazy (slots are marked dead and swept once at the
/// end); each per-op pattern pops candidate anchors in program order from
/// its own worklist, re-seeded by exactly the state a rewrite invalidates
/// (touched tensors' toucher lists, users whose preconditions changed, and
/// producers whose erase-legality those changes affect). The rewrite
/// sequence — and therefore the printed IR, pinned byte-for-byte by
/// CompilerParityTest — is identical to the historical rescan-everything
/// implementation; only the work to find each rewrite changed.
///
//===----------------------------------------------------------------------===//

#include "compiler/PassManager.h"
#include "compiler/Passes.h"
#include "support/Format.h"

#include <algorithm>
#include <optional>
#include <vector>

using namespace cypress;

namespace {

constexpr uint32_t InvalidSlot = ~0u;

//===----------------------------------------------------------------------===//
// Structural slice equivalence
//===----------------------------------------------------------------------===//

bool colorsEqual(const InlineVector<ScalarExpr, 2> &A,
                 const InlineVector<ScalarExpr, 2> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!A[I].equals(B[I]))
      return false;
  return true;
}

/// True if two slices denote the same data: same root tensor, same buffer,
/// and structurally identical partition chains (specs compared by value, so
/// two tasks partitioning the same tensor the same way match even though
/// they created distinct partition ids).
bool sliceEquivalent(const IRModule &M, const TensorSlice &A,
                     const TensorSlice &B) {
  if (A.Tensor != B.Tensor)
    return false;
  if (!A.BufferIndex.equals(B.BufferIndex))
    return false;
  if (A.isWhole() != B.isWhole())
    return false;
  if (A.isWhole())
    return true;
  const IRPartition &PA = M.partition(*A.Part);
  const IRPartition &PB = M.partition(*B.Part);
  if (!PA.Spec.equals(PB.Spec))
    return false;
  if (!colorsEqual(A.Color, B.Color))
    return false;
  return sliceEquivalent(M, PA.Base, PB.Base);
}

//===----------------------------------------------------------------------===//
// Slice/tensor helpers
//===----------------------------------------------------------------------===//

/// Visits every slice of an op (in place). Templated: this runs inside
/// every slice rewrite, so the callback must not go through std::function.
template <typename Fn> void forEachSlice(Operation &Op, const Fn &Callback) {
  if (Op.Kind == OpKind::Copy) {
    Callback(Op.CopySrc);
    Callback(Op.CopyDst);
  } else if (Op.Kind == OpKind::Call) {
    for (TensorSlice &Slice : Op.Args)
      Callback(Slice);
  }
}

/// Does the op read (or write) data rooted at \p Tensor?
bool opReadsTensor(const Operation &Op, TensorId Tensor) {
  if (Op.Kind == OpKind::Copy)
    return Op.CopySrc.Tensor == Tensor;
  if (Op.Kind == OpKind::Call) {
    for (size_t I = 0, E = Op.Args.size(); I != E; ++I)
      if (Op.Args[I].Tensor == Tensor)
        return true; // Calls may read even written args (read-write).
  }
  return false;
}

bool opWritesTensor(const Operation &Op, TensorId Tensor) {
  if (Op.Kind == OpKind::Copy)
    return Op.CopyDst.Tensor == Tensor;
  if (Op.Kind == OpKind::Call) {
    for (size_t I = 0, E = Op.Args.size(); I != E; ++I)
      if (Op.Args[I].Tensor == Tensor && Op.ArgIsWritten[I])
        return true;
  }
  return false;
}

/// The distinct root tensors an op's slices reference, in slice order.
void collectRoots(const Operation &Op, std::vector<TensorId> &Out) {
  Out.clear();
  auto Add = [&Out](TensorId T) {
    for (TensorId Have : Out)
      if (Have == T)
        return;
    Out.push_back(T);
  };
  if (Op.Kind == OpKind::Copy) {
    Add(Op.CopySrc.Tensor);
    Add(Op.CopyDst.Tensor);
  } else if (Op.Kind == OpKind::Call) {
    for (const TensorSlice &Slice : Op.Args)
      Add(Slice.Tensor);
  }
}

//===----------------------------------------------------------------------===//
// Pooled graph scratch
//===----------------------------------------------------------------------===//

/// A worklist of op slots popped in ascending program-key order (min-heap)
/// with a queued-flag per slot so re-seeding an already-queued anchor is
/// free and pops come out deduplicated. Entries carry the slot's key at
/// push time: heap comparisons then stay in registers instead of chasing
/// the node table, which dominates sift cost at this pop rate. Keys only
/// move during a hoist, which refreshes every entry (reheapWorklists).
struct SlotWorklist {
  std::vector<std::pair<uint64_t, uint32_t>> Heap; ///< (key, slot).
  std::vector<uint8_t> Queued;

  void reset(size_t Slots) {
    Heap.clear();
    Queued.assign(Slots, 0);
  }
  bool empty() const { return Heap.empty(); }
};

/// All per-run tables, pooled thread-locally so steady-state runs (tuner
/// sweeps compile hundreds of kernels back to back) allocate nothing: the
/// inner vectors keep their capacity across modules.
struct GraphScratch {
  struct OpNode {
    Operation *Op = nullptr;
    IRBlock *Block = nullptr;
    uint32_t Parent = ~0u; ///< Slot of the enclosing loop op (root: ~0u).
    /// Program-order key with gaps: slots sort by Key, and a hoisted op
    /// takes a midpoint key instead of forcing a renumbering rebuild.
    uint64_t Key = 0;
    uint64_t SubtreeEndKey = 0; ///< Key of the subtree's last op (loops).
    uint32_t Depth = 0;
    bool Alive = false;
  };

  std::vector<OpNode> Nodes; ///< Slot-indexed; slot order == program order.
  /// Op id -> slot (ids are unique and dense per module at this stage, so
  /// a vector beats hashing every lookup; InvalidSlot = not in the graph).
  std::vector<uint32_t> SlotById;
  std::vector<std::vector<uint32_t>> EventUsers;  ///< By event id (hints).
  std::vector<uint32_t> EventProducer;            ///< By event id.
  std::vector<std::vector<uint32_t>> TensorUsers; ///< By tensor id, sorted.
  /// Copy-kind subset of TensorUsers, same sort order. Seeding only ever
  /// enqueues copies (SeedMask is zero for everything else), and most
  /// touchers of a hot tensor are calls, so sweeping this subset instead
  /// of the full list drops the dominant per-rewrite seeding cost.
  std::vector<std::vector<uint32_t>> TensorCopyUsers;
  std::vector<uint32_t> ReadCount;                ///< By tensor id.
  std::vector<TensorId> RootsA, RootsB;           ///< collectRoots buffers.
  std::vector<uint32_t> SubstUsers;               ///< substituteTensor copy.
  std::vector<TensorId> SubstRoots;               ///< Affected-root union.
  std::vector<uint32_t> UserScratch;              ///< Sorted-unique users.
  std::vector<uint32_t> UserSnapshot;             ///< Stable iteration copy.
  std::vector<EventRef> PrecondScratch;           ///< Splice rebuild buffer.
  /// Launch-boundary copies grouped by their fresh tensor, ascending id.
  /// Built once per graph: the copies' identities never change, only their
  /// aliveness and slices, which the forwarding scan re-checks per call.
  struct BoundaryGroup {
    TensorId Tensor = InvalidTensorId;
    std::vector<uint32_t> Slots;
    /// Eligibility cache: recomputed only when Dirty (a member copy was
    /// mutated or died); the forwarding scan otherwise reads the flag.
    bool Dirty = true;
    bool Eligible = false;
  };
  std::vector<BoundaryGroup> BoundaryGroups;
  SlotWorklist Work[5];                           ///< One per op pattern.
  std::vector<uint8_t> LoopDirty;                 ///< By slot: loop needs a
                                                  ///< spill-hoist re-check.
  std::vector<uint32_t> ForLoopSlots;             ///< All For-loop slots.
  /// Per-slot bitmask of worklists the op qualifies for (bit = Pattern),
  /// recomputed only when the op's slices change; zero for dead ops and
  /// non-copies. Conditions that move without the op (read counts) stay at
  /// pop time.
  std::vector<uint8_t> SeedMask;
  /// First boundary group that could currently be eligible; groups before
  /// it are clean and ineligible.
  size_t BoundaryCursor = 0;

  void clearLists(std::vector<std::vector<uint32_t>> &Lists, size_t Count) {
    if (Lists.size() < Count)
      Lists.resize(Count);
    for (size_t I = 0; I < Count; ++I)
      Lists[I].clear();
  }
};

GraphScratch &graphScratch() {
  thread_local GraphScratch Scratch;
  return Scratch;
}

//===----------------------------------------------------------------------===//
// The pass
//===----------------------------------------------------------------------===//

class CopyEliminator {
public:
  CopyEliminator(IRModule &Module, PassCounters *Counters,
                 CancelCheck *Cancel)
      : Module(Module), Counters(Counters), Cancel(Cancel),
        S(graphScratch()) {}

  ErrorOrVoid run() {
    build();
    // Iterate the pattern set to a fixpoint. Spill/forwarding patterns run
    // first (they can remove synchronization); cleanup follows.
    for (unsigned Round = 0; Round < MaxRounds; ++Round) {
      bool Changed = false;
      // Each pattern performs one safe rewrite per call; drive every
      // pattern to its own local fixpoint inside the round.
      auto Drive = [&](bool (CopyEliminator::*Pattern)()) {
        unsigned Guard = 0;
        while (!stopRequested() && (this->*Pattern)() && ++Guard < 10000)
          Changed = true;
      };
      Drive(&CopyEliminator::copyPropagation);
      Drive(&CopyEliminator::launchPairForwarding);
      Drive(&CopyEliminator::selfCopyElimination);
      Drive(&CopyEliminator::duplicateElimination);
      Drive(&CopyEliminator::redundantStoreElimination);
      Drive(&CopyEliminator::spillHoisting);
      Drive(&CopyEliminator::deadCopyElimination);
      // The checkpoint fires *between* rewrites (each pattern call is one
      // whole rewrite), so stopping here leaves the module well-formed —
      // just less optimized than a full fixpoint run would make it. The
      // structured diagnostic still aborts the compile: a half-optimized
      // kernel must never be mistaken for the real compilation result.
      if (stopRequested())
        return Cancel->diagnostic("copy-elimination worklist");
      if (!Changed)
        break;
    }
    sweepDead(Module.root());
    cypress::repairEventScopes(Module);
    removeDeadDecls();
    return checkNoneConstraint();
  }

private:
  static constexpr unsigned MaxRounds = 64;

  enum Pattern : unsigned {
    PatCopyProp,
    PatSelfCopy,
    PatDup,
    PatRedStore,
    PatDeadCopy,
    NumPatterns,
  };

  using OpNode = GraphScratch::OpNode;

  //===--- Graph construction ---------------------------------------------===//

  void build(bool SeedAll = true) {
    S.Nodes.clear();
    S.SlotById.clear();
    S.clearLists(S.EventUsers, Module.numEvents());
    if (S.EventProducer.size() < Module.numEvents())
      S.EventProducer.resize(Module.numEvents());
    std::fill_n(S.EventProducer.begin(), Module.numEvents(), InvalidSlot);
    S.clearLists(S.TensorUsers, Module.tensors().size());
    S.clearLists(S.TensorCopyUsers, Module.tensors().size());
    S.ReadCount.assign(Module.tensors().size(), 0);
    S.BoundaryGroups.clear();
    buildBlock(Module.root(), InvalidSlot, 0);
    std::sort(S.BoundaryGroups.begin(), S.BoundaryGroups.end(),
              [](const auto &A, const auto &B) {
                return A.Tensor < B.Tensor;
              });
    S.LoopDirty.assign(S.Nodes.size(), 1);
    S.SeedMask.assign(S.Nodes.size(), 0);
    for (uint32_t Slot = 0, E = S.Nodes.size(); Slot != E; ++Slot)
      recomputeSeedMask(Slot);
    S.BoundaryCursor = 0;
    S.ForLoopSlots.clear();
    for (uint32_t Slot = 0, E = S.Nodes.size(); Slot != E; ++Slot)
      if (S.Nodes[Slot].Op->Kind == OpKind::For)
        S.ForLoopSlots.push_back(Slot);
    for (SlotWorklist &WL : Work)
      WL.reset(S.Nodes.size());
    if (SeedAll)
      for (uint32_t Slot = 0, E = S.Nodes.size(); Slot != E; ++Slot)
        seedSlot(Slot);
  }

  void buildBlock(IRBlock &Block, uint32_t Parent, unsigned Depth) {
    for (std::unique_ptr<Operation> &OpPtr : Block.Ops) {
      Operation *Op = OpPtr.get();
      uint32_t Slot = static_cast<uint32_t>(S.Nodes.size());
      // Initial keys leave a 2^20 gap per op for midpoint insertion.
      uint64_t Key = (static_cast<uint64_t>(Slot) + 1) << 20;
      S.Nodes.push_back({Op, &Block, Parent, Key, Key, Depth, true});
      if (Op->Id >= S.SlotById.size())
        S.SlotById.resize(Op->Id + 1, InvalidSlot);
      assert(S.SlotById[Op->Id] == InvalidSlot &&
             "duplicate op id in module");
      S.SlotById[Op->Id] = Slot;
      if (Op->Result != InvalidEventId)
        S.EventProducer[Op->Result] = Slot;
      for (const EventRef &Ref : Op->Preconds)
        addEventUser(Ref.Event, Slot);
      addTouches(Slot);
      adjustReadCounts(*Op, +1);
      if (Op->Kind == OpKind::Copy && Op->LaunchBoundary &&
          Op->BoundaryTensor != InvalidTensorId)
        boundaryGroup(Op->BoundaryTensor).push_back(Slot);
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        if (Op->Body.Yield)
          addEventUser(Op->Body.Yield->Event, Slot);
        buildBlock(Op->Body, Slot, Depth + 1);
        S.Nodes[Slot].SubtreeEndKey = S.Nodes.back().Key;
      }
    }
  }

  std::vector<uint32_t> &boundaryGroup(TensorId Tensor) {
    for (auto &Group : S.BoundaryGroups)
      if (Group.Tensor == Tensor)
        return Group.Slots;
    S.BoundaryGroups.emplace_back();
    S.BoundaryGroups.back().Tensor = Tensor;
    return S.BoundaryGroups.back().Slots;
  }

  /// Marks every loop enclosing \p Slot for spill-hoist re-examination.
  /// Hoist matches read whole loop bodies, so any body mutation dirties
  /// the ancestor chain.
  void markDirtyLoops(uint32_t Slot) {
    for (uint32_t P = S.Nodes[Slot].Parent; P != InvalidSlot;
         P = S.Nodes[P].Parent)
      S.LoopDirty[P] = 1;
  }

  /// Rebuilds everything after a structural move (spill hoisting). Hoists
  /// are rare (at most a handful per kernel), so the O(module) rebuild is
  /// cheaper than maintaining ordering keys through block splices. Does
  /// not seed: performHoist restores queued anchors and seeds its own
  /// blast radius.
  void rebuildAfterStructuralChange() {
    // Dead ops stay physically present until the final sweep; preserve
    // their marks across the rebuild.
    std::vector<const Operation *> Dead;
    for (const OpNode &Node : S.Nodes)
      if (!Node.Alive)
        Dead.push_back(Node.Op);
    build(/*SeedAll=*/false);
    for (const Operation *Op : Dead) {
      uint32_t Slot = slotOf(Op);
      if (Slot != InvalidSlot)
        markDeadNoSeed(Slot);
    }
  }

  bool alive(uint32_t Slot) const { return S.Nodes[Slot].Alive; }
  Operation &op(uint32_t Slot) const { return *S.Nodes[Slot].Op; }
  uint64_t keyOf(uint32_t Slot) const { return S.Nodes[Slot].Key; }

  /// Iterator to the first entry of a key-sorted slot list strictly after
  /// \p Slot in program order.
  std::vector<uint32_t>::const_iterator
  firstAfter(const std::vector<uint32_t> &Users, uint32_t Slot) const {
    return std::upper_bound(Users.begin(), Users.end(), keyOf(Slot),
                            [this](uint64_t Key, uint32_t User) {
                              return Key < keyOf(User);
                            });
  }

  static bool heapAfter(const std::pair<uint64_t, uint32_t> &A,
                        const std::pair<uint64_t, uint32_t> &B) {
    return A.first > B.first;
  }

  void wlPush(SlotWorklist &WL, uint32_t Slot) {
    if (WL.Queued[Slot])
      return;
    WL.Queued[Slot] = 1;
    WL.Heap.emplace_back(keyOf(Slot), Slot);
    std::push_heap(WL.Heap.begin(), WL.Heap.end(), heapAfter);
  }

  uint32_t wlPop(SlotWorklist &WL) {
    std::pop_heap(WL.Heap.begin(), WL.Heap.end(), heapAfter);
    uint32_t Slot = WL.Heap.back().second;
    WL.Heap.pop_back();
    WL.Queued[Slot] = 0;
    return Slot;
  }

  /// Re-establishes every worklist's heap order after keys changed,
  /// refreshing the keys embedded in the entries.
  void reheapWorklists() {
    for (SlotWorklist &WL : Work) {
      for (std::pair<uint64_t, uint32_t> &Entry : WL.Heap)
        Entry.first = keyOf(Entry.second);
      std::make_heap(WL.Heap.begin(), WL.Heap.end(), heapAfter);
    }
  }

  void addEventUser(EventId Event, uint32_t Slot) {
    if (Event == InvalidEventId)
      return;
    // Bounded dedup window: a splice re-registers one user's refs back to
    // back, so recent duplicates are the common case; rare older ones
    // survive as hints and fall to sortedUsers' unique pass. A full scan
    // here would make splicing quadratic in a hot event's user count.
    std::vector<uint32_t> &Users = S.EventUsers[Event];
    size_t Window = Users.size() < 4 ? Users.size() : 4;
    for (size_t I = Users.size() - Window; I < Users.size(); ++I)
      if (Users[I] == Slot)
        return;
    Users.push_back(Slot);
  }

  /// Fills the pooled snapshot with the alive slots currently referencing
  /// \p Event, sorted by program order and deduplicated (the raw lists are
  /// insertion-ordered hints). A snapshot is required: the callers mutate
  /// the underlying user lists while iterating.
  std::vector<uint32_t> &sortedUsers(EventId Event) {
    S.UserSnapshot.clear();
    for (uint32_t Slot : S.EventUsers[Event])
      if (alive(Slot))
        S.UserSnapshot.push_back(Slot);
    std::sort(S.UserSnapshot.begin(), S.UserSnapshot.end(),
              [this](uint32_t A, uint32_t B) { return keyOf(A) < keyOf(B); });
    S.UserSnapshot.erase(
        std::unique(S.UserSnapshot.begin(), S.UserSnapshot.end()),
        S.UserSnapshot.end());
    return S.UserSnapshot;
  }

  void insertUser(std::vector<uint32_t> &Users, uint32_t Slot, uint64_t Key) {
    if (Users.empty() || keyOf(Users.back()) < Key) // Build appends.
      Users.push_back(Slot);
    else
      Users.insert(std::upper_bound(Users.begin(), Users.end(), Key,
                                    [this](uint64_t K, uint32_t User) {
                                      return K < keyOf(User);
                                    }),
                   Slot);
  }

  void eraseUser(std::vector<uint32_t> &Users, uint32_t Slot, uint64_t Key) {
    auto It = std::lower_bound(Users.begin(), Users.end(), Key,
                               [this](uint32_t User, uint64_t K) {
                                 return keyOf(User) < K;
                               });
    if (It != Users.end() && *It == Slot)
      Users.erase(It);
  }

  void addTouches(uint32_t Slot) {
    Operation &Op = op(Slot);
    collectRoots(Op, S.RootsA);
    uint64_t Key = keyOf(Slot);
    bool IsCopy = Op.Kind == OpKind::Copy;
    for (TensorId T : S.RootsA) {
      insertUser(S.TensorUsers[T], Slot, Key);
      if (IsCopy)
        insertUser(S.TensorCopyUsers[T], Slot, Key);
    }
  }

  void removeTouches(uint32_t Slot) {
    Operation &Op = op(Slot);
    collectRoots(Op, S.RootsA);
    uint64_t Key = keyOf(Slot);
    bool IsCopy = Op.Kind == OpKind::Copy;
    for (TensorId T : S.RootsA) {
      eraseUser(S.TensorUsers[T], Slot, Key);
      if (IsCopy)
        eraseUser(S.TensorCopyUsers[T], Slot, Key);
    }
  }

  /// Read-occurrence counts back the dead-copy pattern: a tensor with zero
  /// read occurrences matches the historical "never appears as a copy
  /// source or call argument" scan.
  void adjustReadCounts(const Operation &Op, int Delta) {
    if (Op.Kind == OpKind::Copy) {
      S.ReadCount[Op.CopySrc.Tensor] += Delta;
    } else if (Op.Kind == OpKind::Call) {
      for (const TensorSlice &Slice : Op.Args)
        S.ReadCount[Slice.Tensor] += Delta;
    }
  }

  //===--- Worklist seeding ------------------------------------------------===//

  /// Every per-op pattern anchors on a copy; each worklist additionally
  /// filters by the cheap parts of its pattern's match predicate,
  /// precomputed into SeedMask. The filters read only state whose every
  /// change recomputes the mask (the op's own slices) or static tensor
  /// attributes, so a slot skipped here cannot silently become a match;
  /// conditions that change without the op (read counts) are re-checked
  /// at pop time instead.
  void recomputeSeedMask(uint32_t Slot) {
    uint8_t Mask = 0;
    const OpNode &Node = S.Nodes[Slot];
    if (Node.Alive && Node.Op->Kind == OpKind::Copy) {
      const Operation &Op = *Node.Op;
      TensorId SrcRoot = Op.CopySrc.Tensor;
      TensorId DstRoot = Op.CopyDst.Tensor;
      const IRTensor &Dst = Module.tensor(DstRoot);
      if (!Dst.IsEntryArg) {
        if (Dst.Mem == Memory::None ||
            Dst.Mem == Module.tensor(SrcRoot).Mem)
          Mask |= 1u << PatCopyProp;
        Mask |= (1u << PatRedStore) | (1u << PatDeadCopy);
      }
      if (SrcRoot == DstRoot) // sliceEquivalent requires equal roots.
        Mask |= 1u << PatSelfCopy;
      Mask |= 1u << PatDup;
    }
    S.SeedMask[Slot] = Mask;
  }

  void seedSlot(uint32_t Slot) {
    uint8_t Mask = S.SeedMask[Slot];
    if (!Mask)
      return;
    for (unsigned P = 0; P < NumPatterns; ++P)
      if (Mask & (1u << P))
        wlPush(Work[P], Slot);
  }

  void seedTensor(TensorId T) {
    for (uint32_t Slot : S.TensorCopyUsers[T])
      seedSlot(Slot);
  }

  void seedProducer(EventId Event) {
    if (Event == InvalidEventId)
      return;
    uint32_t Slot = S.EventProducer[Event];
    if (Slot != InvalidSlot)
      seedSlot(Slot);
  }

  /// Re-seeds the producers of every event \p Op references: their erase
  /// legality (spliceEvent over their users) depends on this op's indices.
  void seedReferencedProducers(const Operation &Op) {
    for (const EventRef &Ref : Op.Preconds)
      seedProducer(Ref.Event);
  }

  /// Applies a slice mutation to an alive op, keeping toucher lists, read
  /// counts, and worklists consistent. Everything touching an old or new
  /// root is re-seeded: those toucher lists are exactly the state the
  /// patterns' forward scans read.
  template <typename Fn> void mutateSlices(uint32_t Slot, Fn &&Mutate) {
    Operation &Op = op(Slot);
    removeTouches(Slot);
    adjustReadCounts(Op, -1);
    collectRoots(Op, S.RootsB); // Old roots.
    Mutate();
    adjustReadCounts(Op, +1);
    addTouches(Slot); // Uses RootsA = new roots.
    // Seed the union of old and new roots' touchers once (the common
    // rewrite changes one endpoint, so the sets mostly overlap).
    for (TensorId T : S.RootsA)
      if (std::find(S.RootsB.begin(), S.RootsB.end(), T) == S.RootsB.end())
        S.RootsB.push_back(T);
    recomputeSeedMask(Slot);
    for (TensorId T : S.RootsB)
      seedTensor(T);
    dirtyBoundaryGroup(Op);
    markDirtyLoops(Slot);
  }

  void markDeadNoSeed(uint32_t Slot) {
    Operation &Op = op(Slot);
    removeTouches(Slot);
    adjustReadCounts(Op, -1);
    S.Nodes[Slot].Alive = false;
    S.SeedMask[Slot] = 0;
    if (Op.Result != InvalidEventId)
      S.EventProducer[Op.Result] = InvalidSlot;
    dirtyBoundaryGroup(Op);
  }

  void markDead(uint32_t Slot) {
    Operation &Op = op(Slot);
    markDirtyLoops(Slot);
    markDeadNoSeed(Slot); // Uses RootsA; RootsB below survives it.
    collectRoots(Op, S.RootsB);
    for (TensorId T : S.RootsB)
      seedTensor(T);
    // A dead user stops blocking precondition splices of the events it
    // referenced; their producers may have become erasable.
    seedReferencedProducers(Op);
  }

  void bumpPop() {
    if (Counters)
      ++Counters->WorklistPops;
    // Every pop advances the checkpoint's stride counter; once it fires
    // it stays latched and the pattern loops drain out via stopRequested.
    if (Cancel)
      Cancel->shouldStop();
  }

  /// True once the request's cancellation checkpoint has fired (polling at
  /// worklist-pop granularity, see bumpPop).
  bool stopRequested() { return Cancel && Cancel->shouldStop(); }
  void bumpRewrite() {
    if (Counters)
      ++Counters->Rewrites;
  }

  //===--- Event rewiring helpers ----------------------------------------===//

  /// Renames event \p From to \p To in every reference (indices preserved).
  void renameEvent(EventId From, EventId To) {
    const std::vector<uint32_t> &Users = sortedUsers(From);
    for (uint32_t Slot : Users) {
      Operation &Op = op(Slot);
      bool Changed = false;
      for (EventRef &Ref : Op.Preconds)
        if (Ref.Event == From) {
          Ref.Event = To;
          Changed = true;
        }
      if ((Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) &&
          Op.Body.Yield && Op.Body.Yield->Event == From) {
        Op.Body.Yield->Event = To;
        Changed = true;
      }
      if (Changed) {
        addEventUser(To, Slot);
        seedSlot(Slot);
        seedReferencedProducers(Op);
        markDirtyLoops(Slot);
        if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor)
          S.LoopDirty[Slot] = 1;
      }
    }
    S.EventUsers[From].clear();
    // To's user set grew; its producer's erase legality changed with it.
    seedProducer(To);
  }

  /// Replaces references to \p From with the op's precondition refs,
  /// converting point-wise processor indices to match the user's indexing
  /// (a broadcast user of a flattened event must keep waiting on all
  /// instances of the producer's preconditions). Mirrors the historical
  /// walk exactly, including its failure behavior: users visited before a
  /// non-adjustable reference keep their spliced preconditions.
  bool spliceEvent(EventId From, const std::vector<EventRef> &Preconds) {
    const EventType &FromType = Module.event(From).Type;
    const std::vector<uint32_t> &Users = sortedUsers(From);
    std::vector<EventRef> &NewPreconds = S.PrecondScratch; // Capacity pools.
    for (uint32_t Slot : Users) {
      Operation &Op = op(Slot);
      NewPreconds.clear();
      for (EventRef &Ref : Op.Preconds) {
        if (Ref.Event != From) {
          NewPreconds.push_back(std::move(Ref));
          continue;
        }
        for (const EventRef &P : Preconds) {
          std::optional<EventRef> Adjusted = adjustSpliced(P, Ref, FromType);
          if (!Adjusted) {
            // Users already processed no longer reference From, so the
            // producer's erase attempt may succeed once state changes;
            // leave it queued for retry.
            seedProducer(From);
            return false;
          }
          NewPreconds.push_back(std::move(*Adjusted));
        }
      }
      Op.Preconds.swap(NewPreconds);
      for (const EventRef &Ref : Op.Preconds)
        addEventUser(Ref.Event, Slot);
      if ((Op.Kind == OpKind::For || Op.Kind == OpKind::PFor) &&
          Op.Body.Yield && Op.Body.Yield->Event == From) {
        // A yield cannot expand to multiple events; retarget to the single
        // precondition if there is one, else drop the yield.
        if (Preconds.size() == 1 && Preconds[0].Indices.empty()) {
          Op.Body.Yield = Preconds[0];
          addEventUser(Op.Body.Yield->Event, Slot);
        } else {
          Op.Body.Yield.reset();
        }
      }
      seedSlot(Slot);
      seedReferencedProducers(Op);
      markDirtyLoops(Slot);
      if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor)
        S.LoopDirty[Slot] = 1;
    }
    S.EventUsers[From].clear();
    return true;
  }

  /// Adjusts a spliced precondition \p P for a user that referenced the
  /// erased event as \p User. Point-wise processor indices in P that match
  /// a dimension of the erased event's type take the user's index for that
  /// dimension (turning into broadcasts when the user broadcast).
  std::optional<EventRef> adjustSpliced(const EventRef &P,
                                        const EventRef &User,
                                        const EventType &FromType) {
    EventRef Result = P;
    Result.IterLag = P.IterLag + User.IterLag;
    for (EventIndex &Index : Result.Indices) {
      if (Index.isBroadcast())
        continue;
      if (!Index.Index.usesProcIndex())
        continue;
      // Identify which processor this index selects; only plain
      // processor-index expressions are handled.
      bool Matched = false;
      for (size_t D = 0, E = FromType.Dims.size(); D != E; ++D) {
        ScalarExpr Plain = ScalarExpr::procIndex(FromType.Dims[D].Proc);
        if (Index.Index.equals(Plain)) {
          if (D < User.Indices.size())
            Index = User.Indices[D];
          Matched = true;
          break;
        }
      }
      if (!Matched)
        return std::nullopt; // Complex proc expression: bail out.
    }
    return Result;
  }

  /// Erases the op at \p Slot (must not be a loop), rewiring its event.
  /// Returns false (leaving the op in place) when rewiring is not legal.
  bool eraseOp(uint32_t Slot) {
    Operation &Op = op(Slot);
    assert(Op.Kind != OpKind::For && Op.Kind != OpKind::PFor &&
           "cannot erase loops");
    if (Op.Result != InvalidEventId) {
      const EventType &Type = Module.event(Op.Result).Type;
      // Fast path: one precondition with identical rank -> rename.
      if (Op.Preconds.size() == 1 &&
          Module.event(Op.Preconds[0].Event).Type.Dims.size() ==
              Type.Dims.size() &&
          Op.Preconds[0].IterLag == 0 && allPointwise(Op.Preconds[0])) {
        renameEvent(Op.Result, Op.Preconds[0].Event);
      } else if (!spliceEvent(Op.Result, Op.Preconds)) {
        return false;
      }
      // Yields referencing the erased event: repoint to the previous event
      // producer in the same block (the loop completes when its last
      // remaining operation does). Rename/splice already retargeted every
      // reachable reference, so this only catches stragglers.
      fixYields(Op.Result);
    }
    markDead(Slot);
    return true;
  }

  bool allPointwise(const EventRef &Ref) {
    for (const EventIndex &Index : Ref.Indices)
      if (Index.isBroadcast())
        return false;
    return true;
  }

  void fixYields(EventId Erased) {
    const std::vector<uint32_t> &Users = sortedUsers(Erased);
    for (uint32_t Slot : Users) {
      Operation &Op = op(Slot);
      if (Op.Kind != OpKind::For && Op.Kind != OpKind::PFor)
        continue;
      if (!Op.Body.Yield || Op.Body.Yield->Event != Erased)
        continue;
      Op.Body.Yield.reset();
      for (auto It = Op.Body.Ops.rbegin(); It != Op.Body.Ops.rend(); ++It) {
        if (!opAlive(It->get()))
          continue;
        if ((*It)->Result != InvalidEventId && (*It)->Result != Erased) {
          Op.Body.Yield = EventRef::unit((*It)->Result);
          addEventUser((*It)->Result, Slot);
          S.LoopDirty[Slot] = 1;
          break;
        }
      }
    }
  }

  //===--- Pattern: copy propagation --------------------------------------===//

  /// copy(X -> P) ... copy(P -> Y) with equivalent P slices and no
  /// intervening write to P's root: the consumer reads X directly.
  bool copyPropagation() {
    SlotWorklist &WL = Work[PatCopyProp];
    while (!WL.empty()) {
      uint32_t Slot = wlPop(WL);
      bumpPop();
      if (!alive(Slot))
        continue;
      if (tryCopyPropagationAt(Slot)) {
        bumpRewrite();
        return true;
      }
    }
    return false;
  }

  bool tryCopyPropagationAt(uint32_t Slot) {
    Operation &Producer = op(Slot);
    if (Producer.Kind != OpKind::Copy)
      return false;
    TensorId Root = Producer.CopyDst.Tensor;
    if (Module.tensor(Root).IsEntryArg)
      return false;
    // Propagating across a *staging* copy would defeat its purpose: a
    // consumer reading a shared tile must not be rewritten to re-fetch
    // from global memory. Only propagate when the intermediate adds no
    // locality (unmaterialized, or same memory as the original source).
    Memory MidMem = Module.tensor(Root).Mem;
    Memory SrcMem = Module.tensor(Producer.CopySrc.Tensor).Mem;
    if (MidMem != Memory::None && MidMem != SrcMem)
      return false;
    // Scan forward in program order over the ops touching P's root — only
    // they can write it or consume the copied piece.
    const std::vector<uint32_t> &Users = S.TensorUsers[Root];
    for (auto It = firstAfter(Users, Slot); It != Users.end(); ++It) {
      if (!alive(*It))
        continue;
      Operation &Consumer = op(*It);
      // Stop at any other write to the root tensor.
      if (opWritesTensor(Consumer, Root) &&
          !(Consumer.Kind == OpKind::Copy &&
            sliceEquivalent(Module, Consumer.CopySrc, Producer.CopyDst)))
        break;
      if (Consumer.Kind != OpKind::Copy)
        continue;
      if (!sliceEquivalent(Module, Consumer.CopySrc, Producer.CopyDst))
        continue;
      if (sliceEquivalent(Module, Consumer.CopySrc, Producer.CopySrc))
        break; // Already propagated (or self copy).
      // Don't propagate across loop scopes when the source carries loop
      // variables that differ between contexts.
      if (S.Nodes[*It].Depth != S.Nodes[Slot].Depth)
        continue;
      uint32_t ConsumerSlot = *It;
      mutateSlices(ConsumerSlot,
                   [&] { Consumer.CopySrc = Producer.CopySrc; });
      // The consumer must still wait for the producer (it already does
      // through version chaining); keep preconditions unchanged.
      return true;
    }
    return false;
  }

  //===--- Pattern: launch-pair forwarding --------------------------------===//

  /// Forwards a launch argument's fresh tensor to the slice it was copied
  /// from/to, when its mapped memory adds nothing (None, or same memory as
  /// the source data). Sequential semantics of the source program guarantee
  /// no third party touches the slice while the callee runs, so the
  /// substitution is always legal for launch-boundary pairs. Global
  /// pattern: the candidate set (boundary copies in ascending fresh-tensor
  /// order) is rebuilt per call — it is tiny and shrinks monotonically.
  bool launchPairForwarding() {
    // Forwarding considers fresh tensors in ascending id (the order the
    // historical ordered-map scan applied); within a group the last
    // program-order copy-in/copy-out wins. Pair by the launch's fresh
    // tensor, not by slice shape: slice rewrites (copy propagation) must
    // not flip a copy-in into looking like some other tensor's copy-out.
    for (size_t Index = S.BoundaryCursor; Index < S.BoundaryGroups.size();
         ++Index) {
      GraphScratch::BoundaryGroup &Group = S.BoundaryGroups[Index];
      // Classify at most once per group visit: the dirty recompute doubles
      // as the eligible path's source lookup.
      const TensorSlice *Slice = nullptr;
      if (Group.Dirty) {
        Slice = classifyBoundaryGroup(Group);
        Group.Eligible = Slice != nullptr;
        Group.Dirty = false;
      } else if (Group.Eligible) {
        Slice = classifyBoundaryGroup(Group);
      }
      if (!Group.Eligible) {
        // Clean-and-ineligible prefix: skip it on the next call too.
        if (Index == S.BoundaryCursor)
          ++S.BoundaryCursor;
        continue;
      }
      // When both a copy-in and a copy-out exist, forwarding follows the
      // copy-in's source: data flows in -> use -> out, so substituting the
      // fresh tensor with the in-source leaves the copy-out rewritten to a
      // correct (possibly non-trivial) store of that source.
      TensorSlice Source = *Slice; // Copy: substituteTensor rewrites the op
                                   // holding the source slice.
      Group.Eligible = false; // The fresh tensor's id never comes back.
      substituteTensor(Group.Tensor, Source);
      bumpRewrite();
      return true;
    }
    return false;
  }

  /// The forwarding source for a boundary group, or nullptr when the group
  /// is currently ineligible (no surviving pair, already forwarded, entry
  /// argument, or a staging memory the forwarding would discard).
  const TensorSlice *classifyBoundaryGroup(
      const GraphScratch::BoundaryGroup &Group) {
    TensorId Tensor = Group.Tensor;
    const IRTensor &T = Module.tensor(Tensor);
    if (T.IsEntryArg)
      return nullptr;
    Operation *In = nullptr, *Out = nullptr;
    uint64_t InKey = 0, OutKey = 0;
    for (uint32_t Slot : Group.Slots) {
      if (!alive(Slot))
        continue;
      Operation &Op = op(Slot);
      // The last copy in program order wins its side of the pair.
      if (Op.CopyDst.isWhole() && Op.CopyDst.Tensor == Op.BoundaryTensor) {
        if (!In || keyOf(Slot) > InKey) {
          In = &Op;
          InKey = keyOf(Slot);
        }
      } else if (Op.CopySrc.isWhole() &&
                 Op.CopySrc.Tensor == Op.BoundaryTensor) {
        if (!Out || keyOf(Slot) > OutKey) {
          Out = &Op;
          OutKey = keyOf(Slot);
        }
      }
    }
    const TensorSlice *Source = nullptr;
    if (In)
      Source = &In->CopySrc;
    else if (Out)
      Source = &Out->CopyDst;
    if (!Source)
      return nullptr;
    if (Source->Tensor == Tensor)
      return nullptr; // Already forwarded.
    Memory SourceMem = Module.tensor(Source->Tensor).Mem;
    // Forwarding ignores pipeline depth: the fresh tensor's buffers
    // existed only to hold the copy, which disappears entirely.
    if (T.Mem != Memory::None && T.Mem != SourceMem)
      return nullptr;
    return Source;
  }

  /// Invalidates the eligibility cache of \p Op's boundary group after a
  /// mutation or death.
  void dirtyBoundaryGroup(const Operation &Op) {
    if (Op.Kind != OpKind::Copy || !Op.LaunchBoundary ||
        Op.BoundaryTensor == InvalidTensorId)
      return;
    auto It = std::lower_bound(
        S.BoundaryGroups.begin(), S.BoundaryGroups.end(), Op.BoundaryTensor,
        [](const GraphScratch::BoundaryGroup &G, TensorId T) {
          return G.Tensor < T;
        });
    if (It != S.BoundaryGroups.end() && It->Tensor == Op.BoundaryTensor) {
      It->Dirty = true;
      size_t Index = static_cast<size_t>(It - S.BoundaryGroups.begin());
      if (Index < S.BoundaryCursor)
        S.BoundaryCursor = Index;
    }
  }

  /// Replaces every reference to whole-\p From (op slices and partition
  /// bases) with \p To, rebasing partitions rooted at From. Seeding is
  /// batched: per-op seeding would rescan the shared roots' toucher lists
  /// once per rewritten user (the forwarding profile's dominant cost), and
  /// the queued-flag dedup makes one final sweep over the union of
  /// affected roots produce the identical worklist contents.
  void substituteTensor(TensorId From, const TensorSlice &To) {
    for (IRPartition &P : Module.partitions()) {
      if (P.Base.Tensor != From)
        continue;
      if (P.Base.isWhole())
        P.Base = To;
      else
        P.Base.Tensor = To.Tensor; // Chain root updates below.
    }
    std::vector<uint32_t> &Users = S.SubstUsers; // Copy: mutation edits the
    Users = S.TensorUsers[From];                 // list. Capacity pools.
    std::vector<TensorId> &Affected = S.SubstRoots;
    Affected.clear();
    auto NoteRoot = [&Affected](TensorId T) {
      for (TensorId Have : Affected)
        if (Have == T)
          return;
      Affected.push_back(T);
    };
    for (uint32_t Slot : Users) {
      if (!alive(Slot))
        continue;
      Operation &Op = op(Slot);
      removeTouches(Slot);
      adjustReadCounts(Op, -1);
      collectRoots(Op, S.RootsB); // Old roots.
      for (TensorId T : S.RootsB)
        NoteRoot(T);
      forEachSlice(Op, [&](TensorSlice &Slice) {
        if (Slice.Tensor != From)
          return;
        if (Slice.isWhole())
          Slice = To;
        else
          Slice.Tensor = To.Tensor;
      });
      adjustReadCounts(Op, +1);
      addTouches(Slot); // Uses RootsA = new roots.
      for (TensorId T : S.RootsA)
        NoteRoot(T);
      recomputeSeedMask(Slot);
      dirtyBoundaryGroup(Op);
      markDirtyLoops(Slot);
    }
    for (TensorId T : Affected)
      seedTensor(T);
  }

  //===--- Pattern: self-copy elimination (Figure 10d) ---------------------===//

  bool selfCopyElimination() {
    SlotWorklist &WL = Work[PatSelfCopy];
    while (!WL.empty()) {
      uint32_t Slot = wlPop(WL);
      bumpPop();
      if (!alive(Slot))
        continue;
      Operation &Op = op(Slot);
      if (Op.Kind != OpKind::Copy)
        continue;
      if (!sliceEquivalent(Module, Op.CopySrc, Op.CopyDst))
        continue;
      if (eraseOp(Slot)) {
        bumpRewrite();
        return true;
      }
    }
    return false;
  }

  //===--- Pattern: duplicate elimination (Figure 10c) ---------------------===//

  bool duplicateElimination() {
    SlotWorklist &WL = Work[PatDup];
    while (!WL.empty()) {
      uint32_t Slot = wlPop(WL);
      bumpPop();
      if (!alive(Slot))
        continue;
      if (tryDuplicateAt(Slot)) {
        bumpRewrite();
        return true;
      }
    }
    return false;
  }

  bool tryDuplicateAt(uint32_t Slot) {
    Operation &First = op(Slot);
    if (First.Kind != OpKind::Copy)
      return false;
    // Only ops touching the copy's source or destination root can either
    // match or block the match; merge-iterate the two sorted toucher lists
    // in program order without materializing the union.
    const std::vector<uint32_t> &SrcUsers =
        S.TensorUsers[First.CopySrc.Tensor];
    const std::vector<uint32_t> &DstUsers =
        S.TensorUsers[First.CopyDst.Tensor];
    auto SrcIt = firstAfter(SrcUsers, Slot);
    auto DstIt = firstAfter(DstUsers, Slot);
    while (SrcIt != SrcUsers.end() || DstIt != DstUsers.end()) {
      uint32_t USlot;
      if (DstIt == DstUsers.end() ||
          (SrcIt != SrcUsers.end() && keyOf(*SrcIt) <= keyOf(*DstIt))) {
        USlot = *SrcIt++;
        if (DstIt != DstUsers.end() && *DstIt == USlot)
          ++DstIt;
      } else {
        USlot = *DstIt++;
      }
      if (!alive(USlot))
        continue;
      Operation &Second = op(USlot);
      if (opWritesTensor(Second, First.CopySrc.Tensor) ||
          opWritesTensor(Second, First.CopyDst.Tensor))
        break;
      if (Second.Kind != OpKind::Copy)
        continue;
      if (!sliceEquivalent(Module, First.CopySrc, Second.CopySrc) ||
          !sliceEquivalent(Module, First.CopyDst, Second.CopyDst))
        continue;
      if (S.Nodes[USlot].Depth != S.Nodes[Slot].Depth)
        continue;
      // Identical copy with unchanged operands: the second is redundant;
      // its event forwards to the first copy's event.
      if (Second.Result != InvalidEventId)
        renameEvent(Second.Result, First.Result);
      markDead(USlot);
      return true;
    }
    return false;
  }

  //===--- Pattern: redundant stores ----------------------------------------===//

  /// copy(X -> P) followed by copy(Y -> P) over the same piece with no read
  /// of P's root in between: the first store is dead. Arises when two
  /// launches in one loop iteration both copy their accumulator fragment
  /// back to the same unmaterialized parent piece.
  bool redundantStoreElimination() {
    SlotWorklist &WL = Work[PatRedStore];
    while (!WL.empty()) {
      uint32_t Slot = wlPop(WL);
      bumpPop();
      if (!alive(Slot))
        continue;
      if (tryRedundantStoreAt(Slot)) {
        bumpRewrite();
        return true;
      }
    }
    return false;
  }

  bool tryRedundantStoreAt(uint32_t Slot) {
    Operation &First = op(Slot);
    if (First.Kind != OpKind::Copy)
      return false;
    TensorId Root = First.CopyDst.Tensor;
    if (Module.tensor(Root).IsEntryArg)
      return false;
    const std::vector<uint32_t> &Users = S.TensorUsers[Root];
    for (auto It = firstAfter(Users, Slot); It != Users.end(); ++It) {
      if (!alive(*It))
        continue;
      Operation &Second = op(*It);
      if (opReadsTensor(Second, Root))
        break;
      // Same-block requirement: across loop boundaries the next iteration
      // of the first copy's loop may read the piece before this position,
      // which the forward scan cannot see. Within one body the second
      // store re-executes every iteration, so erasure stays correct.
      if (Second.Kind == OpKind::Copy &&
          sliceEquivalent(Module, Second.CopyDst, First.CopyDst) &&
          S.Nodes[*It].Block == S.Nodes[Slot].Block) {
        if (eraseOp(Slot))
          return true;
        break;
      }
      if (opWritesTensor(Second, Root))
        break; // A different-slice write: stop the scan conservatively.
    }
    return false;
  }

  //===--- Pattern: spill hoisting (Figure 10b) ----------------------------===//

  /// Loop bodies of the form
  ///   alloc t; copy(P[j] -> t); ...body...; copy(t -> P[j])
  /// with loop-invariant j and no other reference to P's root inside the
  /// body hoist the allocation and both copies out of the loop, keeping the
  /// accumulator resident across iterations. Global pattern: loops are few
  /// and a hoist restructures blocks, so each call scans the loop slots
  /// directly and a successful hoist rebuilds the graph.
  bool spillHoisting() {
    for (uint32_t Slot : S.ForLoopSlots) {
      if (!alive(Slot) || !S.LoopDirty[Slot])
        continue;
      Operation &Loop = op(Slot);
      if (hoistFromLoop(Slot, Loop)) {
        bumpRewrite();
        return true;
      }
      // Nothing inside this loop changed since this failed attempt; skip
      // it until a mutation dirties it again.
      S.LoopDirty[Slot] = 0;
    }
    return false;
  }

  bool opAlive(const Operation *Op) {
    uint32_t Slot = slotOf(Op);
    return Slot != InvalidSlot && alive(Slot);
  }

  uint32_t slotOf(const Operation *Op) const {
    return Op->Id < S.SlotById.size() ? S.SlotById[Op->Id] : InvalidSlot;
  }

  bool hoistFromLoop(uint32_t LoopSlot, Operation &Loop) {
    IRBlock &Body = Loop.Body;
    // Find a copy-in near the top whose source is loop-invariant and whose
    // destination is a whole local tensor.
    for (size_t I = 0; I < Body.Ops.size(); ++I) {
      Operation &In = *Body.Ops[I];
      if (!opAlive(&In))
        continue;
      if (In.Kind != OpKind::Copy || !In.CopyDst.isWhole())
        continue;
      TensorId Acc = In.CopyDst.Tensor;
      if (sliceUsesVar(In.CopySrc, Loop.LoopVar))
        continue;
      TensorId Root = In.CopySrc.Tensor;
      if (Root == Acc)
        continue;
      // Find the matching trailing copy-out.
      for (size_t J = Body.Ops.size(); J-- > I + 1;) {
        Operation &Out = *Body.Ops[J];
        if (!opAlive(&Out))
          continue;
        if (Out.Kind != OpKind::Copy || !Out.CopySrc.isWhole() ||
            Out.CopySrc.Tensor != Acc)
          continue;
        if (!sliceEquivalent(Module, Out.CopyDst, In.CopySrc))
          continue;
        // No other reference to the root slice inside the body (nested
        // loops included): the loop's subtree is a contiguous slot range,
        // so Root's toucher list answers this with one range scan.
        bool Clean = true;
        const std::vector<uint32_t> &Touchers = S.TensorUsers[Root];
        for (auto It = firstAfter(Touchers, LoopSlot);
             It != Touchers.end() &&
             keyOf(*It) <= S.Nodes[LoopSlot].SubtreeEndKey;
             ++It) {
          if (!alive(*It))
            continue;
          Operation *Toucher = S.Nodes[*It].Op;
          if (Toucher != &In && Toucher != &Out) {
            Clean = false;
            break;
          }
        }
        if (!Clean)
          continue;
        performHoist(LoopSlot, Loop, I, J, Acc);
        return true;
      }
    }
    return false;
  }

  static bool sliceUsesVar(const TensorSlice &Slice, LoopVarId Var) {
    for (const ScalarExpr &Color : Slice.Color)
      if (Color.usesLoopVar(Var))
        return true;
    return Slice.BufferIndex.usesLoopVar(Var);
  }

  /// The key of the first op following \p LoopSlot's subtree in pre-order,
  /// or SubtreeEndKey + a full initial gap when the subtree ends the
  /// program. Walks the physical blocks (small) up the ancestor chain.
  uint64_t nextPreorderKeyAfter(uint32_t LoopSlot) {
    uint32_t Cur = LoopSlot;
    while (Cur != InvalidSlot) {
      IRBlock &Block = *S.Nodes[Cur].Block;
      const Operation *CurOp = S.Nodes[Cur].Op;
      for (size_t K = 0; K < Block.Ops.size(); ++K)
        if (Block.Ops[K].get() == CurOp) {
          if (K + 1 < Block.Ops.size())
            return keyOf(slotOf(Block.Ops[K + 1].get()));
          break;
        }
      Cur = S.Nodes[Cur].Parent;
    }
    return S.Nodes[LoopSlot].SubtreeEndKey + (1ull << 20);
  }

  void performHoist(uint32_t LoopSlot, Operation &Loop, size_t InIdx,
                    size_t OutIdx, TensorId Acc) {
    IRBlock &Body = Loop.Body;
    IRBlock &Parent = *S.Nodes[LoopSlot].Block;

    // The hoist's blast radius: everything whose pattern matches can
    // change when these ops move and their events rewire.
    std::vector<TensorId> AffectedTensors;
    std::vector<EventId> AffectedEvents;
    auto NoteOp = [&](const Operation &Op) {
      collectRoots(Op, S.RootsB);
      for (TensorId T : S.RootsB)
        AffectedTensors.push_back(T);
      if (Op.Result != InvalidEventId)
        AffectedEvents.push_back(Op.Result);
      for (const EventRef &Ref : Op.Preconds)
        AffectedEvents.push_back(Ref.Event);
    };
    NoteOp(*Body.Ops[InIdx]);
    NoteOp(*Body.Ops[OutIdx]);
    NoteOp(Loop);
    if (Body.Yield)
      AffectedEvents.push_back(Body.Yield->Event);

    uint32_t InSlot = slotOf(Body.Ops[InIdx].get());
    uint32_t OutSlot = slotOf(Body.Ops[OutIdx].get());

    // New program positions: In (and the Alloc) land just before the loop,
    // Out just after its subtree. Midpoint keys keep every other op's
    // order intact; when a gap has been exhausted (only after pathological
    // hoist churn), fall back to a full renumbering rebuild below.
    uint64_t LoopKey = keyOf(LoopSlot);
    uint64_t LowKey = 0;
    for (size_t K = 0; K < Parent.Ops.size(); ++K)
      if (Parent.Ops[K].get() == &Loop) {
        if (K > 0)
          LowKey = keyOf(slotOf(Parent.Ops[K - 1].get()));
        else if (S.Nodes[LoopSlot].Parent != InvalidSlot)
          LowKey = keyOf(S.Nodes[LoopSlot].Parent);
        break;
      }
    uint64_t OutLow = S.Nodes[LoopSlot].SubtreeEndKey;
    uint64_t OutHigh = nextPreorderKeyAfter(LoopSlot);
    bool KeysFit = LoopKey - LowKey >= 8 && OutHigh - OutLow >= 8;

    // Moved copies leave their toucher lists while their old keys are
    // still in place; they re-enter under the new keys.
    removeTouches(InSlot);
    removeTouches(OutSlot);

    std::unique_ptr<Operation> Out = std::move(Body.Ops[OutIdx]);
    Body.Ops.erase(Body.Ops.begin() + static_cast<long>(OutIdx));
    std::unique_ptr<Operation> In = std::move(Body.Ops[InIdx]);
    Body.Ops.erase(Body.Ops.begin() + static_cast<long>(InIdx));

    // Hoist the accumulator's allocation if it lives in the body.
    std::unique_ptr<Operation> Alloc;
    for (size_t K = 0; K < Body.Ops.size(); ++K) {
      if (Body.Ops[K]->Kind == OpKind::Alloc &&
          Body.Ops[K]->AllocTensor == Acc) {
        Alloc = std::move(Body.Ops[K]);
        Body.Ops.erase(Body.Ops.begin() + static_cast<long>(K));
        break;
      }
    }
    uint32_t AllocSlot = Alloc ? slotOf(Alloc.get()) : InvalidSlot;

    // Intra-body users of the copy-in's event now reference an event
    // defined before the loop; SSA ordering still holds. The copy-out's
    // preconditions referenced in-body events, which would escape their
    // scope: rebase it onto the loop's completion event.
    Out->Preconds.clear();
    if (Loop.Result != InvalidEventId) {
      Out->Preconds.push_back(EventRef::unit(Loop.Result));
      addEventUser(Loop.Result, OutSlot);
    }

    // The loop must wait for the hoisted copy-in; the copy-in adopts the
    // loop's entry dependencies (conservative but sound).
    if (In->Result != InvalidEventId) {
      for (const EventRef &Pre : Loop.Preconds) {
        In->Preconds.push_back(Pre);
        addEventUser(Pre.Event, InSlot);
      }
      Loop.Preconds.push_back(EventRef::unit(In->Result));
      addEventUser(In->Result, LoopSlot);
    }

    // If the body yielded the copy-out's event, retarget.
    if (Body.Yield && Out->Result != InvalidEventId &&
        Body.Yield->Event == Out->Result) {
      Body.Yield.reset();
      for (auto It = Body.Ops.rbegin(); It != Body.Ops.rend(); ++It)
        if (opAlive(It->get()) && (*It)->Result != InvalidEventId) {
          Body.Yield = EventRef::unit((*It)->Result);
          addEventUser((*It)->Result, LoopSlot);
          break;
        }
    }

    // Alloc and copy-in go right before the loop, copy-out right after.
    size_t At = 0;
    for (size_t K = 0; K < Parent.Ops.size(); ++K)
      if (Parent.Ops[K].get() == &Loop) {
        At = K;
        break;
      }
    if (Alloc)
      Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(At++),
                        std::move(Alloc));
    Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(At++),
                      std::move(In));
    for (size_t K = 0; K < Parent.Ops.size(); ++K) {
      if (Parent.Ops[K].get() == &Loop) {
        Parent.Ops.insert(Parent.Ops.begin() + static_cast<long>(K + 1),
                          std::move(Out));
        break;
      }
    }

    if (!KeysFit) {
      // Exhausted key gaps: renumber everything and conservatively re-seed
      // every anchor (rare).
      rebuildAfterStructuralChange();
      for (uint32_t Slot = 0, E = S.Nodes.size(); Slot != E; ++Slot)
        seedSlot(Slot);
      return;
    }

    // Rekey and relocate the moved ops in the graph.
    auto Relocate = [&](uint32_t Slot, uint64_t Key) {
      OpNode &Node = S.Nodes[Slot];
      Node.Key = Key;
      Node.Block = &Parent;
      Node.Parent = S.Nodes[LoopSlot].Parent;
      Node.Depth = S.Nodes[LoopSlot].Depth;
    };
    uint64_t InKey = LowKey + (LoopKey - LowKey) / 2;
    if (AllocSlot != InvalidSlot)
      Relocate(AllocSlot, LowKey + (LoopKey - LowKey) / 4);
    Relocate(InSlot, InKey);
    uint64_t OutKey = OutLow + (OutHigh - OutLow) / 2;
    Relocate(OutSlot, OutKey);
    // The copy-out now extends every enclosing subtree that used to end at
    // this loop.
    for (uint32_t A = S.Nodes[LoopSlot].Parent; A != InvalidSlot;
         A = S.Nodes[A].Parent)
      if (S.Nodes[A].SubtreeEndKey < OutKey)
        S.Nodes[A].SubtreeEndKey = OutKey;

    addTouches(InSlot);
    addTouches(OutSlot);
    reheapWorklists();

    // Invalidation: the moved ops, everything sharing their tensors, the
    // events they rewired, and the loop's spill-hoist dirtiness.
    for (TensorId T : AffectedTensors)
      seedTensor(T);
    for (EventId E : AffectedEvents) {
      seedProducer(E);
      for (uint32_t Slot : S.EventUsers[E])
        seedSlot(Slot);
    }
    dirtyBoundaryGroup(op(InSlot));
    dirtyBoundaryGroup(op(OutSlot));
    markDirtyLoops(InSlot);
    S.LoopDirty[LoopSlot] = 1;
    markDirtyLoops(LoopSlot);
  }

  //===--- Pattern: dead copies -------------------------------------------===//

  /// Copies into tensors that are never read (and are not kernel outputs).
  bool deadCopyElimination() {
    SlotWorklist &WL = Work[PatDeadCopy];
    while (!WL.empty()) {
      uint32_t Slot = wlPop(WL);
      bumpPop();
      if (!alive(Slot))
        continue;
      Operation &Op = op(Slot);
      if (Op.Kind != OpKind::Copy)
        continue;
      TensorId Dst = Op.CopyDst.Tensor;
      if (Module.tensor(Dst).IsEntryArg)
        continue;
      if (S.ReadCount[Dst] != 0)
        continue;
      if (eraseOp(Slot)) {
        bumpRewrite();
        return true;
      }
    }
    return false;
  }

  //===--- Cleanup ----------------------------------------------------------===//

  /// Physically removes ops marked dead during the fixpoint (erasure is
  /// lazy so slot order stays stable), preserving the survivors' order.
  void sweepDead(IRBlock &Block) {
    auto NewEnd = std::remove_if(
        Block.Ops.begin(), Block.Ops.end(),
        [&](const std::unique_ptr<Operation> &Op) {
          uint32_t Slot = slotOf(Op.get());
          return Slot != InvalidSlot && !alive(Slot);
        });
    Block.Ops.erase(NewEnd, Block.Ops.end());
    for (std::unique_ptr<Operation> &Op : Block.Ops)
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
        sweepDead(Op->Body);
  }

  void removeDeadDecls() {
    std::vector<uint8_t> Live(Module.tensors().size(), 0);
    std::vector<uint8_t> LiveParts(Module.partitionsConst().size(), 0);
    markLiveDecls(Module.root(), Live, LiveParts);
    for (TensorId T : Module.entryArgs())
      Live[T] = 1;

    erasePass(Module.root(), Live, LiveParts);
  }

  void markLiveDecls(IRBlock &Block, std::vector<uint8_t> &Live,
                     std::vector<uint8_t> &LiveParts) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      forEachSlice(*Op, [&](TensorSlice &Slice) {
        Live[Slice.Tensor] = 1;
        std::optional<PartitionId> Part = Slice.Part;
        while (Part) {
          if (LiveParts[*Part])
            break;
          LiveParts[*Part] = 1;
          const IRPartition &P = Module.partition(*Part);
          Live[P.Base.Tensor] = 1;
          Part = P.Base.Part;
        }
      });
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
        markLiveDecls(Op->Body, Live, LiveParts);
    }
  }

  void erasePass(IRBlock &Block, const std::vector<uint8_t> &Live,
                 const std::vector<uint8_t> &LiveParts) {
    for (size_t I = 0; I < Block.Ops.size();) {
      Operation &Op = *Block.Ops[I];
      bool Erase = false;
      if (Op.Kind == OpKind::Alloc && !Live[Op.AllocTensor])
        Erase = true;
      if (Op.Kind == OpKind::MakePart && !LiveParts[Op.Part])
        Erase = true;
      if (Erase) {
        Block.Ops.erase(Block.Ops.begin() + static_cast<long>(I));
        continue;
      }
      if (Op.Kind == OpKind::For || Op.Kind == OpKind::PFor)
        erasePass(Op.Body, Live, LiveParts);
      ++I;
    }
  }

  /// Post-condition of Section 3.3: no tensor mapped to `none` may survive
  /// in a copy or call (it would have to be materialized).
  ErrorOrVoid checkNoneConstraint() {
    std::optional<Diagnostic> Err;
    checkNoneIn(Module.root(), Err);
    if (Err)
      return *Err;
    return ErrorOrVoid::success();
  }

  void checkNoneIn(IRBlock &Block, std::optional<Diagnostic> &Err) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Err)
        return;
      forEachSlice(*Op, [&](const TensorSlice &Slice) {
        if (Err)
          return;
        const IRTensor &T = Module.tensor(Slice.Tensor);
        if (T.Mem == Memory::None)
          Err = Diagnostic(formatString(
              "tensor %s mapped to the none memory cannot be eliminated; "
              "change the partitioning or mapping strategy",
              T.Name.c_str()));
      });
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor)
        checkNoneIn(Op->Body, Err);
    }
  }

  IRModule &Module;
  PassCounters *Counters;
  CancelCheck *Cancel;
  GraphScratch &S;
  SlotWorklist (&Work)[NumPatterns] = S.Work; ///< Alias into S.
};

} // namespace

ErrorOrVoid cypress::runCopyElimination(IRModule &Module,
                                        PassCounters *Counters,
                                        CancelCheck *Cancel) {
  return CopyEliminator(Module, Counters, Cancel).run();
}

//===----------------------------------------------------------------------===//
// Execution-unit assignment
//===----------------------------------------------------------------------===//

namespace {
void assignExecUnitsIn(IRModule &Module, IRBlock &Block) {
  for (std::unique_ptr<Operation> &Op : Block.Ops) {
    if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
      assignExecUnitsIn(Module, Op->Body);
      continue;
    }
    if (Op->Kind != OpKind::Copy)
      continue;
    const IRTensor &SrcT = Module.tensor(Op->CopySrc.Tensor);
    const IRTensor &DstT = Module.tensor(Op->CopyDst.Tensor);
    // Bulk global<->shared transfers ride the TMA on Hopper (Section 2.2);
    // everything else (register traffic, shared<->shared staging) is SIMT.
    // A mapping may pin a tensor's copies to SIMT (SimtCopyParams): those
    // transfers then run on the consumer warps — the exec-unit assignment
    // axis the autotuner sweeps.
    bool Tma = ((SrcT.Mem == Memory::Global && DstT.Mem == Memory::Shared) ||
                (SrcT.Mem == Memory::Shared && DstT.Mem == Memory::Global)) &&
               !SrcT.ForceSimtCopy && !DstT.ForceSimtCopy;
    Op->Unit = Tma ? ExecUnit::TMA : ExecUnit::SIMT;
  }
}
} // namespace

void cypress::assignExecUnits(IRModule &Module) {
  assignExecUnitsIn(Module, Module.root());
}

//===----------------------------------------------------------------------===//
// Event scope repair (shared by copy elimination and resource allocation)
//===----------------------------------------------------------------------===//

namespace {

/// Pooled state for repairEventScopes: the repair runs once per pipeline
/// stage AND once per copy-elimination fixpoint, so its tables are pooled
/// per thread and the recursion is direct (no std::function dispatch).
struct ScopeRepairScratch {
  std::vector<std::vector<const Operation *>> Chains;
  size_t NumChains = 0; ///< Live prefix of Chains (rest keep capacity).
  std::vector<uint32_t> ChainOf;
  std::vector<const Operation *> Chain;
  std::vector<EventRef> Kept, Unique;

  std::vector<const Operation *> &freshChain() {
    if (NumChains == Chains.size())
      Chains.emplace_back();
    std::vector<const Operation *> &C = Chains[NumChains++];
    C.clear();
    return C;
  }
};

ScopeRepairScratch &scopeRepairScratch() {
  thread_local ScopeRepairScratch Scratch;
  return Scratch;
}

constexpr uint32_t NoChain = ~0u;

/// Definition environment per event: the chain of loop ops entered to
/// reach the defining block (empty = root block). Every event defined in
/// one loop nest shares a chain, so chains are stored once per nest and
/// events map to a chain index — no per-event vector copies.
class ScopeRepairer {
public:
  ScopeRepairer(IRModule &Module, ScopeRepairScratch &S)
      : Module(Module), S(S) {}

  void run() {
    S.NumChains = 0;
    S.freshChain(); // Chain 0: the root block.
    S.ChainOf.assign(Module.numEvents(), NoChain);
    S.Chain.clear();
    collect(Module.root(), 0);
    S.Chain.clear();
    fix(Module.root());
  }

private:
  void collect(const IRBlock &Block, uint32_t ChainId) {
    for (const std::unique_ptr<Operation> &Op : Block.Ops) {
      if (Op->Result != InvalidEventId && Op->Result < Module.numEvents())
        S.ChainOf[Op->Result] = ChainId;
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        S.Chain.push_back(Op.get());
        S.freshChain().assign(S.Chain.begin(), S.Chain.end());
        collect(Op->Body, static_cast<uint32_t>(S.NumChains) - 1);
        S.Chain.pop_back();
      }
    }
  }

  void fix(IRBlock &Block) {
    for (std::unique_ptr<Operation> &Op : Block.Ops) {
      S.Kept.clear();
      for (EventRef &Ref : Op->Preconds) {
        if (Ref.Event >= Module.numEvents() ||
            S.ChainOf[Ref.Event] == NoChain)
          continue; // Producer erased without rewiring: drop.
        const std::vector<const Operation *> &Def =
            S.Chains[S.ChainOf[Ref.Event]];
        size_t Common = 0;
        while (Common < Def.size() && Common < S.Chain.size() &&
               Def[Common] == S.Chain[Common])
          ++Common;
        if (Common == Def.size()) {
          S.Kept.push_back(std::move(Ref));
          continue;
        }
        // The event lives inside loops the user is not in; wait for the
        // outermost such loop instead.
        const Operation *Loop = Def[Common];
        if (Loop == Op.get())
          continue; // A loop waiting on its own body: drop.
        if (Loop->Result == InvalidEventId)
          continue;
        EventRef Repl;
        Repl.Event = Loop->Result;
        const EventType &Type = Module.event(Loop->Result).Type;
        for (size_t D = 0; D < Type.Dims.size(); ++D)
          Repl.Indices.push_back(EventIndex::broadcast());
        S.Kept.push_back(std::move(Repl));
      }
      // Deduplicate structurally identical references.
      S.Unique.clear();
      for (EventRef &Ref : S.Kept) {
        bool Seen = false;
        for (const EventRef &Have : S.Unique) {
          if (Have.Event != Ref.Event || Have.IterLag != Ref.IterLag ||
              Have.Indices.size() != Ref.Indices.size())
            continue;
          bool Same = true;
          for (size_t D = 0; D < Ref.Indices.size(); ++D) {
            if (Have.Indices[D].isBroadcast() !=
                    Ref.Indices[D].isBroadcast() ||
                (!Ref.Indices[D].isBroadcast() &&
                 !Have.Indices[D].Index.equals(Ref.Indices[D].Index))) {
              Same = false;
              break;
            }
          }
          if (Same) {
            Seen = true;
            break;
          }
        }
        if (!Seen)
          S.Unique.push_back(std::move(Ref));
      }
      Op->Preconds.swap(S.Unique);
      if (Op->Kind == OpKind::For || Op->Kind == OpKind::PFor) {
        S.Chain.push_back(Op.get());
        fix(Op->Body);
        S.Chain.pop_back();
      }
    }
  }

  IRModule &Module;
  ScopeRepairScratch &S;
};

} // namespace

void cypress::repairEventScopes(IRModule &Module) {
  ScopeRepairer(Module, scopeRepairScratch()).run();
}

std::unique_ptr<Pass> cypress::createCopyEliminationPass() {
  return std::make_unique<FunctionPass>(
      "copy-elimination", [](PipelineState &State) {
        return runCopyElimination(State.Module, &State.Counters,
                                  State.Cancel);
      });
}

std::unique_ptr<Pass> cypress::createAssignExecUnitsPass() {
  return std::make_unique<FunctionPass>(
      "assign-exec-units", [](PipelineState &State) {
        assignExecUnits(State.Module);
        return ErrorOrVoid::success();
      });
}

std::unique_ptr<Pass> cypress::createRepairEventScopesPass() {
  return std::make_unique<FunctionPass>(
      "repair-event-scopes", [](PipelineState &State) {
        repairEventScopes(State.Module);
        return ErrorOrVoid::success();
      });
}
