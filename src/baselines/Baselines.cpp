//===- Baselines.cpp - Comparator performance models -------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedule models for the comparison systems. Each model composes the
/// same per-stage costs the Cypress simulator charges (Tensor Core cycles,
/// TMA or SIMT copy cycles, barrier costs) according to the loop structure
/// the system generates; the documented behavioural differences — TMA
/// usage, intra-loop overlap, accumulator placement, persistent kernels —
/// are the only degrees of freedom. See docs/DESIGN.md for the calibration
/// argument and docs/BENCHMARKS.md for measured-vs-paper ratios.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "support/MathUtil.h"

#include <algorithm>
#include <cmath>

using namespace cypress;

namespace {

/// Wave-quantized kernel wall time from a steady per-block cycle count.
/// Persistent kernels schedule logical blocks onto resident CTAs and avoid
/// the ceil() — the optimization the paper notes Cypress does not yet do.
BaselineResult finishKernel(double BlockCycles, int64_t Blocks,
                            double TotalFlops, double CompulsoryBytes,
                            const SimConfig &Sim, bool Persistent) {
  double Waves = Persistent
                     ? static_cast<double>(Blocks) /
                           static_cast<double>(Sim.NumSMs)
                     : static_cast<double>(ceilDiv(Blocks, Sim.NumSMs));
  Waves = std::max(Waves, 1.0);
  double Cycles = BlockCycles * Waves + Sim.BlockOverhead;
  double Seconds = Cycles / (Sim.ClockGHz * 1e9);
  Seconds = std::max(Seconds, CompulsoryBytes / Sim.DramBytesPerSec);
  BaselineResult Result;
  Result.Seconds = Seconds;
  Result.BlockCycles = BlockCycles;
  Result.TFlops = TotalFlops / Seconds / 1e12;
  return Result;
}

/// Per-iteration stage costs of a GEMM-family main loop on one block.
struct GemmStageCosts {
  double Tc;        ///< Tensor Core cycles for the tile math.
  double TmaLoads;  ///< TMA cycles to fetch the iteration's tiles.
  double SimtLoads; ///< Same bytes through the SIMT path (no TMA).
  double Iters;
  double Epilogue;  ///< Accumulator store-out.
};

GemmStageCosts gemmStages(const GemmConfig &Config, const SimConfig &Sim,
                          double BytesPerIter, double FlopsPerIter) {
  GemmStageCosts Costs;
  Costs.Tc = FlopsPerIter / Sim.TensorCoreFlopsPerCycle;
  Costs.TmaLoads = BytesPerIter / Sim.TmaBytesPerCycle;
  Costs.SimtLoads = BytesPerIter / Sim.SimtGlobalBytesPerCycle;
  Costs.Iters = static_cast<double>(Config.K / Config.W);
  Costs.Epilogue = static_cast<double>(Config.U * Config.V * 2) /
                       Sim.TmaBytesPerCycle +
                   Sim.BarrierLatency;
  return Costs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Expert oracles
//===----------------------------------------------------------------------===//

BaselineResult cypress::cublasGemm(const GemmConfig &Config,
                                   const SimConfig &Sim) {
  double BytesPerIter =
      static_cast<double>((Config.U + Config.V) * Config.W * 2);
  double FlopsPerIter =
      2.0 * static_cast<double>(Config.U) * static_cast<double>(Config.V) *
      static_cast<double>(Config.W);
  GemmStageCosts S = gemmStages(Config, Sim, BytesPerIter, FlopsPerIter);

  // Perfect warp-specialized pipeline: steady state is the max of the two
  // engines; the hand-tuned kernel hides almost the entire pipeline fill
  // behind the launch, so only one load plus the epilogue is exposed. A 1%
  // factor stands in for residual inefficiency.
  double Steady = std::max(S.Tc, S.TmaLoads);
  double Block =
      (S.Iters * Steady + S.TmaLoads + S.Epilogue) * 1.01;

  int64_t Blocks = (Config.L * Config.M / Config.U) * (Config.N / Config.V);
  double Flops = gemmFlops(Config);
  double Bytes = static_cast<double>(
      Config.L * (Config.M * Config.N + Config.M * Config.K +
                  Config.K * Config.N) * 2);
  return finishKernel(Block, Blocks, Flops, Bytes, Sim,
                      /*Persistent=*/false);
}

BaselineResult cypress::cublasBatchedGemm(const GemmConfig &Config,
                                          const SimConfig &Sim) {
  return cublasGemm(Config, Sim);
}

BaselineResult cypress::expertAttention(const AttentionConfig &Config,
                                        const SimConfig &Sim,
                                        AttentionOracle Which) {
  // Per main-loop iteration over one BC-row K/V tile, for a BR-row block.
  double TcQk = 2.0 * Config.BR * Config.BC * Config.HeadDim /
                Sim.TensorCoreFlopsPerCycle;
  double TcPv = TcQk;
  double Softmax = Config.BR * (12.0 * Config.BC + 2.0 * Config.HeadDim) /
                   (Sim.SimtFlopsPerCycle * Config.WGS);
  double Tma = 2.0 * Config.BC * Config.HeadDim * 2 / Sim.TmaBytesPerCycle;

  // The expert kernels keep the Tensor Core busy: softmax of one
  // warpgroup's band overlaps the other warpgroups' matrix work, so the
  // steady state is the widest engine.
  double Steady = std::max({TcQk + TcPv, Softmax, Tma});
  double Iters = static_cast<double>(Config.SeqLen / Config.BC);
  double Prologue = Sim.GlobalLatency +
                    Config.BR * Config.HeadDim * 2 / Sim.TmaBytesPerCycle;
  double Epilogue = Config.BR * Config.HeadDim * 2 / Sim.TmaBytesPerCycle +
                    Sim.BarrierLatency;

  // Inefficiency factors calibrated so the oracle-vs-oracle ordering and
  // magnitudes match the published Hopper measurements the paper compares
  // against (FA3 ref >= cuDNN > ThunderKittens; all well above Triton):
  // they charge the overheads our pipeline model omits — score conversion
  // to FP16 for the P.V matrix op, register-sourced WGMMA throughput loss,
  // LSE bookkeeping, and predication.
  double Inefficiency = 1.0;
  bool Persistent = false;
  switch (Which) {
  case AttentionOracle::ThunderKittens:
    Inefficiency = 1.22;
    break;
  case AttentionOracle::CuDnn:
    Inefficiency = 1.16;
    break;
  case AttentionOracle::FlashAttention3:
    // The reference FA3 also uses a persistent kernel (Section 5.3), which
    // is what wins at small sequence lengths.
    Inefficiency = 1.14;
    Persistent = true;
    break;
  }
  double Block = (Iters * Steady + Prologue + Epilogue) * Inefficiency;

  int64_t Blocks =
      Config.Batch * Config.Heads * (Config.SeqLen / Config.BR);
  double Flops = attentionFlops(Config);
  double Bytes = 4.0 * Config.Batch * Config.Heads * Config.SeqLen *
                 Config.HeadDim * 2;
  return finishKernel(Block, Blocks, Flops, Bytes, Sim, Persistent);
}

//===----------------------------------------------------------------------===//
// Triton model
//===----------------------------------------------------------------------===//

BaselineResult cypress::tritonGemm(const GemmConfig &Config,
                                   const SimConfig &Sim) {
  double BytesPerIter =
      static_cast<double>((Config.U + Config.V) * Config.W * 2);
  double FlopsPerIter =
      2.0 * static_cast<double>(Config.U) * static_cast<double>(Config.V) *
      static_cast<double>(Config.W);
  GemmStageCosts S = gemmStages(Config, Sim, BytesPerIter, FlopsPerIter);

  // Triton software-pipelines its loads (cp.async multistage) but issues
  // them from SIMT instructions rather than the TMA, and synchronizes the
  // whole block between stages.
  double Steady = std::max(S.Tc + 2 * Sim.BarrierLatency, S.SimtLoads);
  double Block = S.Iters * Steady +
                 static_cast<double>(Config.Pipe) * S.SimtLoads +
                 Sim.GlobalLatency + S.Epilogue;

  int64_t Blocks = (Config.L * Config.M / Config.U) * (Config.N / Config.V);
  double Flops = gemmFlops(Config);
  double Bytes = static_cast<double>(
      Config.L * (Config.M * Config.N + Config.M * Config.K +
                  Config.K * Config.N) * 2);
  return finishKernel(Block, Blocks, Flops, Bytes, Sim, false);
}

BaselineResult cypress::tritonBatchedGemm(const GemmConfig &Config,
                                          const SimConfig &Sim) {
  return tritonGemm(Config, Sim);
}

BaselineResult cypress::tritonDualGemm(const GemmConfig &Config,
                                       const SimConfig &Sim) {
  double LoadA = static_cast<double>(Config.U * Config.W * 2) /
                 Sim.SimtGlobalBytesPerCycle;
  double LoadB = static_cast<double>(Config.W * Config.V * 2) /
                 Sim.SimtGlobalBytesPerCycle;
  double Tc = 2.0 * Config.U * Config.V * Config.W /
              Sim.TensorCoreFlopsPerCycle;

  // Section 5.2: Triton does not overlap the load of B2 with the first
  // GEMM: the second product's operand fetch is exposed every iteration
  // (transfer plus roughly a third of the global latency that thread-level
  // parallelism cannot hide), and the two GEMMs serialize behind a
  // block-wide sync.
  double Steady = std::max(2 * Tc + 2 * Sim.BarrierLatency, LoadA + LoadB) +
                  LoadB + 0.35 * Sim.GlobalLatency;
  double Iters = static_cast<double>(Config.K / Config.W);
  double Epilogue = static_cast<double>(Config.U * Config.V * 2) /
                    Sim.SimtGlobalBytesPerCycle;
  double Block = Iters * Steady +
                 static_cast<double>(Config.Pipe) * (LoadA + LoadB) +
                 Sim.GlobalLatency + Epilogue;

  int64_t Blocks = (Config.M / Config.U) * (Config.N / Config.V);
  double Flops = 2.0 * gemmFlops(Config); // Two products.
  double Bytes = static_cast<double>(Config.M * Config.N +
                                     Config.M * Config.K +
                                     2 * Config.K * Config.N) *
                 2;
  return finishKernel(Block, Blocks, Flops, Bytes, Sim, false);
}

BaselineResult cypress::tritonGemmRed(const GemmConfig &Config,
                                      const SimConfig &Sim) {
  double BytesPerIter =
      static_cast<double>((Config.U + Config.V) * Config.W * 2);
  double FlopsPerIter =
      2.0 * static_cast<double>(Config.U) * static_cast<double>(Config.V) *
      static_cast<double>(Config.W);
  GemmStageCosts S = gemmStages(Config, Sim, BytesPerIter, FlopsPerIter);

  // Section 5.2: Triton waits on the Tensor Core before issuing the
  // reduction (no overlap) and heuristically places the reduction
  // accumulator in shared memory, where the scalar read-modify-write
  // traffic serializes on bank conflicts. Effective reduction throughput
  // observed from its PTX is roughly one element per lane-group cycle.
  double RedCycles = static_cast<double>(Config.U * Config.W) / 8.0;
  double Steady = S.Tc + RedCycles + 4 * Sim.BarrierLatency;
  Steady = std::max(Steady, S.SimtLoads);
  double Block = S.Iters * Steady +
                 static_cast<double>(Config.Pipe) * S.SimtLoads +
                 Sim.GlobalLatency + S.Epilogue;

  int64_t Blocks = (Config.M / Config.U) * (Config.N / Config.V);
  double Flops = gemmFlops(Config) +
                 static_cast<double>(Config.M) *
                     static_cast<double>(Config.K);
  double Bytes = static_cast<double>(Config.M * Config.N +
                                     Config.M * Config.K +
                                     Config.K * Config.N) *
                 2;
  return finishKernel(Block, Blocks, Flops, Bytes, Sim, false);
}

BaselineResult cypress::tritonAttention(const AttentionConfig &Config,
                                        const SimConfig &Sim) {
  // Triton's attention is one block-wide program: Q.K^T, softmax, and P.V
  // execute strictly in sequence (no warpgroup specialization to hide the
  // softmax under the Tensor Core), and K/V tiles arrive through SIMT
  // loads whose latency is only partially hidden by Triton's pipelining.
  double TcQk = 2.0 * Config.BR * Config.BC * Config.HeadDim /
                Sim.TensorCoreFlopsPerCycle;
  double TcPv = TcQk;
  double Softmax = Config.BR * (12.0 * Config.BC + 2.0 * Config.HeadDim) /
                   Sim.SimtFlopsPerCycle;
  double LoadKV = 2.0 * Config.BC * Config.HeadDim * 2 /
                  Sim.SimtGlobalBytesPerCycle;
  double Exposure = 0.5; // Fraction of the load not hidden by pipelining.

  double Steady = TcQk + Softmax + TcPv + 4 * Sim.BarrierLatency +
                  Exposure * LoadKV;
  double Iters = static_cast<double>(Config.SeqLen / Config.BC);
  double Prologue = Sim.GlobalLatency + Config.BR * Config.HeadDim * 2 /
                                            Sim.SimtGlobalBytesPerCycle;
  double Block = Iters * Steady + Prologue;

  int64_t Blocks =
      Config.Batch * Config.Heads * (Config.SeqLen / Config.BR);
  double Flops = attentionFlops(Config);
  double Bytes = 4.0 * Config.Batch * Config.Heads * Config.SeqLen *
                 Config.HeadDim * 2;
  return finishKernel(Block, Blocks, Flops, Bytes, Sim, false);
}
