//===- Baselines.h - Comparator performance models --------------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison systems of Section 5, simulated on the same machine
/// constants as the Cypress backend (see the substitution table in
/// docs/DESIGN.md):
///
///  * Triton: a tile-level compiler model that reproduces Triton's
///    documented Hopper behaviours — software-pipelined loads issued by
///    SIMT instructions instead of the TMA (the default path the paper
///    observed), no cross-operation overlap inside the main loop (each
///    fused op waits on the Tensor Core before issuing follow-on work),
///    and heuristic placement of reduction accumulators in shared memory.
///
///  * Expert oracles (cuBLAS, cuDNN, ThunderKittens, the reference Flash
///    Attention 3): near-roofline schedules — perfectly pipelined TMA /
///    Tensor Core / SIMT stages with a small fixed inefficiency — standing
///    in for closed-source, hand-tuned kernels.
///
/// Every model consumes the same SimConfig as the Cypress simulator, so
/// relative results depend only on schedule structure, never on divergent
/// hardware assumptions.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_BASELINES_BASELINES_H
#define CYPRESS_BASELINES_BASELINES_H

#include "kernels/Kernels.h"
#include "sim/Simulator.h"

namespace cypress {

/// Throughput estimate of one baseline system on one workload.
struct BaselineResult {
  double Seconds = 0.0;
  double TFlops = 0.0;
  double BlockCycles = 0.0;
};

//===----------------------------------------------------------------------===//
// Expert oracles
//===----------------------------------------------------------------------===//

/// cuBLAS-like GEMM: warp-specialized, TMA-fed, triple-buffered main loop
/// at a small fixed overhead from the pipelined roofline.
BaselineResult cublasGemm(const GemmConfig &Config, const SimConfig &Sim);

/// cuBLAS-like batched GEMM (same engine, more blocks).
BaselineResult cublasBatchedGemm(const GemmConfig &Config,
                                 const SimConfig &Sim);

/// Expert attention oracles. `Variant` selects the published loop
/// structure being imitated.
enum class AttentionOracle {
  CuDnn,          ///< cuDNN fused flash kernel.
  ThunderKittens, ///< TK FA2 with 3 consumer warpgroups.
  FlashAttention3 ///< The reference FA3 (persistent kernel included).
};
BaselineResult expertAttention(const AttentionConfig &Config,
                               const SimConfig &Sim, AttentionOracle Which);

//===----------------------------------------------------------------------===//
// Triton model
//===----------------------------------------------------------------------===//

BaselineResult tritonGemm(const GemmConfig &Config, const SimConfig &Sim);
BaselineResult tritonBatchedGemm(const GemmConfig &Config,
                                 const SimConfig &Sim);
BaselineResult tritonDualGemm(const GemmConfig &Config,
                              const SimConfig &Sim);
BaselineResult tritonGemmRed(const GemmConfig &Config, const SimConfig &Sim);
BaselineResult tritonAttention(const AttentionConfig &Config,
                               const SimConfig &Sim);

} // namespace cypress

#endif // CYPRESS_BASELINES_BASELINES_H
