//===- flash_attention.cpp - Forward attention on the simulated H100 ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the Cypress Flash Attention 2 program for a small problem,
/// validates it against a naive softmax(Q.K^T).V reference, and compares
/// the FA2 and FA3 main-loop structures at a benchmark size (the Section
/// 5.3 experiment in miniature).
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace cypress;

namespace {

/// Naive reference attention for one head.
void referenceAttention(const TensorData &Q, const TensorData &K,
                        const TensorData &V, int64_t HeadRow, int64_t SeqLen,
                        int64_t HeadDim, int64_t Row, std::vector<float> &Out) {
  std::vector<float> Scores(SeqLen);
  float Scale = 1.0f / std::sqrt(static_cast<float>(HeadDim));
  float Max = -3e38f;
  for (int64_t J = 0; J < SeqLen; ++J) {
    float Dot = 0.0f;
    for (int64_t D = 0; D < HeadDim; ++D)
      Dot += Q.at({HeadRow + Row, D}) * K.at({HeadRow + J, D});
    Scores[J] = Dot * Scale;
    Max = std::max(Max, Scores[J]);
  }
  float Denom = 0.0f;
  for (int64_t J = 0; J < SeqLen; ++J) {
    Scores[J] = std::exp(Scores[J] - Max);
    Denom += Scores[J];
  }
  Out.assign(HeadDim, 0.0f);
  for (int64_t J = 0; J < SeqLen; ++J)
    for (int64_t D = 0; D < HeadDim; ++D)
      Out[D] += Scores[J] / Denom * V.at({HeadRow + J, D});
}

} // namespace

int main() {
  AttentionConfig Config = fa2Config(/*SeqLen=*/384);
  Config.Heads = 2;

  TaskRegistry Registry;
  registerAttentionTasks(Registry);
  MappingSpec Mapping = attentionMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     attentionArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "fa2");
  if (!Kernel) {
    std::fprintf(stderr, "compile error: %s\n",
                 Kernel.diagnostic().message().c_str());
    return 1;
  }

  TensorData O(attentionArgTypes(Config)[0]);
  TensorData Q(attentionArgTypes(Config)[1]);
  TensorData K(attentionArgTypes(Config)[2]);
  TensorData V(attentionArgTypes(Config)[3]);
  fillRandomFp16(Q.raw(), 1);
  fillRandomFp16(K.raw(), 2);
  fillRandomFp16(V.raw(), 3);

  ErrorOr<SimResult> Result = (*Kernel)->runFunctional({&O, &Q, &K, &V});
  if (!Result) {
    std::fprintf(stderr, "run error: %s\n",
                 Result.diagnostic().message().c_str());
    return 1;
  }

  // Validate a row of head 1 against the reference.
  std::vector<float> Ref;
  int64_t HeadRow = Config.SeqLen; // Head 1 starts after head 0's rows.
  referenceAttention(Q, K, V, HeadRow, Config.SeqLen, Config.HeadDim,
                     /*Row=*/17, Ref);
  double MaxDiff = 0.0;
  for (int64_t D = 0; D < Config.HeadDim; ++D)
    MaxDiff = std::max(MaxDiff,
                       std::fabs(O.at({HeadRow + 17, D}) - double(Ref[D])));
  std::printf("max |cypress - reference| on one row: %.5f\n", MaxDiff);

  // FA2 vs FA3 at a benchmark size (timing only).
  SimConfig Sim;
  for (bool Staged : {false, true}) {
    AttentionConfig Big = Staged ? fa3Config(8192) : fa2Config(8192);
    TaskRegistry BigRegistry;
    registerAttentionTasks(BigRegistry);
    MappingSpec BigMapping = attentionMapping(Big);
    CompileInput BigInput{&BigRegistry, &BigMapping, &MachineModel::h100(),
                          attentionArgTypes(Big)};
    auto BigKernel = compileKernel(BigInput, Staged ? "fa3" : "fa2");
    if (BigKernel)
      std::printf("SeqLen 8192 %s: %.0f TFLOP/s\n",
                  Staged ? "FA3 (staged scores)" : "FA2",
                  (*BigKernel)->runTiming(Sim)->TFlops);
  }
  return 0;
}
