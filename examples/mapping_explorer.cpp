//===- mapping_explorer.cpp - Exploring the performance landscape ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.4's workflow: tuning a kernel in Cypress means editing the
/// mapping specification, never the logical description. This example is a
/// thin client of the autotuning subsystem (src/autotune/): it sweeps tile
/// sizes, pipeline depths, and warpgroup counts for the 4096^3 GEMM and
/// prints the ranked landscape. Infeasible mappings (broken WGMMA band
/// splits, register-file or shared-memory overflow) are pruned statically
/// from the MachineModel's capacities before the pass pipeline runs —
/// decisions that in CUTLASS would require non-trivial code changes and in
/// Triton are hard-coded heuristics. The summary line counts how many full
/// pipeline runs the pruner and the session's kernel cache saved.
///
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"

#include <cstdio>

using namespace cypress;

int main() {
  GemmConfig Base;
  Base.M = Base.N = Base.K = 4096;

  CompilerSession Session;
  Tuner Tuner(Session);
  TuneResult Result =
      Tuner.tune(gemmSearchSpec(Base, gemmSweepAxes()), MachineModel::h100());

  std::printf("%-28s %12s %10s\n", "mapping", "TFLOP/s", "smem KB");
  for (const CandidateResult &Row : Result.Landscape) {
    if (Row.Status == CandidateStatus::Evaluated) {
      std::printf("%-28s %12.1f %10lld\n", Row.Point.str().c_str(),
                  Row.TFlops, (long long)(Row.SharedBytes / 1024));
    } else {
      std::printf("%-28s %12s   (%s)\n", Row.Point.str().c_str(),
                  candidateStatusName(Row.Status),
                  Row.Detail.substr(0, 48).c_str());
    }
  }

  const TuneStats &Stats = Result.Stats;
  std::printf("\n%zu candidates: %zu pruned statically, %zu kernel-cache "
              "hits, %zu pipelines run\n",
              Stats.Candidates, Stats.Pruned, Stats.SessionHits,
              Stats.PipelinesRun);
  if (const CandidateResult *Best = Result.best())
    std::printf("best mapping: %s (%.1f TFLOP/s)\n",
                Best->Point.str().c_str(), Best->TFlops);
  return 0;
}
