//===- mapping_explorer.cpp - Exploring the performance landscape ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.4's workflow: tuning a kernel in Cypress means editing the
/// mapping specification, never the logical description. This example is a
/// thin client of the autotuning subsystem (src/autotune/), built on the
/// budgeted anytime API: Tuner::tuneBudgeted brute-forces spaces small
/// enough to afford (like the Section 5.4 grid here, where it degenerates
/// to the exhaustive sweep) and switches to deterministic guided search —
/// successive halving plus elite mutation — when the space runs to 10^4+
/// points. Infeasible mappings (broken WGMMA band splits, register-file
/// or shared-memory overflow) are pruned statically from the
/// MachineModel's capacities before the pass pipeline runs — decisions
/// that in CUTLASS would require non-trivial code changes and in Triton
/// are hard-coded heuristics. The summary line counts how many full
/// pipeline runs the pruner and the session's kernel cache saved, and the
/// closing lines show the same search against the 7.8*10^4-point guided
/// space under a 64-evaluation budget.
///
//===----------------------------------------------------------------------===//

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"

#include <cstdio>

using namespace cypress;

int main() {
  GemmConfig Base;
  Base.M = Base.N = Base.K = 4096;

  CompilerSession Session;
  Tuner Tuner(Session);

  // The Section 5.4 exploration grid is 24 points: tuneBudgeted notices it
  // fits the budget and falls back to the exhaustive ranked sweep.
  TuneResult Result = Tuner.tuneBudgeted(gemmSearchSpec(Base, gemmSweepAxes()),
                                         MachineModel::h100(), TuneBudget());

  std::printf("%-28s %12s %10s\n", "mapping", "TFLOP/s", "smem KB");
  for (const CandidateResult &Row : Result.Landscape) {
    if (Row.Status == CandidateStatus::Evaluated) {
      std::printf("%-28s %12.1f %10lld\n", Row.Point.str().c_str(),
                  Row.TFlops, (long long)(Row.SharedBytes / 1024));
    } else {
      std::printf("%-28s %12s   (%s)\n", Row.Point.str().c_str(),
                  candidateStatusName(Row.Status),
                  Row.Detail.substr(0, 48).c_str());
    }
  }

  const TuneStats &Stats = Result.Stats;
  std::printf("\n%zu candidates: %zu pruned statically, %zu kernel-cache "
              "hits, %zu pipelines run\n",
              Stats.Candidates, Stats.Pruned, Stats.SessionHits,
              Stats.PipelinesRun);
  if (const CandidateResult *Best = Result.best())
    std::printf("best mapping: %s (%.1f TFLOP/s)\n",
                Best->Point.str().c_str(), Best->TFlops);

  // The same call against the full guided space — per-stream pipeline
  // depths, exec-unit assignment, and the shared-memory cap crossed with
  // wider tiles — where exhaustive sweeping is off the table. The search
  // is deterministic: rerunning this binary visits the same mappings in
  // the same order and prints the same best.
  TuneBudget Budget;
  Budget.MaxEvals = 64;
  TuneResult Guided = Tuner.tuneBudgeted(
      gemmSearchSpec(Base, gemmGuidedAxes()), MachineModel::h100(), Budget);
  std::printf("\nguided search over the widened space: %zu evaluations in "
              "%zu rounds, %zu pipelines run\n",
              Guided.Stats.Evals, Guided.Stats.Rounds,
              Guided.Stats.PipelinesRun);
  if (const CandidateResult *Best = Guided.best())
    std::printf("guided best: %s (%.1f TFLOP/s)\n", Best->Point.str().c_str(),
                Best->TFlops);
  return 0;
}
