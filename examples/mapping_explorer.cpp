//===- mapping_explorer.cpp - Exploring the performance landscape ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.4's workflow: tuning a kernel in Cypress means editing the
/// mapping specification, never the logical description. This example
/// sweeps tile sizes, pipeline depths, and warpgroup counts for the
/// 4096^3 GEMM and prints the landscape, flagging mappings the compiler
/// rejects (shared-memory or register-file overflow) — decisions that in
/// CUTLASS would require non-trivial code changes and in Triton are
/// hard-coded heuristics.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"

#include <cstdio>

using namespace cypress;

int main() {
  SimConfig Sim;
  std::printf("%-28s %12s %10s\n", "mapping", "TFLOP/s", "smem KB");
  for (int64_t U : {64, 128}) {
    for (int64_t V : {128, 256}) {
      for (int64_t Pipe : {2, 3, 4}) {
        for (int64_t Wgs : {1, 2}) {
          GemmConfig Config;
          Config.M = Config.N = Config.K = 4096;
          Config.U = U;
          Config.V = V;
          Config.Pipe = Pipe;
          Config.WGS = Wgs;
          // Row split must divide the tile height into 64-row WGMMA bands.
          if (U / Wgs % 64 != 0)
            continue;
          TaskRegistry Registry;
          registerGemmTasks(Registry);
          MappingSpec Mapping = gemmMapping(Config);
          CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                             gemmArgTypes(Config)};
          char Name[64];
          std::snprintf(Name, sizeof(Name), "U=%lld V=%lld PIPE=%lld WGS=%lld",
                        (long long)U, (long long)V, (long long)Pipe,
                        (long long)Wgs);
          auto Kernel = compileKernel(Input, "gemm");
          if (!Kernel) {
            std::printf("%-28s %12s   (%s)\n", Name, "rejected",
                        Kernel.diagnostic().message().substr(0, 48).c_str());
            continue;
          }
          auto Result = (*Kernel)->runTiming(Sim);
          std::printf("%-28s %12.1f %10lld\n", Name,
                      Result ? Result->TFlops : 0.0,
                      (long long)((*Kernel)->sharedPlan().TotalBytes / 1024));
        }
      }
    }
  }
  return 0;
}
