//===- dual_gemm_glu.cpp - Fused Dual-GEMM for Gated Linear Units ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Gated Linear Unit workload that motivates Figure 13c: a transformer
/// layer computes A.B1 and A.B2 over the same activations; fusing the two
/// products into one kernel halves the activation traffic and keeps the
/// temporaries out of global memory. This example compiles the fused
/// Dual-GEMM, validates it functionally, and contrasts the simulated
/// throughput with running two separate GEMMs.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <cstdio>

using namespace cypress;

int main() {
  GemmConfig Config;
  Config.M = 256;
  Config.N = 512;
  Config.K = 128;

  TaskRegistry Registry;
  registerDualGemmTasks(Registry);
  MappingSpec Mapping = dualGemmMapping(Config);
  CompileInput Input{&Registry, &Mapping, &MachineModel::h100(),
                     dualGemmArgTypes(Config)};
  ErrorOr<std::unique_ptr<CompiledKernel>> Fused =
      compileKernel(Input, "dual_gemm");
  if (!Fused) {
    std::fprintf(stderr, "compile error: %s\n",
                 Fused.diagnostic().message().c_str());
    return 1;
  }

  TensorData C(dualGemmArgTypes(Config)[0]);
  TensorData A(dualGemmArgTypes(Config)[1]);
  TensorData B1(dualGemmArgTypes(Config)[2]);
  TensorData B2(dualGemmArgTypes(Config)[3]);
  fillRandomFp16(A.raw(), 7);
  fillRandomFp16(B1.raw(), 8);
  fillRandomFp16(B2.raw(), 9);

  ErrorOr<SimResult> Result = (*Fused)->runFunctional({&C, &A, &B1, &B2});
  if (!Result) {
    std::fprintf(stderr, "run error: %s\n",
                 Result.diagnostic().message().c_str());
    return 1;
  }

  float Want = 0.0f;
  for (int64_t K = 0; K < Config.K; ++K)
    Want += A.at({10, K}) * (B1.at({K, 20}) + B2.at({K, 20}));
  std::printf("fused C[10][20] = %f (reference %f)\n", C.at({10, 20}), Want);

  // Throughput comparison at a realistic size: fused Dual-GEMM vs two
  // separate GEMM launches of the same total work.
  GemmConfig Big;
  Big.M = Big.N = Big.K = 4096;
  TaskRegistry BigRegistry;
  registerDualGemmTasks(BigRegistry);
  registerGemmTasks(BigRegistry);
  MappingSpec DualMap = dualGemmMapping(Big);
  CompileInput DualIn{&BigRegistry, &DualMap, &MachineModel::h100(),
                      dualGemmArgTypes(Big)};
  MappingSpec GemmMap = gemmMapping(Big);
  CompileInput GemmIn{&BigRegistry, &GemmMap, &MachineModel::h100(),
                      gemmArgTypes(Big)};
  auto FusedBig = compileKernel(DualIn, "dual_big");
  auto Plain = compileKernel(GemmIn, "gemm_big");
  if (FusedBig && Plain) {
    SimConfig Sim;
    double FusedSec = (*FusedBig)->runTiming(Sim)->TotalSeconds;
    double TwoPassSec = 2.0 * (*Plain)->runTiming(Sim)->TotalSeconds;
    std::printf("4096^3 GLU core: fused %.0f us vs two GEMM passes %.0f us "
                "(%.2fx)\n",
                FusedSec * 1e6, TwoPassSec * 1e6, TwoPassSec / FusedSec);
  }
  return 0;
}
