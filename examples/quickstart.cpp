//===- quickstart.cpp - First steps with the Cypress library -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: compile the Figure 5 GEMM program for a small
/// problem, run it functionally on the simulated H100, check the result
/// against a naive reference, look at the throughput estimate, and dump
/// the generated warp-specialized CUDA.
///
///   $ ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Session.h"
#include "support/Random.h"

#include <cstdio>

using namespace cypress;

int main() {
  // 1. A Cypress program = logical description (task tree) + mapping.
  //    The library ships the paper's GEMM; write your own by registering
  //    inner/leaf task variants (see src/kernels/Gemm.cpp).
  GemmConfig Config;
  Config.M = 512;
  Config.N = 512;
  Config.K = 256;

  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);

  // 2. Compile through a CompilerSession: dependence analysis ->
  //    vectorization -> copy elimination -> shared-memory allocation ->
  //    warp specialization, with the IR verified between stages. The
  //    session caches by (registry, mapping, machine, argument types), so
  //    recompiling the same kernel is a lookup, and independent kernels
  //    can be compiled concurrently with Session.compileAll.
  CompilerSession Session;
  CompileInput Input;
  Input.Registry = &Registry;
  Input.Mapping = &Mapping;
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = gemmArgTypes(Config);
  ErrorOr<std::shared_ptr<const CompiledKernel>> Kernel =
      Session.compile(Input, "quickstart_gemm");
  if (!Kernel) {
    std::fprintf(stderr, "compile error: %s\n",
                 Kernel.diagnostic().str().c_str());
    return 1;
  }

  // 3. Run functionally on the simulator: real FP16 data in, real results
  //    out, with the race detector watching the generated synchronization.
  TensorData C(gemmArgTypes(Config)[0]);
  TensorData A(gemmArgTypes(Config)[1]);
  TensorData B(gemmArgTypes(Config)[2]);
  fillRandomFp16(A.raw(), /*Seed=*/1);
  fillRandomFp16(B.raw(), /*Seed=*/2);

  ErrorOr<SimResult> Result = (*Kernel)->runFunctional({&C, &A, &B});
  if (!Result) {
    std::fprintf(stderr, "run error: %s\n",
                 Result.diagnostic().message().c_str());
    return 1;
  }

  // 4. Check one element against the obvious formula.
  float Want = 0.0f;
  for (int64_t K = 0; K < Config.K; ++K)
    Want += A.at({3, K}) * B.at({K, 5});
  std::printf("C[3][5] = %f (reference %f)\n", C.at({3, 5}), Want);
  std::printf("simulated: %.1f TFLOP/s over %lld blocks, races: %zu\n",
              Result->TFlops, static_cast<long long>(Result->Blocks),
              Result->Races.size());

  // 5. Compile-time observability: the pass manager times every stage.
  std::printf("\ncompile passes (%.0f us total):\n",
              (*Kernel)->stats().TotalMicros);
  for (const PassStat &Stat : (*Kernel)->stats().Passes)
    std::printf("  %-22s %8.1f us  (%zu ops)\n", Stat.Name.c_str(),
                Stat.Micros, Stat.OpsAfter);

  // 6. A second compile of the same input is a cache hit: same kernel.
  ErrorOr<std::shared_ptr<const CompiledKernel>> Again =
      Session.compile(Input, "quickstart_gemm");
  std::printf("recompile was a cache %s\n",
              Again && Again->get() == Kernel->get() ? "hit" : "miss");

  // 7. The compiler's other artifacts: the event IR (the paper's Figure 8
  //    notation) and the warp-specialized CUDA source.
  std::printf("\n--- event IR (excerpt) ---\n%.1200s...\n",
              (*Kernel)->irDump().c_str());
  std::printf("\n--- generated CUDA (excerpt) ---\n%.1200s...\n",
              (*Kernel)->cudaSource().c_str());
  return 0;
}
