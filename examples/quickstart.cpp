//===- quickstart.cpp - First steps with the Cypress library -----------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: compile the Figure 5 GEMM program for a small
/// problem, run it functionally on the simulated H100, check the result
/// against a naive reference, look at the throughput estimate, and dump
/// the generated warp-specialized CUDA.
///
///   $ ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <cstdio>

using namespace cypress;

int main() {
  // 1. A Cypress program = logical description (task tree) + mapping.
  //    The library ships the paper's GEMM; write your own by registering
  //    inner/leaf task variants (see src/kernels/Gemm.cpp).
  GemmConfig Config;
  Config.M = 512;
  Config.N = 512;
  Config.K = 256;

  TaskRegistry Registry;
  registerGemmTasks(Registry);
  MappingSpec Mapping = gemmMapping(Config);

  // 2. Compile: dependence analysis -> vectorization -> copy elimination
  //    -> shared-memory allocation -> warp specialization.
  CompileInput Input;
  Input.Registry = &Registry;
  Input.Mapping = &Mapping;
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = gemmArgTypes(Config);
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, "quickstart_gemm");
  if (!Kernel) {
    std::fprintf(stderr, "compile error: %s\n",
                 Kernel.diagnostic().message().c_str());
    return 1;
  }

  // 3. Run functionally on the simulator: real FP16 data in, real results
  //    out, with the race detector watching the generated synchronization.
  TensorData C(gemmArgTypes(Config)[0]);
  TensorData A(gemmArgTypes(Config)[1]);
  TensorData B(gemmArgTypes(Config)[2]);
  fillRandomFp16(A.raw(), /*Seed=*/1);
  fillRandomFp16(B.raw(), /*Seed=*/2);

  ErrorOr<SimResult> Result = (*Kernel)->runFunctional({&C, &A, &B});
  if (!Result) {
    std::fprintf(stderr, "run error: %s\n",
                 Result.diagnostic().message().c_str());
    return 1;
  }

  // 4. Check one element against the obvious formula.
  float Want = 0.0f;
  for (int64_t K = 0; K < Config.K; ++K)
    Want += A.at({3, K}) * B.at({K, 5});
  std::printf("C[3][5] = %f (reference %f)\n", C.at({3, 5}), Want);
  std::printf("simulated: %.1f TFLOP/s over %lld blocks, races: %zu\n",
              Result->TFlops, static_cast<long long>(Result->Blocks),
              Result->Races.size());

  // 5. The compiler's other artifacts: the event IR (the paper's Figure 8
  //    notation) and the warp-specialized CUDA source.
  std::printf("\n--- event IR (excerpt) ---\n%.1200s...\n",
              (*Kernel)->irDump().c_str());
  std::printf("\n--- generated CUDA (excerpt) ---\n%.1200s...\n",
              (*Kernel)->cudaSource().c_str());
  return 0;
}
