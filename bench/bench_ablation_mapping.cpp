//===- bench_ablation_mapping.cpp - Mapping-knob ablations -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the performance-sensitive mapping decisions Sections 3.3-4.2
/// call out, on the 4096^3 GEMM and 8K-sequence attention:
///
///   * software pipeline depth (1 = no pipelining .. 4),
///   * warp specialization on/off,
///   * consumer warpgroup count,
///   * the FA3 staged-scores restructuring on/off.
///
/// Each knob is a pure mapping change; the logical descriptions are
/// untouched, demonstrating the performance/correctness separation of
/// Section 3.5. Every ablation is a one-axis search space driven through
/// the shared autotuner (src/autotune/), so knob settings that reappear
/// across tables (e.g. the tuned default) are evaluated once and replayed
/// from the tuner's cost cache.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "autotune/KernelSpaces.h"
#include "autotune/Tuner.h"

using namespace cypress;
using namespace cypress::bench;

namespace {

/// The evaluated TFLOP/s of the single-axis candidate with \p Value
/// (0.0 when it was pruned or failed, matching the old rows-of-zeros
/// convention for rejected variants).
double tflopsAt(const TuneResult &Result, const std::string &Axis,
                int64_t Value) {
  for (const CandidateResult &Row : Result.Landscape)
    if (Row.Point.at(Axis) == Value)
      return Row.Status == CandidateStatus::Evaluated ? Row.TFlops : 0.0;
  return 0.0;
}

} // namespace

int main() {
  SimConfig Sim;
  GemmConfig Gemm;
  Gemm.M = Gemm.N = Gemm.K = 4096;

  CompilerSession Session;
  Tuner Tuner(Session);
  auto SweepGemm = [&](const std::string &Axis, std::vector<int64_t> Values) {
    return Tuner.tune(gemmSearchSpec(Gemm, {{Axis, std::move(Values)}}),
                      MachineModel::h100(), Sim);
  };

  {
    Table T("Ablation: GEMM 4096^3 pipeline depth", "PIPE", {"Cypress"});
    TuneResult R = SweepGemm("PIPE", {1, 2, 3, 4});
    for (int64_t Pipe : {1, 2, 3, 4})
      T.row(std::to_string(Pipe), {tflopsAt(R, "PIPE", Pipe)});
  }
  {
    Table T("Ablation: GEMM 4096^3 warp specialization", "Mode", {"Cypress"});
    TuneResult R = SweepGemm("WSPEC", {1, 0});
    for (bool WarpSpec : {true, false})
      T.row(WarpSpec ? "specialized" : "bulk-sync",
            {tflopsAt(R, "WSPEC", WarpSpec ? 1 : 0)});
  }
  {
    Table T("Ablation: GEMM 4096^3 consumer warpgroups", "WGS", {"Cypress"});
    TuneResult R = SweepGemm("WGS", {1, 2});
    for (int64_t Wgs : {1, 2})
      T.row(std::to_string(Wgs), {tflopsAt(R, "WGS", Wgs)});
  }
  {
    Table T("Ablation: Attention 8192 staged scores (FA2 -> FA3)", "Variant",
            {"Cypress"});
    TuneResult R = Tuner.tune(
        attentionSearchSpec(fa2Config(8192), {{"STAGE", {0, 1}}}),
        MachineModel::h100(), Sim);
    for (bool Stage : {false, true})
      T.row(Stage ? "staged (FA3)" : "direct (FA2)",
            {tflopsAt(R, "STAGE", Stage ? 1 : 0)});
  }

  CacheStats Cache = Session.cacheStats();
  std::printf("autotuner: %llu pipeline runs, %llu kernel-cache hits, "
              "%zu kernels resident\n",
              (unsigned long long)Cache.Misses,
              (unsigned long long)Cache.Hits, Cache.Entries);
  return 0;
}
