//===- bench_ablation_mapping.cpp - Mapping-knob ablations -------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the performance-sensitive mapping decisions Sections 3.3-4.2
/// call out, on the 4096^3 GEMM and 8K-sequence attention:
///
///   * software pipeline depth (1 = no pipelining .. 4),
///   * warp specialization on/off,
///   * consumer warpgroup count,
///   * the FA3 staged-scores restructuring on/off.
///
/// Each knob is a pure mapping change; the logical descriptions are
/// untouched, demonstrating the performance/correctness separation of
/// Section 3.5.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cypress;
using namespace cypress::bench;

namespace {

double gemmVariantTFlops(const GemmConfig &Config, const SimConfig &Sim) {
  OwnedKernel Kernel = compileOwned(
      "gemm", registerGemmTasks,
      [&] { return gemmMapping(Config); },
      [&] { return gemmArgTypes(Config); });
  return cypressTFlops(Kernel, Sim);
}

} // namespace

int main() {
  SimConfig Sim;

  {
    Table T("Ablation: GEMM 4096^3 pipeline depth", "PIPE",
            {"Cypress"});
    for (int64_t Pipe : {1, 2, 3, 4}) {
      GemmConfig Config;
      Config.M = Config.N = Config.K = 4096;
      Config.Pipe = Pipe;
      T.row(std::to_string(Pipe), {gemmVariantTFlops(Config, Sim)});
    }
  }
  {
    Table T("Ablation: GEMM 4096^3 warp specialization", "Mode",
            {"Cypress"});
    for (bool WarpSpec : {true, false}) {
      GemmConfig Config;
      Config.M = Config.N = Config.K = 4096;
      Config.WarpSpecialize = WarpSpec;
      T.row(WarpSpec ? "specialized" : "bulk-sync",
            {gemmVariantTFlops(Config, Sim)});
    }
  }
  {
    Table T("Ablation: GEMM 4096^3 consumer warpgroups", "WGS",
            {"Cypress"});
    for (int64_t Wgs : {1, 2}) {
      GemmConfig Config;
      Config.M = Config.N = Config.K = 4096;
      Config.WGS = Wgs;
      T.row(std::to_string(Wgs), {gemmVariantTFlops(Config, Sim)});
    }
  }
  {
    Table T("Ablation: Attention 8192 staged scores (FA2 -> FA3)",
            "Variant", {"Cypress"});
    for (bool Stage : {false, true}) {
      AttentionConfig Config = fa2Config(8192);
      Config.StageScores = Stage;
      OwnedKernel Kernel = compileOwned(
          "fa", registerAttentionTasks,
          [&] { return attentionMapping(Config); },
          [&] { return attentionArgTypes(Config); });
      T.row(Stage ? "staged (FA3)" : "direct (FA2)",
            {cypressTFlops(Kernel, Sim)});
    }
  }
  return 0;
}
