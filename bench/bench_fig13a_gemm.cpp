//===- bench_fig13a_gemm.cpp - Figure 13a: FP16 GEMM throughput ------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13a: FP16 GEMM throughput (TFLOP/s) for
/// M = N = K in {4096, 6144, 8192}, comparing Cypress, Triton, and cuBLAS.
/// Paper result: Cypress achieves 0.88x-1.06x cuBLAS and 1.05x-1.11x
/// Triton.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cypress;
using namespace cypress::bench;

int main() {
  SimConfig Sim;
  Table T("Figure 13a: GEMM (FP16)", "Size (M=N=K)",
          {"Cypress", "Triton", "cuBLAS"});
  for (int64_t Size : {4096, 6144, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    OwnedKernel Kernel = compileOwned(
        "gemm", registerGemmTasks, [&] { return gemmMapping(Config); },
        [&] { return gemmArgTypes(Config); });
    double Cypress = cypressTFlops(Kernel, Sim);
    double Triton = tritonGemm(Config, Sim).TFlops;
    double Cublas = cublasGemm(Config, Sim).TFlops;
    T.row(std::to_string(Size), {Cypress, Triton, Cublas});
    std::printf("  ratios: vs cuBLAS %.3f, vs Triton %.3f\n",
                Cypress / Cublas, Cypress / Triton);
  }
  return 0;
}
