//===- bench_headline_ratios.cpp - Abstract/Section 5 headline numbers ------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the paper's headline claims in one place:
///   * GEMM:            0.88x-1.06x cuBLAS,
///   * Flash Attention: 0.80x-0.98x of the best-known implementation,
///   * vs Triton:       0.99x-2.18x across all kernels.
/// Prints each measured ratio with the paper's band and a PASS/SHAPE-OK
/// verdict (in-band, or same winner and within 15% of the band edge).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace cypress;
using namespace cypress::bench;

namespace {

void report(const char *Name, double Ratio, double Lo, double Hi) {
  const char *Verdict = "OUT-OF-SHAPE";
  if (Ratio >= Lo && Ratio <= Hi)
    Verdict = "PASS";
  else if (Ratio >= Lo * 0.85 && Ratio <= Hi * 1.15)
    Verdict = "SHAPE-OK";
  std::printf("%-34s measured %.3f  paper [%.2f, %.2f]  %s\n", Name, Ratio,
              Lo, Hi, Verdict);
}

} // namespace

int main() {
  SimConfig Sim;
  std::printf("== Headline ratios (abstract / Section 5) ==\n");

  double MinVsCublas = 1e9, MaxVsCublas = 0;
  double MinVsTriton = 1e9, MaxVsTriton = 0;
  for (int64_t Size : {4096, 6144, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    OwnedKernel Kernel = compileOwned(
        "gemm", registerGemmTasks, [&] { return gemmMapping(Config); },
        [&] { return gemmArgTypes(Config); });
    double Cypress = cypressTFlops(Kernel, Sim);
    MinVsCublas = std::min(MinVsCublas,
                           Cypress / cublasGemm(Config, Sim).TFlops);
    MaxVsCublas = std::max(MaxVsCublas,
                           Cypress / cublasGemm(Config, Sim).TFlops);
    MinVsTriton = std::min(MinVsTriton,
                           Cypress / tritonGemm(Config, Sim).TFlops);
    MaxVsTriton = std::max(MaxVsTriton,
                           Cypress / tritonGemm(Config, Sim).TFlops);
  }
  report("GEMM vs cuBLAS (min)", MinVsCublas, 0.88, 1.06);
  report("GEMM vs cuBLAS (max)", MaxVsCublas, 0.88, 1.06);
  report("GEMM vs Triton (min)", MinVsTriton, 1.05, 1.11);
  report("GEMM vs Triton (max)", MaxVsTriton, 1.05, 1.11);

  {
    GemmConfig Config;
    Config.M = Config.N = Config.K = 8192;
    OwnedKernel Kernel = compileOwned(
        "dual", registerDualGemmTasks,
        [&] { return dualGemmMapping(Config); },
        [&] { return dualGemmArgTypes(Config); });
    report("Dual-GEMM vs Triton",
           cypressTFlops(Kernel, Sim) / tritonDualGemm(Config, Sim).TFlops,
           1.36, 1.40);
  }
  {
    GemmConfig Config;
    Config.M = Config.N = Config.K = 8192;
    OwnedKernel Kernel = compileOwned(
        "gemmred", registerGemmRedTasks,
        [&] { return gemmRedMapping(Config); },
        [&] { return gemmRedArgTypes(Config); });
    report("GEMM+Reduction vs Triton",
           cypressTFlops(Kernel, Sim) / tritonGemmRed(Config, Sim).TFlops,
           2.02, 2.18);
  }

  double MinVsBest = 1e9, MaxVsBest = 0;
  for (int64_t SeqLen : {2048, 4096, 8192, 16384}) {
    AttentionConfig Fa3 = fa3Config(SeqLen);
    OwnedKernel Kernel = compileOwned(
        "fa3", registerAttentionTasks, [&] { return attentionMapping(Fa3); },
        [&] { return attentionArgTypes(Fa3); });
    double Best =
        expertAttention(Fa3, Sim, AttentionOracle::FlashAttention3).TFlops;
    double Ratio = cypressTFlops(Kernel, Sim) / Best;
    MinVsBest = std::min(MinVsBest, Ratio);
    MaxVsBest = std::max(MaxVsBest, Ratio);
  }
  report("Attention vs best FA (min)", MinVsBest, 0.80, 0.98);
  report("Attention vs best FA (max)", MaxVsBest, 0.80, 0.98);
  return 0;
}
