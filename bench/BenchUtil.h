//===- BenchUtil.h - Shared benchmark harness helpers ----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: kernel compilation
/// with owned registries/mappings, and the table printer that emits the
/// rows the paper's plots are drawn from. Every bench binary prints a
/// table named after the paper figure it regenerates, with one row per
/// x-axis point and one column per system; docs/BENCHMARKS.md records these
/// against the published numbers.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_BENCH_BENCHUTIL_H
#define CYPRESS_BENCH_BENCHUTIL_H

#include "baselines/Baselines.h"
#include "kernels/Kernels.h"
#include "runtime/Runtime.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cypress::bench {

/// The gated benches (bench_compile_time, bench_sim_hotpath) share one
/// quiet-window methodology: one warmup pass that pays first-touch page
/// faults and pool growth, then the best of this many measured repeats.
/// Best-of-N against a common N is what makes the committed baselines
/// comparable across benches and across refreshes — the PR4-era baselines
/// disagreed with the claimed numbers precisely because each bench picked
/// its own repeat policy under different host load.
constexpr int kQuietBestOf = 5;

/// Host-quietness probe for the JSON's `host_contention` sanity field:
/// times a fixed ~1ms spin workload several times and reports median/min.
/// On an idle core the samples are nearly identical (~1.0); a timeshared
/// host steals time from most samples and pushes the median up. The
/// median (not the max) is what keeps one scheduler tick from condemning
/// a quiet window. Baselines recorded with a value much above ~1.5 were
/// captured in a noisy window and should be re-recorded, not trusted.
inline double hostContention() {
  using Clock = std::chrono::steady_clock;
  volatile uint64_t Sink = 0;
  double Samples[9];
  for (double &Ns : Samples) {
    Clock::time_point Start = Clock::now();
    for (uint64_t I = 0; I < 2000000; ++I)
      Sink = Sink + I;
    Ns = std::chrono::duration<double, std::nano>(Clock::now() - Start)
             .count();
  }
  constexpr size_t N = sizeof(Samples) / sizeof(Samples[0]);
  std::sort(Samples, Samples + N);
  return Samples[0] > 0.0 ? Samples[N / 2] / Samples[0] : 1.0;
}

/// Opens `<dir>/BENCH_<slug>.json` following the CYPRESS_BENCH_JSON
/// convention (the variable's value is the directory, "1" means the
/// current directory). Returns nullptr when the variable is unset or the
/// path is unwritable (with a warning). Caller closes the file.
inline std::FILE *benchJsonOpen(const std::string &Slug) {
  const char *Dir = std::getenv("CYPRESS_BENCH_JSON");
  if (!Dir || !*Dir)
    return nullptr;
  std::string Path = std::string(std::strcmp(Dir, "1") == 0 ? "." : Dir) +
                     "/BENCH_" + Slug + ".json";
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
  return Out;
}

/// Escapes a string for embedding in the BENCH_*.json output.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// A compiled kernel together with the registry/mapping that back it.
struct OwnedKernel {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
};

template <typename RegisterFn, typename MappingFn, typename ArgsFn>
OwnedKernel compileOwned(const char *Name, RegisterFn Register,
                         MappingFn BuildMapping, ArgsFn BuildArgs) {
  OwnedKernel Owned;
  Owned.Registry = std::make_unique<TaskRegistry>();
  Register(*Owned.Registry);
  Owned.Mapping = std::make_unique<MappingSpec>(BuildMapping());
  CompileInput Input;
  Input.Registry = Owned.Registry.get();
  Input.Mapping = Owned.Mapping.get();
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = BuildArgs();
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, Name);
  if (!Kernel) {
    std::fprintf(stderr, "error: %s: %s\n", Name,
                 Kernel.diagnostic().message().c_str());
    return Owned;
  }
  Owned.Kernel = std::move(*Kernel);
  return Owned;
}

/// Simulated TFLOP/s of a compiled Cypress kernel (aborts the row on
/// simulation errors, which the tests elsewhere guarantee not to happen).
inline double cypressTFlops(const OwnedKernel &Owned, const SimConfig &Sim) {
  if (!Owned.Kernel)
    return 0.0;
  ErrorOr<SimResult> Result = Owned.Kernel->runTiming(Sim);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.diagnostic().message().c_str());
    return 0.0;
  }
  if (!Result->Races.empty())
    std::fprintf(stderr, "warning: race detected: %s\n",
                 Result->Races[0].c_str());
  return Result->TFlops;
}

/// Prints one figure table: header then one row per size.
class Table {
public:
  Table(std::string Title, std::string XLabel,
        std::vector<std::string> Systems)
      : Title(std::move(Title)), XLabel(std::move(XLabel)),
        Systems(std::move(Systems)) {
    std::printf("== %s ==\n", this->Title.c_str());
    std::printf("%-18s", this->XLabel.c_str());
    for (const std::string &System : this->Systems)
      std::printf("%14s", System.c_str());
    std::printf("\n");
  }

  void row(const std::string &X, const std::vector<double> &TFlops) {
    std::printf("%-18s", X.c_str());
    for (double Value : TFlops)
      std::printf("%14.1f", Value);
    std::printf("\n");
    Rows.emplace_back(X, TFlops);
  }

  ~Table() {
    std::printf("\n");
    maybeWriteJson();
  }

private:
  /// When CYPRESS_BENCH_JSON is set, dump the table as
  /// `<dir>/BENCH_<slug>.json` (dir is the variable's value; "1" means the
  /// current directory) so plots can be regenerated without scraping stdout.
  void maybeWriteJson() const {
    std::string Slug;
    for (char C : Title)
      Slug += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
    std::FILE *Out = benchJsonOpen(Slug);
    if (!Out)
      return;
    std::fprintf(Out, "{\n  \"title\": \"%s\",\n  \"xlabel\": \"%s\",\n",
                 jsonEscape(Title).c_str(), jsonEscape(XLabel).c_str());
    std::fprintf(Out, "  \"systems\": [");
    for (size_t I = 0; I < Systems.size(); ++I)
      std::fprintf(Out, "%s\"%s\"", I ? ", " : "",
                   jsonEscape(Systems[I]).c_str());
    std::fprintf(Out, "],\n  \"rows\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      std::fprintf(Out, "    {\"x\": \"%s\", \"tflops\": [",
                   jsonEscape(Rows[I].first).c_str());
      for (size_t J = 0; J < Rows[I].second.size(); ++J)
        std::fprintf(Out, "%s%.6g", J ? ", " : "", Rows[I].second[J]);
      std::fprintf(Out, "]}%s\n", I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
  }

  std::string Title;
  std::string XLabel;
  std::vector<std::string> Systems;
  std::vector<std::pair<std::string, std::vector<double>>> Rows;
};

} // namespace cypress::bench

#endif // CYPRESS_BENCH_BENCHUTIL_H
