//===- BenchUtil.h - Shared benchmark harness helpers ----------------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: kernel compilation
/// with owned registries/mappings, and the table printer that emits the
/// rows the paper's plots are drawn from. Every bench binary prints a
/// table named after the paper figure it regenerates, with one row per
/// x-axis point and one column per system; EXPERIMENTS.md records these
/// against the published numbers.
///
//===----------------------------------------------------------------------===//

#ifndef CYPRESS_BENCH_BENCHUTIL_H
#define CYPRESS_BENCH_BENCHUTIL_H

#include "baselines/Baselines.h"
#include "kernels/Kernels.h"
#include "runtime/Runtime.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace cypress::bench {

/// A compiled kernel together with the registry/mapping that back it.
struct OwnedKernel {
  std::unique_ptr<TaskRegistry> Registry;
  std::unique_ptr<MappingSpec> Mapping;
  std::unique_ptr<CompiledKernel> Kernel;
};

template <typename RegisterFn, typename MappingFn, typename ArgsFn>
OwnedKernel compileOwned(const char *Name, RegisterFn Register,
                         MappingFn BuildMapping, ArgsFn BuildArgs) {
  OwnedKernel Owned;
  Owned.Registry = std::make_unique<TaskRegistry>();
  Register(*Owned.Registry);
  Owned.Mapping = std::make_unique<MappingSpec>(BuildMapping());
  CompileInput Input;
  Input.Registry = Owned.Registry.get();
  Input.Mapping = Owned.Mapping.get();
  Input.Machine = &MachineModel::h100();
  Input.EntryArgTypes = BuildArgs();
  ErrorOr<std::unique_ptr<CompiledKernel>> Kernel =
      compileKernel(Input, Name);
  if (!Kernel) {
    std::fprintf(stderr, "error: %s: %s\n", Name,
                 Kernel.diagnostic().message().c_str());
    return Owned;
  }
  Owned.Kernel = std::move(*Kernel);
  return Owned;
}

/// Simulated TFLOP/s of a compiled Cypress kernel (aborts the row on
/// simulation errors, which the tests elsewhere guarantee not to happen).
inline double cypressTFlops(const OwnedKernel &Owned, const SimConfig &Sim) {
  if (!Owned.Kernel)
    return 0.0;
  ErrorOr<SimResult> Result = Owned.Kernel->runTiming(Sim);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.diagnostic().message().c_str());
    return 0.0;
  }
  if (!Result->Races.empty())
    std::fprintf(stderr, "warning: race detected: %s\n",
                 Result->Races[0].c_str());
  return Result->TFlops;
}

/// Prints one figure table: header then one row per size.
class Table {
public:
  Table(std::string Title, std::string XLabel,
        std::vector<std::string> Systems)
      : Title(std::move(Title)), XLabel(std::move(XLabel)),
        Systems(std::move(Systems)) {
    std::printf("== %s ==\n", this->Title.c_str());
    std::printf("%-18s", this->XLabel.c_str());
    for (const std::string &System : this->Systems)
      std::printf("%14s", System.c_str());
    std::printf("\n");
  }

  void row(const std::string &X, const std::vector<double> &TFlops) {
    std::printf("%-18s", X.c_str());
    for (double Value : TFlops)
      std::printf("%14.1f", Value);
    std::printf("\n");
  }

  ~Table() { std::printf("\n"); }

private:
  std::string Title;
  std::string XLabel;
  std::vector<std::string> Systems;
};

} // namespace cypress::bench

#endif // CYPRESS_BENCH_BENCHUTIL_H
