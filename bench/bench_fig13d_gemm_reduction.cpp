//===- bench_fig13d_gemm_reduction.cpp - Figure 13d: GEMM+Reduction ---------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13d: fused GEMM+Reduction (C = A.B with
/// y(i) = sum_k A(i,k)) throughput, Cypress vs Triton. Paper result: the
/// reduction rides the SIMT lanes while the Tensor Core computes, so
/// Cypress matches plain GEMM throughput and beats Triton by 2.02x-2.18x
/// (Triton waits on the Tensor Core before reducing and places the
/// reduction accumulator in shared memory).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cypress;
using namespace cypress::bench;

int main() {
  SimConfig Sim;
  Table T("Figure 13d: GEMM+Reduction (FP16)", "Size (M=N=K)",
          {"Cypress", "Triton"});
  for (int64_t Size : {4096, 6144, 8192}) {
    GemmConfig Config;
    Config.M = Config.N = Config.K = Size;
    OwnedKernel Kernel = compileOwned(
        "gemmred", registerGemmRedTasks,
        [&] { return gemmRedMapping(Config); },
        [&] { return gemmRedArgTypes(Config); });
    double Cypress = cypressTFlops(Kernel, Sim);
    double Triton = tritonGemmRed(Config, Sim).TFlops;
    T.row(std::to_string(Size), {Cypress, Triton});
    std::printf("  ratio: vs Triton %.3f\n", Cypress / Triton);
  }
  return 0;
}
