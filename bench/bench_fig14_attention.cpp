//===- bench_fig14_attention.cpp - Figure 14: Flash Attention ---------------===//
//
// Part of the Cypress reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 14: FP16 forward attention throughput
/// (HeadDim = 128, 12 heads) across sequence lengths, comparing the
/// Cypress FA2/FA3 programs against Triton, ThunderKittens, the reference
/// Flash Attention 3, and cuDNN. Paper result: Cypress reaches 0.80x-0.98x
/// of the best attention implementation (FA3) and 0.87x-1.06x of
/// ThunderKittens, while outperforming Triton; the residual FA3-ref gap at
/// small sequence lengths is its persistent kernel, which Cypress does not
/// yet implement.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cypress;
using namespace cypress::bench;

int main() {
  SimConfig Sim;
  Table T("Figure 14: Flash Attention (FP16, HeadDim=128)", "SeqLen",
          {"Cyp(FA2)", "Cyp(FA3)", "Triton", "TK", "FA3ref", "cuDNN"});
  for (int64_t SeqLen : {2048, 4096, 8192, 16384}) {
    AttentionConfig Fa2 = fa2Config(SeqLen);
    AttentionConfig Fa3 = fa3Config(SeqLen);
    OwnedKernel K2 = compileOwned(
        "fa2", registerAttentionTasks, [&] { return attentionMapping(Fa2); },
        [&] { return attentionArgTypes(Fa2); });
    OwnedKernel K3 = compileOwned(
        "fa3", registerAttentionTasks, [&] { return attentionMapping(Fa3); },
        [&] { return attentionArgTypes(Fa3); });
    double C2 = cypressTFlops(K2, Sim);
    double C3 = cypressTFlops(K3, Sim);
    double Triton = tritonAttention(Fa2, Sim).TFlops;
    double Tk = expertAttention(Fa2, Sim,
                                AttentionOracle::ThunderKittens).TFlops;
    double Fa3Ref = expertAttention(Fa3, Sim,
                                    AttentionOracle::FlashAttention3).TFlops;
    double Cudnn = expertAttention(Fa2, Sim, AttentionOracle::CuDnn).TFlops;
    T.row(std::to_string(SeqLen), {C2, C3, Triton, Tk, Fa3Ref, Cudnn});
    std::printf("  ratios: FA3 vs FA3ref %.3f, FA2 vs TK %.3f, FA3 vs "
                "Triton %.3f\n",
                C3 / Fa3Ref, C2 / Tk, C3 / Triton);
  }
  return 0;
}
